// Command apsim runs one program on the applicative multiprocessor and
// prints what happened: the answer, the makespan, the metric counters, and
// (optionally) the full event trace.
//
// With -requests N it switches to service mode: one long-lived cluster
// (core.Open) serves a stream of N copies of the workload, faults from
// -fault land on the *stream's* clock — mid-traffic, between and inside
// requests — and the report is the stream's throughput, latency
// percentiles, and per-request outcomes, every answer checked against the
// sequential reference evaluator.
//
// Examples:
//
//	apsim -workload fib:16 -procs 16 -topology mesh -placement gradient
//	apsim -workload nqueens:6 -recovery splice -fault 2@3000 -trace
//	apsim -workload tree:4,6 -scheme incremental -fault 1@2000,5@6000s
//	apsim -workload fib:12 -requests 32 -every 100 -fault 2@4000,5@6000
//	apsim -workload fib:12 -requests 32 -arrive poisson:0.02 -max-inflight 16 -admission queue:8
//	apsim -workload fib:12 -requests 32 -backend live -fault 2@4000
//	apsim -workload fib:13 -procs 64 -recovery rollback -cpuprofile cpu.out -memprofile mem.out
//
// Fault specs are PROC@TIME (announced crash), PROC@TIMEs (silent crash) or
// PROC@TIMEc (value corruption from TIME on), comma-separated.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	_ "repro/internal/livenet" // register the "live" backend
	"repro/internal/netnode"   // register the "net" backend
	"repro/internal/proto"
	"repro/internal/recovery"
)

func main() {
	// A re-exec'd node process enters here and never returns; must run
	// before flag parsing (the node marker argv is not a flag).
	netnode.ChildMain()
	var (
		workload  = flag.String("workload", "fib:14", "workload spec: fib:N tak:X,Y,Z nqueens:N sumrange:N msort:N tree:F,D binom:N,K")
		program   = flag.String("program", "", "path to a program file (overrides -workload; see internal/lang.Parse for the syntax)")
		entry     = flag.String("entry", "main", "entry function for -program")
		argSpec   = flag.String("args", "", "comma-separated integer arguments for -program's entry function")
		procs     = flag.Int("procs", 8, "number of processors")
		topo      = flag.String("topology", "mesh", "ring|mesh|hypercube|complete|star")
		placement = flag.String("placement", "random", "random|gradient|static|local")
		recov     = flag.String("recovery", "none", "recovery scheme: "+strings.Join(recovery.Names(), "|"))
		eval      = flag.String("eval", "", "evaluator for task reduction passes: "+lang.EvaluatorHelp()+" (default interp; traces are byte-identical either way)")
		scheme    = flag.String("scheme", "", "alias for -recovery: "+strings.Join(recovery.Names(), "|"))
		ancestors = flag.Int("ancestors", 2, "ancestor-pointer depth K (§5.2)")
		replicate = flag.Int("replicate", 1, "replica count for every function (§5.3; requires -recovery none)")
		seed      = flag.Int64("seed", 1, "random seed")
		backend   = flag.String("backend", "sim", "execution backend: sim (virtual time), live (goroutine cluster, wall time) or net (process-per-node over sockets, crash = SIGKILL)")
		netTCP    = flag.Bool("net-tcp", false, "net backend: use loopback TCP instead of unix sockets")
		recBudget = flag.Int("recovery-budget", 0, "incremental scheme: reinstalled checkpoints per recovery slice (0 = default 1)")
		recPeriod = flag.Int64("recovery-period", 0, "incremental scheme: virtual ticks between recovery slices (0 = default 8)")
		faultSpec = flag.String("fault", "", "fault plan, e.g. 2@3000 or 1@2000s,3@4000c; in service mode times are stream-clock ticks")
		showTrace = flag.Bool("trace", false, "print the event trace")
		deadline  = flag.Int64("deadline", 0, "virtual-time budget (0 = default); per-request in service mode")
		shards    = flag.Int("shards", 1, "simulation kernel shards (sim backend; 0 or negative = GOMAXPROCS); results are byte-identical at every count")
		requests  = flag.Int("requests", 0, "service mode: serve N copies of the workload through one open cluster (0 = one-shot)")
		every     = flag.Int64("every", 0, "service mode: admit requests this many virtual ticks apart on the sim stream clock (0 = all at once)")
		arrive    = flag.String("arrive", "", `service mode: seeded arrival process on the sim stream clock — poisson:RATE, uniform:GAP or burst:SIZE:GAP (the "arrive:" prefix is optional; overrides -every)`)
		inflight  = flag.Int("max-inflight", 0, "service mode: bound on concurrently admitted requests (0 = unbounded)")
		admission = flag.String("admission", "", "service mode: what to do with requests over the -max-inflight bound — queue (default), queue:N (FIFO bounded at depth N) or shed")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (profile with `go tool pprof`)")
		memProf   = flag.String("memprofile", "", "write an allocation profile of the run to this file")
	)
	flag.Parse()

	if *scheme != "" {
		*recov = *scheme
	}
	if *recov != "" {
		// Validate eagerly so a typo fails here with the registry's name
		// list, not deep inside the first request of a service stream.
		if _, err := recovery.ByName(*recov); err != nil {
			fatal(err)
		}
	}
	if *eval != "" {
		// Same eager validation: fail with the evaluator registry's name
		// list before any cluster comes up.
		if _, err := lang.EvaluatorByName(*eval); err != nil {
			fatal(err)
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuProfFile = f
	}
	memProfPath = *memProf
	// fatal() also runs this, so profiles of failing runs — the ones most
	// worth profiling — are still written out intact.
	defer finishProfiles()

	var w core.Workload
	var err error
	if *program != "" {
		src, rerr := os.ReadFile(*program)
		if rerr != nil {
			fatal(rerr)
		}
		prog, perr := lang.Parse(string(src))
		if perr != nil {
			fatal(perr)
		}
		args, aerr := parseArgs(*argSpec)
		if aerr != nil {
			fatal(aerr)
		}
		w = core.Workload{Program: prog, Fn: *entry, Args: args}
	} else if w, err = core.StandardWorkload(*workload); err != nil {
		fatal(err)
	}
	plan, err := parseFaults(*faultSpec)
	if err != nil {
		fatal(err)
	}
	if *shards == 0 {
		*shards = -1 // 0 on the CLI means "derive from GOMAXPROCS"
	}
	netnode.Default.TCP = *netTCP
	cfg := core.Config{
		Procs:          *procs,
		Topology:       *topo,
		Placement:      *placement,
		Recovery:       *recov,
		Eval:           *eval,
		AncestorDepth:  *ancestors,
		Seed:           *seed,
		Shards:         *shards,
		Trace:          *showTrace,
		Deadline:       *deadline,
		RecoveryBudget: *recBudget,
		RecoveryPeriod: *recPeriod,
	}
	if *replicate > 1 {
		cfg.Replication = map[string]int{}
		for _, fn := range w.Program.Names() {
			cfg.Replication[fn] = *replicate
		}
	}
	if *requests > 0 {
		cfg.ArrivalEvery = *every
		if *arrive != "" {
			spec := *arrive
			if !strings.HasPrefix(spec, "arrive:") {
				spec = "arrive:" + spec
			}
			cfg.Arrival = spec
		}
		cfg.MaxInFlight = *inflight
		cfg.Admission = *admission
		serve(*backend, cfg, w, plan, *requests)
		return
	}
	rep, err := cfg.RunOn(*backend, w, plan)
	if err != nil {
		fatal(err)
	}
	if rep.Err != nil {
		fatal(rep.Err)
	}
	if *showTrace && rep.Sim != nil && rep.Sim.Log != nil {
		fmt.Print(rep.Sim.Log.String())
		fmt.Println()
	}
	label := *workload
	if *program != "" {
		label = fmt.Sprintf("%s:%s(%s)", *program, *entry, *argSpec)
	}
	fmt.Printf("workload   : %s\n", label)
	if rep.Sim != nil {
		fmt.Printf("machine    : %d processors, %s, placement=%s, recovery=%s, seed=%d\n",
			rep.Procs, *topo, rep.Placement, rep.Scheme, *seed)
	} else {
		kind := "live goroutine nodes"
		if rep.Backend == "net" {
			kind = "node processes"
		}
		fmt.Printf("machine    : %d %s (backend=%s), placement=%s, recovery=%s, seed=%d\n",
			rep.Procs, kind, rep.Backend, rep.Placement, rep.Scheme, *seed)
	}
	if len(plan.Faults) > 0 {
		fmt.Printf("faults     : %v\n", plan.Faults)
	}
	if rep.Completed {
		fmt.Printf("answer     : %s\n", rep.Answer)
		// Cross-check against the sequential reference evaluator.
		want, err := lang.RefEval(w.Program, w.Fn, w.Args)
		if err == nil {
			if rep.Answer.Equal(want) {
				fmt.Printf("reference  : %s (match)\n", want)
			} else {
				fmt.Printf("reference  : %s (MISMATCH)\n", want)
			}
		}
	} else {
		fmt.Printf("answer     : NONE — run did not complete by t=%d\n", rep.Makespan)
	}
	if rep.Sim != nil {
		fmt.Printf("makespan   : %d virtual ticks (%d events)\n", rep.Makespan, rep.Sim.Events)
		fmt.Println("metrics    :")
		for _, row := range rep.Sim.Metrics.Rows() {
			fmt.Printf("  %s\n", row)
		}
	} else {
		fmt.Printf("makespan   : %d µs wall clock\n", rep.Makespan)
		fmt.Printf("counters   : %d messages (%d bytes), %d spawned, %d reissued, %d drained\n",
			rep.Messages, rep.MsgBytes, rep.Spawned, rep.Reissued, rep.Drained)
		fmt.Printf("reissues   : per node %v\n", rep.ReissuesByNode)
	}
}

// serve runs service mode: open one cluster, stream n copies of the
// workload through it with the fault plan landing on the stream clock, and
// print the stream report with every answer checked against the reference.
func serve(backend string, cfg core.Config, w core.Workload, plan *faults.Plan, n int) {
	cl, err := core.OpenOn(backend, cfg)
	if err != nil {
		fatal(err)
	}
	tickets := make([]*core.Ticket, 0, n)
	for i := 0; i < n; i++ {
		tickets = append(tickets, cl.Submit(w))
	}
	if len(plan.Faults) > 0 {
		if err := cl.Inject(plan); err != nil {
			fatal(err)
		}
	}
	verified, timeouts, shed := 0, 0, 0
	for i, tk := range tickets {
		rep, err := tk.Wait()
		if errors.Is(err, core.ErrShed) {
			// Admission control rejected it: data, not a failure.
			shed++
			continue
		}
		if err != nil {
			fatal(fmt.Errorf("request %d: %w", i, err))
		}
		if !rep.Completed {
			timeouts++
			continue
		}
		if _, err := tk.Verify(); err != nil {
			fatal(fmt.Errorf("request %d: %w", i, err))
		}
		verified++
	}
	sr, err := cl.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Print(sr.Render())
	fmt.Printf("reference  : %d/%d answers match the sequential reference evaluator", verified, n)
	if timeouts > 0 {
		fmt.Printf(" (%d timed out)", timeouts)
	}
	if shed > 0 {
		fmt.Printf(" (%d shed by admission control)", shed)
	}
	fmt.Println()
}

// parseFaults parses "2@3000,1@4000s,5@100c".
func parseFaults(spec string) (*faults.Plan, error) {
	plan := faults.None()
	if spec == "" {
		return plan, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kind := faults.CrashAnnounced
		switch {
		case strings.HasSuffix(part, "s"):
			kind = faults.CrashSilent
			part = strings.TrimSuffix(part, "s")
		case strings.HasSuffix(part, "c"):
			kind = faults.Corrupt
			part = strings.TrimSuffix(part, "c")
		}
		bits := strings.SplitN(part, "@", 2)
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad fault %q (want PROC@TIME[s|c])", part)
		}
		p, err := strconv.Atoi(bits[0])
		if err != nil {
			return nil, fmt.Errorf("bad fault processor %q: %v", bits[0], err)
		}
		at, err := strconv.ParseInt(bits[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad fault time %q: %v", bits[1], err)
		}
		plan.Add(faults.Fault{At: at, Proc: proto.ProcID(p), Kind: kind})
	}
	return plan, nil
}

// parseArgs parses "3,5" into integer values.
func parseArgs(spec string) ([]expr.Value, error) {
	if spec == "" {
		return nil, nil
	}
	var out []expr.Value
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad argument %q: %v", part, err)
		}
		out = append(out, expr.VInt(v))
	}
	return out, nil
}

// Profile state shared with fatal(): os.Exit skips defers, so error exits
// flush the profiles explicitly.
var (
	cpuProfFile *os.File
	memProfPath string
)

// finishProfiles stops the CPU profile and writes the allocation profile.
// Idempotent: both the normal defer and fatal() call it.
func finishProfiles() {
	if cpuProfFile != nil {
		pprof.StopCPUProfile()
		cpuProfFile.Close()
		cpuProfFile = nil
	}
	if memProfPath != "" {
		path := memProfPath
		memProfPath = ""
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apsim:", err)
			return
		}
		runtime.GC() // settle live heap so the profile reflects retained state
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "apsim:", err)
		}
		f.Close()
	}
}

func fatal(err error) {
	finishProfiles()
	fmt.Fprintln(os.Stderr, "apsim:", err)
	os.Exit(1)
}
