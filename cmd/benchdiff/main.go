// Command benchdiff compares two BENCH_N.json snapshots (the -json output
// of cmd/experiments) and flags performance regressions: for every table
// artifact present in both snapshots it extracts the makespan/vticks and
// message columns (hard-gated) plus the service-stream throughput and
// latency columns (informational), averages them across rows and seeds, and
// reports the relative change. Any hard-gated metric growing past the
// threshold (default +10%) is a regression and the command exits non-zero,
// so CI can gate on consecutive committed snapshots:
//
//	benchdiff BENCH_1.json BENCH_2.json
//	benchdiff -threshold 0.05 -all BENCH_1.json BENCH_2.json
//
// Artifacts present in only one snapshot (new or retired experiments, or
// live-backend artifacts skipped in sim-only snapshots) are listed but never
// count as regressions; figures carry no numbers and are ignored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
)

// snapResult is the slice of one artifact's entry in a snapshot file. Only
// the fields benchdiff needs are decoded; everything else is ignored.
type snapResult struct {
	ID      string               `json:"id"`
	Kind    string               `json:"kind"`
	Skipped string               `json:"skipped"`
	Tables  []*experiments.Table `json:"tables"`
}

// metrics is an artifact's tracked per-seed-averaged measurements by class.
type metrics map[string]float64

// tracked maps a column name to the metric class benchdiff watches. Matching
// is by substring on the lower-cased column, so "makespan (ckpt)" and
// "task messages" count while labels like "scheme" do not. Units never mix:
// wall-clock columns (µs) form their own class, the service-stream
// throughput and latency columns form theirs (checked first, so "p99
// latency (µs)" classifies as latency, not as a wall makespan), and
// live-backend columns are prefixed so a sim vtick count is never averaged
// with a wall measurement.
func tracked(column string) (string, bool) {
	c := strings.ToLower(column)
	var class string
	switch {
	case strings.Contains(c, "throughput") || strings.Contains(c, "req/"):
		class = "throughput"
	case strings.Contains(c, "latency"):
		class = "latency"
	case strings.Contains(c, "µs"):
		class = "wall-µs"
	case strings.Contains(c, "makespan"):
		class = "vticks"
	case strings.Contains(c, "messages") || strings.Contains(c, "msgs"):
		class = "messages"
	default:
		return "", false
	}
	if strings.Contains(c, "live") {
		class = "live-" + class
	}
	return class, true
}

// gateKind classifies how a metric class is enforced. Virtual quantities
// (vticks, messages) are deterministic and hard-gated at the -threshold.
// Wall-clock classes are noisy but are the whole point of the B1 snapshot
// artifact: they get their own wider hard ceiling (-wall-ceiling, ±25% by
// default) so a committed snapshot cannot quietly regress the simulator's
// real speed; CI comparing snapshots from different machines disables the
// ceiling with -wall-ceiling 0. The stream throughput/latency aggregates
// fold queueing effects that legitimate changes (a different admission
// schedule, more requests) move around, so they stay informational.
type gateKind int

const (
	gateHard gateKind = iota // vticks/messages: fail beyond -threshold
	gateWall                 // wall-clock: fail beyond -wall-ceiling (0 disables)
	gateInfo                 // latency/throughput: never fail
)

func gateOf(class string) gateKind {
	switch {
	case strings.Contains(class, "wall"):
		return gateWall
	case strings.Contains(class, "latency"), strings.Contains(class, "throughput"):
		return gateInfo
	default:
		return gateHard
	}
}

// load reads a snapshot and folds each table artifact into its tracked
// metrics: the mean over every numeric cell of a tracked column, over every
// row and seed. Averaging keeps the quantity comparable when a table's row
// count is stable, which committed snapshots at fixed flags guarantee.
func load(path string) (map[string]metrics, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var results []snapResult
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]metrics{}
	var order []string
	for _, r := range results {
		if r.Kind != "table" || r.Skipped != "" || len(r.Tables) == 0 {
			continue
		}
		sums, counts := metrics{}, map[string]int{}
		for _, tb := range r.Tables {
			for ci, col := range tb.Columns {
				class, ok := tracked(col)
				if !ok {
					continue
				}
				for _, row := range tb.Rows {
					if ci < len(row) && row[ci].IsNum {
						sums[class] += row[ci].Num
						counts[class]++
					}
				}
			}
		}
		m := metrics{}
		for class, sum := range sums {
			m[class] = sum / float64(counts[class])
		}
		if len(m) > 0 {
			out[r.ID] = m
			order = append(order, r.ID)
		}
	}
	return out, order, nil
}

func main() {
	var (
		threshold   = flag.Float64("threshold", 0.10, "relative growth that counts as a regression for the hard-gated (virtual) classes")
		wallCeiling = flag.Float64("wall-ceiling", 0.25, "relative growth that fails the wall-clock classes (0 = informational only, for cross-machine comparisons)")
		all         = flag.Bool("all", false, "print every comparison, not just changes beyond the gates")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold F] [-all] OLD.json NEW.json")
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	oldM, _, err := load(oldPath)
	if err != nil {
		fatal(err)
	}
	newM, newOrder, err := load(newPath)
	if err != nil {
		fatal(err)
	}

	regressions := 0
	fmt.Printf("benchdiff %s → %s (virtual gate +%.0f%%, wall ceiling +%.0f%%)\n",
		oldPath, newPath, *threshold*100, *wallCeiling*100)
	for _, id := range newOrder {
		before, ok := oldM[id]
		if !ok {
			fmt.Printf("  %-4s added (no baseline)\n", id)
			continue
		}
		for _, class := range classesOf(before, newM[id]) {
			b, haveOld := before[class]
			n, haveNew := newM[id][class]
			// A class on only one side is a renamed or added column, not a
			// ±100% swing; report it so coverage loss is visible.
			if !haveOld {
				fmt.Printf("  %-4s %-9s new metric (no baseline)\n", id, class)
				continue
			}
			if !haveNew {
				fmt.Printf("  %-4s %-9s missing from the new snapshot\n", id, class)
				continue
			}
			if b == 0 {
				continue
			}
			delta := (n - b) / b
			gate := *threshold
			switch gateOf(class) {
			case gateWall:
				gate = *wallCeiling
			case gateInfo:
				gate = 0
			}
			mark := " "
			switch {
			case gate > 0 && delta > gate:
				mark = "✗"
				regressions++
			case delta > *threshold:
				// Past the reporting threshold but inside its gate (a wall
				// swing under the ceiling, or an ungated stream aggregate):
				// flagged for the reader, never failed.
				mark = "!"
			case delta < -*threshold:
				mark = "✓"
			}
			if *all || mark != " " {
				fmt.Printf("%s %-4s %-9s %12.1f → %12.1f  %+6.1f%%\n", mark, id, class, b, n, delta*100)
			}
		}
	}
	var removed []string
	for id := range oldM {
		if _, ok := newM[id]; !ok {
			removed = append(removed, id)
		}
	}
	sort.Strings(removed)
	for _, id := range removed {
		fmt.Printf("  %-4s removed from the new snapshot\n", id)
	}
	if regressions > 0 {
		fmt.Printf("FAIL: %d gated metric(s) regressed (virtual gate +%.0f%%, wall ceiling +%.0f%%)\n", regressions, *threshold*100, *wallCeiling*100)
		os.Exit(1)
	}
	fmt.Println("OK: no regressions beyond the threshold")
}

// classesOf lists the metric classes either side carries, sorted.
func classesOf(a, b metrics) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range []metrics{a, b} {
		for class := range m {
			if !seen[class] {
				seen[class] = true
				out = append(out, class)
			}
		}
	}
	sort.Strings(out)
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
