package main

import (
	"os"
	"path/filepath"
	"testing"
)

const fixtureOld = `[
  {"id": "F1", "kind": "figure", "figure": "### F1\n"},
  {"id": "T1", "kind": "table", "seeds": [1, 2], "tables": [
    {"id": "T1", "columns": ["scheme", "makespan", "messages"],
     "rows": [[{"text": "a"}, {"text": "100", "num": 100}, {"text": "10", "num": 10}],
              [{"text": "b"}, {"text": "200", "num": 200}, {"text": "30", "num": 30}]]},
    {"id": "T1", "columns": ["scheme", "makespan", "messages"],
     "rows": [[{"text": "a"}, {"text": "120", "num": 120}, {"text": "10", "num": 10}],
              [{"text": "b"}, {"text": "220", "num": 220}, {"text": "30", "num": 30}]]}
  ]},
  {"id": "GONE", "kind": "table", "tables": [
    {"id": "GONE", "columns": ["makespan"], "rows": [[{"text": "5", "num": 5}]]}
  ]}
]`

const fixtureNew = `[
  {"id": "T1", "kind": "table", "seeds": [1], "tables": [
    {"id": "T1", "columns": ["scheme", "makespan", "messages"],
     "rows": [[{"text": "a"}, {"text": "300", "num": 300}, {"text": "10", "num": 10}],
              [{"text": "b"}, {"text": "340", "num": 340}, {"text": "30", "num": 30}]]}
  ]},
  {"id": "L1", "kind": "table", "skipped": "needs backend live"},
  {"id": "NEW", "kind": "table", "tables": [
    {"id": "NEW", "columns": ["wire bytes"], "rows": [[{"text": "1", "num": 1}]]}
  ]}
]`

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadExtractsTrackedMetrics(t *testing.T) {
	m, order, err := load(write(t, "old.json", fixtureOld))
	if err != nil {
		t.Fatal(err)
	}
	// Figures are ignored; T1 and GONE carry tracked columns.
	if len(order) != 2 || order[0] != "T1" {
		t.Fatalf("order = %v", order)
	}
	// T1 vticks: mean of 100,200,120,220 = 160; messages: mean of 10,30 ×2 = 20.
	if got := m["T1"]["vticks"]; got != 160 {
		t.Fatalf("T1 vticks = %v, want 160", got)
	}
	if got := m["T1"]["messages"]; got != 20 {
		t.Fatalf("T1 messages = %v, want 20", got)
	}
}

func TestLoadSkipsSkippedAndUntracked(t *testing.T) {
	m, order, err := load(write(t, "new.json", fixtureNew))
	if err != nil {
		t.Fatal(err)
	}
	// L1 was skipped (live-only) and NEW has no tracked column.
	if len(order) != 1 || order[0] != "T1" {
		t.Fatalf("order = %v", order)
	}
	// T1 regressed: vticks 160 → 320 (+100%).
	if got := m["T1"]["vticks"]; got != 320 {
		t.Fatalf("T1 vticks = %v, want 320", got)
	}
}

func TestVanishedClassIsNotAnImprovement(t *testing.T) {
	// T1 keeps makespan but loses its messages column: the class must load
	// as absent (so main reports it missing), not as a zero that would
	// read as a -100% improvement.
	renamed := `[
	  {"id": "T1", "kind": "table", "tables": [
	    {"id": "T1", "columns": ["makespan", "traffic"],
	     "rows": [[{"text": "100", "num": 100}, {"text": "10", "num": 10}]]}
	  ]}
	]`
	m, _, err := load(write(t, "renamed.json", renamed))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m["T1"]["messages"]; ok {
		t.Fatal("renamed column still loads as the messages class")
	}
	if got := m["T1"]["vticks"]; got != 100 {
		t.Fatalf("vticks = %v, want 100", got)
	}
}

func TestTracked(t *testing.T) {
	cases := map[string]string{
		"makespan":              "vticks",
		"makespan (ckpt)":       "vticks",
		"makespan (µs)":         "wall-µs",
		"sim makespan (vticks)": "vticks",
		"live makespan (µs)":    "live-wall-µs",
		"messages":              "messages",
		"task messages":         "messages",
		"ckpt msgs/task":        "messages",
		"sim messages":          "messages",
		"live messages":         "live-messages",
		"scheme":                "",
		"wire bytes":            "",
	}
	for col, want := range cases {
		got, ok := tracked(col)
		if (want == "") == ok || got != want {
			t.Errorf("tracked(%q) = %q,%v want %q", col, got, ok, want)
		}
	}
	// Virtual classes hard-gate at -threshold, wall-clock classes gate at
	// the wider -wall-ceiling, stream aggregates never gate.
	for class, want := range map[string]gateKind{
		"vticks": gateHard, "messages": gateHard, "live-messages": gateHard,
		"wall-µs": gateWall, "live-wall-µs": gateWall,
		"latency": gateInfo, "throughput": gateInfo, "live-latency": gateInfo,
	} {
		if gateOf(class) != want {
			t.Errorf("gateOf(%q) = %v, want %v", class, gateOf(class), want)
		}
	}
}
