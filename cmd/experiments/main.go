// Command experiments regenerates every reproduction artifact indexed in
// DESIGN.md: the figure scenarios F1–F7 and the quantitative tables T1–T7
// plus ablations A1–A4. Its markdown output is the body of EXPERIMENTS.md.
//
//	experiments            # everything
//	experiments -exp F1    # one artifact
//	experiments -seed 7    # different seed
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/proto"
	"repro/internal/scenario"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "which artifact: all|F1|F2|F5|F6|F7|T1..T7|A1..A4")
		seed = flag.Int64("seed", 1, "random seed for the quantitative tables")
	)
	flag.Parse()

	which := strings.ToUpper(*exp)
	ran := false
	runIf := func(id string, f func() error) {
		if which == "ALL" || which == id {
			ran = true
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}

	runIf("F1", printFig1)
	runIf("F2", printFig23)
	runIf("F5", printFig5)
	runIf("F6", printFig67)
	runIf("F7", printMultiFault)

	tables := map[string]func() (*experiments.Table, error){
		"T1": func() (*experiments.Table, error) { return experiments.T1Overhead("fib:13", 8, *seed) },
		"T2": func() (*experiments.Table, error) { return experiments.T2FaultSweep("tree:3,6", 9, *seed) },
		"T3": func() (*experiments.Table, error) {
			return experiments.T3Scale("tree:3,6", []int{4, 9, 16, 36, 64}, *seed)
		},
		"T4": func() (*experiments.Table, error) { return experiments.T4MultiFault(*seed) },
		"T5": func() (*experiments.Table, error) { return experiments.T5Replication(*seed) },
		"T6": func() (*experiments.Table, error) { return experiments.T6Placement(*seed) },
		"T7": func() (*experiments.Table, error) { return experiments.T7TMR(*seed) },
		"A1": func() (*experiments.Table, error) { return experiments.A1EagerVsLazyAbort(*seed) },
		"A2": func() (*experiments.Table, error) { return experiments.A2CheckpointStorage(*seed) },
		"A3": func() (*experiments.Table, error) { return experiments.A3DetectionLatency(*seed) },
		"A4": func() (*experiments.Table, error) { return experiments.A4TopmostSuppression(*seed) },
	}
	ids := make([]string, 0, len(tables))
	for id := range tables {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		gen := tables[id]
		runIf(id, func() error {
			tb, err := gen()
			if err != nil {
				return err
			}
			fmt.Println(tb.Markdown())
			return nil
		})
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q\n", *exp)
		os.Exit(2)
	}
}

func printFig1() error {
	res, err := scenario.RunFig1Rollback()
	if err != nil {
		return err
	}
	fmt.Println("### F1 — Figure 1: call tree on processors A–D, rollback recovery")
	fmt.Println()
	fmt.Println("**Paper claim (§2.2, §3).** Checkpoints live with the spawning parents:")
	fmt.Println("A holds B1; C holds B2, B3, B5; D holds B7. Failing B fragments the tree")
	fmt.Println("into three pieces; recovery reissues only the topmost checkpoints and")
	fmt.Println("suppresses B5 (\"Reactivation of B5 only increases the system overhead\").")
	fmt.Println()
	fmt.Printf("- fault: announced crash of processor B at t=%d\n", res.FaultTime)
	fmt.Printf("- completed with correct answer: %v (answer %s)\n", res.Completed, res.Answer)
	fmt.Printf("- checkpoint holders: %s\n", holderString(res.CheckpointHolders))
	fmt.Printf("- fragments: %v\n", res.Fragments)
	fmt.Printf("- reissued: %s\n", holderString(res.Reissued))
	fmt.Printf("- suppressed: %v\n", res.Suppressed)
	fmt.Printf("- tasks lost with B: %d; reissues: %d; suppressed: %d\n",
		res.Metrics.TasksLost, res.Metrics.Reissues, res.Metrics.Suppressed)
	fmt.Println()
	return nil
}

func printFig23() error {
	res, err := scenario.RunFig23Splice()
	if err != nil {
		return err
	}
	fmt.Println("### F2 — Figures 2–3: grandparent pointers and twin inheritance, splice recovery")
	fmt.Println()
	fmt.Println("**Paper claim (§4.1).** \"A twin task of B2, say B2', is created by the")
	fmt.Println("parent C1 to inherit tasks D4 and A2\"; orphan results flow through the")
	fmt.Println("grandparent relay to the step-parent.")
	fmt.Println()
	fmt.Printf("- fault: announced crash of processor B at t=%d\n", res.FaultTime)
	fmt.Printf("- completed with correct answer: %v (answer %s)\n", res.Completed, res.Answer)
	fmt.Printf("- twins created: %s\n", holderString(res.Twinned))
	fmt.Printf("- orphan results escalated: %d; relayed to twins: %d; inherited without respawn: %d; duplicates ignored: %d\n",
		res.OrphanResults, res.Relayed, res.Prefills, res.Dups)
	fmt.Println()
	return nil
}

func printFig5() error {
	fmt.Println("### F5 — Figure 5: the eight orderings of C's completion")
	fmt.Println()
	fmt.Println("**Paper claim (§4.1).** Every ordering of C's completion relative to the")
	fmt.Println("failure of P and the twin's progress resolves to the correct answer with")
	fmt.Println("duplicates ignored and late results discarded.")
	fmt.Println()
	fmt.Println("| case | ordering | correct | C placements | prefills | dups | lates |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for c := 1; c <= 8; c++ {
		res, err := scenario.RunFig5Case(c)
		if err != nil {
			return err
		}
		fmt.Printf("| %d | %s | %v | %d | %d | %d | %d |\n",
			c, res.Desc, res.Completed, res.PlacesC, res.Prefills, res.Dups, res.Lates)
	}
	fmt.Println()
	return nil
}

func printFig67() error {
	fmt.Println("### F6 — Figures 6–7: spawn states a–g and residue freedom")
	fmt.Println()
	fmt.Println("**Paper claim (§4.3.2).** \"A residue-free fault tolerant measure must")
	fmt.Println("assure that tasks G and C are not affected by the failure of P from state")
	fmt.Println("a through state g.\"")
	fmt.Println()
	fmt.Println("| state | situation | scheme | correct | recoveries | P places | C places |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, scheme := range []string{"rollback", "splice"} {
		for st := byte('a'); st <= 'g'; st++ {
			res, err := scenario.RunFig67State(st, scheme)
			if err != nil {
				return err
			}
			fmt.Printf("| %c | %s | %s | %v | %d | %d | %d |\n",
				st, res.Desc, scheme, res.Completed, res.Recovered, res.PlacesP, res.PlacesC)
		}
	}
	fmt.Println()
	return nil
}

func printMultiFault() error {
	fmt.Println("### F7 — §5.2: simultaneous parent + grandparent failure vs ancestor depth K")
	fmt.Println()
	fmt.Println("**Paper claim (§5.2).** \"if both the parent and grandparent processors of")
	fmt.Println("a task fail simultaneously, the orphan task would be stranded. It is noted")
	fmt.Println("that the resilient structure concept can be further extended to include")
	fmt.Println("pointers to the great grandparent and beyond.\"")
	fmt.Println()
	fmt.Println("| ancestor depth K | correct | stranded results | relayed results | C placements |")
	fmt.Println("|---|---|---|---|---|")
	for _, k := range []int{2, 3, 4} {
		res, err := scenario.RunMultiFaultBranch(k)
		if err != nil {
			return err
		}
		fmt.Printf("| %d | %v | %d | %d | %d |\n",
			k, res.Completed, res.Stranded, res.Relayed, res.PlacesC)
	}
	fmt.Println()
	fmt.Println("**Measured.** K=2 strands the orphan's result (both named ancestors are")
	fmt.Println("dead) and the twins recompute the subtree; K≥3 escalates past the dead pair")
	fmt.Println("and splices the partial result in. The answer is correct at every K.")
	fmt.Println()
	return nil
}

func holderString(m map[string]proto.ProcID) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s→%s", k, procLetter(m[k])))
	}
	return strings.Join(parts, ", ")
}

func procLetter(p proto.ProcID) string {
	if p >= 0 && p < 4 {
		return string(rune('A' + int32(p)))
	}
	return fmt.Sprintf("proc%d", p)
}
