// Command experiments regenerates every reproduction artifact indexed in
// DESIGN.md: the figure scenarios F1–F7 and the quantitative tables T1–T7
// plus ablations A1–A4. Its markdown output is the body of EXPERIMENTS.md.
//
// Artifacts resolve through internal/runner's registry, so this command,
// the benchmarks and the tests all run the same drivers. Tables can be
// swept across several seeds and scheduled on a worker pool; multi-seed
// runs report mean/min/max per metric plus effect-size classification.
//
//	experiments                          # everything, one seed
//	experiments -exp f1                  # one artifact (ids are case-insensitive)
//	experiments -exp T3,T6               # a comma-separated subset
//	experiments -run T3,T6               # same (-run is an alias for -exp)
//	experiments -seed 7                  # different base seed
//	experiments -exp T3 -seeds 3         # seeds 1,2,3 with mean/min/max aggregates
//	experiments -seeds 3 -parallel 8     # fan the (experiment × seed) grid out
//	experiments -exp T3 -seeds 3 -json   # machine-readable per-seed + aggregate output
//	experiments -markdown -seeds 5       # self-contained EXPERIMENTS.md document
//	experiments -backend live -run L1,L3 # live-backend artifacts on real goroutines
//	experiments -list                    # show the registered artifact ids + backends
//
// Artifacts declare the core backend they need; with -backend sim (the
// default) the live-only artifacts render a deterministic skip note, and
// with -backend live the sim-only ones do, so committed documents stay
// byte-reproducible while wall-clock measurements stay on demand.
//
// The bare (flagless) output is the concatenated artifact markdown;
// -markdown wraps it in the committed EXPERIMENTS.md document — provenance
// header, contents table, then the artifacts — whose bytes are a pure
// function of the flags, so CI regenerates the file and fails on drift.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lang"
	"repro/internal/netnode"
	"repro/internal/runner"
)

func main() {
	// A re-exec'd node process (net backend) enters here and never returns.
	netnode.ChildMain()
	// Batch harness, not a resident service: the simulator's hot loop is
	// allocation-heavy and on one core every collection steals mutator
	// time, so trade heap headroom for wall time. Affects only wall-clock
	// columns (B1); every virtual-time artifact is GC-invariant.
	debug.SetGCPercent(400)
	var (
		exp      = flag.String("exp", "all", "artifacts: all, one id (F1/F2/F5/F6/F7, T1..T7, A1..A4, S1..S6, L1..L5, any case; see -list), or a comma-separated list")
		run      = flag.String("run", "", "alias for -exp (takes precedence when set)")
		backend  = flag.String("backend", "sim", "execution backend: sim (discrete-event simulator), live (goroutine cluster) or net (process-per-node cluster); artifacts not declaring the backend render a skip note")
		seed     = flag.Int64("seed", 1, "base random seed for the quantitative tables")
		seeds    = flag.Int("seeds", 1, "number of consecutive seeds to sweep (seed, seed+1, ...)")
		parallel = flag.Int("parallel", 0, "worker goroutines for the (experiment × seed) grid (0 = GOMAXPROCS; -backend live always runs sequentially so wall-clock makespans measure the workload, not pool contention)")
		asJSON   = flag.Bool("json", false, "emit JSON (per-seed tables plus aggregates) instead of markdown")
		asDoc    = flag.Bool("markdown", false, "emit the self-contained EXPERIMENTS.md document (header + contents + artifacts)")
		list     = flag.Bool("list", false, "list the registered artifacts and exit")
		bench    = flag.Int("bench", 0, "with -json: append the B1 wall-time artifact, timing each profile target this many reps (nondeterministic; for BENCH_N.json snapshots, never for EXPERIMENTS.md)")
		shards   = flag.Int("shards", 1, "simulation kernel shards per cell (0 = GOMAXPROCS); every artifact is byte-identical at every shard count, so this only trades wall-clock time")
		eval     = flag.String("eval", "", "evaluator for task reduction passes: "+lang.EvaluatorHelp()+" (default interp); every artifact is byte-identical under either, so this only trades wall-clock time")
	)
	flag.Parse()
	if *shards <= 0 {
		core.DefaultShards = runtime.GOMAXPROCS(0)
	} else {
		core.DefaultShards = *shards
	}
	if *eval != "" {
		if _, err := lang.EvaluatorByName(*eval); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		core.DefaultEval = *eval
	}
	if *asJSON && *asDoc {
		fmt.Fprintln(os.Stderr, "experiments: -json and -markdown are mutually exclusive")
		os.Exit(2)
	}
	if *bench > 0 && !*asJSON {
		fmt.Fprintln(os.Stderr, "experiments: -bench requires -json (wall times are nondeterministic and must stay out of committed documents)")
		os.Exit(2)
	}
	expSet := false
	flag.Visit(func(f *flag.Flag) { expSet = expSet || f.Name == "exp" })
	if expSet && *run != "" {
		fmt.Fprintln(os.Stderr, "experiments: -exp and -run select the same thing; pass only one")
		os.Exit(2)
	}
	request := *exp
	if *run != "" {
		request = *run
	}
	if _, err := core.ByName(*backend); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	reg := runner.Default()
	if *list {
		for _, id := range reg.IDs() {
			e, _ := reg.Lookup(id)
			fmt.Printf("%-4s %-7s %-8s %s\n", e.ID, e.Kind, strings.Join(e.BackendList(), "|"), e.Title)
		}
		return
	}

	results, runErr := reg.RunIDs(request, runner.Options{
		Seeds:    runner.SeedRange(*seed, *seeds),
		Parallel: *parallel,
		Backend:  *backend,
	})
	if runErr != nil && results == nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", runErr)
		os.Exit(2) // bad request (e.g. unknown artifact id)
	}
	// A per-artifact failure still renders everything that succeeded (the
	// failed artifacts carry their error inline) before exiting non-zero.
	if *bench > 0 {
		tb, err := experiments.B1WallTime(*bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		results = append(results, &runner.Result{
			ID: tb.ID, Title: tb.Title, Kind: runner.KindTable,
			Tables: []*experiments.Table{tb},
		})
	}
	switch {
	case *asJSON:
		out, err := runner.RenderJSON(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
	case *asDoc:
		fmt.Print(runner.RenderDocument(results, runner.DocumentOptions{
			Command: runner.DocumentCommand(request, *backend, *seed, *seeds),
			Seeds:   runner.SeedRange(*seed, *seeds),
		}))
	default:
		fmt.Print(runner.RenderMarkdown(results))
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", runErr)
		os.Exit(1)
	}
}
