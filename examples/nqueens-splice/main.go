// N-queens under splice recovery: a skewed, data-dependent call tree
// survives two processor failures on separate branches (§5.2: "Separate
// recoveries take place at different parts of the program in parallel"),
// and the trace shows twins inheriting orphan results instead of discarding
// them (§4).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/trace"
)

func main() {
	w, err := core.StandardWorkload("nqueens:6")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Procs:     9,
		Topology:  "mesh",
		Placement: "gradient", // the paper's own load balancer (§3.3, ref [10])
		Recovery:  "splice",
		Seed:      7,
		Trace:     true,
	}

	clean, err := cfg.Verify(w, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free : %v solutions, makespan %d, %d tasks\n",
		clean.Answer, clean.Makespan, clean.Sim.Metrics.TasksSpawned)

	// Two announced crashes on different processors, spread over the run.
	plan := faults.None().
		Add(core.Fault{At: int64(clean.Makespan) / 4, Proc: 2, Kind: core.CrashAnnounced}).
		Add(core.Fault{At: int64(clean.Makespan) / 2, Proc: 6, Kind: core.CrashAnnounced})

	rep, err := cfg.Verify(w, plan)
	if err != nil {
		log.Fatal(err)
	}
	m := rep.Sim.Metrics
	fmt.Printf("two crashes: %v solutions, makespan %d (%.2fx)\n",
		rep.Answer, rep.Makespan, float64(rep.Makespan)/float64(clean.Makespan))
	fmt.Printf("splice     : %d twins created, %d orphan results escalated, %d relayed, %d inherited without respawn, %d duplicates ignored\n",
		m.Twins, m.OrphanResults, m.Relayed, m.Prefills, m.DupResults)

	// Show the recovery-related slice of the trace.
	fmt.Println("\nrecovery events:")
	shown := 0
	for _, e := range rep.Sim.Log.Events {
		switch e.Kind {
		case trace.KFail, trace.KTwin, trace.KOrphanResult, trace.KRelay, trace.KPrefill:
			fmt.Printf("  %s\n", e)
			shown++
		}
		if shown >= 24 {
			fmt.Println("  ...")
			break
		}
	}
}
