// Live runtime through the backend-neutral API: the same core.Config,
// core.Workload and fault plan that drive the discrete-event simulator,
// handed to core.ByName("live") — one goroutine per node, a buffered
// channel per inbox, actual asynchrony. A Burst plan kills two nodes
// mid-run on the wall clock; every parent reissues the retained task
// packets it had placed there (§3), and determinacy (§2.1) delivers the
// reference answer regardless of the nondeterministic interleaving.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/faults"
	_ "repro/internal/livenet" // register the "live" backend
)

func main() {
	w, err := core.StandardWorkload("fib:18")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{Procs: 6, Seed: 7, Recovery: "rollback"}

	fmt.Printf("backends registered: %v\n", core.Backends())

	// Run the same workload on both substrates through one interface.
	for _, backend := range []string{"sim", "live"} {
		// Kill node 2 early and node 4 later; the live backend maps the
		// virtual ticks onto the wall clock (2µs per tick).
		plan := core.CrashPlan(2, 2000, true).
			Add(faults.Fault{At: 6000, Proc: 4, Kind: faults.CrashAnnounced})
		rep, err := core.VerifyOn(backend, cfg, w, plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s backend (%d processors):\n", backend, rep.Procs)
		fmt.Printf("  answer   : %v (verified against the sequential reference)\n", rep.Answer)
		fmt.Printf("  makespan : %d %s\n", rep.Makespan, rep.Unit)
		fmt.Printf("  traffic  : %d messages, %d tasks spawned\n", rep.Messages, rep.Spawned)
		fmt.Printf("  recovery : %d reissues, %d drained dead letters\n", rep.Reissued, rep.Drained)
		if rep.ReissuesByNode != nil {
			fmt.Printf("  per node : reissues %v\n", rep.ReissuesByNode)
		}
	}
	fmt.Println("\nSame API, same answer, two substrates: the paper's recovery needs")
	fmt.Println("nothing from the simulator — only retained task packets (§2) and")
	fmt.Println("determinacy (§2.1).")
}
