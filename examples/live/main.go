// Live runtime: the same functional-checkpointing idea on real goroutines
// and channels instead of the deterministic simulator — one goroutine per
// node, a buffered channel per inbox, actual asynchrony. A node is killed
// mid-run; every parent reissues the retained task packets it had placed
// there (§3), and determinacy (§2.1) delivers the same answer regardless of
// the nondeterministic interleaving.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/livenet"
)

func main() {
	prog := lang.Fib()
	cluster, err := livenet.New(prog, 6, time.Now().UnixNano())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	fmt.Println("live cluster: 6 goroutine nodes, channel interconnect")
	if err := cluster.Start("fib", []expr.Value{expr.VInt(18)}); err != nil {
		log.Fatal(err)
	}

	// Let the call tree spread across the nodes, then crash one.
	time.Sleep(5 * time.Millisecond)
	if err := cluster.Kill(3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("killed node 3 mid-run (tasks lost, inbox black-holed)")

	answer, err := cluster.Wait(60 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	spawned, reissued, drained := cluster.Stats()
	fmt.Printf("answer      : %v (fib(18) = 2584)\n", answer)
	fmt.Printf("tasks       : %d spawned, %d reissued after the crash\n", spawned, reissued)
	fmt.Printf("dead letters: %d messages drained at the dead node / late results ignored\n", drained)
}
