// Quickstart: run a parallel Fibonacci on a simulated 8-processor mesh,
// crash a processor mid-run, and watch rollback recovery (§3 of Lin &
// Keller, "Distributed Recovery in Applicative Systems", ICPP 1986) finish
// the program with the right answer anyway.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// The workload: fib(16), a doubly recursive applicative program whose
	// evaluation unfolds a binary call tree across the machine.
	w, err := core.StandardWorkload("fib:16")
	if err != nil {
		log.Fatal(err)
	}

	// The machine: 8 processors in a 2-D mesh, random dynamic placement,
	// functional checkpointing with rollback recovery.
	cfg := core.Config{
		Procs:     8,
		Topology:  "mesh",
		Placement: "random",
		Recovery:  "rollback",
		Seed:      42,
	}

	// First, a fault-free run to see the baseline.
	clean, err := cfg.Verify(w, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free : answer=%v makespan=%d ticks, %d tasks\n",
		clean.Answer, clean.Makespan, clean.Sim.Metrics.TasksSpawned)

	// Now crash processor 3 (without warning) halfway through.
	at := int64(clean.Makespan) / 2
	plan := core.CrashPlan(3, at, false)
	rep, err := cfg.Verify(w, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with crash : answer=%v makespan=%d ticks (%.2fx)\n",
		rep.Answer, rep.Makespan, float64(rep.Makespan)/float64(clean.Makespan))
	fmt.Printf("recovery   : %d tasks lost with processor 3, %d checkpoints reissued, %d tasks re-executed then aborted\n",
		rep.Sim.Metrics.TasksLost, rep.Sim.Metrics.Reissues, rep.Sim.Metrics.TasksAborted)
	fmt.Printf("detection  : silent crash discovered after %d ticks\n",
		rep.Sim.Metrics.DetectLatencySum)
	fmt.Println()
	fmt.Println("The answer is identical in both runs: applicative determinacy (§2.1)")
	fmt.Println("means re-invoking a retained task packet always reproduces the result.")
}
