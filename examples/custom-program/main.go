// Custom program: parse an applicative program from source text, run it on
// the simulated multiprocessor, crash a processor, and verify the recovered
// answer against the sequential reference — the full public pipeline
// (parser → machine → recovery → oracle) in one file. The same program
// lives in binom.ap for use with cmd/apsim.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lang"
)

const source = `
# Pascal-triangle binomial coefficient: a DAG-shaped recursion the machine
# evaluates as a call tree (shared subproblems are recomputed, which makes
# the tree — and the recovery surface — much larger than the DAG).
fn binom(n, k) =
    if k == 0 || k == n then 1
    else binom(n - 1, k - 1) + binom(n - 1, k)

fn main() = binom(14, 6)
`

func main() {
	prog, err := lang.Parse(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed program:")
	fmt.Print(lang.Format(prog))
	fmt.Println()

	w := core.Workload{Program: prog, Fn: "main"}
	cfg := core.Config{
		Procs:     12,
		Topology:  "mesh",
		Placement: "gradient",
		Recovery:  "splice",
		Seed:      3,
	}
	clean, err := cfg.Verify(w, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free : binom(14,6) = %v in %d ticks (%d tasks)\n",
		clean.Answer, clean.Makespan, clean.Sim.Metrics.TasksSpawned)

	at := int64(clean.Makespan) / 3
	rep, err := cfg.Verify(w, core.CrashPlan(5, at, false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with crash : binom(14,6) = %v in %d ticks (%.2fx), %d twins, %d orphan results spliced\n",
		rep.Answer, rep.Makespan,
		float64(rep.Makespan)/float64(clean.Makespan),
		rep.Sim.Metrics.Twins, rep.Sim.Metrics.Relayed)
}
