// Fault sweep: the paper's central quantitative claim, reproduced as a
// seed-swept curve. §6: "if a fault happens at a later stage of the
// evaluation, the rollback recovery may be costly" while splice "tries to
// salvage as much intermediate partial results as possible". This example
// sweeps the crash time across the run at several seeds, prints the
// completion-time stretch of both schemes as mean [min–max], and classifies
// the splice-vs-rollback effect at each fault time with the experiment
// standards thresholds (significant >20% in every seed, equivalent within
// 5%). The no-recovery baseline's failure rides along.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
)

func main() {
	seeds := []int64{11, 12, 13}
	w, err := core.StandardWorkload("tree:3,6")
	if err != nil {
		log.Fatal(err)
	}
	mk := func(recovery string, seed int64) core.Config {
		return core.Config{Procs: 9, Topology: "mesh", Recovery: recovery, Seed: seed}
	}

	// Fault-free makespan per seed, verified against the reference evaluator.
	m0 := make(map[int64]int64, len(seeds))
	for _, s := range seeds {
		clean, err := mk("rollback", s).Verify(w, nil)
		if err != nil {
			log.Fatal(err)
		}
		m0[s] = int64(clean.Makespan)
	}
	fmt.Printf("workload tree:3,6 on 9 processors; seeds %v; fault-free makespan %s ticks\n\n",
		seeds, runner.Fold(collect(seeds, func(s int64) float64 { return float64(m0[s]) })))
	fmt.Printf("%-10s %-26s %-26s %-15s %s\n", "fault at", "rollback", "splice", "none", "splice vs rollback")

	for _, pctPoint := range []int64{10, 25, 50, 75, 90} {
		stretch := map[string][]float64{}
		for _, scheme := range []string{"rollback", "splice"} {
			for _, s := range seeds {
				at := m0[s] * pctPoint / 100
				rep, err := mk(scheme, s).Run(w, core.CrashPlan(1, at, true))
				if err != nil {
					log.Fatal(err)
				}
				if !rep.Completed {
					log.Fatalf("%s at %d%% (seed %d) did not complete", scheme, pctPoint, s)
				}
				stretch[scheme] = append(stretch[scheme], float64(rep.Makespan)/float64(m0[s]))
			}
		}

		// Per-seed relative delta of splice against rollback, classified per
		// the experiment standards. Directional consistency is required: one
		// contradicting seed downgrades the claim.
		deltas := make([]float64, len(seeds))
		for i := range seeds {
			deltas[i] = (stretch["splice"][i] - stretch["rollback"][i]) / stretch["rollback"][i]
		}

		// The none scheme never completes once work is lost (first seed).
		none := "never finishes"
		cfg := mk("none", seeds[0])
		cfg.Deadline = m0[seeds[0]] * 4
		rep, err := cfg.Run(w, core.CrashPlan(1, m0[seeds[0]]*pctPoint/100, true))
		if err != nil {
			log.Fatal(err)
		}
		if rep.Completed {
			none = "finished(!)"
		}

		ratio := func(xs []float64) string {
			agg := runner.Fold(xs)
			agg.Fmt = "%.2fx"
			return agg.String()
		}
		fmt.Printf("%-10s %-26s %-26s %-15s %s (%+.0f%% mean)\n",
			fmt.Sprintf("%d%%", pctPoint),
			ratio(stretch["rollback"]), ratio(stretch["splice"]),
			none, runner.Classify(deltas), runner.Fold(deltas).Mean*100)
	}
	fmt.Println()
	fmt.Println(strings.TrimSpace(`
Reading the curve: both schemes always finish with the correct answer at
every seed; the rollback column grows with the fault time (lost partial
results must be recomputed from the reissued checkpoints), while splice
stays flatter by splicing orphan results into the twins. The last column
applies the multi-seed thresholds: a "significant" verdict means splice
beat (or lost to) rollback by >20% in every seed, not just on average.`))
}

// collect maps seeds through f.
func collect(seeds []int64, f func(int64) float64) []float64 {
	out := make([]float64, len(seeds))
	for i, s := range seeds {
		out[i] = f(s)
	}
	return out
}
