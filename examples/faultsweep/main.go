// Fault sweep: the paper's central quantitative claim, reproduced as a
// curve. §6: "if a fault happens at a later stage of the evaluation, the
// rollback recovery may be costly" while splice "tries to salvage as much
// intermediate partial results as possible". This example sweeps the crash
// time across the run and prints the completion-time stretch for both
// schemes, plus the no-recovery baseline's failure.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
)

func main() {
	w, err := core.StandardWorkload("tree:3,6")
	if err != nil {
		log.Fatal(err)
	}
	mk := func(recovery string) core.Config {
		return core.Config{Procs: 9, Topology: "mesh", Recovery: recovery, Seed: 11}
	}

	clean, err := mk("rollback").Verify(w, nil)
	if err != nil {
		log.Fatal(err)
	}
	m0 := int64(clean.Makespan)
	fmt.Printf("workload tree:3,6 on 9 processors; fault-free makespan %d ticks\n\n", m0)
	fmt.Printf("%-10s %-12s %-12s %-14s\n", "fault at", "rollback", "splice", "none")
	for _, pctPoint := range []int64{10, 25, 50, 75, 90} {
		at := m0 * pctPoint / 100
		row := []string{fmt.Sprintf("%d%%", pctPoint)}
		for _, scheme := range []string{"rollback", "splice"} {
			rep, err := mk(scheme).Run(w, core.CrashPlan(1, at, true))
			if err != nil {
				log.Fatal(err)
			}
			if rep.Completed {
				row = append(row, fmt.Sprintf("%.2fx", float64(rep.Makespan)/float64(m0)))
			} else {
				row = append(row, "hang")
			}
		}
		// The none scheme never completes once work is lost.
		cfg := mk("none")
		cfg.Deadline = m0 * 4
		rep, err := cfg.Run(w, core.CrashPlan(1, at, true))
		if err != nil {
			log.Fatal(err)
		}
		if rep.Completed {
			row = append(row, "finished(!)")
		} else {
			row = append(row, "never finishes")
		}
		fmt.Printf("%-10s %-12s %-12s %-14s\n", row[0], row[1], row[2], row[3])
	}
	fmt.Println()
	fmt.Println(strings.TrimSpace(`
Reading the curve: both schemes always finish with the correct answer; the
rollback column grows with the fault time (lost partial results must be
recomputed from the reissued checkpoints), while splice stays flatter by
splicing orphan results into the twins.`))
}
