// Replicated critical sections (§5.3): a processor that silently corrupts
// every value it computes is outvoted by replicated task packets with
// asynchronous majority voting — and without replication the corruption
// reaches the final answer undetected.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/lang"
)

func main() {
	// Twelve "critical" work calls fanned out by one coordinator; work(i)
	// computes i+1 after a deterministic amount of arithmetic.
	prog := lang.CriticalSections(12, 400)
	w := core.Workload{Program: prog, Fn: "main"}
	want, err := lang.RefEval(prog, "main", nil)
	if err != nil {
		log.Fatal(err)
	}
	// Processor 3 corrupts every result it produces, from the start.
	plan := &faults.Plan{Faults: []faults.Fault{{At: 0, Proc: 3, Kind: core.Corrupt}}}

	fmt.Printf("reference answer: %v   (corrupt processor: 3)\n\n", want)
	fmt.Printf("%-14s %-10s %-8s %-16s %-12s\n", "replication", "answer", "correct", "corrupt outvoted", "task msgs")
	for _, r := range []int{1, 3, 5} {
		cfg := core.Config{Procs: 8, Seed: 9}
		if r > 1 {
			cfg.Replication = map[string]int{"work": r}
		}
		rep, err := cfg.Run(w, plan)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Err != nil {
			log.Fatal(rep.Err)
		}
		label := "none"
		if r > 1 {
			label = fmt.Sprintf("work ×%d", r)
		}
		fmt.Printf("%-14s %-10v %-8v %-16d %-12d\n",
			label, rep.Answer, rep.Answer.Equal(want),
			rep.Sim.Metrics.VoteMismatches, rep.Sim.Metrics.MsgTask)
	}
	fmt.Println()
	fmt.Println("R=1 completes quickly but wrongly — crash recovery cannot mask value")
	fmt.Println("faults. R=3/5 places replicas on distinct processors, votes as soon as")
	fmt.Println("a majority of identical answers arrives (no waiting for the slowest),")
	fmt.Println("and the corrupt processor's answers are simply outvoted.")
}
