// Cascading faults on an irregular topology: the regime the 1986
// experiments never reach. A failure starts at one processor of a
// 64-processor torus and spreads wave by wave to the neighbors of every
// dead node (a power-domain or switch failure propagating along the
// physical interconnect). Rollback re-executes lost work from reissued
// checkpoints — work the next wave promptly destroys again — while splice
// keeps salvaging orphan results into twins, so the gap between the
// schemes compounds with every wave. The same plans rerun on a random
// 4-regular graph to show the protocols don't care about regularity.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/runner"
	"repro/internal/topology"
)

func main() {
	const procs = 64
	seeds := []int64{1, 2, 3}
	w, err := core.StandardWorkload("tree:3,6")
	if err != nil {
		log.Fatal(err)
	}

	for _, kind := range []string{"torus", "regular"} {
		topo, err := topology.ByName(kind, procs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s, %d processors, tree:3,6, cascade origin 9 ==\n", topo.Name(), procs)
		fmt.Printf("%-22s %-8s %-28s %-28s %s\n",
			"fault plan", "crashes", "rollback stretch", "splice stretch", "splice vs rollback")

		for _, waves := range []int{0, 1, 2} {
			stretch := map[string][]float64{}
			crashes := 0
			for _, seed := range seeds {
				cfg := core.Config{Procs: procs, Topology: kind, Seed: seed, Recovery: "rollback"}
				base, err := cfg.Verify(w, nil)
				if err != nil {
					log.Fatal(err)
				}
				m0 := int64(base.Makespan)
				// The cascade starts at 30% of the fault-free makespan and
				// spreads every 10% of it; the plan is a pure function of
				// (topology, origin, seed).
				plan := faults.Cascade(topo, 9, m0*3/10, m0/10, waves, 1.0,
					faults.CrashAnnounced, seed)
				crashes = len(plan.Procs())
				for _, scheme := range []string{"rollback", "splice"} {
					cfg.Recovery = scheme
					rep, err := cfg.Run(w, plan)
					if err != nil {
						log.Fatal(err)
					}
					if !rep.Completed {
						log.Fatalf("%s under %d waves (seed %d) did not complete", scheme, waves, seed)
					}
					stretch[scheme] = append(stretch[scheme], float64(rep.Makespan)/float64(m0))
				}
			}
			deltas := make([]float64, len(seeds))
			for i := range seeds {
				deltas[i] = (stretch["splice"][i] - stretch["rollback"][i]) / stretch["rollback"][i]
			}
			label := "single crash"
			if waves > 0 {
				label = fmt.Sprintf("cascade, %d wave(s)", waves)
			}
			ratio := func(xs []float64) string {
				agg := runner.Fold(xs)
				agg.Fmt = "%.2fx"
				return agg.String()
			}
			fmt.Printf("%-22s %-8d %-28s %-28s %s (%+.0f%% mean)\n",
				label, crashes, ratio(stretch["rollback"]), ratio(stretch["splice"]),
				runner.Classify(deltas), runner.Fold(deltas).Mean*100)
		}
		fmt.Println()
	}

	fmt.Println("Every run above finishes with the reference answer despite losing up to")
	fmt.Println("15 of 64 processors mid-run; only the completion time differs. Build your")
	fmt.Println("own regimes by composing faults.Burst / Cascade / Correlated with Merge.")
}
