// Top-level benchmarks: one per reproduced artifact, as indexed in
// DESIGN.md §4. They exercise exactly the code paths the experiment tables
// report (same drivers), so `go test -bench=. -benchmem` regenerates the
// performance shape of every figure and table. Custom metrics report the
// interesting virtual-time quantities alongside wall-clock ns/op.
package main

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/topology"
)

// mustWorkload resolves a spec or aborts the benchmark.
func mustWorkload(b *testing.B, spec string) core.Workload {
	b.Helper()
	w, err := core.StandardWorkload(spec)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// runOnce executes one configured run and reports virtual-time metrics.
func runOnce(b *testing.B, cfg core.Config, w core.Workload, plan *faults.Plan) *core.Report {
	b.Helper()
	rep, err := cfg.Run(w, plan)
	if err != nil {
		b.Fatal(err)
	}
	if rep.Err != nil {
		b.Fatal(rep.Err)
	}
	return rep
}

// --- F1/F2: the Figure 1 tree under both recovery schemes ---

func BenchmarkFig1RollbackRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := scenario.RunFig1Rollback()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("figure 1 run did not complete")
		}
	}
}

func BenchmarkFig23SpliceRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := scenario.RunFig23Splice()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("figures 2-3 run did not complete")
		}
	}
}

// --- F5/F6: ordering cases and state sweep ---

func BenchmarkFig5EightCases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for c := 1; c <= 8; c++ {
			res, err := scenario.RunFig5Case(c)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Completed {
				b.Fatalf("case %d failed", c)
			}
		}
	}
}

func BenchmarkFig67StateSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, scheme := range []string{"rollback", "splice"} {
			for st := byte('a'); st <= 'g'; st++ {
				res, err := scenario.RunFig67State(st, scheme)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatalf("state %c/%s failed", st, scheme)
				}
			}
		}
	}
}

// --- T1: fault-free overhead ---

func BenchmarkOverheadNoFaultTolerance(b *testing.B) {
	w := mustWorkload(b, "fib:13")
	var last *core.Report
	for i := 0; i < b.N; i++ {
		last = runOnce(b, core.Config{Procs: 8, Seed: 1, DisableCheckpoints: true}, w, nil)
	}
	b.ReportMetric(float64(last.Makespan), "vticks")
	b.ReportMetric(float64(last.Sim.Metrics.TotalMessages()), "msgs")
}

func BenchmarkOverheadFunctionalCkpt(b *testing.B) {
	w := mustWorkload(b, "fib:13")
	var last *core.Report
	for i := 0; i < b.N; i++ {
		last = runOnce(b, core.Config{Procs: 8, Seed: 1, Recovery: "rollback"}, w, nil)
	}
	b.ReportMetric(float64(last.Makespan), "vticks")
	b.ReportMetric(float64(last.Sim.Metrics.CheckpointBytes), "ckptB")
}

func BenchmarkOverheadPeriodicGlobalModel(b *testing.B) {
	w := mustWorkload(b, "fib:13")
	cfg := core.Config{Procs: 8, Seed: 1, DisableCheckpoints: true,
		Raw: &machine.Config{StateProbeEvery: 64}}
	var pause int64
	for i := 0; i < b.N; i++ {
		rep := runOnce(b, cfg, w, nil)
		out, err := baseline.Model(baseline.DefaultPGCParams(int64(rep.Makespan)/10), rep.Sim)
		if err != nil {
			b.Fatal(err)
		}
		pause = out.PauseTotal
	}
	b.ReportMetric(float64(pause), "pause_vticks")
}

// --- T2: recovery cost by fault time ---

func benchRecoveryAt(b *testing.B, scheme string, frac int64) {
	w := mustWorkload(b, "tree:3,6")
	cfg := core.Config{Procs: 9, Seed: 1, Recovery: scheme}
	base := runOnce(b, cfg, w, nil)
	at := int64(base.Makespan) * frac / 100
	var last *core.Report
	for i := 0; i < b.N; i++ {
		last = runOnce(b, cfg, w, faults.Crash(1, at, true))
		if !last.Completed {
			b.Fatal("recovery failed")
		}
	}
	b.ReportMetric(float64(last.Makespan)/float64(base.Makespan), "slowdown")
	b.ReportMetric(float64(last.Sim.Metrics.StepsExecuted-base.Sim.Metrics.StepsExecuted), "extra_steps")
}

func BenchmarkRecoveryRollbackEarlyFault(b *testing.B) { benchRecoveryAt(b, "rollback", 20) }
func BenchmarkRecoveryRollbackLateFault(b *testing.B)  { benchRecoveryAt(b, "rollback", 80) }
func BenchmarkRecoverySpliceEarlyFault(b *testing.B)   { benchRecoveryAt(b, "splice", 20) }
func BenchmarkRecoverySpliceLateFault(b *testing.B)    { benchRecoveryAt(b, "splice", 80) }

// --- T3: processor scaling ---

func benchScale(b *testing.B, procs int) {
	w := mustWorkload(b, "tree:3,6")
	cfg := core.Config{Procs: procs, Seed: 1, Recovery: "rollback"}
	var last *core.Report
	for i := 0; i < b.N; i++ {
		last = runOnce(b, cfg, w, nil)
	}
	b.ReportMetric(float64(last.Makespan), "vticks")
}

func BenchmarkScaleProcs4(b *testing.B)  { benchScale(b, 4) }
func BenchmarkScaleProcs16(b *testing.B) { benchScale(b, 16) }
func BenchmarkScaleProcs64(b *testing.B) { benchScale(b, 64) }

// --- T4: multiple faults ---

func BenchmarkMultiFaultSpliceSeparateBranches(b *testing.B) {
	w := mustWorkload(b, "tree:4,5")
	plan := faults.None().
		Add(faults.Fault{At: 800, Proc: 1, Kind: faults.CrashAnnounced}).
		Add(faults.Fault{At: 2000, Proc: 5, Kind: faults.CrashAnnounced})
	cfg := core.Config{Procs: 9, Seed: 1, Recovery: "splice"}
	for i := 0; i < b.N; i++ {
		rep := runOnce(b, cfg, w, plan)
		if !rep.Completed {
			b.Fatal("multi-fault recovery failed")
		}
	}
}

// --- T5: replication and voting ---

func benchReplication(b *testing.B, r int) {
	prog := lang.CriticalSections(12, 400)
	w := core.Workload{Program: prog, Fn: "main"}
	plan := &faults.Plan{Faults: []faults.Fault{{At: 0, Proc: 3, Kind: faults.Corrupt}}}
	cfg := core.Config{Procs: 8, Seed: 1}
	if r > 1 {
		cfg.Replication = map[string]int{"work": r}
	}
	var last *core.Report
	for i := 0; i < b.N; i++ {
		last = runOnce(b, cfg, w, plan)
	}
	b.ReportMetric(float64(last.Sim.Metrics.Votes), "votes")
	b.ReportMetric(float64(last.Sim.Metrics.MsgTask), "task_msgs")
}

func BenchmarkReplicationVotingR1(b *testing.B) { benchReplication(b, 1) }
func BenchmarkReplicationVotingR3(b *testing.B) { benchReplication(b, 3) }
func BenchmarkReplicationVotingR5(b *testing.B) { benchReplication(b, 5) }

// --- T6: placement policies through a fault ---

func benchPlacement(b *testing.B, placement string) {
	w := mustWorkload(b, "tree:3,6")
	cfg := core.Config{Procs: 9, Seed: 1, Recovery: "rollback", Placement: placement}
	base := runOnce(b, cfg, w, nil)
	at := int64(base.Makespan) / 2
	var last *core.Report
	for i := 0; i < b.N; i++ {
		last = runOnce(b, cfg, w, faults.Crash(1, at, true))
		if !last.Completed {
			b.Fatal("recovery failed")
		}
	}
	b.ReportMetric(float64(last.Makespan)/float64(base.Makespan), "stretch")
}

func BenchmarkStaticVsDynamicRecoveryGradient(b *testing.B) { benchPlacement(b, "gradient") }
func BenchmarkStaticVsDynamicRecoveryRandom(b *testing.B)   { benchPlacement(b, "random") }
func BenchmarkStaticVsDynamicRecoveryStatic(b *testing.B)   { benchPlacement(b, "static") }

// --- T7: TMR baseline ---

func BenchmarkTMRBaseline(b *testing.B) {
	w := mustWorkload(b, "fib:10")
	cfg := core.Config{Procs: 8, Seed: 1,
		Replication: baseline.ReplicateAll(w.Program.Names(), 3)}
	var last *core.Report
	for i := 0; i < b.N; i++ {
		last = runOnce(b, cfg, w, nil)
	}
	b.ReportMetric(float64(last.Sim.Metrics.StepsExecuted), "steps")
}

// --- Ablations ---

func BenchmarkAblationEagerAbort(b *testing.B) {
	w := mustWorkload(b, "tree:3,6")
	cfg := core.Config{Procs: 9, Seed: 1, Recovery: "rollback"}
	base := runOnce(b, cfg, w, nil)
	at := int64(base.Makespan) / 2
	var last *core.Report
	for i := 0; i < b.N; i++ {
		last = runOnce(b, cfg, w, faults.Crash(1, at, true))
	}
	b.ReportMetric(float64(last.Sim.Metrics.StepsWasted), "wasted_steps")
}

func BenchmarkAblationLazyAbort(b *testing.B) {
	w := mustWorkload(b, "tree:3,6")
	cfg := core.Config{Procs: 9, Seed: 1, Recovery: "rollback-lazy"}
	base := runOnce(b, cfg, w, nil)
	at := int64(base.Makespan) / 2
	var last *core.Report
	for i := 0; i < b.N; i++ {
		last = runOnce(b, cfg, w, faults.Crash(1, at, true))
	}
	b.ReportMetric(float64(last.Sim.Metrics.StepsWasted), "wasted_steps")
}

func BenchmarkAblationNoSuppression(b *testing.B) {
	w := mustWorkload(b, "tree:3,6")
	cfg := core.Config{Procs: 9, Seed: 1, Recovery: "rollback-nosuppress"}
	base := runOnce(b, cfg, w, nil)
	at := int64(base.Makespan) * 2 / 3
	var last *core.Report
	for i := 0; i < b.N; i++ {
		last = runOnce(b, cfg, w, faults.Crash(1, at, true))
	}
	b.ReportMetric(float64(last.Sim.Metrics.Reissues), "reissues")
}

// --- End-to-end table generation through the runner registry ---

// lookupTable resolves a table driver from the shared registry, so the
// benchmarks exercise exactly what cmd/experiments runs.
func lookupTable(b *testing.B, id string) func(int64) (*runner.Result, error) {
	b.Helper()
	reg := runner.Default()
	if _, ok := reg.Lookup(id); !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	return func(seed int64) (*runner.Result, error) {
		results, err := reg.RunIDs(id, runner.Options{Seeds: []int64{seed}, Parallel: 1})
		if err != nil {
			return nil, err
		}
		return results[0], nil
	}
}

func BenchmarkExperimentT1Table(b *testing.B) {
	run := lookupTable(b, "T1")
	for i := 0; i < b.N; i++ {
		if _, err := run(1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- S1–S3: stress scenarios (irregular topologies, cascades, density) ---

func BenchmarkStressS1TopologySweep(b *testing.B) {
	run := lookupTable(b, "S1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStressS2CascadeRecovery(b *testing.B) {
	run := lookupTable(b, "S2")
	for i := 0; i < b.N; i++ {
		if _, err := run(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStressS3FaultDensity(b *testing.B) {
	run := lookupTable(b, "S3")
	for i := 0; i < b.N; i++ {
		if _, err := run(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStressS4ShapeDiversity(b *testing.B) {
	run := lookupTable(b, "S4")
	for i := 0; i < b.N; i++ {
		if _, err := run(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceL3Stream drives the full service-mode stream (32
// multiplexed requests, mid-stream bursts and cascades, rollback and
// splice) on the simulator — the profile target for session-kernel work.
func BenchmarkServiceL3Stream(b *testing.B) {
	run := lookupTable(b, "L3")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelS1Mesh64 isolates the hottest S1 cell — one fault-free
// fib:13 run on a 64-processor mesh under rollback checkpointing — without
// the table scaffolding, so CPU/alloc profiles point straight at the
// kernel, processor, and evaluator hot paths. This and BenchmarkServiceL3Stream
// are the two profile targets the BENCH_4 wall-time gate watches.
func BenchmarkKernelS1Mesh64(b *testing.B) {
	w := mustWorkload(b, "fib:13")
	cfg := core.Config{Procs: 64, Seed: 1, Recovery: "rollback", Topology: "mesh"}
	var last *core.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		last = runOnce(b, cfg, w, nil)
		if !last.Completed {
			b.Fatal("S1 mesh cell did not complete")
		}
	}
	b.ReportMetric(float64(last.Makespan), "vticks")
	b.ReportMetric(float64(last.Sim.Metrics.TotalMessages()), "msgs")
}

// BenchmarkKernelS1Mesh64Compiled is the same S1 cell under the bytecode
// evaluator. The virtual metrics must match BenchmarkKernelS1Mesh64 exactly
// (the compiled evaluator preserves the step-count contract); only ns/op
// may move, tracking what compilation buys on the reduction hot path.
func BenchmarkKernelS1Mesh64Compiled(b *testing.B) {
	w := mustWorkload(b, "fib:13")
	cfg := core.Config{Procs: 64, Seed: 1, Recovery: "rollback", Topology: "mesh", Eval: "compiled"}
	var last *core.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		last = runOnce(b, cfg, w, nil)
		if !last.Completed {
			b.Fatal("compiled S1 mesh cell did not complete")
		}
	}
	b.ReportMetric(float64(last.Makespan), "vticks")
	b.ReportMetric(float64(last.Sim.Metrics.TotalMessages()), "msgs")
}

// BenchmarkKernelS1Mesh64Sharded4 is the same S1 cell on the 4-shard
// conservative kernel. The virtual metrics must match BenchmarkKernelS1Mesh64
// exactly (sharding is a pure representation change); only ns/op may move,
// tracking the cost or payoff of the lockstep windows on this machine.
func BenchmarkKernelS1Mesh64Sharded4(b *testing.B) {
	w := mustWorkload(b, "fib:13")
	cfg := core.Config{Procs: 64, Seed: 1, Recovery: "rollback", Topology: "mesh", Shards: 4}
	var last *core.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		last = runOnce(b, cfg, w, nil)
		if !last.Completed {
			b.Fatal("sharded S1 mesh cell did not complete")
		}
	}
	b.ReportMetric(float64(last.Makespan), "vticks")
	b.ReportMetric(float64(last.Sim.Metrics.TotalMessages()), "msgs")
}

// BenchmarkServiceL3StreamSharded4 runs the L3 service stream with every
// cell on the 4-shard kernel, covering the cross-shard admission path and
// the per-pair outbox merges under the full protocol workload.
func BenchmarkServiceL3StreamSharded4(b *testing.B) {
	run := lookupTable(b, "L3")
	saved := core.DefaultShards
	core.DefaultShards = 4
	defer func() { core.DefaultShards = saved }()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceL3StreamCompiled runs the L3 service stream under the
// bytecode evaluator — the second profile target's compiled series.
func BenchmarkServiceL3StreamCompiled(b *testing.B) {
	run := lookupTable(b, "L3")
	saved := core.DefaultEval
	core.DefaultEval = "compiled"
	defer func() { core.DefaultEval = saved }()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCascade64Torus isolates the hot path S2 stresses: one cascade
// recovery on the 64-processor torus, without the table scaffolding.
func BenchmarkCascade64Torus(b *testing.B) {
	w := mustWorkload(b, "tree:3,6")
	topo, err := topology.ByName("torus", 64)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Procs: 64, Seed: 1, Recovery: "splice", Topology: "torus"}
	base := runOnce(b, cfg, w, nil)
	m0 := int64(base.Makespan)
	plan := faults.Cascade(topo, 9, m0*3/10, m0/10, 2, 1.0, faults.CrashAnnounced, 1)
	var last *core.Report
	for i := 0; i < b.N; i++ {
		last = runOnce(b, cfg, w, plan)
		if !last.Completed {
			b.Fatal("cascade recovery failed")
		}
	}
	b.ReportMetric(float64(last.Makespan)/float64(m0), "slowdown")
	b.ReportMetric(float64(last.Sim.Metrics.Twins+last.Sim.Metrics.Reissues), "twins_reissues")
}

// BenchmarkRunnerSeedSweepSequential and ...Parallel measure the engine's
// fan-out win on a 3-seed T7 sweep (each cell builds its own machine, so
// the grid parallelizes cleanly).
func benchSeedSweep(b *testing.B, parallel int) {
	reg := runner.Default()
	opt := runner.Options{Seeds: runner.SeedRange(1, 3), Parallel: parallel}
	for i := 0; i < b.N; i++ {
		results, err := reg.RunIDs("T7", opt)
		if err != nil {
			b.Fatal(err)
		}
		if results[0].Summary == nil {
			b.Fatal("missing multi-seed aggregate")
		}
	}
}

func BenchmarkRunnerSeedSweepSequential(b *testing.B) { benchSeedSweep(b, 1) }
func BenchmarkRunnerSeedSweepParallel(b *testing.B)   { benchSeedSweep(b, 3) }
