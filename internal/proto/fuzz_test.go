package proto

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/expr"
	"repro/internal/stamp"
)

// The codec is now a real wire boundary: net-backend children decode bytes
// produced by another OS process, so arbitrary input must either decode
// cleanly or fail with a typed error — never panic, hang, or decode into a
// value that does not re-encode canonically. Seed corpus lives under
// testdata/fuzz; run with `go test -fuzz FuzzDecodePacket ./internal/proto`.

func fuzzSeedPacket() *TaskPacket {
	return &TaskPacket{
		Key:       TaskKey{Stamp: stamp.FromPath(2, 0, 5), Rep: 1},
		Gen:       4,
		ParentGen: 2,
		Fn:        "fib",
		Args:      []expr.Value{expr.VInt(17), expr.IntList(3, 1, 4)},
		Parent:    Addr{Proc: 6, Task: TaskKey{Stamp: stamp.FromPath(2, 0)}},
		HoleID:    5,
		Ancestors: []Addr{{Proc: 2, Task: TaskKey{Stamp: stamp.FromPath(2)}}},
		Twin:      true,
		Replicas:  1,
	}
}

func FuzzDecodePacket(f *testing.F) {
	enc := EncodePacket(fuzzSeedPacket())
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePacket(data)
		if err != nil {
			if !errors.Is(err, ErrPacketCodec) {
				t.Fatalf("DecodePacket error not wrapped in ErrPacketCodec: %v", err)
			}
			return
		}
		// Accepted input must re-encode canonically: a second round trip is
		// a fixed point (the first may normalize, e.g. unknown flag bits).
		enc1 := EncodePacket(p)
		p2, err := DecodePacket(enc1)
		if err != nil {
			t.Fatalf("re-decode of accepted packet failed: %v", err)
		}
		if enc2 := EncodePacket(p2); !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode not a fixed point:\n  enc1 %x\n  enc2 %x", enc1, enc2)
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	enc := EncodeResult(&Result{
		Child:      TaskKey{Stamp: stamp.FromPath(1, 3)},
		ParentTask: TaskKey{Stamp: stamp.FromPath(1)},
		HoleID:     3,
		Value:      expr.IntList(8, 13),
		DeadParent: Addr{Proc: 4, Task: TaskKey{Stamp: stamp.FromPath(1)}},
		Remaining:  []Addr{{Proc: 0, Task: TaskKey{Stamp: stamp.Root()}}},
	})
	f.Add(enc)
	f.Add(enc[:len(enc)-3])
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(data)
		if err != nil {
			if !errors.Is(err, ErrPacketCodec) {
				t.Fatalf("DecodeResult error not wrapped in ErrPacketCodec: %v", err)
			}
			return
		}
		enc1 := EncodeResult(r)
		r2, err := DecodeResult(enc1)
		if err != nil {
			t.Fatalf("re-decode of accepted result failed: %v", err)
		}
		if enc2 := EncodeResult(r2); !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode not a fixed point:\n  enc1 %x\n  enc2 %x", enc1, enc2)
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	one := AppendFrame(nil, &Frame{Type: FrameHeartbeat, From: 2, To: HostID})
	two := AppendFrame(one, &Frame{
		Type: FrameSpawn, Flags: FlagReissue, From: HostID, To: 3,
		Payload: EncodePacket(fuzzSeedPacket()),
	})
	f.Add(two)
	f.Add(one[:FrameHeaderSize-2])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := ReadFrame(r)
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && !errors.Is(err, ErrFrame) {
					t.Fatalf("ReadFrame error outside the contract: %v", err)
				}
				return
			}
			var buf bytes.Buffer
			if _, err := WriteFrame(&buf, fr); err != nil {
				t.Fatalf("accepted frame does not re-write: %v", err)
			}
			back, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("re-read of accepted frame failed: %v", err)
			}
			if back.Type != fr.Type || back.Flags != fr.Flags ||
				back.From != fr.From || back.To != fr.To ||
				!bytes.Equal(back.Payload, fr.Payload) {
				t.Fatalf("frame round trip drifted: %+v vs %+v", back, fr)
			}
		}
	})
}
