package proto

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/stamp"
)

func TestFrameRoundTrip(t *testing.T) {
	pkt := &TaskPacket{
		Key:    TaskKey{Stamp: stamp.FromPath(3, 1)},
		Fn:     "fib",
		Args:   []expr.Value{expr.VInt(12)},
		Parent: Addr{Proc: 2, Task: TaskKey{Stamp: stamp.FromPath(3)}},
		HoleID: 1,
	}
	frames := []*Frame{
		{Type: FrameHello, From: 3, To: HostID, Payload: []byte{0, 0, 0, 3}},
		{Type: FrameSpawn, Flags: FlagReissue, From: 1, To: 5, Payload: EncodePacket(pkt)},
		{Type: FrameHeartbeat, From: 0, To: HostID},
		{Type: FrameNodeDown, From: HostID, To: 4, Payload: []byte{0, 0, 0, 2}},
	}
	var buf bytes.Buffer
	total := 0
	for _, f := range frames {
		n, err := WriteFrame(&buf, f)
		if err != nil {
			t.Fatalf("WriteFrame(%v): %v", f.Type, err)
		}
		if n != f.WireSize() {
			t.Fatalf("WriteFrame(%v) wrote %d bytes, WireSize says %d", f.Type, n, f.WireSize())
		}
		total += n
	}
	if buf.Len() != total {
		t.Fatalf("stream length %d != sum of writes %d", buf.Len(), total)
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%v): %v", want.Type, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags ||
			got.From != want.From || got.To != want.To ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("ReadFrame at boundary = %v, want io.EOF", err)
	}
}

func TestFrameSpawnPayloadRoundTrip(t *testing.T) {
	pkt := &TaskPacket{
		Key:       TaskKey{Stamp: stamp.FromPath(0, 2, 7)},
		Gen:       3,
		ParentGen: 1,
		Fn:        "tak",
		Args:      []expr.Value{expr.VInt(8), expr.VInt(4), expr.VInt(2)},
		Parent:    Addr{Proc: 1, Task: TaskKey{Stamp: stamp.FromPath(0, 2)}},
		HoleID:    7,
		Reissue:   true,
	}
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, &Frame{Type: FrameSpawn, From: 1, To: 2, Payload: EncodePacket(pkt)}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePacket(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != pkt.Key || got.Fn != pkt.Fn || got.HoleID != pkt.HoleID || !got.Reissue {
		t.Fatalf("packet through a frame: got %+v, want %+v", got, pkt)
	}
}

// TestFrameMalformed is the wire-boundary rejection table: every truncated or
// corrupt prefix must fail with a typed error, never hang or panic, because
// the codec now reads from real sockets fed by other processes.
func TestFrameMalformed(t *testing.T) {
	valid := AppendFrame(nil, &Frame{Type: FrameSpawn, From: 1, To: 2, Payload: []byte("payload")})
	oversize := AppendFrame(nil, &Frame{Type: FrameHeartbeat, From: 0, To: HostID})
	oversize[0], oversize[1], oversize[2], oversize[3] = 0xff, 0xff, 0xff, 0xff
	badType := append([]byte(nil), valid...)
	badType[4] = 0 // zero type: the all-zero torn-stream shape
	hugeType := append([]byte(nil), valid...)
	hugeType[4] = byte(frameTypeEnd)
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty stream", nil, io.EOF},
		{"torn header", valid[:3], io.ErrUnexpectedEOF},
		{"header only", valid[:FrameHeaderSize], io.ErrUnexpectedEOF},
		{"torn payload", valid[:len(valid)-2], io.ErrUnexpectedEOF},
		{"zero type", badType, ErrFrame},
		{"unknown type", hugeType, ErrFrame},
		{"oversized length", oversize, ErrFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(tc.in))
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadFrame(%q) = %v, want %v", tc.in, err, tc.want)
			}
		})
	}
	// The write side refuses what the read side would reject.
	if _, err := WriteFrame(io.Discard, &Frame{Type: 0}); !errors.Is(err, ErrFrame) {
		t.Fatalf("WriteFrame(type 0) = %v, want ErrFrame", err)
	}
	if _, err := WriteFrame(io.Discard, &Frame{Type: FrameSpawn, Payload: make([]byte, MaxFramePayload+1)}); !errors.Is(err, ErrFrame) {
		t.Fatalf("WriteFrame(oversize) = %v, want ErrFrame", err)
	}
}

// TestPacketMalformed is the codec-level rejection table: truncations of a
// valid packet/result encoding at every field boundary must fail cleanly.
func TestPacketMalformed(t *testing.T) {
	pkt := &TaskPacket{
		Key:       TaskKey{Stamp: stamp.FromPath(1, 2)},
		Fn:        "f",
		Args:      []expr.Value{expr.VInt(7), expr.IntList(1, 2)},
		Parent:    Addr{Proc: 3, Task: TaskKey{Stamp: stamp.FromPath(1)}},
		HoleID:    2,
		Ancestors: []Addr{{Proc: 0, Task: TaskKey{Stamp: stamp.Root()}}},
	}
	enc := EncodePacket(pkt)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodePacket(enc[:cut]); !errors.Is(err, ErrPacketCodec) {
			t.Fatalf("DecodePacket(enc[:%d]) = %v, want ErrPacketCodec", cut, err)
		}
	}
	if _, err := DecodePacket(append(append([]byte(nil), enc...), 0xaa)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("DecodePacket(trailing byte) = %v, want trailing-bytes error", err)
	}
	res := &Result{
		Child:      TaskKey{Stamp: stamp.FromPath(1, 2)},
		ParentTask: TaskKey{Stamp: stamp.FromPath(1)},
		HoleID:     2,
		Value:      expr.VInt(9),
		DeadParent: Addr{Proc: 1, Task: TaskKey{Stamp: stamp.FromPath(1)}},
	}
	encR := EncodeResult(res)
	for cut := 0; cut < len(encR); cut++ {
		if _, err := DecodeResult(encR[:cut]); !errors.Is(err, ErrPacketCodec) {
			t.Fatalf("DecodeResult(enc[:%d]) = %v, want ErrPacketCodec", cut, err)
		}
	}
}
