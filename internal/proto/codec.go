package proto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/expr"
	"repro/internal/stamp"
)

// Binary codec for task packets and results. The simulator shares immutable
// values in memory, so this codec is not on the hot path — it exists to
// prove §2.1's claim that "the packet contains all necessary information,
// either directly or indirectly accessible, to activate the child task": a
// packet survives a byte-level round trip with nothing external, which is
// what storing it on a peer processor (§2) requires. The checkpoint and
// message byte accounting uses EncodedSize, which these functions validate
// against in tests.

// ErrPacketCodec wraps packet/result decoding errors.
var ErrPacketCodec = errors.New("proto: codec")

func appendStamp(buf []byte, s stamp.Stamp) []byte {
	raw := s.Key()
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(raw)))
	return append(buf, raw...)
}

func decodeStamp(buf []byte) (stamp.Stamp, []byte, error) {
	if len(buf) < 2 {
		return stamp.Stamp{}, nil, fmt.Errorf("%w: short stamp header", ErrPacketCodec)
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < n {
		return stamp.Stamp{}, nil, fmt.Errorf("%w: short stamp body", ErrPacketCodec)
	}
	s, err := stamp.Decode(string(buf[:n]))
	if err != nil {
		return stamp.Stamp{}, nil, fmt.Errorf("%w: %v", ErrPacketCodec, err)
	}
	return s, buf[n:], nil
}

func appendKey(buf []byte, k TaskKey) []byte {
	buf = appendStamp(buf, k.Stamp)
	return binary.BigEndian.AppendUint64(buf, uint64(k.Rep))
}

func decodeKey(buf []byte) (TaskKey, []byte, error) {
	s, rest, err := decodeStamp(buf)
	if err != nil {
		return TaskKey{}, nil, err
	}
	if len(rest) < 8 {
		return TaskKey{}, nil, fmt.Errorf("%w: short key rep", ErrPacketCodec)
	}
	return TaskKey{Stamp: s, Rep: Rep(binary.BigEndian.Uint64(rest))}, rest[8:], nil
}

func appendAddr(buf []byte, a Addr) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.Proc))
	return appendKey(buf, a.Task)
}

func decodeAddr(buf []byte) (Addr, []byte, error) {
	if len(buf) < 4 {
		return Addr{}, nil, fmt.Errorf("%w: short addr", ErrPacketCodec)
	}
	proc := ProcID(int32(binary.BigEndian.Uint32(buf)))
	key, rest, err := decodeKey(buf[4:])
	if err != nil {
		return Addr{}, nil, err
	}
	return Addr{Proc: proc, Task: key}, rest, nil
}

func appendString16(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func decodeString16(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", nil, fmt.Errorf("%w: short string header", ErrPacketCodec)
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < n {
		return "", nil, fmt.Errorf("%w: short string body", ErrPacketCodec)
	}
	return string(buf[:n]), buf[n:], nil
}

// EncodePacket serializes a task packet to bytes.
func EncodePacket(p *TaskPacket) []byte {
	buf := appendKey(nil, p.Key)
	buf = binary.BigEndian.AppendUint64(buf, p.Gen)
	buf = binary.BigEndian.AppendUint64(buf, p.ParentGen)
	buf = appendString16(buf, p.Fn)
	buf = append(buf, expr.EncodeValues(p.Args)...)
	buf = appendAddr(buf, p.Parent)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.HoleID))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Ancestors)))
	for _, a := range p.Ancestors {
		buf = appendAddr(buf, a)
	}
	flags := byte(0)
	if p.Twin {
		flags |= 1
	}
	if p.Reissue {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(p.Replicas))
	return buf
}

// DecodePacket inverts EncodePacket.
func DecodePacket(buf []byte) (*TaskPacket, error) {
	p := &TaskPacket{}
	var err error
	p.Key, buf, err = decodeKey(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) < 16 {
		return nil, fmt.Errorf("%w: short generations", ErrPacketCodec)
	}
	p.Gen = binary.BigEndian.Uint64(buf)
	p.ParentGen = binary.BigEndian.Uint64(buf[8:])
	buf = buf[16:]
	p.Fn, buf, err = decodeString16(buf)
	if err != nil {
		return nil, err
	}
	p.Args, buf, err = expr.DecodeValues(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPacketCodec, err)
	}
	p.Parent, buf, err = decodeAddr(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) < 6 {
		return nil, fmt.Errorf("%w: short hole/ancestor header", ErrPacketCodec)
	}
	p.HoleID = int(int32(binary.BigEndian.Uint32(buf)))
	nAnc := int(binary.BigEndian.Uint16(buf[4:]))
	buf = buf[6:]
	for i := 0; i < nAnc; i++ {
		var a Addr
		a, buf, err = decodeAddr(buf)
		if err != nil {
			return nil, err
		}
		p.Ancestors = append(p.Ancestors, a)
	}
	if len(buf) < 3 {
		return nil, fmt.Errorf("%w: short flags", ErrPacketCodec)
	}
	p.Twin = buf[0]&1 != 0
	p.Reissue = buf[0]&2 != 0
	p.Replicas = int(binary.BigEndian.Uint16(buf[1:]))
	if rest := buf[3:]; len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrPacketCodec, len(rest))
	}
	return p, nil
}

// EncodeResult serializes a result payload.
func EncodeResult(r *Result) []byte {
	buf := appendKey(nil, r.Child)
	buf = appendKey(buf, r.ParentTask)
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.HoleID))
	buf = append(buf, expr.EncodeValue(r.Value)...)
	buf = appendAddr(buf, r.DeadParent)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Remaining)))
	for _, a := range r.Remaining {
		buf = appendAddr(buf, a)
	}
	return buf
}

// DecodeResult inverts EncodeResult.
func DecodeResult(buf []byte) (*Result, error) {
	r := &Result{}
	var err error
	r.Child, buf, err = decodeKey(buf)
	if err != nil {
		return nil, err
	}
	r.ParentTask, buf, err = decodeKey(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: short hole id", ErrPacketCodec)
	}
	r.HoleID = int(int32(binary.BigEndian.Uint32(buf)))
	buf = buf[4:]
	r.Value, buf, err = expr.DecodeValue(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPacketCodec, err)
	}
	r.DeadParent, buf, err = decodeAddr(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) < 2 {
		return nil, fmt.Errorf("%w: short remaining header", ErrPacketCodec)
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	for i := 0; i < n; i++ {
		var a Addr
		a, buf, err = decodeAddr(buf)
		if err != nil {
			return nil, err
		}
		r.Remaining = append(r.Remaining, a)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrPacketCodec, len(buf))
	}
	return r, nil
}
