package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Length-prefixed framing for the net backend, where the packet/result codec
// becomes an actual wire format between OS processes. A frame is:
//
//	uint32  payload length (big-endian, excludes the header)
//	byte    frame type
//	byte    flags
//	int32   from (ProcID; HostID = -1 is the parent supervisor)
//	int32   to
//	[]byte  payload (length bytes)
//
// The header is fixed-width so a reader can reject a malformed stream before
// allocating: unknown types and oversized lengths fail with ErrFrame, and a
// stream cut mid-frame fails with io.ErrUnexpectedEOF rather than hanging.

// FrameHeaderSize is the fixed wire size of a frame header.
const FrameHeaderSize = 4 + 1 + 1 + 4 + 4

// MaxFramePayload bounds a single frame. Task packets are small (a stamp,
// a function name, scalar arguments); program listings are a few KiB. A
// length field past this bound means a corrupt or hostile stream, not a big
// message.
const MaxFramePayload = 8 << 20

// FrameType enumerates the net-transport frame vocabulary.
type FrameType byte

// Frame types. The zero value is invalid so an all-zero header (a common
// torn-stream shape) never decodes.
const (
	// FrameHello is the child's handshake: payload names its node id and pid.
	FrameHello FrameType = 1 + iota
	// FrameProgram loads a program on a node: payload is a program index and
	// the lang.Format source text (code is shipped once, not per packet).
	FrameProgram
	// FrameSpawn carries a task packet (EncodePacket bytes after a program
	// index) toward a node — the functional checkpoint in flight.
	FrameSpawn
	// FrameResult carries a Result (EncodeResult bytes) back to the parent
	// task's node, or to the supervisor for super-root results.
	FrameResult
	// FrameNodeDown announces a dead node to a survivor (§4.2's
	// error-detection message, as gossip from the supervisor).
	FrameNodeDown
	// FrameHeartbeat is the child's periodic liveness probe to the supervisor.
	FrameHeartbeat
	// FrameStats is the child's final counter report during graceful shutdown.
	FrameStats
	// FrameShutdown asks a child to report stats and exit (graceful Close
	// only — fault injection is SIGKILL and sends nothing).
	FrameShutdown

	frameTypeEnd // one past the last valid type
)

var frameNames = map[FrameType]string{
	FrameHello: "hello", FrameProgram: "program", FrameSpawn: "spawn",
	FrameResult: "result", FrameNodeDown: "node-down",
	FrameHeartbeat: "heartbeat", FrameStats: "stats", FrameShutdown: "shutdown",
}

func (t FrameType) String() string {
	if s, ok := frameNames[t]; ok {
		return s
	}
	return fmt.Sprintf("FrameType(%d)", byte(t))
}

// Frame flag bits.
const (
	// FlagReissue marks a FrameSpawn that re-executes a retained checkpoint
	// after a failure, so the supervisor can count recovery traffic without
	// decoding payloads.
	FlagReissue byte = 1 << iota
)

// ErrFrame wraps malformed-frame errors.
var ErrFrame = errors.New("proto: frame")

// Frame is one length-prefixed message on a net-transport connection.
type Frame struct {
	Type     FrameType
	Flags    byte
	From, To ProcID
	Payload  []byte
}

// WireSize is the frame's full encoded size in bytes, header included.
func (f *Frame) WireSize() int { return FrameHeaderSize + len(f.Payload) }

// AppendFrame appends the frame's wire encoding to buf.
func AppendFrame(buf []byte, f *Frame) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Payload)))
	buf = append(buf, byte(f.Type), f.Flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.From))
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.To))
	return append(buf, f.Payload...)
}

// WriteFrame writes one frame and returns the bytes written. Callers that
// share a connection across goroutines serialize writes themselves.
func WriteFrame(w io.Writer, f *Frame) (int, error) {
	if len(f.Payload) > MaxFramePayload {
		return 0, fmt.Errorf("%w: payload %d exceeds %d", ErrFrame, len(f.Payload), MaxFramePayload)
	}
	if f.Type <= 0 || f.Type >= frameTypeEnd {
		return 0, fmt.Errorf("%w: invalid type %d", ErrFrame, f.Type)
	}
	return w.Write(AppendFrame(nil, f))
}

// ReadFrame reads one frame. A clean EOF at a frame boundary returns io.EOF;
// a stream cut inside a frame returns io.ErrUnexpectedEOF; a header whose
// type or length is invalid returns ErrFrame without reading the payload.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // io.EOF at a boundary stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFramePayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrFrame, n, MaxFramePayload)
	}
	t := FrameType(hdr[4])
	if t <= 0 || t >= frameTypeEnd {
		return nil, fmt.Errorf("%w: invalid type %d", ErrFrame, hdr[4])
	}
	f := &Frame{
		Type:  t,
		Flags: hdr[5],
		From:  ProcID(int32(binary.BigEndian.Uint32(hdr[6:]))),
		To:    ProcID(int32(binary.BigEndian.Uint32(hdr[10:]))),
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return f, nil
}
