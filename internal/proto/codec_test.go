package proto

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/stamp"
)

func randomKey(r *rand.Rand) TaskKey {
	s := stamp.Root()
	for d := r.Intn(5); d > 0; d-- {
		s = s.Child(uint32(r.Intn(6)))
	}
	return TaskKey{Stamp: s, Rep: Rep(r.Intn(4))}
}

func randomAddr(r *rand.Rand) Addr {
	return Addr{Proc: ProcID(r.Intn(10) - 1), Task: randomKey(r)}
}

func randomPacket(r *rand.Rand) *TaskPacket {
	p := &TaskPacket{
		Key:       randomKey(r),
		Gen:       r.Uint64(),
		ParentGen: r.Uint64(),
		Fn:        []string{"fib", "work", "n_3_17"}[r.Intn(3)],
		Parent:    randomAddr(r),
		HoleID:    r.Intn(16),
		Twin:      r.Intn(2) == 0,
		Reissue:   r.Intn(2) == 0,
		Replicas:  1 + r.Intn(5),
	}
	for i := r.Intn(3); i > 0; i-- {
		p.Args = append(p.Args, expr.VInt(r.Int63n(1000)))
	}
	if r.Intn(2) == 0 {
		p.Args = append(p.Args, expr.IntList(1, 2, 3))
	}
	for i := r.Intn(3); i > 0; i-- {
		p.Ancestors = append(p.Ancestors, randomAddr(r))
	}
	return p
}

func packetsEqual(a, b *TaskPacket) bool {
	if a.Key != b.Key || a.Gen != b.Gen || a.ParentGen != b.ParentGen ||
		a.Fn != b.Fn || a.Parent != b.Parent || a.HoleID != b.HoleID ||
		a.Twin != b.Twin || a.Reissue != b.Reissue || a.Replicas != b.Replicas {
		return false
	}
	if len(a.Args) != len(b.Args) || len(a.Ancestors) != len(b.Ancestors) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	for i := range a.Ancestors {
		if a.Ancestors[i] != b.Ancestors[i] {
			return false
		}
	}
	return true
}

// TestQuickPacketRoundTrip proves the packet is self-contained: it survives
// a byte-level round trip with no external context — the property functional
// checkpointing (§2.1) depends on when packets are stored on peer
// processors.
func TestQuickPacketRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func() bool {
		p := randomPacket(r)
		buf := EncodePacket(p)
		back, err := DecodePacket(buf)
		if err != nil {
			return false
		}
		return packetsEqual(p, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickResultRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	f := func() bool {
		res := &Result{
			Child:      randomKey(r),
			ParentTask: randomKey(r),
			HoleID:     r.Intn(8),
			Value:      expr.VInt(r.Int63n(10_000)),
			DeadParent: randomAddr(r),
		}
		for i := r.Intn(3); i > 0; i-- {
			res.Remaining = append(res.Remaining, randomAddr(r))
		}
		buf := EncodeResult(res)
		back, err := DecodeResult(buf)
		if err != nil {
			return false
		}
		if back.Child != res.Child || back.ParentTask != res.ParentTask ||
			back.HoleID != res.HoleID || !back.Value.Equal(res.Value) ||
			back.DeadParent != res.DeadParent || len(back.Remaining) != len(res.Remaining) {
			return false
		}
		for i := range res.Remaining {
			if back.Remaining[i] != res.Remaining[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	p := randomPacket(r)
	buf := EncodePacket(p)
	for cut := 0; cut < len(buf); cut += 3 {
		if _, err := DecodePacket(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(buf))
		}
	}
	if _, err := DecodePacket(append(buf, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestEncodedSizeUpperBoundsWireForm(t *testing.T) {
	// EncodedSize is the cost-model estimate; the real wire form must stay
	// in the same ballpark (within a small framing factor) so byte-based
	// metrics are honest.
	r := rand.New(rand.NewSource(24))
	for i := 0; i < 200; i++ {
		p := randomPacket(r)
		est := p.EncodedSize()
		real := len(EncodePacket(p))
		if real > est*2 || est > real*2 {
			t.Fatalf("estimate %d vs wire %d diverge too far", est, real)
		}
	}
}
