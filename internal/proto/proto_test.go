package proto

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/stamp"
)

func TestTaskKeyString(t *testing.T) {
	k := TaskKey{Stamp: stamp.FromPath(1, 2)}
	if k.String() != "1.2" {
		t.Errorf("plain key = %q", k.String())
	}
	k.Rep = 7
	if k.String() != "1.2#7" {
		t.Errorf("replica key = %q", k.String())
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Proc: 3, Task: TaskKey{Stamp: stamp.FromPath(0, 1)}}
	if got := a.String(); got != "0.1@3" {
		t.Errorf("Addr.String = %q", got)
	}
}

func samplePacket() *TaskPacket {
	return &TaskPacket{
		Key:       TaskKey{Stamp: stamp.FromPath(0, 1)},
		Gen:       5,
		ParentGen: 4,
		Fn:        "fib",
		Args:      []expr.Value{expr.VInt(10), expr.IntList(1, 2)},
		Parent:    Addr{Proc: 2, Task: TaskKey{Stamp: stamp.FromPath(0)}},
		HoleID:    1,
		Ancestors: []Addr{{Proc: HostID, Task: TaskKey{}}},
		Replicas:  1,
	}
}

func TestPacketEncodedSizePositiveAndMonotone(t *testing.T) {
	p := samplePacket()
	base := p.EncodedSize()
	if base <= 0 {
		t.Fatalf("EncodedSize = %d", base)
	}
	// More arguments → strictly larger.
	p2 := samplePacket()
	p2.Args = append(p2.Args, expr.VStr("abcdef"))
	if p2.EncodedSize() <= base {
		t.Error("size not monotone in args")
	}
	// Deeper ancestors → strictly larger.
	p3 := samplePacket()
	p3.Ancestors = append(p3.Ancestors, Addr{Proc: 1, Task: TaskKey{Stamp: stamp.FromPath(9)}})
	if p3.EncodedSize() <= base {
		t.Error("size not monotone in ancestors")
	}
}

func TestPacketCloneIsDeep(t *testing.T) {
	p := samplePacket()
	q := p.Clone()
	if q == p {
		t.Fatal("Clone returned the same pointer")
	}
	q.Args[0] = expr.VInt(99)
	if p.Args[0].Equal(expr.VInt(99)) {
		t.Error("Clone shares the Args slice")
	}
	q.Ancestors[0] = Addr{Proc: 9}
	if p.Ancestors[0].Proc == 9 {
		t.Error("Clone shares the Ancestors slice")
	}
	q.Twin = true
	if p.Twin {
		t.Error("Clone shares flags")
	}
}

func TestResultEncodedSize(t *testing.T) {
	r := &Result{
		Child:      TaskKey{Stamp: stamp.FromPath(0, 1, 2)},
		ParentTask: TaskKey{Stamp: stamp.FromPath(0, 1)},
		HoleID:     2,
		Value:      expr.VInt(42),
		DeadParent: Addr{Proc: 3, Task: TaskKey{Stamp: stamp.FromPath(0, 1)}},
		Remaining:  []Addr{{Proc: 0, Task: TaskKey{Stamp: stamp.FromPath(0)}}},
	}
	n := r.EncodedSize()
	if n <= 0 {
		t.Fatalf("EncodedSize = %d", n)
	}
	r2 := *r
	r2.Value = expr.IntList(1, 2, 3, 4, 5, 6, 7, 8)
	if r2.EncodedSize() <= n {
		t.Error("size not monotone in value")
	}
}

func TestMsgEncodedSize(t *testing.T) {
	task := &Msg{Type: MsgTask, From: 0, To: 1, Task: samplePacket()}
	if task.EncodedSize() <= samplePacket().EncodedSize() {
		t.Error("task message smaller than its payload")
	}
	hb := &Msg{Type: MsgHeartbeat, From: 0, To: 1}
	if hb.EncodedSize() <= 0 || hb.EncodedSize() >= task.EncodedSize() {
		t.Errorf("heartbeat size = %d, task size = %d", hb.EncodedSize(), task.EncodedSize())
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for mt := MsgTask; mt <= MsgResume; mt++ {
		if strings.HasPrefix(mt.String(), "MsgType(") {
			t.Errorf("message type %d unnamed", int(mt))
		}
	}
	if !strings.HasPrefix(MsgType(99).String(), "MsgType(") {
		t.Error("unknown type fallback missing")
	}
}

func TestProcLetter(t *testing.T) {
	cases := map[ProcID]string{
		HostID: "host",
		0:      "A",
		3:      "D",
		25:     "Z",
		26:     "P26", // 6×6 grids and beyond keep a uniform naming scheme
		63:     "P63",
	}
	for p, want := range cases {
		if got := p.Letter(); got != want {
			t.Errorf("ProcID(%d).Letter() = %q, want %q", p, got, want)
		}
	}
}
