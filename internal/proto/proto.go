// Package proto defines the wire-level vocabulary of the simulated
// applicative multiprocessor: processor addresses, task packets (the unit of
// functional checkpointing, §2.1), and the message types of the splice
// recovery protocol loop in §4.2 (forward result, task packet,
// error-detection) plus the supporting traffic the paper assumes exists
// (placement/result acknowledgements, heartbeats, fault announcements, load
// exchange for the gradient model).
package proto

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/stamp"
)

// ProcID identifies a processor. HostID (-1) is the host / super-root
// pseudo-processor of §4.3.1: the parent of all user programs, assumed
// reliable, which holds the pre-evaluation checkpoint of the root task.
type ProcID int32

// HostID is the super-root pseudo-processor.
const HostID ProcID = -1

// Letter names a processor the way the paper's figures do: A–Z for the
// first 26 processors, then P26, P27, … for larger grids (so a 6×6 mesh no
// longer renders a misleading mix of letters and proc%d). HostID renders as
// "host".
func (p ProcID) Letter() string {
	switch {
	case p == HostID:
		return "host"
	case p >= 0 && p < 26:
		return string(rune('A' + int32(p)))
	default:
		return fmt.Sprintf("P%d", int32(p))
	}
}

// Rep distinguishes replica lineages when tasks are replicated (§5.3).
// A task is uniquely keyed by (Stamp, Rep): replicas of the same logical
// application share a stamp but carry distinct Rep values; children inherit
// the Rep of their parent.
type Rep uint64

// TaskKey uniquely identifies a resident task instance.
type TaskKey struct {
	Stamp stamp.Stamp
	Rep   Rep
}

func (k TaskKey) String() string {
	if k.Rep == 0 {
		return k.Stamp.String()
	}
	return fmt.Sprintf("%s#%d", k.Stamp, k.Rep)
}

// Addr is the location of a task instance: which processor it settled on
// and which task it is. Parents record the Addr of children once placement
// is acknowledged; packets carry the ancestor Addr chain for splice
// recovery.
type Addr struct {
	Proc ProcID
	Task TaskKey
}

func (a Addr) String() string { return fmt.Sprintf("%v@%d", a.Task, a.Proc) }

// TaskPacket is the paper's task packet: "The packet contains all necessary
// information, either directly or indirectly accessible, to activate the
// child task" (§2.1). The retained copy of this struct at the parent *is*
// the functional checkpoint.
type TaskPacket struct {
	Key TaskKey
	// Gen distinguishes incarnations of the same logical task (original,
	// reissue, twin). Results are addressed by Key — determinacy makes any
	// incarnation's answer equally valid — but destructive operations
	// (aborts) are addressed by (Key, Gen) so a kill aimed at an abandoned
	// incarnation can never hit its replacement.
	Gen uint64
	// ParentGen is the generation of the parent incarnation that spawned
	// this packet; upward abort propagation targets exactly that
	// incarnation.
	ParentGen uint64
	Fn        string       // function to apply
	Args      []expr.Value // fully evaluated arguments

	// Parent is where the result must be returned; HoleID is the demand
	// slot in the parent the result fills.
	Parent Addr
	HoleID int

	// Ancestors is the backward linkage of §4 (and its §5.2 extension):
	// Ancestors[0] is the grandparent address, Ancestors[1] the
	// great-grandparent, and so on, newest first. Packets carry up to
	// K-1 entries for ancestor-pointer depth K.
	Ancestors []Addr

	// Twin marks a splice-recovery step-parent task (§4.1). Twins reuse
	// the stamp of the dead task they replace.
	Twin bool

	// Reissue marks a rollback re-execution of a checkpointed packet (§3.2).
	Reissue bool

	// Replicas is the number of copies the parent spawned for this logical
	// task (1 = not replicated). Used by the §5.3 voter.
	Replicas int

	// Prog selects which loaded program the packet's Fn resolves in: in
	// service mode one machine multiplexes several request streams whose
	// programs may define clashing function names, so every packet is tagged
	// with its request's program index (children inherit their parent's).
	// Program code is resident on every node of the machine — the tag names
	// a code segment rather than shipping one — so it has no wire size and
	// is not part of the packet codec. Zero is the machine's first-loaded
	// program, which keeps one-shot runs unchanged.
	Prog int

	// encSize caches EncodedSize: every size-bearing field (stamp, fn,
	// args, addresses) is fixed at construction — only Gen/ParentGen and
	// the flags mutate afterwards, and those occupy constant width — so
	// the first computation holds for the packet's lifetime. 0 = not yet
	// computed (real sizes are always positive).
	encSize int
}

// EncodedSize is the packet's wire size in bytes: stamp, function name,
// argument values, addresses and flags. Checkpoint storage accounting and
// message byte counters use it; it is called once per hop and once per
// checkpoint retention, hence the memoization.
func (p *TaskPacket) EncodedSize() int {
	if p.encSize > 0 {
		return p.encSize
	}
	n := p.Key.Stamp.EncodedSize() + 8 + 16 // stamp + rep + gen + parent gen
	n += 4 + len(p.Fn)
	n += expr.ValuesEncodedSize(p.Args)
	n += addrSize(p.Parent) + 4 // parent + hole id
	for _, a := range p.Ancestors {
		n += addrSize(a)
	}
	n += 3 // twin, reissue, replicas
	p.encSize = n
	return n
}

// Clone returns a deep-enough copy: values are immutable and shared, the
// slices are fresh. Reissuing or twinning a packet must never alias the
// original's mutable slices.
func (p *TaskPacket) Clone() *TaskPacket {
	q := *p
	q.Args = append([]expr.Value(nil), p.Args...)
	q.Ancestors = append([]Addr(nil), p.Ancestors...)
	return &q
}

func addrSize(a Addr) int { return 4 + a.Task.Stamp.EncodedSize() + 8 }

// MsgType enumerates protocol messages.
type MsgType int

// Message types. MsgTask..MsgFaultAnnounce mirror the §4.2 protocol loop;
// the rest are the machinery the paper assumes (acknowledgements, failure
// detection, load balancing, and the periodic-global-checkpoint baseline).
const (
	// MsgTask carries a task packet toward a processor (possibly multi-hop
	// under gradient routing; transient states b/d of Figure 6).
	MsgTask MsgType = iota
	// MsgTaskAck acknowledges that a task settled on Ack.Proc (state c/e of
	// Figure 6: the parent "establishes a parent-to-child pointer").
	MsgTaskAck
	// MsgResult returns a child's value to its parent ("forward result",
	// level stamp interpreted as child — §4.2).
	MsgResult
	// MsgResultAck acknowledges a result. OK=false means the addressee task
	// was unknown (completed-and-retired or aborted): the sender treats the
	// result as undeliverable.
	MsgResultAck
	// MsgGrandResult forwards an orphan result to an ancestor ("forward
	// result", level stamp interpreted as grandchild — §4.2).
	MsgGrandResult
	// MsgAbort kills a task and, transitively, its descendants (the
	// "garbage collection" of aborted subtrees, §3.2).
	MsgAbort
	// MsgFaultAnnounce floods the identity of a failed processor
	// ("error-detection" — §4.2).
	MsgFaultAnnounce
	// MsgHeartbeat probes a neighbor; MsgHeartbeatAck answers it.
	MsgHeartbeat
	MsgHeartbeatAck
	// MsgLoad carries gradient-model proximity information to a neighbor.
	MsgLoad
	// MsgFreeze, MsgFreezeAck, MsgResume coordinate the periodic global
	// checkpoint baseline (§2's comparator).
	MsgFreeze
	MsgFreezeAck
	MsgResume
	// MsgChildAbort tells a parent that a child incarnation it placed was
	// aborted by recovery garbage collection on a live processor. Without
	// it, an abort scope that cuts across lineages (a reissue triggered by
	// a late failure detection) can kill a live child whose parent then
	// waits on the hole forever; the parent answers by respawning the
	// child from its retained checkpoint.
	MsgChildAbort
)

var msgNames = map[MsgType]string{
	MsgTask: "task", MsgTaskAck: "task-ack", MsgResult: "result",
	MsgResultAck: "result-ack", MsgGrandResult: "grand-result",
	MsgAbort: "abort", MsgFaultAnnounce: "fault-announce",
	MsgHeartbeat: "heartbeat", MsgHeartbeatAck: "heartbeat-ack",
	MsgLoad: "load", MsgFreeze: "freeze", MsgFreezeAck: "freeze-ack",
	MsgResume: "resume", MsgChildAbort: "child-abort",
}

func (t MsgType) String() string {
	if s, ok := msgNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", int(t))
}

// Result is the payload of MsgResult and MsgGrandResult.
type Result struct {
	// Child identifies the completed task instance.
	Child TaskKey
	// ParentTask is the task the result is addressed to (for MsgGrandResult
	// it is the ancestor task being asked to relay).
	ParentTask TaskKey
	// HoleID is the demand slot in the original parent.
	HoleID int
	// Value is the computed answer.
	Value expr.Value
	// DeadParent, for MsgGrandResult, names the parent task whose processor
	// failed — the task the ancestor must twin (§4.1).
	DeadParent Addr
	// Remaining, for MsgGrandResult, lists the ancestors above the
	// addressee still available for escalation if the addressee is also
	// dead (§5.2 multi-fault extension).
	Remaining []Addr
}

// EncodedSize is the result's wire size in bytes.
func (r *Result) EncodedSize() int {
	n := r.Child.Stamp.EncodedSize() + 8
	n += r.ParentTask.Stamp.EncodedSize() + 8
	n += 4
	n += r.Value.EncodedSize()
	n += addrSize(r.DeadParent)
	for _, a := range r.Remaining {
		n += addrSize(a)
	}
	return n
}

// Msg is one message in flight.
type Msg struct {
	Type     MsgType
	From, To ProcID

	// Payloads; exactly one is set depending on Type.
	Task      *TaskPacket
	Hops      int // MsgTask: hops traveled so far (hop-by-hop placement)
	Result    *Result
	AckTask   TaskKey // MsgTaskAck: which task settled (To learns placement)
	AckParent TaskKey // MsgTaskAck: the parent task that spawned it
	AckGen    uint64  // MsgTaskAck: generation of the settled incarnation
	PlacedOn  ProcID  // MsgTaskAck: where it settled
	AckHole   int     // MsgTaskAck: parent hole
	ResultOK  bool    // MsgResultAck: addressee known?
	AckChild  TaskKey // MsgResultAck: child acknowledged
	Failed    ProcID  // MsgFaultAnnounce: who failed
	AbortTask TaskKey // MsgAbort: victim
	AbortGen  uint64  // MsgAbort: only this incarnation may be killed
	// AbortScope, when not the root stamp, is the reissued checkpoint whose
	// genealogical dependents are being garbage-collected (§3.2); receivers
	// propagate the abort to relatives that are still inside the scope.
	AbortScope stamp.Stamp
	LoadVal    int   // MsgLoad: sender's proximity/pressure value
	Epoch      int64 // MsgFreeze/MsgFreezeAck/MsgResume: snapshot epoch
}

// EncodedSize approximates the message's wire size: a fixed header plus the
// payload.
func (m *Msg) EncodedSize() int {
	const header = 12 // type + from + to
	n := header
	switch {
	case m.Task != nil:
		n += m.Task.EncodedSize()
	case m.Result != nil:
		n += m.Result.EncodedSize()
	default:
		n += 16 // small fixed payloads
	}
	return n
}
