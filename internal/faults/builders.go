package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/proto"
	"repro/internal/topology"
)

// This file holds the composable stress-plan builders. The bundled 1986
// scenarios only ever crash one or two hand-picked processors; the builders
// generate the regimes HEAL-style evaluations care about — simultaneous
// multi-node loss (Burst), failures that spread along the interconnect
// (Cascade), and the loss of a whole physical region (Correlated). Every
// builder is a pure function of its arguments, so plans are reproducible
// under a seed and safe to fan out across the runner's worker pool. Builders
// return fresh plans; compose them with Merge or Add.

// Burst returns a plan that crashes k distinct processors, drawn uniformly
// without replacement from [0, n), all at time at. The draw is a pure
// function of seed. k is clamped to n.
func Burst(n, k int, at int64, kind Kind, seed int64) *Plan {
	if n <= 0 || k <= 0 {
		return None()
	}
	if k > n {
		k = n
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	p := None()
	for _, proc := range perm[:k] {
		p.Add(Fault{At: at, Proc: proto.ProcID(proc), Kind: kind})
	}
	return p
}

// Cascade returns a plan that models a failure spreading along the
// interconnect: the origin crashes at time at (wave 0), and each subsequent
// wave crashes the not-yet-failed topology neighbors of the previous wave
// delay ticks later, for waves additional waves. spread is the independent
// probability that a candidate neighbor joins the next wave (1 ⇒ the full
// BFS frontier, i.e. wave w is exactly the nodes at hop distance w); the
// coin flips are a pure function of seed and the visit order (ascending
// node id per wave), so a (topo, origin, seed) triple always yields the
// same plan.
func Cascade(topo topology.Topology, origin proto.ProcID, at, delay int64, waves int, spread float64, kind Kind, seed int64) *Plan {
	p := None()
	n := topo.Size()
	if int(origin) < 0 || int(origin) >= n {
		return p
	}
	rng := rand.New(rand.NewSource(seed))
	failed := make([]bool, n)
	failed[origin] = true
	p.Add(Fault{At: at, Proc: origin, Kind: kind})
	frontier := []topology.NodeID{topology.NodeID(origin)}
	for w := 1; w <= waves && len(frontier) > 0; w++ {
		// Collect the wave's distinct candidates in ascending id order so
		// the rng consumption order is deterministic.
		candidate := make([]bool, n)
		for _, u := range frontier {
			for _, v := range topo.Neighbors(u) {
				if !failed[v] {
					candidate[v] = true
				}
			}
		}
		var next []topology.NodeID
		for v := 0; v < n; v++ {
			if !candidate[v] {
				continue
			}
			if spread < 1 && rng.Float64() >= spread {
				continue
			}
			failed[v] = true
			next = append(next, topology.NodeID(v))
			p.Add(Fault{At: at + int64(w)*delay, Proc: proto.ProcID(v), Kind: kind})
		}
		frontier = next
	}
	return p
}

// Correlated returns a plan that crashes every processor within radius hops
// of center at time at — the loss of a physical region (a board, a rack, a
// power domain) whose members are adjacent in the interconnect. Radius 0 is
// just the center; a radius at least the diameter is the whole machine.
func Correlated(topo topology.Topology, center proto.ProcID, radius int, at int64, kind Kind) *Plan {
	p := None()
	n := topo.Size()
	if int(center) < 0 || int(center) >= n || radius < 0 {
		return p
	}
	for v := 0; v < n; v++ {
		if topo.Dist(topology.NodeID(center), topology.NodeID(v)) <= radius {
			p.Add(Fault{At: at, Proc: proto.ProcID(v), Kind: kind})
		}
	}
	return p
}

// Merge appends every fault of other (composing independently built plans)
// and returns the receiver for chaining. Duplicate faults of one processor
// are allowed — the machine ignores faults injected after death — so merged
// regions may overlap.
func (p *Plan) Merge(other *Plan) *Plan {
	if other != nil {
		p.Faults = append(p.Faults, other.Faults...)
	}
	return p
}

// Procs returns the distinct processors the plan faults, ascending.
func (p *Plan) Procs() []proto.ProcID {
	seen := map[proto.ProcID]bool{}
	var out []proto.ProcID
	for _, f := range p.Faults {
		if !seen[f.Proc] {
			seen[f.Proc] = true
			out = append(out, f.Proc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Describe renders a compact human label for stress tables: the distinct
// processor count, the time span, and the kind mix.
func (p *Plan) Describe() string {
	if len(p.Faults) == 0 {
		return "no faults"
	}
	s := p.Sorted()
	first, last := s[0].At, s[len(s)-1].At
	if first == last {
		return fmt.Sprintf("%d procs @t=%d", len(p.Procs()), first)
	}
	return fmt.Sprintf("%d procs @t=%d..%d", len(p.Procs()), first, last)
}
