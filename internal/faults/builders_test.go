package faults

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/proto"
	"repro/internal/topology"
)

func TestBurstDeterministicPerSeed(t *testing.T) {
	a := Burst(16, 5, 100, CrashAnnounced, 9)
	b := Burst(16, 5, 100, CrashAnnounced, 9)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans: %v vs %v", a.Faults, b.Faults)
	}
	c := Burst(16, 5, 100, CrashAnnounced, 10)
	if reflect.DeepEqual(a.Procs(), c.Procs()) {
		t.Error("seeds 9 and 10 picked identical processor sets")
	}
}

func TestBurstShape(t *testing.T) {
	p := Burst(16, 5, 100, CrashSilent, 3)
	if len(p.Faults) != 5 {
		t.Fatalf("faults = %d, want 5", len(p.Faults))
	}
	if got := len(p.Procs()); got != 5 {
		t.Fatalf("distinct procs = %d, want 5 (duplicates drawn)", got)
	}
	for _, f := range p.Faults {
		if f.At != 100 || f.Kind != CrashSilent {
			t.Fatalf("fault %v: wrong time or kind", f)
		}
		if f.Proc < 0 || f.Proc >= 16 {
			t.Fatalf("fault %v out of range", f)
		}
	}
	if err := p.Validate(16); err != nil {
		t.Fatalf("valid burst rejected: %v", err)
	}
	// k clamps to n; nonsense inputs yield empty plans.
	if got := len(Burst(4, 99, 0, CrashSilent, 1).Faults); got != 4 {
		t.Errorf("clamped burst = %d faults, want 4", got)
	}
	if len(Burst(0, 3, 0, CrashSilent, 1).Faults) != 0 || len(Burst(8, 0, 0, CrashSilent, 1).Faults) != 0 {
		t.Error("degenerate burst not empty")
	}
}

func TestCascadeFullSpreadIsBFS(t *testing.T) {
	ring, err := topology.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	p := Cascade(ring, 0, 1000, 50, 2, 1.0, CrashAnnounced, 1)
	// Wave 0: {0}@1000; wave 1: {1,7}@1050; wave 2: {2,6}@1100.
	want := map[proto.ProcID]int64{0: 1000, 1: 1050, 7: 1050, 2: 1100, 6: 1100}
	if len(p.Faults) != len(want) {
		t.Fatalf("faults = %v, want 5 entries", p.Faults)
	}
	for _, f := range p.Faults {
		at, ok := want[f.Proc]
		if !ok || f.At != at {
			t.Errorf("fault %v unexpected (want t=%d)", f, at)
		}
	}
	if err := p.Validate(8); err != nil {
		t.Fatalf("cascade plan invalid: %v", err)
	}
}

func TestCascadeDeterministicPerSeed(t *testing.T) {
	mesh, err := topology.Mesh2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := Cascade(mesh, 5, 500, 100, 3, 0.5, CrashSilent, 21)
	b := Cascade(mesh, 5, 500, 100, 3, 0.5, CrashSilent, 21)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different cascades: %v vs %v", a.Faults, b.Faults)
	}
	// Partial spread must stay within the full-BFS envelope and include the
	// origin.
	full := Cascade(mesh, 5, 500, 100, 3, 1.0, CrashSilent, 21)
	envelope := map[proto.ProcID]bool{}
	for _, f := range full.Faults {
		envelope[f.Proc] = true
	}
	for _, f := range a.Faults {
		if !envelope[f.Proc] {
			t.Errorf("partial cascade crashed %v outside the BFS envelope", f.Proc)
		}
	}
	if len(a.Faults) == 0 || a.Faults[0].Proc != 5 {
		t.Fatal("cascade origin missing")
	}
	if len(a.Faults) > len(full.Faults) {
		t.Error("partial spread crashed more than full spread")
	}
}

func TestCascadeStopsAtDeadNodes(t *testing.T) {
	// On a 2-node ring, wave 1 kills the only other node and the cascade
	// has no one left; extra waves must not loop or re-fault.
	ring, err := topology.Ring(2)
	if err != nil {
		t.Fatal(err)
	}
	p := Cascade(ring, 0, 10, 5, 10, 1.0, CrashAnnounced, 1)
	if len(p.Faults) != 2 {
		t.Fatalf("faults = %v, want exactly 2", p.Faults)
	}
}

func TestCascadeBadOrigin(t *testing.T) {
	ring, _ := topology.Ring(4)
	if got := Cascade(ring, 9, 0, 1, 1, 1, CrashSilent, 1); len(got.Faults) != 0 {
		t.Errorf("out-of-range origin produced faults: %v", got.Faults)
	}
}

func TestCorrelatedRegion(t *testing.T) {
	mesh, err := topology.Mesh2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := Correlated(mesh, 4, 1, 700, CrashAnnounced)
	// Center of a 3x3 mesh plus its 4 neighbors.
	wantProcs := []proto.ProcID{1, 3, 4, 5, 7}
	if !reflect.DeepEqual(p.Procs(), wantProcs) {
		t.Fatalf("region = %v, want %v", p.Procs(), wantProcs)
	}
	for _, f := range p.Faults {
		if f.At != 700 {
			t.Errorf("fault %v not at region time", f)
		}
	}
	// Radius 0 is only the center; a huge radius is the whole machine.
	if got := Correlated(mesh, 4, 0, 0, CrashSilent).Procs(); !reflect.DeepEqual(got, []proto.ProcID{4}) {
		t.Errorf("radius 0 = %v", got)
	}
	if got := len(Correlated(mesh, 4, 99, 0, CrashSilent).Faults); got != 9 {
		t.Errorf("radius 99 crashed %d procs, want 9", got)
	}
	if got := len(Correlated(mesh, 99, 1, 0, CrashSilent).Faults); got != 0 {
		t.Errorf("bad center produced %d faults", got)
	}
}

func TestMergeAndDescribe(t *testing.T) {
	ring, _ := topology.Ring(8)
	p := Burst(8, 2, 100, CrashAnnounced, 1).
		Merge(Correlated(ring, 4, 1, 200, CrashSilent)).
		Merge(nil)
	if len(p.Faults) != 5 {
		t.Fatalf("merged faults = %d, want 5", len(p.Faults))
	}
	if err := p.Validate(8); err != nil {
		t.Fatalf("merged plan invalid: %v", err)
	}
	want := fmt.Sprintf("%d procs @t=100..200", len(p.Procs()))
	if got := p.Describe(); got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	if None().Describe() != "no faults" {
		t.Error("empty describe wrong")
	}
	one := Crash(3, 50, true)
	if got := one.Describe(); got != "1 procs @t=50" {
		t.Errorf("Describe = %q", got)
	}
}

// TestBuilderPlansValidateOnTheirTopology: plans built against a topology
// of n nodes always satisfy Validate(n) — the bounds contract the runner
// relies on before injection.
func TestBuilderPlansValidateOnTheirTopology(t *testing.T) {
	topo, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := topo.Size()
	for seed := int64(1); seed <= 10; seed++ {
		for _, p := range []*Plan{
			Burst(n, 6, 100, CrashAnnounced, seed),
			Cascade(topo, 3, 100, 50, 4, 0.7, CrashSilent, seed),
			Correlated(topo, 9, 2, 100, CrashAnnounced),
		} {
			if err := p.Validate(n); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}
