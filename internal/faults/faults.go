// Package faults describes fault plans for the simulated machine. The paper
// assumes fail-silent processors (§1): a faulty node either voluntarily
// declares itself faulty (announced crash) or keeps silent and is identified
// by other processors via timeouts (silent crash). For the §5.3 replicated-
// task experiments a node may also corrupt computed values ("a faulty node
// may answer an inquiry with an invalid message") while otherwise behaving.
//
// A Plan is a list of (time, processor, kind) injections. Beyond hand-built
// single crashes, the builders in builders.go generate stress regimes the
// paper's experiments never reach: Burst (k simultaneous crashes drawn from
// a seed), Cascade (a failure spreading wave by wave along the interconnect
// with a per-neighbor spread probability), and Correlated (every processor
// within a hop radius of a center — a board or rack loss). Builders are
// pure functions of their arguments, so a seed pins the whole plan; Merge
// composes independently built plans into one.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/proto"
)

// Kind is the failure mode of one fault.
type Kind int

// Fault kinds.
const (
	// CrashAnnounced: the node halts and floods a fault announcement first
	// ("A faulty processor must voluntarily declare itself faulty" — §1).
	CrashAnnounced Kind = iota
	// CrashSilent: the node simply stops transmitting valid messages;
	// peers must detect it by heartbeat/ack timeout.
	CrashSilent
	// Corrupt: the node keeps running but perturbs every result value it
	// produces from the fault time on. Only majority voting (§5.3) can
	// mask it; the crash-recovery schemes are not designed for it.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case CrashAnnounced:
		return "crash-announced"
	case CrashSilent:
		return "crash-silent"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one scheduled processor fault.
type Fault struct {
	At   int64 // virtual time
	Proc proto.ProcID
	Kind Kind
}

func (f Fault) String() string {
	return fmt.Sprintf("%v@t=%d:%v", f.Proc, f.At, f.Kind)
}

// Plan is a set of faults to inject during a run.
type Plan struct {
	Faults []Fault
}

// None returns an empty plan.
func None() *Plan { return &Plan{} }

// Crash returns a plan with a single crash of proc at time t.
func Crash(proc proto.ProcID, t int64, announced bool) *Plan {
	k := CrashSilent
	if announced {
		k = CrashAnnounced
	}
	return &Plan{Faults: []Fault{{At: t, Proc: proc, Kind: k}}}
}

// Add appends a fault and returns the plan for chaining.
func (p *Plan) Add(f Fault) *Plan {
	p.Faults = append(p.Faults, f)
	return p
}

// Sorted returns the faults ordered by time (then processor) for
// deterministic injection.
func (p *Plan) Sorted() []Fault {
	out := append([]Fault(nil), p.Faults...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// Validate rejects plans that fault the host pseudo-processor or a
// processor index outside [0, n).
func (p *Plan) Validate(n int) error {
	for _, f := range p.Faults {
		if f.Proc < 0 || int(f.Proc) >= n {
			return fmt.Errorf("faults: processor %d out of range [0,%d)", f.Proc, n)
		}
		if f.At < 0 {
			return fmt.Errorf("faults: negative fault time %d", f.At)
		}
	}
	return nil
}

// CrashCount returns how many crash faults (announced or silent) the plan
// contains.
func (p *Plan) CrashCount() int {
	n := 0
	for _, f := range p.Faults {
		if f.Kind != Corrupt {
			n++
		}
	}
	return n
}
