package faults

import (
	"strings"
	"testing"
)

func TestCrashPlan(t *testing.T) {
	p := Crash(3, 100, true)
	if len(p.Faults) != 1 {
		t.Fatalf("faults = %d", len(p.Faults))
	}
	f := p.Faults[0]
	if f.Proc != 3 || f.At != 100 || f.Kind != CrashAnnounced {
		t.Fatalf("fault = %+v", f)
	}
	p = Crash(2, 50, false)
	if p.Faults[0].Kind != CrashSilent {
		t.Fatal("silent crash kind wrong")
	}
}

func TestAddChainsAndSorted(t *testing.T) {
	p := None().
		Add(Fault{At: 300, Proc: 1, Kind: CrashSilent}).
		Add(Fault{At: 100, Proc: 2, Kind: CrashAnnounced}).
		Add(Fault{At: 100, Proc: 0, Kind: Corrupt})
	s := p.Sorted()
	if len(s) != 3 {
		t.Fatalf("sorted = %d", len(s))
	}
	if s[0].Proc != 0 || s[1].Proc != 2 || s[2].Proc != 1 {
		t.Fatalf("order wrong: %v", s)
	}
	// Sorted must not mutate the original.
	if p.Faults[0].At != 300 {
		t.Fatal("Sorted mutated the plan")
	}
}

func TestValidate(t *testing.T) {
	ok := Crash(3, 10, true)
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := ok.Validate(3); err == nil {
		t.Error("out-of-range processor accepted")
	}
	bad := None().Add(Fault{At: -1, Proc: 0})
	if err := bad.Validate(4); err == nil {
		t.Error("negative time accepted")
	}
	neg := None().Add(Fault{At: 5, Proc: -1})
	if err := neg.Validate(4); err == nil {
		t.Error("negative processor accepted")
	}
}

func TestCrashCount(t *testing.T) {
	p := None().
		Add(Fault{At: 1, Proc: 0, Kind: CrashSilent}).
		Add(Fault{At: 2, Proc: 1, Kind: CrashAnnounced}).
		Add(Fault{At: 3, Proc: 2, Kind: Corrupt})
	if got := p.CrashCount(); got != 2 {
		t.Fatalf("CrashCount = %d, want 2", got)
	}
	if None().CrashCount() != 0 {
		t.Fatal("empty plan crash count != 0")
	}
}

func TestStrings(t *testing.T) {
	if !strings.Contains(CrashAnnounced.String(), "announced") {
		t.Error(CrashAnnounced.String())
	}
	if !strings.Contains(CrashSilent.String(), "silent") {
		t.Error(CrashSilent.String())
	}
	if Corrupt.String() != "corrupt" {
		t.Error(Corrupt.String())
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind fallback missing")
	}
	f := Fault{At: 7, Proc: 2, Kind: CrashSilent}
	if !strings.Contains(f.String(), "t=7") {
		t.Error(f.String())
	}
}
