package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func allTopologies(t *testing.T) map[string]Topology {
	t.Helper()
	out := map[string]Topology{}
	var err error
	if out["ring8"], err = Ring(8); err != nil {
		t.Fatal(err)
	}
	if out["ring2"], err = Ring(2); err != nil {
		t.Fatal(err)
	}
	if out["mesh3x4"], err = Mesh2D(3, 4); err != nil {
		t.Fatal(err)
	}
	if out["mesh1x5"], err = Mesh2D(1, 5); err != nil {
		t.Fatal(err)
	}
	if out["cube3"], err = Hypercube(3); err != nil {
		t.Fatal(err)
	}
	if out["complete6"], err = Complete(6); err != nil {
		t.Fatal(err)
	}
	if out["star7"], err = Star(7); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestConstructorsRejectBadSizes(t *testing.T) {
	if _, err := Ring(1); err == nil {
		t.Error("Ring(1) accepted")
	}
	if _, err := Mesh2D(1, 1); err == nil {
		t.Error("Mesh2D(1,1) accepted")
	}
	if _, err := Mesh2D(0, 5); err == nil {
		t.Error("Mesh2D(0,5) accepted")
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Hypercube(0) accepted")
	}
	if _, err := Hypercube(20); err == nil {
		t.Error("Hypercube(20) accepted")
	}
	if _, err := Complete(1); err == nil {
		t.Error("Complete(1) accepted")
	}
	if _, err := Star(1); err == nil {
		t.Error("Star(1) accepted")
	}
}

func TestSizes(t *testing.T) {
	want := map[string]int{
		"ring8": 8, "ring2": 2, "mesh3x4": 12, "mesh1x5": 5,
		"cube3": 8, "complete6": 6, "star7": 7,
	}
	for name, topo := range allTopologies(t) {
		if topo.Size() != want[name] {
			t.Errorf("%s Size = %d, want %d", name, topo.Size(), want[name])
		}
	}
}

func TestNeighborsSymmetricSortedNoSelf(t *testing.T) {
	for name, topo := range allTopologies(t) {
		n := topo.Size()
		for i := 0; i < n; i++ {
			id := NodeID(i)
			nb := topo.Neighbors(id)
			for k, v := range nb {
				if v == id {
					t.Errorf("%s: node %d lists itself as neighbor", name, i)
				}
				if k > 0 && nb[k-1] >= v {
					t.Errorf("%s: node %d neighbors not strictly ascending: %v", name, i, nb)
				}
				// Symmetry.
				found := false
				for _, back := range topo.Neighbors(v) {
					if back == id {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s: edge %d->%d not symmetric", name, i, v)
				}
			}
		}
	}
}

func TestKnownDistances(t *testing.T) {
	ring8, _ := Ring(8)
	if d := ring8.Dist(0, 4); d != 4 {
		t.Errorf("ring8 Dist(0,4) = %d, want 4", d)
	}
	if d := ring8.Dist(0, 7); d != 1 {
		t.Errorf("ring8 Dist(0,7) = %d, want 1", d)
	}
	mesh, _ := Mesh2D(3, 4)
	if d := mesh.Dist(0, 11); d != 5 { // (0,0) to (2,3): 2+3
		t.Errorf("mesh Dist(0,11) = %d, want 5", d)
	}
	cube, _ := Hypercube(4)
	if d := cube.Dist(0b0000, 0b1111); d != 4 {
		t.Errorf("cube Dist(0,15) = %d, want 4", d)
	}
	if d := cube.Dist(0b0101, 0b0100); d != 1 {
		t.Errorf("cube Dist(5,4) = %d, want 1", d)
	}
	comp, _ := Complete(6)
	if d := comp.Dist(2, 5); d != 1 {
		t.Errorf("complete Dist = %d, want 1", d)
	}
	star, _ := Star(7)
	if d := star.Dist(1, 2); d != 2 {
		t.Errorf("star Dist(1,2) = %d, want 2", d)
	}
	if d := star.Dist(0, 3); d != 1 {
		t.Errorf("star Dist(0,3) = %d, want 1", d)
	}
}

// TestNextHopWalksShortestPath follows NextHop from every source to every
// destination and checks it arrives in exactly Dist hops.
func TestNextHopWalksShortestPath(t *testing.T) {
	for name, topo := range allTopologies(t) {
		n := topo.Size()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				src, dst := NodeID(s), NodeID(d)
				want := topo.Dist(src, dst)
				cur := src
				hops := 0
				for cur != dst {
					nxt := topo.NextHop(cur, dst)
					if nxt == cur {
						t.Fatalf("%s: NextHop(%d,%d) made no progress", name, cur, dst)
					}
					// Next hop must be a real neighbor.
					ok := false
					for _, nb := range topo.Neighbors(cur) {
						if nb == nxt {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("%s: NextHop(%d,%d) = %d is not a neighbor", name, cur, dst, nxt)
					}
					cur = nxt
					hops++
					if hops > n {
						t.Fatalf("%s: routing loop from %d to %d", name, src, dst)
					}
				}
				if hops != want {
					t.Errorf("%s: path %d->%d took %d hops, Dist says %d", name, src, dst, hops, want)
				}
			}
		}
	}
}

func TestNextHopSelf(t *testing.T) {
	for name, topo := range allTopologies(t) {
		for i := 0; i < topo.Size(); i++ {
			if got := topo.NextHop(NodeID(i), NodeID(i)); got != NodeID(i) {
				t.Errorf("%s: NextHop(%d,%d) = %d", name, i, i, got)
			}
			if got := topo.Dist(NodeID(i), NodeID(i)); got != 0 {
				t.Errorf("%s: Dist(%d,%d) = %d", name, i, i, got)
			}
		}
	}
}

func TestByName(t *testing.T) {
	cases := []struct {
		kind string
		n    int
		ok   bool
		size int
	}{
		{"ring", 6, true, 6},
		{"mesh", 12, true, 12},
		{"mesh", 7, true, 7}, // prime: 1x7 mesh
		{"hypercube", 8, true, 8},
		{"hypercube", 6, false, 0},
		{"complete", 5, true, 5},
		{"star", 5, true, 5},
		{"nosuch", 4, false, 0},
	}
	for _, tc := range cases {
		topo, err := ByName(tc.kind, tc.n)
		if tc.ok != (err == nil) {
			t.Errorf("ByName(%q,%d) err = %v, want ok=%v", tc.kind, tc.n, err, tc.ok)
			continue
		}
		if tc.ok && topo.Size() != tc.size {
			t.Errorf("ByName(%q,%d) size = %d", tc.kind, tc.n, topo.Size())
		}
	}
}

func TestQuickDistTriangleInequality(t *testing.T) {
	mesh, err := Mesh2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	f := func() bool {
		a := NodeID(r.Intn(16))
		b := NodeID(r.Intn(16))
		c := NodeID(r.Intn(16))
		return mesh.Dist(a, c) <= mesh.Dist(a, b)+mesh.Dist(b, c) &&
			mesh.Dist(a, b) == mesh.Dist(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMeshDistIsManhattan(t *testing.T) {
	rows, cols := 5, 7
	mesh, err := Mesh2D(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < rows*cols; a++ {
		for b := 0; b < rows*cols; b++ {
			ar, ac := a/cols, a%cols
			br, bc := b/cols, b%cols
			want := absInt(ar-br) + absInt(ac-bc)
			if got := mesh.Dist(NodeID(a), NodeID(b)); got != want {
				t.Fatalf("mesh Dist(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestHypercubeDistIsHamming(t *testing.T) {
	cube, err := Hypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 32; a++ {
		for b := 0; b < 32; b++ {
			want := popcount(a ^ b)
			if got := cube.Dist(NodeID(a), NodeID(b)); got != want {
				t.Fatalf("cube Dist(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func BenchmarkNextHopMesh8x8(b *testing.B) {
	mesh, err := Mesh2D(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = mesh.NextHop(NodeID(i%64), NodeID((i*31)%64))
	}
}
