package topology

import (
	"fmt"
	"math/rand"
)

// Torus returns a rows×cols grid with wraparound in both dimensions,
// row-major node ids. Every node has degree 4 on tori of at least 3×3;
// smaller extents degenerate gracefully (a 1×n torus is a ring). The
// wraparound halves the mesh diameter, which matters once fault plans kill
// whole regions: recovery traffic routes around the hole instead of
// funnelling through a grid corner.
func Torus(rows, cols int) (Topology, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topology: torus needs ≥ 2 nodes, got %dx%d", rows, cols)
	}
	n := rows * cols
	adj := make([][]NodeID, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := NodeID(r*cols + c)
			seen := map[NodeID]bool{id: true} // drop self-loops and duplicate wrap edges
			var nb []NodeID
			for _, cand := range []NodeID{
				NodeID(((r-1+rows)%rows)*cols + c),
				NodeID(((r+1)%rows)*cols + c),
				NodeID(r*cols + (c-1+cols)%cols),
				NodeID(r*cols + (c+1)%cols),
			} {
				if !seen[cand] {
					seen[cand] = true
					nb = append(nb, cand)
				}
			}
			sortNodeIDs(nb)
			adj[id] = nb
		}
	}
	return build(fmt.Sprintf("torus(%dx%d)", rows, cols), adj)
}

// BinaryTree returns a complete binary tree of n nodes: node i's children
// are 2i+1 and 2i+2 (when < n), the root is node 0. Trees are the
// worst-case topology for the recovery protocols — every internal node is a
// cut vertex, so a single crash partitions the survivors and all re-placed
// work must route through the root region.
func BinaryTree(n int) (Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: binary tree needs ≥ 2 nodes, got %d", n)
	}
	adj := make([][]NodeID, n)
	for i := 0; i < n; i++ {
		var nb []NodeID
		if i > 0 {
			nb = append(nb, NodeID((i-1)/2))
		}
		if l := 2*i + 1; l < n {
			nb = append(nb, NodeID(l))
		}
		if r := 2*i + 2; r < n {
			nb = append(nb, NodeID(r))
		}
		sortNodeIDs(nb)
		adj[i] = nb
	}
	return build(fmt.Sprintf("btree(%d)", n), adj)
}

// maxRegularAttempts bounds the configuration-model rejection loop. For the
// sizes and degrees the simulator uses (d ≥ 2, n ≤ a few hundred) a sample
// is simple and connected with probability well above 1/e, so hitting the
// bound signals an infeasible request rather than bad luck.
const maxRegularAttempts = 1000

// RandomRegular returns a uniformly sampled simple connected d-regular
// graph on n nodes via the configuration model: shuffle n·d stubs, pair
// them, and reject samples with self-loops, parallel edges, or disconnected
// components. The result is a pure function of (n, degree, seed), so
// experiments that share a seed share the graph. Requires 1 ≤ degree < n
// and n·degree even; degree 1 is only connected for n == 2.
func RandomRegular(n, degree int, seed int64) (Topology, error) {
	switch {
	case n < 2:
		return nil, fmt.Errorf("topology: random regular graph needs ≥ 2 nodes, got %d", n)
	case degree < 1 || degree >= n:
		return nil, fmt.Errorf("topology: degree %d out of range [1,%d) for %d nodes", degree, n, n)
	case n*degree%2 != 0:
		return nil, fmt.Errorf("topology: n·degree = %d·%d is odd, no such graph", n, degree)
	case degree == 1 && n != 2:
		return nil, fmt.Errorf("topology: a 1-regular graph on %d nodes is disconnected", n)
	}
	rng := rand.New(rand.NewSource(seed))
	stubs := make([]NodeID, 0, n*degree)
	for i := 0; i < n; i++ {
		for d := 0; d < degree; d++ {
			stubs = append(stubs, NodeID(i))
		}
	}
	for attempt := 0; attempt < maxRegularAttempts; attempt++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		adj, ok := pairStubs(n, stubs)
		if !ok || !connected(adj) {
			continue
		}
		for i := range adj {
			sortNodeIDs(adj[i])
		}
		return build(fmt.Sprintf("regular(%d,d=%d,seed=%d)", n, degree, seed), adj)
	}
	return nil, fmt.Errorf("topology: no simple connected %d-regular graph on %d nodes after %d attempts",
		degree, n, maxRegularAttempts)
}

// pairStubs matches consecutive shuffled stubs into edges, rejecting
// self-loops and parallel edges.
func pairStubs(n int, stubs []NodeID) ([][]NodeID, bool) {
	adj := make([][]NodeID, n)
	seen := make(map[[2]NodeID]bool, len(stubs)/2)
	for i := 0; i < len(stubs); i += 2 {
		a, b := stubs[i], stubs[i+1]
		if a == b {
			return nil, false
		}
		if a > b {
			a, b = b, a
		}
		key := [2]NodeID{a, b}
		if seen[key] {
			return nil, false
		}
		seen[key] = true
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	return adj, true
}

// connected reports whether the adjacency list forms one component.
func connected(adj [][]NodeID) bool {
	if len(adj) == 0 {
		return false
	}
	visited := make([]bool, len(adj))
	queue := []NodeID{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !visited[v] {
				visited[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == len(adj)
}
