// Package topology models the interconnection network shapes of the
// simulated multiprocessor. The paper assumes "a processor makes its best
// effort to communicate with a destination node" over an interconnection
// network (§1); the recovery protocols are topology-agnostic, but message
// cost (hop count) and the gradient-model load balancer (§3.3) both need
// neighbor structure and routing.
//
// Two families are provided. The regular shapes of the 1986 experiments —
// Ring, Mesh2D, Hypercube (validated to dimension 6, 64 processors),
// Complete, Star — and generator-backed irregular shapes for the stress
// scenarios: Torus (wraparound mesh), BinaryTree (every internal node a cut
// vertex), and RandomRegular (a seeded configuration-model sample, so runs
// sharing a seed share the graph). All of them precompute BFS next-hop and
// distance tables at construction; ByName maps CLI spec strings to
// constructors so every experiment can name any shape.
package topology

import (
	"fmt"
	"math/bits"
	"sync"
)

// NodeID identifies a processor in the topology, 0-based.
type NodeID int32

// Topology describes an undirected connected network of N nodes.
type Topology interface {
	// Size returns the number of nodes.
	Size() int
	// Neighbors returns the direct neighbors of id in ascending order.
	// The returned slice must not be modified.
	Neighbors(id NodeID) []NodeID
	// NextHop returns the neighbor to forward to on a shortest path from
	// `from` toward `to`. NextHop(x, x) returns x.
	NextHop(from, to NodeID) NodeID
	// Dist returns the shortest-path hop count between two nodes.
	Dist(from, to NodeID) int
	// Name returns a short human-readable description.
	Name() string
}

// table is a generic precomputed-BFS implementation backing every concrete
// topology. For the machine sizes the simulator targets (≤ a few hundred
// nodes), O(N²) tables are cheap and make NextHop/Dist O(1).
type table struct {
	name      string
	neighbors [][]NodeID
	next      [][]NodeID // next[from][to]
	dist      [][]int32
}

func (t *table) Size() int                    { return len(t.neighbors) }
func (t *table) Neighbors(id NodeID) []NodeID { return t.neighbors[id] }
func (t *table) Name() string                 { return t.name }

func (t *table) NextHop(from, to NodeID) NodeID { return t.next[from][to] }
func (t *table) Dist(from, to NodeID) int       { return int(t.dist[from][to]) }

// build precomputes BFS next-hop and distance tables from an adjacency
// list. It returns an error if the graph is disconnected.
func build(name string, adj [][]NodeID) (Topology, error) {
	n := len(adj)
	t := &table{
		name:      name,
		neighbors: adj,
		next:      make([][]NodeID, n),
		dist:      make([][]int32, n),
	}
	queue := make([]NodeID, 0, n)
	for src := 0; src < n; src++ {
		next := make([]NodeID, n)
		dist := make([]int32, n)
		for i := range dist {
			dist[i] = -1
			next[i] = -1
		}
		dist[src] = 0
		next[src] = NodeID(src)
		queue = queue[:0]
		queue = append(queue, NodeID(src))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					if u == NodeID(src) {
						next[v] = v
					} else {
						next[v] = next[u]
					}
					queue = append(queue, v)
				}
			}
		}
		for i, d := range dist {
			if d < 0 {
				return nil, fmt.Errorf("topology %s: node %d unreachable from %d", name, i, src)
			}
		}
		t.next[src] = next
		t.dist[src] = dist
	}
	return t, nil
}

// Ring returns a bidirectional ring of n nodes (n ≥ 2).
func Ring(n int) (Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: ring needs ≥ 2 nodes, got %d", n)
	}
	adj := make([][]NodeID, n)
	for i := 0; i < n; i++ {
		prev := NodeID((i - 1 + n) % n)
		next := NodeID((i + 1) % n)
		if prev == next { // n == 2
			adj[i] = []NodeID{prev}
		} else if prev < next {
			adj[i] = []NodeID{prev, next}
		} else {
			adj[i] = []NodeID{next, prev}
		}
	}
	return build(fmt.Sprintf("ring(%d)", n), adj)
}

// Mesh2D returns a rows×cols grid (no wraparound), row-major node ids.
func Mesh2D(rows, cols int) (Topology, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topology: mesh needs ≥ 2 nodes, got %dx%d", rows, cols)
	}
	n := rows * cols
	adj := make([][]NodeID, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			var nb []NodeID
			if r > 0 {
				nb = append(nb, NodeID(id-cols))
			}
			if c > 0 {
				nb = append(nb, NodeID(id-1))
			}
			if c < cols-1 {
				nb = append(nb, NodeID(id+1))
			}
			if r < rows-1 {
				nb = append(nb, NodeID(id+cols))
			}
			adj[id] = nb
		}
	}
	return build(fmt.Sprintf("mesh(%dx%d)", rows, cols), adj)
}

// Hypercube returns a d-dimensional binary hypercube with 2^d nodes.
func Hypercube(dim int) (Topology, error) {
	if dim < 1 || dim > 16 {
		return nil, fmt.Errorf("topology: hypercube dimension %d out of range [1,16]", dim)
	}
	n := 1 << dim
	adj := make([][]NodeID, n)
	for i := 0; i < n; i++ {
		nb := make([]NodeID, dim)
		for b := 0; b < dim; b++ {
			nb[b] = NodeID(i ^ (1 << b))
		}
		sortNodeIDs(nb)
		adj[i] = nb
	}
	return build(fmt.Sprintf("hypercube(%d)", dim), adj)
}

// Complete returns a fully connected network of n nodes.
func Complete(n int) (Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: complete graph needs ≥ 2 nodes, got %d", n)
	}
	adj := make([][]NodeID, n)
	for i := 0; i < n; i++ {
		nb := make([]NodeID, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				nb = append(nb, NodeID(j))
			}
		}
		adj[i] = nb
	}
	return build(fmt.Sprintf("complete(%d)", n), adj)
}

// Star returns a star with node 0 at the center and n-1 leaves.
func Star(n int) (Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs ≥ 2 nodes, got %d", n)
	}
	adj := make([][]NodeID, n)
	center := make([]NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		center = append(center, NodeID(i))
		adj[i] = []NodeID{0}
	}
	adj[0] = center
	return build(fmt.Sprintf("star(%d)", n), adj)
}

// DefaultRegularSeed fixes the graph ByName("regular", n) samples, so every
// caller that names the kind gets the same (reproducible) irregular network.
// Callers that want a different sample use RandomRegular directly.
const DefaultRegularSeed = 1

// DefaultRegularDegree is the target degree for ByName("regular", n): 4,
// matching the torus/mesh interior degree so the kinds compare like for
// like, capped at n-1 on tiny networks.
func DefaultRegularDegree(n int) int {
	if n <= 4 {
		return n - 1
	}
	return 4
}

// Kinds lists the spec strings ByName accepts, in the order the topology
// sweep experiments report them.
func Kinds() []string {
	return []string{"mesh", "torus", "ring", "hypercube", "tree", "regular", "star", "complete"}
}

// byNameCache memoizes ByName: every named topology is deterministic in
// (kind, n) and a built table is immutable (all methods are reads; the
// Neighbors contract already forbids mutation), so sweeps that rebuild the
// same machine shape per cell share one BFS table instead of recomputing
// O(N²) routes per run.
var byNameCache sync.Map // byNameKey -> Topology

type byNameKey struct {
	kind string
	n    int
}

// ByName constructs a topology from a short spec string, used by CLIs and
// core.Config: "ring", "mesh", "torus", "hypercube", "tree" (complete binary
// tree), "regular" (seeded random 4-regular graph), "complete", "star".
// Mesh and torus pick the most square factorization of n; hypercube requires
// n to be a power of two; "regular" samples with DefaultRegularSeed and
// DefaultRegularDegree so the graph is reproducible across runs.
// Results are cached: callers share one immutable instance per (kind, n).
func ByName(kind string, n int) (Topology, error) {
	key := byNameKey{kind: kind, n: n}
	if v, ok := byNameCache.Load(key); ok {
		return v.(Topology), nil
	}
	t, err := byName(kind, n)
	if err != nil {
		return nil, err
	}
	byNameCache.Store(key, t)
	return t, nil
}

func byName(kind string, n int) (Topology, error) {
	switch kind {
	case "ring":
		return Ring(n)
	case "mesh":
		r, c := squarest(n)
		return Mesh2D(r, c)
	case "torus":
		r, c := squarest(n)
		return Torus(r, c)
	case "hypercube":
		if n <= 0 || n&(n-1) != 0 {
			return nil, fmt.Errorf("topology: hypercube size %d is not a power of two", n)
		}
		return Hypercube(bits.TrailingZeros(uint(n)))
	case "tree", "btree":
		return BinaryTree(n)
	case "regular", "random-regular":
		return RandomRegular(n, DefaultRegularDegree(n), DefaultRegularSeed)
	case "complete":
		return Complete(n)
	case "star":
		return Star(n)
	default:
		return nil, fmt.Errorf("topology: unknown kind %q", kind)
	}
}

// squarest factors n into rows×cols with rows ≤ cols and rows maximal.
func squarest(n int) (rows, cols int) {
	rows = 1
	for r := 2; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return rows, n / rows
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}
