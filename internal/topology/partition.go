package topology

// Partition cuts a topology into at most `shards` connected regions of
// near-equal size, deterministically: same topology, same shard count →
// same regions, with no dependence on map iteration or randomness. The
// sharded simulation kernel pins every processor to its region's shard and
// uses the minimum inter-region hop distance as the conservative lookahead
// horizon, so the partition quality bounds both load balance and how much
// virtual time the shards may run unsynchronized.
//
// The construction is farthest-point seeding followed by balanced
// multi-source BFS growth:
//
//  1. Region 0 is seeded at node 0; each further region is seeded at the
//     node maximizing the hop distance to all previous seeds (ties to the
//     lowest node id), which spreads regions across the diameter.
//  2. Regions grow in round-robin turns, each turn claiming the lowest
//     unclaimed neighbor of the region's BFS frontier, until the region
//     reaches the balanced capacity ceil(n/k) or its frontier is exhausted.
//  3. Any nodes left stranded by capacity limits join the smallest
//     adjacent region (ties to the lowest region id), preserving
//     connectedness.
func Partition(t Topology, shards int) *Regions {
	n := t.Size()
	k := shards
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	r := &Regions{Shards: k, Region: make([]int32, n), Sizes: make([]int, k)}
	if k == 1 {
		r.Sizes[0] = n
		return r
	}

	// Farthest-point seeds. minDist[v] tracks the hop distance from v to
	// the nearest chosen seed, via the topology's precomputed tables.
	seeds := make([]NodeID, 1, k)
	seeds[0] = 0
	minDist := make([]int, n)
	for v := range minDist {
		minDist[v] = t.Dist(0, NodeID(v))
	}
	for len(seeds) < k {
		best, bestDist := NodeID(-1), -1
		for v := 0; v < n; v++ {
			if minDist[v] > bestDist {
				best, bestDist = NodeID(v), minDist[v]
			}
		}
		seeds = append(seeds, best)
		for v := 0; v < n; v++ {
			if d := t.Dist(best, NodeID(v)); d < minDist[v] {
				minDist[v] = d
			}
		}
	}

	// Balanced BFS growth from the seeds.
	const unassigned = int32(-1)
	for v := range r.Region {
		r.Region[v] = unassigned
	}
	capacity := (n + k - 1) / k
	queues := make([][]NodeID, k)
	heads := make([]int, k)
	for i, s := range seeds {
		r.Region[s] = int32(i)
		r.Sizes[i]++
		queues[i] = append(queues[i], s)
	}
	assigned := k
	for assigned < n {
		progress := false
		for i := 0; i < k && assigned < n; i++ {
			if r.Sizes[i] >= capacity {
				continue
			}
			for heads[i] < len(queues[i]) {
				v := queues[i][heads[i]]
				claimed := false
				for _, u := range t.Neighbors(v) {
					if r.Region[u] == unassigned {
						r.Region[u] = int32(i)
						r.Sizes[i]++
						queues[i] = append(queues[i], u)
						assigned++
						claimed = true
						break
					}
				}
				if claimed {
					progress = true
					break
				}
				heads[i]++
			}
		}
		if !progress {
			break
		}
	}

	// Stranded nodes (regions hit capacity around them) join the smallest
	// adjacent region. The graph is connected, so this terminates.
	for assigned < n {
		for v := 0; v < n; v++ {
			if r.Region[v] != unassigned {
				continue
			}
			best := int32(-1)
			for _, u := range t.Neighbors(NodeID(v)) {
				g := r.Region[u]
				if g == unassigned {
					continue
				}
				if best < 0 || r.Sizes[g] < r.Sizes[best] ||
					(r.Sizes[g] == r.Sizes[best] && g < best) {
					best = g
				}
			}
			if best >= 0 {
				r.Region[v] = best
				r.Sizes[best]++
				assigned++
			}
		}
	}

	r.MinInterHop = minInterHop(t, r.Region)
	return r
}

// Regions is a deterministic partition of a topology into connected
// regions, one simulation shard each.
type Regions struct {
	// Shards is the number of regions actually produced (≤ requested, ≥ 1).
	Shards int
	// Region maps each node to its region index.
	Region []int32
	// Sizes is the node count per region.
	Sizes []int
	// MinInterHop is the minimum hop distance between any two nodes in
	// different regions — the safe lookahead bound for conservative
	// synchronization. It is 0 when there is a single region (no
	// cross-region traffic to bound).
	MinInterHop int
}

// minInterHop finds the smallest hop distance crossing a region boundary.
// Any crossing edge settles it at 1; the quadratic fallback only runs for
// partitions with no adjacent cross-region pair (possible only for
// single-region partitions, where the answer is 0 by convention).
func minInterHop(t Topology, region []int32) int {
	n := t.Size()
	for v := 0; v < n; v++ {
		for _, u := range t.Neighbors(NodeID(v)) {
			if region[u] != region[v] {
				return 1
			}
		}
	}
	min := 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if region[a] == region[b] {
				continue
			}
			if d := t.Dist(NodeID(a), NodeID(b)); min == 0 || d < min {
				min = d
			}
		}
	}
	return min
}
