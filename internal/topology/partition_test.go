package topology

import (
	"fmt"
	"testing"
)

// partitionCases pairs every ByName kind with sizes that exercise the
// interesting regimes: non-square mesh factorizations, power-of-two
// hypercubes, cut-vertex-heavy trees, and the seeded random-regular sample.
var partitionCases = []struct {
	kind string
	n    int
}{
	{"mesh", 16}, {"mesh", 36}, {"mesh", 64},
	{"torus", 36}, {"torus", 64},
	{"ring", 16}, {"ring", 33},
	{"hypercube", 16}, {"hypercube", 64},
	{"tree", 15}, {"tree", 31},
	{"regular", 24}, {"regular", 64},
	{"star", 17},
	{"complete", 12},
}

var partitionShardCounts = []int{1, 2, 3, 4, 8}

// regionConnected verifies region g induces a connected subgraph: a BFS from
// one member restricted to same-region edges must reach every member.
func regionConnected(t Topology, region []int32, g int32) bool {
	var start NodeID = -1
	total := 0
	for v, rg := range region {
		if rg == g {
			total++
			if start < 0 {
				start = NodeID(v)
			}
		}
	}
	if total == 0 {
		return false
	}
	seen := map[NodeID]bool{start: true}
	queue := []NodeID{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range t.Neighbors(v) {
			if region[u] == g && !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return len(seen) == total
}

// TestPartitionConnected checks the structural invariants on every kind and
// shard count: every node assigned to exactly one in-range region, every
// region non-empty and connected, and sizes consistent with the assignment.
func TestPartitionConnected(t *testing.T) {
	for _, c := range partitionCases {
		topo, err := ByName(c.kind, c.n)
		if err != nil {
			t.Fatalf("%s/%d: %v", c.kind, c.n, err)
		}
		for _, shards := range partitionShardCounts {
			name := fmt.Sprintf("%s-%d/shards=%d", c.kind, c.n, shards)
			r := Partition(topo, shards)
			if r.Shards < 1 || r.Shards > shards || r.Shards > c.n {
				t.Fatalf("%s: produced %d regions", name, r.Shards)
			}
			if len(r.Region) != c.n {
				t.Fatalf("%s: region map covers %d of %d nodes", name, len(r.Region), c.n)
			}
			sizes := make([]int, r.Shards)
			for v, g := range r.Region {
				if g < 0 || int(g) >= r.Shards {
					t.Fatalf("%s: node %d in out-of-range region %d", name, v, g)
				}
				sizes[g]++
			}
			for g := 0; g < r.Shards; g++ {
				if sizes[g] != r.Sizes[g] {
					t.Fatalf("%s: region %d size mismatch: counted %d, reported %d", name, g, sizes[g], r.Sizes[g])
				}
				if sizes[g] == 0 {
					t.Fatalf("%s: region %d is empty", name, g)
				}
				if !regionConnected(topo, r.Region, int32(g)) {
					t.Fatalf("%s: region %d is disconnected", name, g)
				}
			}
		}
	}
}

// TestPartitionDeterministic requires the same topology and shard count to
// produce the identical assignment on every call — including across fresh
// topology constructions, which is what makes a sharded run reproducible
// from its config alone.
func TestPartitionDeterministic(t *testing.T) {
	for _, c := range partitionCases {
		for _, shards := range partitionShardCounts {
			a, err := ByName(c.kind, c.n)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ByName(c.kind, c.n)
			if err != nil {
				t.Fatal(err)
			}
			ra, rb := Partition(a, shards), Partition(b, shards)
			if ra.Shards != rb.Shards || ra.MinInterHop != rb.MinInterHop {
				t.Fatalf("%s-%d/shards=%d: shape diverged across constructions", c.kind, c.n, shards)
			}
			for v := range ra.Region {
				if ra.Region[v] != rb.Region[v] {
					t.Fatalf("%s-%d/shards=%d: node %d assigned to %d then %d",
						c.kind, c.n, shards, v, ra.Region[v], rb.Region[v])
				}
			}
		}
	}
}

// TestPartitionRandomRegularSeeds checks the seeded irregular family: for
// each generator seed the partition is valid and deterministic, and distinct
// seeds are each internally reproducible (two graphs built from the same
// seed partition identically).
func TestPartitionRandomRegularSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a, err := RandomRegular(32, 4, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := RandomRegular(32, 4, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, shards := range partitionShardCounts {
			ra, rb := Partition(a, shards), Partition(b, shards)
			for v := range ra.Region {
				if ra.Region[v] != rb.Region[v] {
					t.Fatalf("seed %d shards=%d: node %d assignment not reproducible", seed, shards, v)
				}
			}
			for g := 0; g < ra.Shards; g++ {
				if !regionConnected(a, ra.Region, int32(g)) {
					t.Fatalf("seed %d shards=%d: region %d disconnected", seed, shards, g)
				}
			}
		}
	}
}

// TestPartitionMinInterHop pins the lookahead bound: MinInterHop must be a
// true lower bound on the hop distance between any two nodes in different
// regions (the property conservative synchronization relies on), at least 1
// for any real multi-region split, and 0 by convention for one region.
// Random-regular and hypercube — the kinds with the least locality, where a
// bad partition would most easily break the bound — are in partitionCases.
func TestPartitionMinInterHop(t *testing.T) {
	for _, c := range partitionCases {
		topo, err := ByName(c.kind, c.n)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range partitionShardCounts {
			r := Partition(topo, shards)
			if r.Shards == 1 {
				if r.MinInterHop != 0 {
					t.Fatalf("%s-%d: single region MinInterHop = %d, want 0", c.kind, c.n, r.MinInterHop)
				}
				continue
			}
			if r.MinInterHop < 1 {
				t.Fatalf("%s-%d/shards=%d: MinInterHop = %d, want >= 1", c.kind, c.n, shards, r.MinInterHop)
			}
			for a := 0; a < c.n; a++ {
				for b := a + 1; b < c.n; b++ {
					if r.Region[a] == r.Region[b] {
						continue
					}
					if d := topo.Dist(NodeID(a), NodeID(b)); d < r.MinInterHop {
						t.Fatalf("%s-%d/shards=%d: nodes %d,%d in different regions at distance %d < MinInterHop %d",
							c.kind, c.n, shards, a, b, d, r.MinInterHop)
					}
				}
			}
		}
	}
}
