package topology

import (
	"reflect"
	"testing"
)

// generatedTopologies builds one instance of every generator-backed shape;
// the generic invariants (symmetry, shortest-path walks, self-distance) run
// over them via the checks below, mirroring topology_test.go's suite.
func generatedTopologies(t *testing.T) map[string]Topology {
	t.Helper()
	out := map[string]Topology{}
	var err error
	if out["torus3x4"], err = Torus(3, 4); err != nil {
		t.Fatal(err)
	}
	if out["torus2x2"], err = Torus(2, 2); err != nil {
		t.Fatal(err)
	}
	if out["torus1x6"], err = Torus(1, 6); err != nil {
		t.Fatal(err)
	}
	if out["torus8x8"], err = Torus(8, 8); err != nil {
		t.Fatal(err)
	}
	if out["btree15"], err = BinaryTree(15); err != nil {
		t.Fatal(err)
	}
	if out["btree64"], err = BinaryTree(64); err != nil {
		t.Fatal(err)
	}
	if out["regular12"], err = RandomRegular(12, 4, 7); err != nil {
		t.Fatal(err)
	}
	if out["regular64"], err = RandomRegular(64, 4, 1); err != nil {
		t.Fatal(err)
	}
	if out["cube6"], err = Hypercube(6); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGeneratorsRejectBadSizes(t *testing.T) {
	if _, err := Torus(1, 1); err == nil {
		t.Error("Torus(1,1) accepted")
	}
	if _, err := Torus(0, 5); err == nil {
		t.Error("Torus(0,5) accepted")
	}
	if _, err := BinaryTree(1); err == nil {
		t.Error("BinaryTree(1) accepted")
	}
	if _, err := RandomRegular(1, 1, 1); err == nil {
		t.Error("RandomRegular(1,1) accepted")
	}
	if _, err := RandomRegular(8, 0, 1); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := RandomRegular(8, 8, 1); err == nil {
		t.Error("degree n accepted")
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Error("odd n·degree accepted")
	}
	if _, err := RandomRegular(6, 1, 1); err == nil {
		t.Error("disconnected 1-regular graph accepted")
	}
}

// TestGeneratedInvariants runs the structural invariants every topology
// must satisfy: no self-edges, sorted symmetric neighbor lists, and NextHop
// walks that reach every destination in exactly Dist hops.
func TestGeneratedInvariants(t *testing.T) {
	for name, topo := range generatedTopologies(t) {
		n := topo.Size()
		for i := 0; i < n; i++ {
			id := NodeID(i)
			nb := topo.Neighbors(id)
			for k, v := range nb {
				if v == id {
					t.Errorf("%s: node %d lists itself", name, i)
				}
				if k > 0 && nb[k-1] >= v {
					t.Errorf("%s: node %d neighbors not strictly ascending: %v", name, i, nb)
				}
				found := false
				for _, back := range topo.Neighbors(v) {
					if back == id {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s: edge %d->%d not symmetric", name, i, v)
				}
			}
		}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				src, dst := NodeID(s), NodeID(d)
				if s == d {
					if topo.NextHop(src, dst) != src || topo.Dist(src, dst) != 0 {
						t.Fatalf("%s: self route of %d broken", name, s)
					}
					continue
				}
				if topo.Dist(src, dst) != topo.Dist(dst, src) {
					t.Fatalf("%s: Dist(%d,%d) asymmetric", name, s, d)
				}
				cur, hops := src, 0
				for cur != dst {
					nxt := topo.NextHop(cur, dst)
					if nxt == cur || !isNeighbor(topo, cur, nxt) {
						t.Fatalf("%s: NextHop(%d,%d) = %d invalid", name, cur, dst, nxt)
					}
					cur = nxt
					hops++
					if hops > n {
						t.Fatalf("%s: routing loop %d->%d", name, s, d)
					}
				}
				if hops != topo.Dist(src, dst) {
					t.Fatalf("%s: path %d->%d took %d hops, Dist says %d", name, s, d, hops, topo.Dist(src, dst))
				}
			}
		}
	}
}

func isNeighbor(topo Topology, a, b NodeID) bool {
	for _, nb := range topo.Neighbors(a) {
		if nb == b {
			return true
		}
	}
	return false
}

func TestTorusStructure(t *testing.T) {
	// Interior degree is 4 everywhere on a ≥3×3 torus, and wraparound makes
	// opposite edges adjacent.
	torus, err := Torus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < torus.Size(); i++ {
		if got := len(torus.Neighbors(NodeID(i))); got != 4 {
			t.Errorf("torus node %d degree = %d, want 4", i, got)
		}
	}
	if d := torus.Dist(0, 4); d != 1 { // (0,0) to (0,4): wrap left
		t.Errorf("torus Dist(0,4) = %d, want 1", d)
	}
	if d := torus.Dist(0, 15); d != 1 { // (0,0) to (3,0): wrap up
		t.Errorf("torus Dist(0,15) = %d, want 1", d)
	}
	// A 1×n torus degenerates to a ring.
	line, err := Torus(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if d := line.Dist(0, 5); d != 1 {
		t.Errorf("1x6 torus Dist(0,5) = %d, want 1 (ring wrap)", d)
	}
	// A 2-row torus must not duplicate the up/down edge.
	two, err := Torus(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(two.Neighbors(0)); got != 3 {
		t.Errorf("2x3 torus node 0 degree = %d, want 3 (deduped wrap)", got)
	}
}

// TestTorusDistIsWrappedManhattan checks the closed form: per-axis distance
// is min(|Δ|, extent-|Δ|).
func TestTorusDistIsWrappedManhattan(t *testing.T) {
	rows, cols := 5, 7
	torus, err := Torus(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	wrap := func(d, n int) int {
		if d < 0 {
			d = -d
		}
		if n-d < d {
			return n - d
		}
		return d
	}
	for a := 0; a < rows*cols; a++ {
		for b := 0; b < rows*cols; b++ {
			want := wrap(a/cols-b/cols, rows) + wrap(a%cols-b%cols, cols)
			if got := torus.Dist(NodeID(a), NodeID(b)); got != want {
				t.Fatalf("torus Dist(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestBinaryTreeStructure(t *testing.T) {
	bt, err := BinaryTree(15)
	if err != nil {
		t.Fatal(err)
	}
	// Root has two children; depth of node 14 is 3.
	if got := len(bt.Neighbors(0)); got != 2 {
		t.Errorf("btree root degree = %d, want 2", got)
	}
	if d := bt.Dist(0, 14); d != 3 {
		t.Errorf("btree Dist(0,14) = %d, want 3", d)
	}
	// Leaves in different subtrees route through the root: 7 is leftmost
	// leaf (depth 3), 14 rightmost; distance is 3+3.
	if d := bt.Dist(7, 14); d != 6 {
		t.Errorf("btree Dist(7,14) = %d, want 6", d)
	}
	// Every path between the two root subtrees crosses the root.
	if hop := bt.NextHop(1, 2); hop != 0 {
		t.Errorf("btree NextHop(1,2) = %d, want 0", hop)
	}
}

func TestRandomRegularDegreeAndDeterminism(t *testing.T) {
	const n, degree = 24, 4
	a, err := RandomRegular(n, degree, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := len(a.Neighbors(NodeID(i))); got != degree {
			t.Errorf("node %d degree = %d, want %d", i, got, degree)
		}
	}
	// Same seed, same graph.
	b, err := RandomRegular(n, degree, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(a.Neighbors(NodeID(i)), b.Neighbors(NodeID(i))) {
			t.Fatalf("seed 42 not deterministic at node %d: %v vs %v",
				i, a.Neighbors(NodeID(i)), b.Neighbors(NodeID(i)))
		}
	}
	// Different seeds should (overwhelmingly) differ somewhere.
	c, err := RandomRegular(n, degree, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(a.Neighbors(NodeID(i)), c.Neighbors(NodeID(i))) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical graphs")
	}
}

// TestRandomRegularManySeeds exercises the rejection loop: every seed must
// yield a valid connected regular graph (build rejects disconnection).
func TestRandomRegularManySeeds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		topo, err := RandomRegular(16, 3, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 0; i < topo.Size(); i++ {
			if len(topo.Neighbors(NodeID(i))) != 3 {
				t.Fatalf("seed %d: node %d degree %d", seed, i, len(topo.Neighbors(NodeID(i))))
			}
		}
	}
}

// TestHypercube64 validates the dim-6 cube the stress scenarios run on.
func TestHypercube64(t *testing.T) {
	cube, err := Hypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	if cube.Size() != 64 {
		t.Fatalf("Size = %d, want 64", cube.Size())
	}
	for i := 0; i < 64; i++ {
		if got := len(cube.Neighbors(NodeID(i))); got != 6 {
			t.Errorf("node %d degree = %d, want 6", i, got)
		}
	}
	if d := cube.Dist(0, 63); d != 6 {
		t.Errorf("Dist(0,63) = %d, want 6", d)
	}
}

func TestByNameGeneratedKinds(t *testing.T) {
	cases := []struct {
		kind string
		n    int
		size int
	}{
		{"torus", 12, 12},
		{"torus", 64, 64},
		{"tree", 10, 10},
		{"btree", 10, 10},
		{"regular", 12, 12},
		{"random-regular", 12, 12},
		{"regular", 3, 3}, // degree capped at n-1
	}
	for _, tc := range cases {
		topo, err := ByName(tc.kind, tc.n)
		if err != nil {
			t.Errorf("ByName(%q,%d): %v", tc.kind, tc.n, err)
			continue
		}
		if topo.Size() != tc.size {
			t.Errorf("ByName(%q,%d) size = %d, want %d", tc.kind, tc.n, topo.Size(), tc.size)
		}
	}
	// ByName("regular", n) is reproducible: it pins seed and degree.
	a, err := ByName("regular", 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("regular", 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if !reflect.DeepEqual(a.Neighbors(NodeID(i)), b.Neighbors(NodeID(i))) {
			t.Fatal("ByName regular not reproducible")
		}
	}
}

// TestKindsAllConstructible checks every advertised kind builds at a
// power-of-two size (so hypercube is satisfiable too).
func TestKindsAllConstructible(t *testing.T) {
	for _, kind := range Kinds() {
		topo, err := ByName(kind, 16)
		if err != nil {
			t.Errorf("ByName(%q,16): %v", kind, err)
			continue
		}
		if topo.Size() != 16 {
			t.Errorf("%s size = %d", kind, topo.Size())
		}
	}
}
