package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
)

// incrementalStreamRender is the incremental-scheme service stream for the
// shard sweep and the concurrent-submission race: a 16-processor mesh
// serving the determinism specs with a three-crash burst landing
// mid-stream, so every paced drain tick, demand classification, and
// dependent abort is exercised while requests keep flowing. The rendered
// report pins admissions, per-request outcomes, and the recovery-window
// counters.
func incrementalStreamRender(t *testing.T, shards int, parallel bool) string {
	t.Helper()
	cl, err := Open(Config{Procs: 16, Seed: 7, Recovery: "incremental",
		ArrivalEvery: 150, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if parallel {
		var wg sync.WaitGroup
		for _, spec := range determinismSpecs {
			wg.Add(1)
			go func(spec string) {
				defer wg.Done()
				if _, err := cl.SubmitSpec(spec); err != nil {
					t.Error(err)
				}
			}(spec)
		}
		wg.Wait()
	} else {
		for _, spec := range determinismSpecs {
			if _, err := cl.SubmitSpec(spec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.Inject(faults.Burst(16, 3, 400, faults.CrashAnnounced, 7)); err != nil {
		t.Fatal(err)
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed == 0 {
		t.Fatalf("shards=%d incremental stream completed nothing:\n%s", shards, sr.Render())
	}
	if sr.Totals == nil || sr.Totals.Sim == nil || sr.Totals.Sim.Metrics.PacedReissues == 0 {
		t.Fatalf("shards=%d stream exercised no paced reissues — the burst missed the stream:\n%s",
			shards, sr.Render())
	}
	return sr.Render()
}

// TestIncrementalStreamShardSweep: the incremental-scheme service stream
// renders byte-identically at every shard count. The paced drain runs on
// per-proc Defer timers scheduled on the owning shard's kernel, so the
// demand classification, reissue order, and dependent aborts must all be
// shard-count-invariant.
func TestIncrementalStreamShardSweep(t *testing.T) {
	ref := incrementalStreamRender(t, 1, false)
	for _, shards := range []int{2, 4, 8} {
		if got := incrementalStreamRender(t, shards, false); got != ref {
			t.Fatalf("shards=%d incremental stream diverged:\n--- 1 shard ---\n%s--- %d shards ---\n%s",
				shards, ref, shards, got)
		}
	}
}

// TestIncrementalConcurrentSubmit is the -race stress for the incremental
// scheme: requests raced in from several goroutines against a 4-shard
// kernel must produce the byte-identical report of the sequential
// single-shard stream, paced recovery and all.
func TestIncrementalConcurrentSubmit(t *testing.T) {
	ref := incrementalStreamRender(t, 1, false)
	for run := 0; run < 3; run++ {
		if got := incrementalStreamRender(t, 4, true); got != ref {
			t.Fatalf("concurrent incremental stream diverged (run %d):\n--- sequential/1 ---\n%s--- parallel/4 ---\n%s",
				run, ref, got)
		}
	}
}

// TestSchemeRegistryMatchesConfigError: machine-level config validation
// speaks the recovery registry's exact vocabulary — every registered scheme
// (incremental included) round-trips through Config.Run, and the unknown-
// scheme error text lists the registered names verbatim.
func TestSchemeRegistryMatchesConfigError(t *testing.T) {
	w, err := StandardWorkload("fib:8")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"incremental", "none", "rollback",
		"rollback-lazy", "rollback-nosuppress", "splice"} {
		rep, err := (Config{Procs: 4, Recovery: name}).Run(w, nil)
		if err != nil || rep.Err != nil {
			t.Fatalf("registered scheme %q rejected: %v / %v", name, err, rep)
		}
	}
	_, err = (Config{Procs: 4, Recovery: "nosuch"}).Run(w, nil)
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	want := "incremental, none, rollback, rollback-lazy, rollback-nosuppress, splice"
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("unknown-scheme error does not list the registry:\n got: %v\nwant substring: %s", err, want)
	}
}
