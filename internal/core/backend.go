package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/registry"
)

// TimeUnit names the unit a backend measures makespan in: the simulator
// counts virtual ticks, the live goroutine network counts wall microseconds.
type TimeUnit string

// The two units backends report in.
const (
	Ticks      TimeUnit = "vticks"
	WallMicros TimeUnit = "µs"
)

// Report is the backend-neutral outcome of a run: what every substrate can
// measure about an applicative evaluation under faults. Substrate-specific
// detail hangs off Sim (the simulator's full report) and Live (per-node
// counters); callers that only need the paper-level quantities — did it
// finish, with what answer, at what cost — never touch either.
type Report struct {
	// Backend names the substrate that produced the report ("sim", "live").
	Backend string
	// Answer is the program's result; nil when the run did not complete.
	Answer expr.Value
	// Completed is true when the answer reached the super-root.
	Completed bool
	// Err holds an evaluation or verification error, if one occurred.
	Err error
	// Makespan is the completion time in Unit (or the time at the deadline
	// for incomplete runs).
	Makespan int64
	// Unit is the makespan's unit: Ticks (sim) or WallMicros (live).
	Unit TimeUnit
	// Messages counts every message the interconnect carried.
	Messages int64
	// MsgBytes is the encoded payload bytes of those messages, measured with
	// the proto codec's wire sizes on every backend — the one byte figure
	// that is comparable across sim, live and net.
	MsgBytes int64
	// Spawned counts task packets created, including reissues and twins.
	Spawned int64
	// Reissued counts checkpointed packets re-sent after a failure.
	Reissued int64
	// Drained counts results discarded harmlessly: duplicates, late arrivals,
	// and (live) messages black-holed at dead nodes — §3.4's "returns from
	// orphan tasks are theoretically harmless".
	Drained int64
	// Recoveries counts recovery events: reissues plus splice twins.
	Recoveries int64
	// Procs is the processor (or node) count.
	Procs int
	// Scheme and Placement echo the configuration for reports.
	Scheme, Placement string
	// ReissuesByNode is the per-node reissue count (live backend; nil on sim,
	// where reissues are attributed in Sim.Metrics instead).
	ReissuesByNode []int64
	// Sim is the simulator's full report (metrics, trace, state samples);
	// nil when another backend produced this report.
	Sim *machine.Report

	// Request is the request's stream index when the report describes one
	// request of a service-mode cluster (one-shot reports are request 0).
	Request int
	// ArrivedAt and DoneAt are stream-clock stamps in Unit for service-mode
	// requests: admission and completion (DoneAt 0 when incomplete). The
	// message and reissue counters of per-request reports are zero — the
	// substrate is shared, so those totals live on the stream's
	// ServiceReport — while Makespan is the request's own service latency.
	ArrivedAt, DoneAt int64
	// Shed marks a per-request report whose request admission control
	// rejected (Config.MaxInFlight with the "shed" policy, or a "queue:N"
	// FIFO at its bound): never admitted, Completed false, ArrivedAt the
	// offer stamp. The request's Wait also returns ErrShed.
	Shed bool
	// QueuedFor is the time in Unit a service-mode request spent in the
	// admission FIFO before it got a slot (0 for requests admitted
	// directly). It is measured separately from the service latency:
	// ArrivedAt stamps the install, not the offer.
	QueuedFor int64
	// QueueDepthMax, on a session's aggregate (Close) report, is the
	// admission queue's high-water mark over the stream ("queue" policy;
	// always 0 with "shed" or unbounded admission).
	QueueDepthMax int
}

// ErrShed is the typed error SessionRequest.Wait (and Ticket.Wait) return
// for a request that bounded admission rejected under the "shed" policy.
// Shedding is an expected outcome of an overloaded stream, not a substrate
// failure: Drain does not surface it, and the service report counts shed
// requests in their own column.
var ErrShed = errors.New("core: request shed by admission control")

// Backend is one execution substrate for the applicative machine: the
// discrete-event simulator, the live goroutine network, or anything else
// that can evaluate a workload under a config and a fault plan. The paper's
// claim — functional checkpointing plus rollback/splice needs nothing from a
// particular substrate — is exactly this interface.
type Backend interface {
	// Name is the registry key ("sim", "live").
	Name() string
	// Run evaluates the workload under the fault plan and reports.
	Run(cfg Config, w Workload, plan *faults.Plan) (*Report, error)
}

// SessionBackend is the optional capability of a backend that can keep its
// network alive across requests: Open returns a long-lived Session serving a
// request stream, with faults injectable against the stream's clock. Both
// bundled substrates implement it; a backend without the capability is
// batch-only and can still Run, but Open/OpenOn reject it.
type SessionBackend interface {
	Backend
	// Open brings the substrate up under the config and keeps it up until
	// the session is closed.
	Open(cfg Config) (Session, error)
}

// Session is one open service stream on a substrate. Sessions are safe for
// concurrent use; Cluster is the ergonomic wrapper callers normally hold.
type Session interface {
	// Submit enqueues the workload and returns its request handle. On the
	// simulator, requests of one admission batch enter the stream in a
	// canonical order (spec, fn, args, then submission order), which makes
	// concurrent submission of distinguishable workloads deterministic.
	Submit(w Workload) (SessionRequest, error)
	// Inject schedules the plan's faults on the stream clock (a fault at
	// tick t fires at stream tick t, clamped to now if already past) and
	// returns the stream stamps, in the plan's time order, that the faults
	// fire at — in the backend's Unit.
	Inject(plan *faults.Plan) ([]int64, error)
	// Unit is the stream clock's unit: Ticks (sim) or WallMicros (live).
	Unit() TimeUnit
	// Close finishes the stream, resolves any still-open requests, tears the
	// substrate down, and returns the aggregate report — the same shape a
	// one-shot Run returns, with stream-total counters (and, on the
	// simulator, the full Sim detail).
	Close() (*Report, error)
}

// SessionRequest is the future of one submitted request.
type SessionRequest interface {
	// Wait blocks until the request completes, times out its per-request
	// budget, or the stream fails; the report is the per-request view
	// (answer, completion, stream stamps, service latency). The error is a
	// submission or stream failure; an answer that merely timed out reports
	// Completed false with a nil error.
	Wait() (*Report, error)
}

// backends is the backend registry; its error text lists the known
// backends in exactly the Backends() order, so help strings and error
// messages can never drift apart.
var backends = registry.New[Backend]("core", "backend")

// RegisterBackend adds a backend to the registry. Duplicate or empty names
// are errors. Backends register themselves in package init (the simulator
// here, the live network in internal/livenet), so importing a backend's
// package is what makes it selectable.
func RegisterBackend(b Backend) error { return backends.Register(b.Name(), b) }

// MustRegisterBackend is RegisterBackend for init-time wiring.
func MustRegisterBackend(b Backend) {
	if err := RegisterBackend(b); err != nil {
		panic(err)
	}
}

// ByName resolves a registered backend; the error text lists the registered
// names so callers can surface it verbatim.
func ByName(name string) (Backend, error) { return backends.Get(name) }

// Backends lists the registered backend names in the one documented order:
// sorted alphabetically ("live" before "sim" once internal/livenet is
// linked in). ByName error text and every CLI help string use this order.
func Backends() []string { return backends.Names() }

// simBackend runs the discrete-event simulator (internal/machine).
type simBackend struct{}

func init() { MustRegisterBackend(simBackend{}) }

// Name implements Backend.
func (simBackend) Name() string { return "sim" }

// Run implements Backend as the degenerate service stream — open a session,
// submit the one workload, inject the plan, drain, close — which the
// machine's session drives through the byte-identical event sequence of the
// old one-shot path.
func (simBackend) Run(cfg Config, w Workload, plan *faults.Plan) (*Report, error) {
	s, err := newSimSession(cfg)
	if err != nil {
		return nil, err
	}
	sr, err := s.Submit(w)
	if err != nil {
		return nil, err
	}
	// Surface setup errors in the historical order: start flushes the batch
	// and returns the machine-build error or the entry-function error (in
	// that order), then the fault plan validates.
	if err := s.start(); err != nil {
		return nil, err
	}
	if _, err := s.Inject(plan); err != nil {
		return nil, err
	}
	if _, err := sr.Wait(); err != nil {
		return nil, err
	}
	return s.Close()
}

// Open implements SessionBackend: a long-lived simulator session serving a
// request stream on one event kernel. Arrival and admission specs validate
// here, so a malformed spec fails the Open, not the first request.
func (simBackend) Open(cfg Config) (Session, error) {
	return newSimSession(cfg)
}

// VerifyOn runs the workload on the named backend and checks the answer
// against the sequential reference evaluator — the determinacy guarantee of
// §2.1, now assertable on every substrate.
func VerifyOn(backend string, cfg Config, w Workload, plan *faults.Plan) (*Report, error) {
	b, err := ByName(backend)
	if err != nil {
		return nil, err
	}
	rep, err := b.Run(cfg, w, plan)
	if err != nil {
		return nil, err
	}
	return rep, verifyReport(rep, w)
}

// verifyReport checks a backend-neutral report against the reference
// evaluator; nil means the run completed with the reference answer.
func verifyReport(rep *Report, w Workload) error {
	if rep.Err != nil {
		return rep.Err
	}
	if !rep.Completed {
		return fmt.Errorf("core: run did not complete (makespan %d %s)", rep.Makespan, rep.Unit)
	}
	want, err := refAnswer(w)
	if err != nil {
		return err
	}
	if !rep.Answer.Equal(want) {
		return fmt.Errorf("core: answer %v != reference %v", rep.Answer, want)
	}
	return nil
}

// refAnswer is lang.RefEval memoized by workload identity. The reference
// evaluator is deterministic and programs are immutable once built (§2.1 —
// determinacy is the property being verified), so a service stream that
// admits the same spec many times pays for one reference evaluation, not
// one per request. Keyed by program pointer plus the rendered entry call;
// entries are answer values, so the cache stays small for any realistic
// request mix.
var refAnswers sync.Map // refKey -> expr.Value

type refKey struct {
	prog *lang.Program
	call string
}

func refAnswer(w Workload) (expr.Value, error) {
	key := refKey{prog: w.Program, call: fmt.Sprintf("%s %v", w.Fn, w.Args)}
	if v, ok := refAnswers.Load(key); ok {
		return v.(expr.Value), nil
	}
	want, err := lang.RefEval(w.Program, w.Fn, w.Args)
	if err != nil {
		return nil, err
	}
	refAnswers.Store(key, want)
	return want, nil
}
