package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/machine"
)

// TimeUnit names the unit a backend measures makespan in: the simulator
// counts virtual ticks, the live goroutine network counts wall microseconds.
type TimeUnit string

// The two units backends report in.
const (
	Ticks      TimeUnit = "vticks"
	WallMicros TimeUnit = "µs"
)

// Report is the backend-neutral outcome of a run: what every substrate can
// measure about an applicative evaluation under faults. Substrate-specific
// detail hangs off Sim (the simulator's full report) and Live (per-node
// counters); callers that only need the paper-level quantities — did it
// finish, with what answer, at what cost — never touch either.
type Report struct {
	// Backend names the substrate that produced the report ("sim", "live").
	Backend string
	// Answer is the program's result; nil when the run did not complete.
	Answer expr.Value
	// Completed is true when the answer reached the super-root.
	Completed bool
	// Err holds an evaluation or verification error, if one occurred.
	Err error
	// Makespan is the completion time in Unit (or the time at the deadline
	// for incomplete runs).
	Makespan int64
	// Unit is the makespan's unit: Ticks (sim) or WallMicros (live).
	Unit TimeUnit
	// Messages counts every message the interconnect carried.
	Messages int64
	// Spawned counts task packets created, including reissues and twins.
	Spawned int64
	// Reissued counts checkpointed packets re-sent after a failure.
	Reissued int64
	// Drained counts results discarded harmlessly: duplicates, late arrivals,
	// and (live) messages black-holed at dead nodes — §3.4's "returns from
	// orphan tasks are theoretically harmless".
	Drained int64
	// Recoveries counts recovery events: reissues plus splice twins.
	Recoveries int64
	// Procs is the processor (or node) count.
	Procs int
	// Scheme and Placement echo the configuration for reports.
	Scheme, Placement string
	// ReissuesByNode is the per-node reissue count (live backend; nil on sim,
	// where reissues are attributed in Sim.Metrics instead).
	ReissuesByNode []int64
	// Sim is the simulator's full report (metrics, trace, state samples);
	// nil when another backend produced this report.
	Sim *machine.Report
}

// Backend is one execution substrate for the applicative machine: the
// discrete-event simulator, the live goroutine network, or anything else
// that can evaluate a workload under a config and a fault plan. The paper's
// claim — functional checkpointing plus rollback/splice needs nothing from a
// particular substrate — is exactly this interface.
type Backend interface {
	// Name is the registry key ("sim", "live").
	Name() string
	// Run evaluates the workload under the fault plan and reports.
	Run(cfg Config, w Workload, plan *faults.Plan) (*Report, error)
}

var (
	backendMu    sync.RWMutex
	backendOrder []string
	backendByNm  = map[string]Backend{}
)

// RegisterBackend adds a backend to the registry. Duplicate or empty names
// are errors. Backends register themselves in package init (the simulator
// here, the live network in internal/livenet), so importing a backend's
// package is what makes it selectable.
func RegisterBackend(b Backend) error {
	name := b.Name()
	if name == "" {
		return fmt.Errorf("core: backend name required")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backendByNm[name]; dup {
		return fmt.Errorf("core: duplicate backend %q", name)
	}
	backendByNm[name] = b
	backendOrder = append(backendOrder, name)
	return nil
}

// MustRegisterBackend is RegisterBackend for init-time wiring.
func MustRegisterBackend(b Backend) {
	if err := RegisterBackend(b); err != nil {
		panic(err)
	}
}

// ByName resolves a registered backend.
func ByName(name string) (Backend, error) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	if b, ok := backendByNm[name]; ok {
		return b, nil
	}
	known := append([]string(nil), backendOrder...)
	sort.Strings(known)
	return nil, fmt.Errorf("core: unknown backend %q (known: %v)", name, known)
}

// Backends lists the registered backend names in registration order ("sim"
// first; "live" follows once internal/livenet is linked in).
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return append([]string(nil), backendOrder...)
}

// simBackend runs the discrete-event simulator (internal/machine).
type simBackend struct{}

func init() { MustRegisterBackend(simBackend{}) }

// Name implements Backend.
func (simBackend) Name() string { return "sim" }

// Run implements Backend: build the simulated machine and wrap its report in
// the backend-neutral form.
func (simBackend) Run(cfg Config, w Workload, plan *faults.Plan) (*Report, error) {
	m, err := cfg.Build(w.Program)
	if err != nil {
		return nil, err
	}
	rep, err := m.Run(w.Fn, w.Args, plan)
	if err != nil {
		return nil, err
	}
	n := rep.NeutralCounts()
	return &Report{
		Backend:    "sim",
		Answer:     rep.Answer,
		Completed:  rep.Completed,
		Err:        rep.Err,
		Makespan:   int64(rep.Makespan),
		Unit:       Ticks,
		Messages:   n.Messages,
		Spawned:    n.Spawned,
		Reissued:   n.Reissued,
		Drained:    n.Drained,
		Recoveries: n.Recoveries,
		Procs:      rep.Procs,
		Scheme:     rep.Scheme,
		Placement:  rep.Placement,
		Sim:        rep,
	}, nil
}

// VerifyOn runs the workload on the named backend and checks the answer
// against the sequential reference evaluator — the determinacy guarantee of
// §2.1, now assertable on every substrate.
func VerifyOn(backend string, cfg Config, w Workload, plan *faults.Plan) (*Report, error) {
	b, err := ByName(backend)
	if err != nil {
		return nil, err
	}
	rep, err := b.Run(cfg, w, plan)
	if err != nil {
		return nil, err
	}
	return rep, verifyReport(rep, w)
}

// verifyReport checks a backend-neutral report against the reference
// evaluator; nil means the run completed with the reference answer.
func verifyReport(rep *Report, w Workload) error {
	if rep.Err != nil {
		return rep.Err
	}
	if !rep.Completed {
		return fmt.Errorf("core: run did not complete (makespan %d %s)", rep.Makespan, rep.Unit)
	}
	want, err := lang.RefEval(w.Program, w.Fn, w.Args)
	if err != nil {
		return err
	}
	if !rep.Answer.Equal(want) {
		return fmt.Errorf("core: answer %v != reference %v", rep.Answer, want)
	}
	return nil
}
