// Package core is the public façade of the library: one Config describing a
// machine, a workload, a recovery scheme and a fault plan; one Run call; one
// Report back. It wires together the substrates (topology, placement,
// detection, checkpointing) with the paper's recovery schemes so that
// examples, the CLI, and the benchmark harness all drive the system the
// same way.
package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/balance"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/proto"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported handles so callers need only import core for common setups.
type (
	// FaultPlan schedules processor faults.
	FaultPlan = faults.Plan
	// Fault is one scheduled fault.
	Fault = faults.Fault
	// Program is a validated applicative program.
	Program = lang.Program
	// Value is an applicative value.
	Value = expr.Value
)

// Fault kinds, re-exported.
const (
	CrashAnnounced = faults.CrashAnnounced
	CrashSilent    = faults.CrashSilent
	Corrupt        = faults.Corrupt
)

// Config describes a complete experiment setup in plain values; Build turns
// it into a runnable machine.
type Config struct {
	// Procs is the number of processors (default 8).
	Procs int
	// Topology is any topology.ByName kind: "mesh", "torus", "ring",
	// "hypercube", "tree", "regular", "complete" or "star"
	// (default "mesh").
	Topology string
	// Placement is "random", "gradient", "static" or "local"
	// (default "random").
	Placement string
	// Recovery is any recovery.Names() scheme: "incremental", "none",
	// "rollback", "rollback-lazy", "rollback-nosuppress" or "splice"
	// (default "none").
	Recovery string
	// RecoveryBudget and RecoveryPeriod pace the "incremental" scheme: at
	// most Budget checkpoint reissues per drain tick, drains Period virtual
	// ticks apart (0 = the scheme defaults, 1 and 8). Build rejects negative
	// values, and rejects non-zero values under any other scheme rather than
	// silently ignoring them.
	RecoveryBudget int
	RecoveryPeriod int64
	// AncestorDepth is the §5.2 ancestor-pointer depth K (default 2).
	AncestorDepth int
	// Replication maps function names to §5.3 replica counts.
	Replication map[string]int
	// Seed drives all randomness (default 1).
	Seed int64
	// Shards is the simulation kernel's shard count: >1 partitions the
	// topology into connected regions that simulate in parallel under
	// conservative lockstep windows, with results byte-identical to the
	// single-shard reference. 0 uses DefaultShards; negative derives the
	// count from GOMAXPROCS.
	Shards int
	// Eval names the evaluator that runs task reduction passes: "interp"
	// (tree-walking reference) or "compiled" (bytecode VM). 0 uses
	// DefaultEval. Traces are byte-identical either way; only wall time
	// changes.
	Eval string
	// DisableCheckpoints turns functional checkpointing off entirely.
	DisableCheckpoints bool
	// Trace enables event logging when true.
	Trace bool
	// Deadline overrides the virtual-time budget (0 = default). In service
	// mode it is the per-request budget, counted from the request's
	// admission on the stream clock.
	Deadline int64
	// Raw exposes every low-level machine knob; fields set there win over
	// the convenience fields above.
	Raw *machine.Config

	// Backend names the substrate Open serves on ("" = "sim"); one-shot Run
	// always uses the simulator, exactly as before.
	Backend string
	// ArrivalEvery spaces successive service-mode request admissions this
	// many virtual ticks apart on the simulator's stream clock, so faults
	// land between and inside requests (0 = admit each batch at once). The
	// live network admits requests when Submit is called — real time needs
	// no synthetic spacing — so the field is sim-only.
	ArrivalEvery int64
	// Arrival names an open-loop arrival process for service mode —
	// "arrive:poisson:RATE", "arrive:uniform:GAP" or "arrive:burst:SIZE:GAP"
	// (workload.ParseArrival) — seeded by Seed: request i of the stream is
	// offered at the schedule's i-th offset on the simulator's stream clock,
	// overriding ArrivalEvery. Like ArrivalEvery it is sim-only and inert on
	// the live network, whose arrival discipline is real time; live load
	// drivers pace their Submit calls from the same workload.Arrival
	// schedule instead.
	Arrival string
	// MaxInFlight bounds concurrently admitted service-mode requests on
	// both backends (0 = unbounded). Offers that find every slot busy
	// follow Admission.
	MaxInFlight int
	// Admission is the full-cluster policy when MaxInFlight is reached:
	// "queue" (the default — unbounded FIFO, each completion admits the
	// head), "queue:N" (FIFO bounded at depth N — offers that find the
	// queue full are shed) or "shed" (reject outright). Shed tickets'
	// Wait returns ErrShed. Queued requests report their time in queue
	// separately from service latency (ServiceReport's queue-wait row).
	Admission string
}

// admissionPolicy validates Config.Admission and maps it to the machine's
// policy plus the FIFO depth bound (0 = unbounded); both backends share it
// so their vocabularies can never drift.
func (c Config) admissionPolicy() (machine.AdmissionPolicy, int, error) {
	switch c.Admission {
	case "", "queue":
		return machine.AdmitQueue, 0, nil
	case "shed":
		return machine.AdmitShed, 0, nil
	}
	var n int
	if cnt, err := fmt.Sscanf(c.Admission, "queue:%d", &n); cnt == 1 && err == nil &&
		fmt.Sprintf("queue:%d", n) == c.Admission && n > 0 {
		return machine.AdmitQueue, n, nil
	}
	return 0, 0, fmt.Errorf("core: unknown admission policy %q (queue, queue:N, shed)", c.Admission)
}

// arrival validates Config.Arrival, returning nil when no open-loop
// process is configured.
func (c Config) arrival() (*workload.Arrival, error) {
	if c.Arrival == "" {
		return nil, nil
	}
	a, err := workload.ParseArrival(c.Arrival)
	if err != nil {
		return nil, err
	}
	return &a, nil
}

// DefaultShards is the process-wide shard count used when Config.Shards is
// zero. It defaults to 1 (the single-shard reference kernel); tools like
// cmd/experiments set it once at startup so every cell they fan out inherits
// the same sharding without threading a knob through each call site. Because
// results are byte-identical at every shard count, changing it never changes
// any report — only wall-clock time.
var DefaultShards = 1

// DefaultEval is the process-wide evaluator name used when Config.Eval is
// empty, mirroring DefaultShards: tools set it once at startup and every
// cell inherits it. Because both evaluators produce byte-identical traces,
// changing it never changes any report — only wall-clock time.
var DefaultEval = lang.DefaultEvaluator

// Workload names a program and its invocation.
type Workload struct {
	Program *lang.Program
	Fn      string
	Args    []expr.Value
	// Spec is the StandardWorkload spec the workload was built from, when it
	// was ("" for hand-built workloads). Reports use it as a label, and the
	// sim service stream uses it in the canonical admission order, which is
	// what makes concurrent Submit calls deterministic (see Cluster).
	Spec string
}

// StandardWorkload builds one of the bundled programs by name:
//
//	fib:N  tak:X,Y,Z  nqueens:N  sumrange:N  msort:N  tree:FANOUT,DEPTH  binom:N,K
//
// or a synthetic internal/workload shape compiled to a program:
//
//	shape:uniform:FANOUT,DEPTH,LEAFCOST
//	shape:skew:WIDTH,DEPTH,LEAFCOST
//	shape:random:SEED,MAXFANOUT,DEPTH,MAXLEAFCOST
func StandardWorkload(spec string) (Workload, error) {
	w, err := standardWorkload(spec)
	if err != nil {
		return w, err
	}
	w.Spec = spec
	return w, nil
}

func standardWorkload(spec string) (Workload, error) {
	if strings.HasPrefix(spec, "shape:") {
		return shapeWorkload(spec)
	}
	if workload.IsArrivalSpec(spec) {
		// A common mix-up: arrival specs shape *when* requests arrive, not
		// what they compute.
		return Workload{}, fmt.Errorf("core: %q is an arrival spec, not a workload — set Config.Arrival (CLI: -arrive)", spec)
	}
	var a, b, c int64
	n, err := fmt.Sscanf(spec, "fib:%d", &a)
	if n == 1 && err == nil {
		return Workload{Program: lang.Fib(), Fn: "fib", Args: []expr.Value{expr.VInt(a)}}, nil
	}
	if n, err = fmt.Sscanf(spec, "tak:%d,%d,%d", &a, &b, &c); n == 3 && err == nil {
		return Workload{Program: lang.Tak(), Fn: "tak", Args: []expr.Value{expr.VInt(a), expr.VInt(b), expr.VInt(c)}}, nil
	}
	if n, err = fmt.Sscanf(spec, "nqueens:%d", &a); n == 1 && err == nil {
		return Workload{Program: lang.NQueens(), Fn: "nqueens", Args: []expr.Value{expr.VInt(a)}}, nil
	}
	if n, err = fmt.Sscanf(spec, "sumrange:%d", &a); n == 1 && err == nil {
		return Workload{Program: lang.SumRange(16), Fn: "sumrange", Args: []expr.Value{expr.VInt(0), expr.VInt(a)}}, nil
	}
	if n, err = fmt.Sscanf(spec, "msort:%d", &a); n == 1 && err == nil {
		xs := make([]int64, a)
		for i := range xs {
			xs[i] = (int64(i)*7919 + 13) % 1000
		}
		return Workload{Program: lang.MergeSort(), Fn: "msort", Args: []expr.Value{expr.IntList(xs...)}}, nil
	}
	if n, err = fmt.Sscanf(spec, "tree:%d,%d", &a, &b); n == 2 && err == nil {
		return Workload{Program: lang.TreeSum(int(a)), Fn: "tree", Args: []expr.Value{expr.VInt(b)}}, nil
	}
	if n, err = fmt.Sscanf(spec, "binom:%d,%d", &a, &b); n == 2 && err == nil {
		return Workload{Program: lang.Binomial(), Fn: "binom", Args: []expr.Value{expr.VInt(a), expr.VInt(b)}}, nil
	}
	return Workload{}, fmt.Errorf("core: unknown workload spec %q", spec)
}

// shapeWorkload compiles a "shape:KIND:ARGS" spec through internal/workload,
// making the synthetic call-tree shapes addressable by every artifact and
// backend the same way the bundled programs are.
func shapeWorkload(spec string) (Workload, error) {
	var s workload.Shape
	var a, b, c, d int64
	switch {
	case scan(spec, "shape:uniform:%d,%d,%d", &a, &b, &c):
		s = workload.Uniform(int(a), int(b), int(c))
	case scan(spec, "shape:skew:%d,%d,%d", &a, &b, &c):
		s = workload.Skewed(int(a), int(b), int(c))
	case scan(spec, "shape:random:%d,%d,%d,%d", &a, &b, &c, &d):
		s = workload.Random(a, int(b), int(c), int(d))
	default:
		return Workload{}, fmt.Errorf("core: unknown shape spec %q", spec)
	}
	prog, root, err := workload.Build(s)
	if err != nil {
		return Workload{}, fmt.Errorf("core: %s: %w", spec, err)
	}
	return Workload{Program: prog, Fn: root}, nil
}

// scan is Sscanf with full-match semantics for workload specs: Sscanf alone
// ignores trailing input ("shape:uniform:3,4,5,99" would parse as the 3-arg
// form), so the parsed values are re-rendered through the format and must
// reproduce the spec exactly.
func scan(spec, format string, args ...any) bool {
	n, err := fmt.Sscanf(spec, format, args...)
	if err != nil || n != len(args) {
		return false
	}
	vals := make([]any, len(args))
	for i, a := range args {
		vals[i] = *a.(*int64)
	}
	return fmt.Sprintf(format, vals...) == spec
}

// Build materializes the machine for the config.
func (c Config) Build(prog *lang.Program) (*machine.Machine, error) {
	if prog == nil {
		return nil, errors.New("core: program required")
	}
	mc := machine.Config{}
	if c.Raw != nil {
		mc = *c.Raw
	}
	if mc.Topo == nil {
		procs := c.Procs
		if procs == 0 {
			procs = 8
		}
		kind := c.Topology
		if kind == "" {
			kind = "mesh"
		}
		topo, err := topology.ByName(kind, procs)
		if err != nil {
			return nil, err
		}
		mc.Topo = topo
	}
	if mc.Placement == nil {
		name := c.Placement
		if name == "" {
			name = "random"
		}
		pol, err := balance.ByName(name)
		if err != nil {
			return nil, err
		}
		mc.Placement = pol
	}
	if c.RecoveryBudget < 0 || c.RecoveryPeriod < 0 {
		return nil, fmt.Errorf("core: recovery budget/period must be > 0 (got %d/%d)",
			c.RecoveryBudget, c.RecoveryPeriod)
	}
	if mc.Scheme == nil {
		name := c.Recovery
		if name == "" {
			name = "none"
		}
		if c.RecoveryBudget != 0 || c.RecoveryPeriod != 0 {
			if name != "incremental" {
				return nil, fmt.Errorf("core: recovery budget/period only apply to the incremental scheme, not %q", name)
			}
			mc.Scheme = &recovery.IncrementalScheme{Budget: c.RecoveryBudget, Period: c.RecoveryPeriod}
		} else {
			sch, err := recovery.ByName(name)
			if err != nil {
				return nil, err
			}
			mc.Scheme = sch
		}
	}
	if mc.AncestorDepth == 0 {
		mc.AncestorDepth = c.AncestorDepth
	}
	if mc.Replication == nil {
		mc.Replication = c.Replication
	}
	if mc.Seed == 0 {
		mc.Seed = c.Seed
		if mc.Seed == 0 {
			mc.Seed = 1
		}
	}
	if c.DisableCheckpoints {
		mc.DisableCheckpoints = true
	}
	if mc.Eval == "" {
		mc.Eval = c.Eval
		if mc.Eval == "" {
			mc.Eval = DefaultEval
		}
	}
	if mc.Shards == 0 {
		mc.Shards = c.Shards
		if mc.Shards == 0 {
			mc.Shards = DefaultShards
		}
	}
	if mc.Trace == nil && c.Trace {
		mc.Trace = trace.NewLog(0)
	}
	if mc.Deadline == 0 && c.Deadline > 0 {
		mc.Deadline = sim.Time(c.Deadline)
	}
	return machine.New(mc, prog)
}

// Run evaluates the workload under the fault plan on the simulator backend
// and returns the backend-neutral report (simulator detail on Report.Sim).
// To run on another substrate, resolve it with ByName and call its Run, or
// use RunOn.
func (c Config) Run(w Workload, plan *faults.Plan) (*Report, error) {
	return simBackend{}.Run(c, w, plan)
}

// RunOn evaluates the workload on the named backend.
func (c Config) RunOn(backend string, w Workload, plan *faults.Plan) (*Report, error) {
	b, err := ByName(backend)
	if err != nil {
		return nil, err
	}
	return b.Run(c, w, plan)
}

// RunSpec is the one-line entry point: workload spec + config + plan.
func RunSpec(spec string, c Config, plan *faults.Plan) (*Report, error) {
	w, err := StandardWorkload(spec)
	if err != nil {
		return nil, err
	}
	return c.Run(w, plan)
}

// Verify runs the workload and checks the answer against the sequential
// reference evaluator, returning the report and a nil error only when the
// distributed run agreed with the reference (the determinacy guarantee of
// §2.1).
func (c Config) Verify(w Workload, plan *faults.Plan) (*Report, error) {
	rep, err := c.Run(w, plan)
	if err != nil {
		return nil, err
	}
	return rep, verifyReport(rep, w)
}

// CrashPlan is a convenience for single-crash plans.
func CrashPlan(proc int, at int64, announced bool) *faults.Plan {
	return faults.Crash(proto.ProcID(proc), at, announced)
}
