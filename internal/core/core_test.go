package core

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/machine"
)

func TestStandardWorkloads(t *testing.T) {
	cases := []struct {
		spec string
		fn   string
	}{
		{"fib:10", "fib"},
		{"tak:6,3,1", "tak"},
		{"nqueens:4", "nqueens"},
		{"sumrange:64", "sumrange"},
		{"msort:8", "msort"},
		{"tree:2,4", "tree"},
		{"binom:8,3", "binom"},
	}
	for _, tc := range cases {
		w, err := StandardWorkload(tc.spec)
		if err != nil {
			t.Errorf("%s: %v", tc.spec, err)
			continue
		}
		if w.Fn != tc.fn {
			t.Errorf("%s: fn = %q", tc.spec, w.Fn)
		}
		if w.Program == nil {
			t.Errorf("%s: nil program", tc.spec)
		}
	}
	if _, err := StandardWorkload("nosuch:1"); err == nil {
		t.Error("unknown spec accepted")
	}
	if _, err := StandardWorkload("fib:x"); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestDefaultsRunFaultFree(t *testing.T) {
	w, err := StandardWorkload("fib:10")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Config{}.Verify(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs != 8 || rep.Scheme != "none" || rep.Placement != "random" {
		t.Fatalf("defaults wrong: procs=%d scheme=%s placement=%s", rep.Procs, rep.Scheme, rep.Placement)
	}
}

func TestConfigVariants(t *testing.T) {
	w, err := StandardWorkload("tree:3,3")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Procs: 4, Topology: "ring", Placement: "gradient", Recovery: "rollback"},
		{Procs: 16, Topology: "hypercube", Placement: "static", Recovery: "splice"},
		{Procs: 6, Topology: "star", Placement: "local", Recovery: "rollback-lazy"},
	} {
		if _, err := cfg.Verify(w, nil); err != nil {
			t.Errorf("%+v: %v", cfg, err)
		}
	}
}

func TestConfigErrors(t *testing.T) {
	w, _ := StandardWorkload("fib:5")
	if _, err := (Config{Topology: "nosuch"}).Run(w, nil); err == nil {
		t.Error("bad topology accepted")
	}
	if _, err := (Config{Placement: "nosuch"}).Run(w, nil); err == nil {
		t.Error("bad placement accepted")
	}
	if _, err := (Config{Recovery: "nosuch"}).Run(w, nil); err == nil {
		t.Error("bad recovery accepted")
	}
	if _, err := (Config{}).Build(nil); err == nil {
		t.Error("nil program accepted")
	}
}

func TestVerifyDetectsFailure(t *testing.T) {
	w, _ := StandardWorkload("fib:10")
	// A crash with no recovery: Verify must report non-completion.
	cfg := Config{Recovery: "none", Deadline: 50_000, Seed: 2}
	_, err := cfg.Verify(w, CrashPlan(1, 400, true))
	if err == nil || !strings.Contains(err.Error(), "did not complete") {
		t.Fatalf("Verify error = %v, want non-completion", err)
	}
}

func TestVerifyWithRecovery(t *testing.T) {
	w, _ := StandardWorkload("fib:11")
	for _, scheme := range []string{"rollback", "splice"} {
		cfg := Config{Recovery: scheme, Seed: 4, Trace: true}
		rep, err := cfg.Verify(w, CrashPlan(2, 700, false))
		if err != nil {
			t.Errorf("%s: %v", scheme, err)
			continue
		}
		if rep.Sim.Log == nil {
			t.Errorf("%s: trace requested but nil", scheme)
		}
	}
}

func TestRunSpec(t *testing.T) {
	rep, err := RunSpec("fib:8", Config{Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || !rep.Answer.Equal(expr.VInt(21)) {
		t.Fatalf("answer = %v", rep.Answer)
	}
	if _, err := RunSpec("bogus", Config{}, nil); err == nil {
		t.Error("bogus spec accepted")
	}
}

func TestRawOverrides(t *testing.T) {
	w, _ := StandardWorkload("fib:8")
	cfg := Config{Raw: &machine.Config{StateProbeEvery: 25}}
	rep, err := cfg.Verify(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sim.StateSamples) == 0 {
		t.Fatal("raw override did not take effect")
	}
}
