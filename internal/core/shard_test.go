package core

import (
	"sync"
	"testing"
)

// shardStreamRender opens a sim cluster with the given shard count on a
// 32-processor torus, submits the determinism specs (from eight goroutines
// when parallel), injects a mid-stream crash, and returns the rendered
// service report.
func shardStreamRender(t *testing.T, shards int, parallel bool) string {
	t.Helper()
	cl, err := Open(Config{Procs: 32, Topology: "torus", Seed: 11,
		Recovery: "rollback", ArrivalEvery: 120, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if parallel {
		var wg sync.WaitGroup
		for _, spec := range determinismSpecs {
			wg.Add(1)
			go func(spec string) {
				defer wg.Done()
				if _, err := cl.SubmitSpec(spec); err != nil {
					t.Error(err)
				}
			}(spec)
		}
		wg.Wait()
	} else {
		for _, spec := range determinismSpecs {
			if _, err := cl.SubmitSpec(spec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.Inject(CrashPlan(3, 900, true)); err != nil {
		t.Fatal(err)
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != len(determinismSpecs) {
		t.Fatalf("shards=%d stream incomplete:\n%s", shards, sr.Render())
	}
	return sr.Render()
}

// TestShardedClusterDeterminism is the cross-shard stress cell: a 4-shard
// torus stream with requests raced in from eight goroutines must render the
// byte-identical service report of the single-shard sequential stream. Under
// `go test -race` this doubles as the data-race probe for the sharded
// kernel's window barriers, per-pair event queues, and pooled message
// recycling, with concurrent Submit hammering the admission path while shard
// workers run.
func TestShardedClusterDeterminism(t *testing.T) {
	ref := shardStreamRender(t, 1, false)
	for run := 0; run < 3; run++ {
		if got := shardStreamRender(t, 4, true); got != ref {
			t.Fatalf("4-shard parallel stream diverged (run %d):\n--- 1 shard ---\n%s--- 4 shards ---\n%s",
				run, ref, got)
		}
	}
}
