package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Cluster is a long-lived service stream on one substrate: Open brings the
// backend's network up and keeps it alive across requests, Submit enqueues a
// workload and returns a future, Inject schedules faults against the
// stream's clock so crashes land mid-traffic (between and inside requests),
// and Drain/Close finish the stream. One-shot Run is the degenerate case:
// Open → Submit → Close with a single request.
type Cluster struct {
	backend string
	sess    Session
	unit    TimeUnit

	mu       sync.Mutex
	tickets  []*Ticket
	stamps   []int64
	closed   bool
	closeRep *ServiceReport
	closeErr error
}

// Open starts a service stream on cfg.Backend ("" = the simulator).
func Open(cfg Config) (*Cluster, error) {
	return OpenOn(cfg.Backend, cfg)
}

// OpenOn starts a service stream on the named backend. The backend must
// implement the SessionBackend capability; batch-only backends are rejected.
func OpenOn(backend string, cfg Config) (*Cluster, error) {
	if backend == "" {
		backend = "sim"
	}
	b, err := ByName(backend)
	if err != nil {
		return nil, err
	}
	sb, ok := b.(SessionBackend)
	if !ok {
		return nil, fmt.Errorf("core: backend %q is batch-only (no session capability)", backend)
	}
	sess, err := sb.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{backend: backend, sess: sess, unit: sess.Unit()}, nil
}

// Backend names the substrate serving the stream.
func (c *Cluster) Backend() string { return c.backend }

// Unit is the stream clock's unit.
func (c *Cluster) Unit() TimeUnit { return c.unit }

// Ticket is the future of one submitted request.
type Ticket struct {
	w    Workload
	req  SessionRequest
	err0 error

	once sync.Once
	rep  *Report
	err  error
}

// Workload returns what the ticket was submitted for.
func (t *Ticket) Workload() Workload { return t.w }

// Wait blocks until the request resolves. The report is the per-request
// view; a request that timed out its budget reports Completed false with a
// nil error. Wait is idempotent and safe from several goroutines.
func (t *Ticket) Wait() (*Report, error) {
	t.once.Do(func() {
		if t.err0 != nil {
			t.err = t.err0
			return
		}
		t.rep, t.err = t.req.Wait()
	})
	return t.rep, t.err
}

// Verify waits for the request and checks its answer against the sequential
// reference evaluator — the per-request form of VerifyOn's determinacy
// check (§2.1).
func (t *Ticket) Verify() (*Report, error) {
	rep, err := t.Wait()
	if err != nil {
		return rep, err
	}
	return rep, verifyReport(rep, t.w)
}

// Submit enqueues a request. Submission never blocks on the stream; errors
// (closed cluster, unknown entry function) surface on the ticket's Wait.
func (c *Cluster) Submit(w Workload) *Ticket {
	t := &Ticket{w: w}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		t.err0 = errors.New("core: cluster closed")
		return t
	}
	req, err := c.sess.Submit(w)
	t.req, t.err0 = req, err
	c.tickets = append(c.tickets, t)
	return t
}

// SubmitSpec is Submit for a StandardWorkload spec.
func (c *Cluster) SubmitSpec(spec string) (*Ticket, error) {
	w, err := StandardWorkload(spec)
	if err != nil {
		return nil, err
	}
	return c.Submit(w), nil
}

// Inject schedules the plan's faults on the stream clock and records their
// stream stamps for the recovery-window accounting of the final
// ServiceReport.
func (c *Cluster) Inject(plan *FaultPlan) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("core: cluster closed")
	}
	stamps, err := c.sess.Inject(plan)
	c.stamps = append(c.stamps, stamps...)
	return err
}

// Drain waits for every submitted request and returns the first submission
// or stream error. Requests that merely timed out are not errors, and
// neither are shed ones — both are expected outcomes of a loaded stream
// and count in the service report's Failed and Shed columns instead.
func (c *Cluster) Drain() error {
	c.mu.Lock()
	tickets := append([]*Ticket(nil), c.tickets...)
	c.mu.Unlock()
	var firstErr error
	for _, t := range tickets {
		if _, err := t.Wait(); err != nil && !errors.Is(err, ErrShed) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close drains the stream, tears the substrate down, and returns the
// stream-level service report. Per-request failures (bad submissions,
// timeouts) are data — the report's Failed count and PerRequest rows — not
// Close errors; only a substrate-level failure errors. Idempotent.
func (c *Cluster) Close() (*ServiceReport, error) {
	c.mu.Lock()
	tickets := append([]*Ticket(nil), c.tickets...)
	c.mu.Unlock()
	for _, t := range tickets {
		_, _ = t.Wait()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.closeRep, c.closeErr
	}
	c.closed = true
	totals, err := c.sess.Close()
	if err != nil {
		c.closeErr = err
		return nil, err
	}
	c.closeRep = c.buildServiceReportLocked(totals)
	return c.closeRep, nil
}

// buildServiceReportLocked folds ticket reports, fault stamps and the
// substrate totals into the stream-level report.
func (c *Cluster) buildServiceReportLocked(totals *Report) *ServiceReport {
	sr := &ServiceReport{
		Backend:     c.backend,
		Unit:        c.unit,
		Requests:    len(c.tickets),
		Offered:     len(c.tickets),
		FaultStamps: append([]int64(nil), c.stamps...),
		Totals:      totals,
	}
	if totals != nil {
		sr.Procs = totals.Procs
		sr.Scheme = totals.Scheme
		sr.Placement = totals.Placement
		sr.Messages = totals.Messages
		sr.MsgBytes = totals.MsgBytes
		sr.Spawned = totals.Spawned
		sr.Reissued = totals.Reissued
		sr.Drained = totals.Drained
		sr.Recoveries = totals.Recoveries
		sr.QueueDepthMax = totals.QueueDepthMax
	}
	sort.Slice(sr.FaultStamps, func(i, j int) bool { return sr.FaultStamps[i] < sr.FaultStamps[j] })
	var latencies, queueWaits []int64
	var first, last int64
	for _, t := range c.tickets {
		rep, err := t.Wait()
		if err == nil && rep != nil && rep.Err == nil && !rep.Shed && rep.Request >= 0 {
			// Every admitted request spent a (possibly zero) spell in the
			// admission FIFO, whether it later completed or timed out; shed
			// and never-admitted requests have no queue spell to report.
			queueWaits = append(queueWaits, rep.QueuedFor)
		}
		if err != nil || rep == nil || rep.Err != nil || !rep.Completed {
			// Every offered request gets a row, even the ones that never
			// produced a report (submission errors): the counters below must
			// reconcile against the rows.
			if rep == nil {
				rep = &Report{Backend: c.backend, Unit: c.unit, Request: -1, Err: err}
			}
			sr.PerRequest = append(sr.PerRequest, rep)
			if errors.Is(err, ErrShed) || rep.Shed {
				sr.Shed++
			} else {
				sr.Failed++
			}
			continue
		}
		sr.PerRequest = append(sr.PerRequest, rep)
		sr.Completed++
		latencies = append(latencies, rep.Makespan)
		if sr.Completed == 1 || rep.ArrivedAt < first {
			first = rep.ArrivedAt
		}
		if rep.DoneAt > last {
			last = rep.DoneAt
		}
		during := false
		for _, s := range sr.FaultStamps {
			if s >= rep.ArrivedAt && s <= rep.DoneAt {
				during = true
				break
			}
		}
		if during {
			sr.DuringRecovery++
		} else {
			sr.OutsideRecovery++
		}
	}
	sr.Admitted = sr.Offered - sr.Shed
	sort.Slice(sr.PerRequest, func(i, j int) bool {
		a, b := sr.PerRequest[i], sr.PerRequest[j]
		if a.Request != b.Request {
			return a.Request < b.Request
		}
		return a.ArrivedAt < b.ArrivedAt
	})
	if sr.Completed > 0 {
		sr.Span = last - first
		if sr.Span > 0 {
			sr.Throughput = float64(sr.Completed) * 1e6 / float64(sr.Span)
		}
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum int64
		for _, l := range latencies {
			sum += l
		}
		sr.LatencyMean = sum / int64(len(latencies))
		sr.LatencyP50 = percentile(latencies, 50)
		sr.LatencyP99 = percentile(latencies, 99)
	}
	if len(queueWaits) > 0 {
		sort.Slice(queueWaits, func(i, j int) bool { return queueWaits[i] < queueWaits[j] })
		var sum int64
		for _, q := range queueWaits {
			sum += q
		}
		sr.QueueWaitMean = sum / int64(len(queueWaits))
		sr.QueueWaitP50 = percentile(queueWaits, 50)
		sr.QueueWaitP99 = percentile(queueWaits, 99)
	}
	return sr
}

// percentile is the nearest-rank percentile of a sorted slice.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p*n/100)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// ServiceReport is the stream-level outcome of a service-mode cluster: what
// a substrate serving traffic under faults can be judged by. Latencies and
// the span are in Unit; Throughput is requests per 1e6 units of stream time
// — exactly requests/second on the live backend (µs) and requests per
// megatick on the simulator.
type ServiceReport struct {
	// Backend, Unit, Procs, Scheme, Placement echo the configuration.
	Backend           string
	Unit              TimeUnit
	Procs             int
	Scheme, Placement string

	// Requests counts submissions; Completed the requests that finished with
	// an answer inside their budget; Failed the admitted rest (submission
	// errors, evaluation errors, timeouts).
	Requests, Completed, Failed int

	// Admission accounting. Offered equals Requests (every submission is an
	// offer); Shed counts offers bounded admission rejected; Admitted is
	// Offered − Shed. The ledger always reconciles:
	//
	//	Offered  = Admitted + Shed
	//	Admitted = Completed + Failed
	//
	// QueueDepthMax is the admission queue's high-water mark ("queue"
	// policy; 0 with "shed" or unbounded admission).
	Offered, Admitted, Shed, QueueDepthMax int

	// Span is the stream time from the first completed request's admission
	// to the last completion; Throughput is Completed per 1e6 units of Span.
	Span       int64
	Throughput float64

	// Latency aggregates over completed requests (service latency =
	// completion − admission), nearest-rank percentiles.
	LatencyMean, LatencyP50, LatencyP99 int64

	// Queue-wait aggregates over admitted requests: the time each spent in
	// the admission FIFO before it got a slot (0 for directly admitted
	// requests). Measured separately from service latency, whose clock
	// starts at the install.
	QueueWaitMean, QueueWaitP50, QueueWaitP99 int64

	// DuringRecovery counts completed requests whose service interval
	// contained at least one injected fault — they were answered while the
	// system was crashing and recovering around them; OutsideRecovery is the
	// rest. FaultStamps are the injected stream stamps, sorted.
	DuringRecovery, OutsideRecovery int
	FaultStamps                     []int64

	// Stream-total counters from the substrate. MsgBytes is the encoded
	// payload bytes of Messages in proto codec wire sizes — the one byte
	// figure comparable across sim, live and net.
	Messages, MsgBytes, Spawned, Reissued, Drained, Recoveries int64

	// PerRequest holds the per-request reports in stream order; Totals is
	// the substrate's aggregate report (Sim detail on the simulator).
	PerRequest []*Report
	Totals     *Report
}

// ThroughputLabel names the throughput unit for the report's clock.
func (sr *ServiceReport) ThroughputLabel() string {
	if sr.Unit == WallMicros {
		return "req/s"
	}
	return "req/Mtick"
}

// Render is the deterministic textual form of the report: the header, the
// stream aggregates, and one line per offered request — completed, timed
// out, shed, and errored requests all get a row, so the admission ledger
// printed above them can be checked against the rows by eye. Tests compare
// these bytes to assert the sequential and concurrent submission schedules
// are identical.
func (sr *ServiceReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "service stream on %s: %d procs, %s/%s\n",
		sr.Backend, sr.Procs, sr.Scheme, sr.Placement)
	fmt.Fprintf(&b, "requests   : %d submitted, %d completed, %d failed\n",
		sr.Requests, sr.Completed, sr.Failed)
	fmt.Fprintf(&b, "admission  : %d offered = %d admitted + %d shed (queue depth max %d)\n",
		sr.Offered, sr.Admitted, sr.Shed, sr.QueueDepthMax)
	fmt.Fprintf(&b, "stream     : span %d %s, throughput %.3f %s\n",
		sr.Span, sr.Unit, sr.Throughput, sr.ThroughputLabel())
	fmt.Fprintf(&b, "latency    : mean %d, p50 %d, p99 %d (%s)\n",
		sr.LatencyMean, sr.LatencyP50, sr.LatencyP99, sr.Unit)
	fmt.Fprintf(&b, "queue wait : mean %d, p50 %d, p99 %d (%s)\n",
		sr.QueueWaitMean, sr.QueueWaitP50, sr.QueueWaitP99, sr.Unit)
	fmt.Fprintf(&b, "recovery   : %d completed during recovery, %d outside (fault stamps %v)\n",
		sr.DuringRecovery, sr.OutsideRecovery, sr.FaultStamps)
	fmt.Fprintf(&b, "counters   : %d messages (%d bytes), %d spawned, %d reissued, %d drained, %d recoveries\n",
		sr.Messages, sr.MsgBytes, sr.Spawned, sr.Reissued, sr.Drained, sr.Recoveries)
	for _, rep := range sr.PerRequest {
		status := "ok " + fmt.Sprint(rep.Answer)
		switch {
		case rep.Shed:
			status = "shed"
		case rep.Err != nil:
			status = "error: " + rep.Err.Error()
		case !rep.Completed:
			status = "timeout"
		}
		fmt.Fprintf(&b, "  req %-3d arrived %-8d done %-8d latency %-8d %s\n",
			rep.Request, rep.ArrivedAt, rep.DoneAt, rep.Makespan, status)
	}
	return b.String()
}
