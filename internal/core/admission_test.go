package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestAdmissionQueuePolicy: a MaxInFlight-1 stream with the "queue" policy
// serializes a same-tick batch — every request completes, admissions are
// strictly ordered, and the queue's high-water mark is visible on the
// report.
func TestAdmissionQueuePolicy(t *testing.T) {
	cl, err := Open(Config{Procs: 8, Seed: 3, Recovery: "rollback",
		MaxInFlight: 1, Admission: "queue"})
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{"fib:9", "fib:10", "fib:11"}
	for _, spec := range specs {
		if _, err := cl.SubmitSpec(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != len(specs) || sr.Failed != 0 || sr.Shed != 0 {
		t.Fatalf("completed/failed/shed = %d/%d/%d\n%s",
			sr.Completed, sr.Failed, sr.Shed, sr.Render())
	}
	if sr.Offered != 3 || sr.Admitted != 3 {
		t.Fatalf("offered/admitted = %d/%d", sr.Offered, sr.Admitted)
	}
	if sr.QueueDepthMax != 2 {
		t.Fatalf("queue depth max = %d, want 2 (two held behind one slot)", sr.QueueDepthMax)
	}
	// One slot means strictly serial service: each admission at or after the
	// previous completion.
	reqs := sr.PerRequest
	for i := 1; i < len(reqs); i++ {
		if reqs[i].ArrivedAt < reqs[i-1].DoneAt {
			t.Fatalf("request %d admitted at %d before predecessor finished at %d\n%s",
				i, reqs[i].ArrivedAt, reqs[i-1].DoneAt, sr.Render())
		}
	}
}

// TestAdmissionShedPolicy: with one slot and the "shed" policy, a same-tick
// batch of three admits exactly one; the other two resolve immediately with
// the typed ErrShed, carry the Shed marker, and the ledger reconciles.
func TestAdmissionShedPolicy(t *testing.T) {
	cl, err := Open(Config{Procs: 8, Seed: 3, Recovery: "rollback",
		MaxInFlight: 1, Admission: "shed"})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for _, spec := range []string{"fib:9", "fib:10", "fib:11"} {
		tk, err := cl.SubmitSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	shed := 0
	for _, tk := range tickets {
		rep, err := tk.Wait()
		if errors.Is(err, ErrShed) {
			shed++
			if rep == nil || !rep.Shed || rep.Completed {
				t.Fatalf("shed report = %+v", rep)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if shed != 2 {
		t.Fatalf("shed tickets = %d, want 2", shed)
	}
	// Shedding is data, not a Drain error.
	if err := cl.Drain(); err != nil {
		t.Fatalf("Drain surfaced shed: %v", err)
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Offered != 3 || sr.Admitted != 1 || sr.Shed != 2 || sr.Completed != 1 || sr.Failed != 0 {
		t.Fatalf("ledger offered/admitted/shed/completed/failed = %d/%d/%d/%d/%d\n%s",
			sr.Offered, sr.Admitted, sr.Shed, sr.Completed, sr.Failed, sr.Render())
	}
	if sr.QueueDepthMax != 0 {
		t.Fatalf("queue depth max = %d under shed policy", sr.QueueDepthMax)
	}
	if got := strings.Count(sr.Render(), " shed"); got < 2 {
		t.Fatalf("Render shows %d shed markers, want >= 2:\n%s", got, sr.Render())
	}
}

// TestServiceReportReconciles is the Render regression test: every offered
// request — completed, shed, or failed before a report existed (submission
// error) — gets a PerRequest row, and the printed ledger always reconciles
// (Offered = Admitted + Shed, Admitted = Completed + Failed).
func TestServiceReportReconciles(t *testing.T) {
	cl, err := Open(Config{Procs: 8, Seed: 5, Recovery: "rollback",
		MaxInFlight: 1, Admission: "shed"})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"fib:9", "fib:10", "fib:11"} {
		if _, err := cl.SubmitSpec(spec); err != nil {
			t.Fatal(err)
		}
	}
	w, err := StandardWorkload("fib:9")
	if err != nil {
		t.Fatal(err)
	}
	// A submission error: resolves on the ticket with no report at all — the
	// case Render used to drop silently.
	bad := cl.Submit(Workload{Program: w.Program, Fn: "nosuch"})
	if _, err := bad.Wait(); err == nil {
		t.Fatal("bad submission succeeded")
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Offered != sr.Admitted+sr.Shed {
		t.Fatalf("offered %d != admitted %d + shed %d", sr.Offered, sr.Admitted, sr.Shed)
	}
	if sr.Admitted != sr.Completed+sr.Failed {
		t.Fatalf("admitted %d != completed %d + failed %d", sr.Admitted, sr.Completed, sr.Failed)
	}
	if sr.Offered != 4 || sr.Shed != 2 || sr.Failed != 1 || sr.Completed != 1 {
		t.Fatalf("ledger = offered %d shed %d failed %d completed %d\n%s",
			sr.Offered, sr.Shed, sr.Failed, sr.Completed, sr.Render())
	}
	if len(sr.PerRequest) != sr.Offered {
		t.Fatalf("%d rows for %d offered requests", len(sr.PerRequest), sr.Offered)
	}
	render := sr.Render()
	if got := strings.Count(render, "  req "); got != sr.Offered {
		t.Fatalf("Render has %d request rows, want %d:\n%s", got, sr.Offered, render)
	}
	if !strings.Contains(render, "admission  : 4 offered = 2 admitted + 2 shed") {
		t.Fatalf("Render ledger line missing:\n%s", render)
	}
	if !strings.Contains(render, "error: ") {
		t.Fatalf("Render drops the submission-error row:\n%s", render)
	}
}

// TestArrivalStreamSchedule: an explicit arrival spec places request i at
// the schedule's i-th offset on the stream clock.
func TestArrivalStreamSchedule(t *testing.T) {
	cl, err := Open(Config{Procs: 8, Seed: 3, Recovery: "rollback",
		Arrival: "arrive:uniform:100"})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"fib:8", "fib:9", "fib:10", "fib:11"} {
		if _, err := cl.SubmitSpec(spec); err != nil {
			t.Fatal(err)
		}
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != 4 {
		t.Fatalf("stream incomplete:\n%s", sr.Render())
	}
	for i, rep := range sr.PerRequest {
		if want := int64(i) * 100; rep.ArrivedAt != want {
			t.Fatalf("request %d admitted at %d, want %d\n%s", i, rep.ArrivedAt, want, sr.Render())
		}
	}
}

// TestServiceSpecValidation: malformed arrival and admission specs fail the
// Open (and the one-shot Run) on both backends, not the first request.
func TestServiceSpecValidation(t *testing.T) {
	if _, err := Open(Config{Arrival: "arrive:zipf:2"}); err == nil ||
		!strings.Contains(err.Error(), "unknown arrival kind") {
		t.Fatalf("sim Open bad arrival: %v", err)
	}
	if _, err := Open(Config{Admission: "drop"}); err == nil ||
		!strings.Contains(err.Error(), "unknown admission policy") {
		t.Fatalf("sim Open bad admission: %v", err)
	}
	w, err := StandardWorkload("fib:8")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Config{Arrival: "arrive:poisson:0"}).Run(w, nil); err == nil {
		t.Fatal("one-shot Run accepted a bad arrival spec")
	}
	// Arrival specs are not workloads; the parser points at Config.Arrival.
	if _, err := StandardWorkload("arrive:poisson:0.02"); err == nil ||
		!strings.Contains(err.Error(), "arrival spec, not a workload") {
		t.Fatalf("StandardWorkload on an arrival spec: %v", err)
	}
}

// admissionStreamRender is the S5-style admission stream for the shard
// sweep: a 32-processor torus under a seeded Poisson arrival schedule with
// bounded in-flight admission (shed policy) and a mid-stream crash. The
// rendered report pins the admit/shed decisions, stamps, and aggregates.
func admissionStreamRender(t *testing.T, shards int, parallel bool) string {
	t.Helper()
	cl, err := Open(Config{Procs: 32, Topology: "torus", Seed: 11,
		Recovery: "rollback", Arrival: "arrive:poisson:0.02",
		MaxInFlight: 3, Admission: "shed", Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if parallel {
		var wg sync.WaitGroup
		for _, spec := range determinismSpecs {
			wg.Add(1)
			go func(spec string) {
				defer wg.Done()
				if _, err := cl.SubmitSpec(spec); err != nil {
					t.Error(err)
				}
			}(spec)
		}
		wg.Wait()
	} else {
		for _, spec := range determinismSpecs {
			if _, err := cl.SubmitSpec(spec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.Inject(CrashPlan(3, 900, true)); err != nil {
		t.Fatal(err)
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed == 0 || sr.Shed == 0 {
		t.Fatalf("shards=%d stream needs both completions and sheds to pin the admission path:\n%s",
			shards, sr.Render())
	}
	if sr.Offered != sr.Admitted+sr.Shed || sr.Admitted != sr.Completed+sr.Failed {
		t.Fatalf("shards=%d ledger broken:\n%s", shards, sr.Render())
	}
	return sr.Render()
}

// TestAdmissionShardSweep: the admission stream renders byte-identically at
// every shard count — arrival schedules, shed decisions and queue
// accounting are all shard-count-invariant.
func TestAdmissionShardSweep(t *testing.T) {
	ref := admissionStreamRender(t, 1, false)
	for _, shards := range []int{2, 4, 8} {
		if got := admissionStreamRender(t, shards, false); got != ref {
			t.Fatalf("shards=%d admission stream diverged:\n--- 1 shard ---\n%s--- %d shards ---\n%s",
				shards, ref, shards, got)
		}
	}
}

// TestAdmissionBoundedQueue: "queue:N" holds at most N requests behind the
// in-flight bound and sheds past that depth. With one slot and a depth-1
// queue, a same-tick batch of three admits one, queues one, sheds one —
// and the queued request's time in the FIFO lands in QueuedFor and the
// report's queue-wait percentiles, separate from its service latency.
func TestAdmissionBoundedQueue(t *testing.T) {
	cl, err := Open(Config{Procs: 8, Seed: 3, Recovery: "rollback",
		MaxInFlight: 1, Admission: "queue:1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"fib:9", "fib:10", "fib:11"} {
		if _, err := cl.SubmitSpec(spec); err != nil {
			t.Fatal(err)
		}
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Offered != 3 || sr.Admitted != 2 || sr.Shed != 1 || sr.Completed != 2 {
		t.Fatalf("ledger offered/admitted/shed/completed = %d/%d/%d/%d\n%s",
			sr.Offered, sr.Admitted, sr.Shed, sr.Completed, sr.Render())
	}
	if sr.QueueDepthMax != 1 {
		t.Fatalf("queue depth max = %d, want 1 (the bound)\n%s", sr.QueueDepthMax, sr.Render())
	}
	var direct, queued *Report
	for _, rep := range sr.PerRequest {
		if !rep.Completed {
			continue
		}
		if rep.QueuedFor == 0 {
			direct = rep
		} else {
			queued = rep
		}
	}
	if direct == nil || queued == nil {
		t.Fatalf("want one direct and one queued completion:\n%s", sr.Render())
	}
	// The queued request waited exactly one service interval (one slot means
	// it was installed when the direct request finished), and that wait is
	// not part of its service latency: the latency clock starts at install.
	if queued.QueuedFor != direct.DoneAt-direct.ArrivedAt {
		t.Fatalf("queued wait %d != predecessor service interval %d\n%s",
			queued.QueuedFor, direct.DoneAt-direct.ArrivedAt, sr.Render())
	}
	if queued.ArrivedAt != direct.DoneAt {
		t.Fatalf("queued request installed at %d, want predecessor completion %d",
			queued.ArrivedAt, direct.DoneAt)
	}
	if sr.QueueWaitP99 != queued.QueuedFor || sr.QueueWaitP50 != 0 {
		t.Fatalf("queue-wait percentiles p50=%d p99=%d, want 0 and %d\n%s",
			sr.QueueWaitP50, sr.QueueWaitP99, queued.QueuedFor, sr.Render())
	}
	if !strings.Contains(sr.Render(), "queue wait :") {
		t.Fatalf("Render misses the queue-wait line:\n%s", sr.Render())
	}
}

// TestBoundedQueueSpecValidation: malformed queue:N specs fail the Open
// with the policy vocabulary, on both backends (the livenet mirror lives in
// that package's tests).
func TestBoundedQueueSpecValidation(t *testing.T) {
	for _, spec := range []string{"queue:0", "queue:-2", "queue:abc", "queue:08", "queue:"} {
		if _, err := Open(Config{Admission: spec}); err == nil ||
			!strings.Contains(err.Error(), "unknown admission policy") {
			t.Fatalf("sim Open accepted admission %q: %v", spec, err)
		}
	}
	if _, err := Open(Config{Admission: "queue:16"}); err != nil {
		t.Fatalf("sim Open rejected a well-formed bound: %v", err)
	}
}

// TestConcurrentSubmitWithShedding is the -race stress for the bounded
// admission path: requests raced in from eight goroutines against a 4-shard
// kernel must produce the byte-identical report of the sequential
// single-shard stream — including exactly which requests were shed.
func TestConcurrentSubmitWithShedding(t *testing.T) {
	ref := admissionStreamRender(t, 1, false)
	wantShed := strings.Count(ref, " shed")
	for run := 0; run < 3; run++ {
		got := admissionStreamRender(t, 4, true)
		if got != ref {
			t.Fatalf("concurrent shedding stream diverged (run %d):\n--- sequential/1 ---\n%s--- parallel/4 ---\n%s",
				run, ref, got)
		}
		if strings.Count(got, " shed") != wantShed {
			t.Fatalf("shed accounting drifted (run %d):\n%s", run, got)
		}
	}
}
