package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// simSession adapts machine.Session to the core Session interface. The
// machine (and its kernel) is single-threaded, so every operation serializes
// on mu; whichever waiter holds the lock drives the kernel, and completions
// it passes on the way are harvested for the other waiters.
//
// Determinism contract: submissions buffered between drives form one
// admission batch, ordered canonically — by workload spec, then entry
// function, then rendered arguments, then submission order — before they
// enter the stream. The stream's event sequence is therefore a pure function
// of the batch multiset, not of Submit call interleaving: submitting the
// same distinguishable workloads from eight goroutines or from a loop yields
// byte-identical reports. (Identical workloads are interchangeable, so only
// their ticket↔slot binding can vary.)
//
// One scoping caveat: a request that completes only *after* its own budget
// (another waiter drove the kernel past its deadline) is reported Completed
// with Makespan > Deadline — honest, but which side of the timeout line it
// lands on then depends on Wait order. Streams whose requests finish within
// budget, and any stream drained in ticket order (Drain/Close, the L3
// driver, the CLI), are fully deterministic; only racing Wait calls against
// over-budget requests can flip a row between timeout and late completion.
type simSession struct {
	mu  sync.Mutex
	cfg Config

	// arrival, admission and queueBound are the validated service knobs
	// (newSimSession rejects malformed specs before any request exists).
	arrival    *workload.Arrival
	admission  machine.AdmissionPolicy
	queueBound int

	m  *machine.Machine
	ms *machine.Session

	pend      []*simRequest
	all       []*simRequest
	pendPlans []*faults.Plan // injected before the machine exists
	seq       int

	closed   bool
	closeRep *Report
	closeErr error
	broken   error // fatal session error (machine build or deferred inject)
}

// simRequest implements SessionRequest for the simulator.
type simRequest struct {
	s   *simSession
	w   Workload
	seq int

	mr *machine.Req

	resolved bool
	rep      *Report
	err      error
	ch       chan struct{}
}

func newSimSession(cfg Config) (*simSession, error) {
	arr, err := cfg.arrival()
	if err != nil {
		return nil, err
	}
	pol, bound, err := cfg.admissionPolicy()
	if err != nil {
		return nil, err
	}
	return &simSession{cfg: cfg, arrival: arr, admission: pol, queueBound: bound}, nil
}

// Unit implements Session.
func (s *simSession) Unit() TimeUnit { return Ticks }

// Submit implements Session: buffer the request for the next admission
// batch.
func (s *simSession) Submit(w Workload) (SessionRequest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("core: session closed")
	}
	r := &simRequest{s: s, w: w, seq: s.seq, ch: make(chan struct{})}
	s.seq++
	s.pend = append(s.pend, r)
	s.all = append(s.all, r)
	return r, nil
}

// Inject implements Session. Before the first submission there is no
// machine yet, so the plan is buffered and scheduled (fault times are
// absolute stream ticks either way); afterwards it validates and schedules
// immediately.
func (s *simSession) Inject(plan *faults.Plan) ([]int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("core: session closed")
	}
	if s.ms == nil && len(s.pend) > 0 {
		if err := s.flushLocked(); err != nil {
			return nil, err
		}
	}
	if s.ms == nil {
		if plan == nil {
			plan = faults.None()
		}
		// No machine yet (Inject before the first Submit): validate against
		// the config's processor count now — a bad plan must fail this call,
		// not poison the requests the flush later admits — and buffer the
		// plan for the first drive.
		procs := s.cfg.Procs
		if s.cfg.Raw != nil && s.cfg.Raw.Topo != nil {
			procs = s.cfg.Raw.Topo.Size()
		}
		if procs == 0 {
			procs = 8
		}
		if err := plan.Validate(procs); err != nil {
			return nil, err
		}
		s.pendPlans = append(s.pendPlans, plan)
		sorted := plan.Sorted()
		stamps := make([]int64, 0, len(sorted))
		for _, f := range sorted {
			stamps = append(stamps, f.At)
		}
		return stamps, nil
	}
	return s.ms.Inject(plan)
}

// start flushes the pending batch, surfacing the fatal machine-build error
// if any. The one-shot Run wrapper calls it to report setup errors in the
// historical order.
func (s *simSession) start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// flushLocked admits the buffered batch: canonical order, machine built from
// the first submission's program, deferred plans injected, then every
// request submitted to the machine session. The returned error is fatal
// (machine build/serve or deferred-plan rejection); per-request submission
// errors resolve only their own request.
func (s *simSession) flushLocked() error {
	if s.broken != nil {
		return s.broken
	}
	if len(s.pend) == 0 {
		return nil
	}
	batch := s.pend
	s.pend = nil
	sort.SliceStable(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if a.w.Spec != b.w.Spec {
			return a.w.Spec < b.w.Spec
		}
		if a.w.Fn != b.w.Fn {
			return a.w.Fn < b.w.Fn
		}
		ak, bk := argsKey(a.w.Args), argsKey(b.w.Args)
		if ak != bk {
			return ak < bk
		}
		return a.seq < b.seq
	})
	if s.ms == nil {
		m, err := s.cfg.Build(batch[0].w.Program)
		if err != nil {
			s.broken = err
			for _, r := range batch {
				r.fail(err)
			}
			return err
		}
		ms, err := m.Serve(s.serveConfig())
		if err != nil {
			s.broken = err
			for _, r := range batch {
				r.fail(err)
			}
			return err
		}
		s.m, s.ms = m, ms
		for _, plan := range s.pendPlans {
			if _, err := ms.Inject(plan); err != nil {
				s.broken = err
				for _, r := range batch {
					r.fail(err)
				}
				return err
			}
		}
		s.pendPlans = nil
	}
	var firstErr error
	for _, r := range batch {
		mr, err := s.ms.Submit(r.w.Program, r.w.Fn, r.w.Args)
		if err != nil {
			r.fail(err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.mr = mr
	}
	return firstErr
}

// serveConfig maps the core config to the machine's service knobs. An
// Arrival spec materializes its seeded schedule lazily, one offset per
// stream index; the machine assigns indices in canonical admission order,
// so the schedule is a pure function of (spec, seed) — identical at every
// shard count and under any Submit interleaving.
func (s *simSession) serveConfig() machine.ServeConfig {
	sc := machine.ServeConfig{
		ArrivalEvery: sim.Time(s.cfg.ArrivalEvery),
		MaxInFlight:  s.cfg.MaxInFlight,
		Admission:    s.admission,
		QueueBound:   s.queueBound,
	}
	if s.arrival != nil {
		seed := s.cfg.Seed
		if seed == 0 {
			seed = 1
		}
		next := s.arrival.Next(seed)
		var sched []int64
		sc.NextArrival = func(i int) sim.Time {
			for len(sched) <= i {
				sched = append(sched, next())
			}
			return sim.Time(sched[i])
		}
	}
	return sc
}

// fail resolves a request with an error.
func (r *simRequest) fail(err error) {
	if r.resolved {
		return
	}
	r.resolved = true
	r.err = err
	close(r.ch)
}

// succeed resolves a request with its per-request report.
func (r *simRequest) succeed(rep *Report) {
	if r.resolved {
		return
	}
	r.resolved = true
	r.rep = rep
	close(r.ch)
}

// shed resolves a request admission control rejected: the per-request
// report carries the Shed marker and the Wait error is the typed ErrShed.
func (r *simRequest) shedResolve(rep *Report) {
	if r.resolved {
		return
	}
	r.resolved = true
	r.rep = rep
	r.err = ErrShed
	close(r.ch)
}

// harvestLocked resolves every request whose completion (or shed decision)
// the last drive passed, whoever was driving.
func (s *simSession) harvestLocked() {
	for _, r := range s.all {
		if r.resolved || r.mr == nil {
			continue
		}
		switch {
		case r.mr.Done():
			r.succeed(s.requestReport(r))
		case r.mr.Shed():
			r.shedResolve(s.requestReport(r))
		}
	}
}

// requestReport builds the per-request view. Counters stay zero by design:
// the substrate is shared across the stream, so totals live on the
// session's Close report.
func (s *simSession) requestReport(r *simRequest) *Report {
	mr := r.mr
	rep := &Report{
		Backend:   "sim",
		Request:   mr.ID(),
		Unit:      Ticks,
		Procs:     s.ms.Procs(),
		Scheme:    s.ms.SchemeName(),
		Placement: s.ms.PlacementName(),
		ArrivedAt: int64(mr.Arrival()),
		Err:       s.ms.RunErr(),
	}
	switch {
	case mr.Done():
		rep.Completed = true
		rep.Answer = mr.Answer()
		rep.DoneAt = int64(mr.DoneAt())
		rep.Makespan = int64(mr.DoneAt() - mr.Arrival())
		rep.QueuedFor = int64(mr.QueuedFor())
	case mr.Shed():
		// Never admitted: the arrival stamp is the offer tick and no stream
		// time was spent serving it.
		rep.Shed = true
		rep.Makespan = 0
	default:
		rep.Makespan = int64(s.ms.Now() - mr.Arrival())
		rep.QueuedFor = int64(mr.QueuedFor())
	}
	return rep
}

// Wait implements SessionRequest.
func (r *simRequest) Wait() (*Report, error) {
	select {
	case <-r.ch:
		return r.rep, r.err
	default:
	}
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	r.waitLocked()
	return r.rep, r.err
}

// waitLocked drives the kernel until this request resolves; the caller
// holds s.mu.
func (r *simRequest) waitLocked() {
	s := r.s
	if r.resolved {
		return
	}
	if err := s.flushLocked(); err != nil && r.resolved {
		return // the flush error was this request's
	}
	if r.resolved {
		return
	}
	if r.mr == nil {
		// The batch flushed fatally before this request was admitted.
		err := s.broken
		if err == nil {
			err = errors.New("core: request was never admitted")
		}
		r.fail(err)
		return
	}
	s.ms.Wait(r.mr)
	s.harvestLocked()
	if r.resolved {
		return
	}
	if err := s.ms.RunErr(); err != nil {
		r.fail(err)
		return
	}
	// Budget exhausted: the request did not complete; the stream survives.
	r.succeed(s.requestReport(r))
}

// Close implements Session: resolve every open request, finalize the
// machine, and return the aggregate report (one-shot shape, Sim detail
// attached). Idempotent.
func (s *simSession) Close() (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.closeRep, s.closeErr
	}
	s.closed = true
	if err := s.flushLocked(); err != nil && s.ms == nil {
		s.closeErr = err
		return nil, err
	}
	for _, r := range s.all {
		r.waitLocked()
	}
	if s.ms == nil {
		// Nothing was ever submitted: an empty stream.
		s.closeRep = &Report{Backend: "sim", Unit: Ticks}
		return s.closeRep, nil
	}
	queueMax := s.ms.QueueDepthMax()
	mrep := s.ms.Finish()
	n := mrep.NeutralCounts()
	s.closeRep = &Report{
		Backend:       "sim",
		Answer:        mrep.Answer,
		Completed:     mrep.Completed,
		Err:           mrep.Err,
		Makespan:      int64(mrep.Makespan),
		Unit:          Ticks,
		Messages:      n.Messages,
		MsgBytes:      n.Bytes,
		Spawned:       n.Spawned,
		Reissued:      n.Reissued,
		Drained:       n.Drained,
		Recoveries:    n.Recoveries,
		Procs:         mrep.Procs,
		Scheme:        mrep.Scheme,
		Placement:     mrep.Placement,
		QueueDepthMax: queueMax,
		Sim:           mrep,
	}
	return s.closeRep, nil
}

// argsKey renders argument values for the canonical admission order.
func argsKey(args []expr.Value) string {
	return fmt.Sprintf("%v", args)
}
