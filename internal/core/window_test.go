package core

import "testing"

// This file pins the recovery-window accounting of ServiceReport's
// DuringRecovery/OutsideRecovery counters against the edge cases a stream
// of real faults produces: overlapping windows, faults stamped after the
// last completion, and single requests spanning several disjoint windows.
// The tickets are synthetic (fakeStreamReq), so each case controls the
// request intervals and fault stamps exactly.

// fakeStreamReq resolves a ticket with a canned per-request report.
type fakeStreamReq struct{ rep *Report }

func (f fakeStreamReq) Wait() (*Report, error) { return f.rep, nil }

// completedTicket fabricates a completed request with the given stream
// interval.
func completedTicket(req int, arrived, done int64) *Ticket {
	return &Ticket{req: fakeStreamReq{rep: &Report{
		Backend: "sim", Unit: Ticks, Request: req, Completed: true,
		ArrivedAt: arrived, DoneAt: done, Makespan: done - arrived,
	}}}
}

// windowReport folds synthetic tickets and fault stamps through the real
// report builder.
func windowReport(tickets []*Ticket, stamps []int64) *ServiceReport {
	c := &Cluster{backend: "sim", unit: Ticks, tickets: tickets, stamps: stamps}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buildServiceReportLocked(nil)
}

// TestWindowAccountingOverlap: two overlapping recovery windows (fault
// stamps 100 and 120) inside one request's service interval count the
// request once, not once per stamp.
func TestWindowAccountingOverlap(t *testing.T) {
	sr := windowReport([]*Ticket{
		completedTicket(0, 90, 150),  // spans both stamps
		completedTicket(1, 105, 115), // between the stamps, contains neither
		completedTicket(2, 118, 130), // spans only the second
	}, []int64{100, 120})
	if sr.DuringRecovery != 2 || sr.OutsideRecovery != 1 {
		t.Fatalf("during/outside = %d/%d, want 2/1\n%s",
			sr.DuringRecovery, sr.OutsideRecovery, sr.Render())
	}
	if sr.DuringRecovery+sr.OutsideRecovery != sr.Completed {
		t.Fatalf("window counters %d+%d do not partition %d completed",
			sr.DuringRecovery, sr.OutsideRecovery, sr.Completed)
	}
}

// TestWindowAccountingFaultAfterLastCompletion: a fault stamped after every
// request has completed opens no window anyone was served during.
func TestWindowAccountingFaultAfterLastCompletion(t *testing.T) {
	sr := windowReport([]*Ticket{
		completedTicket(0, 0, 200),
		completedTicket(1, 150, 400),
	}, []int64{500})
	if sr.DuringRecovery != 0 || sr.OutsideRecovery != 2 {
		t.Fatalf("during/outside = %d/%d, want 0/2\n%s",
			sr.DuringRecovery, sr.OutsideRecovery, sr.Render())
	}
	// The stamp still appears in the report — the fault happened, it just
	// intersected nobody's service interval.
	if len(sr.FaultStamps) != 1 || sr.FaultStamps[0] != 500 {
		t.Fatalf("fault stamps = %v", sr.FaultStamps)
	}
}

// TestWindowAccountingSpansTwoDisjointWindows: a request whose interval
// contains two widely separated faults is one during-recovery completion,
// and the partition During+Outside = Completed still holds.
func TestWindowAccountingSpansTwoDisjointWindows(t *testing.T) {
	sr := windowReport([]*Ticket{
		completedTicket(0, 50, 350), // spans stamps 100 and 300
		completedTicket(1, 150, 250),
	}, []int64{300, 100}) // deliberately unsorted: the builder sorts
	if sr.Completed != 2 {
		t.Fatalf("completed = %d, want 2", sr.Completed)
	}
	if sr.DuringRecovery != 1 || sr.OutsideRecovery != 1 {
		t.Fatalf("during/outside = %d/%d, want 1/1 (no double count)\n%s",
			sr.DuringRecovery, sr.OutsideRecovery, sr.Render())
	}
	if sr.FaultStamps[0] != 100 || sr.FaultStamps[1] != 300 {
		t.Fatalf("fault stamps not sorted: %v", sr.FaultStamps)
	}
}

// TestWindowAccountingBoundaryStamps: window membership is inclusive on
// both ends — a fault at the admission tick or the completion tick counts.
func TestWindowAccountingBoundaryStamps(t *testing.T) {
	sr := windowReport([]*Ticket{
		completedTicket(0, 100, 200), // stamp exactly at admission
		completedTicket(1, 300, 400), // stamp exactly at completion
		completedTicket(2, 201, 299), // strictly between windows
	}, []int64{100, 400})
	if sr.DuringRecovery != 2 || sr.OutsideRecovery != 1 {
		t.Fatalf("during/outside = %d/%d, want 2/1\n%s",
			sr.DuringRecovery, sr.OutsideRecovery, sr.Render())
	}
}
