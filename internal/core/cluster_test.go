package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/faults"
)

// fakeBackend is a registrable stub whose Run returns a canned report or
// error — the error-path probe for VerifyOn. Names sort after "sim" so the
// registry-order assertions elsewhere stay valid.
type fakeBackend struct {
	name string
	rep  *Report
	err  error
}

func (f fakeBackend) Name() string { return f.name }
func (f fakeBackend) Run(Config, Workload, *faults.Plan) (*Report, error) {
	return f.rep, f.err
}

var fakeOnce sync.Once

func registerFakes(t *testing.T) {
	t.Helper()
	fakeOnce.Do(func() {
		MustRegisterBackend(fakeBackend{name: "zz-err", err: errors.New("substrate exploded")})
		MustRegisterBackend(fakeBackend{name: "zz-incomplete",
			rep: &Report{Backend: "zz-incomplete", Unit: Ticks, Makespan: 42}})
		MustRegisterBackend(fakeBackend{name: "zz-wrong",
			rep: &Report{Backend: "zz-wrong", Unit: Ticks, Completed: true, Answer: expr.VInt(-1)}})
		MustRegisterBackend(fakeBackend{name: "zz-reperr",
			rep: &Report{Backend: "zz-reperr", Unit: Ticks, Err: errors.New("evaluation blew up")}})
	})
}

// TestBackendsOrderIsDocumentedOrder: Backends() is sorted, and ByName's
// error text lists exactly that order — the two can't drift.
func TestBackendsOrderIsDocumentedOrder(t *testing.T) {
	registerFakes(t)
	names := Backends()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Backends() not sorted: %v", names)
	}
	_, err := ByName("nosuch")
	if err == nil {
		t.Fatal("unknown backend resolved")
	}
	want := fmt.Sprintf("core: unknown backend %q (known: %s)", "nosuch", strings.Join(names, ", "))
	if err.Error() != want {
		t.Fatalf("ByName error %q != %q", err, want)
	}
}

// TestVerifyOnErrorPaths covers every way VerifyOn can reject a run:
// backend error propagation, an incomplete run, a report-level evaluation
// error, and an answer that disagrees with the reference.
func TestVerifyOnErrorPaths(t *testing.T) {
	registerFakes(t)
	w, err := StandardWorkload("fib:8")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		backend string
		want    string
	}{
		{"zz-err", "substrate exploded"},
		{"zz-incomplete", "did not complete"},
		{"zz-reperr", "evaluation blew up"},
		{"zz-wrong", "!= reference"},
	}
	for _, c := range cases {
		_, err := VerifyOn(c.backend, Config{}, w, nil)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("VerifyOn(%s) error = %v, want containing %q", c.backend, err, c.want)
		}
	}
	// The real simulator path: a crash under the "none" scheme can never
	// complete, and verifyReport must say so (with the makespan and unit).
	plan := CrashPlan(0, 200, true)
	plan.Add(Fault{At: 200, Proc: 1, Kind: CrashAnnounced})
	_, err = VerifyOn("sim", Config{Procs: 4, Seed: 1, Recovery: "none", Deadline: 20000}, w, plan)
	if err == nil || !strings.Contains(err.Error(), "did not complete") {
		t.Fatalf("unrecovered crash verified: %v", err)
	}
	if !strings.Contains(err.Error(), string(Ticks)) {
		t.Fatalf("incomplete-run error %q does not name the unit", err)
	}
}

// TestClusterServiceStreamSim drives the whole service API on the
// simulator: multiplexed requests (including two different shape programs,
// whose generated function names collide — the per-packet program tag keeps
// them apart), mid-stream faults, per-request verification, and the
// stream-level report.
func TestClusterServiceStreamSim(t *testing.T) {
	specs := []string{
		"fib:10", "fib:11", "tree:2,4", "tak:8,4,2",
		"shape:uniform:3,3,4", "shape:skew:2,5,3",
	}
	cl, err := Open(Config{Procs: 8, Seed: 5, Recovery: "rollback", ArrivalEvery: 200})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for _, spec := range specs {
		tk, err := cl.SubmitSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	if err := cl.Inject(CrashPlan(2, 700, true)); err != nil {
		t.Fatal(err)
	}
	for i, tk := range tickets {
		rep, err := tk.Verify()
		if err != nil {
			t.Fatalf("request %d (%s): %v", i, specs[i], err)
		}
		if rep.DoneAt <= rep.ArrivedAt {
			t.Fatalf("request %d stamps: arrived %d done %d", i, rep.ArrivedAt, rep.DoneAt)
		}
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != len(specs) || sr.Failed != 0 {
		t.Fatalf("completed/failed = %d/%d\n%s", sr.Completed, sr.Failed, sr.Render())
	}
	if sr.DuringRecovery+sr.OutsideRecovery != sr.Completed {
		t.Fatalf("recovery-window split %d+%d != %d",
			sr.DuringRecovery, sr.OutsideRecovery, sr.Completed)
	}
	if len(sr.FaultStamps) != 1 || sr.FaultStamps[0] != 700 {
		t.Fatalf("fault stamps = %v", sr.FaultStamps)
	}
	if sr.Totals == nil || sr.Totals.Sim == nil {
		t.Fatal("stream totals missing sim detail")
	}
	if sr.Throughput <= 0 || sr.LatencyP99 < sr.LatencyP50 {
		t.Fatalf("aggregates: throughput %v p50 %d p99 %d", sr.Throughput, sr.LatencyP50, sr.LatencyP99)
	}
	// Submissions after Close fail fast on the ticket.
	if _, err := cl.Submit(Workload{}).Wait(); err == nil {
		t.Fatal("submit after close succeeded")
	}
}

// determinismSpecs are pairwise-distinguishable (distinct specs), so the
// canonical admission order is total and even the ticket↔slot binding is
// deterministic under concurrent submission.
var determinismSpecs = []string{
	"fib:8", "fib:9", "fib:10", "fib:11", "fib:12",
	"tree:2,3", "tree:2,4", "tree:3,3",
	"tak:7,4,2", "tak:8,4,2",
	"sumrange:40", "binom:9,4",
}

// streamRender opens a sim cluster, submits the specs (sequentially or from
// eight goroutines), injects the plan, and returns the rendered report.
func streamRender(t *testing.T, parallel bool) string {
	t.Helper()
	cl, err := Open(Config{Procs: 8, Seed: 7, Recovery: "rollback", ArrivalEvery: 150})
	if err != nil {
		t.Fatal(err)
	}
	if parallel {
		var wg sync.WaitGroup
		for _, spec := range determinismSpecs {
			wg.Add(1)
			go func(spec string) {
				defer wg.Done()
				if _, err := cl.SubmitSpec(spec); err != nil {
					t.Error(err)
				}
			}(spec)
		}
		wg.Wait()
	} else {
		for _, spec := range determinismSpecs {
			if _, err := cl.SubmitSpec(spec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.Inject(CrashPlan(3, 900, true)); err != nil {
		t.Fatal(err)
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != len(determinismSpecs) {
		t.Fatalf("stream incomplete:\n%s", sr.Render())
	}
	return sr.Render()
}

// TestClusterDeterminism: the rendered service report is byte-identical
// whether the requests were submitted sequentially or raced in from eight
// goroutines — the canonical admission order, not Submit interleaving,
// shapes the stream.
func TestClusterDeterminism(t *testing.T) {
	seq := streamRender(t, false)
	for run := 0; run < 3; run++ {
		par := streamRender(t, true)
		if par != seq {
			t.Fatalf("parallel submission diverged (run %d):\n--- sequential ---\n%s--- parallel ---\n%s",
				run, seq, par)
		}
	}
}

// TestOneShotMatchesDegenerateStream: Config.Run and an explicit
// Open→Submit→Inject→Close single-request stream land on the identical
// simulation (same makespan, messages, event count, answer).
func TestOneShotMatchesDegenerateStream(t *testing.T) {
	w, err := StandardWorkload("fib:11")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Procs: 8, Seed: 9, Recovery: "rollback"}
	plan := CrashPlan(1, 400, true)
	one, err := cfg.Run(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tk := cl.Submit(w)
	if err := cl.Inject(plan); err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Verify(); err != nil {
		t.Fatal(err)
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	tot := sr.Totals
	if tot.Makespan != one.Makespan || tot.Messages != one.Messages ||
		tot.Sim.Events != one.Sim.Events || !tot.Answer.Equal(one.Answer) {
		t.Fatalf("degenerate stream diverged from Run: %d/%d/%d vs %d/%d/%d",
			tot.Makespan, tot.Messages, tot.Sim.Events,
			one.Makespan, one.Messages, one.Sim.Events)
	}
}

// TestOpenRejectsBatchOnlyBackend: the fake backends have no session
// capability; OpenOn must say so.
func TestOpenRejectsBatchOnlyBackend(t *testing.T) {
	registerFakes(t)
	_, err := OpenOn("zz-err", Config{})
	if err == nil || !strings.Contains(err.Error(), "batch-only") {
		t.Fatalf("OpenOn(batch-only) error = %v", err)
	}
	if _, err := OpenOn("nosuch", Config{}); err == nil {
		t.Fatal("unknown backend opened")
	}
}

// TestTicketErrorPaths: unknown entry functions and nil programs surface on
// the ticket, not the stream; the stream keeps serving around them.
func TestTicketErrorPaths(t *testing.T) {
	cl, err := Open(Config{Procs: 4, Seed: 1, Recovery: "rollback"})
	if err != nil {
		t.Fatal(err)
	}
	good, err := cl.SubmitSpec("fib:9")
	if err != nil {
		t.Fatal(err)
	}
	w, err := StandardWorkload("fib:9")
	if err != nil {
		t.Fatal(err)
	}
	bad := cl.Submit(Workload{Program: w.Program, Fn: "nosuch"})
	if _, err := bad.Wait(); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("unknown entry fn error = %v", err)
	}
	if _, err := good.Verify(); err != nil {
		t.Fatalf("good request poisoned by bad one: %v", err)
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != 1 || sr.Failed != 1 {
		t.Fatalf("completed/failed = %d/%d", sr.Completed, sr.Failed)
	}
}
