package core

import (
	"strings"
	"testing"
)

func TestBackendRegistry(t *testing.T) {
	b, err := ByName("sim")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "sim" {
		t.Fatalf("sim backend name = %q", b.Name())
	}
	if _, err := ByName("nosuch"); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown backend error = %v", err)
	}
	names := Backends()
	if len(names) == 0 || names[0] != "sim" {
		t.Fatalf("Backends() = %v, want sim first", names)
	}
	if err := RegisterBackend(simBackend{}); err == nil {
		t.Fatal("duplicate backend registration accepted")
	}
}

func TestSimBackendNeutralReport(t *testing.T) {
	w, err := StandardWorkload("fib:10")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Procs: 8, Seed: 3, Recovery: "rollback"}
	rep, err := cfg.RunOn("sim", w, CrashPlan(1, 300, true))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != "sim" || rep.Unit != Ticks {
		t.Fatalf("backend/unit = %q/%q", rep.Backend, rep.Unit)
	}
	if rep.Sim == nil {
		t.Fatal("sim detail missing")
	}
	if rep.Makespan != int64(rep.Sim.Makespan) {
		t.Fatalf("makespan %d != sim %d", rep.Makespan, rep.Sim.Makespan)
	}
	m := &rep.Sim.Metrics
	if rep.Messages != m.TotalMessages() || rep.Spawned != m.TasksSpawned ||
		rep.Reissued != m.Reissues || rep.Recoveries != m.Reissues+m.Twins ||
		rep.Drained != m.DupResults+m.LateResults {
		t.Fatalf("neutral counters diverge from metrics: %+v", rep)
	}
	if rep.Reissued == 0 {
		t.Fatal("crash under rollback reissued nothing")
	}
	// Config.Run is the sim backend by definition.
	rep2, err := cfg.Run(w, CrashPlan(1, 300, true))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Makespan != rep.Makespan || rep2.Messages != rep.Messages {
		t.Fatalf("Config.Run diverged from RunOn(sim): %d/%d vs %d/%d",
			rep2.Makespan, rep2.Messages, rep.Makespan, rep.Messages)
	}
}

func TestVerifyOn(t *testing.T) {
	w, err := StandardWorkload("fib:10")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyOn("sim", Config{Seed: 2}, w, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyOn("nosuch", Config{}, w, nil); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestShapeWorkloads(t *testing.T) {
	for _, spec := range []string{
		"shape:uniform:3,3,4",
		"shape:skew:2,5,3",
		"shape:random:7,3,4,5",
	} {
		w, err := StandardWorkload(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if w.Program == nil || w.Fn == "" {
			t.Fatalf("%s: empty workload", spec)
		}
		// Shapes must run (and verify) like any bundled program.
		if _, err := (Config{Procs: 4, Seed: 1, Recovery: "rollback"}).Verify(w, nil); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
	for _, bad := range []string{
		"shape:uniform:3,3",     // too few args
		"shape:uniform:3,3,4,9", // trailing input must not parse as the 3-arg form
		"shape:nosuch:1,2,3",
		"shape:",
	} {
		if _, err := StandardWorkload(bad); err == nil {
			t.Errorf("%s: accepted", bad)
		}
	}
}
