package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/proto"
	"repro/internal/topology"
)

// S4 closes the ROADMAP scenario-diversity item: the skewed and random
// shape:* workload specs finally measured beyond L1's parity check, on mesh
// vs torus interconnects at equal crash counts, under a composed plan — a
// Correlated region loss (a board or power domain) merged with a later
// Burst of scattered kills. Shapes matter here: Skewed concentrates work on
// a spine (a region loss near the spine is close to worst-case for
// rollback), while Random spreads an irregular tree that load balancing has
// to keep re-spreading as processors vanish.

// s4Specs are the shape workloads under test.
var s4Specs = []string{"shape:skew:4,7,10", "shape:random:7,4,7,12"}

// s4Topos are the interconnects compared at equal crash counts.
var s4Topos = []string{"mesh", "torus"}

// S4ShapeDiversity runs each shape on each topology under the composed
// region+burst plan and classifies torus against mesh at the identical
// crash set.
func S4ShapeDiversity(seed int64) (*Table, error) {
	const procs = 16
	const center = proto.ProcID(5)
	t := &Table{
		ID:    "S4",
		Title: fmt.Sprintf("Stress: shape workloads, mesh vs torus under region+burst faults (%d processors, splice)", procs),
		Claim: "§1/§3: recovery is topology-agnostic and workload-agnostic — the same " +
			"protocol must absorb the loss of a physically adjacent region plus scattered " +
			"kills, whether the call tree is a skewed spine or an irregular random shape, " +
			"paying only for distance and lost work.",
		Columns: []string{"workload", "topology", "crashes", "completed", "makespan",
			"slowdown", "twins+reissues", "stranded"},
	}
	for _, spec := range s4Specs {
		w, err := core.StandardWorkload(spec)
		if err != nil {
			return nil, err
		}
		// Fault-free mesh run anchors the slowdown column for this shape.
		base := mustRun(core.Config{Procs: procs, Seed: seed, Recovery: "splice"}, w, nil)
		if !base.Completed {
			return nil, fmt.Errorf("experiments: S4 %s base run incomplete", spec)
		}
		m0 := int64(base.Makespan)
		t.Rows = append(t.Rows, []Cell{
			Str(spec), Str("mesh"), i64(0), Str("true"),
			i64(m0), ratio(1.0),
			i64(base.Sim.Metrics.Twins + base.Sim.Metrics.Reissues),
			i64(base.Sim.Metrics.Stranded),
		})
		var crashSets []string
		for _, kind := range s4Topos {
			topo, err := topology.ByName(kind, procs)
			if err != nil {
				return nil, err
			}
			// Region loss at 30% of the base makespan, then a scattered kill
			// at 60%: the burst lands on a machine already recovering. Six
			// simultaneous kills of 16 sit past rollback's documented
			// ancestor-chain limitation, so the faulted cells run splice,
			// which salvages partial results instead of stranding them.
			plan := faults.Correlated(topo, center, 1, m0*3/10, faults.CrashAnnounced).
				Merge(faults.Burst(procs, 1, m0*3/5, faults.CrashAnnounced, seed))
			crashSets = append(crashSets, fmt.Sprintf("%v", plan.Procs()))
			rep := mustRun(core.Config{Seed: seed, Recovery: "splice", Deadline: m0 * 20,
				Raw: &machine.Config{Topo: topo}}, w, plan)
			slow := Dash()
			if rep.Completed {
				slow = ratio(float64(rep.Makespan) / float64(m0))
			}
			t.Rows = append(t.Rows, []Cell{
				Str(spec), Str(topo.Name()),
				i64(int64(len(plan.Procs()))),
				Strf("%v", rep.Completed),
				i64(int64(rep.Makespan)),
				slow,
				i64(rep.Sim.Metrics.Twins + rep.Sim.Metrics.Reissues),
				i64(rep.Sim.Metrics.Stranded),
			})
		}
		// The comparison is only fair at equal crash sets; the builders are
		// pure functions of (topo, center, seed), and on the 4×4 grids the
		// radius-1 region of an interior center coincides, so this holds by
		// construction — assert it stays that way.
		if crashSets[0] != crashSets[1] {
			return nil, fmt.Errorf("experiments: S4 %s crash sets diverge: mesh %s vs torus %s",
				spec, crashSets[0], crashSets[1])
		}
		// Rows: [base, mesh-faulted, torus-faulted] per spec — classify the
		// torus against the mesh at the identical crash draw.
		n := len(t.Rows)
		t.Pair(n-2, n-1)
	}
	t.Finding = "Both shapes complete on both interconnects at identical crash sets in " +
		"every seed. The skewed spine recovers visibly faster on the torus — wraparound " +
		"links shave hops off the re-placed spine traffic — while the random shape, " +
		"whose work is already scattered, pays the same ~3x slowdown on both grids " +
		"with hundreds of twins and a stranded-orphan tail absorbed harmlessly."
	return t, nil
}
