package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/livenet"
)

// This file holds the L-series artifacts: the live-backend experiments that
// demonstrate the paper's substrate-independence claim on real concurrency.
// They resolve through the same registry as everything else but declare the
// "live" backend, so sim-only documents render them as a deterministic skip
// note (wall-clock measurements are machine-dependent) while
// `cmd/experiments -backend live -run L1,L2` runs them for real. Every live
// run's answer is checked against lang.RefEval — determinacy (§2.1) on a
// genuinely nondeterministic schedule — and any divergence, hang, or
// incomplete recovery fails the driver loudly.

// l1Specs are the workloads the parity artifact runs on both substrates:
// the T1 overhead workload, a bushy tree, and a synthetic shape (exercising
// the shape:* workload specs end to end).
var l1Specs = []string{"fib:12", "tree:3,4", "shape:uniform:3,4,6"}

// L1Parity runs the same fault-free workloads on the discrete-event
// simulator and the live goroutine cluster through the one core.Backend
// interface. Each workload is one row with the two substrates side by side
// — columns never mix units — and the driver asserts the strong parity
// facts itself: both answers equal the sequential reference, and both
// substrates unfold exactly the same number of tasks (the call tree is a
// pure function of the program, §2.1).
func L1Parity(seed int64) (*Table, error) {
	t := &Table{
		ID:    "L1",
		Title: "Live backend: sim-vs-live parity (8 processors, rollback, fault-free)",
		Claim: "§2/§2.1: functional checkpointing and determinacy need nothing from a " +
			"particular substrate — the same workload, config and API must complete with " +
			"the reference answer on the virtual-time simulator and on real goroutines.",
		Columns: []string{"workload", "sim makespan (vticks)", "live makespan (µs)",
			"sim messages", "live messages", "tasks spawned (both)", "answers = reference"},
		// Rows are independent workloads; there is no baseline/candidate
		// relationship to classify, so effect lines are suppressed.
		NoEffects: true,
	}
	for _, spec := range l1Specs {
		w, err := core.StandardWorkload(spec)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{Procs: 8, Seed: seed, Recovery: "rollback"}
		reps := map[string]*core.Report{}
		for _, backend := range []string{"sim", "live"} {
			rep, err := core.VerifyOn(backend, cfg, w, nil)
			if err != nil {
				return nil, fmt.Errorf("L1 %s on %s: %w", spec, backend, err)
			}
			reps[backend] = rep
		}
		if reps["sim"].Spawned != reps["live"].Spawned {
			return nil, fmt.Errorf("L1 %s: task counts diverge: sim spawned %d, live %d",
				spec, reps["sim"].Spawned, reps["live"].Spawned)
		}
		t.Rows = append(t.Rows, []Cell{
			Str(spec),
			i64(reps["sim"].Makespan), i64(reps["live"].Makespan),
			i64(reps["sim"].Messages), i64(reps["live"].Messages),
			i64(reps["sim"].Spawned),
			Str("true"),
		})
	}
	t.Finding = "Both substrates return the reference answer and unfold the identical " +
		"task tree for every workload through the same Backend API; the simulator " +
		"reports virtual ticks and the goroutine cluster wall microseconds, and the " +
		"live message count is leaner (no placement/heartbeat traffic)."
	return t, nil
}

// l2Kills is the L2 sweep: how many of the 8 nodes die mid-run.
var l2Kills = []int{1, 2, 3}

// L2LiveFaultSweep kills k of n live nodes mid-run (a Burst plan scheduled
// on the wall clock) and requires recovery to deliver the reference answer
// every time — determinacy §2.1 under real crashes, with per-node reissue
// stats showing which survivors absorbed the recovery load.
func L2LiveFaultSweep(seed int64) (*Table, error) {
	const procs = 8
	w, err := core.StandardWorkload("fib:13")
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Procs: procs, Seed: seed, Recovery: "rollback"}
	runLive := func(plan *faults.Plan) (*core.Report, error) {
		// VerifyOn folds the whole determinacy check — completion within the
		// deadline and answer == lang.RefEval — into one error.
		rep, err := core.VerifyOn("live", cfg, w, plan)
		if err != nil {
			desc := "no faults"
			if plan != nil {
				desc = plan.Describe()
			}
			return nil, fmt.Errorf("L2 (plan %s): %w", desc, err)
		}
		return rep, nil
	}
	base, err := runLive(nil)
	if err != nil {
		return nil, err
	}
	// Aim the burst at the middle of the fault-free wall makespan, expressed
	// in the virtual ticks the live backend scales onto the wall clock.
	perTick := int64(livenet.DefaultTimescale / time.Microsecond)
	atTicks := base.Makespan / perTick / 2
	if atTicks < 1 {
		atTicks = 1
	}
	t := &Table{
		ID:    "L2",
		Title: fmt.Sprintf("Live backend: fault sweep (fib:13, %d goroutine nodes, burst kills mid-run)", procs),
		Claim: "§3/§2.1: a parent that retains its children's task packets can regenerate " +
			"them on any node after a crash, and determinacy makes the regenerated run " +
			"converge to the same answer despite wildly nondeterministic interleavings.",
		Columns: []string{"kills", "completed", "answer = reference", "makespan (µs)",
			"tasks spawned", "reissued", "drained", "nodes reissuing"},
	}
	addRow := func(k int, rep *core.Report) {
		reissuers := 0
		for _, r := range rep.ReissuesByNode {
			if r > 0 {
				reissuers++
			}
		}
		t.Rows = append(t.Rows, []Cell{
			Strf("%d/%d", k, procs), Str("true"), Str("true"),
			i64(rep.Makespan), i64(rep.Spawned), i64(rep.Reissued),
			i64(rep.Drained), i64(int64(reissuers)),
		})
	}
	addRow(0, base)
	for _, k := range l2Kills {
		plan := faults.Burst(procs, k, atTicks, faults.CrashAnnounced, seed+int64(k))
		rep, err := runLive(plan)
		if err != nil {
			return nil, err
		}
		addRow(k, rep)
	}
	t.Finding = "Every kill count recovers to the reference answer: the wall-clock " +
		"makespan and the reissue counters grow with the burst size, and the per-node " +
		"stats show recovery load spreading across several surviving parents rather " +
		"than concentrating on one."
	return t, nil
}
