package experiments

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestS1TopologySweepShape(t *testing.T) {
	tb, err := S1TopologySweep("fib:13", 1)
	if err != nil {
		t.Fatal(err)
	}
	kinds := topology.Kinds()
	if len(tb.Rows) != len(kinds) {
		t.Fatalf("rows = %d, want one per kind (%d)", len(tb.Rows), len(kinds))
	}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(tb.Columns))
		}
		// Each row's label names the topology it ran on.
		if !strings.Contains(row[0].Text, strings.TrimSuffix(kinds[i], "ular")) &&
			kinds[i] != "tree" { // tree renders as "btree(64)"
			t.Errorf("row %d label %q does not match kind %q", i, row[0].Text, kinds[i])
		}
		// Makespan and message counts are positive measurements.
		if !row[2].IsNum || row[2].Num <= 0 {
			t.Errorf("row %d (%s): makespan cell %+v", i, row[0].Text, row[2])
		}
		if !row[3].IsNum || row[3].Num <= 0 {
			t.Errorf("row %d (%s): messages cell %+v", i, row[0].Text, row[3])
		}
	}
	// The sweep must actually include the generator-backed shapes.
	labels := make([]string, len(tb.Rows))
	for i, row := range tb.Rows {
		labels[i] = row[0].Text
	}
	joined := strings.Join(labels, " ")
	for _, want := range []string{"torus", "btree", "regular", "hypercube"} {
		if !strings.Contains(joined, want) {
			t.Errorf("sweep missing %q: %v", want, labels)
		}
	}
}

func TestS2CascadeRecoveryShape(t *testing.T) {
	tb, err := S2CascadeRecovery(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(s2Cascades); len(tb.Rows) != want {
		t.Fatalf("rows = %d, want %d (plans × schemes)", len(tb.Rows), want)
	}
	// Crash counts must grow with the wave count for the full-spread plans
	// (rows come in scheme pairs per plan).
	single := tb.Rows[0][1].Num
	wave1 := tb.Rows[2][1].Num
	wave2 := tb.Rows[4][1].Num
	if !(single == 1 && wave1 > single && wave2 > wave1) {
		t.Errorf("crash counts not increasing: %v, %v, %v", single, wave1, wave2)
	}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("row %d ragged", i)
		}
	}
}

func TestS3FaultDensityShape(t *testing.T) {
	tb, err := S3FaultDensity(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + 2*len(s3Densities); len(tb.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), want)
	}
	// Row 0 is the fault-free baseline and must have completed.
	if tb.Rows[0][2].Text != "true" {
		t.Fatalf("baseline row did not complete: %v", tb.Rows[0])
	}
	// The sweep must actually reach the breaking point: at least one
	// incomplete run at the high densities.
	broke := false
	for _, row := range tb.Rows {
		if row[2].Text == "false" {
			broke = true
		}
	}
	if !broke {
		t.Error("density sweep never broke recovery; raise the top density")
	}
	// Low density (k=1) must still complete under both schemes.
	for _, row := range tb.Rows[1:3] {
		if row[2].Text != "true" {
			t.Errorf("k=1 row incomplete: %v", row)
		}
	}
}

// TestStressTablesDeterministicPerSeed reruns each driver at the same seed
// and requires identical markdown — the property that makes the runner's
// parallel schedule byte-identical to the sequential one.
func TestStressTablesDeterministicPerSeed(t *testing.T) {
	type driver struct {
		name string
		run  func(seed int64) (*Table, error)
	}
	drivers := []driver{
		{"S1", func(s int64) (*Table, error) { return S1TopologySweep("fib:13", s) }},
		{"S2", S2CascadeRecovery},
		{"S3", S3FaultDensity},
	}
	for _, d := range drivers {
		a, err := d.run(2)
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		b, err := d.run(2)
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		if a.Markdown() != b.Markdown() {
			t.Errorf("%s not deterministic at seed 2", d.name)
		}
	}
}
