package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netnode"
)

// This file holds L5, the process-backend artifact: the substrate-
// independence claim taken one level further than L1/L2 — real OS processes
// connected by sockets, with crashes injected as SIGKILL of the target pid.
// Nothing about §2/§3 changes: parents retain child task packets across the
// process boundary, the supervisor reissues super-root checkpoints, and
// determinacy (§2.1) makes every recovered answer equal the sequential
// reference. The driver asserts all of that itself and fails loudly on any
// divergence, hang, or unexercised recovery path.

// l5Specs are the parity workloads, shared shapes with L1 so the three-way
// table reads against the established two-way one.
var l5Specs = []string{"fib:12", "tree:3,4", "tak:8,4,2"}

// l5 stream sizing: a 12-request mix on 6 node processes, two of which are
// SIGKILLed mid-stream.
const (
	l5Procs    = 6
	l5Requests = 12
	l5Kills    = 2
)

// L5NetParity runs the same fault-free workloads on all three substrates —
// virtual-time simulator, goroutine cluster, process-per-node cluster —
// through the one core.Backend interface, then serves a request stream on
// the process cluster with a two-node SIGKILL burst landing mid-stream.
// Parity facts asserted per workload: all three answers equal the sequential
// reference, all three substrates unfold exactly the same number of tasks,
// and all three report non-zero message bytes in comparable codec units.
// Stream facts asserted: every request completes with the reference answer,
// recovery actually ran (reissues > 0), and at least one request was served
// while the system was crashing and recovering around it.
func L5NetParity(seed int64) (*Table, error) {
	t := &Table{
		ID: "L5",
		Title: fmt.Sprintf("Net backend: sim vs live vs process cluster, then a %d-node SIGKILL burst mid-stream (%d nodes)",
			l5Kills, l5Procs),
		Claim: "§2/§2.1 substrate independence at full strength: functional checkpointing " +
			"needs no shared memory, no cooperative shutdown, and no common address space — " +
			"the same workloads must complete with the reference answer when the nodes are " +
			"OS processes over sockets and a crash is SIGKILL of the process.",
		Columns: []string{"workload", "sim makespan (vticks)", "live makespan (µs)",
			"net makespan (µs)", "tasks spawned (all three)", "net msg bytes", "answers = reference"},
		// Rows are independent workloads, not baseline/candidate pairs.
		NoEffects: true,
	}
	for _, spec := range l5Specs {
		w, err := core.StandardWorkload(spec)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{Procs: 8, Seed: seed, Recovery: "rollback"}
		reps := map[string]*core.Report{}
		for _, backend := range []string{"sim", "live", "net"} {
			rep, err := core.VerifyOn(backend, cfg, w, nil)
			if err != nil {
				return nil, fmt.Errorf("L5 %s on %s: %w", spec, backend, err)
			}
			if rep.MsgBytes == 0 {
				return nil, fmt.Errorf("L5 %s on %s: no message bytes accounted", spec, backend)
			}
			reps[backend] = rep
		}
		if s, l, n := reps["sim"].Spawned, reps["live"].Spawned, reps["net"].Spawned; s != l || s != n {
			return nil, fmt.Errorf("L5 %s: task counts diverge: sim %d, live %d, net %d", spec, s, l, n)
		}
		t.Rows = append(t.Rows, []Cell{
			Str(spec),
			i64(reps["sim"].Makespan), i64(reps["live"].Makespan), i64(reps["net"].Makespan),
			i64(reps["sim"].Spawned), i64(reps["net"].MsgBytes),
			Str("true"),
		})
	}

	// The stream cell: serve l5Requests through one open process cluster and
	// SIGKILL two nodes in the thick of it.
	specs := make([]string, l5Requests)
	base := []string{"fib:11", "fib:12", "tree:2,4", "tak:8,4,2"}
	for i := range specs {
		specs[i] = base[i%len(base)]
	}
	cfg := core.Config{Procs: l5Procs, Seed: seed, Recovery: "rollback"}
	calib, err := runStream("net", cfg, specs, nil, true)
	if err != nil {
		return nil, fmt.Errorf("L5 net base stream: %w", err)
	}
	perTick := int64(netnode.DefaultTimescale / time.Microsecond)
	atTicks := calib.Span / perTick / 2
	if atTicks < 1 {
		atTicks = 1
	}
	plan := faults.Burst(l5Procs, l5Kills, atTicks, faults.CrashSilent, seed)
	sr, err := runStream("net", cfg, specs, plan, true)
	if err != nil {
		return nil, fmt.Errorf("L5 net SIGKILL stream: %w", err)
	}
	if sr.Reissued == 0 {
		return nil, fmt.Errorf("L5 net SIGKILL stream: burst at t=%d killed %d nodes but nothing was reissued (span %d)",
			atTicks, l5Kills, sr.Span)
	}
	if sr.DuringRecovery == 0 {
		return nil, fmt.Errorf("L5 net SIGKILL stream: no request's service interval contained a kill (stamps %v, span %d)",
			sr.FaultStamps, sr.Span)
	}
	// Stream rows reuse the parity columns: the sim/live makespan slots are
	// zero (the stream runs on the net substrate only) and the last column
	// carries the recovery outcome.
	t.Rows = append(t.Rows,
		[]Cell{Str(fmt.Sprintf("stream %d reqs, no faults", l5Requests)),
			i64(0), i64(0), i64(calib.Span), i64(calib.Spawned), i64(calib.MsgBytes),
			Strf("%d/%d verified", calib.Completed, calib.Requests)},
		[]Cell{Str(fmt.Sprintf("stream %d reqs, %d SIGKILLed", l5Requests, l5Kills)),
			i64(0), i64(0), i64(sr.Span), i64(sr.Spawned), i64(sr.MsgBytes),
			Strf("%d/%d verified, %d during recovery, %d reissued",
				sr.Completed, sr.Requests, sr.DuringRecovery, sr.Reissued)},
	)
	t.Finding = "The process cluster is a faithful third substrate: identical task trees " +
		"and reference answers fault-free, and with two node processes SIGKILLed " +
		"mid-stream every request still completes — parents reissue retained packets " +
		"across the socket boundary and the supervisor replays super-root checkpoints, " +
		"so abrupt process death (no cooperative teardown anywhere) loses no answers. " +
		"Wall-clock figures are machine-dependent and therefore not committed."
	return t, nil
}
