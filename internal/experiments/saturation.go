package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/livenet"
	"repro/internal/topology"
	"repro/internal/workload"
)

// This file holds the saturation artifacts S5 (simulator) and L4 (live):
// open-loop load against bounded admission. Where L3 measures a closed batch
// — every request submitted up front, the stream as long as it needs to be —
// S5 and L4 offer load at a controlled rate and let admission control defend
// the cluster: a probe stream calibrates the fault-free service capacity,
// then seeded Poisson arrivals sweep the offered rate through multiples of
// it. Below the knee the cluster completes what is offered; past it the shed
// counter absorbs the excess and the completion throughput flattens at
// capacity — the saturation curve — while mid-stream faults shift the knee
// left by stealing service capacity for recovery.

// s5Procs and s5Requests size the simulator sweep: 24 offered requests on a
// 64-processor torus, bounded to 8 in flight.
const (
	s5Procs    = 64
	s5Requests = 24
	s5InFlight = 8
	l4Procs    = 8
	l4Requests = 12
	l4InFlight = 2
)

// s5Specs is the offered mix: small workloads so the knee comes from the
// arrival rate, not from one giant request monopolizing the torus.
func s5Specs() []string {
	base := []string{"fib:9", "fib:10"}
	out := make([]string, s5Requests)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

// runOffered submits the spec list against a cluster where shedding is an
// expected outcome: admitted requests must complete and verify against the
// reference evaluator, shed requests are counted as data, and anything else
// is an error.
func runOffered(backend string, cfg core.Config, specs []string, plan *core.FaultPlan) (*core.ServiceReport, error) {
	cl, err := core.OpenOn(backend, cfg)
	if err != nil {
		return nil, err
	}
	tickets := make([]*core.Ticket, 0, len(specs))
	for _, spec := range specs {
		tk, err := cl.SubmitSpec(spec)
		if err != nil {
			_, _ = cl.Close()
			return nil, err
		}
		tickets = append(tickets, tk)
	}
	if plan != nil {
		if err := cl.Inject(plan); err != nil {
			_, _ = cl.Close()
			return nil, err
		}
	}
	for i, tk := range tickets {
		rep, err := tk.Wait()
		if errors.Is(err, core.ErrShed) {
			continue // the saturation signal, not a failure
		}
		if err != nil {
			_, _ = cl.Close()
			return nil, fmt.Errorf("request %d (%s): %w", i, specs[i], err)
		}
		if !rep.Completed {
			continue // timed out under a killing plan: data
		}
		if _, err := tk.Verify(); err != nil {
			_, _ = cl.Close()
			return nil, fmt.Errorf("request %d (%s): %w", i, specs[i], err)
		}
	}
	return cl.Close()
}

// S5Saturation sweeps offered load through multiples of the measured
// fault-free capacity on a 64-processor torus with bounded admission,
// with and without a mid-stream burst+cascade fault plan, rollback vs
// splice paired per plan. Deterministic per seed.
func S5Saturation(seed int64) (*Table, error) {
	specs := s5Specs()
	// The probe calibrates capacity under the same in-flight bound the sweep
	// uses (queue policy, closed loop): the knee should land near 1x of what
	// the bounded cluster can actually serve, not of an unbounded batch.
	probe, err := runStream("sim", core.Config{Procs: s5Procs, Topology: "torus",
		Seed: seed, Recovery: "rollback",
		MaxInFlight: s5InFlight, Admission: "queue"}, specs, nil, true)
	if err != nil {
		return nil, fmt.Errorf("S5 probe: %w", err)
	}
	span := probe.Span
	if span <= 0 {
		return nil, fmt.Errorf("S5 probe span %d", span)
	}
	// Fault-free capacity in requests per vtick; the sweep offers multiples
	// of it as seeded Poisson processes.
	capacity := float64(s5Requests) / float64(span)
	topo, err := topology.ByName("torus", s5Procs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "S5",
		Title: fmt.Sprintf("Saturation: open-loop Poisson load vs bounded admission (%d-processor torus, %d offered, %d in-flight slots, shed policy)",
			s5Procs, s5Requests, s5InFlight),
		Claim: "An applicative service with bounded admission saturates gracefully: " +
			"below the capacity knee it completes what is offered; past it the shed " +
			"counter absorbs the excess while completion throughput flattens at the " +
			"fault-free service rate, and mid-stream faults move the knee left because " +
			"recovery competes with fresh admissions for the survivors.",
		Columns: []string{"offered load", "fault plan", "scheme",
			"offered (req/Mtick)", "admitted", "shed", "completed",
			"throughput (req/Mtick)", "p99 latency (vticks)"},
	}
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		rate := mult * capacity
		// The offered stream spans ~requests/rate vticks; aim the faults at
		// its thick middle.
		streamLen := int64(float64(s5Requests) / rate)
		var faulted *core.FaultPlan
		if streamLen > 6 {
			faulted = faults.Burst(s5Procs, 3, streamLen/2, faults.CrashAnnounced, seed).
				Merge(faults.Cascade(topo, 5, streamLen/3, streamLen/6, 1, 0.5,
					faults.CrashAnnounced, seed))
		} else {
			faulted = faults.Burst(s5Procs, 3, 3, faults.CrashAnnounced, seed)
		}
		for _, pl := range []struct {
			label string
			plan  *core.FaultPlan
		}{
			{"no faults", nil},
			{"burst+cascade mid-stream", faulted},
		} {
			base := len(t.Rows)
			for _, scheme := range []string{"rollback", "splice"} {
				cfg := core.Config{Procs: s5Procs, Topology: "torus", Seed: seed,
					Recovery: scheme, Deadline: span * 16,
					Arrival:     fmt.Sprintf("arrive:poisson:%g", rate),
					MaxInFlight: s5InFlight, Admission: "shed"}
				sr, err := runOffered("sim", cfg, specs, pl.plan)
				if err != nil {
					return nil, fmt.Errorf("S5 %.1fx/%s/%s: %w", mult, pl.label, scheme, err)
				}
				t.Rows = append(t.Rows, []Cell{
					Strf("%gx capacity", mult),
					Str(pl.label),
					Str(scheme),
					Float("%.2f", rate*1e6),
					i64(int64(sr.Admitted)),
					i64(int64(sr.Shed)),
					i64(int64(sr.Completed)),
					Float("%.2f", sr.Throughput),
					i64(sr.LatencyP99),
				})
			}
			t.Pair(base, base+1)
		}
	}
	t.Finding = "The saturation curve has a visible knee: at 0.25–0.5x capacity " +
		"nothing (or almost nothing) is shed and completion throughput tracks the " +
		"offered rate; around 1x the bound starts dropping the Poisson bunching, " +
		"and at 2–4x it sheds most of the excess while throughput flattens " +
		"near the probe capacity while p99 latency stays bounded — shedding, not " +
		"queueing, pays for the overload. The burst+cascade plan completes fewer of " +
		"the admitted requests per unit time, shifting the knee left; splice tracks " +
		"rollback within the usual effect band under the identical plan and " +
		"admission schedule."
	return t, nil
}

// L4LiveSaturation is the live-backend saturation smoke: the driver paces
// real Submit calls on the wall clock from a seeded workload.Arrival
// schedule (Config.Arrival is inert on live — real time is the arrival
// discipline), against bounded admission on the goroutine cluster, with and
// without a mid-stream kill. Wall-clock measurements are machine-dependent
// and therefore not committed.
func L4LiveSaturation(seed int64) (*Table, error) {
	specs := make([]string, l4Requests)
	for i := range specs {
		specs[i] = "fib:11"
	}
	// Probe the closed-loop stream for the service capacity in req/µs under
	// the same in-flight bound the sweep uses (queue policy holds the
	// overflow instead of shedding it).
	cfg := core.Config{Procs: l4Procs, Seed: seed, Recovery: "rollback"}
	probeCfg := cfg
	probeCfg.MaxInFlight = l4InFlight
	probeCfg.Admission = "queue"
	probe, err := runStream("live", probeCfg, specs, nil, true)
	if err != nil {
		return nil, fmt.Errorf("L4 probe: %w", err)
	}
	if probe.Span <= 0 {
		return nil, fmt.Errorf("L4 probe span %d", probe.Span)
	}
	capacity := float64(l4Requests) / float64(probe.Span)
	perTick := int64(livenet.DefaultTimescale / time.Microsecond)
	t := &Table{
		ID: "L4",
		Title: fmt.Sprintf("Live saturation: wall-clock Poisson load vs bounded admission (%d nodes, %d offered, %d in-flight slots, shed policy)",
			l4Procs, l4Requests, l4InFlight),
		Claim: "The admission contract is backend-independent: pacing real Submit " +
			"calls from the same seeded arrival generator against the goroutine " +
			"cluster shows the same shape as S5 — completions track offered load " +
			"below the knee, sheds absorb it above, and a mid-stream kill steals " +
			"capacity from service.",
		Columns: []string{"offered load", "fault plan", "offered", "admitted", "shed",
			"completed", "throughput (req/s)", "p99 latency (µs)", "reissued"},
	}
	for _, mult := range []float64{0.25, 1, 4} {
		rate := mult * capacity // requests per wall µs
		arr, err := workload.ParseArrival(fmt.Sprintf("arrive:poisson:%g", rate))
		if err != nil {
			return nil, err
		}
		offsets := arr.Schedule(l4Requests, seed)
		streamUS := offsets[len(offsets)-1] + 1
		killAt := streamUS / perTick / 2
		if killAt < 1 {
			killAt = 1
		}
		for _, pl := range []struct {
			label string
			plan  *core.FaultPlan
		}{
			{"no faults", nil},
			{"burst: 1 kill mid-stream", faults.Burst(l4Procs, 1, killAt, faults.CrashAnnounced, seed)},
		} {
			sr, err := l4PacedStream(cfg, specs, offsets, pl.plan)
			if err != nil {
				return nil, fmt.Errorf("L4 %.0fx/%s: %w", mult, pl.label, err)
			}
			t.Rows = append(t.Rows, []Cell{
				Strf("%gx capacity", mult),
				Str(pl.label),
				i64(int64(sr.Offered)),
				i64(int64(sr.Admitted)),
				i64(int64(sr.Shed)),
				i64(int64(sr.Completed)),
				Float("%.0f", sr.Throughput),
				i64(sr.LatencyP99),
				i64(sr.Reissued),
			})
		}
	}
	t.NoEffects = true // wall-clock rows are independent measurements
	t.Finding = "The live knee matches the simulator's shape: well below capacity " +
		"the paced stream is (nearly) fully admitted; around 1x the two-slot " +
		"shed system already drops the Poisson bunching (classic loss-system " +
		"behavior at critical load); at 4x the slots shed most of the arrival " +
		"excess while completion throughput holds near the probe capacity, and " +
		"the mid-stream kill trades reissues and latency for the same admission " +
		"discipline."
	return t, nil
}

// l4PacedStream opens a live cluster with bounded admission and submits one
// request per schedule offset (wall µs from the stream start), sleeping out
// the gaps — an open-loop load generator on real time.
func l4PacedStream(cfg core.Config, specs []string, offsets []int64, plan *core.FaultPlan) (*core.ServiceReport, error) {
	cfg.MaxInFlight = l4InFlight
	cfg.Admission = "shed"
	cl, err := core.OpenOn("live", cfg)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		if err := cl.Inject(plan); err != nil {
			_, _ = cl.Close()
			return nil, err
		}
	}
	start := time.Now()
	tickets := make([]*core.Ticket, 0, len(specs))
	for i, spec := range specs {
		if wait := time.Duration(offsets[i])*time.Microsecond - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		tk, err := cl.SubmitSpec(spec)
		if err != nil {
			_, _ = cl.Close()
			return nil, err
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		rep, err := tk.Wait()
		if errors.Is(err, core.ErrShed) {
			continue
		}
		if err != nil {
			_, _ = cl.Close()
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
		if rep.Completed {
			if _, err := tk.Verify(); err != nil {
				_, _ = cl.Close()
				return nil, fmt.Errorf("request %d: %w", i, err)
			}
		}
	}
	return cl.Close()
}
