package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
)

// This file holds the B1 wall-time artifact: the profiling targets the
// ROADMAP names (the S1 cell at 64 processors and the L3 service stream)
// timed on the wall clock. Unlike every other artifact, B1's numbers are
// *not* deterministic — they measure the simulator itself, not the
// simulated machine — so B1 is excluded from EXPERIMENTS.md and from the
// parallel-determinism checks: it exists only for the committed BENCH_N.json
// snapshots, where cmd/benchdiff tracks the wall-µs class against the ±25%
// regression ceiling. Virtual-time quantities (makespan vticks, messages)
// ride along as hard-gated sanity columns: they must stay byte-stable no
// matter what the wall clock does.

// B1Targets names the two profile targets.
var B1Targets = []string{"S1-64 mesh cell (fib:13, rollback)", "L3 sim stream (32 requests)"}

// B1Shards lists the kernel shard counts each profile target is timed at.
// The 1-shard rows are the reference kernel (comparable with pre-sharding
// snapshots); the sharded rows must carry the byte-identical virtual
// columns and a wall mean no worse than the reference.
var B1Shards = []int{1, 4}

// B1WallTime times each profile target reps times and reports the minimum
// and mean wall microseconds next to the run's deterministic counters. The
// minimum is the stable quantity (least scheduler noise); the mean is
// informational.
func B1WallTime(reps int) (*Table, error) {
	if reps < 1 {
		reps = 1
	}
	t := &Table{
		ID:    "B1",
		Title: fmt.Sprintf("Benchmark: simulator wall time on the profile targets (%d reps)", reps),
		Claim: "ROADMAP: profile internal/machine hot paths on S1 at 64 processors and the " +
			"L3 stream; optimisations must be pure representation changes, so the virtual " +
			"columns are byte-stable while the wall columns measure the kernel itself.",
		Columns: []string{"profile target", "reps", "wall µs (min)", "wall µs (mean)",
			"makespan", "messages"},
	}
	type target struct {
		name string
		run  func() (makespan, messages int64, err error)
	}
	var targets []target
	for _, eval := range []string{"interp", "compiled"} {
		eval := eval
		for _, shards := range B1Shards {
			shards := shards
			suffix := ""
			if shards > 1 {
				suffix = fmt.Sprintf(", %d shards", shards)
			}
			if eval != "interp" {
				// Interp rows keep their historical names so snapshots stay
				// comparable across the evaluator's introduction; compiled
				// rows are a new tracked series.
				suffix += ", compiled"
			}
			targets = append(targets,
				target{B1Targets[0] + suffix, func() (int64, int64, error) {
					w, err := core.StandardWorkload("fib:13")
					if err != nil {
						return 0, 0, err
					}
					rep, err := core.Config{Procs: 64, Seed: 1, Recovery: "rollback",
						Topology: "mesh", Shards: shards, Eval: eval}.Run(w, nil)
					if err != nil {
						return 0, 0, err
					}
					if rep.Err != nil || !rep.Completed {
						return 0, 0, fmt.Errorf("experiments: B1 S1-64 cell incomplete")
					}
					return int64(rep.Makespan), rep.Sim.Metrics.TotalMessages(), nil
				}},
				target{B1Targets[1] + suffix, func() (int64, int64, error) {
					// The stream driver builds its configs internally, so the
					// shard count and evaluator ride in on the process defaults
					// for the duration of the run (B1 is always timed
					// single-threaded).
					savedShards, savedEval := core.DefaultShards, core.DefaultEval
					core.DefaultShards, core.DefaultEval = shards, eval
					tb, err := L3StreamThroughput("sim", 1)
					core.DefaultShards, core.DefaultEval = savedShards, savedEval
					if err != nil {
						return 0, 0, err
					}
					// Fold the stream table into one deterministic fingerprint: the
					// sum over its numeric cells is byte-stable run to run.
					var sum int64
					for _, row := range tb.Rows {
						for _, c := range row {
							if c.IsNum {
								sum += int64(c.Num)
							}
						}
					}
					return sum, 0, nil
				}})
		}
	}
	for _, tg := range targets {
		// One untimed warm-up run per target: the first run in a fresh
		// process pays one-time costs (topology tables, program compiles,
		// heap growth to the steady-state GC target) that belong to the
		// process, not the target, and min-of-reps only smooths noise
		// within the timed window.
		if _, _, err := tg.run(); err != nil {
			return nil, err
		}
		// Drain cross-target garbage before timing: a millisecond-scale
		// target scheduled after a second-scale one would otherwise absorb
		// one collection of the *previous* target's heap inside its own
		// timed window.
		runtime.GC()
		var minUS, sumUS, makespan, messages int64
		for r := 0; r < reps; r++ {
			start := time.Now()
			m, msgs, err := tg.run()
			us := time.Since(start).Microseconds()
			if err != nil {
				return nil, err
			}
			if us < 1 {
				us = 1
			}
			if r == 0 || us < minUS {
				minUS = us
			}
			sumUS += us
			makespan, messages = m, msgs
		}
		t.Rows = append(t.Rows, []Cell{
			Str(tg.name),
			Int(int64(reps)),
			Int(minUS),
			Int(sumUS / int64(reps)),
			Int(makespan),
			Int(messages),
		})
	}
	t.Finding = "Wall time is the only nondeterministic quantity in the repository: the " +
		"benchdiff wall-µs class is gated with a ±25% ceiling between committed " +
		"snapshots, while the makespan/messages columns must not move at all."
	return t, nil
}
