package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/livenet"
	"repro/internal/topology"
)

// This file holds L3, the service-mode artifact: one open core.Cluster
// serving a stream of requests while fault plans land mid-stream — the
// paper's real promise (functional checkpointing keeps a *running* system
// answering while processors die) measured as throughput and latency
// percentiles rather than single-run makespans. The driver is backend-aware
// (runner.Experiment.TableOn): the committed document carries the
// deterministic simulator stream, and `-backend live` measures the same
// stream shape on the persistent goroutine network.

// l3Procs and l3Requests size the stream: 32 concurrent requests
// multiplexed on a 16-processor mesh (the live stream uses 8 nodes — wall
// clock, not capacity, is its constraint).
const (
	l3Procs     = 16
	l3LiveProcs = 8
	l3Requests  = 32
)

// l3Specs is the request mix: two sizes of fib, a bushy tree, and tak,
// rotated to fill the stream.
func l3Specs() []string {
	base := []string{"fib:11", "fib:12", "tree:2,4", "tak:8,4,2"}
	out := make([]string, l3Requests)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

// runStream opens a cluster, submits every spec, injects the plan, verifies
// each completed request's answer against the sequential reference
// evaluator (§2.1 — a wrong answer fails loudly), and returns the stream
// report. strict additionally requires every request to complete (the live
// stream's contract; on the simulator a timed-out request under a killing
// plan is data, not an error).
func runStream(backend string, cfg core.Config, specs []string, plan *core.FaultPlan, strict bool) (*core.ServiceReport, error) {
	cl, err := core.OpenOn(backend, cfg)
	if err != nil {
		return nil, err
	}
	tickets := make([]*core.Ticket, 0, len(specs))
	for _, spec := range specs {
		tk, err := cl.SubmitSpec(spec)
		if err != nil {
			_, _ = cl.Close()
			return nil, err
		}
		tickets = append(tickets, tk)
	}
	if plan != nil {
		if err := cl.Inject(plan); err != nil {
			_, _ = cl.Close()
			return nil, err
		}
	}
	for i, tk := range tickets {
		rep, err := tk.Wait()
		if err != nil {
			_, _ = cl.Close()
			return nil, fmt.Errorf("request %d (%s): %w", i, specs[i], err)
		}
		if !rep.Completed {
			if strict {
				_, _ = cl.Close()
				return nil, fmt.Errorf("request %d (%s) did not complete within its budget", i, specs[i])
			}
			continue
		}
		if _, err := tk.Verify(); err != nil {
			_, _ = cl.Close()
			return nil, fmt.Errorf("request %d (%s): %w", i, specs[i], err)
		}
	}
	return cl.Close()
}

// L3StreamThroughput is the backend-aware driver (runner passes the
// selected backend).
func L3StreamThroughput(backend string, seed int64) (*Table, error) {
	switch backend {
	case "", "sim":
		return l3Sim(seed)
	case "live":
		return l3Live(seed)
	default:
		return nil, fmt.Errorf("experiments: L3 does not run on backend %q", backend)
	}
}

// l3Sim measures the simulator stream: a probe stream calibrates the span,
// then rollback and splice serve the same admission schedule under no
// faults, a mid-stream burst, and a mid-stream cascade. Every quantity is
// deterministic per seed.
func l3Sim(seed int64) (*Table, error) {
	specs := l3Specs()
	probe, err := runStream("sim", core.Config{Procs: l3Procs, Seed: seed, Recovery: "rollback"},
		specs, nil, true)
	if err != nil {
		return nil, fmt.Errorf("L3 probe: %w", err)
	}
	span := probe.Span
	if span <= 0 {
		return nil, fmt.Errorf("L3 probe span %d", span)
	}
	every := span / int64(2*l3Requests)
	if every < 1 {
		every = 1
	}
	topo, err := topology.ByName("mesh", l3Procs)
	if err != nil {
		return nil, err
	}
	// The stream stretches to ~1.5× the probe span under arrival spacing;
	// place the burst and the cascade origin inside the thick of it.
	plans := []struct {
		label string
		plan  *core.FaultPlan
	}{
		{"no faults", nil},
		{"burst: 3 kills mid-stream", faults.Burst(l3Procs, 3, span/2, faults.CrashAnnounced, seed)},
		{"cascade: 1 wave, p=0.5", faults.Cascade(topo, 5, span/3, span/6, 1, 0.5,
			faults.CrashAnnounced, seed)},
	}
	t := &Table{
		ID: "L3",
		Title: fmt.Sprintf("Service mode: %d-request stream on one open cluster (%d-processor mesh, faults mid-stream)",
			l3Requests, l3Procs),
		Claim: "§2/§3 and the ROADMAP north star: functional checkpointing plus " +
			"rollback/splice keeps a *running* system answering while processors die — " +
			"recovery must proceed concurrently with request service, visible as bounded " +
			"latency percentiles rather than a restarted batch.",
		Columns: []string{"fault plan", "scheme", "completed", "during recovery",
			"stream makespan (vticks)", "messages", "throughput (req/Mtick)",
			"mean latency", "p50 latency", "p99 latency"},
	}
	for _, pl := range plans {
		for _, scheme := range []string{"rollback", "splice"} {
			cfg := core.Config{Procs: l3Procs, Seed: seed, Recovery: scheme,
				ArrivalEvery: every, Deadline: span * 8}
			sr, err := runStream("sim", cfg, specs, pl.plan, false)
			if err != nil {
				return nil, fmt.Errorf("L3 %s/%s: %w", pl.label, scheme, err)
			}
			t.Rows = append(t.Rows, []Cell{
				Str(pl.label),
				Str(scheme),
				Strf("%d/%d", sr.Completed, sr.Requests),
				i64(int64(sr.DuringRecovery)),
				i64(sr.Span),
				i64(sr.Messages),
				Float("%.2f", sr.Throughput),
				i64(sr.LatencyMean),
				i64(sr.LatencyP50),
				i64(sr.LatencyP99),
			})
		}
	}
	// Rows interleave rollback and splice per plan; classify splice against
	// rollback under the identical plan and admission schedule.
	for ri := 0; ri+1 < len(t.Rows); ri += 2 {
		t.Pair(ri, ri+1)
	}
	t.Finding = "One open cluster answers the whole stream: requests whose service " +
		"interval contains a kill still complete with the reference answer, the " +
		"during-recovery count matches the faults' stream position, and the p99 " +
		"latency — not the throughput — is where burst and cascade damage shows, " +
		"because recovery serializes onto the survivors while fresh requests keep " +
		"being admitted."
	return t, nil
}

// l3Live measures the same stream shape on the persistent goroutine
// network: wall-clock throughput (req/s) and latency percentiles with kills
// landing mid-stream, every answer checked against the reference.
func l3Live(seed int64) (*Table, error) {
	specs := l3Specs()
	cfg := core.Config{Procs: l3LiveProcs, Seed: seed, Recovery: "rollback"}
	base, err := runStream("live", cfg, specs, nil, true)
	if err != nil {
		return nil, fmt.Errorf("L3 live base: %w", err)
	}
	// Aim the kills at the middle of the fault-free stream, expressed in the
	// virtual ticks the live backend scales onto the wall clock.
	perTick := int64(livenet.DefaultTimescale / time.Microsecond)
	atTicks := base.Span / perTick / 2
	if atTicks < 1 {
		atTicks = 1
	}
	t := &Table{
		ID: "L3",
		Title: fmt.Sprintf("Service mode: %d-request stream on the live goroutine cluster (%d nodes, kills mid-stream)",
			l3Requests, l3LiveProcs),
		Claim: "HEAL-style online recovery on real concurrency: the persistent node " +
			"network must keep serving the queue while nodes die, with every completed " +
			"answer equal to the sequential reference (§2.1).",
		Columns: []string{"fault plan", "completed", "during recovery",
			"stream makespan (µs)", "live messages", "throughput (req/s)",
			"mean latency (µs)", "p50 latency (µs)", "p99 latency (µs)", "reissued"},
	}
	addRow := func(label string, sr *core.ServiceReport) {
		t.Rows = append(t.Rows, []Cell{
			Str(label),
			Strf("%d/%d", sr.Completed, sr.Requests),
			i64(int64(sr.DuringRecovery)),
			i64(sr.Span),
			i64(sr.Messages),
			Float("%.0f", sr.Throughput),
			i64(sr.LatencyMean),
			i64(sr.LatencyP50),
			i64(sr.LatencyP99),
			i64(sr.Reissued),
		})
	}
	addRow("no faults", base)
	for _, k := range []int{1, 2} {
		plan := faults.Burst(l3LiveProcs, k, atTicks, faults.CrashAnnounced, seed+int64(k))
		sr, err := runStream("live", cfg, specs, plan, true)
		if err != nil {
			return nil, fmt.Errorf("L3 live %d kills: %w", k, err)
		}
		addRow(fmt.Sprintf("burst: %d kill(s) mid-stream", k), sr)
	}
	t.Finding = "The persistent network serves all requests through the kills: " +
		"reissue counters and the during-recovery request count rise with the burst " +
		"size while throughput degrades gracefully — wall-clock measurements are " +
		"machine-dependent and therefore not committed."
	return t, nil
}
