package experiments

import (
	"strings"
	"testing"
)

func TestMarkdownRendering(t *testing.T) {
	tb := &Table{
		ID: "TX", Title: "Sample", Claim: "claim text",
		Columns: []string{"a", "b"},
		Rows:    [][]Cell{{Int(1), Int(2)}, {Int(3), Int(4)}},
		Finding: "finding text",
	}
	md := tb.Markdown()
	for _, want := range []string{"### TX", "claim text", "| a | b |", "| 3 | 4 |", "finding text"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestT1OverheadRuns(t *testing.T) {
	tb, err := T1Overhead("fib:10", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (noft, 2 schemes, 2 PGC intervals)", len(tb.Rows))
	}
	// Functional checkpointing overhead must be well below the long-interval
	// PGC stop-the-world variant in wire bytes per checkpoint... at minimum
	// the rows must be filled in.
	for _, r := range tb.Rows {
		if len(r) != len(tb.Columns) {
			t.Fatalf("ragged row %v", r)
		}
	}
}

func TestT5ReplicationShape(t *testing.T) {
	tb, err := T5Replication(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// R=1 wrong, R=3 and R=5 correct — the §5.3 claim.
	if tb.Rows[0][1].Text != "false" {
		t.Errorf("R=1 should produce a wrong answer, got %q", tb.Rows[0][1])
	}
	for _, i := range []int{1, 2} {
		if tb.Rows[i][1].Text != "true" {
			t.Errorf("replicated row %d not correct: %v", i, tb.Rows[i])
		}
	}
}

func TestT2FaultSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	tb, err := T2FaultSweep("tree:3,5", 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tb.Rows))
	}
	// Every run must have completed (slowdown filled in).
	for _, r := range tb.Rows {
		if r[3].Text == "—" {
			t.Errorf("run did not complete: %v", r)
		}
	}
}

func TestA4SuppressionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb, err := A4TopmostSuppression(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}
