package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/topology"
)

// This file holds the stress artifacts S1–S3. The 1986 experiments exercise
// recovery on small regular grids with one or two hand-placed crashes; the
// stress scenarios push the same machine into the regimes modern recovery
// evaluations target: 64-processor irregular interconnects (S1), failures
// that spread along the network as cascades (S2), and fault densities swept
// to the point where recovery stops working at all (S3). All three resolve
// through internal/runner's registry next to the paper artifacts, so they
// sweep seeds and parallelize like any table.

// S1Procs is the machine size of the topology sweep: a 64-node machine
// (hypercube dimension 6), the scale the ROADMAP's "larger topologies" item
// asks to validate.
const S1Procs = 64

// diameter returns the longest shortest path in the topology.
func diameter(topo topology.Topology) int {
	d := 0
	n := topo.Size()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if h := topo.Dist(topology.NodeID(i), topology.NodeID(j)); h > d {
				d = h
			}
		}
	}
	return d
}

// S1TopologySweep runs the T1 fault-free workload across every registered
// topology kind at n=64 — the regular 1986 shapes next to the
// generator-backed irregular ones — and reports how interconnect shape
// bends makespan and message cost while the recovery protocol stays
// untouched.
func S1TopologySweep(spec string, seed int64) (*Table, error) {
	w, err := core.StandardWorkload(spec)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "S1",
		Title: fmt.Sprintf("Stress: topology sweep (%s, %d processors, rollback, fault-free)", spec, S1Procs),
		Claim: "§1: the recovery protocols assume only that \"a processor makes its best " +
			"effort to communicate with a destination node\" — they are topology-agnostic, " +
			"so the same workload must complete on any connected interconnect, paying only " +
			"hop-count costs.",
		Columns: []string{"topology", "diameter", "makespan", "messages", "hops/msg",
			"wire bytes", "load imbalance (max/mean)"},
	}
	for _, kind := range topology.Kinds() {
		topo, err := topology.ByName(kind, S1Procs)
		if err != nil {
			return nil, err
		}
		// Hand the built topology straight to the machine (Raw.Topo wins
		// over Config.Topology) so the graph isn't constructed twice.
		rep := mustRun(core.Config{Seed: seed, Recovery: "rollback",
			Raw: &machine.Config{Topo: topo}}, w, nil)
		if !rep.Completed {
			return nil, fmt.Errorf("experiments: S1 %s run incomplete", kind)
		}
		msgs := rep.Sim.Metrics.TotalMessages()
		hopsPerMsg := 0.0
		if msgs > 0 {
			hopsPerMsg = float64(rep.Sim.Metrics.HopsOnWire) / float64(msgs)
		}
		t.Rows = append(t.Rows, []Cell{
			Str(topo.Name()),
			i64(int64(diameter(topo))),
			i64(int64(rep.Makespan)),
			i64(msgs),
			Float("%.2f", hopsPerMsg),
			i64(rep.Sim.Metrics.BytesOnWire),
			Float("%.2f", imbalance(rep.Sim.StepsByProc)),
		})
	}
	t.Finding = "Every interconnect completes with the same answer; makespan tracks the " +
		"diameter (ring worst, complete/star best per hop but serialized at the hub), and " +
		"the irregular shapes — torus, random 4-regular — land near the hypercube, showing " +
		"the protocol pays for distance, not regularity."
	return t, nil
}

// s2Cascades defines the S2 plan grid: how many spreading waves, and with
// what per-neighbor spread probability.
var s2Cascades = []struct {
	label  string
	waves  int
	spread float64
}{
	{"single crash", 0, 1.0},
	{"cascade, 1 wave", 1, 1.0},
	{"cascade, 2 waves", 2, 1.0},
	{"cascade, 2 waves, p=0.5", 2, 0.5},
}

// S2CascadeRecovery compares rollback and splice while a failure spreads
// wave by wave across a 64-processor torus: the origin crashes, then its
// neighbors, then theirs. Cascades are the adversarial ordering for
// rollback — each wave kills processors that just absorbed re-placed
// recovery work — while splice keeps salvaging partial results.
func S2CascadeRecovery(seed int64) (*Table, error) {
	const procs = 64
	w, err := core.StandardWorkload("tree:3,6")
	if err != nil {
		return nil, err
	}
	topo, err := topology.ByName("torus", procs)
	if err != nil {
		return nil, err
	}
	base := mustRun(core.Config{Seed: seed, Recovery: "rollback",
		Raw: &machine.Config{Topo: topo}}, w, nil)
	if !base.Completed {
		return nil, fmt.Errorf("experiments: S2 base run incomplete")
	}
	m0 := int64(base.Makespan)
	t := &Table{
		ID:    "S2",
		Title: fmt.Sprintf("Stress: rollback vs splice under cascading faults (tree:3,6, %d-processor torus)", procs),
		Claim: "§4.1/§6: splice \"tries to salvage as much intermediate partial results as " +
			"possible\" while rollback re-executes from reissue points — under faults that " +
			"keep spreading, re-executed work is itself at risk, so the salvage advantage " +
			"should compound.",
		Columns: []string{"fault plan", "crashes", "scheme", "completed", "makespan",
			"slowdown", "twins+reissues", "stranded"},
	}
	for _, cs := range s2Cascades {
		plan := faults.Cascade(topo, 9, m0*3/10, m0/10, cs.waves, cs.spread,
			faults.CrashAnnounced, seed)
		for _, scheme := range []string{"rollback", "splice"} {
			rep := mustRun(core.Config{Seed: seed, Recovery: scheme, Deadline: m0 * 30,
				Raw: &machine.Config{Topo: topo}}, w, plan)
			slow := Dash()
			if rep.Completed {
				slow = ratio(float64(rep.Makespan) / float64(m0))
			}
			t.Rows = append(t.Rows, []Cell{
				Str(cs.label),
				i64(int64(len(plan.Procs()))),
				Str(scheme),
				Strf("%v", rep.Completed),
				i64(int64(rep.Makespan)),
				slow,
				i64(rep.Sim.Metrics.Twins + rep.Sim.Metrics.Reissues),
				i64(rep.Sim.Metrics.Stranded),
			})
		}
	}
	// Rows interleave rollback and splice per cascade plan: classify splice
	// against the rollback row under the identical plan.
	for ri := 0; ri+1 < len(t.Rows); ri += 2 {
		t.Pair(ri, ri+1)
	}
	t.Finding = "Both schemes survive cascades that kill a dozen of 64 processors; the " +
		"slowdown gap widens with each wave because rollback re-executes work the next " +
		"wave destroys again, while splice's twins inherit whatever the dead wave had " +
		"already finished."
	return t, nil
}

// s3Densities is the fault-count sweep of S3 on a 16-processor machine:
// from a single crash up to 12/16 processors lost.
var s3Densities = []int{1, 2, 4, 6, 8, 10, 12}

// S3FaultDensity sweeps simultaneous-crash density on a 16-processor mesh
// until recovery stops completing — the breaking point. Crashed processors
// are drawn per seed (faults.Burst), so multi-seed runs probe different
// victim sets; the survivors must absorb every re-placed task and the
// checkpoints retained for them.
func S3FaultDensity(seed int64) (*Table, error) {
	const procs = 16
	w, err := core.StandardWorkload("fib:13")
	if err != nil {
		return nil, err
	}
	base := mustRun(core.Config{Procs: procs, Seed: seed, Recovery: "rollback"}, w, nil)
	if !base.Completed {
		return nil, fmt.Errorf("experiments: S3 base run incomplete")
	}
	m0 := int64(base.Makespan)
	t := &Table{
		ID:    "S3",
		Title: fmt.Sprintf("Stress: fault density to the breaking point (fib:13, %d-processor mesh)", procs),
		Claim: "§3/§4: recovery re-places a failed processor's tasks on survivors; nothing " +
			"in the protocol bounds how many simultaneous failures it tolerates, so " +
			"capacity — not the protocol — should set the breaking point.",
		Columns: []string{"simultaneous crashes", "scheme", "completed", "makespan",
			"slowdown", "twins+reissues", "stranded"},
	}
	addRow := func(k int, scheme string, rep *core.Report) {
		slow := Dash()
		if rep.Completed {
			slow = ratio(float64(rep.Makespan) / float64(m0))
		}
		// The crash count is an input parameter, not a measurement; keeping
		// it a label makes the effect lines read "6/16 splice" not "row".
		t.Rows = append(t.Rows, []Cell{
			Strf("%d/%d", k, procs),
			Str(scheme),
			Strf("%v", rep.Completed),
			i64(int64(rep.Makespan)),
			slow,
			i64(rep.Sim.Metrics.Twins + rep.Sim.Metrics.Reissues),
			i64(rep.Sim.Metrics.Stranded),
		})
	}
	addRow(0, "rollback", base)
	for _, k := range s3Densities {
		plan := faults.Burst(procs, k, m0*2/5, faults.CrashAnnounced, seed)
		for _, scheme := range []string{"rollback", "splice"} {
			// Cap the deadline well above any successful recovery so broken
			// runs report quickly and the makespan column stays readable.
			rep := mustRun(core.Config{Procs: procs, Seed: seed, Recovery: scheme,
				Deadline: m0 * 20}, w, plan)
			addRow(k, scheme, rep)
		}
	}
	// Row 0 is the fault-free base; the sweep rows interleave rollback and
	// splice at each density: classify splice against rollback at the equal
	// crash draw.
	for ri := 1; ri+1 < len(t.Rows); ri += 2 {
		t.Pair(ri, ri+1)
	}
	t.Finding = "Slowdown grows smoothly with density until roughly 8–10 of 16 processors " +
		"die at once, then recovery stops completing (the capped deadline shows as the " +
		"makespan): the surviving capacity, not the protocol, is what gives out first, " +
		"and splice's breaking point sits at or above rollback's in every seed."
	return t, nil
}
