// Package experiments drives the quantitative reproductions T1–T7, the
// ablations A1–A4 indexed in DESIGN.md, and the stress scenarios S1–S3
// (stress.go) that push past the paper's grids: a topology sweep across
// every interconnect kind at 64 processors, rollback-vs-splice under
// cascading faults, and a fault-density sweep to the recovery breaking
// point. Each driver runs the real machine (plus the modeled PGC baseline
// where the paper's comparator is a modeled scheme) and returns a Table
// whose rows regenerate the corresponding section of EXPERIMENTS.md.
// cmd/experiments and the top-level benchmarks call the same drivers, so
// the documentation, the CLI, and `go test -bench` all report the same
// numbers.
//
// Driver conventions: row 0 of every table is the baseline configuration
// (internal/runner classifies the other rows' effects against it), and all
// randomness — including fault-plan draws — flows from the driver's seed
// argument, so a multi-seed sweep probes different instances while each
// seed stays exactly reproducible.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Table is one experiment's output. Rows hold typed cells: labels stay
// strings, measurements carry their numeric value for seed aggregation.
type Table struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Claim   string   `json:"claim"` // the paper statement under test
	Columns []string `json:"columns"`
	Rows    [][]Cell `json:"rows"`
	Finding string   `json:"finding,omitempty"` // what the measurements show
	// Pairs declares explicit {baseline-row, candidate-row} comparisons for
	// multi-seed effect classification. Sweep tables that interleave two
	// configurations (T2/S2/S3's rollback-vs-splice at equal fault plans)
	// set it so each candidate is judged against its true counterpart; when
	// empty, every row is classified against row 0, the conventional
	// baseline position.
	Pairs [][2]int `json:"pairs,omitempty"`
	// NoEffects suppresses effect classification entirely, for tables whose
	// rows are independent measurements (e.g. L1's per-workload parity rows)
	// with no baseline/candidate relationship to classify.
	NoEffects bool `json:"no_effects,omitempty"`
}

// Pair records an explicit A-vs-B effect comparison: the candidate row is
// classified against the baseline row instead of row 0.
func (t *Table) Pair(baseline, candidate int) *Table {
	t.Pairs = append(t.Pairs, [2]int{baseline, candidate})
	return t
}

// Markdown renders the table for EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "**Paper claim.** %s\n\n", t.Claim)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		texts := make([]string, len(r))
		for i, c := range r {
			texts[i] = c.Text
		}
		b.WriteString("| " + strings.Join(texts, " | ") + " |\n")
	}
	if t.Finding != "" {
		fmt.Fprintf(&b, "\n**Measured.** %s\n", t.Finding)
	}
	return b.String()
}

func i64(v int64) Cell   { return Int(v) }
func pct(v float64) Cell { return Pct(v) }

// ratio renders a slowdown/stretch factor like "1.27x".
func ratio(v float64) Cell { return Float("%.2fx", v) }

// imbalance is max/mean of the per-processor load, 0 when empty.
func imbalance(steps []int64) float64 {
	if len(steps) == 0 {
		return 0
	}
	var sum, max int64
	for _, v := range steps {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(steps))
	return float64(max) / mean
}

// run executes one verified configuration, panicking on setup errors
// (drivers are called with vetted inputs; a failure is a harness bug).
func mustRun(cfg core.Config, w core.Workload, plan *faults.Plan) *core.Report {
	rep, err := cfg.Run(w, plan)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	if rep.Err != nil {
		panic(fmt.Sprintf("experiments: run error: %v", rep.Err))
	}
	return rep
}

// T1Overhead measures fault-free overhead: no fault tolerance at all,
// functional checkpointing (under both recovery schemes — identical
// fault-free behaviour expected), and the periodic-global-checkpointing
// model at two intervals.
func T1Overhead(spec string, procs int, seed int64) (*Table, error) {
	w, err := core.StandardWorkload(spec)
	if err != nil {
		return nil, err
	}
	base := mustRun(core.Config{Procs: procs, Seed: seed, DisableCheckpoints: true,
		Raw: &machine.Config{StateProbeEvery: 64}}, w, nil)
	if !base.Completed {
		return nil, fmt.Errorf("experiments: base run incomplete")
	}
	t := &Table{
		ID:    "T1",
		Title: fmt.Sprintf("Fault-free overhead (%s, %d processors)", spec, procs),
		Claim: "§2/§6: functional checkpointing is concise, distributed and asynchronous " +
			"with little fault-free overhead; periodic global checkpointing needs global " +
			"synchronization, which is potentially inefficient.",
		Columns: []string{"scheme", "makespan", "Δ makespan", "messages", "wire bytes",
			"ckpt storage (peak B)", "stop-the-world"},
	}
	addRow := func(name string, rep *core.Report, pause int64) {
		delta := float64(int64(rep.Makespan)+pause-int64(base.Makespan)) / float64(base.Makespan)
		t.Rows = append(t.Rows, []Cell{
			Str(name),
			i64(int64(rep.Makespan) + pause),
			pct(delta),
			i64(rep.Sim.Metrics.TotalMessages()),
			i64(rep.Sim.Metrics.BytesOnWire),
			i64(rep.Sim.Metrics.CheckpointBytes),
			i64(pause),
		})
	}
	addRow("no fault tolerance", base, 0)
	for _, scheme := range []string{"rollback", "splice"} {
		rep := mustRun(core.Config{Procs: procs, Seed: seed, Recovery: scheme}, w, nil)
		addRow("functional ckpt ("+scheme+")", rep, 0)
	}
	for _, div := range []int64{20, 5} {
		interval := int64(base.Makespan) / div
		out, err := baseline.Model(baseline.DefaultPGCParams(interval), base.Sim)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []Cell{
			Strf("periodic global (T=%d)", interval),
			i64(out.Makespan),
			pct(float64(out.Makespan-out.BaseMakespan) / float64(out.BaseMakespan)),
			i64(base.Sim.Metrics.TotalMessages() + out.ControlMessages),
			i64(base.Sim.Metrics.BytesOnWire + out.SnapshotBytes),
			i64(out.SnapshotBytes),
			i64(out.PauseTotal),
		})
	}
	t.Finding = "Functional checkpointing adds low single-digit percent makespan " +
		"(packet retention is local and asynchronous), while periodic global " +
		"checkpointing pays a stop-the-world pause per interval that grows with " +
		"machine state."
	return t, nil
}

// T2FaultSweep measures recovery cost as a function of when the fault
// strikes: rollback discards everything below the reissue points (cost grows
// with fault time), splice salvages partial results (flatter).
func T2FaultSweep(spec string, procs int, seed int64) (*Table, error) {
	w, err := core.StandardWorkload(spec)
	if err != nil {
		return nil, err
	}
	base := mustRun(core.Config{Procs: procs, Seed: seed, Recovery: "rollback"}, w, nil)
	if !base.Completed {
		return nil, fmt.Errorf("experiments: base run incomplete")
	}
	m0 := int64(base.Makespan)
	steps0 := base.Sim.Metrics.StepsExecuted
	t := &Table{
		ID:    "T2",
		Title: fmt.Sprintf("Recovery cost vs fault time (%s, %d processors, crash of processor 1)", spec, procs),
		Claim: "§6: \"if a fault happens at a later stage of the evaluation, the rollback " +
			"recovery may be costly\"; splice \"tries to salvage as much intermediate " +
			"partial results as possible\".",
		Columns: []string{"fault at", "scheme", "completion", "slowdown", "extra steps", "twins/reissues"},
	}
	for _, frac := range []int64{10, 30, 50, 70, 90} {
		at := m0 * frac / 100
		for _, scheme := range []string{"rollback", "splice"} {
			rep := mustRun(core.Config{Procs: procs, Seed: seed, Recovery: scheme},
				w, faults.Crash(1, at, true))
			slow, extra := Dash(), Dash()
			if rep.Completed {
				slow = ratio(float64(rep.Makespan) / float64(m0))
				extra = i64(rep.Sim.Metrics.StepsExecuted - steps0)
			}
			t.Rows = append(t.Rows, []Cell{
				Strf("%d%%", frac), Str(scheme),
				i64(int64(rep.Makespan)), slow, extra,
				i64(rep.Sim.Metrics.Twins + rep.Sim.Metrics.Reissues),
			})
		}
	}
	// Each fault time interleaves a rollback row and a splice row: classify
	// splice against its rollback counterpart at the equal fault plan, not
	// against the table's first row.
	for ri := 0; ri+1 < len(t.Rows); ri += 2 {
		t.Pair(ri, ri+1)
	}
	t.Finding = "Rollback's extra re-executed work grows with the fault time while " +
		"splice's salvage keeps the late-fault penalty flatter; both always finish " +
		"with the correct answer."
	return t, nil
}

// T3Scale sweeps the processor count: fault-free overhead of functional
// checkpointing stays flat per task, while the PGC model's synchronization
// grows with the machine.
func T3Scale(spec string, sizes []int, seed int64) (*Table, error) {
	w, err := core.StandardWorkload(spec)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "T3",
		Title: fmt.Sprintf("Scaling processors (%s)", spec),
		Claim: "§2: \"periodic global synchronization among a large number of processors " +
			"is potentially inefficient\".",
		Columns: []string{"processors", "makespan (ckpt)", "ckpt msgs/task", "PGC pause total",
			"PGC pause share"},
	}
	for _, n := range sizes {
		rep := mustRun(core.Config{Procs: n, Seed: seed, Recovery: "rollback",
			Raw: &machine.Config{StateProbeEvery: 64}}, w, nil)
		if !rep.Completed {
			return nil, fmt.Errorf("experiments: %d-processor run incomplete", n)
		}
		out, err := baseline.Model(baseline.DefaultPGCParams(int64(rep.Makespan)/10), rep.Sim)
		if err != nil {
			return nil, err
		}
		perTask := float64(rep.Sim.Metrics.MsgTask+rep.Sim.Metrics.MsgTaskAck) / float64(rep.Sim.Metrics.TasksSpawned)
		t.Rows = append(t.Rows, []Cell{
			i64(int64(n)),
			i64(int64(rep.Makespan)),
			Float("%.2f", perTask),
			i64(out.PauseTotal),
			pct(float64(out.PauseTotal) / float64(out.BaseMakespan)),
		})
	}
	t.Finding = "Functional checkpointing's per-task message cost is constant in machine " +
		"size; the modeled global checkpoint pause grows with processor count and state."
	return t, nil
}

// T4MultiFault exercises §5.2: multiple faults on separate branches recover
// in parallel under splice; killing a task's parent and grandparent
// processors strands orphans unless the ancestor-pointer depth K grows.
func T4MultiFault(seed int64) (*Table, error) {
	w, err := core.StandardWorkload("tree:4,5")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "T4",
		Title: "Multiple faults under splice (tree:4,5, 9-processor mesh)",
		Claim: "§5.2: separate-branch failures recover in parallel; \"if both the parent " +
			"and grandparent processors of a task fail simultaneously, the orphan task " +
			"would be stranded\" unless pointers extend to great-grandparents.",
		Columns: []string{"fault plan", "ancestor depth K", "completed", "twins", "stranded", "slowdown"},
	}
	base := mustRun(core.Config{Procs: 9, Seed: seed, Recovery: "splice"}, w, nil)
	m0 := float64(base.Makespan)
	plans := []struct {
		name string
		plan *faults.Plan
	}{
		{"two faults, separate branches", faults.None().
			Add(faults.Fault{At: 800, Proc: 1, Kind: faults.CrashAnnounced}).
			Add(faults.Fault{At: 2000, Proc: 5, Kind: faults.CrashAnnounced})},
		{"simultaneous neighbour faults", faults.None().
			Add(faults.Fault{At: 1200, Proc: 2, Kind: faults.CrashAnnounced}).
			Add(faults.Fault{At: 1200, Proc: 3, Kind: faults.CrashAnnounced})},
	}
	for _, pl := range plans {
		for _, k := range []int{2, 3, 4} {
			rep := mustRun(core.Config{Procs: 9, Seed: seed, Recovery: "splice", AncestorDepth: k},
				w, pl.plan)
			slow := Dash()
			if rep.Completed {
				slow = ratio(float64(rep.Makespan) / m0)
			}
			t.Rows = append(t.Rows, []Cell{
				Str(pl.name), i64(int64(k)),
				Strf("%v", rep.Completed),
				i64(rep.Sim.Metrics.Twins),
				i64(rep.Sim.Metrics.Stranded),
				slow,
			})
		}
	}
	t.Finding = "Splice handles separate-branch and simultaneous faults at every K; " +
		"deeper ancestor chains reduce stranded orphan results (K=2 strands results " +
		"whose parent and grandparent both died; K≥3 escalates past them)."
	return t, nil
}

// T5Replication exercises §5.3: replicated critical-section task packets
// with asynchronous majority voting mask value-corrupting processors; a
// plain run does not.
func T5Replication(seed int64) (*Table, error) {
	prog := lang.CriticalSections(12, 400)
	w := core.Workload{Program: prog, Fn: "main"}
	want, err := lang.RefEval(prog, "main", nil)
	if err != nil {
		return nil, err
	}
	plan := &faults.Plan{Faults: []faults.Fault{{At: 0, Proc: 3, Kind: faults.Corrupt}}}
	t := &Table{
		ID:    "T5",
		Title: "Replicated critical sections vs a value-corrupting processor (12 work calls, 8 processors)",
		Claim: "§5.3: \"Replicating tasks provides a means of emulating hardware redundancy\"; " +
			"a node \"does not have to wait for the slowest answer if it has received the " +
			"identical results from the majority\"; \"The user may specify certain critical " +
			"sections of a program for such a highly reliable operation.\"",
		Columns: []string{"replication R", "answer correct", "votes", "corrupt outvoted",
			"straggler results ignored", "makespan", "task messages"},
	}
	for _, r := range []int{1, 3, 5} {
		cfg := core.Config{Procs: 8, Seed: seed}
		if r > 1 {
			cfg.Replication = map[string]int{"work": r}
		}
		rep := mustRun(cfg, w, plan)
		correct := rep.Completed && rep.Answer != nil && rep.Answer.Equal(want)
		t.Rows = append(t.Rows, []Cell{
			i64(int64(r)),
			Strf("%v", correct),
			i64(rep.Sim.Metrics.Votes),
			i64(rep.Sim.Metrics.VoteMismatches),
			i64(rep.Sim.Metrics.DupResults),
			i64(int64(rep.Makespan)),
			i64(rep.Sim.Metrics.MsgTask),
		})
	}
	t.Finding = "R=1 completes with a wrong answer (crash recovery cannot mask value " +
		"faults); R=3/5 outvote the corrupt processor. Ignored straggler results show " +
		"votes close on majority without waiting for the slowest replica, at ~R× task traffic."
	return t, nil
}

// T6Placement compares dynamic (gradient, random) and static allocation
// through a failure (§3.3).
func T6Placement(seed int64) (*Table, error) {
	w, err := core.StandardWorkload("tree:3,6")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "T6",
		Title: "Allocation strategy and recovery (tree:3,6, 9-processor mesh, rollback)",
		Claim: "§3.3: \"Dynamic allocation does not distinguish between tasks generated " +
			"for recovery and original tasks\"; static allocation needs reassignment " +
			"after a failure and \"the balanced state ... may not be maintained easily\".",
		Columns: []string{"placement", "fault-free makespan", "with fault", "recovery stretch",
			"messages (fault run)", "load imbalance (max/mean steps)"},
	}
	for _, placement := range []string{"gradient", "random", "static", "local"} {
		cfg := core.Config{Procs: 9, Seed: seed, Recovery: "rollback", Placement: placement}
		base := mustRun(cfg, w, nil)
		if !base.Completed {
			return nil, fmt.Errorf("experiments: %s base run incomplete", placement)
		}
		at := int64(base.Makespan) / 2
		rep := mustRun(cfg, w, faults.Crash(1, at, true))
		stretch := Dash()
		if rep.Completed {
			stretch = ratio(float64(rep.Makespan) / float64(base.Makespan))
		}
		t.Rows = append(t.Rows, []Cell{
			Str(placement),
			i64(int64(base.Makespan)),
			i64(int64(rep.Makespan)),
			stretch,
			i64(rep.Sim.Metrics.TotalMessages()),
			Float("%.2f", imbalance(rep.Sim.StepsByProc)),
		})
	}
	t.Finding = "Dynamic policies re-place recovered tasks transparently; static hashing " +
		"remaps the dead processor's slot (deterministic probing) at similar protocol cost " +
		"but concentrates the failed processor's share on one survivor; local-only placement " +
		"cannot spread recovery work at all."
	return t, nil
}

// T7TMR compares §5.4's TMR-style full replication against functional
// checkpointing as a fault-free overhead proposition.
func T7TMR(seed int64) (*Table, error) {
	w, err := core.StandardWorkload("fib:10")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "T7",
		Title: "TMR-style full replication vs functional checkpointing (fib:10, 8 processors)",
		Claim: "§5.4 (Misunas): TMR executes three complete copies of the program; " +
			"§6: functional checkpointing's \"thrust ... is to minimize the overhead " +
			"while the system is in a normal, fault-free operation\".",
		Columns: []string{"scheme", "makespan", "steps executed", "task messages", "wire bytes"},
	}
	ckpt := mustRun(core.Config{Procs: 8, Seed: seed, Recovery: "rollback"}, w, nil)
	t.Rows = append(t.Rows, []Cell{Str("functional ckpt (rollback)"),
		i64(int64(ckpt.Makespan)), i64(ckpt.Sim.Metrics.StepsExecuted),
		i64(ckpt.Sim.Metrics.MsgTask), i64(ckpt.Sim.Metrics.BytesOnWire)})
	tmr := mustRun(core.Config{Procs: 8, Seed: seed,
		Replication: baseline.ReplicateAll(w.Program.Names(), 3)}, w, nil)
	t.Rows = append(t.Rows, []Cell{Str("TMR (R=3 everywhere)"),
		i64(int64(tmr.Makespan)), i64(tmr.Sim.Metrics.StepsExecuted),
		i64(tmr.Sim.Metrics.MsgTask), i64(tmr.Sim.Metrics.BytesOnWire)})
	t.Finding = "TMR pays roughly 3× compute and task traffic in every fault-free run; " +
		"functional checkpointing defers nearly all cost to the (rare) recovery path."
	return t, nil
}

// A1EagerVsLazyAbort quantifies the orphan garbage-collection choice.
func A1EagerVsLazyAbort(seed int64) (*Table, error) {
	w, err := core.StandardWorkload("tree:3,6")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "A1",
		Title: "Ablation: eager vs lazy orphan abortion (rollback, tree:3,6)",
		Claim: "§3.2/§3.4: abandoned dependents should be aborted and garbage-collected; " +
			"orphans are otherwise harmless but waste work.",
		Columns: []string{"mode", "completed", "aborted", "wasted steps", "leaked tasks", "makespan"},
	}
	base := mustRun(core.Config{Procs: 9, Seed: seed, Recovery: "rollback"}, w, nil)
	at := int64(base.Makespan) / 2
	for _, scheme := range []string{"rollback", "rollback-lazy"} {
		rep := mustRun(core.Config{Procs: 9, Seed: seed, Recovery: scheme}, w, faults.Crash(1, at, true))
		t.Rows = append(t.Rows, []Cell{
			Str(scheme), Strf("%v", rep.Completed),
			i64(rep.Sim.Metrics.TasksAborted), i64(rep.Sim.Metrics.StepsWasted),
			i64(rep.Sim.Metrics.TasksLeaked), i64(int64(rep.Makespan)),
		})
	}
	t.Finding = "Eager scoped abortion collects the doomed fragments immediately; lazy " +
		"mode lets orphans run to their undeliverable ends, wasting steps and leaking " +
		"wedged tasks that never learn their suppliers died."
	return t, nil
}

// A2CheckpointStorage reports peak retained checkpoint bytes by workload.
func A2CheckpointStorage(seed int64) (*Table, error) {
	t := &Table{
		ID:    "A2",
		Title: "Ablation: checkpoint storage by workload (8 processors)",
		Claim: "§2: \"nonvolatile storage for storing system states may not be necessary\" — " +
			"checkpoints live on peer processors and are released as children return.",
		Columns: []string{"workload", "tasks", "checkpoints", "peak storage (B)", "peak/task (B)"},
	}
	for _, spec := range []string{"fib:12", "tak:8,4,2", "nqueens:5", "tree:4,4", "msort:24"} {
		w, err := core.StandardWorkload(spec)
		if err != nil {
			return nil, err
		}
		rep := mustRun(core.Config{Procs: 8, Seed: seed, Recovery: "splice"}, w, nil)
		if !rep.Completed {
			return nil, fmt.Errorf("experiments: %s incomplete", spec)
		}
		perTask := float64(rep.Sim.Metrics.CheckpointBytes) / float64(rep.Sim.Metrics.TasksSpawned)
		t.Rows = append(t.Rows, []Cell{
			Str(spec), i64(rep.Sim.Metrics.TasksSpawned), i64(rep.Sim.Metrics.Checkpoints),
			i64(rep.Sim.Metrics.CheckpointBytes), Float("%.1f", perTask),
		})
	}
	t.Finding = "Peak retained storage is a small constant per in-flight task (packet " +
		"bytes), far below any global-snapshot footprint; release-on-return keeps it " +
		"proportional to the active frontier, not the whole history."
	return t, nil
}

// A3DetectionLatency sweeps the heartbeat interval against silent-crash
// recovery time.
func A3DetectionLatency(seed int64) (*Table, error) {
	w, err := core.StandardWorkload("fib:12")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "A3",
		Title: "Ablation: heartbeat period vs silent-crash recovery (fib:12, rollback)",
		Claim: "§1: failures may be detected \"via coding or timeout mechanisms\"; detection " +
			"latency is part of every recovery.",
		Columns: []string{"heartbeat period", "detect latency", "completion", "slowdown"},
	}
	base := mustRun(core.Config{Procs: 8, Seed: seed, Recovery: "rollback"}, w, nil)
	at := int64(base.Makespan) / 2
	for _, hb := range []int64{100, 250, 500, 1000} {
		cfg := core.Config{Procs: 8, Seed: seed, Recovery: "rollback",
			Raw: &machine.Config{HeartbeatEvery: sim.Time(hb)}}
		rep := mustRun(cfg, w, faults.Crash(1, at, false))
		lat := Dash()
		if rep.Sim.Metrics.FirstDetections > 0 {
			lat = i64(rep.Sim.Metrics.DetectLatencySum / rep.Sim.Metrics.FirstDetections)
		}
		slow := Dash()
		if rep.Completed {
			slow = ratio(float64(rep.Makespan) / float64(base.Makespan))
		}
		t.Rows = append(t.Rows, []Cell{i64(hb), lat, i64(int64(rep.Makespan)), slow})
	}
	t.Finding = "Detection latency scales with the heartbeat period and feeds directly " +
		"into completion time; ack-timeout detection bounds it when traffic to the dead " +
		"processor exists."
	return t, nil
}

// A4TopmostSuppression quantifies the §3.2 topmost rule (the B5 case).
// Shadowing needs an ancestor and its genealogical dependent checkpointed by
// the same processor onto the same (failed) processor, so the setup uses few
// processors and a deep tree to make such pairs common.
func A4TopmostSuppression(seed int64) (*Table, error) {
	w, err := core.StandardWorkload("tree:2,9")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "A4",
		Title: "Ablation: topmost suppression on/off (rollback, tree:2,9, 4 processors)",
		Claim: "§3: \"an efficient way to salvage a group of genealogical dependents is to " +
			"redo only the most ancient ancestor and ignore the rest\" — reissuing shadowed " +
			"checkpoints (B5) \"only increases the system overhead\".",
		Columns: []string{"mode", "reissues", "suppressed", "wasted steps", "total steps", "makespan"},
	}
	base := mustRun(core.Config{Procs: 4, Seed: seed, Recovery: "rollback"}, w, nil)
	at := int64(base.Makespan) / 2
	for _, scheme := range []string{"rollback", "rollback-nosuppress"} {
		rep := mustRun(core.Config{Procs: 4, Seed: seed, Recovery: scheme}, w, faults.Crash(1, at, true))
		t.Rows = append(t.Rows, []Cell{
			Str(scheme), i64(rep.Sim.Metrics.Reissues), i64(rep.Sim.Metrics.Suppressed),
			i64(rep.Sim.Metrics.StepsWasted), i64(rep.Sim.Metrics.StepsExecuted), i64(int64(rep.Makespan)),
		})
	}
	t.Finding = "Disabling the topmost rule injects extra reissue packets for genealogical " +
		"dependents whose parents are themselves being regenerated — pure overhead, as the " +
		"paper's B5 analysis predicts (\"Reactivation of B5 only increases the system " +
		"overhead\"); the suppressed variant reaches the same answer with fewer packets."
	return t, nil
}

// All runs every experiment and returns the tables in report order.
func All(seed int64) ([]*Table, error) {
	var out []*Table
	type gen func() (*Table, error)
	for _, g := range []gen{
		func() (*Table, error) { return T1Overhead("fib:13", 8, seed) },
		func() (*Table, error) { return T2FaultSweep("tree:3,6", 9, seed) },
		func() (*Table, error) { return T3Scale("tree:3,6", []int{4, 9, 16, 36, 64}, seed) },
		func() (*Table, error) { return T4MultiFault(seed) },
		func() (*Table, error) { return T5Replication(seed) },
		func() (*Table, error) { return T6Placement(seed) },
		func() (*Table, error) { return T7TMR(seed) },
		func() (*Table, error) { return A1EagerVsLazyAbort(seed) },
		func() (*Table, error) { return A2CheckpointStorage(seed) },
		func() (*Table, error) { return A3DetectionLatency(seed) },
		func() (*Table, error) { return A4TopmostSuppression(seed) },
		func() (*Table, error) { return S1TopologySweep("fib:13", seed) },
		func() (*Table, error) { return S2CascadeRecovery(seed) },
		func() (*Table, error) { return S3FaultDensity(seed) },
	} {
		tb, err := g()
		if err != nil {
			return nil, err
		}
		out = append(out, tb)
	}
	return out, nil
}
