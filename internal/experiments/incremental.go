package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/topology"
)

// This file holds S6, the online-incremental-recovery artifact: the third
// recovery scheme ("incremental" — demand-prioritised, paced reissue of a
// dead processor's checkpoints) measured head-to-head against rollback and
// splice. The one-shot cells replay the S2/S3 fault regimes (a mid-run
// burst on the 16-processor mesh, a cascade on the 64-processor torus); the
// streamed cells replay the L3/S5 service shape — one open cluster serving
// a request stream while a burst lands mid-traffic — where the headline
// column is how many requests *complete during the recovery window*, i.e.
// are answered while the system is repairing around them.

// s6Schemes is the three-way comparison every S6 cell runs, rollback first
// (the baseline row of each group).
var s6Schemes = []string{"rollback", "splice", "incremental"}

// s6Row renders one unified row. One-shot cells leave the stream-only
// columns dashed; streamed cells leave the slowdown column dashed (their
// span is set by the admission schedule, not the recovery scheme).
func (t *Table) s6Row(cell, scheme string, completed Cell, during Cell,
	span int64, slow Cell, recov int64, paced int64, p99 Cell) {
	t.Rows = append(t.Rows, []Cell{
		Str(cell), Str(scheme), completed, during,
		i64(span), slow, i64(recov), i64(paced), p99,
	})
}

// s6PairGroups declares the effect comparisons: rows come in groups of
// three (rollback, splice, incremental per cell); splice and incremental
// are each classified against the rollback row of their own cell.
func (t *Table) s6PairGroups() {
	for r := 0; r+2 < len(t.Rows); r += len(s6Schemes) {
		t.Pair(r, r+1)
		t.Pair(r, r+2)
	}
}

// S6IncrementalRecovery measures the incremental scheme against rollback
// and splice under one-shot fault regimes and under a live request stream.
func S6IncrementalRecovery(seed int64) (*Table, error) {
	t := &Table{
		ID:    "S6",
		Title: "Online incremental recovery: rollback vs splice vs paced demand-driven reissue",
		Claim: "§3/§6: recovery traffic competes with normal traffic on the survivors — " +
			"reissuing a dead processor's whole checkpoint set at detection time is a " +
			"burst the stream must absorb. Incremental recovery re-disperses the lost " +
			"tasks one at a time, critical-path first, so a *running* service keeps " +
			"answering while the hole is repaired.",
		Columns: []string{"cell", "scheme", "completed", "during recovery",
			"makespan / span", "slowdown", "twins+reissues", "paced", "p99 latency"},
	}
	if err := s6OneShot(t, seed); err != nil {
		return nil, err
	}
	if err := s6Streams(t, seed); err != nil {
		return nil, err
	}
	t.s6PairGroups()
	t.Finding = "All three schemes finish every one-shot regime with the reference " +
		"answer; incremental trades a longer repair tail (paced reissues spread over " +
		"the drain cadence) for a quieter recovery. The streamed cells show where that " +
		"matters: under a mid-stream burst the paced scheme completes at least as many " +
		"requests during the recovery window as rollback or splice, because the " +
		"survivors serve fresh requests instead of absorbing a detection-time " +
		"reissue-and-abort storm."
	return t, nil
}

// s6OneShot runs the S2/S3-style regimes: a 4/16 burst on the mesh and a
// one-wave cascade on the 64-processor torus, three schemes each.
func s6OneShot(t *Table, seed int64) error {
	// Burst regime (S3 shape): fib:13, 16-processor mesh, 4 simultaneous
	// crashes at 40% of the fault-free makespan.
	wb, err := core.StandardWorkload("fib:13")
	if err != nil {
		return err
	}
	base := mustRun(core.Config{Procs: 16, Seed: seed, Recovery: "rollback"}, wb, nil)
	if !base.Completed {
		return fmt.Errorf("experiments: S6 burst base run incomplete")
	}
	m0 := int64(base.Makespan)
	burst := faults.Burst(16, 4, m0*2/5, faults.CrashAnnounced, seed)
	for _, scheme := range s6Schemes {
		rep := mustRun(core.Config{Procs: 16, Seed: seed, Recovery: scheme,
			Deadline: m0 * 20}, wb, burst)
		s6OneShotRow(t, "burst 4/16 (fib:13, mesh 16)", scheme, rep, m0)
	}

	// Cascade regime (S2 shape): tree:3,6 on the 64-processor torus, one
	// wave spreading from processor 9.
	wc, err := core.StandardWorkload("tree:3,6")
	if err != nil {
		return err
	}
	topo, err := topology.ByName("torus", 64)
	if err != nil {
		return err
	}
	cbase := mustRun(core.Config{Seed: seed, Recovery: "rollback",
		Raw: &machine.Config{Topo: topo}}, wc, nil)
	if !cbase.Completed {
		return fmt.Errorf("experiments: S6 cascade base run incomplete")
	}
	c0 := int64(cbase.Makespan)
	cascade := faults.Cascade(topo, 9, c0*3/10, c0/10, 1, 1.0, faults.CrashAnnounced, seed)
	for _, scheme := range s6Schemes {
		rep := mustRun(core.Config{Seed: seed, Recovery: scheme, Deadline: c0 * 30,
			Raw: &machine.Config{Topo: topo}}, wc, cascade)
		s6OneShotRow(t, "cascade 1 wave (tree:3,6, torus 64)", scheme, rep, c0)
	}
	return nil
}

// s6OneShotRow adds one one-shot row; m0 is the regime's fault-free
// rollback makespan for the slowdown column.
func s6OneShotRow(t *Table, cell, scheme string, rep *core.Report, m0 int64) {
	slow := Dash()
	if rep.Completed {
		slow = ratio(float64(rep.Makespan) / float64(m0))
	}
	t.s6Row(cell, scheme,
		Strf("%v", rep.Completed), Dash(),
		int64(rep.Makespan), slow,
		rep.Sim.Metrics.Twins+rep.Sim.Metrics.Reissues,
		rep.Sim.Metrics.PacedReissues, Dash())
}

// s6Streams runs the L3-shaped service cells: a probe stream calibrates the
// span, then the three schemes serve the identical admission schedule with
// a burst landing mid-stream. The "during recovery" column — completed
// requests whose service interval contains a fault stamp — is the artifact's
// headline metric.
func s6Streams(t *Table, seed int64) error {
	specs := l3Specs()
	probe, err := runStream("sim", core.Config{Procs: l3Procs, Seed: seed,
		Recovery: "rollback"}, specs, nil, true)
	if err != nil {
		return fmt.Errorf("S6 probe: %w", err)
	}
	span := probe.Span
	if span <= 0 {
		return fmt.Errorf("S6 probe span %d", span)
	}
	every := span / int64(2*l3Requests)
	if every < 1 {
		every = 1
	}
	cells := []struct {
		label string
		kills int
	}{
		{"stream + burst 3/16 mid-stream", 3},
		{"stream + burst 5/16 mid-stream", 5},
	}
	for _, cl := range cells {
		plan := faults.Burst(l3Procs, cl.kills, span/2, faults.CrashAnnounced, seed)
		for _, scheme := range s6Schemes {
			cfg := core.Config{Procs: l3Procs, Seed: seed, Recovery: scheme,
				ArrivalEvery: every, Deadline: span * 8}
			sr, err := runStream("sim", cfg, specs, plan, false)
			if err != nil {
				return fmt.Errorf("S6 %s/%s: %w", cl.label, scheme, err)
			}
			m := sr.Totals.Sim.Metrics
			t.s6Row(cl.label, scheme,
				Strf("%d/%d", sr.Completed, sr.Requests),
				i64(int64(sr.DuringRecovery)),
				sr.Span, Dash(),
				m.Twins+m.Reissues, m.PacedReissues,
				i64(sr.LatencyP99))
		}
	}
	return nil
}
