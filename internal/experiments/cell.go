package experiments

import (
	"encoding/json"
	"fmt"
)

// Cell is one table cell: the rendered text plus, when the cell is a
// measurement, the numeric value it was rendered from. Carrying the number
// alongside the text lets internal/runner aggregate multi-seed tables
// without re-parsing strings (and without guessing which cells are data).
type Cell struct {
	// Text is the rendered form used in markdown output.
	Text string
	// Num is the underlying measurement; meaningful only when IsNum is set.
	Num float64
	// IsNum marks the cell as numeric data eligible for aggregation.
	IsNum bool
	// Fmt records how Num was rendered ("" = bare number, FmtPercent, or a
	// fmt verb like "%.2fx"), so aggregated means keep the cell's unit.
	Fmt string
}

// FmtPercent marks a fraction rendered as a signed percent ("+6.1%").
const FmtPercent = "pct"

// RenderNum formats v the way this cell's own value was formatted.
func (c Cell) RenderNum(v float64) string {
	switch c.Fmt {
	case "":
		if v == float64(int64(v)) {
			return fmt.Sprintf("%d", int64(v))
		}
		if v >= 100 || v <= -100 {
			return fmt.Sprintf("%.0f", v)
		}
		return fmt.Sprintf("%.3g", v)
	case FmtPercent:
		return fmt.Sprintf("%+.1f%%", v*100)
	default:
		return fmt.Sprintf(c.Fmt, v)
	}
}

// Str builds a non-numeric label cell.
func Str(s string) Cell { return Cell{Text: s} }

// Strf builds a non-numeric label cell from a format string.
func Strf(format string, args ...any) Cell { return Str(fmt.Sprintf(format, args...)) }

// Int builds a numeric cell rendered as a plain integer.
func Int(v int64) Cell { return Cell{Text: fmt.Sprintf("%d", v), Num: float64(v), IsNum: true} }

// Num builds a numeric cell with explicit rendered text and an optional
// format hint for aggregation (may be "" when no re-rendering is needed).
func Num(v float64, text, format string) Cell {
	return Cell{Text: text, Num: v, IsNum: true, Fmt: format}
}

// Float builds a numeric cell rendered with the given fmt verb (e.g. "%.2f").
func Float(format string, v float64) Cell { return Num(v, fmt.Sprintf(format, v), format) }

// Pct builds a numeric cell holding a fraction, rendered as a signed percent.
func Pct(v float64) Cell {
	c := Cell{Num: v, IsNum: true, Fmt: FmtPercent}
	c.Text = c.RenderNum(v)
	return c
}

// Dash is the placeholder cell for measurements that do not exist (e.g. the
// slowdown of a run that never completed).
func Dash() Cell { return Str("—") }

// String returns the rendered text.
func (c Cell) String() string { return c.Text }

// MarshalJSON emits {"text":...} for labels and {"text":...,"num":...} for
// measurements, so JSON consumers can tell data from decoration.
func (c Cell) MarshalJSON() ([]byte, error) {
	if c.IsNum {
		return json.Marshal(struct {
			Text string  `json:"text"`
			Num  float64 `json:"num"`
			Fmt  string  `json:"fmt,omitempty"`
		}{c.Text, c.Num, c.Fmt})
	}
	return json.Marshal(struct {
		Text string `json:"text"`
	}{c.Text})
}

// UnmarshalJSON accepts both cell forms.
func (c *Cell) UnmarshalJSON(data []byte) error {
	var raw struct {
		Text string   `json:"text"`
		Num  *float64 `json:"num"`
		Fmt  string   `json:"fmt"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	c.Text = raw.Text
	c.Fmt = raw.Fmt
	if raw.Num != nil {
		c.Num, c.IsNum = *raw.Num, true
	} else {
		c.Num, c.IsNum = 0, false
	}
	return nil
}
