// Package balance implements task placement. §3.3 of the paper ties recovery
// quality to the allocation strategy: "the ability to recover by simply
// reissuing checkpointed tasks depends on the availability of a dynamic
// allocation strategy, such as the gradient model approach [10]" — reference
// [10] being Lin & Keller's own gradient-model load balancer, which is
// implemented here alongside the static and random baselines the section
// contrasts it with.
package balance

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/proto"
)

// View is the information a placement policy may consult. It deliberately
// exposes only locally available knowledge plus neighbor gossip, matching
// the partitioned-memory assumption: no global queue state exists.
// (Random placement additionally assumes a task can be addressed to any
// processor, which the paper's dynamic-allocation discussion permits.)
type View interface {
	// Self is the deciding processor.
	Self() proto.ProcID
	// Size is the number of processors in the machine.
	Size() int
	// QueueLen is the local ready-queue length.
	QueueLen() int
	// Neighbors lists the direct neighbors in ascending order.
	Neighbors() []proto.ProcID
	// NeighborGradient returns the last gradient value gossiped by a
	// neighbor (MaxGradient if never heard from).
	NeighborGradient(p proto.ProcID) int
	// IsFaulty reports whether p is believed failed.
	IsFaulty(p proto.ProcID) bool
	// Rand is the deterministic RNG of the simulation.
	Rand() *rand.Rand
}

// Mode distinguishes placement styles.
type Mode int

// Placement modes.
const (
	// Direct policies choose a final destination at spawn time; the packet
	// is routed straight there.
	Direct Mode = iota
	// HopByHop policies decide one hop at a time; every intermediate
	// processor may settle or forward the packet (the gradient model's
	// transient states b/d of Figure 6).
	HopByHop
)

// MaxGradient is the "infinitely far from idle" value.
const MaxGradient = 1 << 20

// liveView is an optional View extension: a view that maintains its faulty
// count lets Random place without scanning the whole faulty bitmap. The
// count must agree exactly with IsFaulty — live processors are the Intn
// modulus, so a drifting count would change every subsequent draw.
type liveView interface {
	FaultyCount() int
}

// Policy decides where spawned tasks go.
type Policy interface {
	Name() string
	Mode() Mode
	// PickDest (Direct mode) returns the destination for a fresh packet.
	PickDest(v View, key proto.TaskKey) proto.ProcID
	// Step (HopByHop mode) returns the next hop, or Self() to settle here.
	// hops is the distance the packet has already traveled.
	Step(v View, hops int) proto.ProcID
}

// --- Local ---

// Local places every task on the spawning processor. It is the degenerate
// baseline (no distribution, no parallelism across nodes).
type Local struct{}

// NewLocal returns the local-only policy.
func NewLocal() *Local { return &Local{} }

func (*Local) Name() string { return "local" }
func (*Local) Mode() Mode   { return Direct }
func (*Local) PickDest(v View, _ proto.TaskKey) proto.ProcID {
	return v.Self()
}
func (*Local) Step(v View, _ int) proto.ProcID { return v.Self() }

// --- Random ---

// Random places each task on a uniformly random non-faulty processor.
// It is the classic dynamic-allocation strawman: fully distributed and
// fault-oblivious at spawn time.
type Random struct{}

// NewRandom returns the random policy.
func NewRandom() *Random { return &Random{} }

func (*Random) Name() string { return "random" }
func (*Random) Mode() Mode   { return Direct }

func (*Random) PickDest(v View, _ proto.TaskKey) proto.ProcID {
	n := v.Size()
	// Count live candidates, draw one uniformly, then walk to it: one Intn
	// over the live count, exactly the draw the slice-collecting version
	// made, without materializing the candidate list. A view that tracks
	// its faulty count (liveView) skips the counting pass, and — in the
	// all-live case, which is every draw of a fault-free run — the walk
	// too: the k-th live processor of an all-live machine is processor k.
	live, counted := 0, false
	if lv, ok := v.(liveView); ok {
		live, counted = n-lv.FaultyCount(), true
	} else {
		for i := 0; i < n; i++ {
			if !v.IsFaulty(proto.ProcID(i)) {
				live++
			}
		}
	}
	if live <= 0 {
		return v.Self()
	}
	k := v.Rand().Intn(live)
	if counted && live == n {
		return proto.ProcID(k)
	}
	for i := 0; i < n; i++ {
		if p := proto.ProcID(i); !v.IsFaulty(p) {
			if k == 0 {
				return p
			}
			k--
		}
	}
	return v.Self()
}

func (r *Random) Step(v View, _ int) proto.ProcID { return r.PickDest(v, proto.TaskKey{}) }

// --- StaticHash ---

// StaticHash places each task on hash(stamp) mod N — the static allocation
// §3.3 warns about: placement is a pure function of task identity, so after
// a failure the hash slot of the dead processor must be re-mapped and
// descendants' linkage updated, which the machine counts as fix-up traffic.
type StaticHash struct{}

// NewStaticHash returns the static-hash policy.
func NewStaticHash() *StaticHash { return &StaticHash{} }

func (*StaticHash) Name() string { return "static" }
func (*StaticHash) Mode() Mode   { return Direct }

func (*StaticHash) PickDest(v View, key proto.TaskKey) proto.ProcID {
	n := v.Size()
	h := fnv.New32a()
	h.Write([]byte(key.Stamp.Key()))
	var repBuf [8]byte
	for i := 0; i < 8; i++ {
		repBuf[i] = byte(key.Rep >> (8 * i))
	}
	h.Write(repBuf[:])
	slot := int(h.Sum32()) % n
	if slot < 0 {
		slot += n
	}
	// Deterministic linear probing past faulty processors: this is the
	// "reassignment" §3.3 describes for static allocation after a failure.
	for i := 0; i < n; i++ {
		p := proto.ProcID((slot + i) % n)
		if !v.IsFaulty(p) {
			return p
		}
	}
	return v.Self()
}

func (s *StaticHash) Step(v View, _ int) proto.ProcID { return s.PickDest(v, proto.TaskKey{}) }

// --- Gradient ---

// Gradient is the demand-driven gradient model of Lin & Keller [10]: idle
// processors are gradient 0; every other processor's gradient is one more
// than its nearest neighbor's, so the gradient field encodes the hop
// distance toward the nearest idle processor. Overloaded processors push
// spawned tasks down the gradient, one hop at a time; packets settle when
// they reach lightly loaded territory or exhaust their hop budget.
type Gradient struct {
	// IdleThreshold: queue length at or below which a processor is idle
	// (gradient 0).
	IdleThreshold int
	// SettleThreshold: queue length at or below which an in-transit packet
	// settles here instead of forwarding.
	SettleThreshold int
	// TTL: maximum hops a packet may travel before settling unconditionally
	// (prevents livelock when the gradient field is stale).
	TTL int
}

// NewGradient returns a gradient policy with the given parameters; zero
// values select the defaults (idle ≤ 0 queued, settle ≤ 1 queued, TTL 8).
func NewGradient(idleThreshold, settleThreshold, ttl int) *Gradient {
	g := &Gradient{IdleThreshold: idleThreshold, SettleThreshold: settleThreshold, TTL: ttl}
	if g.SettleThreshold <= 0 {
		g.SettleThreshold = 1
	}
	if g.TTL <= 0 {
		g.TTL = 8
	}
	return g
}

func (g *Gradient) Name() string {
	return fmt.Sprintf("gradient(idle≤%d,settle≤%d,ttl=%d)", g.IdleThreshold, g.SettleThreshold, g.TTL)
}

func (*Gradient) Mode() Mode { return HopByHop }

// PickDest in direct mode is unused for gradient; it settles locally.
func (g *Gradient) PickDest(v View, _ proto.TaskKey) proto.ProcID { return v.Self() }

// Step implements the hop-by-hop push: settle if local load is light, the
// hop budget is spent, or no live neighbor is closer to an idle processor;
// otherwise forward to the neighbor with the smallest gradient (ties to the
// lowest id, for determinism).
func (g *Gradient) Step(v View, hops int) proto.ProcID {
	if hops >= g.TTL {
		return v.Self()
	}
	if v.QueueLen() <= g.SettleThreshold {
		return v.Self()
	}
	self := v.Self()
	myG := g.LocalGradient(v)
	best := self
	bestG := myG
	for _, nb := range v.Neighbors() {
		if v.IsFaulty(nb) {
			continue
		}
		if ng := v.NeighborGradient(nb); ng < bestG {
			best, bestG = nb, ng
		}
	}
	return best
}

// LocalGradient computes this processor's gradient value from its queue and
// its neighbors' gossiped gradients. The machine gossips the result to
// neighbors whenever it changes.
func (g *Gradient) LocalGradient(v View) int {
	if v.QueueLen() <= g.IdleThreshold {
		return 0
	}
	minNb := MaxGradient
	for _, nb := range v.Neighbors() {
		if v.IsFaulty(nb) {
			continue
		}
		if ng := v.NeighborGradient(nb); ng < minNb {
			minNb = ng
		}
	}
	if minNb >= MaxGradient {
		return MaxGradient
	}
	return minNb + 1
}

// --- Pinned ---

// Pinned maps specific level stamps to specific processors, falling back to
// another policy for unmapped tasks. It exists to reproduce the paper's
// figures exactly: Figure 1 prescribes which task runs on which processor.
type Pinned struct {
	// Map keys are stamp.Stamp.Key() values.
	Map map[string]proto.ProcID
	// Fallback handles unmapped tasks; defaults to Random.
	Fallback Policy
}

// NewPinned builds a pinned policy over stamp-key → processor assignments.
func NewPinned(m map[string]proto.ProcID, fallback Policy) *Pinned {
	if fallback == nil {
		fallback = NewRandom()
	}
	return &Pinned{Map: m, Fallback: fallback}
}

func (*Pinned) Name() string { return "pinned" }
func (*Pinned) Mode() Mode   { return Direct }

func (p *Pinned) PickDest(v View, key proto.TaskKey) proto.ProcID {
	if dest, ok := p.Map[key.Stamp.Key()]; ok && !v.IsFaulty(dest) {
		return dest
	}
	return p.Fallback.PickDest(v, key)
}

func (p *Pinned) Step(v View, hops int) proto.ProcID { return p.Fallback.Step(v, hops) }

// ByName constructs a policy from a CLI spec: "local", "random", "static",
// "gradient".
func ByName(name string) (Policy, error) {
	switch name {
	case "local":
		return NewLocal(), nil
	case "random":
		return NewRandom(), nil
	case "static":
		return NewStaticHash(), nil
	case "gradient":
		return NewGradient(0, 0, 0), nil
	default:
		return nil, fmt.Errorf("balance: unknown policy %q", name)
	}
}
