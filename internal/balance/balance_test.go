package balance

import (
	"math/rand"
	"testing"

	"repro/internal/proto"
	"repro/internal/stamp"
)

// fakeView is a scriptable View for policy tests.
type fakeView struct {
	self      proto.ProcID
	size      int
	queue     int
	neighbors []proto.ProcID
	grads     map[proto.ProcID]int
	faulty    map[proto.ProcID]bool
	rng       *rand.Rand
}

func (f *fakeView) Self() proto.ProcID           { return f.self }
func (f *fakeView) Size() int                    { return f.size }
func (f *fakeView) QueueLen() int                { return f.queue }
func (f *fakeView) Neighbors() []proto.ProcID    { return f.neighbors }
func (f *fakeView) IsFaulty(p proto.ProcID) bool { return f.faulty[p] }
func (f *fakeView) Rand() *rand.Rand             { return f.rng }
func (f *fakeView) NeighborGradient(p proto.ProcID) int {
	if g, ok := f.grads[p]; ok {
		return g
	}
	return MaxGradient
}

func newFake() *fakeView {
	return &fakeView{
		self: 0, size: 4,
		neighbors: []proto.ProcID{1, 2},
		grads:     map[proto.ProcID]int{},
		faulty:    map[proto.ProcID]bool{},
		rng:       rand.New(rand.NewSource(1)),
	}
}

func key(path ...uint32) proto.TaskKey {
	return proto.TaskKey{Stamp: stamp.FromPath(path...)}
}

func TestLocalAlwaysSelf(t *testing.T) {
	p := NewLocal()
	v := newFake()
	if p.Mode() != Direct {
		t.Fatal("local mode")
	}
	if got := p.PickDest(v, key(1)); got != v.self {
		t.Fatalf("PickDest = %d", got)
	}
	if got := p.Step(v, 0); got != v.self {
		t.Fatalf("Step = %d", got)
	}
}

func TestRandomAvoidsFaulty(t *testing.T) {
	p := NewRandom()
	v := newFake()
	v.faulty[1] = true
	v.faulty[3] = true
	for i := 0; i < 200; i++ {
		d := p.PickDest(v, key(uint32(i)))
		if d == 1 || d == 3 {
			t.Fatalf("random placed on faulty proc %d", d)
		}
	}
}

func TestRandomAllFaultyFallsBackToSelf(t *testing.T) {
	p := NewRandom()
	v := newFake()
	for i := 0; i < v.size; i++ {
		v.faulty[proto.ProcID(i)] = true
	}
	if got := p.PickDest(v, key(1)); got != v.self {
		t.Fatalf("PickDest with all faulty = %d", got)
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	p := NewRandom()
	mk := func() []proto.ProcID {
		v := newFake()
		v.rng = rand.New(rand.NewSource(99))
		out := make([]proto.ProcID, 50)
		for i := range out {
			out[i] = p.PickDest(v, key(uint32(i)))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random placement not reproducible for fixed seed")
		}
	}
}

func TestStaticHashStableAndFaultAware(t *testing.T) {
	p := NewStaticHash()
	v := newFake()
	k := key(1, 2, 3)
	d1 := p.PickDest(v, k)
	d2 := p.PickDest(v, k)
	if d1 != d2 {
		t.Fatalf("static placement unstable: %d vs %d", d1, d2)
	}
	// Different keys spread across processors.
	seen := map[proto.ProcID]bool{}
	for i := uint32(0); i < 64; i++ {
		seen[p.PickDest(v, key(i))] = true
	}
	if len(seen) < 2 {
		t.Fatalf("static hash used only %d processors", len(seen))
	}
	// Killing the home slot moves the task deterministically elsewhere.
	v.faulty[d1] = true
	d3 := p.PickDest(v, k)
	if d3 == d1 {
		t.Fatal("static hash placed on faulty processor")
	}
	if d4 := p.PickDest(v, k); d4 != d3 {
		t.Fatal("fault remap unstable")
	}
}

func TestStaticHashReplicasSeparate(t *testing.T) {
	p := NewStaticHash()
	v := newFake()
	v.size = 16
	k0 := proto.TaskKey{Stamp: stamp.FromPath(1), Rep: 1}
	k1 := proto.TaskKey{Stamp: stamp.FromPath(1), Rep: 2}
	// With 16 slots the two replica keys should usually differ; we only
	// require the hash actually incorporates Rep (not a strict spread).
	if p.PickDest(v, k0) == p.PickDest(v, k1) {
		k2 := proto.TaskKey{Stamp: stamp.FromPath(1), Rep: 3}
		if p.PickDest(v, k0) == p.PickDest(v, k2) {
			t.Skip("hash collisions on this tuple; acceptable")
		}
	}
}

func TestGradientSettlesWhenLight(t *testing.T) {
	g := NewGradient(0, 1, 8)
	v := newFake()
	v.queue = 1 // ≤ settle threshold
	if got := g.Step(v, 0); got != v.self {
		t.Fatalf("light queue should settle, got %d", got)
	}
}

func TestGradientForwardsDownhill(t *testing.T) {
	g := NewGradient(0, 1, 8)
	v := newFake()
	v.queue = 5
	v.grads[1] = 3
	v.grads[2] = 0 // idle neighbor
	if got := g.Step(v, 0); got != 2 {
		t.Fatalf("Step = %d, want 2 (downhill)", got)
	}
	// Tie goes to lowest id.
	v.grads[1] = 0
	if got := g.Step(v, 0); got != 1 {
		t.Fatalf("tie-break Step = %d, want 1", got)
	}
}

func TestGradientAvoidsFaultyNeighbors(t *testing.T) {
	g := NewGradient(0, 1, 8)
	v := newFake()
	v.queue = 5
	v.grads[1] = 0
	v.grads[2] = 2
	v.faulty[1] = true
	if got := g.Step(v, 0); got != 2 {
		t.Fatalf("Step = %d, want 2 (live neighbor)", got)
	}
}

func TestGradientTTLSettles(t *testing.T) {
	g := NewGradient(0, 1, 3)
	v := newFake()
	v.queue = 10
	v.grads[1] = 0
	if got := g.Step(v, 3); got != v.self {
		t.Fatalf("TTL exhausted but forwarded to %d", got)
	}
}

func TestGradientSettlesAtLocalMinimum(t *testing.T) {
	g := NewGradient(0, 1, 8)
	v := newFake()
	v.queue = 5
	// All neighbors as busy as us or busier: no improvement, stay.
	v.grads[1] = MaxGradient
	v.grads[2] = MaxGradient
	if got := g.Step(v, 0); got != v.self {
		t.Fatalf("Step = %d, want self at local minimum", got)
	}
}

func TestLocalGradientComputation(t *testing.T) {
	g := NewGradient(0, 1, 8)
	v := newFake()
	v.queue = 0
	if got := g.LocalGradient(v); got != 0 {
		t.Fatalf("idle gradient = %d", got)
	}
	v.queue = 7
	v.grads[1] = 2
	v.grads[2] = 5
	if got := g.LocalGradient(v); got != 3 {
		t.Fatalf("busy gradient = %d, want 3", got)
	}
	// All neighbors unknown/faulty: saturates.
	v.grads = map[proto.ProcID]int{}
	if got := g.LocalGradient(v); got != MaxGradient {
		t.Fatalf("isolated gradient = %d, want max", got)
	}
	v.grads[1] = 1
	v.faulty[1] = true
	if got := g.LocalGradient(v); got != MaxGradient {
		t.Fatalf("gradient through faulty neighbor = %d, want max", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"local", "random", "static", "gradient"} {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("policy %q has empty name", name)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName accepted unknown policy")
	}
}
