package machine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/recovery"
	"repro/internal/topology"
	"repro/internal/trace"
)

// shardSweep is the shard counts every sharded-determinism test runs at.
// 1 is the single-shard reference kernel; the rest exercise 2-, 4- and
// 8-way conservative synchronization on the same cells.
var shardSweep = []int{1, 2, 4, 8}

// traceDump renders a full event log to one comparable string.
func traceDump(tl *trace.Log) string {
	var b strings.Builder
	for _, ev := range tl.Events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// reportLine fingerprints the report fields that would move first if the
// sharded kernel diverged from the reference.
func reportLine(rep *Report) string {
	return fmt.Sprintf("answer=%v completed=%v makespan=%d events=%d metrics=%+v steps=%v",
		rep.Answer, rep.Completed, rep.Makespan, rep.Events, rep.Metrics, rep.StepsByProc)
}

// TestShardSweepByteIdentical is the tentpole guarantee: the golden cells
// (S1 mesh-64, fault-free and under a 3-crash burst, rollback and splice)
// produce byte-identical event traces and identical reports at every shard
// count. Any divergence in event order, sequence tie-breaking, window
// placement, or metrics accounting fails here before it can corrupt an
// experiment artifact.
func TestShardSweepByteIdentical(t *testing.T) {
	for _, c := range goldenCells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			// The single-shard interp run is the one reference; every other
			// (shards × evaluator) combination must match it byte for byte,
			// so the sweep pins the cross-evaluator contract at every shard
			// count in the same breath as the sharded-determinism one.
			var refTrace, refReport string
			for _, eval := range []string{"interp", "compiled"} {
				for _, shards := range shardSweep {
					tl := trace.NewLog(0)
					rep := goldenRunSharded(t, c.scheme, c.crash, shards, eval, tl)
					gotTrace, gotReport := traceDump(tl), reportLine(rep)
					if eval == "interp" && shards == 1 {
						refTrace, refReport = gotTrace, gotReport
						continue
					}
					if gotReport != refReport {
						t.Fatalf("eval=%s shards=%d report diverged:\n got  %s\n want %s", eval, shards, gotReport, refReport)
					}
					if gotTrace != refTrace {
						t.Fatalf("eval=%s shards=%d event trace diverged from single-shard reference (%s)",
							eval, shards, firstTraceDiff(refTrace, gotTrace))
					}
				}
			}
		})
	}
}

// goldenRunSharded mirrors goldenRun with an explicit shard count,
// evaluator, and trace sink, reusing the same cells so the sweep pins
// against the same behavior the committed golden fingerprints capture.
func goldenRunSharded(t *testing.T, scheme string, crash, shards int, eval string, tl *trace.Log) *Report {
	t.Helper()
	topo, err := topology.ByName("mesh", 64)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := recovery.ByName(scheme)
	if err != nil {
		t.Fatal(err)
	}
	prog, fn, args := lang.Fib(), "fib", []expr.Value{expr.VInt(13)}
	run := func(plan *faults.Plan, tl *trace.Log) *Report {
		m, err := New(Config{Topo: topo, Scheme: sch, Seed: 1, Trace: tl, Shards: shards, Eval: eval}, prog)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run(fn, args, plan)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plan := faults.None()
	if crash > 0 {
		base := run(nil, nil)
		if !base.Completed {
			t.Fatal("golden base run incomplete")
		}
		plan = faults.Burst(64, crash, int64(base.Makespan)*2/5, faults.CrashAnnounced, 1)
	}
	return run(plan, tl)
}

// firstTraceDiff locates the first diverging line of two trace dumps.
func firstTraceDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("first diff at line %d: reference %q vs sharded %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line counts differ: reference %d vs sharded %d", len(al), len(bl))
}

// TestShardSweepServiceStream runs the L3-style service stream — several
// requests admitted on a spaced stream clock with faults landing mid-stream
// — at every shard count and requires byte-identical traces and identical
// per-request completion stamps. This covers the cross-shard admission path
// (Submit lands on the host's shard via a driver event) that one-shot runs
// never exercise.
func TestShardSweepServiceStream(t *testing.T) {
	run := func(shards int, eval string) (string, string) {
		topo, err := topology.ByName("mesh", 16)
		if err != nil {
			t.Fatal(err)
		}
		tl := trace.NewLog(0)
		m, err := New(Config{Topo: topo, Scheme: recovery.Rollback(), Seed: 3, Trace: tl, Shards: shards, Eval: eval}, lang.Fib())
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.Serve(ServeConfig{ArrivalEvery: 150})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Inject(faults.Crash(5, 300, true)); err != nil {
			t.Fatal(err)
		}
		var reqs []*Req
		for i := 0; i < 3; i++ {
			r, err := s.Submit(lang.Fib(), "fib", []expr.Value{expr.VInt(10 + int64(i))})
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, r)
		}
		var lines []string
		for _, r := range reqs {
			s.Wait(r)
			lines = append(lines, fmt.Sprintf("req=%d done=%v at=%d answer=%v", r.ID(), r.Done(), r.DoneAt(), r.Answer()))
		}
		rep := s.Finish()
		lines = append(lines, reportLine(rep))
		return strings.Join(lines, "\n"), traceDump(tl)
	}
	refLines, refTrace := run(1, "interp")
	for _, eval := range []string{"interp", "compiled"} {
		for _, shards := range shardSweep {
			if eval == "interp" && shards == 1 {
				continue // the reference itself
			}
			gotLines, gotTrace := run(shards, eval)
			if gotLines != refLines {
				t.Fatalf("eval=%s shards=%d stream outcome diverged:\n got:\n%s\n want:\n%s", eval, shards, gotLines, refLines)
			}
			if gotTrace != refTrace {
				t.Fatalf("eval=%s shards=%d stream trace diverged (%s)", eval, shards, firstTraceDiff(refTrace, gotTrace))
			}
		}
	}
}

// TestShardSweepS3FaultDensity covers the S3-style regime: escalating
// multi-crash bursts on a torus under splice, where recovery traffic (twins,
// relays, escalations) dominates. Identical reports at every shard count.
func TestShardSweepS3FaultDensity(t *testing.T) {
	run := func(shards, kills int) string {
		topo, err := topology.ByName("torus", 36)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(Config{Topo: topo, Scheme: recovery.Splice(), Seed: 7, Shards: shards}, lang.TreeSum(3))
		if err != nil {
			t.Fatal(err)
		}
		plan := faults.Burst(36, kills, 250, faults.CrashAnnounced, 3)
		rep, err := m.Run("tree", []expr.Value{expr.VInt(6)}, plan)
		if err != nil {
			t.Fatal(err)
		}
		return reportLine(rep)
	}
	for _, kills := range []int{2, 5} {
		ref := run(1, kills)
		for _, shards := range shardSweep[1:] {
			if got := run(shards, kills); got != ref {
				t.Fatalf("kills=%d shards=%d report diverged:\n got  %s\n want %s", kills, shards, got, ref)
			}
		}
	}
}
