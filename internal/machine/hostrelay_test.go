package machine

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/recovery"
	"repro/internal/topology"
)

// runPair runs fib:12 on 6 processors under the given scheme with the two
// processors killed simultaneously at the given tick.
func runPair(t *testing.T, scheme string, a, b proto.ProcID, at int64) *Report {
	t.Helper()
	topo, err := topology.ByName("mesh", 6)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := recovery.ByName(scheme)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Topo: topo, Scheme: sch, Seed: 1}, lang.Fib())
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.None().
		Add(faults.Fault{At: at, Proc: a, Kind: faults.CrashAnnounced}).
		Add(faults.Fault{At: at, Proc: b, Kind: faults.CrashAnnounced})
	rep, err := m.Run("fib", []expr.Value{expr.VInt(12)}, plan)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSimultaneousKillWithConsoleRelay is the regression test for the
// ancestor-chain-loss wedge: killing processor 0 (the host's announcement
// relay) simultaneously with the processor holding the root task used to
// leave the host deaf — it never learned its checkpointed root task died,
// nobody reissued it, and the run stranded until the deadline. With console
// duty inherited by the next live processor, every simultaneous pair must
// recover. The sweep covers every pair that includes processor 0, under
// both recovery schemes.
func TestSimultaneousKillWithConsoleRelay(t *testing.T) {
	for _, scheme := range []string{"rollback", "splice"} {
		for b := proto.ProcID(1); b < 6; b++ {
			for _, at := range []int64{200, 500, 900} {
				rep := runPair(t, scheme, 0, b, at)
				if !rep.Completed {
					t.Errorf("%s kill {0,%d} at t=%d: stranded (makespan %d, %d stranded orphans)",
						scheme, b, at, rep.Makespan, rep.Metrics.Stranded)
					continue
				}
				if rep.Answer == nil || !rep.Answer.Equal(expr.VInt(144)) {
					t.Errorf("%s kill {0,%d} at t=%d: wrong answer %v", scheme, b, at, rep.Answer)
				}
			}
		}
	}
}

// TestConsoleDutyInheritance exercises the relay chain two deep: kill the
// root-task holder plus processors 0 AND 1 at once, so console duty must
// pass over two dead processors before an announcement reaches the host.
func TestConsoleDutyInheritance(t *testing.T) {
	topo, err := topology.ByName("mesh", 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Topo: topo, Scheme: recovery.Rollback(), Seed: 1}, lang.Fib())
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.None().
		Add(faults.Fault{At: 400, Proc: 0, Kind: faults.CrashAnnounced}).
		Add(faults.Fault{At: 400, Proc: 1, Kind: faults.CrashAnnounced}).
		Add(faults.Fault{At: 400, Proc: 5, Kind: faults.CrashAnnounced})
	rep, err := m.Run("fib", []expr.Value{expr.VInt(12)}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("triple kill {0,1,5} stranded: makespan %d", rep.Makespan)
	}
	if !rep.Answer.Equal(expr.VInt(144)) {
		t.Fatalf("wrong answer %v", rep.Answer)
	}
}
