package machine

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// Seeding a math/rand source is the single most expensive part of machine
// construction: rand.NewSource runs a 607-step warm-up per processor, and a
// 64-processor machine is rebuilt for every cell of a sweep. The values a
// processor actually draws are a pure function of its seed, so the warm-up
// is paid once per distinct seed per process: a seedStream owns the real
// stdlib source and an append-only prefix of its Int63 outputs, and every
// machine's processor reads through a cachedSource cursor over that prefix.
// The source is created lazily on the first draw, so processors that never
// consult their RNG (every proc in a fault-free run under non-random
// placement) never pay the warm-up at all.
//
// Determinism is by construction, not by re-implementation: the cached
// values come from rand.NewSource itself, so the k-th Int63 a processor
// observes is bit-identical to what a freshly seeded source would have
// produced, regardless of how many machines shared the stream before it.

// rngStreams caches seedStreams by seed value, process-wide.
var rngStreams sync.Map // int64 -> *seedStream

// seedStream is the shared, append-only Int63 prefix for one seed. The
// published buffer is immutable; growth copies into a fresh slice and
// republishes, so concurrent readers (machines on parallel experiment
// workers) never observe a partially written cell.
type seedStream struct {
	seed int64
	buf  atomic.Pointer[[]int64]

	mu sync.Mutex // serializes extensions
	// src is retained between extensions only once the stream has proven
	// heavy (keepSrcLen draws): recovery-active processors extend their
	// stream many times and must not re-pay the 607-step warm-up per
	// extension, while the thousands of light one-touch streams a sweep
	// creates must not each pin a ~5 KB feedback register for the life of
	// the process. Invariant when non-nil: src has produced exactly
	// len(published buf) values.
	src rand.Source
}

// keepSrcLen is the published-prefix length at which a stream keeps its
// source alive between extensions.
const keepSrcLen = 64

// maxCachedPrefix bounds the published prefix per seed. Beyond it a cursor
// forks a private source (one warm-up plus a prefix replay) and draws
// directly, so a recovery-heavy processor that consumes hundreds of
// thousands of values does not turn the process-wide cache into an
// unbounded log of its stream. The bound caps the cache at ~32 KB per
// distinct seed while still covering every light consumer.
const maxCachedPrefix = 4096

var emptyPrefix = []int64{}

func streamFor(seed int64) *seedStream {
	if v, ok := rngStreams.Load(seed); ok {
		return v.(*seedStream)
	}
	s := &seedStream{seed: seed}
	s.buf.Store(&emptyPrefix)
	v, _ := rngStreams.LoadOrStore(seed, s)
	return v.(*seedStream)
}

// extend guarantees the published prefix covers position pos and returns it.
func (s *seedStream) extend(pos int) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.buf.Load()
	if pos < len(cur) {
		return cur
	}
	src := s.src
	if src == nil {
		// Recreate the source and replay the published prefix: light
		// streams do not keep their source (see seedStream.src), and the
		// replay of a short prefix is negligible next to the warm-up
		// rand.NewSource already pays.
		src = rand.NewSource(s.seed)
		for i := 0; i < len(cur); i++ {
			src.Int63()
		}
	}
	grown := len(cur) * 2
	if grown <= pos {
		grown = pos + 16
	}
	if grown > maxCachedPrefix {
		grown = maxCachedPrefix // callers past the bound fork instead
	}
	next := make([]int64, len(cur), grown)
	copy(next, cur)
	for len(next) <= pos {
		next = append(next, src.Int63())
	}
	s.buf.Store(&next)
	if len(next) >= keepSrcLen {
		s.src = src
	} else {
		s.src = nil
	}
	return next
}

// cachedSource is one consumer's cursor over a seedStream. It implements
// rand.Source (Int63 only, deliberately not Source64): every rand.Rand
// method the machine uses — Intn and below — draws exclusively through
// Int63, so the consumed sequence matches a directly seeded source exactly.
type cachedSource struct {
	s   *seedStream
	pos int
	own rand.Source // non-nil once the cursor has passed maxCachedPrefix
}

func (c *cachedSource) Int63() int64 {
	if c.own != nil {
		return c.own.Int63()
	}
	buf := *c.s.buf.Load()
	if c.pos >= len(buf) {
		if c.pos >= maxCachedPrefix {
			// Fork: re-derive this cursor's position privately. One
			// warm-up plus a prefix replay, paid once per heavy cursor;
			// every further draw is a direct source call, bit-identical
			// to the shared stream by construction.
			src := rand.NewSource(c.s.seed)
			for i := 0; i < c.pos; i++ {
				src.Int63()
			}
			c.own = src
			return c.own.Int63()
		}
		buf = c.s.extend(c.pos)
	}
	v := buf[c.pos]
	c.pos++
	return v
}

// Seed is required by rand.Source but must never run: re-seeding a shared
// stream would corrupt every other cursor. The machine never calls it.
func (c *cachedSource) Seed(int64) {
	panic("machine: cachedSource is not reseedable")
}

// cachedRand returns a *rand.Rand whose draw sequence is identical to
// rand.New(rand.NewSource(seed)) for all Int63-derived methods.
func cachedRand(seed int64) *rand.Rand {
	return rand.New(&cachedSource{s: streamFor(seed)})
}
