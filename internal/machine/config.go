// Package machine implements the simulated applicative multiprocessor: a
// partitioned-memory collection of processors that cooperatively evaluate an
// applicative program by demand-driven task spawning (the Rediflow-style
// substrate of §1), with functional checkpointing (§2), pluggable recovery
// schemes (§3, §4), failure detection (timeouts, heartbeats, announcements),
// dynamic load balancing, and replicated-task redundancy (§5.3).
//
// The machine runs on the deterministic discrete-event kernel of
// internal/sim; a run is a pure function of (Config, program, fault plan).
// That purity is what the experiment engine leans on: (experiment × seed)
// cells fan out across goroutines with no shared mutable state, and the
// parallel schedule's output is byte-identical to the sequential one.
//
// The machine is topology- and plan-agnostic: Config.Topo accepts any
// internal/topology shape (the regular 1986 grids or the generator-backed
// irregular ones) and Run accepts any internal/faults plan (single crashes
// or the Burst/Cascade/Correlated stress regimes); runs that lose too much
// capacity to finish stop at Config.Deadline with Report.Completed false
// rather than erroring, which is how the S3 fault-density sweep locates
// the recovery breaking point.
package machine

import (
	"errors"
	"fmt"
	"runtime"
	"strings"

	"repro/internal/balance"
	"repro/internal/lang"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Config parameterizes a machine.
type Config struct {
	// Topo is the interconnection network; its size is the processor count.
	Topo topology.Topology
	// Placement decides where spawned tasks go. Defaults to random.
	Placement balance.Policy
	// Scheme is the recovery scheme. Defaults to recovery.None().
	Scheme recovery.Scheme
	// AncestorDepth is K of §5.2: how many ancestor addresses a task packet
	// carries (2 = parent + grandparent, the paper's base design). Minimum 1
	// (parent only, which disables splice escalation).
	AncestorDepth int
	// Replication maps function names to replica counts R (§5.3). Functions
	// not present run single-copy. Replication requires Scheme == None.
	Replication map[string]int
	// Seed drives all randomness.
	Seed int64

	// Shards is the simulation kernel's shard count: the topology is cut
	// into that many connected regions (topology.Partition) and each region
	// runs on its own goroutine in conservatively-synchronized lockstep
	// windows. Results are byte-identical at every shard count. 0 or 1 runs
	// the single-shard reference kernel; negative derives the count from
	// GOMAXPROCS; values above the processor count are clamped.
	Shards int

	// DisableCheckpoints turns off packet retention entirely — the
	// zero-fault-tolerance baseline for overhead measurements (T1).
	DisableCheckpoints bool

	// Eval names the evaluator that runs task reduction passes: "interp"
	// (the tree-walking reference) or "compiled" (the bytecode VM). Empty
	// means lang.DefaultEvaluator. Both produce byte-identical traces; the
	// choice only affects wall time.
	Eval string

	// Cost model, in virtual ticks.
	StepCost       int64 // per reduction step
	SpawnOverhead  int64 // per task packet formed
	CheckpointCost int64 // per functional checkpoint retained (§2.1)
	HopCost        int64 // per network hop
	MsgOverhead    int64 // fixed per message latency
	ByteCost       int64 // extra latency per 64 payload bytes (bandwidth)

	// Failure detection.
	AckTimeout       sim.Time // placement-ack timeout (Figure 6 state b)
	ResultTimeout    sim.Time // result-ack timeout
	HeartbeatEvery   sim.Time // neighbor heartbeat period (<0 disables)
	HeartbeatMisses  int      // consecutive misses before declaring failure
	LoadGossipEvery  sim.Time // gradient gossip period (0 disables)
	SpawnRetryLimit  int      // placement retries before giving up
	ResultRetryLimit int      // result retries before undeliverable

	// Run bounds.
	Deadline  sim.Time // virtual-time budget (0 = default)
	MaxEvents uint64   // event budget (0 = default)

	// StateProbeEvery, when positive, samples the machine's resident state
	// (task count and packet bytes) at this period; the samples feed the
	// periodic-global-checkpointing baseline model, which needs to know how
	// much state a coordinated snapshot would copy at any instant.
	StateProbeEvery sim.Time

	// Trace receives events when non-nil.
	Trace *trace.Log
}

// Default cost and protocol constants. They are deliberately round numbers;
// experiments sweep the ratios that matter.
const (
	DefaultStepCost       = 1
	DefaultSpawnOverhead  = 2
	DefaultCheckpointCost = 1
	DefaultHopCost        = 4
	DefaultMsgOverhead    = 2
	DefaultByteCost       = 0

	DefaultAckTimeout      = 600
	DefaultResultTimeout   = 600
	DefaultHeartbeatEvery  = 250
	DefaultHeartbeatMisses = 2
	DefaultLoadGossipEvery = 20
	DefaultSpawnRetry      = 16
	DefaultResultRetry     = 3

	DefaultDeadline  = 2_000_000
	DefaultMaxEvents = 50_000_000
)

// normalized fills defaults and validates; it returns a copy.
func (c Config) normalized() (Config, error) {
	if c.Topo == nil {
		return c, errors.New("machine: Config.Topo is required")
	}
	if c.Topo.Size() < 2 {
		return c, fmt.Errorf("machine: need at least 2 processors, got %d", c.Topo.Size())
	}
	if c.Placement == nil {
		c.Placement = balance.NewRandom()
	}
	if c.Scheme == nil {
		c.Scheme = recovery.None()
	}
	if !recovery.Known(c.Scheme.Name()) {
		// Keep the error text in lockstep with the recovery registry so the
		// names users see here are exactly the names ByName accepts.
		return c, fmt.Errorf("machine: unknown recovery scheme %q (known: %s)",
			c.Scheme.Name(), strings.Join(recovery.Names(), ", "))
	}
	if c.Eval == "" {
		c.Eval = lang.DefaultEvaluator
	}
	if !lang.KnownEvaluator(c.Eval) {
		// Same lockstep rule as the recovery-scheme error above: the names
		// shown here are exactly the names lang.EvaluatorByName accepts.
		return c, fmt.Errorf("machine: unknown evaluator %q (known: %s)",
			c.Eval, strings.Join(lang.Evaluators(), ", "))
	}
	if c.AncestorDepth == 0 {
		c.AncestorDepth = 2
	}
	if c.AncestorDepth < 1 {
		return c, fmt.Errorf("machine: AncestorDepth %d < 1", c.AncestorDepth)
	}
	for fn, r := range c.Replication {
		if r < 1 {
			return c, fmt.Errorf("machine: replication %d for %q < 1", r, fn)
		}
		if r > 1 && c.Scheme.Name() != "none" {
			// §5.3 presents replicated tasks as an alternative reliability
			// mechanism, not one composed with rollback/splice; composing
			// them would need replica-aware genealogy and is out of scope.
			return c, fmt.Errorf("machine: replication requires the none scheme, have %q", c.Scheme.Name())
		}
	}
	if c.StepCost == 0 {
		c.StepCost = DefaultStepCost
	}
	if c.SpawnOverhead == 0 {
		c.SpawnOverhead = DefaultSpawnOverhead
	}
	if c.CheckpointCost == 0 {
		c.CheckpointCost = DefaultCheckpointCost
	}
	if c.HopCost == 0 {
		c.HopCost = DefaultHopCost
	}
	if c.MsgOverhead == 0 {
		c.MsgOverhead = DefaultMsgOverhead
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = DefaultAckTimeout
	}
	if c.ResultTimeout == 0 {
		c.ResultTimeout = DefaultResultTimeout
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = DefaultHeartbeatEvery
	} else if c.HeartbeatEvery < 0 {
		c.HeartbeatEvery = 0 // negative disables the service
	}
	if c.HeartbeatMisses == 0 {
		c.HeartbeatMisses = DefaultHeartbeatMisses
	}
	if c.LoadGossipEvery == 0 {
		c.LoadGossipEvery = DefaultLoadGossipEvery
	} else if c.LoadGossipEvery < 0 {
		c.LoadGossipEvery = 0 // negative disables the service
	}
	if c.SpawnRetryLimit == 0 {
		c.SpawnRetryLimit = DefaultSpawnRetry
	}
	if c.ResultRetryLimit == 0 {
		c.ResultRetryLimit = DefaultResultRetry
	}
	if c.Deadline == 0 {
		c.Deadline = DefaultDeadline
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = DefaultMaxEvents
	}
	if c.StepCost < 0 || c.HopCost < 0 || c.MsgOverhead < 0 || c.SpawnOverhead < 0 || c.ByteCost < 0 {
		return c, errors.New("machine: negative costs are not allowed")
	}
	if c.Shards < 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	return c, nil
}
