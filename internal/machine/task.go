package machine

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/sim"
)

// taskState is the lifecycle of a resident task.
type taskState int

const (
	// taskReady: queued for execution.
	taskReady taskState = iota
	// taskRunning: a reduction pass is in progress (its completion event is
	// scheduled).
	taskRunning
	// taskWaiting: blocked on outstanding child results (§4.2 "If cannot
	// proceed, suspend the task").
	taskWaiting
	// taskReturning: reduced to a value; awaiting the result ack.
	taskReturning
	// taskAborted: killed; kept only as a tombstone until dropped.
	taskAborted
)

func (s taskState) String() string {
	switch s {
	case taskReady:
		return "ready"
	case taskRunning:
		return "running"
	case taskWaiting:
		return "waiting"
	case taskReturning:
		return "returning"
	case taskAborted:
		return "aborted"
	default:
		return fmt.Sprintf("taskState(%d)", int(s))
	}
}

// childRef tracks one spawned child (one replica of one demand).
type childRef struct {
	key proto.TaskKey
	// gen is the generation of the incarnation currently expected; stale
	// placement acks (older generations) are ignored.
	gen uint64
	// dest is where the child settled; checkpoint.PendingDest while the
	// placement ack is outstanding (Figure 6 states b/d).
	dest proto.ProcID
	// ackTimer fires if no placement ack arrives (state-b reissue).
	ackTimer sim.Timer
	// retries counts placement attempts.
	retries int
	// returned marks that this replica's result has been received (vote
	// bookkeeping; duplicates are ignored).
	returned bool
	// vote is the value this replica returned.
	vote expr.Value
}

// holeRec tracks one demand slot of a task: the children spawned for it
// (one, or R replicas) and the agreed value once filled.
type holeRec struct {
	id       int
	children []*childRef
	filled   bool
	value    expr.Value
}

// majority returns the value agreed by more than half of the replicas, if
// any — the §5.3 asynchronous majority vote. For single-copy holes the first
// returned value wins immediately.
func (h *holeRec) majority() (expr.Value, bool) {
	n := len(h.children)
	need := n/2 + 1
	for i, a := range h.children {
		if !a.returned {
			continue
		}
		count := 1
		for j := i + 1; j < n; j++ {
			b := h.children[j]
			if b.returned && a.vote.Equal(b.vote) {
				count++
			}
		}
		if count >= need {
			return a.vote, true
		}
	}
	return nil, false
}

// returnedCount reports how many replicas have answered.
func (h *holeRec) returnedCount() int {
	n := 0
	for _, c := range h.children {
		if c.returned {
			n++
		}
	}
	return n
}

// task is one resident task instance.
//
// Hole records are a dense slice indexed by demand id rather than a map:
// demand ids are allocated by the task's own monotone counter (nextID), so
// they are small, unique, and created in ascending order — indexing the
// slice is the map lookup, and iterating it is the sorted walk abortGen
// used to pay a sort.Ints for. The fills and prefill maps are lazy: most
// tasks are leaves that never receive either.
type task struct {
	pkt   *proto.TaskPacket
	state taskState

	// Evaluation state: the evaluator's opaque blocked-task state (nil =
	// no pass has run yet), demand counter, and the fills accumulated
	// since the last pass.
	residual     lang.TaskState
	nextID       int
	pendingFills map[int]expr.Value

	// holes[id] records the children spawned for demand id (nil = the
	// demand was never issued here).
	holes    []*holeRec
	unfilled int // demanded-but-unfilled hole count

	// prefill holds inherited orphan results for demands this task has not
	// issued yet (§4.1 cases 4/5: "the answer is already there"); consumed
	// at demand time without spawning.
	prefill map[int]expr.Value

	// stepsSpent accumulates reduction steps, for waste accounting.
	stepsSpent int64

	// passOut/passSt park the in-flight pass outcome between runPass and
	// finishPass, and finishFn is the reusable completion closure (see
	// runPass: one pass per task is in flight at a time).
	passOut  lang.Outcome
	passSt   lang.TaskState
	finishFn func()

	// value is the final result once reduced (taskReturning).
	value expr.Value
	// resultTimer guards the result ack; resultTries counts retries.
	resultTimer sim.Timer
	resultTries int
	// escalated marks that the result has been handed to the recovery
	// policy (orphan escalation); the declare-time fail-fast pass must not
	// hand it over again.
	escalated bool

	// isHostRoot marks the host pseudo-task that owns the program
	// invocation: completing it ends the run.
	isHostRoot bool
}

func newTask(pkt *proto.TaskPacket) *task {
	return &task{pkt: pkt, state: taskReady}
}

// hole returns the record for id, creating it on first use. The machine's
// hot path uses proc.holeFor (slab-backed) instead; this heap-allocating
// variant serves tests and callers without a proc at hand.
func (t *task) hole(id int) *holeRec {
	for id >= len(t.holes) {
		t.holes = append(t.holes, nil)
	}
	if h := t.holes[id]; h != nil {
		return h
	}
	h := &holeRec{id: id}
	t.holes[id] = h
	return h
}

// holeAt returns the record for id, or nil if the demand was never issued.
func (t *task) holeAt(id int) *holeRec {
	if id < 0 || id >= len(t.holes) {
		return nil
	}
	return t.holes[id]
}

// addFill records a result value for the next resume pass.
func (t *task) addFill(id int, v expr.Value) {
	if t.pendingFills == nil {
		t.pendingFills = make(map[int]expr.Value)
	}
	t.pendingFills[id] = v
}

// addPrefill buffers an inherited result for a not-yet-issued demand.
func (t *task) addPrefill(id int, v expr.Value) {
	if t.prefill == nil {
		t.prefill = make(map[int]expr.Value)
	}
	t.prefill[id] = v
}

// takePrefill consumes a buffered inherited result, if present.
func (t *task) takePrefill(id int) (expr.Value, bool) {
	v, ok := t.prefill[id]
	if ok {
		delete(t.prefill, id)
	}
	return v, ok
}

// cancelTimers stops every timer the task owns (abort/death cleanup).
func (t *task) cancelTimers() {
	for _, h := range t.holes {
		if h == nil {
			continue
		}
		for _, c := range h.children {
			c.ackTimer.Stop()
		}
	}
	t.resultTimer.Stop()
}
