package machine

import (
	"fmt"
	"testing"

	"repro/internal/balance"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/recovery"
	"repro/internal/stamp"
	"repro/internal/topology"
	"repro/internal/trace"
)

// mustTopo builds a topology or fails the test.
func mustTopo(t testing.TB, kind string, n int) topology.Topology {
	t.Helper()
	topo, err := topology.ByName(kind, n)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// runMachine builds and runs a machine, failing the test on setup errors.
func runMachine(t testing.TB, cfg Config, prog *lang.Program, fn string, args []expr.Value, plan *faults.Plan) *Report {
	t.Helper()
	m, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(fn, args, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil {
		t.Fatalf("run error: %v", rep.Err)
	}
	return rep
}

// expectAnswer checks the report completed with the reference answer.
func expectAnswer(t *testing.T, rep *Report, prog *lang.Program, fn string, args []expr.Value) {
	t.Helper()
	want, err := lang.RefEval(prog, fn, args)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("run did not complete (makespan=%d, metrics:\n%s)", rep.Makespan, rep.Metrics.String())
	}
	if !rep.Answer.Equal(want) {
		t.Fatalf("answer = %v, want %v", rep.Answer, want)
	}
}

func TestFaultFreeFibMatchesReference(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(12)}
	for _, placement := range []balance.Policy{
		balance.NewRandom(), balance.NewStaticHash(), balance.NewGradient(0, 0, 0), balance.NewLocal(),
	} {
		cfg := Config{Topo: mustTopo(t, "mesh", 8), Placement: placement, Seed: 1}
		rep := runMachine(t, cfg, prog, "fib", args, nil)
		expectAnswer(t, rep, prog, "fib", args)
		if rep.Metrics.TasksLeaked != 0 {
			t.Errorf("%s: %d tasks leaked in fault-free run", placement.Name(), rep.Metrics.TasksLeaked)
		}
		if rep.Metrics.TasksAborted != 0 {
			t.Errorf("%s: %d tasks aborted in fault-free run", placement.Name(), rep.Metrics.TasksAborted)
		}
	}
}

func TestFaultFreeAllProgramsAllTopologies(t *testing.T) {
	cases := []struct {
		name string
		prog *lang.Program
		fn   string
		args []expr.Value
	}{
		{"fib", lang.Fib(), "fib", []expr.Value{expr.VInt(10)}},
		{"tak", lang.Tak(), "tak", []expr.Value{expr.VInt(6), expr.VInt(3), expr.VInt(1)}},
		{"nqueens", lang.NQueens(), "nqueens", []expr.Value{expr.VInt(4)}},
		{"sumrange", lang.SumRange(8), "sumrange", []expr.Value{expr.VInt(0), expr.VInt(48)}},
		{"msort", lang.MergeSort(), "msort", []expr.Value{expr.IntList(4, 2, 9, 1)}},
		{"tree", lang.TreeSum(3), "tree", []expr.Value{expr.VInt(3)}},
	}
	topos := []string{"ring", "mesh", "complete"}
	for _, tc := range cases {
		for _, kind := range topos {
			t.Run(tc.name+"/"+kind, func(t *testing.T) {
				cfg := Config{Topo: mustTopo(t, kind, 6), Seed: 7}
				rep := runMachine(t, cfg, tc.prog, tc.fn, tc.args, nil)
				expectAnswer(t, rep, tc.prog, tc.fn, tc.args)
			})
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(11)}
	run := func() *Report {
		cfg := Config{Topo: mustTopo(t, "mesh", 8), Placement: balance.NewGradient(0, 0, 0), Seed: 42}
		return runMachine(t, cfg, prog, "fib", args, faults.Crash(3, 900, false))
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Events != b.Events {
		t.Fatalf("replay diverged: makespan %d vs %d, events %d vs %d",
			a.Makespan, b.Makespan, a.Events, b.Events)
	}
	if a.Metrics != b.Metrics {
		t.Fatalf("replay metrics diverged:\n%s\nvs\n%s", a.Metrics.String(), b.Metrics.String())
	}
}

func TestRollbackSurvivesAnnouncedCrash(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(12)}
	cfg := Config{
		Topo: mustTopo(t, "mesh", 8), Scheme: recovery.Rollback(),
		Seed: 3, Trace: trace.NewLog(0),
	}
	rep := runMachine(t, cfg, prog, "fib", args, faults.Crash(2, 800, true))
	expectAnswer(t, rep, prog, "fib", args)
	if rep.Metrics.Failures != 1 {
		t.Fatalf("failures = %d", rep.Metrics.Failures)
	}
	if rep.Metrics.Reissues == 0 {
		t.Error("rollback recovered without reissuing any checkpoint")
	}
	if rep.Metrics.TasksLost == 0 {
		t.Error("crash at t=800 lost no tasks — fault landed after completion?")
	}
}

func TestRollbackSurvivesSilentCrash(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(12)}
	cfg := Config{Topo: mustTopo(t, "mesh", 8), Scheme: recovery.Rollback(), Seed: 4}
	rep := runMachine(t, cfg, prog, "fib", args, faults.Crash(2, 800, false))
	expectAnswer(t, rep, prog, "fib", args)
	if rep.Metrics.FirstDetections != 1 {
		t.Fatalf("first detections = %d, want 1", rep.Metrics.FirstDetections)
	}
	if rep.Metrics.DetectLatencySum <= 0 {
		t.Error("silent crash detected with zero latency")
	}
}

func TestSpliceSurvivesCrash(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(12)}
	for _, announced := range []bool{true, false} {
		cfg := Config{Topo: mustTopo(t, "mesh", 8), Scheme: recovery.Splice(), Seed: 5}
		rep := runMachine(t, cfg, prog, "fib", args, faults.Crash(2, 800, announced))
		expectAnswer(t, rep, prog, "fib", args)
		if rep.Metrics.Twins == 0 {
			t.Errorf("announced=%v: splice recovered without twins", announced)
		}
		if rep.Metrics.Reissues != 0 {
			t.Errorf("announced=%v: splice performed rollback reissues", announced)
		}
	}
}

func TestNoRecoveryHangsAfterCrash(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(10)}
	cfg := Config{
		Topo: mustTopo(t, "mesh", 8), Scheme: recovery.None(), Seed: 6,
		Deadline: 60_000,
	}
	rep := runMachine(t, cfg, prog, "fib", args, faults.Crash(1, 500, true))
	if rep.Completed {
		// The fault may have landed after the run finished; force it early.
		t.Skip("program finished before fault; covered by other seeds")
	}
	if rep.Metrics.TasksLost == 0 {
		t.Error("crash lost no tasks")
	}
}

func TestCrashOfRootProcessorIsRecoveredBySuperRoot(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(9)}
	// Pin the root task (stamp "0", the host's first demand) onto processor
	// 0 and kill processor 0 mid-run: the host (super-root) must regenerate
	// the root from its pre-evaluation checkpoint (§4.3.1).
	pin := map[string]proto.ProcID{stamp.FromPath(0).Key(): 0}
	for _, scheme := range []recovery.Scheme{recovery.Rollback(), recovery.Splice()} {
		t.Run(scheme.Name(), func(t *testing.T) {
			cfg := Config{
				Topo:      mustTopo(t, "mesh", 6),
				Placement: balance.NewPinned(pin, balance.NewRandom()),
				Scheme:    scheme, Seed: 8,
			}
			rep := runMachine(t, cfg, prog, "fib", args, faults.Crash(0, 600, true))
			expectAnswer(t, rep, prog, "fib", args)
		})
	}
}

func TestMultipleFaultsOnSeparateBranches(t *testing.T) {
	prog := lang.TreeSum(4)
	args := []expr.Value{expr.VInt(5)}
	plan := faults.None().
		Add(faults.Fault{At: 700, Proc: 1, Kind: faults.CrashAnnounced}).
		Add(faults.Fault{At: 1800, Proc: 5, Kind: faults.CrashAnnounced})
	for _, scheme := range []recovery.Scheme{recovery.Rollback(), recovery.Splice()} {
		t.Run(scheme.Name(), func(t *testing.T) {
			cfg := Config{Topo: mustTopo(t, "mesh", 9), Scheme: scheme, Seed: 9}
			rep := runMachine(t, cfg, prog, "tree", args, plan)
			expectAnswer(t, rep, prog, "tree", args)
			if rep.Metrics.Failures != 2 {
				t.Fatalf("failures = %d, want 2 (makespan %d)", rep.Metrics.Failures, rep.Makespan)
			}
		})
	}
}

func TestRecoverySweepAcrossFaultTimesAndSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(11)}
	want, _ := lang.RefEval(prog, "fib", args)
	schemes := []recovery.Scheme{recovery.Rollback(), recovery.RollbackLazy(), recovery.Splice()}
	for _, scheme := range schemes {
		for seed := int64(0); seed < 4; seed++ {
			for _, at := range []int64{200, 600, 1200, 2400, 4800} {
				for _, announced := range []bool{true, false} {
					name := fmt.Sprintf("%s/seed%d/t%d/a%v", scheme.Name(), seed, at, announced)
					t.Run(name, func(t *testing.T) {
						cfg := Config{Topo: mustTopo(t, "mesh", 8), Scheme: scheme, Seed: seed}
						proc := proto.ProcID(1 + seed%4)
						rep := runMachine(t, cfg, prog, "fib", args,
							faults.Crash(proc, at, announced))
						if !rep.Completed {
							t.Fatalf("did not complete:\n%s", rep.Metrics.String())
						}
						if !rep.Answer.Equal(want) {
							t.Fatalf("answer = %v, want %v", rep.Answer, want)
						}
					})
				}
			}
		}
	}
}

func TestReplicationMasksCorruptProcessor(t *testing.T) {
	// §5.3 critical sections: the replicated "work" calls vote away the
	// corrupt processor's answers.
	prog := lang.CriticalSections(10, 300)
	plan := &faults.Plan{Faults: []faults.Fault{{At: 0, Proc: 3, Kind: faults.Corrupt}}}
	cfg := Config{
		Topo: mustTopo(t, "mesh", 8), Seed: 10,
		Replication: map[string]int{"work": 3},
	}
	rep := runMachine(t, cfg, prog, "main", nil, plan)
	expectAnswer(t, rep, prog, "main", nil)
	if rep.Metrics.Votes == 0 {
		t.Error("no majority votes recorded")
	}
	if rep.Metrics.VoteMismatches == 0 {
		t.Error("corrupt processor produced no outvoted values")
	}
}

func TestReplicationDoesNotCompound(t *testing.T) {
	// Replicating a recursive function must produce R complete lineages,
	// not R^depth copies: replicas do not re-replicate their children.
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(9)}
	plain := runMachine(t, Config{Topo: mustTopo(t, "mesh", 8), Seed: 10}, prog, "fib", args, nil)
	tmr := runMachine(t, Config{
		Topo: mustTopo(t, "mesh", 8), Seed: 10,
		Replication: map[string]int{"fib": 3},
	}, prog, "fib", args, nil)
	expectAnswer(t, tmr, prog, "fib", args)
	lo := plain.Metrics.TasksSpawned * 2
	hi := plain.Metrics.TasksSpawned*4 + 8
	if tmr.Metrics.TasksSpawned < lo || tmr.Metrics.TasksSpawned > hi {
		t.Fatalf("R=3 spawned %d tasks; plain spawned %d; want ~3x",
			tmr.Metrics.TasksSpawned, plain.Metrics.TasksSpawned)
	}
}

func TestCorruptionWithoutReplicationBreaksAnswer(t *testing.T) {
	prog := lang.CriticalSections(10, 300)
	plan := &faults.Plan{Faults: []faults.Fault{{At: 0, Proc: 3, Kind: faults.Corrupt}}}
	cfg := Config{Topo: mustTopo(t, "mesh", 8), Seed: 10}
	rep := runMachine(t, cfg, prog, "main", nil, plan)
	want, _ := lang.RefEval(prog, "main", nil)
	if !rep.Completed {
		t.Fatal("run did not complete")
	}
	if rep.Answer.Equal(want) {
		t.Skip("corrupt processor received no tasks under this seed")
	}
	// The wrong answer is the expected outcome: crash-recovery schemes do
	// not defend against value corruption (§5.3's motivation).
}

func TestReplicationRequiresNoneScheme(t *testing.T) {
	cfg := Config{
		Topo: mustTopo(t, "mesh", 4), Scheme: recovery.Rollback(),
		Replication: map[string]int{"fib": 3},
	}
	if _, err := New(cfg, lang.Fib()); err == nil {
		t.Fatal("replication combined with rollback was accepted")
	}
}

func TestCheckpointAccounting(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(9)}
	cfg := Config{Topo: mustTopo(t, "mesh", 4), Seed: 11}
	rep := runMachine(t, cfg, prog, "fib", args, nil)
	if rep.Metrics.Checkpoints == 0 || rep.Metrics.CheckpointBytes == 0 {
		t.Fatalf("checkpoint accounting empty: %d ckpts, %d bytes",
			rep.Metrics.Checkpoints, rep.Metrics.CheckpointBytes)
	}
	cfg2 := Config{Topo: mustTopo(t, "mesh", 4), Seed: 11, DisableCheckpoints: true}
	rep2 := runMachine(t, cfg2, prog, "fib", args, nil)
	expectAnswer(t, rep2, prog, "fib", args)
	if rep2.Metrics.Checkpoints != 0 || rep2.Metrics.CheckpointBytes != 0 {
		t.Fatalf("DisableCheckpoints still recorded %d ckpts, %d bytes",
			rep2.Metrics.Checkpoints, rep2.Metrics.CheckpointBytes)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}, lang.Fib()); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := New(Config{Topo: mustTopo(t, "mesh", 4)}, nil); err == nil {
		t.Error("nil program accepted")
	}
	cfg := Config{Topo: mustTopo(t, "mesh", 4), AncestorDepth: -1}
	if _, err := New(cfg, lang.Fib()); err == nil {
		t.Error("negative ancestor depth accepted")
	}
	m, err := New(Config{Topo: mustTopo(t, "mesh", 4)}, lang.Fib())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("nosuch", nil, nil); err == nil {
		t.Error("unknown entry function accepted")
	}
	if _, err := New(Config{Topo: mustTopo(t, "mesh", 4), Replication: map[string]int{"f": 0}}, lang.Fib()); err == nil {
		t.Error("zero replication accepted")
	}
}

func TestTraceEventsFlow(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(6)}
	tl := trace.NewLog(0)
	cfg := Config{Topo: mustTopo(t, "mesh", 4), Seed: 12, Trace: tl}
	rep := runMachine(t, cfg, prog, "fib", args, nil)
	expectAnswer(t, rep, prog, "fib", args)
	if tl.Count(trace.KSpawn) == 0 || tl.Count(trace.KPlace) == 0 ||
		tl.Count(trace.KComplete) == 0 || tl.Count(trace.KRootDone) != 1 {
		t.Fatalf("missing lifecycle events: spawn=%d place=%d complete=%d done=%d",
			tl.Count(trace.KSpawn), tl.Count(trace.KPlace),
			tl.Count(trace.KComplete), tl.Count(trace.KRootDone))
	}
	if tl.Count(trace.KCheckpoint) == 0 {
		t.Fatal("no checkpoint events")
	}
}

// TestConfigEvalValidation pins the evaluator knob: the default is interp,
// both registered evaluators are accepted, and an unknown name fails with
// the lang registry's names in the machine's error format — the same
// lockstep rule the recovery-scheme error follows.
func TestConfigEvalValidation(t *testing.T) {
	for _, eval := range []string{"", "interp", "compiled"} {
		cfg := Config{Topo: mustTopo(t, "mesh", 4), Seed: 1, Eval: eval}
		m, err := New(cfg, lang.Fib())
		if err != nil {
			t.Fatalf("Eval=%q rejected: %v", eval, err)
		}
		want := eval
		if want == "" {
			want = lang.DefaultEvaluator
		}
		if m.cfg.Eval != want {
			t.Fatalf("Eval=%q normalized to %q, want %q", eval, m.cfg.Eval, want)
		}
	}
	_, err := New(Config{Topo: mustTopo(t, "mesh", 4), Seed: 1, Eval: "nope"}, lang.Fib())
	if err == nil {
		t.Fatal("unknown evaluator accepted")
	}
	want := `machine: unknown evaluator "nope" (known: compiled, interp)`
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}

// TestCompiledEvalMatchesInterpReport runs one fault-free and one faulted
// cell under both evaluators end to end and requires identical reports —
// answer, makespan, events, metrics — the report-level face of the trace
// pins in golden_test.go.
func TestCompiledEvalMatchesInterpReport(t *testing.T) {
	run := func(eval string, crash bool) string {
		cfg := Config{Topo: mustTopo(t, "mesh", 9), Scheme: recovery.Rollback(), Seed: 5, Eval: eval}
		var plan *faults.Plan
		if crash {
			plan = faults.Crash(3, 400, true)
		}
		rep := runMachine(t, cfg, lang.Fib(), "fib", []expr.Value{expr.VInt(11)}, plan)
		return fmt.Sprintf("answer=%v completed=%v makespan=%d events=%d metrics=%+v",
			rep.Answer, rep.Completed, rep.Makespan, rep.Events, rep.Metrics)
	}
	for _, crash := range []bool{false, true} {
		interp, compiled := run("interp", crash), run("compiled", crash)
		if interp != compiled {
			t.Fatalf("crash=%v reports diverged:\n interp   %s\n compiled %s", crash, interp, compiled)
		}
	}
}
