package machine

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// serveMachine opens a session on a fresh 8-proc mesh machine.
func serveMachine(t testing.TB, prog *lang.Program, scheme string, seed int64, sc ServeConfig) *Session {
	t.Helper()
	sch, err := recovery.ByName(scheme)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Topo: mustTopo(t, "mesh", 8), Scheme: sch, Seed: seed}, prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Serve(sc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionMultiRoot multiplexes several outstanding requests on one
// kernel and checks every answer against the reference evaluator, with
// completion stamps strictly inside the stream.
func TestSessionMultiRoot(t *testing.T) {
	prog := lang.Fib()
	s := serveMachine(t, prog, "rollback", 1, ServeConfig{ArrivalEvery: 500})
	var reqs []*Req
	for _, n := range []int64{8, 9, 10, 11} {
		r, err := s.Submit(prog, "fib", []expr.Value{expr.VInt(n)})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	for i, r := range reqs {
		s.Wait(r)
		if !r.Done() {
			t.Fatalf("request %d did not complete", i)
		}
		want, err := lang.RefEval(prog, "fib", r.args)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Answer().Equal(want) {
			t.Fatalf("request %d answer %v, want %v", i, r.Answer(), want)
		}
		if r.DoneAt() <= r.Arrival() {
			t.Fatalf("request %d completion stamp %d not after arrival %d", i, r.DoneAt(), r.Arrival())
		}
	}
	if got := s.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d after draining", got)
	}
	// Arrivals are spaced on the stream clock.
	if reqs[1].Arrival() != reqs[0].Arrival()+500 {
		t.Fatalf("arrival spacing: got %d and %d", reqs[0].Arrival(), reqs[1].Arrival())
	}
	rep := s.Finish()
	if !rep.Completed {
		t.Fatal("final report not completed")
	}
}

// TestSessionMixedPrograms submits requests from two different programs
// through one session: packets resolve their own program by tag.
func TestSessionMixedPrograms(t *testing.T) {
	fib, tak := lang.Fib(), lang.Tak()
	s := serveMachine(t, fib, "rollback", 2, ServeConfig{})
	r1, err := s.Submit(fib, "fib", []expr.Value{expr.VInt(9)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Submit(tak, "tak", []expr.Value{expr.VInt(8), expr.VInt(4), expr.VInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Req{r1, r2} {
		s.Wait(r)
		if !r.Done() {
			t.Fatalf("request %s did not complete", r.Fn())
		}
	}
	want, err := lang.RefEval(tak, "tak", r2.args)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Answer().Equal(want) {
		t.Fatalf("tak answer %v, want %v", r2.Answer(), want)
	}
}

// TestSessionInjectMidStream crashes processors between requests: the first
// request runs fault-free, a mid-stream injection kills two processors, and
// the stream keeps answering with recovered results.
func TestSessionInjectMidStream(t *testing.T) {
	prog := lang.Fib()
	s := serveMachine(t, prog, "rollback", 3, ServeConfig{})
	r1, err := s.Submit(prog, "fib", []expr.Value{expr.VInt(10)})
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(r1)
	if !r1.Done() {
		t.Fatal("first request did not complete")
	}
	// The stream clock has advanced; inject faults relative to it and keep
	// serving.
	now := int64(s.Now())
	plan := faults.Crash(proto.ProcID(2), now+50, true)
	plan.Add(faults.Fault{At: now + 120, Proc: proto.ProcID(5), Kind: faults.CrashAnnounced})
	stamps, err := s.Inject(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(stamps) != 2 || stamps[0] != now+50 || stamps[1] != now+120 {
		t.Fatalf("stamps = %v, want [%d %d]", stamps, now+50, now+120)
	}
	r2, err := s.Submit(prog, "fib", []expr.Value{expr.VInt(11)})
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(r2)
	if !r2.Done() {
		t.Fatal("request after mid-stream kills did not complete")
	}
	want, err := lang.RefEval(prog, "fib", r2.args)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Answer().Equal(want) {
		t.Fatalf("answer %v, want %v", r2.Answer(), want)
	}
	rep := s.Finish()
	if rep.Metrics.Failures != 2 {
		t.Fatalf("failures = %d, want 2", rep.Metrics.Failures)
	}
}

// TestSessionPastFaultClamped verifies a fault injected with a stamp in the
// stream's past fires immediately instead of panicking the kernel.
func TestSessionPastFaultClamped(t *testing.T) {
	prog := lang.Fib()
	s := serveMachine(t, prog, "rollback", 4, ServeConfig{})
	r1, err := s.Submit(prog, "fib", []expr.Value{expr.VInt(8)})
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(r1)
	now := int64(s.Now())
	stamps, err := s.Inject(faults.Crash(proto.ProcID(1), 1, true)) // tick 1 long gone
	if err != nil {
		t.Fatal(err)
	}
	if len(stamps) != 1 || stamps[0] != now {
		t.Fatalf("stamps = %v, want [%d]", stamps, now)
	}
	r2, err := s.Submit(prog, "fib", []expr.Value{expr.VInt(9)})
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(r2)
	if !r2.Done() {
		t.Fatal("request did not complete after clamped fault")
	}
}

// TestServeTwiceRejected: a machine serves once.
func TestServeTwiceRejected(t *testing.T) {
	prog := lang.Fib()
	s := serveMachine(t, prog, "none", 1, ServeConfig{})
	if _, err := s.m.Serve(ServeConfig{}); err == nil {
		t.Fatal("second Serve succeeded")
	}
	if _, err := s.Submit(prog, "nope", nil); err == nil {
		t.Fatal("unknown entry function accepted")
	}
}

// TestSessionRequestDeadline: a request that cannot finish (recovery "none"
// with a crash that destroys the root's work) resolves as not-done once its
// virtual budget is spent, while the session survives.
func TestSessionRequestDeadline(t *testing.T) {
	prog := lang.Fib()
	sch, err := recovery.ByName("none")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Topo: mustTopo(t, "mesh", 4), Scheme: sch, Seed: 1,
		Deadline: sim.Time(20000)}, prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Serve(ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Submit(prog, "fib", []expr.Value{expr.VInt(12)})
	if err != nil {
		t.Fatal(err)
	}
	// Kill every processor but one early: with no recovery the run can
	// never finish.
	plan := faults.Crash(proto.ProcID(0), 10, true)
	plan.Add(faults.Fault{At: 10, Proc: proto.ProcID(1), Kind: faults.CrashAnnounced})
	plan.Add(faults.Fault{At: 10, Proc: proto.ProcID(2), Kind: faults.CrashAnnounced})
	if _, err := s.Inject(plan); err != nil {
		t.Fatal(err)
	}
	s.Wait(r)
	if r.Done() {
		t.Fatal("unfinishable request reported done")
	}
	if got := s.Now(); got < 20000 {
		t.Fatalf("stream clock %d short of the request budget", got)
	}
	rep := s.Finish()
	if rep.Completed {
		t.Fatal("final report claims completion")
	}
}
