package machine

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/recovery"
	"repro/internal/topology"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_traces.txt from the current kernel")

// goldenCells are seeded runs whose full event traces are pinned: the S1
// mesh cell at 64 processors (the profile target) fault-free and under a
// mid-run burst, plus a splice cell so twin/relay/prefill events are
// covered. Every hot-path optimisation must leave these traces — event for
// event, note for note — byte-identical; the committed fingerprints were
// produced by the pre-optimisation kernel.
var goldenCells = []struct {
	name   string
	scheme string
	crash  int // processors killed at 2/5 of the fault-free makespan (0 = none)
}{
	{"s1-mesh64-rollback-faultfree", "rollback", 0},
	{"s1-mesh64-rollback-burst3", "rollback", 3},
	{"s1-mesh64-splice-burst3", "splice", 3},
	{"s1-mesh64-incremental-burst3", "incremental", 3},
}

// goldenRun executes one golden cell with tracing under the named evaluator
// and returns its fingerprint line: FNV-64a over every event string, plus
// the headline counters that would move first if determinism broke.
func goldenRun(t *testing.T, scheme string, crash int, eval string) string {
	t.Helper()
	topo, err := topology.ByName("mesh", 64)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := recovery.ByName(scheme)
	if err != nil {
		t.Fatal(err)
	}
	prog, fn, args := lang.Fib(), "fib", []expr.Value{expr.VInt(13)}
	run := func(plan *faults.Plan, tl *trace.Log) *Report {
		m, err := New(Config{Topo: topo, Scheme: sch, Seed: 1, Trace: tl, Eval: eval}, prog)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run(fn, args, plan)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plan := faults.None()
	if crash > 0 {
		base := run(nil, nil)
		if !base.Completed {
			t.Fatal("golden base run incomplete")
		}
		plan = faults.Burst(64, crash, int64(base.Makespan)*2/5, faults.CrashAnnounced, 1)
	}
	tl := trace.NewLog(0)
	rep := run(plan, tl)
	h := fnv.New64a()
	for _, ev := range tl.Events {
		fmt.Fprintln(h, ev.String())
	}
	return fmt.Sprintf("hash=%016x events=%d kernel_events=%d makespan=%d messages=%d completed=%v",
		h.Sum64(), len(tl.Events), rep.Events, rep.Makespan,
		rep.Metrics.TotalMessages(), rep.Completed)
}

// TestGoldenEventTraces pins the optimised kernel's event sequence to the
// pre-optimisation kernel's, byte for byte: any reordering of kernel
// events, renumbering of sequence tie-breaks, or drift in a counter shows
// up as a fingerprint mismatch. Regenerate deliberately with
// `go test ./internal/machine -run Golden -update` and justify the diff.
func TestGoldenEventTraces(t *testing.T) {
	path := filepath.Join("testdata", "golden_traces.txt")
	var got strings.Builder
	for _, c := range goldenCells {
		fmt.Fprintf(&got, "%s %s\n", c.name, goldenRun(t, c.scheme, c.crash, "interp"))
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if got.String() != string(want) {
		t.Errorf("golden trace fingerprints diverged from the pre-optimisation kernel:\n got:\n%s want:\n%s", got.String(), want)
	}
}

// TestGoldenEventTracesCompiled runs the same golden cells under the
// bytecode VM and requires the SAME committed fingerprints: the compiled
// evaluator must reproduce the tree-walker's event traces byte for byte,
// which is the machine-level face of the lang-level step-parity contract.
func TestGoldenEventTracesCompiled(t *testing.T) {
	if *updateGolden {
		t.Skip("golden file is rewritten from the interp run; the compiled run only verifies")
	}
	path := filepath.Join("testdata", "golden_traces.txt")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run TestGoldenEventTraces with -update to create): %v", err)
	}
	var got strings.Builder
	for _, c := range goldenCells {
		fmt.Fprintf(&got, "%s %s\n", c.name, goldenRun(t, c.scheme, c.crash, "compiled"))
	}
	if got.String() != string(want) {
		t.Errorf("compiled evaluator diverged from the committed golden fingerprints:\n got:\n%s want:\n%s", got.String(), want)
	}
}
