package machine

import (
	"errors"
	"fmt"

	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/trace"
)

// Session is the machine's service mode: a long-lived run that multiplexes
// several super-root requests on one event kernel. Each submitted request
// installs its own host pseudo-task (the pre-evaluation checkpoint of
// §4.3.1) with a distinct task key, so request trees never collide; the
// processors, their placement and balance state, the failure-detection
// bookkeeping and the fault history all persist between requests — exactly
// what a machine that "keeps answering while processors die" needs.
//
// A Session is single-threaded like the machine itself: callers (the core
// cluster adapter) serialize every method. Determinism is preserved because
// requests are admitted in Submit order at deterministic arrival ticks and
// every completion stamp is a kernel time.
//
// The one-shot Run is the degenerate session — one Submit, one Wait — and
// produces the byte-identical event stream of the pre-session machine: the
// first request reuses the zero host task key, buffered fault plans are
// scheduled before the periodic services, and an admission at the current
// tick installs directly instead of through a kernel event.
type Session struct {
	m   *Machine
	cfg ServeConfig

	started  bool
	finished bool
	final    *Report

	pendPlans []*faults.Plan
	pendReqs  []*Req

	reqs  []*Req
	byKey map[proto.TaskKey]*Req

	outstanding int
	lastArrival sim.Time
	haveArrival bool

	// Admission-control state: in-flight request count, the FIFO of offered
	// requests waiting for a slot, its high-water mark, and the shed count.
	// All of it is mutated only on the host's shard (the admission batch
	// events and rootDone both dispatch there), so the accounting is as
	// deterministic as the event order itself.
	inflight int
	queue    []*Req
	queueMax int
	shed     int
}

// ServeConfig parameterizes the service stream.
type ServeConfig struct {
	// ArrivalEvery spaces successive request admissions of one batch this
	// many virtual ticks apart, turning a batch into a stream with faults
	// landing between and inside requests. 0 admits the whole batch at the
	// drive tick.
	ArrivalEvery sim.Time

	// NextArrival, when set, overrides ArrivalEvery with an explicit arrival
	// schedule: request i is offered at stream offset NextArrival(i), clamped
	// to the submitting drive's tick if that offset already passed. This is
	// how the open-loop arrival generators (workload.Arrival) drive the
	// stream.
	NextArrival func(i int) sim.Time

	// MaxInFlight bounds concurrently admitted (installed, un-completed)
	// requests; 0 is unbounded. Offers beyond the bound follow Admission.
	MaxInFlight int

	// Admission picks what happens to an offer that finds every slot busy.
	Admission AdmissionPolicy

	// QueueBound caps the AdmitQueue FIFO: an offer that finds the queue
	// already holding QueueBound requests is shed exactly like AdmitShed.
	// 0 leaves the queue unbounded. Ignored under AdmitShed.
	QueueBound int
}

// AdmissionPolicy selects the full-cluster behavior of a bounded stream.
type AdmissionPolicy int

// The two bounded-admission policies. AdmitQueue is the zero value.
const (
	// AdmitQueue holds excess offers in a FIFO; each completion installs the
	// head. A queued request's per-request budget counts from its eventual
	// admission, not its offer.
	AdmitQueue AdmissionPolicy = iota
	// AdmitShed rejects excess offers outright: the request is marked shed
	// at its offer tick and never consumes machine resources.
	AdmitShed
)

// Req is one submitted request: the session-side record of a super-root
// evaluation. Fields are stamped by the kernel as the stream progresses.
type Req struct {
	id        int
	fn        string
	args      []expr.Value
	prog      int
	arrival   sim.Time
	offered   sim.Time
	queuedFor sim.Time
	done      bool
	doneAt    sim.Time
	answer    expr.Value
	shed      bool
	shedAt    sim.Time
}

// ID is the request's stream index (0-based, admission order).
func (r *Req) ID() int { return r.id }

// Fn names the request's entry function.
func (r *Req) Fn() string { return r.fn }

// Arrival is the virtual tick the request was admitted at: its offer tick
// on the unbounded path, or the tick the admission queue installed it.
func (r *Req) Arrival() sim.Time { return r.arrival }

// QueuedFor is the time the request spent in the admission FIFO before it
// got a slot: install tick minus offer tick, 0 for requests admitted
// directly. Time in queue is deliberately outside the per-request budget
// and the service latency (DoneAt − Arrival) — it measures the admission
// layer, not the machine.
func (r *Req) QueuedFor() sim.Time { return r.queuedFor }

// Shed reports whether admission control rejected the request.
func (r *Req) Shed() bool { return r.shed }

// ShedAt is the tick the request was shed at (valid when Shed).
func (r *Req) ShedAt() sim.Time { return r.shedAt }

// Done reports whether the answer reached the super-root.
func (r *Req) Done() bool { return r.done }

// DoneAt is the completion stamp (valid when Done).
func (r *Req) DoneAt() sim.Time { return r.doneAt }

// Answer is the request's result (valid when Done).
func (r *Req) Answer() expr.Value { return r.answer }

// Serve attaches the service session to the machine. A machine serves (or
// runs) exactly once.
func (m *Machine) Serve(cfg ServeConfig) (*Session, error) {
	if m.session != nil {
		return nil, errors.New("machine: machine already serving (a machine instance runs once)")
	}
	s := &Session{m: m, cfg: cfg, byKey: map[proto.TaskKey]*Req{}}
	m.session = s
	return s, nil
}

// hostKey is the host pseudo-task key of request id. Request 0 reuses the
// zero key of the one-shot machine; request i>0 roots its tree at stamp [i],
// so no request's task stamps can collide with another's (request 0's tasks
// all carry prefix [0], request i's the prefix [i]).
func hostKey(id int) proto.TaskKey {
	if id == 0 {
		return proto.TaskKey{}
	}
	return proto.TaskKey{Stamp: stamp.FromPath(uint32(id))}
}

// Submit enqueues fn(args) from prog; the request is admitted at the next
// drive. The program is interned machine-wide: distinct programs coexist,
// with every task packet tagged by its request's program.
func (s *Session) Submit(prog *lang.Program, fn string, args []expr.Value) (*Req, error) {
	if s.finished {
		return nil, errors.New("machine: session already finished")
	}
	if prog == nil {
		return nil, errors.New("machine: program is required")
	}
	if _, ok := prog.Func(fn); !ok {
		return nil, fmt.Errorf("machine: entry function %q not in program", fn)
	}
	pi, err := s.m.progIndex(prog)
	if err != nil {
		return nil, err
	}
	r := &Req{id: len(s.reqs), fn: fn, args: args, prog: pi}
	s.reqs = append(s.reqs, r)
	s.pendReqs = append(s.pendReqs, r)
	return r, nil
}

// Inject schedules the plan's faults on the stream clock: a fault at tick t
// fires at stream tick t, or immediately if t already passed. Plans injected
// before the first drive are buffered and scheduled ahead of the periodic
// services, preserving the one-shot machine's same-tick dispatch order. It
// returns the stream stamps the faults will fire at.
func (s *Session) Inject(plan *faults.Plan) ([]int64, error) {
	if plan == nil {
		plan = faults.None()
	}
	if err := plan.Validate(s.m.n); err != nil {
		return nil, err
	}
	sorted := plan.Sorted()
	stamps := make([]int64, 0, len(sorted))
	if !s.started {
		s.pendPlans = append(s.pendPlans, plan)
		for _, f := range sorted {
			stamps = append(stamps, f.At)
		}
		return stamps, nil
	}
	now := s.m.kern.Now()
	for _, f := range sorted {
		f := f
		at := sim.Time(f.At)
		if at < now {
			at = now
		}
		stamps = append(stamps, int64(at))
		// The injection event is owned by the target processor, so it
		// dispatches on that processor's shard.
		s.m.kern.AtOn(at, int32(f.Proc), func() { s.m.inject(f) })
	}
	return stamps, nil
}

// start schedules the buffered fault plans and then the periodic services —
// fault injections first so they dispatch before same-tick protocol events,
// exactly like the one-shot machine.
func (s *Session) start() {
	if s.started {
		return
	}
	s.started = true
	m := s.m
	for _, plan := range s.pendPlans {
		for _, f := range plan.Sorted() {
			f := f
			m.kern.AtOn(sim.Time(f.At), int32(f.Proc), func() { m.inject(f) })
		}
	}
	s.pendPlans = nil
	// Start periodic services with per-processor deterministic stagger;
	// every tick event is owned by its processor so it lives on the
	// processor's shard.
	for i, p := range m.procs {
		p := p
		if m.cfg.HeartbeatEvery > 0 {
			m.kern.AtOn(m.cfg.HeartbeatEvery+sim.Time(i), int32(i), p.heartbeatTick)
		}
		if m.cfg.LoadGossipEvery > 0 {
			m.kern.AtOn(sim.Time(1+i%int(m.cfg.LoadGossipEvery)), int32(i), p.gossipTick)
		}
		// Seed heartbeat liveness so nobody is declared dead before the
		// first exchange.
		for _, nb := range p.neighbors {
			p.lastHeard[nb] = 0
		}
	}
	if m.cfg.StateProbeEvery > 0 {
		// The probe runs as the coordinator's pacer: it fires at a window
		// barrier every period, where reading all shards is safe, and it
		// counts as a dispatched event exactly like the self-rescheduling
		// probe timer it replaces.
		m.kern.SetPacer(m.cfg.StateProbeEvery, m.cfg.StateProbeEvery, func(t sim.Time) {
			m.stateSamples = append(m.stateSamples, m.sampleStateAt(t))
		})
	}
}

// admit offers the pending requests to the stream: offers are grouped by
// arrival tick and each same-tick batch becomes one host-owned kernel event
// that offers the whole batch in submission order — one event instead of N
// on the one-shot path, and the offer runs on the host's shard where the
// spawn and admission bookkeeping live. With ArrivalEvery > 0 the batch
// spreads into a stream, one admission event per distinct arrival tick;
// with NextArrival set, the explicit schedule places each offer instead.
func (s *Session) admit() {
	m := s.m
	if len(s.pendReqs) == 0 {
		return
	}
	now := m.kern.Now()
	hostOwner := m.ownerOf(proto.HostID)
	var batch []*Req
	var batchAt sim.Time
	flush := func() {
		reqs := batch
		m.kern.AtOn(batchAt, hostOwner, func() {
			for _, r := range reqs {
				s.offer(r)
			}
		})
	}
	for _, r := range s.pendReqs {
		arr := now
		if s.cfg.NextArrival != nil {
			if at := s.cfg.NextArrival(r.id); at > arr {
				arr = at
			}
		} else if s.haveArrival && s.cfg.ArrivalEvery > 0 {
			if next := s.lastArrival + s.cfg.ArrivalEvery; next > arr {
				arr = next
			}
		}
		s.lastArrival, s.haveArrival = arr, true
		r.arrival = arr
		s.outstanding++
		s.byKey[hostKey(r.id)] = r
		if len(batch) > 0 && arr != batchAt {
			flush()
			batch = nil
		}
		batchAt = arr
		batch = append(batch, r)
	}
	flush()
	s.pendReqs = nil
}

// offer runs admission control for one request at its arrival tick, on the
// host's shard. An open slot (or an unbounded stream) installs immediately;
// a full cluster queues or sheds per the policy. Shedding stops the kernel
// like a completion does, so a driver waiting on the shed request observes
// the decision.
func (s *Session) offer(r *Req) {
	m := s.m
	r.offered = m.host.k.Now()
	if s.cfg.MaxInFlight > 0 && s.inflight >= s.cfg.MaxInFlight {
		full := s.cfg.Admission == AdmitQueue &&
			s.cfg.QueueBound > 0 && len(s.queue) >= s.cfg.QueueBound
		if s.cfg.Admission == AdmitShed || full {
			r.shed = true
			r.shedAt = m.host.k.Now()
			s.shed++
			s.outstanding--
			m.host.k.Stop()
			return
		}
		s.queue = append(s.queue, r)
		if len(s.queue) > s.queueMax {
			s.queueMax = len(s.queue)
		}
		return
	}
	s.install(r)
}

// install creates the request's host pseudo-task and demands the root
// application — the super-root retains the root task packet (§4.3.1). The
// arrival stamp is the install tick: identical to the offer tick on the
// direct path, and the dequeue tick for a request the admission queue held
// (its per-request budget starts when it actually gets a slot).
func (s *Session) install(r *Req) {
	m := s.m
	s.inflight++
	r.arrival = m.host.k.Now()
	r.queuedFor = r.arrival - r.offered
	hostPkt := &proto.TaskPacket{
		Key:    hostKey(r.id),
		Fn:     r.fn,
		Parent: proto.Addr{Proc: noProc},
		Prog:   r.prog,
	}
	hostTask := newTask(hostPkt)
	hostTask.isHostRoot = true
	hostTask.state = taskWaiting
	hostTask.residual = m.evalOf(r.prog).RootState(0)
	hostTask.nextID = 1
	m.host.tasks[hostPkt.Key] = hostTask
	m.host.spawnDemand(hostTask, lang.Demand{ID: 0, Fn: r.fn, Args: r.args})
}

// rootDone records a request's completion stamp and stops the kernel so any
// driver waiting on it can observe the state; drivers waiting on other
// requests simply resume. The machine-level done fields record the first
// completion (the request itself, in a one-shot run).
func (s *Session) rootDone(key proto.TaskKey, v expr.Value) {
	r := s.byKey[key]
	if r == nil || r.done {
		return // late completion of an already-resolved incarnation
	}
	r.done = true
	r.doneAt = s.m.host.k.Now()
	r.answer = v
	s.outstanding--
	s.inflight--
	m := s.m
	if !m.done {
		m.done = true
		m.answer = v
		m.doneAt = r.doneAt
	}
	m.log(proto.HostID, trace.KRootDone, "", v.String())
	// A freed slot installs the admission queue's head inline: rootDone runs
	// on the host's shard inside the completion event, exactly the context
	// the batch admission events install from, so the dequeue is as
	// deterministic (and shard-count-invariant) as the completion itself.
	if len(s.queue) > 0 && (s.cfg.MaxInFlight <= 0 || s.inflight < s.cfg.MaxInFlight) {
		next := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		s.install(next)
	}
	m.host.k.Stop()
}

// Wait drives the kernel until r completes, is shed, errors, or exhausts
// its budget: each request gets Config.Deadline virtual ticks from its
// arrival and Config.MaxEvents dispatches per drive segment. On return
// r.Done reports completion and r.Shed an admission rejection; both false
// after Wait means the request timed out (the stream itself continues —
// later submissions still run).
func (s *Session) Wait(r *Req) {
	m := s.m
	// Admissions are scheduled before start's fault plans, so a same-tick
	// batch installs ahead of a fault injected at the same tick — the order
	// the one-shot machine's direct install produced.
	s.admit()
	s.start()
	for {
		if r.done || r.shed || m.runErr != nil || s.finished {
			return
		}
		// Recomputed each pass: a queued request's arrival moves to its
		// install tick, and its budget counts from there.
		deadline := r.arrival + m.cfg.Deadline
		if m.kern.Now() >= deadline {
			return
		}
		m.segment++
		res := m.kern.RunUntil(deadline, m.cfg.MaxEvents)
		m.mergeRunErr()
		if res != sim.RunStopped {
			return // deadline, quiescent, or event budget: r did not make it
		}
		// Stopped: some request completed (possibly r) or the run failed;
		// loop to re-check and resume the stream otherwise.
	}
}

// Outstanding reports how many admitted requests have not completed.
func (s *Session) Outstanding() int { return s.outstanding }

// ShedCount reports how many offers admission control rejected.
func (s *Session) ShedCount() int { return s.shed }

// QueueDepthMax reports the admission queue's high-water mark.
func (s *Session) QueueDepthMax() int { return s.queueMax }

// Now is the stream clock in virtual ticks.
func (s *Session) Now() sim.Time { return s.m.kern.Now() }

// RunErr reports a program evaluation error, if one occurred; it poisons the
// whole session (evaluation errors are deterministic program bugs).
func (s *Session) RunErr() error { return s.m.runErr }

// Procs is the processor count.
func (s *Session) Procs() int { return s.m.n }

// SchemeName and PlacementName echo the configuration for reports.
func (s *Session) SchemeName() string { return s.m.cfg.Scheme.Name() }

// PlacementName echoes the placement policy name.
func (s *Session) PlacementName() string { return s.m.cfg.Placement.Name() }

// Finish closes the stream and returns the machine's aggregate report —
// the same accounting the one-shot Run performs. Idempotent; the session
// rejects further submissions afterwards.
func (s *Session) Finish() *Report {
	if s.finished {
		return s.final
	}
	s.finished = true
	s.final = s.m.finalReport()
	return s.final
}
