package machine

import (
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/balance"
	"repro/internal/checkpoint"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/trace"
)

// proc is one processor of the machine (or the host pseudo-processor).
// It is single-threaded: all methods run inside kernel events.
//
// The per-neighbor and per-peer bookkeeping (faulty, nbGrad, lastHeard) is
// ProcID-indexed slices rather than maps: processor ids are dense small
// integers, and these tables sit on the failure-detection and placement hot
// paths. TestSliceStateMatchesMapSemantics pins the map semantics the
// slices replace (absent key = not faulty / MaxGradient / never heard).
type proc struct {
	id     proto.ProcID
	m      *Machine
	isHost bool

	// Shard pinning: every event this processor owns dispatches on shard
	// sc, through kernel k. idx is the kernel owner index (id, or n for the
	// host).
	k   *sim.Kernel
	sc  *shardCtx
	idx int

	// rng is the processor's private randomness stream: per-processor
	// rather than per-kernel so the draw sequence is independent of which
	// processors share a shard.
	rng *rand.Rand

	// genSeq and repSeq drive the processor's private generation and
	// replica-lineage id streams (strided by idx so ids are unique
	// machine-wide without shared counters).
	genSeq uint64
	repSeq uint64

	// failedAt is the injected failure time (-1 = never failed), with the
	// dispatch position of the injection for the detection-latency merge.
	failedAt sim.Time
	failSeg  int
	failKey  sim.Key

	dead    bool
	corrupt bool

	tasks  map[proto.TaskKey]*task
	readyQ []proto.TaskKey
	busy   bool

	store  *checkpoint.Store
	policy recovery.Policy

	faulty    []bool // indexed by ProcID; the host is assumed reliable
	faultyN   int    // count of true entries in faulty (placement fast path)
	neighbors []proto.ProcID

	// Gradient-model state: last gossiped value per neighbor (MaxGradient
	// until heard), last value we sent (to gossip only on change).
	nbGrad       []int
	lastSentGrad int

	// Heartbeat bookkeeping: last time each neighbor answered (-1 = never).
	lastHeard []sim.Time

	// relayBuf buffers orphan results for twins whose placement is not yet
	// acknowledged (§4.1 "Having the grandparent relay partial results").
	relayBuf map[proto.TaskKey][]*proto.Result

	// hostRelayed marks failures this processor has already announced to
	// the host console, so inheriting console duty (see relaysToHost)
	// relays each failure at most once.
	hostRelayed []bool

	hbTimer     sim.Timer
	gossipTimer sim.Timer

	// hbFn and gossipFn are the periodic tick closures, built once so
	// rescheduling a tick does not allocate a fresh closure every period.
	hbFn     func()
	gossipFn func()

	// stepsDone counts reduction steps executed here (load accounting).
	stepsDone int64

	// holeSlab and childSlab are bump allocators for the per-demand hole
	// and child records. Both record kinds are proc-private — a task lives
	// on exactly one processor and recovery reissues build fresh tasks on
	// the surviving side — so batching them into chunks replaces one small
	// heap allocation per spawned demand with one per chunk. Appends never
	// move earlier entries (a full chunk is abandoned, not grown), so
	// pointers into a slab stay valid for the record's whole life.
	holeSlab  []holeRec
	childSlab []childRef
}

// recSlabChunk sizes the next slab chunk: doubling from 8 up to 64 keeps
// lightly loaded processors near the footprint of individual allocations
// while busy ones amortize 64 records per chunk.
func recSlabChunk(prev int) int {
	n := prev * 2
	if n < 8 {
		n = 8
	}
	if n > 64 {
		n = 64
	}
	return n
}

// newHole draws a zeroed hole record for id from the proc's slab.
func (p *proc) newHole(id int) *holeRec {
	if len(p.holeSlab) == cap(p.holeSlab) {
		p.holeSlab = make([]holeRec, 0, recSlabChunk(cap(p.holeSlab)))
	}
	p.holeSlab = append(p.holeSlab, holeRec{id: id})
	return &p.holeSlab[len(p.holeSlab)-1]
}

// newChildRef draws a zeroed child record from the proc's slab.
func (p *proc) newChildRef(key proto.TaskKey) *childRef {
	if len(p.childSlab) == cap(p.childSlab) {
		p.childSlab = make([]childRef, 0, recSlabChunk(cap(p.childSlab)))
	}
	p.childSlab = append(p.childSlab, childRef{key: key})
	return &p.childSlab[len(p.childSlab)-1]
}

// holeFor is task.hole with the record drawn from the proc's slab.
func (p *proc) holeFor(t *task, id int) *holeRec {
	for id >= len(t.holes) {
		t.holes = append(t.holes, nil)
	}
	if h := t.holes[id]; h != nil {
		return h
	}
	h := p.newHole(id)
	t.holes[id] = h
	return h
}

func newProc(id proto.ProcID, m *Machine, isHost bool) *proc {
	p := &proc{
		id:           id,
		m:            m,
		isHost:       isHost,
		tasks:        make(map[proto.TaskKey]*task),
		store:        checkpoint.NewStore(),
		faulty:       make([]bool, m.n),
		nbGrad:       make([]int, m.n),
		lastHeard:    make([]sim.Time, m.n),
		relayBuf:     make(map[proto.TaskKey][]*proto.Result),
		lastSentGrad: -1,
	}
	for i := range p.nbGrad {
		p.nbGrad[i] = balance.MaxGradient
	}
	for i := range p.lastHeard {
		p.lastHeard[i] = -1
	}
	if isHost {
		p.neighbors = []proto.ProcID{0}
	} else {
		for _, nb := range m.cfg.Topo.Neighbors(toNode(id)) {
			p.neighbors = append(p.neighbors, proto.ProcID(nb))
		}
	}
	p.hbFn = p.heartbeatTick
	p.gossipFn = p.gossipTick
	p.policy = m.cfg.Scheme.New(p)
	return p
}

// --- balance.View ---

// Self implements balance.View and recovery.Ops.
func (p *proc) Self() proto.ProcID { return p.id }

// Size implements balance.View.
func (p *proc) Size() int { return p.m.n }

// QueueLen implements balance.View: ready tasks plus the one running.
func (p *proc) QueueLen() int {
	n := len(p.readyQ)
	if p.busy {
		n++
	}
	return n
}

// Neighbors implements balance.View.
func (p *proc) Neighbors() []proto.ProcID { return p.neighbors }

// NeighborGradient implements balance.View.
func (p *proc) NeighborGradient(q proto.ProcID) int {
	if q >= 0 && int(q) < len(p.nbGrad) {
		return p.nbGrad[q]
	}
	return balance.MaxGradient
}

// isFaulty reports whether q is believed failed. Ids outside the processor
// range (the host, pending placements) are never faulty.
func (p *proc) isFaulty(q proto.ProcID) bool {
	return q >= 0 && int(q) < len(p.faulty) && p.faulty[q]
}

// IsFaulty implements balance.View and part of recovery.Ops.
func (p *proc) IsFaulty(q proto.ProcID) bool { return p.isFaulty(q) }

// FaultyCount implements balance's optional liveView extension: the number
// of processors this one believes failed, kept exactly in sync with the
// faulty bitmap by declareFaulty.
func (p *proc) FaultyCount() int { return p.faultyN }

// Rand implements balance.View.
func (p *proc) Rand() *rand.Rand { return p.rng }

// freshRep allocates a replica lineage id (never 0; 0 means the original
// lineage). The stream is private to this processor and strided by its
// owner index, so ids are machine-unique with no cross-shard counter.
func (p *proc) freshRep() proto.Rep {
	p.repSeq++
	return proto.Rep(p.repSeq*uint64(p.m.n+2) + uint64(p.idx))
}

// freshGen allocates an incarnation generation (never 0; 0 means "any"),
// from the same kind of private strided stream as freshRep.
func (p *proc) freshGen() uint64 {
	p.genSeq++
	return p.genSeq*uint64(p.m.n+2) + uint64(p.idx)
}

// --- recovery.Ops ---

// Store implements recovery.Ops.
func (p *proc) Store() *checkpoint.Store { return p.store }

// ResidentTaskKeys implements recovery.Ops.
func (p *proc) ResidentTaskKeys() []proto.TaskKey {
	out := make([]proto.TaskKey, 0, len(p.tasks))
	for k, t := range p.tasks {
		if t.state != taskAborted {
			out = append(out, k)
		}
	}
	slices.SortFunc(out, func(a, b proto.TaskKey) int {
		if c := a.Stamp.Compare(b.Stamp); c != 0 {
			return c
		}
		switch {
		case a.Rep < b.Rep:
			return -1
		case a.Rep > b.Rep:
			return 1
		}
		return 0
	})
	return out
}

// TaskWaitingOnHole implements recovery.Ops.
func (p *proc) TaskWaitingOnHole(key proto.TaskKey, holeID int) bool {
	t, ok := p.tasks[key]
	if !ok || t.state == taskAborted {
		return false
	}
	h := t.holeAt(holeID)
	return h != nil && !h.filled
}

// UnfilledHoles implements recovery.Ops.
func (p *proc) UnfilledHoles(key proto.TaskKey) int {
	t, ok := p.tasks[key]
	if !ok || t.state == taskAborted {
		return -1
	}
	return t.unfilled
}

// Defer implements recovery.Ops: fn runs on this processor's own shard
// kernel after delay ticks, which keeps paced recovery decisions on the
// owning shard. A processor that dies before the timer fires does nothing —
// its checkpoints are somebody else's problem by then.
func (p *proc) Defer(delay int64, fn func()) {
	if delay < 1 {
		delay = 1
	}
	p.k.After(sim.Time(delay), func() {
		if p.dead {
			return
		}
		fn()
	})
}

// IsKnownFaulty implements recovery.Ops.
func (p *proc) IsKnownFaulty(q proto.ProcID) bool { return p.isFaulty(q) }

// Metrics implements recovery.Ops. The counters are the owning shard's;
// they merge commutatively at Finish.
func (p *proc) Metrics() *trace.Metrics { return &p.sc.metrics }

// Log implements recovery.Ops.
func (p *proc) Log(kind trace.Kind, task fmt.Stringer, note string) {
	label := ""
	if task != nil {
		label = task.String()
	}
	p.m.log(p.id, kind, label, note)
}

// DropResult implements recovery.Ops.
func (p *proc) DropResult(res *proto.Result, stranded bool) {
	if stranded {
		p.sc.metrics.Stranded++
		p.m.log(p.id, trace.KStrand, res.Child.String(), "no live ancestor")
		return
	}
	p.sc.metrics.LateResults++
	p.m.log(p.id, trace.KLateResult, res.Child.String(), "discarded")
}

// Respawn implements recovery.Ops: re-inject a retained packet (rollback
// reissue or splice twin). The parent's hole record is re-armed so the new
// incarnation's placement and result are tracked like the original's.
func (p *proc) Respawn(pkt *proto.TaskPacket) {
	parent, ok := p.tasks[pkt.Parent.Task]
	if !ok || parent.state == taskAborted {
		p.m.log(p.id, trace.KLateResult, pkt.Key.String(), "respawn skipped: parent gone")
		return
	}
	h := parent.holeAt(pkt.HoleID)
	if h == nil || h.filled {
		p.m.log(p.id, trace.KLateResult, pkt.Key.String(), "respawn skipped: hole filled")
		return
	}
	var cr *childRef
	for _, c := range h.children {
		if c.key == pkt.Key {
			cr = c
			break
		}
	}
	if cr == nil {
		cr = p.newChildRef(pkt.Key)
		h.children = append(h.children, cr)
	}
	cr.ackTimer.Stop()
	pkt.Gen = p.freshGen()
	pkt.ParentGen = parent.pkt.Gen
	cr.gen = pkt.Gen
	cr.dest = checkpoint.PendingDest
	cr.retries = 0
	cr.returned = false
	cr.vote = nil
	if pkt.Twin {
		p.sc.metrics.Twins++
	} else if pkt.Reissue {
		p.sc.metrics.Reissues++
	}
	p.sc.metrics.TasksSpawned++
	if !p.m.cfg.DisableCheckpoints {
		p.store.Retain(pkt)
	}
	p.route(parent, pkt, cr, nil)
}

// Abort implements recovery.Ops: kill a resident task and garbage-collect
// its abandoned relatives (§3.2). scope, when not the root stamp, is the
// reissued checkpoint whose genealogical dependents are being collected:
// the abort then propagates both down to children and up to the parent, as
// long as the relative's stamp stays inside the scope. An unscoped abort
// cascades downward only.
func (p *proc) Abort(key proto.TaskKey, scope stamp.Stamp, reason string) {
	p.abortGen(key, 0, scope, reason)
}

// abortGen kills the resident task with the given key if its generation
// matches (gen 0 kills unconditionally — used when the caller identified the
// task locally). Generation targeting guarantees a stale abort aimed at an
// abandoned incarnation can never hit a reissued or twin replacement that
// reuses the stamp; a missed orphan dies lazily when its result proves
// undeliverable.
func (p *proc) abortGen(key proto.TaskKey, gen uint64, scope stamp.Stamp, reason string) {
	t, ok := p.tasks[key]
	if !ok || t.state == taskAborted {
		return
	}
	if gen != 0 && t.pkt.Gen != gen {
		return // different incarnation; not ours to kill
	}
	t.cancelTimers()
	t.state = taskAborted
	delete(p.tasks, key)
	p.sc.metrics.TasksAborted++
	p.sc.metrics.StepsWasted += t.stepsSpent
	p.m.log(p.id, trace.KAbort, key.String(), reason)
	// Holes are stored dense by demand id, so index order is ascending id
	// order — the order the sort.Ints pass used to establish.
	for _, h := range t.holes {
		if h == nil || h.filled {
			continue
		}
		for _, c := range h.children {
			p.store.Release(c.key)
			if c.dest >= 0 && !p.faulty[c.dest] {
				p.m.send(proto.Msg{
					Type: proto.MsgAbort, From: p.id, To: c.dest,
					AbortTask: c.key, AbortGen: c.gen, AbortScope: scope,
				})
			}
		}
	}
	// Upward propagation within the scope: the parent's arguments can no
	// longer be obtained ("a processor is required to abort a task if new
	// arguments of the task cannot be obtained" — §3.2). The parent is
	// targeted by the exact incarnation that spawned us, so replacements
	// are safe.
	if !scope.IsRoot() && scope.IsAncestorOf(t.pkt.Parent.Task.Stamp) {
		pp := t.pkt.Parent.Proc
		if pp == p.id {
			p.abortGen(t.pkt.Parent.Task, t.pkt.ParentGen, scope, "dependent of reissued "+scope.String())
		} else if pp >= 0 && !p.faulty[pp] {
			p.m.send(proto.Msg{
				Type: proto.MsgAbort, From: p.id, To: pp,
				AbortTask: t.pkt.Parent.Task, AbortGen: t.pkt.ParentGen, AbortScope: scope,
			})
		}
		return
	}
	// The cascade stops here: the parent is outside the abort scope (or the
	// abort was unscoped). A live parent still counting on this incarnation
	// must learn it is gone, or its hole can never fill: an abort scope from
	// a stale checkpoint reissued on late failure detection can cut across
	// lineages and kill live-lineage tasks whose parents the scope does not
	// reach (observed as a permanent wedge under multi-fault kills). The
	// parent answers by respawning from its retained checkpoint; stale
	// notifications are filtered by generation there (see onChildAbort).
	pp := t.pkt.Parent.Proc
	if pp == noProc || (pp >= 0 && p.faulty[pp]) {
		return // no parent, or the parent's processor failed (orphan GC)
	}
	p.m.send(proto.Msg{
		Type: proto.MsgChildAbort, From: p.id, To: pp,
		AbortTask: t.pkt.Key, AbortGen: t.pkt.Gen,
	})
}

// onChildAbort handles a notification that a child incarnation this
// processor placed was aborted remotely. If the hole is still unfilled and
// the aborted incarnation is the one being tracked, the child is respawned
// from the retained checkpoint — exactly the reissue path, so placement,
// acks, and result tracking re-arm as usual.
func (p *proc) onChildAbort(msg *proto.Msg) {
	pkt, ok := p.store.Get(msg.AbortTask)
	if !ok {
		return // hole already filled (checkpoint released) or never ours
	}
	parent, ok := p.tasks[pkt.Parent.Task]
	if !ok || parent.state == taskAborted {
		return
	}
	h := parent.holeAt(pkt.HoleID)
	if h == nil || h.filled {
		return
	}
	var cr *childRef
	for _, c := range h.children {
		if c.key == msg.AbortTask {
			cr = c
			break
		}
	}
	if cr == nil || cr.gen != msg.AbortGen {
		return // stale: a different incarnation is already in flight
	}
	fresh := pkt.Clone()
	fresh.Reissue = true
	fresh.Twin = false
	p.m.log(p.id, trace.KReissue, fresh.Key.String(), fmt.Sprintf("child aborted on %d", msg.From))
	p.Respawn(fresh)
}

// EscalateResult implements recovery.Ops: forward an undeliverable result to
// the first believed-live ancestor, or strand it (§4.1, §5.2).
func (p *proc) EscalateResult(res *proto.Result) {
	rem := res.Remaining
	for len(rem) > 0 {
		anc := rem[0]
		rem = rem[1:]
		if anc.Proc != proto.HostID && p.faulty[anc.Proc] {
			continue
		}
		fwd := *res
		fwd.ParentTask = anc.Task
		fwd.Remaining = rem
		p.sc.metrics.MsgGrand++ // categorized here; send() counts bytes/hops
		p.m.send(proto.Msg{Type: proto.MsgGrandResult, From: p.id, To: anc.Proc, Result: &fwd})
		// Guard the escalation with the completing task's result timer: if
		// the ancestor is silently dead too, time out and escalate further
		// (§5.2 multi-fault extension).
		if t, ok := p.tasks[res.Child]; ok {
			t.escalated = true
			t.resultTimer.Stop()
			resCopy := fwd
			ancProc := anc.Proc
			t.resultTimer = p.k.After(p.m.cfg.ResultTimeout, func() {
				p.onGrandTimeout(res.Child, ancProc, &resCopy)
			})
		}
		return
	}
	// No live ancestor remains: the orphan is stranded (§5.2).
	p.DropResult(res, true)
	if t, ok := p.tasks[res.Child]; ok && t.state == taskReturning {
		t.cancelTimers()
		t.state = taskAborted
		delete(p.tasks, res.Child)
		p.sc.metrics.TasksAborted++
		p.sc.metrics.StepsWasted += t.stepsSpent
	}
}

// onGrandTimeout: the ancestor we escalated to never acknowledged — it is
// dead as well. Declare it and continue up the chain with the remaining
// ancestors.
func (p *proc) onGrandTimeout(child proto.TaskKey, ancProc proto.ProcID, res *proto.Result) {
	if p.dead {
		return
	}
	if _, ok := p.tasks[child]; !ok {
		return // retired meanwhile
	}
	p.declareFaulty(ancProc)
	p.EscalateResult(res)
}

// DeclareFaulty implements recovery.Ops.
func (p *proc) DeclareFaulty(q proto.ProcID) { p.declareFaulty(q) }

// relaysToHost reports whether this processor currently holds console duty:
// it is the lowest-numbered processor it does not itself believe failed.
// With processor 0 alive that is processor 0 — the paper's "operator
// console attaches at processor 0's port" (§4.3.1) — and when 0 dies the
// next live processor inherits the duty. Without the inheritance, any crash
// set containing processor 0 left the host deaf to later announcements, so
// a root task whose only checkpoint the host held was never reissued and
// the run stranded until its deadline (the documented ancestor-chain-loss
// wedge, e.g. killing {0,5} of 6 under rollback).
func (p *proc) relaysToHost() bool {
	if p.isHost {
		return false
	}
	for q := proto.ProcID(0); q < p.id; q++ {
		if !p.faulty[q] {
			return false
		}
	}
	return true
}

// relayFailuresToHost forwards every not-yet-relayed known failure to the
// host, in ascending processor order. A processor that just inherited
// console duty thereby back-fills announcements it declared before taking
// over; for processor 0 in a healthy run this degenerates to relaying
// exactly the failure that was just declared.
func (p *proc) relayFailuresToHost() {
	if p.hostRelayed == nil {
		p.hostRelayed = make([]bool, p.m.n)
	}
	for q := 0; q < p.m.n; q++ {
		if p.faulty[q] && !p.hostRelayed[q] {
			p.hostRelayed[q] = true
			p.m.send(proto.Msg{Type: proto.MsgFaultAnnounce, From: p.id, To: proto.HostID, Failed: proto.ProcID(q)})
		}
	}
}

// declareFaulty marks q failed, floods the announcement, fails fast any
// returning results addressed to q, and invokes the recovery policy.
func (p *proc) declareFaulty(q proto.ProcID) {
	if q == proto.HostID || q == p.id || p.dead || p.isFaulty(q) {
		return
	}
	p.faulty[q] = true
	p.faultyN++
	p.sc.metrics.Detections++
	p.m.noteDetection(p, q)
	p.m.log(p.id, trace.KDetect, "", fmt.Sprintf("processor %d failed", q))
	// Flood the announcement (§4.2 "error-detection").
	for _, nb := range p.neighbors {
		if !p.faulty[nb] {
			p.m.send(proto.Msg{Type: proto.MsgFaultAnnounce, From: p.id, To: nb, Failed: q})
		}
	}
	if p.relaysToHost() {
		// The console relay forwards announcements to the host.
		p.relayFailuresToHost()
	}
	// Recovery hook.
	p.policy.OnFailureDetected(q)
	// Fail fast: returning tasks whose parent lived on q should not wait
	// for their result-ack timeout.
	keys := p.ResidentTaskKeys()
	for _, k := range keys {
		t, ok := p.tasks[k]
		if !ok || t.state != taskReturning || t.escalated {
			continue
		}
		if t.pkt.Parent.Proc == q {
			t.resultTimer.Stop()
			p.policy.OnResultUndeliverable(p.buildResult(t))
		}
	}
}

// RelayToTwin implements recovery.Ops: forward an orphan result to the dead
// task's twin, buffering until the twin's placement is acknowledged.
func (p *proc) RelayToTwin(res *proto.Result) {
	key := res.DeadParent.Task
	dest, ok := p.store.Dest(key)
	if !ok {
		p.DropResult(res, false)
		return
	}
	if dest == checkpoint.PendingDest || p.isFaulty(dest) {
		p.relayBuf[key] = append(p.relayBuf[key], res)
		return
	}
	fwd := *res
	fwd.ParentTask = key
	p.sc.metrics.MsgResult++
	p.m.send(proto.Msg{Type: proto.MsgResult, From: p.id, To: dest, Result: &fwd})
}

// --- task execution ---

// maybeRun starts the next ready task if the processor is free.
func (p *proc) maybeRun() {
	if p.busy || p.dead {
		return
	}
	for len(p.readyQ) > 0 {
		key := p.readyQ[0]
		p.readyQ = p.readyQ[1:]
		t, ok := p.tasks[key]
		if !ok || t.state != taskReady {
			continue
		}
		p.runPass(t)
		return
	}
}

// runPass executes one reduction pass of t: compute the outcome now, charge
// its virtual cost, and apply it when the cost has elapsed.
func (p *proc) runPass(t *task) {
	t.state = taskRunning
	p.busy = true
	if p.m.tracing() {
		p.m.log(p.id, trace.KStart, t.pkt.Key.String(), t.pkt.Fn)
	}

	var out lang.Outcome
	var st lang.TaskState
	var err error
	ep := p.m.evalOf(t.pkt.Prog)
	if t.residual == nil {
		out, st, err = ep.Flatten(t.pkt.Fn, t.pkt.Args, &t.nextID)
	} else {
		// The fills map is consumed synchronously by Resume, then cleared
		// and kept: results arriving after this instant land in the same
		// (now empty) map, exactly as they landed in the fresh map the
		// pre-optimisation kernel allocated per pass.
		fills := t.pendingFills
		out, st, err = ep.Resume(t.residual, fills, &t.nextID)
		clear(fills)
	}
	if err != nil {
		p.m.failRun(p, fmt.Errorf("task %v on processor %d: %w", t.pkt.Key, p.id, err))
		return
	}
	cost := int64(out.Steps)*p.m.cfg.StepCost + int64(len(out.Demands))*p.m.cfg.SpawnOverhead
	if !p.m.cfg.DisableCheckpoints {
		// Retaining the packet copies it into the local checkpoint store —
		// a small but real cost (§2.1's "fully embedded in the evaluation
		// process").
		cost += int64(len(out.Demands)) * p.m.cfg.CheckpointCost
	}
	if cost < 1 {
		cost = 1
	}
	// The pass outcome rides in the task and the completion closure is
	// built once per task: a reduction pass is the machine's most frequent
	// event, and capturing the Outcome struct in a fresh closure per pass
	// was a measurable share of its allocation. At most one pass per task
	// is in flight (ready → running → finish), so the parking slot cannot
	// be overwritten.
	t.passOut, t.passSt = out, st
	if t.finishFn == nil {
		t.finishFn = func() { p.finishPass(t) }
	}
	p.k.After(sim.Time(cost), t.finishFn)
}

// finishPass applies the outcome of a reduction pass (parked in the task by
// runPass).
func (p *proc) finishPass(t *task) {
	out, st := t.passOut, t.passSt
	t.passOut, t.passSt = lang.Outcome{}, nil
	p.busy = false
	defer p.maybeRun()
	if p.dead || t.state != taskRunning {
		return // died or aborted mid-pass; outcome discarded
	}
	t.stepsSpent += int64(out.Steps)
	p.sc.metrics.StepsExecuted += int64(out.Steps)
	p.stepsDone += int64(out.Steps)
	if out.Done {
		v := out.Value
		if p.corrupt {
			v = perturb(v)
		}
		t.value = v
		t.state = taskReturning
		p.sc.metrics.TasksCompleted++
		if p.m.tracing() {
			p.m.log(p.id, trace.KComplete, t.pkt.Key.String(), v.String())
		}
		if t.isHostRoot {
			p.m.completeRoot(t, v)
			return
		}
		p.sendResult(t)
		return
	}
	t.residual = st
	t.state = taskWaiting
	for _, d := range out.Demands {
		p.spawnDemand(t, d)
	}
	if p.m.tracing() {
		p.m.log(p.id, trace.KBlock, t.pkt.Key.String(), fmt.Sprintf("%d outstanding", t.unfilled))
	}
	if t.unfilled == 0 {
		// Every demand was satisfied from inherited results (§4.1 case 4/5).
		t.state = taskReady
		p.readyQ = append(p.readyQ, t.pkt.Key)
	}
}

// spawnDemand creates the child task(s) for one demand: DEMAND_IT of §4.2 —
// form the packet, level-stamp it, attach parent and grandparent
// identifications, queue it to the load balancing manager, and functional
// checkpoint it.
func (p *proc) spawnDemand(t *task, d lang.Demand) {
	if v, ok := t.takePrefill(d.ID); ok {
		// The answer is already there (§4.1 case 4/5): consume the
		// inherited result; do not spawn.
		h := p.holeFor(t, d.ID)
		h.filled = true
		h.value = v
		t.addFill(d.ID, v)
		p.sc.metrics.Prefills++
		if p.m.tracing() {
			p.m.log(p.id, trace.KPrefill, t.pkt.Key.String(), fmt.Sprintf("hole %d inherited", d.ID))
		}
		return
	}
	// Replication applies only to spawns from the original lineage: a
	// replica executes its whole subtree single-copy (§5.3 replicates "the
	// task packets" of a marked critical section; §5.4's TMR runs complete
	// copies of the program). Re-replicating inside replicas would compound
	// to R^depth copies.
	reps := 1
	if t.pkt.Key.Rep == 0 {
		reps = p.m.replicasFor(d.Fn)
	}
	h := p.holeFor(t, d.ID)
	childStamp := t.pkt.Key.Stamp.Child(uint32(d.ID))
	// Replicas must land on distinct processors where possible: "Copies of
	// each instruction are carefully distributed so that each copy is
	// executed by a different processor" (§5.4's TMR model, adopted for
	// §5.3 replication).
	var avoid map[proto.ProcID]bool
	if reps > 1 {
		avoid = make(map[proto.ProcID]bool, reps)
	}
	for r := 0; r < reps; r++ {
		rep := t.pkt.Key.Rep
		if reps > 1 {
			rep = p.freshRep()
		}
		pkt := &proto.TaskPacket{
			Key:       proto.TaskKey{Stamp: childStamp, Rep: rep},
			Gen:       p.freshGen(),
			ParentGen: t.pkt.Gen,
			Fn:        d.Fn,
			Args:      d.Args,
			Parent:    proto.Addr{Proc: p.id, Task: t.pkt.Key},
			HoleID:    d.ID,
			Replicas:  reps,
			Prog:      t.pkt.Prog,
		}
		pkt.Ancestors = ancestorChain(t.pkt, p.m.cfg.AncestorDepth)
		cr := p.newChildRef(pkt.Key)
		cr.gen, cr.dest = pkt.Gen, checkpoint.PendingDest
		h.children = append(h.children, cr)
		p.sc.metrics.TasksSpawned++
		if p.m.tracing() {
			p.m.log(p.id, trace.KSpawn, pkt.Key.String(), fmt.Sprintf("%s by %v", d.Fn, t.pkt.Key))
		}
		if !p.m.cfg.DisableCheckpoints {
			p.store.Retain(pkt)
			p.sc.metrics.Checkpoints++
			if p.m.tracing() {
				p.m.log(p.id, trace.KCheckpoint, pkt.Key.String(), "")
			}
		}
		chosen := p.route(t, pkt, cr, avoid)
		if avoid != nil {
			avoid[chosen] = true
		}
	}
	t.unfilled++
}

// ancestorChain derives a child's ancestor addresses from its parent's
// packet: [parent's parent, parent's grandparent, ...], truncated to
// depth-1 entries (§5.2).
func ancestorChain(parentPkt *proto.TaskPacket, depth int) []proto.Addr {
	keep := depth - 1
	if keep <= 0 {
		return nil
	}
	chain := make([]proto.Addr, 0, keep)
	if parentPkt.Parent.Proc != noProc {
		chain = append(chain, parentPkt.Parent)
	}
	for _, a := range parentPkt.Ancestors {
		if len(chain) >= keep {
			break
		}
		chain = append(chain, a)
	}
	return chain
}

// route sends a packet toward its execution site and arms the placement-ack
// timeout (Figure 6 state b: no ack means reissue). avoid lists processors
// that replicas of the same demand already occupy; route makes a bounded
// effort to pick elsewhere. It returns the chosen (first-hop) destination.
func (p *proc) route(parent *task, pkt *proto.TaskPacket, cr *childRef, avoid map[proto.ProcID]bool) proto.ProcID {
	cr.ackTimer.Stop()
	cr.ackTimer = p.k.After(p.m.cfg.AckTimeout, func() {
		p.onAckTimeout(parent, pkt, cr)
	})
	if cr.retries >= 3 && !p.isHost {
		// Placement escape hatch: repeated unacknowledged placements mean
		// the policy keeps choosing a destination that drops the packet or
		// hosts a foreign incarnation of the same stamp (deterministic
		// policies re-pick it forever). Scatter uniformly among live
		// processors instead.
		if dest := p.randomLive(); dest != p.id {
			p.sc.metrics.MsgTask++
			p.m.send(proto.Msg{Type: proto.MsgTask, From: p.id, To: dest, Task: pkt, Hops: 0})
			return dest
		}
		p.settle(pkt)
		return p.id
	}
	if p.m.cfg.Placement.Mode() == balance.Direct {
		dest := p.m.cfg.Placement.PickDest(p, pkt.Key)
		for tries := 0; avoid != nil && avoid[dest] && tries < 8; tries++ {
			dest = p.m.cfg.Placement.PickDest(p, pkt.Key)
		}
		if dest == p.id && !p.isHost {
			p.settle(pkt)
			return dest
		}
		if p.isHost && (dest == p.id || dest == proto.HostID) {
			dest = 0
		}
		p.sc.metrics.MsgTask++
		p.m.send(proto.Msg{Type: proto.MsgTask, From: p.id, To: dest, Task: pkt, Hops: 0})
		return dest
	}
	// Hop-by-hop (gradient): the host always hands off to processor 0.
	if p.isHost {
		p.sc.metrics.MsgTask++
		p.m.send(proto.Msg{Type: proto.MsgTask, From: p.id, To: 0, Task: pkt, Hops: 0})
		return 0
	}
	next := p.m.cfg.Placement.Step(p, 0)
	if next == p.id {
		p.settle(pkt)
		return next
	}
	p.sc.metrics.MsgTask++
	p.m.send(proto.Msg{Type: proto.MsgTask, From: p.id, To: next, Task: pkt, Hops: 1})
	return next
}

// randomLive picks a uniformly random processor not believed faulty
// (possibly this one). The two-pass count-then-walk keeps the RNG draw —
// one Intn over the live count — identical to the slice-collecting version
// while allocating nothing.
func (p *proc) randomLive() proto.ProcID {
	live := p.m.n - p.faultyN
	if live <= 0 {
		return p.id
	}
	// Drawn from the processor's private stream, not the kernel's: the
	// kernel RNG is per shard, so using it would make relay targets (and
	// with them whole recovery schedules) depend on the shard count.
	k := p.rng.Intn(live)
	if live == p.m.n {
		return proto.ProcID(k)
	}
	for i := 0; i < p.m.n; i++ {
		if !p.faulty[i] {
			if k == 0 {
				return proto.ProcID(i)
			}
			k--
		}
	}
	return p.id
}

// onAckTimeout fires when a spawned packet's placement was never
// acknowledged: the packet is presumed lost in a failed processor and is
// reissued ("processor G times out and reissues a new task P" — §4.3.2
// state b).
func (p *proc) onAckTimeout(parent *task, pkt *proto.TaskPacket, cr *childRef) {
	if p.dead {
		return
	}
	if t, ok := p.tasks[parent.pkt.Key]; !ok || t != parent || parent.state == taskAborted {
		return
	}
	h := parent.holeAt(pkt.HoleID)
	if h == nil || h.filled || cr.dest != checkpoint.PendingDest {
		return
	}
	cr.retries++
	if cr.retries > p.m.cfg.SpawnRetryLimit {
		p.m.log(p.id, trace.KAbort, pkt.Key.String(), "placement retries exhausted")
		return
	}
	p.m.log(p.id, trace.KSpawn, pkt.Key.String(), fmt.Sprintf("placement retry %d", cr.retries))
	p.route(parent, pkt, cr, nil)
}

// settle installs a packet as a resident task and acknowledges placement to
// the parent (Figure 6 state c: the parent "establishes a parent-to-child
// pointer").
func (p *proc) settle(pkt *proto.TaskPacket) {
	if p.dead {
		return
	}
	ack := proto.Msg{
		Type: proto.MsgTaskAck, From: p.id, To: pkt.Parent.Proc,
		AckTask: pkt.Key, AckParent: pkt.Parent.Task, AckGen: pkt.Gen,
		PlacedOn: p.id, AckHole: pkt.HoleID,
	}
	if existing, ok := p.tasks[pkt.Key]; ok && existing.state != taskAborted {
		// A foreign incarnation of the same logical task already lives
		// here (a reissue raced a slow original, or an orphan lineage
		// still occupies the key). Keep the incumbent and acknowledge with
		// its generation: the parent of a *different* incarnation will see
		// the mismatch, ignore the ack, and eventually scatter its retry
		// to another processor (see route's retry escape). Killing the
		// incumbent here would be unsound — generation order says nothing
		// about which lineage is the live one.
		ack.AckGen = existing.pkt.Gen
		p.sc.metrics.MsgTaskAck++
		p.m.send(ack)
		return
	}
	t := newTask(pkt)
	p.tasks[pkt.Key] = t
	p.readyQ = append(p.readyQ, pkt.Key)
	if p.m.tracing() {
		note := ""
		if pkt.Twin {
			note = "twin"
		} else if pkt.Reissue {
			note = "reissue"
		}
		p.m.log(p.id, trace.KPlace, pkt.Key.String(), note)
	}
	p.sc.metrics.MsgTaskAck++
	p.m.send(ack)
	p.maybeRun()
}

// onTaskMsg handles an arriving task packet: forward it (hop-by-hop
// placement) or settle it here.
func (p *proc) onTaskMsg(msg *proto.Msg) {
	if p.isHost {
		return // the host runs no program tasks
	}
	if p.m.cfg.Placement.Mode() == balance.HopByHop {
		next := p.m.cfg.Placement.Step(p, msg.Hops)
		if next != p.id {
			p.sc.metrics.MsgTask++
			p.m.send(proto.Msg{Type: proto.MsgTask, From: p.id, To: next, Task: msg.Task, Hops: msg.Hops + 1})
			return
		}
	}
	p.settle(msg.Task)
}

// onTaskAck records a child's placement: the parent now knows where its
// functional checkpoint would need to be re-directed and where aborts go.
func (p *proc) onTaskAck(msg *proto.Msg) {
	t, ok := p.tasks[msg.AckParent]
	if !ok || t.state == taskAborted {
		// The parent is gone: the settled child is an orphan; kill exactly
		// that incarnation (rollback GC). Under splice parents do not
		// abort, so this is a rollback/none path.
		if !p.isFaulty(msg.PlacedOn) {
			p.m.send(proto.Msg{
				Type: proto.MsgAbort, From: p.id, To: msg.PlacedOn,
				AbortTask: msg.AckTask, AbortGen: msg.AckGen,
			})
		}
		return
	}
	h := t.holeAt(msg.AckHole)
	if h == nil {
		return
	}
	for _, cr := range h.children {
		if cr.key == msg.AckTask {
			if cr.gen != msg.AckGen {
				// A stale incarnation settled somewhere; our current spawn
				// is still in flight. Ignore — determinacy means the stale
				// copy's result would be just as good if it arrives first.
				return
			}
			cr.ackTimer.Stop()
			cr.dest = msg.PlacedOn
			break
		}
	}
	p.store.Settle(msg.AckTask, msg.PlacedOn)
	// Flush any orphan results buffered for a twin that just settled.
	if buf, ok := p.relayBuf[msg.AckTask]; ok {
		delete(p.relayBuf, msg.AckTask)
		for _, res := range buf {
			p.RelayToTwin(res)
		}
	}
}

// buildResult constructs the result record for a returning task.
func (p *proc) buildResult(t *task) *proto.Result {
	return &proto.Result{
		Child:      t.pkt.Key,
		ParentTask: t.pkt.Parent.Task,
		HoleID:     t.pkt.HoleID,
		Value:      t.value,
		DeadParent: t.pkt.Parent,
		Remaining:  append([]proto.Addr(nil), t.pkt.Ancestors...),
	}
}

// sendResult returns a completed task's value to its parent, guarding the
// delivery with the result-ack timeout.
func (p *proc) sendResult(t *task) {
	dest := t.pkt.Parent.Proc
	if dest != proto.HostID && p.faulty[dest] {
		// Known-dead parent: invoke the recovery policy directly.
		p.policy.OnResultUndeliverable(p.buildResult(t))
		return
	}
	res := &proto.Result{
		Child: t.pkt.Key, ParentTask: t.pkt.Parent.Task,
		HoleID: t.pkt.HoleID, Value: t.value,
	}
	p.sc.metrics.MsgResult++
	p.m.send(proto.Msg{Type: proto.MsgResult, From: p.id, To: dest, Result: res})
	t.resultTimer.Stop()
	t.resultTimer = p.k.After(p.m.cfg.ResultTimeout, func() { p.onResultTimeout(t) })
}

// onResultTimeout: the parent never acknowledged. Retry a bounded number of
// times, then declare the parent's processor failed and let the recovery
// policy decide the orphan's fate.
func (p *proc) onResultTimeout(t *task) {
	if p.dead {
		return
	}
	if cur, ok := p.tasks[t.pkt.Key]; !ok || cur != t || t.state != taskReturning {
		return
	}
	t.resultTries++
	if t.resultTries < p.m.cfg.ResultRetryLimit {
		p.sendResult(t)
		return
	}
	// Hand the orphan to the recovery policy before flooding the
	// announcement: under splice the grandchild result then reaches the
	// grandparent first, which creates the step-parent on demand — the
	// lazy path of §4.2 ("Create a step-parent for the grandchild if there
	// isn't one already"), case 4 of Figure 5.
	parentProc := t.pkt.Parent.Proc
	p.policy.OnResultUndeliverable(p.buildResult(t))
	p.declareFaulty(parentProc)
}

// onResultMsg handles a result delivered to this processor: fill the
// addressee's hole, vote if replicated, buffer as inheritance if the demand
// has not been issued yet, ignore duplicates, reject unknowns (§4.2's
// "forward result" / rule-of-thumb cases; Figure 5 cases 4–8).
func (p *proc) onResultMsg(msg *proto.Msg) {
	res := msg.Result
	t, ok := p.tasks[res.ParentTask]
	if !ok || t.state == taskAborted {
		p.sc.metrics.LateResults++
		p.m.log(p.id, trace.KLateResult, res.Child.String(), "unknown addressee")
		p.ackResult(msg.From, res.Child, false)
		return
	}
	if t.isHostRoot && t.state != taskWaiting && t.state != taskReady && t.state != taskRunning {
		p.ackResult(msg.From, res.Child, true)
		return
	}
	h := t.holeAt(res.HoleID)
	if h == nil {
		// The demand has not been issued yet: this task is a twin running
		// behind its predecessor; inherit the result (§4.1 case 4/5).
		t.addPrefill(res.HoleID, res.Value)
		if p.m.tracing() {
			p.m.log(p.id, trace.KResult, res.Child.String(), fmt.Sprintf("inherited for hole %d", res.HoleID))
		}
		p.ackResult(msg.From, res.Child, true)
		return
	}
	if h.filled {
		p.sc.metrics.DupResults++
		p.m.log(p.id, trace.KDupResult, res.Child.String(), "already filled")
		p.ackResult(msg.From, res.Child, true)
		return
	}
	var cr *childRef
	for _, c := range h.children {
		if c.key == res.Child {
			cr = c
			break
		}
	}
	if cr == nil {
		// A result from an incarnation we did not spawn (e.g. relayed from
		// an orphan of the pre-twin generation). Determinacy makes it as
		// good as our own child's.
		p.m.log(p.id, trace.KResult, res.Child.String(), "foreign incarnation accepted")
		p.fillHole(t, h, res.Value)
		p.ackResult(msg.From, res.Child, true)
		return
	}
	if cr.returned {
		p.sc.metrics.DupResults++
		p.ackResult(msg.From, res.Child, true)
		return
	}
	cr.returned = true
	cr.vote = res.Value
	cr.ackTimer.Stop()
	if len(h.children) == 1 {
		p.fillHole(t, h, res.Value)
		p.ackResult(msg.From, res.Child, true)
		return
	}
	// Replicated hole: asynchronous majority voting (§5.3) — accept as soon
	// as a majority of identical results has arrived; do not wait for the
	// slowest replica.
	if v, ok := h.majority(); ok {
		mismatches := 0
		for _, c := range h.children {
			if c.returned && !c.vote.Equal(v) {
				mismatches++
			}
		}
		if mismatches > 0 {
			p.sc.metrics.VoteMismatches += int64(mismatches)
			p.m.log(p.id, trace.KVoteMismatch, t.pkt.Key.String(),
				fmt.Sprintf("hole %d: %d corrupt outvoted", h.id, mismatches))
		}
		p.sc.metrics.Votes++
		p.m.log(p.id, trace.KVote, t.pkt.Key.String(),
			fmt.Sprintf("hole %d agreed on %s", h.id, v))
		p.fillHole(t, h, v)
	} else if h.returnedCount() == len(h.children) {
		// All replicas answered without a majority (possible only with
		// aggressive corruption): take the first answer, flagged loudly.
		p.sc.metrics.VoteMismatches++
		p.m.log(p.id, trace.KVoteMismatch, t.pkt.Key.String(),
			fmt.Sprintf("hole %d: no majority, taking first", h.id))
		p.fillHole(t, h, h.children[0].vote)
	}
	p.ackResult(msg.From, res.Child, true)
}

// fillHole records the agreed value for a demand slot and wakes the task
// when its last outstanding result arrives.
func (p *proc) fillHole(t *task, h *holeRec, v expr.Value) {
	h.filled = true
	h.value = v
	for _, c := range h.children {
		c.ackTimer.Stop()
		if p.store.Release(c.key) && p.m.tracing() {
			p.m.log(p.id, trace.KCkptRelease, c.key.String(), "")
		}
	}
	t.addFill(h.id, v)
	t.unfilled--
	if p.m.tracing() {
		p.m.log(p.id, trace.KResult, t.pkt.Key.String(), fmt.Sprintf("hole %d := %s", h.id, v))
	}
	if t.unfilled == 0 && t.state == taskWaiting {
		t.state = taskReady
		p.readyQ = append(p.readyQ, t.pkt.Key)
		p.maybeRun()
	}
}

// ackResult acknowledges a result delivery.
func (p *proc) ackResult(to proto.ProcID, child proto.TaskKey, ok bool) {
	p.sc.metrics.MsgResultAck++
	p.m.send(proto.Msg{Type: proto.MsgResultAck, From: p.id, To: to, AckChild: child, ResultOK: ok})
}

// onResultAck retires the returning task (delivery confirmed) or hands the
// rejection to the recovery policy.
func (p *proc) onResultAck(msg *proto.Msg) {
	t, ok := p.tasks[msg.AckChild]
	if !ok || t.state != taskReturning {
		return
	}
	t.resultTimer.Stop()
	if msg.ResultOK {
		delete(p.tasks, msg.AckChild)
		return
	}
	p.policy.OnResultRejected(p.buildResult(t))
	// Whatever the policy did, the task cannot deliver its value; retire it.
	if cur, ok := p.tasks[msg.AckChild]; ok && cur == t {
		t.cancelTimers()
		delete(p.tasks, msg.AckChild)
	}
}

// onGrandResult handles an orphan result addressed to an ancestor task
// resident here (§4.2 "grandchild" case).
func (p *proc) onGrandResult(msg *proto.Msg) {
	// Always acknowledge: grand results are never retried against a live
	// processor (the rule of thumb: handle or ignore).
	p.sc.metrics.MsgResultAck++
	p.m.send(proto.Msg{Type: proto.MsgResultAck, From: p.id, To: msg.From, AckChild: msg.Result.Child, ResultOK: true})
	p.policy.OnGrandResult(msg.Result)
}

// onAbort kills the victim incarnation and cascades.
func (p *proc) onAbort(msg *proto.Msg) {
	p.abortGen(msg.AbortTask, msg.AbortGen, msg.AbortScope, "abort cascade")
}

// --- failure detection ---

// onFaultAnnounce merges flooded failure knowledge.
func (p *proc) onFaultAnnounce(msg *proto.Msg) {
	p.declareFaulty(msg.Failed)
}

// heartbeatTick probes neighbors and declares the silent ones.
func (p *proc) heartbeatTick() {
	if p.dead {
		return
	}
	limit := p.m.cfg.HeartbeatEvery * sim.Time(p.m.cfg.HeartbeatMisses)
	now := p.k.Now()
	for _, nb := range p.neighbors {
		if p.faulty[nb] {
			continue
		}
		if last := p.lastHeard[nb]; last >= 0 && now-last > limit {
			p.declareFaulty(nb)
			continue
		}
		p.sc.metrics.MsgHeartbeat++
		p.m.send(proto.Msg{Type: proto.MsgHeartbeat, From: p.id, To: nb})
	}
	p.hbTimer = p.k.After(p.m.cfg.HeartbeatEvery, p.hbFn)
}

func (p *proc) onHeartbeat(msg *proto.Msg) {
	p.sc.metrics.MsgHeartbeat++
	p.m.send(proto.Msg{Type: proto.MsgHeartbeatAck, From: p.id, To: msg.From})
}

func (p *proc) onHeartbeatAck(msg *proto.Msg) {
	p.lastHeard[msg.From] = p.k.Now()
}

// --- gradient gossip ---

// gossipTick broadcasts the local gradient value when it changes (§3.3's
// gradient model substrate).
func (p *proc) gossipTick() {
	if p.dead {
		return
	}
	if g, ok := p.m.cfg.Placement.(*balance.Gradient); ok {
		val := g.LocalGradient(p)
		if val != p.lastSentGrad {
			p.lastSentGrad = val
			for _, nb := range p.neighbors {
				if !p.faulty[nb] {
					p.sc.metrics.MsgLoad++
					p.m.send(proto.Msg{Type: proto.MsgLoad, From: p.id, To: nb, LoadVal: val})
				}
			}
		}
	}
	p.gossipTimer = p.k.After(p.m.cfg.LoadGossipEvery, p.gossipFn)
}

func (p *proc) onLoad(msg *proto.Msg) {
	p.nbGrad[msg.From] = msg.LoadVal
}

// --- dispatch ---

// handle dispatches a delivered message. Dead processors never reach here
// (the machine drops their deliveries).
func (p *proc) handle(msg *proto.Msg) {
	switch msg.Type {
	case proto.MsgTask:
		p.onTaskMsg(msg)
	case proto.MsgTaskAck:
		p.onTaskAck(msg)
	case proto.MsgResult:
		p.onResultMsg(msg)
	case proto.MsgResultAck:
		p.onResultAck(msg)
	case proto.MsgGrandResult:
		p.onGrandResult(msg)
	case proto.MsgAbort:
		p.onAbort(msg)
	case proto.MsgChildAbort:
		p.onChildAbort(msg)
	case proto.MsgFaultAnnounce:
		p.onFaultAnnounce(msg)
	case proto.MsgHeartbeat:
		p.onHeartbeat(msg)
	case proto.MsgHeartbeatAck:
		p.onHeartbeatAck(msg)
	case proto.MsgLoad:
		p.onLoad(msg)
	default:
		// §4.2 rule of thumb: "if a processor receives a packet and cannot
		// find a proper rule to handle it, the processor simply ignores the
		// received message."
	}
}

// die makes the processor fail: it stops transmitting, loses all resident
// tasks, and (if announced) floods a final declaration. Resident tasks are
// torn down in map order: the per-task work (timer cancel, counter bumps)
// is commutative and schedules nothing, so no deterministic order is needed
// here — unlike declareFaulty's fail-fast pass, which sends messages and
// keeps the sorted walk.
func (p *proc) die(announced bool) {
	if p.dead {
		return
	}
	for _, t := range p.tasks {
		if t.state == taskAborted {
			continue
		}
		p.sc.metrics.TasksLost++
		p.sc.metrics.StepsWasted += t.stepsSpent
		t.cancelTimers()
	}
	if announced {
		// The dying gasp (§1: "must voluntarily declare itself faulty").
		for _, nb := range p.neighbors {
			p.sc.metrics.MsgFault++
			p.m.send(proto.Msg{Type: proto.MsgFaultAnnounce, From: p.id, To: nb, Failed: p.id})
		}
		if p.id != 0 {
			p.sc.metrics.MsgFault++
			p.m.send(proto.Msg{Type: proto.MsgFaultAnnounce, From: p.id, To: 0, Failed: p.id})
		} else {
			p.sc.metrics.MsgFault++
			p.m.send(proto.Msg{Type: proto.MsgFaultAnnounce, From: p.id, To: proto.HostID, Failed: p.id})
		}
	}
	p.dead = true
	p.busy = false
	p.tasks = make(map[proto.TaskKey]*task)
	p.readyQ = nil
	p.hbTimer.Stop()
	p.gossipTimer.Stop()
}

// perturb corrupts a value the way a faulty node with bad arithmetic would.
func perturb(v expr.Value) expr.Value {
	switch x := v.(type) {
	case expr.VInt:
		return x + 1
	case expr.VBool:
		return !x
	case expr.VStr:
		return x + "?"
	case expr.VList:
		return x.Cons(expr.VInt(0))
	default:
		return v
	}
}

func toNode(id proto.ProcID) nodeID { return nodeID(id) }
