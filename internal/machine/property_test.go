package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/balance"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// TestPropertyDeterminacyUnderFaults is the repository's central theorem in
// test form: for random workloads, topologies, placements, schemes, seeds
// and fault plans, the distributed machine either produces exactly the
// sequential reference answer or (with recovery disabled) produces nothing —
// never a wrong answer. This is §2.1's determinacy carried through §3/§4
// recovery.
func TestPropertyDeterminacyUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	r := rand.New(rand.NewSource(123))
	schemes := []recovery.Scheme{recovery.Rollback(), recovery.RollbackLazy(), recovery.Splice()}
	placements := []balance.Policy{
		balance.NewRandom(), balance.NewStaticHash(), balance.NewGradient(0, 0, 0),
	}
	topos := []string{"mesh", "ring", "complete", "hypercube"}

	for trial := 0; trial < 60; trial++ {
		trial := trial
		// Random workload with a modest call tree.
		var prog *lang.Program
		var fn string
		var args []expr.Value
		switch r.Intn(4) {
		case 0:
			prog, fn = lang.Fib(), "fib"
			args = []expr.Value{expr.VInt(int64(8 + r.Intn(4)))}
		case 1:
			prog, fn = lang.TreeSum(2+r.Intn(3)), "tree"
			args = []expr.Value{expr.VInt(int64(3 + r.Intn(3)))}
		case 2:
			prog, fn = lang.Tak(), "tak"
			args = []expr.Value{expr.VInt(int64(5 + r.Intn(3))), expr.VInt(3), expr.VInt(1)}
		default:
			prog, fn = lang.SumRange(8), "sumrange"
			args = []expr.Value{expr.VInt(0), expr.VInt(int64(32 + r.Intn(64)))}
		}
		want, err := lang.RefEval(prog, fn, args)
		if err != nil {
			t.Fatal(err)
		}

		kind := topos[r.Intn(len(topos))]
		n := []int{8, 9, 16}[r.Intn(3)]
		if kind == "hypercube" {
			n = 8
		}
		if kind == "mesh" && n == 9 {
			n = 9
		}
		scheme := schemes[r.Intn(len(schemes))]
		placement := placements[r.Intn(len(placements))]
		seed := r.Int63n(1 << 30)

		// One or two crashes at random times; occasionally none.
		plan := faults.None()
		for f := r.Intn(3); f > 0; f-- {
			plan.Add(faults.Fault{
				At:   int64(100 + r.Intn(4000)),
				Proc: proto.ProcID(r.Intn(n)),
				Kind: []faults.Kind{faults.CrashAnnounced, faults.CrashSilent}[r.Intn(2)],
			})
		}
		// Never kill every processor the plan touches twice.
		name := fmt.Sprintf("trial%02d/%s/%s/%s/%d-procs", trial, fn, kind, scheme.Name(), n)
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				Topo:      mustTopo(t, kind, n),
				Placement: placement,
				Scheme:    scheme,
				Seed:      seed,
				Deadline:  sim.Time(1_500_000),
			}
			m, err := New(cfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := m.Run(fn, args, plan)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Err != nil {
				t.Fatalf("run error: %v", rep.Err)
			}
			if !rep.Completed {
				t.Fatalf("did not complete (args %v seed %d faults %v):\n%s",
					args, seed, plan.Faults, rep.Metrics.String())
			}
			if !rep.Answer.Equal(want) {
				t.Fatalf("answer %v != reference %v (faults %v)", rep.Answer, want, plan.Faults)
			}
		})
	}
}

// TestAncestorDepthOneDisablesEscalation verifies the §5.2 knob: with K=1
// (parent pointer only) splice cannot escalate orphan results past a dead
// parent, so recovery degrades to twin-respawns with extra recomputation —
// but the answer stays correct.
func TestAncestorDepthOneDisablesEscalation(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(11)}
	cfg := Config{
		Topo: mustTopo(t, "mesh", 8), Scheme: recovery.Splice(),
		Seed: 6, AncestorDepth: 1,
	}
	rep := runMachine(t, cfg, prog, "fib", args, faults.Crash(2, 900, true))
	expectAnswer(t, rep, prog, "fib", args)
	if rep.Metrics.Relayed != 0 {
		t.Errorf("K=1 relayed %d orphan results; escalation should be impossible", rep.Metrics.Relayed)
	}
}

// TestByteCostExtendsLatency checks the bandwidth term of the cost model.
func TestByteCostExtendsLatency(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(10)}
	fast := runMachine(t, Config{Topo: mustTopo(t, "mesh", 8), Seed: 2}, prog, "fib", args, nil)
	slow := runMachine(t, Config{Topo: mustTopo(t, "mesh", 8), Seed: 2, ByteCost: 8}, prog, "fib", args, nil)
	expectAnswer(t, slow, prog, "fib", args)
	if slow.Makespan <= fast.Makespan {
		t.Fatalf("ByteCost did not slow the run: %d vs %d", slow.Makespan, fast.Makespan)
	}
}

// TestStarTopologyRuns exercises the hub-and-spoke extreme.
func TestStarTopologyRuns(t *testing.T) {
	prog := lang.TreeSum(3)
	args := []expr.Value{expr.VInt(4)}
	cfg := Config{Topo: mustTopo(t, "star", 6), Scheme: recovery.Rollback(), Seed: 3}
	rep := runMachine(t, cfg, prog, "tree", args, faults.Crash(4, 500, true))
	expectAnswer(t, rep, prog, "tree", args)
}

// TestHubFailureInStar kills the star's center: the surviving leaves can no
// longer reach each other, yet announced recovery plus placement fallbacks
// must still finish the program (all survivors re-place through themselves).
func TestHubFailureInStar(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(9)}
	cfg := Config{Topo: mustTopo(t, "star", 6), Scheme: recovery.Rollback(), Seed: 4,
		Deadline: sim.Time(1_000_000)}
	rep := runMachine(t, cfg, prog, "fib", args, faults.Crash(0, 400, true))
	// The star with a dead hub is disconnected; messages between leaves are
	// still deliverable in the simulator (routing is logical), so recovery
	// should complete. This documents the model's assumption that the
	// interconnect survives node failures (§1: network problems are treated
	// as node faults by the sender).
	expectAnswer(t, rep, prog, "fib", args)
}

// TestSpliceLeaksAreBounded: splice deliberately keeps orphans alive, but a
// completed run must not leave unbounded wedged tasks.
func TestSpliceLeaksAreBounded(t *testing.T) {
	prog := lang.TreeSum(3)
	args := []expr.Value{expr.VInt(5)}
	cfg := Config{Topo: mustTopo(t, "mesh", 9), Scheme: recovery.Splice(), Seed: 5}
	rep := runMachine(t, cfg, prog, "tree", args, faults.Crash(1, 700, true))
	expectAnswer(t, rep, prog, "tree", args)
	if rep.Metrics.TasksLeaked > rep.Metrics.TasksSpawned/4 {
		t.Fatalf("splice leaked %d of %d tasks", rep.Metrics.TasksLeaked, rep.Metrics.TasksSpawned)
	}
}

// TestCorruptProcessorWithSpliceStillCompletes: crash-recovery schemes make
// no correctness promise under value corruption, but they must not wedge.
func TestCorruptProcessorWithSpliceStillCompletes(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(9)}
	plan := &faults.Plan{Faults: []faults.Fault{{At: 0, Proc: 2, Kind: faults.Corrupt}}}
	cfg := Config{Topo: mustTopo(t, "mesh", 8), Scheme: recovery.Splice(), Seed: 6}
	m, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run("fib", args, plan)
	if err != nil || rep.Err != nil {
		t.Fatalf("run failed: %v %v", err, rep.Err)
	}
	if !rep.Completed {
		t.Fatal("corruption wedged the machine")
	}
}

// TestStateProbeSampling verifies probe cadence and monotone time.
func TestStateProbeSampling(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(11)}
	cfg := Config{Topo: mustTopo(t, "mesh", 8), Seed: 7, StateProbeEvery: 100}
	rep := runMachine(t, cfg, prog, "fib", args, nil)
	if len(rep.StateSamples) < 3 {
		t.Fatalf("samples = %d", len(rep.StateSamples))
	}
	for i := 1; i < len(rep.StateSamples); i++ {
		if rep.StateSamples[i].Time <= rep.StateSamples[i-1].Time {
			t.Fatal("sample times not increasing")
		}
	}
	var peakTasks int
	for _, s := range rep.StateSamples {
		if s.Tasks > peakTasks {
			peakTasks = s.Tasks
		}
		if (s.Tasks == 0) != (s.Bytes == 0) {
			t.Fatalf("inconsistent sample %+v", s)
		}
	}
	if peakTasks == 0 {
		t.Fatal("probes never saw resident tasks")
	}
}

// TestAckTimeoutOnlyDetection disables heartbeats: a silent crash is then
// discoverable only through unacknowledged traffic (the paper's timeout
// mechanisms, §1). Recovery must still complete.
func TestAckTimeoutOnlyDetection(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(13)}
	cfg := Config{
		Topo: mustTopo(t, "mesh", 8), Scheme: recovery.Splice(), Seed: 9,
		HeartbeatEvery: -1, // disabled
	}
	rep := runMachine(t, cfg, prog, "fib", args, faults.Crash(3, 600, false))
	expectAnswer(t, rep, prog, "fib", args)
	if rep.Metrics.Failures != 1 {
		t.Fatalf("fault landed after completion (failures=%d); adjust the fault time", rep.Metrics.Failures)
	}
	if rep.Metrics.MsgHeartbeat != 0 {
		t.Errorf("heartbeats sent despite being disabled: %d", rep.Metrics.MsgHeartbeat)
	}
	if rep.Metrics.FirstDetections != 1 {
		t.Errorf("first detections = %d, want 1 (via ack timeout)", rep.Metrics.FirstDetections)
	}
}

// TestAnnouncedDetectionFasterThanSilent compares detection latency between
// the two crash kinds under identical conditions.
func TestAnnouncedDetectionFasterThanSilent(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(12)}
	detect := func(announced bool) int64 {
		cfg := Config{Topo: mustTopo(t, "mesh", 8), Scheme: recovery.Rollback(), Seed: 10}
		rep := runMachine(t, cfg, prog, "fib", args, faults.Crash(2, 900, announced))
		expectAnswer(t, rep, prog, "fib", args)
		if rep.Metrics.FirstDetections == 0 {
			t.Fatal("failure never detected")
		}
		return rep.Metrics.DetectLatencySum / rep.Metrics.FirstDetections
	}
	ann := detect(true)
	sil := detect(false)
	if ann >= sil {
		t.Fatalf("announced detection (%d) not faster than silent (%d)", ann, sil)
	}
}

// TestRetryScatterEscapesDeterministicPlacement reproduces the livelock the
// randomized sweep originally found: under lazy rollback with static-hash
// placement, a reissued incarnation is re-routed forever to the processor
// where an orphan incumbent occupies its stamp. The retry escape hatch must
// scatter it elsewhere and complete the run.
func TestRetryScatterEscapesDeterministicPlacement(t *testing.T) {
	prog := lang.TreeSum(3)
	args := []expr.Value{expr.VInt(4)}
	plan := faults.None().
		Add(faults.Fault{At: 223, Proc: 7, Kind: faults.CrashAnnounced}).
		Add(faults.Fault{At: 2544, Proc: 4, Kind: faults.CrashSilent})
	cfg := Config{
		Topo: mustTopo(t, "hypercube", 8), Placement: balance.NewStaticHash(),
		Scheme: recovery.RollbackLazy(), Seed: 783342352,
		Deadline: sim.Time(300_000),
	}
	rep := runMachine(t, cfg, prog, "tree", args, plan)
	expectAnswer(t, rep, prog, "tree", args)
}

// TestVotePluralityFallback: with an even replica count and aggressive
// corruption a strict majority can fail to form; the voter must fall back
// to plurality (flagged as a mismatch) instead of wedging.
func TestVotePluralityFallback(t *testing.T) {
	prog := lang.CriticalSections(6, 200)
	// Half the machine corrupts: R=2 replicas can split 1-1.
	plan := &faults.Plan{Faults: []faults.Fault{
		{At: 0, Proc: 0, Kind: faults.Corrupt},
		{At: 0, Proc: 2, Kind: faults.Corrupt},
		{At: 0, Proc: 4, Kind: faults.Corrupt},
		{At: 0, Proc: 6, Kind: faults.Corrupt},
	}}
	cfg := Config{
		Topo: mustTopo(t, "mesh", 8), Seed: 11,
		Replication: map[string]int{"work": 2},
	}
	m, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run("main", nil, plan)
	if err != nil || rep.Err != nil {
		t.Fatalf("run failed: %v %v", err, rep.Err)
	}
	if !rep.Completed {
		t.Fatal("split votes wedged the machine")
	}
	// Correctness is NOT guaranteed here (half the machine lies); only
	// liveness is.
}

// TestResultRetryBeforeDeclare verifies the result retry budget is consumed
// before an undeliverable verdict (silent crash, heartbeats disabled).
func TestResultRetryBeforeDeclare(t *testing.T) {
	prog := lang.Fib()
	args := []expr.Value{expr.VInt(12)}
	cfg := Config{
		Topo: mustTopo(t, "mesh", 8), Scheme: recovery.Rollback(), Seed: 12,
		HeartbeatEvery: -1, ResultRetryLimit: 4,
	}
	rep := runMachine(t, cfg, prog, "fib", args, faults.Crash(2, 700, false))
	expectAnswer(t, rep, prog, "fib", args)
	if rep.Metrics.Failures != 1 {
		t.Skip("fault landed after completion")
	}
	// With retries, more result messages than acks is expected.
	if rep.Metrics.MsgResult <= rep.Metrics.MsgResultAck {
		t.Errorf("no result retries observed: %d results vs %d acks",
			rep.Metrics.MsgResult, rep.Metrics.MsgResultAck)
	}
}
