package machine

import (
	"testing"

	"repro/internal/balance"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestHopCacheMatchesTopology pins the machine's flat hop-distance cache to
// the topology's BFS tables, on every registered topology kind: for all
// (from, to) pairs the cached distance must equal a freshly recomputed
// Topo.Dist, and host links must stay one hop in both directions.
func TestHopCacheMatchesTopology(t *testing.T) {
	const n = 16
	for _, kind := range topology.Kinds() {
		topo, err := topology.ByName(kind, n)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		m, err := New(Config{Topo: topo, Seed: 1}, lang.Fib())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				want := topo.Dist(topology.NodeID(from), topology.NodeID(to))
				if got := m.hops(proto.ProcID(from), proto.ProcID(to)); got != want {
					t.Fatalf("%s: hops(%d,%d) = %d, topology BFS says %d", kind, from, to, got, want)
				}
			}
			if m.hops(proto.HostID, proto.ProcID(from)) != 1 || m.hops(proto.ProcID(from), proto.HostID) != 1 {
				t.Fatalf("%s: host link to %d is not one hop", kind, from)
			}
		}
	}
}

// TestSliceStateMatchesMapSemantics pins the ProcID-indexed slices that
// replaced the per-proc maps (faulty, nbGrad, lastHeard) to the map
// semantics: an id never written behaves like an absent key — not faulty,
// MaxGradient, never heard — and out-of-range ids (the host, pending
// placements) are never faulty.
func TestSliceStateMatchesMapSemantics(t *testing.T) {
	topo, err := topology.ByName("mesh", 9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Topo: topo, Seed: 1}, lang.Fib())
	if err != nil {
		t.Fatal(err)
	}
	p := m.procs[4] // interior node: four neighbors

	// faulty: absent = false; host and sentinel ids = false; declared = true.
	for q := 0; q < 9; q++ {
		if p.isFaulty(proto.ProcID(q)) {
			t.Fatalf("fresh proc believes %d faulty", q)
		}
	}
	for _, q := range []proto.ProcID{proto.HostID, -2, 99} {
		if p.isFaulty(q) {
			t.Fatalf("out-of-range id %d reported faulty", q)
		}
	}
	p.declareFaulty(7)
	if !p.isFaulty(7) || !p.IsKnownFaulty(7) {
		t.Fatal("declared failure not recorded")
	}
	if p.isFaulty(6) {
		t.Fatal("declaration leaked to another processor")
	}

	// nbGrad: absent = balance.MaxGradient; a load message overwrites it.
	if g := p.NeighborGradient(1); g != balance.MaxGradient {
		t.Fatalf("unheard neighbor gradient = %d, want MaxGradient (%d)", g, balance.MaxGradient)
	}
	if g := p.NeighborGradient(proto.HostID); g != balance.MaxGradient {
		t.Fatal("host gradient must read MaxGradient")
	}
	p.onLoad(&proto.Msg{Type: proto.MsgLoad, From: 1, To: 4, LoadVal: 3})
	if g := p.NeighborGradient(1); g != 3 {
		t.Fatalf("gossiped gradient = %d, want 3", g)
	}

	// lastHeard: absent (-1) means the silence test is skipped, exactly like
	// the missing-key branch of the map version; a heartbeat ack arms it.
	if p.lastHeard[1] != -1 {
		t.Fatal("fresh proc claims to have heard neighbor 1")
	}
	p.onHeartbeatAck(&proto.Msg{Type: proto.MsgHeartbeatAck, From: 1, To: 4})
	if p.lastHeard[1] != m.kern.Now() {
		t.Fatal("heartbeat ack did not record the hearing time")
	}
}

// TestHoleTableMatchesMapSemantics pins the dense hole slice that replaced
// the per-task map: ids are created on demand in any order, unknown ids
// read as absent, and iteration order (slice index) is ascending id order —
// what abortGen's sorted walk relied on.
func TestHoleTableMatchesMapSemantics(t *testing.T) {
	tk := newTask(&proto.TaskPacket{Fn: "f"})
	if h := tk.holeAt(0); h != nil {
		t.Fatal("fresh task reports a hole")
	}
	if h := tk.holeAt(-1); h != nil {
		t.Fatal("negative id reports a hole")
	}
	h2 := tk.hole(2)
	h0 := tk.hole(0)
	if tk.holeAt(2) != h2 || tk.holeAt(0) != h0 {
		t.Fatal("hole lookup does not return the created record")
	}
	if tk.holeAt(1) != nil {
		t.Fatal("gap id must read absent")
	}
	if tk.hole(2) != h2 {
		t.Fatal("hole() must be idempotent")
	}
	var ids []int
	for _, h := range tk.holes {
		if h != nil {
			ids = append(ids, h.id)
		}
	}
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("iteration order %v, want ascending [0 2]", ids)
	}

	// Fill/prefill helpers behave like lazily-created maps.
	if _, ok := tk.takePrefill(5); ok {
		t.Fatal("empty prefill returned a value")
	}
	tk.addPrefill(5, expr.VInt(42))
	if v, ok := tk.takePrefill(5); !ok || !v.Equal(expr.VInt(42)) {
		t.Fatal("prefill roundtrip failed")
	}
	if _, ok := tk.takePrefill(5); ok {
		t.Fatal("prefill not consumed")
	}
	tk.addFill(1, expr.VInt(7))
	if len(tk.pendingFills) != 1 || !tk.pendingFills[1].Equal(expr.VInt(7)) {
		t.Fatal("fill not recorded")
	}
}

// TestTimerGenerationsAcrossRecycling pins the pooled-event contract: a
// Timer held across its event's dispatch (and the event's recycling into a
// new schedule) must refuse to cancel the successor.
func TestTimerGenerationsAcrossRecycling(t *testing.T) {
	k := sim.NewKernel(1)
	fired := 0
	t1 := k.After(1, func() { fired++ })
	k.Run(0)
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	// Force reuse of the recycled event.
	t2 := k.After(1, func() { fired++ })
	if t1.Stop() {
		t.Fatal("stale timer claimed to cancel a recycled event")
	}
	if !t2.Active() {
		t.Fatal("stale Stop deactivated the successor")
	}
	k.Run(0)
	if fired != 2 {
		t.Fatalf("fired %d, want 2 (successor must run)", fired)
	}
}
