package machine

import (
	"errors"

	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

type nodeID = topology.NodeID

// noProc marks the host pseudo-task's absent parent.
const noProc proto.ProcID = -3

// Machine is the simulated applicative multiprocessor.
type Machine struct {
	cfg    Config
	kernel *sim.Kernel
	// progs holds the loaded programs: progs[0] is the program the machine
	// was built with; service mode (Session) loads one more per distinct
	// submitted program. Task packets name their program by index (Prog).
	progs []*lang.Program
	n     int

	// dist caches the topology's hop-distance table as one flat slice
	// (dist[from*n+to]), so the per-message distance lookup is an indexed
	// load instead of an interface call. Built once at construction; the
	// equivalence with Topo.Dist is pinned by TestHopCacheMatchesTopology.
	dist []int32

	// session, when non-nil, owns request bookkeeping: root completions are
	// routed per-request instead of stopping the whole run. Run attaches one
	// implicitly, so there is a single execution path.
	session *Session

	procs []*proc
	host  *proc

	metrics trace.Metrics
	tlog    *trace.Log

	repSeq uint64
	genSeq uint64

	// msgFree recycles delivered protocol messages: a Msg is alive only
	// from post until its delivery callback returns (handlers retain
	// payload pointers — packets, results — never the envelope), so the
	// machine reuses envelopes instead of allocating one per message.
	msgFree []*proto.Msg

	// Completion state.
	done   bool
	answer expr.Value
	doneAt sim.Time
	runErr error

	// failTime records injected failure times for detection-latency
	// accounting (-1 = never failed); firstDetect marks which failures have
	// been detected by anyone yet. Indexed by ProcID; the host never fails.
	failTime    []sim.Time
	firstDetect []bool

	stateSamples []StateSample
}

// StateSample is one probe of the machine's resident state.
type StateSample struct {
	Time  sim.Time
	Tasks int   // resident tasks across all processors
	Bytes int64 // encoded size of their packets (snapshot payload)
}

// Report is the outcome of a run.
type Report struct {
	// Answer is the program's result; nil when the run did not complete.
	Answer expr.Value
	// Completed is true when the answer reached the super-root.
	Completed bool
	// Err holds a program evaluation error, if one occurred.
	Err error
	// Makespan is the virtual time at completion (or at the deadline for
	// incomplete runs).
	Makespan sim.Time
	// Metrics are the aggregate counters of the run.
	Metrics trace.Metrics
	// Log is the event log (nil unless tracing was configured).
	Log *trace.Log
	// Scheme and Placement echo the configuration for reports.
	Scheme, Placement string
	// Procs is the processor count.
	Procs int
	// Events is the number of kernel events dispatched.
	Events uint64
	// StateSamples holds the probes requested via Config.StateProbeEvery.
	StateSamples []StateSample
	// StepsByProc is the reduction-step count each processor executed —
	// the load distribution §3.3's balance discussion is about.
	StepsByProc []int64
}

// NeutralCounts are the substrate-independent counters of a run — the
// quantities any backend (simulated or live) can report, extracted here so
// the backend-neutral report in internal/core never reaches into Metrics
// field by field.
type NeutralCounts struct {
	// Messages is every message the interconnect carried.
	Messages int64
	// Spawned counts task packets created, including reissues and twins.
	Spawned int64
	// Reissued counts checkpointed packets re-sent after a failure.
	Reissued int64
	// Drained counts harmlessly discarded results (duplicates + late).
	Drained int64
	// Recoveries counts recovery events: reissues plus splice twins.
	Recoveries int64
}

// NeutralCounts extracts the backend-neutral counters from the report.
func (r *Report) NeutralCounts() NeutralCounts {
	m := &r.Metrics
	return NeutralCounts{
		Messages:   m.TotalMessages(),
		Spawned:    m.TasksSpawned,
		Reissued:   m.Reissues,
		Drained:    m.DupResults + m.LateResults,
		Recoveries: m.Reissues + m.Twins,
	}
}

// New builds a machine for the given configuration and program.
func New(cfg Config, prog *lang.Program) (*Machine, error) {
	norm, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if prog == nil {
		return nil, errors.New("machine: program is required")
	}
	m := &Machine{
		cfg:    norm,
		kernel: sim.NewKernel(norm.Seed),
		progs:  []*lang.Program{prog},
		n:      norm.Topo.Size(),
		tlog:   norm.Trace,
	}
	m.failTime = make([]sim.Time, m.n)
	for i := range m.failTime {
		m.failTime[i] = -1
	}
	m.firstDetect = make([]bool, m.n)
	m.dist = make([]int32, m.n*m.n)
	for from := 0; from < m.n; from++ {
		for to := 0; to < m.n; to++ {
			m.dist[from*m.n+to] = int32(norm.Topo.Dist(nodeID(from), nodeID(to)))
		}
	}
	m.kernel.SetSink(m.deliverEvent)
	m.procs = make([]*proc, m.n)
	for i := 0; i < m.n; i++ {
		m.procs[i] = newProc(proto.ProcID(i), m, false)
	}
	m.host = newProc(proto.HostID, m, true)
	return m, nil
}

// getMsg takes a recycled message envelope (or a fresh one) and fills it.
func (m *Machine) getMsg(msg proto.Msg) *proto.Msg {
	if n := len(m.msgFree); n > 0 {
		pm := m.msgFree[n-1]
		m.msgFree[n-1] = nil
		m.msgFree = m.msgFree[:n-1]
		*pm = msg
		return pm
	}
	pm := new(proto.Msg)
	*pm = msg
	return pm
}

// putMsg recycles a message envelope once delivery (or a drop) is done.
// Payload pointers are cleared so recycled envelopes pin nothing.
func (m *Machine) putMsg(pm *proto.Msg) {
	*pm = proto.Msg{}
	m.msgFree = append(m.msgFree, pm)
}

// deliverEvent is the kernel's payload sink: every scheduled message lands
// here, is handled, and its envelope recycled.
func (m *Machine) deliverEvent(v any) {
	pm := v.(*proto.Msg)
	m.deliver(pm)
	m.putMsg(pm)
}

// Kernel exposes the event kernel (scenario tests schedule probes with it).
func (m *Machine) Kernel() *sim.Kernel { return m.kernel }

// progIndex interns a program and returns its index; progs[0] is the build
// program, so one-shot packets keep the zero tag.
func (m *Machine) progIndex(p *lang.Program) int {
	for i, q := range m.progs {
		if q == p {
			return i
		}
	}
	m.progs = append(m.progs, p)
	return len(m.progs) - 1
}

// progOf resolves a packet's program tag.
func (m *Machine) progOf(i int) *lang.Program { return m.progs[i] }

// proc resolves a processor id, including the host. Unknown ids return nil.
func (m *Machine) proc(id proto.ProcID) *proc {
	if id == proto.HostID {
		return m.host
	}
	if id >= 0 && int(id) < m.n {
		return m.procs[id]
	}
	return nil
}

// replicasFor returns the §5.3 replication degree for a function.
func (m *Machine) replicasFor(fn string) int {
	if r, ok := m.cfg.Replication[fn]; ok && r > 1 {
		return r
	}
	return 1
}

// freshRep allocates a replica lineage id.
func (m *Machine) freshRep() proto.Rep {
	m.repSeq++
	return proto.Rep(m.repSeq)
}

// freshGen allocates an incarnation generation (never 0; 0 means "any").
func (m *Machine) freshGen() uint64 {
	m.genSeq++
	return m.genSeq
}

// log appends a trace event.
func (m *Machine) log(p proto.ProcID, kind trace.Kind, task, note string) {
	m.tlog.Add(trace.Event{
		Time: int64(m.kernel.Now()), Proc: int32(p), Kind: kind, Task: task, Note: note,
	})
}

// noteDetection records detection latency the first time anyone detects a
// given failure.
func (m *Machine) noteDetection(failed proto.ProcID) {
	if failed < 0 || int(failed) >= m.n {
		return
	}
	ft := m.failTime[failed]
	if ft < 0 || m.firstDetect[failed] {
		return
	}
	m.firstDetect[failed] = true
	m.metrics.FirstDetections++
	m.metrics.DetectLatencySum += int64(m.kernel.Now() - ft)
}

// send transmits a message. Local (from == to) deliveries cost one tick and
// no message accounting; remote ones pay per-hop latency and are counted.
// Dead processors transmit nothing. The message is taken by value: the
// machine copies it into a pooled envelope that lives exactly until
// delivery, so the call sites' composite literals stay on the stack.
func (m *Machine) send(msg proto.Msg) {
	src := m.proc(msg.From)
	if src == nil || src.dead {
		// Dead processors no longer transmit (§1); the announced-crash
		// "dying gasp" is sent by die() before the flag is set.
		return
	}
	if msg.From == msg.To {
		m.kernel.AfterMsg(1, m.getMsg(msg))
		return
	}
	hops := m.hops(msg.From, msg.To)
	size := msg.EncodedSize()
	m.metrics.BytesOnWire += int64(size)
	m.metrics.HopsOnWire += int64(hops)
	m.countMsg(msg.Type)
	latency := m.cfg.MsgOverhead + m.cfg.HopCost*int64(hops) + m.cfg.ByteCost*int64(size/64)
	if latency < 1 {
		latency = 1
	}
	m.kernel.AfterMsg(sim.Time(latency), m.getMsg(msg))
}

// countMsg tallies messages that are not already tallied at their call
// sites. Task, result, and similar messages increment their specific
// counters where they are built; the generic ones are counted here.
func (m *Machine) countMsg(t proto.MsgType) {
	switch t {
	case proto.MsgAbort:
		m.metrics.MsgAbort++
	case proto.MsgFaultAnnounce:
		m.metrics.MsgFault++
	case proto.MsgHeartbeatAck:
		m.metrics.MsgHeartbeat++
	case proto.MsgFreeze, proto.MsgFreezeAck, proto.MsgResume:
		m.metrics.MsgControl++
	}
}

// deliver hands a message to its destination; dead destinations drop it
// (the network knows only physical liveness, not suspicion state).
func (m *Machine) deliver(msg *proto.Msg) {
	dst := m.proc(msg.To)
	if dst == nil || dst.dead {
		return
	}
	dst.handle(msg)
}

// hops is the network distance between two processors. Host links are one
// hop (the operator console attaches at processor 0's port).
func (m *Machine) hops(from, to proto.ProcID) int {
	if from == proto.HostID || to == proto.HostID {
		return 1
	}
	return int(m.dist[int(from)*m.n+int(to)])
}

// completeRoot records a host-root task's answer: with a session attached
// (always, since Run serves through one) completion is per-request; the
// legacy single-root path is kept as a fallback for direct machine use.
func (m *Machine) completeRoot(t *task, v expr.Value) {
	if m.session != nil {
		m.session.rootDone(t.pkt.Key, v)
		return
	}
	m.complete(v)
}

// complete records the program's answer arriving at the super-root and
// stops the run.
func (m *Machine) complete(v expr.Value) {
	if m.done {
		return
	}
	m.done = true
	m.answer = v
	m.doneAt = m.kernel.Now()
	m.log(proto.HostID, trace.KRootDone, "", v.String())
	m.kernel.Stop()
}

// failRun aborts the run with a program error (evaluation errors are
// deterministic program bugs, not recoverable faults).
func (m *Machine) failRun(err error) {
	if m.runErr == nil {
		m.runErr = err
	}
	m.kernel.Stop()
}

// Run evaluates fn(args) on the machine under the given fault plan and
// returns the report. A machine instance runs once. Run is the degenerate
// service stream: it opens a Session, submits the one request, waits, and
// finalizes — the exact event sequence the pre-session machine produced.
func (m *Machine) Run(fn string, args []expr.Value, plan *faults.Plan) (*Report, error) {
	s, err := m.Serve(ServeConfig{})
	if err != nil {
		return nil, err
	}
	req, err := s.Submit(m.progs[0], fn, args)
	if err != nil {
		return nil, err
	}
	if _, err := s.Inject(plan); err != nil {
		return nil, err
	}
	s.Wait(req)
	return s.Finish(), nil
}

// finalReport closes the books on the machine: leak and checkpoint-storage
// accounting, then the aggregate report. Tasks still returning have finished
// their work and are merely awaiting result acknowledgements cut off by the
// stop; only tasks that never produced a value count as leaked. In service
// mode Answer/Makespan are those of the first completed request; per-request
// stamps live on the session's Reqs.
func (m *Machine) finalReport() *Report {
	for _, p := range m.procs {
		for _, t := range p.tasks {
			if t.state != taskAborted && t.state != taskReturning {
				m.metrics.TasksLeaked++
			}
		}
		m.metrics.CheckpointBytes += p.store.PeakBytes()
	}
	m.metrics.CheckpointBytes += m.host.store.PeakBytes()

	makespan := m.doneAt
	if !m.done {
		makespan = m.kernel.Now()
	}
	stepsByProc := make([]int64, m.n)
	for i, p := range m.procs {
		stepsByProc[i] = p.stepsDone
	}
	return &Report{
		Answer:       m.answer,
		Completed:    m.done,
		Err:          m.runErr,
		Makespan:     makespan,
		Metrics:      m.metrics,
		Log:          m.tlog,
		Scheme:       m.cfg.Scheme.Name(),
		Placement:    m.cfg.Placement.Name(),
		Procs:        m.n,
		Events:       m.kernel.Processed(),
		StateSamples: m.stateSamples,
		StepsByProc:  stepsByProc,
	}
}

// sampleState sums resident task state across processors.
func (m *Machine) sampleState() StateSample {
	s := StateSample{Time: m.kernel.Now()}
	for _, p := range m.procs {
		for _, t := range p.tasks {
			if t.state == taskAborted {
				continue
			}
			s.Tasks++
			s.Bytes += int64(t.pkt.EncodedSize())
		}
	}
	return s
}

// inject applies one fault.
func (m *Machine) inject(f faults.Fault) {
	p := m.proc(f.Proc)
	if p == nil || p.isHost {
		return
	}
	switch f.Kind {
	case faults.Corrupt:
		if !p.dead {
			p.corrupt = true
			m.log(f.Proc, trace.KFail, "", "value corruption begins")
		}
	default:
		if p.dead {
			return
		}
		m.metrics.Failures++
		if f.Proc >= 0 && int(f.Proc) < m.n {
			m.failTime[f.Proc] = m.kernel.Now()
		}
		m.log(f.Proc, trace.KFail, "", f.Kind.String())
		p.die(f.Kind == faults.CrashAnnounced)
	}
}

// tracing reports whether an event log is attached; hot paths use it to
// skip building log arguments.
func (m *Machine) tracing() bool { return m.tlog != nil }
