package machine

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

type nodeID = topology.NodeID

// noProc marks the host pseudo-task's absent parent.
const noProc proto.ProcID = -3

// Machine is the simulated applicative multiprocessor.
type Machine struct {
	cfg Config
	// kern is the (possibly sharded) event kernel ensemble. The machine is
	// partitioned by topology region: every processor is pinned to its
	// region's shard and all of its events dispatch there; only message
	// deliveries cross shards, and those are bounded below by the lookahead
	// horizon (one hop of latency), which is what makes the lockstep windows
	// sound. With Config.Shards <= 1 the ensemble is a single kernel run
	// inline — the reference behaviour every shard count must reproduce.
	kern *sim.Sharded
	// shards holds the per-shard mutable state: everything a handler touches
	// during a window lives on exactly one shard (metrics, envelope pools,
	// trace buffers), so windows need no locks; the coordinator merges at
	// Finish in the deterministic dispatch order.
	shards []*shardCtx
	single bool // len(shards) == 1: skip tagging, write traces directly
	// segment counts driver run segments (Wait drives). Order between runs
	// is driver order, not key order — events of a later segment can carry
	// smaller keys (a re-admission at the stop tick) — so merge order is
	// (segment, key).
	segment int

	// progs holds the loaded programs: progs[0] is the program the machine
	// was built with; service mode (Session) loads one more per distinct
	// submitted program. Task packets name their program by index (Prog).
	// evals is kept parallel: evals[i] is progs[i] compiled by the machine's
	// evaluator at intern time, so the per-task hot path never compiles.
	progs []*lang.Program
	evals []lang.EvalProgram
	eval  lang.Evaluator
	n     int

	// dist caches the topology's hop-distance table as one flat slice
	// (dist[from*n+to]), so the per-message distance lookup is an indexed
	// load instead of an interface call. Built once at construction; the
	// equivalence with Topo.Dist is pinned by TestHopCacheMatchesTopology.
	dist []int32

	// session, when non-nil, owns request bookkeeping: root completions are
	// routed per-request instead of stopping the whole run. Run attaches one
	// implicitly, so there is a single execution path.
	session *Session

	procs []*proc
	host  *proc

	// metrics is the merged view, valid after finalReport; during the run
	// every counter bump goes to the owning shard's context.
	metrics trace.Metrics
	tlog    *trace.Log

	// Completion state. Written only by host-shard events and read by the
	// driver between runs.
	done   bool
	answer expr.Value
	doneAt sim.Time

	// runErr is the merged first program error (in dispatch order); the
	// per-shard candidates live on the shard contexts.
	runErr error
	errSeg int
	errKey sim.Key

	stateSamples []StateSample
}

// shardCtx is the state one shard's handlers may touch freely during a
// lockstep window. Nothing here is shared between shards until the
// coordinator merges it (metrics by commutative addition, traces and
// detections by dispatch order).
type shardCtx struct {
	k       *sim.Kernel
	metrics trace.Metrics

	// msgFree recycles delivered protocol messages: a Msg is alive only
	// from post until its delivery callback returns (handlers retain
	// payload pointers — packets, results — never the envelope), so each
	// shard reuses envelopes instead of allocating one per message.
	// Envelopes are allocated from the sender's pool and recycled into the
	// receiver's, so a cross-shard delivery migrates its envelope — still
	// lock-free, since each pool is only touched by its own shard.
	msgFree []*proto.Msg

	// traceBuf buffers trace events tagged with their dispatch position
	// when more than one shard runs; the single-shard machine writes to the
	// log directly.
	traceBuf []keyedEvent

	// detects records failure detections for the latency accounting; the
	// "first" detection of a failure is decided at merge time by dispatch
	// order, exactly as the single-shard run decides it by arrival.
	detects []detection

	// runErr is the shard's first program error and its dispatch position.
	runErr error
	errSeg int
	errKey sim.Key
}

// keyedEvent is a trace event tagged with its dispatch position.
type keyedEvent struct {
	seg int
	key sim.Key
	ev  trace.Event
}

// detection is one declareFaulty observation of a (possibly) failed
// processor, tagged with its dispatch position.
type detection struct {
	failed proto.ProcID
	at     sim.Time
	seg    int
	key    sim.Key
}

// ordBefore reports whether dispatch position (aSeg, aKey) precedes
// (bSeg, bKey).
func ordBefore(aSeg int, aKey sim.Key, bSeg int, bKey sim.Key) bool {
	if aSeg != bSeg {
		return aSeg < bSeg
	}
	return aKey.Less(bKey)
}

// StateSample is one probe of the machine's resident state.
type StateSample struct {
	Time  sim.Time
	Tasks int   // resident tasks across all processors
	Bytes int64 // encoded size of their packets (snapshot payload)
}

// Report is the outcome of a run.
type Report struct {
	// Answer is the program's result; nil when the run did not complete.
	Answer expr.Value
	// Completed is true when the answer reached the super-root.
	Completed bool
	// Err holds a program evaluation error, if one occurred.
	Err error
	// Makespan is the virtual time at completion (or at the deadline for
	// incomplete runs).
	Makespan sim.Time
	// Metrics are the aggregate counters of the run.
	Metrics trace.Metrics
	// Log is the event log (nil unless tracing was configured).
	Log *trace.Log
	// Scheme and Placement echo the configuration for reports.
	Scheme, Placement string
	// Procs is the processor count.
	Procs int
	// Events is the number of kernel events dispatched.
	Events uint64
	// StateSamples holds the probes requested via Config.StateProbeEvery.
	StateSamples []StateSample
	// StepsByProc is the reduction-step count each processor executed —
	// the load distribution §3.3's balance discussion is about.
	StepsByProc []int64
}

// NeutralCounts are the substrate-independent counters of a run — the
// quantities any backend (simulated or live) can report, extracted here so
// the backend-neutral report in internal/core never reaches into Metrics
// field by field.
type NeutralCounts struct {
	// Messages is every message the interconnect carried.
	Messages int64
	// Spawned counts task packets created, including reissues and twins.
	Spawned int64
	// Reissued counts checkpointed packets re-sent after a failure.
	Reissued int64
	// Drained counts harmlessly discarded results (duplicates + late).
	Drained int64
	// Recoveries counts recovery events: reissues plus splice twins.
	Recoveries int64
	// Bytes is the encoded payload byte total of Messages (the proto codec
	// wire sizes).
	Bytes int64
}

// NeutralCounts extracts the backend-neutral counters from the report.
func (r *Report) NeutralCounts() NeutralCounts {
	m := &r.Metrics
	return NeutralCounts{
		Messages:   m.TotalMessages(),
		Spawned:    m.TasksSpawned,
		Reissued:   m.Reissues,
		Drained:    m.DupResults + m.LateResults,
		Recoveries: m.Reissues + m.Twins,
		Bytes:      m.BytesOnWire,
	}
}

// New builds a machine for the given configuration and program.
func New(cfg Config, prog *lang.Program) (*Machine, error) {
	norm, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if prog == nil {
		return nil, errors.New("machine: program is required")
	}
	ev, err := lang.EvaluatorByName(norm.Eval)
	if err != nil {
		return nil, err // unreachable: normalized() validated the name
	}
	ep, err := ev.Compile(prog)
	if err != nil {
		return nil, fmt.Errorf("machine: compile: %w", err)
	}
	m := &Machine{
		cfg:   norm,
		progs: []*lang.Program{prog},
		evals: []lang.EvalProgram{ep},
		eval:  ev,
		n:     norm.Topo.Size(),
		tlog:  norm.Trace,
	}
	// The lookahead horizon is the minimum latency of any cross-shard
	// message: one hop (MsgOverhead + HopCost). Host links are one hop and
	// any partition of a connected graph has an adjacent cross-region pair,
	// so the bound is the same at every shard count — which it must be, or
	// window boundaries (and thus Stop/budget observation points) would
	// depend on the shard count.
	horizon := sim.Time(norm.MsgOverhead + norm.HopCost)
	nshards := norm.Shards
	if nshards > m.n {
		nshards = m.n
	}
	if horizon < 1 {
		nshards = 1 // degenerate cost model: no safe lookahead, run inline
	}
	homes := make([]int32, m.n+1) // procs 0..n-1, then the host at index n
	if nshards > 1 {
		part := topology.Partition(norm.Topo, nshards)
		nshards = part.Shards
		copy(homes, part.Region)
		// The operator console attaches at processor 0's port, so the host
		// pseudo-processor lives on processor 0's shard.
		homes[m.n] = part.Region[0]
	}
	m.kern = sim.NewSharded(norm.Seed, nshards, homes, horizon)
	m.single = nshards == 1
	m.shards = make([]*shardCtx, nshards)
	for i := range m.shards {
		sc := &shardCtx{k: m.kern.Shard(i)}
		m.shards[i] = sc
		sc.k.SetSink(func(v any) { m.deliverOn(sc, v) })
	}
	m.dist = make([]int32, m.n*m.n)
	for from := 0; from < m.n; from++ {
		for to := 0; to < m.n; to++ {
			m.dist[from*m.n+to] = int32(norm.Topo.Dist(nodeID(from), nodeID(to)))
		}
	}
	m.procs = make([]*proc, m.n)
	for i := 0; i < m.n; i++ {
		p := newProc(proto.ProcID(i), m, false)
		m.wireProc(p, i, homes[i])
		m.procs[i] = p
	}
	m.host = newProc(proto.HostID, m, true)
	m.wireProc(m.host, m.n, homes[m.n])
	return m, nil
}

// wireProc pins a processor to its shard and seeds its private determinism
// streams (RNG, generation/replica counters live on the proc itself). The
// streams are per-processor rather than per-kernel so their consumption
// order — and hence every value drawn — is independent of which processors
// share a shard.
func (m *Machine) wireProc(p *proc, idx int, home int32) {
	p.idx = idx
	p.sc = m.shards[home]
	p.k = p.sc.k
	p.rng = cachedRand(mixSeed(m.cfg.Seed, idx))
	p.failedAt = -1
}

// mixSeed derives processor idx's RNG seed from the machine seed with a
// golden-ratio stride, so neighbouring processors get unrelated streams.
func mixSeed(seed int64, idx int) int64 {
	return int64(uint64(seed) + uint64(idx+1)*0x9E3779B97F4A7C15)
}

// ownerOf maps a processor id to its kernel owner index (host = n).
func (m *Machine) ownerOf(id proto.ProcID) int32 {
	if id == proto.HostID {
		return int32(m.n)
	}
	return int32(id)
}

// getMsg takes a recycled message envelope (or a fresh one) and fills it.
func (sc *shardCtx) getMsg(msg proto.Msg) *proto.Msg {
	if n := len(sc.msgFree); n > 0 {
		pm := sc.msgFree[n-1]
		sc.msgFree[n-1] = nil
		sc.msgFree = sc.msgFree[:n-1]
		*pm = msg
		return pm
	}
	pm := new(proto.Msg)
	*pm = msg
	return pm
}

// putMsg recycles a message envelope once delivery (or a drop) is done.
// Payload pointers are cleared so recycled envelopes pin nothing.
func (sc *shardCtx) putMsg(pm *proto.Msg) {
	*pm = proto.Msg{}
	sc.msgFree = append(sc.msgFree, pm)
}

// deliverOn is shard sc's payload sink: every message scheduled onto the
// shard lands here, is handled, and its envelope recycled into sc's pool
// (the event's owner is the destination, so sc is the destination's shard).
func (m *Machine) deliverOn(sc *shardCtx, v any) {
	pm := v.(*proto.Msg)
	m.deliver(pm)
	sc.putMsg(pm)
}

// Kernel exposes the kernel ensemble (tests inspect clocks and event
// counts with it).
func (m *Machine) Kernel() *sim.Sharded { return m.kern }

// progIndex interns a program and returns its index; progs[0] is the build
// program, so one-shot packets keep the zero tag. Interning a new program
// compiles it with the machine's evaluator — the once-per-program cost that
// keeps compilation off the per-task hot path.
func (m *Machine) progIndex(p *lang.Program) (int, error) {
	for i, q := range m.progs {
		if q == p {
			return i, nil
		}
	}
	ep, err := m.eval.Compile(p)
	if err != nil {
		return 0, fmt.Errorf("machine: compile: %w", err)
	}
	m.progs = append(m.progs, p)
	m.evals = append(m.evals, ep)
	return len(m.progs) - 1, nil
}

// progOf resolves a packet's program tag.
func (m *Machine) progOf(i int) *lang.Program { return m.progs[i] }

// evalOf resolves a packet's program tag to its compiled form.
func (m *Machine) evalOf(i int) lang.EvalProgram { return m.evals[i] }

// proc resolves a processor id, including the host. Unknown ids return nil.
func (m *Machine) proc(id proto.ProcID) *proc {
	if id == proto.HostID {
		return m.host
	}
	if id >= 0 && int(id) < m.n {
		return m.procs[id]
	}
	return nil
}

// replicasFor returns the §5.3 replication degree for a function.
func (m *Machine) replicasFor(fn string) int {
	if r, ok := m.cfg.Replication[fn]; ok && r > 1 {
		return r
	}
	return 1
}

// log appends a trace event on behalf of processor id; it must be called
// from id's shard (which every handler call site is). Under a single shard
// the event goes straight to the log; otherwise it is buffered with its
// dispatch position and merged at Finish.
func (m *Machine) log(id proto.ProcID, kind trace.Kind, task, note string) {
	if m.tlog == nil {
		return
	}
	sc := m.proc(id).sc
	ev := trace.Event{
		Time: int64(sc.k.Now()), Proc: int32(id), Kind: kind, Task: task, Note: note,
	}
	if m.single {
		m.tlog.Add(ev)
		return
	}
	sc.traceBuf = append(sc.traceBuf, keyedEvent{seg: m.segment, key: sc.k.CurrentKey(), ev: ev})
}

// noteDetection records that observer p declared `failed` faulty; whether
// it was the first detection (for the latency average) is decided at merge
// time from the dispatch order.
func (m *Machine) noteDetection(p *proc, failed proto.ProcID) {
	if failed < 0 || int(failed) >= m.n {
		return
	}
	p.sc.detects = append(p.sc.detects, detection{
		failed: failed, at: p.k.Now(), seg: m.segment, key: p.k.CurrentKey(),
	})
}

// send transmits a message. Local (from == to) deliveries cost one tick and
// no message accounting; remote ones pay per-hop latency and are counted.
// Dead processors transmit nothing. The message is taken by value: the
// machine copies it into a pooled envelope that lives exactly until
// delivery, so the call sites' composite literals stay on the stack.
// Everything happens on the sender's shard except the final enqueue, which
// AtMsgTo routes to the destination's shard through the outbox when they
// differ — sound because remote latency is at least the lookahead horizon.
func (m *Machine) send(msg proto.Msg) {
	src := m.proc(msg.From)
	if src == nil || src.dead {
		// Dead processors no longer transmit (§1); the announced-crash
		// "dying gasp" is sent by die() before the flag is set.
		return
	}
	sc := src.sc
	if msg.From == msg.To {
		sc.k.AfterMsg(1, sc.getMsg(msg))
		return
	}
	hops := m.hops(msg.From, msg.To)
	size := msg.EncodedSize()
	sc.metrics.BytesOnWire += int64(size)
	sc.metrics.HopsOnWire += int64(hops)
	countMsg(&sc.metrics, msg.Type)
	latency := m.cfg.MsgOverhead + m.cfg.HopCost*int64(hops) + m.cfg.ByteCost*int64(size/64)
	if latency < 1 {
		latency = 1
	}
	sc.k.AtMsgTo(sc.k.Now()+sim.Time(latency), m.ownerOf(msg.To), sc.getMsg(msg))
}

// countMsg tallies messages that are not already tallied at their call
// sites. Task, result, and similar messages increment their specific
// counters where they are built; the generic ones are counted here.
func countMsg(mt *trace.Metrics, t proto.MsgType) {
	switch t {
	case proto.MsgAbort, proto.MsgChildAbort:
		mt.MsgAbort++
	case proto.MsgFaultAnnounce:
		mt.MsgFault++
	case proto.MsgHeartbeatAck:
		mt.MsgHeartbeat++
	case proto.MsgFreeze, proto.MsgFreezeAck, proto.MsgResume:
		mt.MsgControl++
	}
}

// deliver hands a message to its destination; dead destinations drop it
// (the network knows only physical liveness, not suspicion state).
func (m *Machine) deliver(msg *proto.Msg) {
	dst := m.proc(msg.To)
	if dst == nil || dst.dead {
		return
	}
	dst.handle(msg)
}

// hops is the network distance between two processors. Host links are one
// hop (the operator console attaches at processor 0's port).
func (m *Machine) hops(from, to proto.ProcID) int {
	if from == proto.HostID || to == proto.HostID {
		return 1
	}
	return int(m.dist[int(from)*m.n+int(to)])
}

// completeRoot records a host-root task's answer: with a session attached
// (always, since Run serves through one) completion is per-request; the
// legacy single-root path is kept as a fallback for direct machine use.
func (m *Machine) completeRoot(t *task, v expr.Value) {
	if m.session != nil {
		m.session.rootDone(t.pkt.Key, v)
		return
	}
	m.complete(v)
}

// complete records the program's answer arriving at the super-root and
// stops the run. It runs on the host's shard.
func (m *Machine) complete(v expr.Value) {
	if m.done {
		return
	}
	m.done = true
	m.answer = v
	m.doneAt = m.host.k.Now()
	m.log(proto.HostID, trace.KRootDone, "", v.String())
	m.host.k.Stop()
}

// failRun aborts the run with a program error (evaluation errors are
// deterministic program bugs, not recoverable faults). p is the processor
// whose pass failed; the first error in dispatch order wins at merge.
func (m *Machine) failRun(p *proc, err error) {
	sc := p.sc
	if sc.runErr == nil {
		sc.runErr, sc.errSeg, sc.errKey = err, m.segment, p.k.CurrentKey()
	}
	p.k.Stop()
}

// mergeRunErr folds the per-shard error candidates into the machine-level
// first error (dispatch order decides "first", at any shard count).
func (m *Machine) mergeRunErr() {
	for _, sc := range m.shards {
		if sc.runErr == nil {
			continue
		}
		if m.runErr == nil || ordBefore(sc.errSeg, sc.errKey, m.errSeg, m.errKey) {
			m.runErr, m.errSeg, m.errKey = sc.runErr, sc.errSeg, sc.errKey
		}
	}
}

// Run evaluates fn(args) on the machine under the given fault plan and
// returns the report. A machine instance runs once. Run is the degenerate
// service stream: it opens a Session, submits the one request, waits, and
// finalizes — the exact event sequence the pre-session machine produced.
func (m *Machine) Run(fn string, args []expr.Value, plan *faults.Plan) (*Report, error) {
	s, err := m.Serve(ServeConfig{})
	if err != nil {
		return nil, err
	}
	req, err := s.Submit(m.progs[0], fn, args)
	if err != nil {
		return nil, err
	}
	if _, err := s.Inject(plan); err != nil {
		return nil, err
	}
	s.Wait(req)
	return s.Finish(), nil
}

// finalReport closes the books on the machine: merge the per-shard state
// (metrics, traces, detections, errors), then leak and checkpoint-storage
// accounting, then the aggregate report. Tasks still returning have finished
// their work and are merely awaiting result acknowledgements cut off by the
// stop; only tasks that never produced a value count as leaked. In service
// mode Answer/Makespan are those of the first completed request; per-request
// stamps live on the session's Reqs.
func (m *Machine) finalReport() *Report {
	m.mergeRunErr()
	m.mergeTrace()
	for _, sc := range m.shards {
		m.metrics.Add(&sc.metrics)
	}
	m.mergeDetections()
	for _, p := range m.procs {
		for _, t := range p.tasks {
			if t.state != taskAborted && t.state != taskReturning {
				m.metrics.TasksLeaked++
			}
		}
		m.metrics.CheckpointBytes += p.store.PeakBytes()
	}
	m.metrics.CheckpointBytes += m.host.store.PeakBytes()

	makespan := m.doneAt
	if !m.done {
		makespan = m.kern.Now()
	}
	stepsByProc := make([]int64, m.n)
	for i, p := range m.procs {
		stepsByProc[i] = p.stepsDone
	}
	m.kern.Close()
	return &Report{
		Answer:       m.answer,
		Completed:    m.done,
		Err:          m.runErr,
		Makespan:     makespan,
		Metrics:      m.metrics,
		Log:          m.tlog,
		Scheme:       m.cfg.Scheme.Name(),
		Placement:    m.cfg.Placement.Name(),
		Procs:        m.n,
		Events:       m.kern.Processed(),
		StateSamples: m.stateSamples,
		StepsByProc:  stepsByProc,
	}
}

// mergeTrace interleaves the per-shard trace buffers into the log in
// dispatch order. Within one driver segment the dispatch order is the key
// order (windows advance monotonically in time); across segments it is
// segment order. The stable sort keeps same-event entries (equal keys) in
// their emission order, so the merged log is byte-identical to the
// single-shard log.
func (m *Machine) mergeTrace() {
	if m.single || m.tlog == nil {
		return
	}
	var all []keyedEvent
	for _, sc := range m.shards {
		all = append(all, sc.traceBuf...)
		sc.traceBuf = nil
	}
	sort.SliceStable(all, func(i, j int) bool {
		return ordBefore(all[i].seg, all[i].key, all[j].seg, all[j].key)
	})
	for _, ke := range all {
		m.tlog.Add(ke.ev)
	}
}

// mergeDetections computes the first-detection latency metrics from the
// per-shard detection records: for each processor that actually failed, the
// first (in dispatch order) detection at or after the failure counts —
// exactly the record the single-shard run updates online.
func (m *Machine) mergeDetections() {
	type firstRec struct {
		ok  bool
		at  sim.Time
		seg int
		key sim.Key
	}
	firsts := make([]firstRec, m.n)
	for _, sc := range m.shards {
		for _, d := range sc.detects {
			p := m.procs[d.failed]
			if p.failedAt < 0 {
				continue // suspected but never actually failed
			}
			if ordBefore(d.seg, d.key, p.failSeg, p.failKey) {
				continue // suspicion predates the actual failure
			}
			f := &firsts[d.failed]
			if !f.ok || ordBefore(d.seg, d.key, f.seg, f.key) {
				*f = firstRec{ok: true, at: d.at, seg: d.seg, key: d.key}
			}
		}
		sc.detects = nil
	}
	for i := range firsts {
		if firsts[i].ok {
			m.metrics.FirstDetections++
			m.metrics.DetectLatencySum += int64(firsts[i].at - m.procs[i].failedAt)
		}
	}
}

// sampleStateAt sums resident task state across processors. It runs at a
// window barrier (the pacer), so reading every shard's tasks is safe.
func (m *Machine) sampleStateAt(t sim.Time) StateSample {
	s := StateSample{Time: t}
	for _, p := range m.procs {
		for _, tk := range p.tasks {
			if tk.state == taskAborted {
				continue
			}
			s.Tasks++
			s.Bytes += int64(tk.pkt.EncodedSize())
		}
	}
	return s
}

// inject applies one fault. It runs as an event owned by the target
// processor, so the bookkeeping lands on that processor's shard.
func (m *Machine) inject(f faults.Fault) {
	p := m.proc(f.Proc)
	if p == nil || p.isHost {
		return
	}
	switch f.Kind {
	case faults.Corrupt:
		if !p.dead {
			p.corrupt = true
			m.log(f.Proc, trace.KFail, "", "value corruption begins")
		}
	default:
		if p.dead {
			return
		}
		p.sc.metrics.Failures++
		p.failedAt = p.k.Now()
		p.failSeg = m.segment
		p.failKey = p.k.CurrentKey()
		m.log(f.Proc, trace.KFail, "", f.Kind.String())
		p.die(f.Kind == faults.CrashAnnounced)
	}
}

// tracing reports whether an event log is attached; hot paths use it to
// skip building log arguments.
func (m *Machine) tracing() bool { return m.tlog != nil }
