package scenario

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/trace"
)

// Fig67Result is the outcome of failing P's processor at one of the seven
// states of Figure 6 (spawning and reduction of task G → P → C).
// §4.3.2's residue-freedom criterion: "A residue-free fault tolerant
// measure must assure that tasks G and C are not affected by the failure of
// P from state a through state g" — operationally, the program always
// finishes with the correct answer.
type Fig67Result struct {
	State     byte   // 'a'..'g'
	Scheme    string // rollback or splice
	Desc      string
	Completed bool
	Answer    string
	// PlacesP / PlacesC count placements of P's and C's stamps.
	PlacesP, PlacesC int
	// Recovered counts reissues (rollback) or twins (splice).
	Recovered int64
	// Aborted counts orphan suicides (§4.3.2 state d: "C commits suicide").
	Aborted int64
	FaultAt int64
	Metrics trace.Metrics
}

// fig67Descs names the states per Figure 6.
var fig67Descs = map[byte]string{
	'a': "before P is spawned",
	'b': "P's packet in flight, unacknowledged",
	'c': "P settled and acknowledged, not yet running",
	'd': "P running, C's packet in flight",
	'e': "P running, C settled and computing",
	'f': "C returned its result into P; P computing its tail",
	'g': "P completed; its result already delivered to G",
}

// fig67Spec is the common micro-tree for the state scenarios: G has a
// pre-pass (window for state a), P has distinct pre/post passes (windows
// for d/e and f), C computes long enough to hit mid-flight windows, and a
// filler pinned ahead of P provides the queued window for state c.
func fig67Spec(state byte) gpcSpec {
	sp := gpcSpec{gPre: 600, pPre: 500, pPost: 2500, cCost: 2500}
	if state == 'c' {
		// Filler ahead of P on P's processor keeps P queued (placed, not
		// started).
		sp.filler = 2000
		sp.fillerFirst = true
		sp.fillerOnP = true
	}
	return sp
}

// RunFig67State fails P's processor at state ('a'..'g') under the given
// scheme ("rollback" or "splice") and reports the outcome.
func RunFig67State(state byte, scheme string) (*Fig67Result, error) {
	desc, ok := fig67Descs[state]
	if !ok {
		return nil, fmt.Errorf("scenario: Figure 6 has states a..g, not %q", state)
	}
	sp := fig67Spec(state)
	t, err := sp.dryTimes(scheme)
	if err != nil {
		return nil, err
	}
	var faultAt int64
	switch state {
	case 'a':
		// During G's pre-pass, before P's packet exists.
		faultAt = t.spawnP / 2
		if faultAt < 1 {
			faultAt = 1
		}
	case 'b':
		// Between P's spawn (packet sent) and its placement.
		faultAt = t.spawnP + 1
	case 'c':
		// P is placed but queued behind the filler.
		faultAt = t.placeP + 20
	case 'd':
		// Between C's spawn and C's placement.
		faultAt = t.spawnC + 1
	case 'e':
		// While C computes remotely and P waits.
		faultAt = (t.startC + t.completeC) / 2
	case 'f':
		// After C's result returned into P, during P's tail pass.
		faultAt = (t.startP2 + t.completeP) / 2
	case 'g':
		// After P's result reached G.
		faultAt = t.fillG + 10
	}
	rep, err := sp.runWithFault(scheme, true, 0, gpcProcP, faultAt, true)
	if err != nil {
		return nil, err
	}
	return sp.finish67(state, scheme, desc, rep, faultAt)
}

func (sp gpcSpec) finish67(state byte, scheme, desc string, rep *machine.Report, faultAt int64) (*Fig67Result, error) {
	want, err := sp.expect()
	if err != nil {
		return nil, err
	}
	_, pS, cS, _ := sp.gpcStamps()
	res := &Fig67Result{
		State:     state,
		Scheme:    scheme,
		Desc:      desc,
		Completed: rep.Completed && rep.Answer != nil && rep.Answer.Equal(want),
		PlacesP:   countEvents(rep.Log, trace.KPlace, pS),
		PlacesC:   countEvents(rep.Log, trace.KPlace, cS),
		Recovered: rep.Metrics.Reissues + rep.Metrics.Twins,
		Aborted:   rep.Metrics.TasksAborted,
		FaultAt:   faultAt,
		Metrics:   rep.Metrics,
	}
	if rep.Answer != nil {
		res.Answer = rep.Answer.String()
	}
	return res, nil
}
