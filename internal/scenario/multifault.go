package scenario

import (
	"errors"

	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MultiFaultResult is the outcome of the §5.2 same-branch double failure:
// the processors of a task's parent AND grandparent fail while the task
// computes.
type MultiFaultResult struct {
	AncestorDepth int
	Completed     bool
	Answer        string
	// Stranded counts orphan results with no live ancestor to escalate to.
	Stranded int64
	// Relayed counts orphan results salvaged via an ancestor relay.
	Relayed int64
	// PlacesC counts placements of the bottom task's stamp (1 = the orphan
	// result was inherited; 2 = the subtree was recomputed).
	PlacesC int
	Metrics trace.Metrics
}

// RunMultiFaultBranch realizes §5.2's hard case with ancestor-pointer depth
// K: "if both the parent and grandparent processors of a task fail
// simultaneously, the orphan task would be stranded. It is noted that the
// resilient structure concept can be further extended to include pointers
// to the great grandparent and beyond."
//
// The chain is G → M → P → C on four distinct processors (M is the
// great-grandparent link target holder; G the root). P's and M's processors
// fail at the same instant while C computes. With K=2 C's eventual result
// can only name its dead parent and dead grandparent, so it strands and the
// twins recompute the subtree; with K=3 the result escalates to G's
// processor and is spliced in.
func RunMultiFaultBranch(ancestorDepth int) (*MultiFaultResult, error) {
	// Reuse the G/P/C machinery with an extra middle layer by building a
	// dedicated tree: G(proc0) → M(proc1) → P(proc2) → C(proc3), where C is
	// a slow leaf and the others are pass-through sums.
	tree, err := NewTree([][3]string{
		{"G", "", ""},
		{"M", "G", ""},
		{"P", "M", ""},
		{"C", "P", ""},
	}, map[string]proto.ProcID{
		"G": 0, "M": 1, "P": 2, "C": 3,
	})
	if err != nil {
		return nil, err
	}
	prog, err := tree.Program(6000)
	if err != nil {
		return nil, err
	}
	stamps := tree.Stamps()

	cfg, err := baseConfig(tree, 4, "splice")
	if err != nil {
		return nil, err
	}
	cfg.AncestorDepth = ancestorDepth
	cfg.Deadline = sim.Time(4_000_000)

	// Dry run: fault while C's spin child is computing (C itself waits).
	dry, err := run(cfg, prog, "tG", nil)
	if err != nil {
		return nil, err
	}
	spinStamp := stamps["C"].Child(0)
	start := eventTime(dry.Log, trace.KStart, spinStamp)
	done := eventTime(dry.Log, trace.KComplete, spinStamp)
	if start < 0 || done <= start {
		return nil, errNoWindow
	}
	faultAt := (start + done) / 2

	// Simultaneous announced crashes of P's and M's processors.
	plan := faults.None().
		Add(faults.Fault{At: faultAt, Proc: 1, Kind: faults.CrashAnnounced}).
		Add(faults.Fault{At: faultAt, Proc: 2, Kind: faults.CrashAnnounced})

	cfg2, err := baseConfig(tree, 4, "splice")
	if err != nil {
		return nil, err
	}
	cfg2.AncestorDepth = ancestorDepth
	cfg2.Deadline = sim.Time(4_000_000)
	rep, err := run(cfg2, prog, "tG", plan)
	if err != nil {
		return nil, err
	}
	want, err := lang.RefEval(prog, "tG", nil)
	if err != nil {
		return nil, err
	}
	res := &MultiFaultResult{
		AncestorDepth: ancestorDepth,
		Completed:     rep.Completed && rep.Answer != nil && rep.Answer.Equal(want),
		Stranded:      rep.Metrics.Stranded,
		Relayed:       rep.Metrics.Relayed,
		PlacesC:       countEvents(rep.Log, trace.KPlace, stamps["C"]),
		Metrics:       rep.Metrics,
	}
	if rep.Answer != nil {
		res.Answer = rep.Answer.String()
	}
	return res, nil
}

var errNoWindow = errors.New("scenario: no fault window for multi-fault branch")
