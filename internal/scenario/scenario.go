// Package scenario reproduces the paper's figures as executable scenarios:
//
//   - Figure 1 (§2–3): the call tree mapped onto processors A–D, its
//     checkpoint distribution, the three fragments created by the failure of
//     processor B, and rollback's topmost-only reissue (B5 suppressed).
//   - Figures 2–3 (§4.1): grandparent pointers and twin inheritance — task
//     B2′ created by C1 inherits the orphan results of B2's offspring.
//   - Figures 4–5 (§4.1): the eight possible orderings of a child's
//     completion relative to the failure and the twin's progress.
//   - Figures 6–7 (§4.3.2): the spawn state diagram a–g and the residue-
//     freedom of recovery at every state.
//
// Each scenario builds a purpose-made program, pins tasks to processors
// exactly as the figure prescribes, dry-runs to locate precise virtual
// times, injects the fault, and returns a result struct that both the test
// suite and cmd/experiments consume.
//
// Scenarios are the narrative complement to the quantitative drivers in
// internal/experiments: a figure replay asserts *which* protocol actions
// happened (B5 suppressed, the twin inherited B2's orphans), while a table
// measures how much they cost. Both register in internal/runner's registry
// and render into EXPERIMENTS.md through the same pipeline.
//
// The service layer has its own narrative counterpart: the admission tests
// in internal/core pin *which* requests a bounded stream admits, queues,
// and sheds (ServiceReport.Render byte-compared across shard counts and
// Submit interleavings), playing the same role for the open-loop load path
// — seeded arrival schedules from internal/workload, the saturation sweeps
// S5/L4 in internal/experiments — that the figure replays play for the
// recovery protocol.
package scenario

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/proto"
	"repro/internal/recovery"
	"repro/internal/stamp"
	"repro/internal/topology"
	"repro/internal/trace"
)

// chain builds a right-nested addition chain that costs ~2n+1 reduction
// steps and evaluates to 1 — deterministic "compute time" with no spawns.
func chain(n int) expr.Expr {
	e := expr.Int(1)
	for i := 0; i < n; i++ {
		e = expr.Op("+", expr.Int(0), e)
	}
	return e
}

// TreeNode is one task of a figure call tree.
type TreeNode struct {
	Name     string
	Parent   string // "" for the root
	Proc     proto.ProcID
	Children []string // in demand order (assigned during build)
}

// Tree is a named call tree with pinned placement.
type Tree struct {
	Nodes map[string]*TreeNode
	Order []string // insertion order; the first entry is the root
	Root  string
}

// NewTree builds a tree from (name, parent, proc) triples. Children keep
// the order in which they are declared, which fixes their demand IDs and
// therefore their level stamps.
func NewTree(rows [][3]string, procs map[string]proto.ProcID) (*Tree, error) {
	t := &Tree{Nodes: map[string]*TreeNode{}}
	for _, r := range rows {
		name, parent := r[0], r[1]
		if _, dup := t.Nodes[name]; dup {
			return nil, fmt.Errorf("scenario: duplicate node %q", name)
		}
		n := &TreeNode{Name: name, Parent: parent, Proc: procs[name]}
		t.Nodes[name] = n
		t.Order = append(t.Order, name)
		if parent == "" {
			if t.Root != "" {
				return nil, fmt.Errorf("scenario: two roots (%q, %q)", t.Root, name)
			}
			t.Root = name
		} else {
			p, ok := t.Nodes[parent]
			if !ok {
				return nil, fmt.Errorf("scenario: node %q declared before parent %q", name, parent)
			}
			p.Children = append(p.Children, name)
		}
	}
	if t.Root == "" {
		return nil, fmt.Errorf("scenario: no root")
	}
	return t, nil
}

// Program compiles the tree into a lang program: each internal node sums
// its children's values; each leaf demands a dedicated "spin" child that
// performs a chain of leafCost additions. Delegating the compute keeps every
// figure task simultaneously resident (waiting) while the spin tasks burn
// processor time — the machine serializes tasks per processor, so a leaf
// computing inline would block later placements on the same processor.
// Function names are "t"+node name; spin functions are "s"+leaf name.
func (t *Tree) Program(leafCost int) (*lang.Program, error) {
	var defs []lang.FuncDef
	for _, name := range t.Order {
		n := t.Nodes[name]
		var body expr.Expr
		if len(n.Children) == 0 {
			body = expr.Op("+", expr.Int(0), expr.Call("s"+name))
			defs = append(defs, lang.FuncDef{Name: "s" + name, Body: chain(leafCost)})
		} else {
			args := make([]expr.Expr, len(n.Children))
			for i, c := range n.Children {
				args[i] = expr.Call("t" + c)
			}
			if len(args) == 1 {
				body = expr.Op("+", expr.Int(0), args[0])
			} else {
				body = expr.Op("+", args...)
			}
		}
		defs = append(defs, lang.FuncDef{Name: "t" + name, Body: body})
	}
	return lang.NewProgram(defs...)
}

// Stamps derives the level stamp of every node: the root task is the host's
// first demand (stamp "0"); each child appends its demand index.
func (t *Tree) Stamps() map[string]stamp.Stamp {
	out := map[string]stamp.Stamp{t.Root: stamp.FromPath(0)}
	var walk func(name string)
	walk = func(name string) {
		n := t.Nodes[name]
		for i, c := range n.Children {
			out[c] = out[name].Child(uint32(i))
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// PinMap returns the stamp-keyed placement map for balance.NewPinned.
// Spin children (demand 0 of each leaf) are pinned to dedicated processors
// starting at spinBase, one per leaf in declaration order: the machine runs
// one task at a time per processor, so spins sharing a figure processor
// would starve the figure tasks' short reduction passes.
func (t *Tree) PinMap(spinBase proto.ProcID) map[string]proto.ProcID {
	stamps := t.Stamps()
	out := make(map[string]proto.ProcID, 2*len(stamps))
	next := spinBase
	for _, name := range t.Order {
		s := stamps[name]
		out[s.Key()] = t.Nodes[name].Proc
		if len(t.Nodes[name].Children) == 0 {
			out[s.Child(0).Key()] = next
			next++
		}
	}
	return out
}

// LeafCount returns the number of leaves (each needs a spin processor).
func (t *Tree) LeafCount() int {
	n := 0
	for _, node := range t.Nodes {
		if len(node.Children) == 0 {
			n++
		}
	}
	return n
}

// NameOf inverts Stamps for trace inspection.
func (t *Tree) NameOf() map[stamp.Stamp]string {
	stamps := t.Stamps()
	out := make(map[stamp.Stamp]string, len(stamps))
	for name, s := range stamps {
		out[s] = name
	}
	return out
}

// Fragments computes the connected components of the tree after removing
// every node pinned to the failed processor — the paper's broken pieces
// ("the call tree is thus fragmented into three pieces").
func (t *Tree) Fragments(failed proto.ProcID) [][]string {
	var frags [][]string
	var collect func(name string, frag *[]string)
	collect = func(name string, frag *[]string) {
		n := t.Nodes[name]
		if n.Proc == failed {
			// Severed here; each surviving child subtree starts a new
			// fragment.
			for _, c := range n.Children {
				if t.Nodes[c].Proc == failed {
					collect(c, nil)
					continue
				}
				nf := []string{}
				collect(c, &nf)
				if len(nf) > 0 {
					frags = append(frags, nf)
				}
			}
			return
		}
		if frag != nil {
			*frag = append(*frag, name)
			for _, c := range n.Children {
				if t.Nodes[c].Proc == failed {
					collect(c, nil)
				} else {
					collect(c, frag)
				}
			}
		}
	}
	rootFrag := []string{}
	if t.Nodes[t.Root].Proc == failed {
		collect(t.Root, nil)
	} else {
		collect(t.Root, &rootFrag)
		frags = append([][]string{rootFrag}, frags...)
	}
	return frags
}

// eventTime returns the time of the first event of the given kind for the
// given stamp, or -1.
func eventTime(log *trace.Log, kind trace.Kind, s stamp.Stamp) int64 {
	label := s.String()
	for _, e := range log.Events {
		if e.Kind == kind && e.Task == label {
			return e.Time
		}
	}
	return -1
}

// countEvents counts events of a kind for a stamp.
func countEvents(log *trace.Log, kind trace.Kind, s stamp.Stamp) int {
	label := s.String()
	n := 0
	for _, e := range log.Events {
		if e.Kind == kind && e.Task == label {
			n++
		}
	}
	return n
}

// completeTopo builds a fully connected topology of n processors; figure
// scenarios use it so every link is one hop and timing is uniform.
func completeTopo(n int) topology.Topology {
	topo, err := topology.Complete(n)
	if err != nil {
		panic(err)
	}
	return topo
}

// run executes one scenario configuration and returns the report.
func run(cfg machine.Config, prog *lang.Program, entry string, plan *faults.Plan) (*machine.Report, error) {
	m, err := machine.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	rep, err := m.Run(entry, nil, plan)
	if err != nil {
		return nil, err
	}
	if rep.Err != nil {
		return nil, rep.Err
	}
	return rep, nil
}

// baseConfig is the shared scenario configuration: pinned placement over a
// complete topology (figure processors first, then one spin processor per
// leaf), tracing on.
func baseConfig(t *Tree, figureProcs int, scheme string) (machine.Config, error) {
	sch, err := recovery.ByName(scheme)
	if err != nil {
		return machine.Config{}, err
	}
	return machine.Config{
		Topo:      completeTopo(figureProcs + t.LeafCount()),
		Placement: balance.NewPinned(t.PinMap(proto.ProcID(figureProcs)), balance.NewRandom()),
		Scheme:    sch,
		Seed:      1,
		Trace:     trace.NewLog(0),
	}, nil
}
