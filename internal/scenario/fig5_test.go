package scenario

import "testing"

// TestFig5AllCasesRecover asserts the universal invariant of §4.1: whatever
// the ordering of C's completion relative to the failure and the twin, the
// program finishes with the correct answer and no duplicate value is ever
// consumed twice.
func TestFig5AllCasesRecover(t *testing.T) {
	for c := 1; c <= 8; c++ {
		res, err := RunFig5Case(c)
		if err != nil {
			t.Fatalf("case %d: %v", c, err)
		}
		if !res.Completed {
			t.Errorf("case %d (%s): did not complete correctly; answer=%q\n%s",
				c, res.Desc, res.Answer, res.Metrics.String())
		}
	}
}

func TestFig5Case1NeverInvoked(t *testing.T) {
	res, err := RunFig5Case(1)
	if err != nil {
		t.Fatal(err)
	}
	// "Task C is practically nonexistent ... Only C' may produce an answer."
	if res.PlacesC != 1 {
		t.Errorf("C placed %d times, want 1 (only the twin's C')", res.PlacesC)
	}
	if res.Twins != 1 {
		t.Errorf("twins = %d, want 1", res.Twins)
	}
	if res.Prefills != 0 || res.Orphans != 0 {
		t.Errorf("case 1 should see no inheritance: prefills=%d orphans=%d", res.Prefills, res.Orphans)
	}
}

func TestFig5Case2NeverCompletes(t *testing.T) {
	res, err := RunFig5Case(2)
	if err != nil {
		t.Fatal(err)
	}
	// Original C dies with P; the twin respawns it.
	if res.PlacesC != 2 {
		t.Errorf("C placed %d times, want 2 (original + twin's)", res.PlacesC)
	}
	if res.CompletesC != 1 {
		t.Errorf("C completed %d times, want 1 (only the new one)", res.CompletesC)
	}
	if res.Metrics.TasksLost != 2 {
		t.Errorf("lost = %d, want 2 (P and C)", res.Metrics.TasksLost)
	}
}

func TestFig5Case3CompletedBeforeDeath(t *testing.T) {
	res, err := RunFig5Case(3)
	if err != nil {
		t.Fatal(err)
	}
	// "The recovery task P' must recalculate C by activating task C'."
	if res.PlacesC != 2 {
		t.Errorf("C placed %d times, want 2 (the result died inside P)", res.PlacesC)
	}
	if res.CompletesC != 2 {
		t.Errorf("C completed %d times, want 2", res.CompletesC)
	}
	if res.Prefills != 0 {
		t.Errorf("case 3 cannot inherit (result was lost): prefills=%d", res.Prefills)
	}
}

func TestFig5Case4LazyTwinInheritance(t *testing.T) {
	res, err := RunFig5Case(4)
	if err != nil {
		t.Fatal(err)
	}
	// The orphan result triggers the twin and pre-fills its demand:
	// "When child task C' is executed by task P', P' will not spawn C'
	// because the answer is already there."
	if res.PlacesC != 1 {
		t.Errorf("C placed %d times, want 1 (C' never spawned)", res.PlacesC)
	}
	if res.Prefills != 1 {
		t.Errorf("prefills = %d, want 1", res.Prefills)
	}
	if res.Orphans != 1 {
		t.Errorf("orphan results = %d, want 1", res.Orphans)
	}
	if res.Twins != 1 {
		t.Errorf("twins = %d, want 1", res.Twins)
	}
}

func TestFig5Case5EagerTwinInheritance(t *testing.T) {
	res, err := RunFig5Case(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlacesC != 1 {
		t.Errorf("C placed %d times, want 1", res.PlacesC)
	}
	if res.Prefills != 1 {
		t.Errorf("prefills = %d, want 1", res.Prefills)
	}
	if res.Twins != 1 {
		t.Errorf("twins = %d, want 1", res.Twins)
	}
}

func TestFig5Case6DuplicateIgnored(t *testing.T) {
	res, err := RunFig5Case(6)
	if err != nil {
		t.Fatal(err)
	}
	// C' was spawned; the original's result arrived first; the duplicate is
	// ignored: "Since they are identical, the second copy is simply ignored."
	if res.PlacesC != 2 {
		t.Errorf("C placed %d times, want 2", res.PlacesC)
	}
	if res.Dups == 0 {
		t.Error("no duplicate result was ignored")
	}
	if res.Prefills != 0 {
		t.Errorf("prefills = %d, want 0 (C' was spawned)", res.Prefills)
	}
}

func TestFig5Case7LateInvocationWinsRace(t *testing.T) {
	res, err := RunFig5Case(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlacesC != 2 {
		t.Errorf("C placed %d times, want 2", res.PlacesC)
	}
	if res.CompletesC != 2 {
		t.Errorf("C completed %d times, want 2", res.CompletesC)
	}
	// The twin's C' (on the spare processor) finishes before the original
	// (stuck behind the filler): late invocation yields a result faster,
	// and the original's later duplicate is ignored.
	if res.Dups == 0 {
		t.Error("the original's late result was not duplicate-ignored")
	}
}

func TestFig5Case8LateResultDiscarded(t *testing.T) {
	res, err := RunFig5Case(8)
	if err != nil {
		t.Fatal(err)
	}
	// "The processor which contained P' may no longer recognize the arrived
	// answer. The result is discarded."
	if res.Lates == 0 {
		t.Error("no late result was discarded")
	}
	if res.PlacesC != 2 {
		t.Errorf("C placed %d times, want 2", res.PlacesC)
	}
}
