package scenario

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/proto"
)

func TestFig1TreeMatchesPaperStructure(t *testing.T) {
	tree, err := Fig1Tree()
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Nodes) != 17 {
		t.Fatalf("tree has %d nodes, want 17", len(tree.Nodes))
	}
	// Checkpoint distribution of §3: A holds B1; C holds B2, B3, B5;
	// D holds B7.
	wantHolders := map[string]proto.ProcID{
		"B1": ProcA, "B2": ProcC, "B3": ProcC, "B5": ProcC, "B7": ProcD,
	}
	for task, wantProc := range wantHolders {
		parent := tree.Nodes[task].Parent
		if got := tree.Nodes[parent].Proc; got != wantProc {
			t.Errorf("checkpoint holder of %s = proc %d, want %d", task, got, wantProc)
		}
	}
	// Grandparent pointers of Figure 2: B3 → A1, D4 → C1.
	gp := func(task string) string {
		return tree.Nodes[tree.Nodes[task].Parent].Parent
	}
	if gp("B3") != "A1" {
		t.Errorf("grandparent of B3 = %s, want A1", gp("B3"))
	}
	if gp("D4") != "C1" {
		t.Errorf("grandparent of D4 = %s, want C1", gp("D4"))
	}
	// B5 is a genealogical dependent of B2 through A2 (§3).
	stamps := tree.Stamps()
	if !stamps["B2"].IsAncestorOf(stamps["B5"]) {
		t.Error("B5 is not a descendant of B2")
	}
	if !stamps["A2"].IsAncestorOf(stamps["B5"]) {
		t.Error("B5 is not a descendant of A2")
	}
}

func TestFig1FragmentsMatchPaper(t *testing.T) {
	tree, err := Fig1Tree()
	if err != nil {
		t.Fatal(err)
	}
	frags := tree.Fragments(ProcB)
	want := [][]string{
		{"A1", "C1", "C2", "C3", "D3"},
		{"A2", "D1", "D2", "C4"},
		{"D4", "D5", "A5"},
	}
	norm := func(fs [][]string) []string {
		var out []string
		for _, f := range fs {
			g := append([]string(nil), f...)
			sort.Strings(g)
			out = append(out, joinNames(g))
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(norm(frags), norm(want)) {
		t.Fatalf("fragments = %v, want %v", norm(frags), norm(want))
	}
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

func TestRunFig1Rollback(t *testing.T) {
	res, err := RunFig1Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("Figure 1 run did not complete correctly; metrics:\n%s", res.Metrics.String())
	}
	// §3.2: "command processor A to respawn B1, and command processor C to
	// regenerate B2 and B3" — and completeness also requires D to reissue
	// B7, which the paper's narration omits.
	wantReissue := map[string]proto.ProcID{
		"B1": ProcA, "B2": ProcC, "B3": ProcC, "B7": ProcD,
	}
	if !reflect.DeepEqual(res.Reissued, wantReissue) {
		t.Errorf("reissued = %v, want %v", res.Reissued, wantReissue)
	}
	// §3: "Reactivation of B5 only increases the system overhead" — the
	// topmost rule suppresses it.
	if len(res.Suppressed) != 1 || res.Suppressed[0] != "B5" {
		t.Errorf("suppressed = %v, want [B5]", res.Suppressed)
	}
	if res.Metrics.Reissues != 4 {
		t.Errorf("reissues = %d, want 4", res.Metrics.Reissues)
	}
	if res.Metrics.Suppressed != 1 {
		t.Errorf("suppressed counter = %d, want 1", res.Metrics.Suppressed)
	}
	// Rollback abandons the A2 fragment: at least some of {A2,D1,D2,C4}
	// must be aborted (eager scoped garbage collection).
	if res.Metrics.TasksAborted == 0 {
		t.Error("no tasks aborted; the doomed fragment was not collected")
	}
	// Exactly B1, B2, B3, B5, B7 are lost with processor B; spins live on
	// dedicated processors.
	if res.Metrics.TasksLost != 5 {
		t.Errorf("tasks lost = %d, want 5", res.Metrics.TasksLost)
	}
}

func TestRunFig23Splice(t *testing.T) {
	res, err := RunFig23Splice()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("Figures 2-3 run did not complete correctly; metrics:\n%s", res.Metrics.String())
	}
	// Every parent of a task lost on B twins it: A1→B1′, C1→B2′, C2→B3′,
	// C4→B5′, D3→B7′.
	wantTwins := map[string]proto.ProcID{
		"B1": ProcA, "B2": ProcC, "B3": ProcC, "B5": ProcC, "B7": ProcD,
	}
	if !reflect.DeepEqual(res.Twinned, wantTwins) {
		t.Errorf("twinned = %v, want %v", res.Twinned, wantTwins)
	}
	// Orphan results (D4's and A2's, at least) must flow through the
	// grandparent relay into the twins.
	if res.OrphanResults == 0 {
		t.Error("no orphan results escalated")
	}
	if res.Relayed == 0 {
		t.Error("no orphan results relayed to twins")
	}
	// Splice must not perform rollback reissues or abort survivors.
	if res.Metrics.Reissues != 0 {
		t.Errorf("splice performed %d reissues", res.Metrics.Reissues)
	}
	if res.Metrics.TasksAborted != 0 {
		t.Errorf("splice aborted %d tasks", res.Metrics.TasksAborted)
	}
}
