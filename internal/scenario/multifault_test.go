package scenario

import "testing"

// TestMultiFaultBranchAncestorDepth verifies §5.2's stranding analysis: with
// the base design (K=2, parent + grandparent pointers) a simultaneous
// failure of both ancestors strands the orphan's result, forcing the twins
// to recompute the subtree; extending the chain to great-grandparents (K=3)
// salvages it. Completion with the correct answer is required either way.
func TestMultiFaultBranchAncestorDepth(t *testing.T) {
	k2, err := RunMultiFaultBranch(2)
	if err != nil {
		t.Fatal(err)
	}
	if !k2.Completed {
		t.Fatalf("K=2 did not complete:\n%s", k2.Metrics.String())
	}
	if k2.Stranded == 0 {
		t.Error("K=2: orphan result was not stranded despite both ancestors dying")
	}
	k3, err := RunMultiFaultBranch(3)
	if err != nil {
		t.Fatal(err)
	}
	if !k3.Completed {
		t.Fatalf("K=3 did not complete:\n%s", k3.Metrics.String())
	}
	if k3.Stranded != 0 {
		t.Errorf("K=3 stranded %d results; the great-grandparent pointer should salvage them", k3.Stranded)
	}
	if k3.Relayed == 0 {
		t.Error("K=3: no orphan result was relayed through the surviving ancestor")
	}
}
