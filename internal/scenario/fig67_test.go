package scenario

import "testing"

// TestFig67ResidueFreedom sweeps all seven states of Figure 6 under both
// recovery schemes: §4.3.2 demands that G and C are unaffected by the
// failure of P at any state, i.e. the answer is always correct.
func TestFig67ResidueFreedom(t *testing.T) {
	for _, scheme := range []string{"rollback", "splice"} {
		for state := byte('a'); state <= 'g'; state++ {
			t.Run(scheme+"/"+string(state), func(t *testing.T) {
				res, err := RunFig67State(state, scheme)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Completed {
					t.Fatalf("state %c (%s) under %s did not complete correctly; answer=%q\n%s",
						state, res.Desc, scheme, res.Answer, res.Metrics.String())
				}
			})
		}
	}
}

func TestFig67StateA(t *testing.T) {
	// "The failure of P obviously has no effect in state a" — P is simply
	// placed elsewhere; no recovery machinery fires.
	for _, scheme := range []string{"rollback", "splice"} {
		res, err := RunFig67State('a', scheme)
		if err != nil {
			t.Fatal(err)
		}
		if res.Recovered != 0 {
			t.Errorf("%s state a: %d recoveries, want 0", scheme, res.Recovered)
		}
		if res.PlacesP != 1 {
			t.Errorf("%s state a: P placed %d times, want 1", scheme, res.PlacesP)
		}
	}
}

func TestFig67StateB(t *testing.T) {
	// "processor G times out and reissues a new task P. The system acts as
	// if the first invocation of P did not take place." The in-flight packet
	// is lost; the retry is a placement-level reissue, not a checkpoint
	// recovery.
	for _, scheme := range []string{"rollback", "splice"} {
		res, err := RunFig67State('b', scheme)
		if err != nil {
			t.Fatal(err)
		}
		if res.PlacesP != 1 {
			t.Errorf("%s state b: P placed %d times, want 1 (first packet died in flight)", scheme, res.PlacesP)
		}
		if res.Recovered != 0 {
			t.Errorf("%s state b: %d checkpoint recoveries, want 0 (timeout reissue suffices)", scheme, res.Recovered)
		}
	}
}

func TestFig67StateC(t *testing.T) {
	// P settled and acknowledged: G holds the pointer and the checkpoint;
	// recovery reissues (or twins) it.
	for _, scheme := range []string{"rollback", "splice"} {
		res, err := RunFig67State('c', scheme)
		if err != nil {
			t.Fatal(err)
		}
		if res.Recovered == 0 {
			t.Errorf("%s state c: no recovery fired", scheme)
		}
		if res.PlacesC != 1 {
			t.Errorf("%s state c: C placed %d times, want 1 (P never ran before the fault)", scheme, res.PlacesC)
		}
	}
}

func TestFig67StateDandE(t *testing.T) {
	// "there is a child task C lingering around the system. ... C sends the
	// result to G after failing to communicate with parent P" (splice), or
	// commits suicide (rollback).
	for _, state := range []byte{'d', 'e'} {
		rb, err := RunFig67State(state, "rollback")
		if err != nil {
			t.Fatal(err)
		}
		if rb.PlacesC != 2 {
			t.Errorf("rollback state %c: C placed %d times, want 2 (orphan + recomputed)", state, rb.PlacesC)
		}
		if rb.Aborted == 0 {
			t.Errorf("rollback state %c: orphan C did not commit suicide", state)
		}
		sp, err := RunFig67State(state, "splice")
		if err != nil {
			t.Fatal(err)
		}
		if sp.Metrics.OrphanResults == 0 {
			t.Errorf("splice state %c: orphan result was not escalated", state)
		}
		if sp.Aborted != 0 {
			t.Errorf("splice state %c: %d tasks aborted, want 0 (salvage, not discard)", state, sp.Aborted)
		}
	}
}

func TestFig67StateF(t *testing.T) {
	// C's result died inside P: recovery must recompute C (case 3 of the
	// Figure 5 analysis).
	for _, scheme := range []string{"rollback", "splice"} {
		res, err := RunFig67State('f', scheme)
		if err != nil {
			t.Fatal(err)
		}
		if res.PlacesC != 2 {
			t.Errorf("%s state f: C placed %d times, want 2", scheme, res.PlacesC)
		}
		if res.Recovered == 0 {
			t.Errorf("%s state f: no recovery fired", scheme)
		}
	}
}

func TestFig67StateG(t *testing.T) {
	// P's result already reached G: its checkpoint was released; the
	// failure is invisible.
	for _, scheme := range []string{"rollback", "splice"} {
		res, err := RunFig67State('g', scheme)
		if err != nil {
			t.Fatal(err)
		}
		if res.Recovered != 0 {
			t.Errorf("%s state g: %d recoveries, want 0", scheme, res.Recovered)
		}
		if res.PlacesC != 1 || res.PlacesP != 1 {
			t.Errorf("%s state g: placements P=%d C=%d, want 1/1", scheme, res.PlacesP, res.PlacesC)
		}
	}
}
