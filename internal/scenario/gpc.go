package scenario

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/proto"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/trace"
)

// The G→P→C micro-tree of §4.1 and §4.3.2: grandparent task G spawns parent
// task P, which spawns child task C (Figure 4). Knobs control how long each
// phase computes, which realizes every ordering of Figure 5 and every state
// of Figure 6.
//
// Processor layout (complete topology):
//
//	0: G      1: P      2: C      3: filler      4,5: spares
const (
	gpcProcG      proto.ProcID = 0
	gpcProcP      proto.ProcID = 1
	gpcProcC      proto.ProcID = 2
	gpcProcFiller proto.ProcID = 3
	gpcSpare1     proto.ProcID = 4
	gpcSpare2     proto.ProcID = 5
	gpcProcs                   = 6
)

// gpcSpec parameterizes the micro-tree.
type gpcSpec struct {
	gPre        int  // G's pre-chain before demanding P
	gPost       int  // G's final pass after all holes fill
	pPre        int  // P's first pass (before demanding C)
	pPost       int  // P's second pass (after C's result arrives)
	cCost       int  // C's computation
	filler      int  // extra G child pinned to gpcProcFiller (0 = none)
	fillerFirst bool // filler demanded before P (so it queues ahead of C
	// when both are pinned to the same processor)
	fillerOnC bool // pin the filler onto C's processor (delays C's start)
	fillerOnP bool // pin the filler onto P's processor (delays P's start)
	cOnP      bool // pin C onto P's processor (case 2: C dies with P)
	// cSeq overrides C's placement sequence (scripted placement, case 7).
	cSeq []proto.ProcID
	// pSeq overrides P's placement sequence.
	pSeq []proto.ProcID
}

// gpcStamps returns the stamps of G, P, C and the filler under the spec.
func (sp gpcSpec) gpcStamps() (g, p, c, filler stamp.Stamp) {
	g = stamp.FromPath(0)
	pIdx, fIdx := uint32(0), uint32(1)
	if sp.filler > 0 && sp.fillerFirst {
		pIdx, fIdx = 1, 0
	}
	p = g.Child(pIdx)
	c = p.Child(0)
	filler = g.Child(fIdx)
	return
}

// program builds the G/P/C lang program for the spec.
func (sp gpcSpec) program() (*lang.Program, error) {
	pCall := expr.Call("p")
	var gBody expr.Expr
	switch {
	case sp.filler > 0 && sp.fillerFirst:
		gBody = expr.Op("+", expr.Call("fil"), pCall)
	case sp.filler > 0:
		gBody = expr.Op("+", pCall, expr.Call("fil"))
	default:
		gBody = expr.Op("+", expr.Int(0), pCall)
	}
	if sp.gPost > 0 {
		// Post-work: a Let keeps the tail chain unreduced until the demands
		// of the bind fill, giving G a second compute pass.
		gBody = expr.LetIn("s", gBody, expr.Op("+", chain(sp.gPost), expr.V("s")))
	}
	if sp.gPre > 0 {
		gBody = expr.LetIn("gpre", chain(sp.gPre), expr.Op("+", gBody, expr.Op("*", expr.Int(0), expr.V("gpre"))))
	}
	pBody := expr.LetIn("pre", chain(sp.pPre),
		expr.LetIn("x", expr.Call("c"),
			expr.Op("+", chain(sp.pPost), expr.Op("+", expr.V("x"), expr.V("pre")))))
	defs := []lang.FuncDef{
		{Name: "g", Body: gBody},
		{Name: "p", Body: pBody},
		{Name: "c", Body: chain(sp.cCost)},
	}
	if sp.filler > 0 {
		defs = append(defs, lang.FuncDef{Name: "fil", Body: chain(sp.filler)})
	}
	return lang.NewProgram(defs...)
}

// placement builds the placement policy for the spec.
func (sp gpcSpec) placement() balance.Policy {
	gS, pS, cS, fS := sp.gpcStamps()
	if sp.cSeq != nil || sp.pSeq != nil {
		seq := map[string][]proto.ProcID{
			gS.Key(): {gpcProcG},
			pS.Key(): {gpcProcP},
			cS.Key(): {gpcProcC},
			fS.Key(): {gpcProcFiller},
		}
		if sp.cOnP {
			seq[cS.Key()] = []proto.ProcID{gpcProcP}
		}
		if sp.fillerOnC {
			seq[fS.Key()] = []proto.ProcID{gpcProcC}
		}
		if sp.fillerOnP {
			seq[fS.Key()] = []proto.ProcID{gpcProcP}
		}
		if sp.pSeq != nil {
			seq[pS.Key()] = sp.pSeq
		}
		if sp.cSeq != nil {
			seq[cS.Key()] = sp.cSeq
		}
		return newScripted(seq, balance.NewRandom())
	}
	pin := map[string]proto.ProcID{
		gS.Key(): gpcProcG,
		pS.Key(): gpcProcP,
		cS.Key(): gpcProcC,
		fS.Key(): gpcProcFiller,
	}
	if sp.cOnP {
		pin[cS.Key()] = gpcProcP
	}
	if sp.fillerOnC {
		pin[fS.Key()] = gpcProcC
	}
	if sp.fillerOnP {
		pin[fS.Key()] = gpcProcP
	}
	return balance.NewPinned(pin, balance.NewRandom())
}

// scripted is a placement policy that consumes a per-stamp sequence of
// destinations: the n-th placement request for a stamp goes to the n-th
// processor of its sequence (the last entry repeats). It lets a scenario
// place a task's re-incarnation somewhere other than the original — e.g.
// Figure 5 case 7, where the twin's child must run on an idle processor
// while the original crawls behind a filler.
type scripted struct {
	seq      map[string][]proto.ProcID
	used     map[string]int
	fallback balance.Policy
}

func newScripted(seq map[string][]proto.ProcID, fallback balance.Policy) *scripted {
	return &scripted{seq: seq, used: map[string]int{}, fallback: fallback}
}

func (s *scripted) Name() string       { return "scripted" }
func (s *scripted) Mode() balance.Mode { return balance.Direct }

func (s *scripted) PickDest(v balance.View, key proto.TaskKey) proto.ProcID {
	if list, ok := s.seq[key.Stamp.Key()]; ok && len(list) > 0 {
		i := s.used[key.Stamp.Key()]
		s.used[key.Stamp.Key()]++
		if i >= len(list) {
			i = len(list) - 1
		}
		if d := list[i]; !v.IsFaulty(d) {
			return d
		}
	}
	return s.fallback.PickDest(v, key)
}

func (s *scripted) Step(v balance.View, hops int) proto.ProcID {
	return s.fallback.Step(v, hops)
}

// gpcConfig assembles a machine config for the spec.
func (sp gpcSpec) config(scheme string, heartbeats bool, resultRetries int) (machine.Config, error) {
	sch, err := recovery.ByName(scheme)
	if err != nil {
		return machine.Config{}, err
	}
	cfg := machine.Config{
		Topo:      completeTopo(gpcProcs),
		Placement: sp.placement(),
		Scheme:    sch,
		Seed:      1,
		Trace:     trace.NewLog(0),
	}
	if !heartbeats {
		cfg.HeartbeatEvery = -1
	}
	if resultRetries > 0 {
		cfg.ResultRetryLimit = resultRetries
	}
	return cfg, nil
}

// gpcTimes extracts the reference timeline from a dry (fault-free) run.
type gpcTimes struct {
	spawnP, placeP, startP    int64
	spawnC, placeC, startC    int64
	completeC, startP2        int64
	completeP, fillG, doneAll int64
}

func (sp gpcSpec) dryTimes(scheme string) (*gpcTimes, error) {
	cfg, err := sp.config(scheme, true, 0)
	if err != nil {
		return nil, err
	}
	prog, err := sp.program()
	if err != nil {
		return nil, err
	}
	rep, err := run(cfg, prog, "g", nil)
	if err != nil {
		return nil, err
	}
	if !rep.Completed {
		return nil, fmt.Errorf("scenario: dry run did not complete")
	}
	_, pS, cS, _ := sp.gpcStamps()
	gS := stamp.FromPath(0)
	t := &gpcTimes{
		spawnP:    eventTime(rep.Log, trace.KSpawn, pS),
		placeP:    eventTime(rep.Log, trace.KPlace, pS),
		startP:    nthEventTime(rep.Log, trace.KStart, pS, 1),
		spawnC:    eventTime(rep.Log, trace.KSpawn, cS),
		placeC:    eventTime(rep.Log, trace.KPlace, cS),
		startC:    nthEventTime(rep.Log, trace.KStart, cS, 1),
		completeC: eventTime(rep.Log, trace.KComplete, cS),
		startP2:   nthEventTime(rep.Log, trace.KStart, pS, 2),
		completeP: eventTime(rep.Log, trace.KComplete, pS),
		fillG:     eventTime(rep.Log, trace.KResult, gS),
		doneAll:   int64(rep.Makespan),
	}
	return t, nil
}

// nthEventTime returns the time of the n-th (1-based) event of the given
// kind for the stamp, or -1.
func nthEventTime(log *trace.Log, kind trace.Kind, s stamp.Stamp, n int) int64 {
	label := s.String()
	seen := 0
	for _, e := range log.Events {
		if e.Kind == kind && e.Task == label {
			seen++
			if seen == n {
				return e.Time
			}
		}
	}
	return -1
}

// gpcExpect computes the correct final answer for the spec.
func (sp gpcSpec) expect() (expr.Value, error) {
	prog, err := sp.program()
	if err != nil {
		return nil, err
	}
	return lang.RefEval(prog, "g", nil)
}

// runWithFault executes the spec with a crash of proc at time at.
func (sp gpcSpec) runWithFault(scheme string, heartbeats bool, resultRetries int,
	proc proto.ProcID, at int64, announced bool) (*machine.Report, error) {
	cfg, err := sp.config(scheme, heartbeats, resultRetries)
	if err != nil {
		return nil, err
	}
	prog, err := sp.program()
	if err != nil {
		return nil, err
	}
	cfg.Deadline = sim.Time(4_000_000)
	return run(cfg, prog, "g", faults.Crash(proc, at, announced))
}
