package scenario

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/proto"
	"repro/internal/trace"
)

// Fig5Result is the outcome of one of the eight orderings of Figure 5.
type Fig5Result struct {
	Case      int
	Desc      string
	Completed bool   // run finished with the correct answer
	Answer    string // observed answer
	// PlacesC / CompletesC count placements / completions of C's stamp
	// (originals plus re-incarnations).
	PlacesC, CompletesC int
	// Counters relevant to the case analysis.
	Twins, Prefills, Dups, Orphans, Relays, Lates int64
	FaultAt                                       int64
	Metrics                                       trace.Metrics
}

// fig5Descs quotes the paper's enumeration (§4.1).
var fig5Descs = map[int]string{
	1: "C has never been invoked",
	2: "C will never complete",
	3: "C completes before P dies",
	4: "C completes after P dies, but before P' is invoked",
	5: "C completes after P' is invoked, but before C' is invoked",
	6: "C completes after C' is invoked",
	7: "C completes after C' has completed",
	8: "C completes after P' has completed",
}

// RunFig5Case realizes ordering c (1..8) of Figure 5 under splice recovery
// and reports what happened. Every case must end with the correct answer;
// the per-case assertions live in the tests.
func RunFig5Case(c int) (*Fig5Result, error) {
	switch c {
	case 1:
		return fig5Case1()
	case 2:
		return fig5Case2()
	case 3:
		return fig5Case3()
	case 4:
		return fig5Case4()
	case 5:
		return fig5Case5()
	case 6:
		return fig5Case6()
	case 7:
		return fig5Case7()
	case 8:
		return fig5Case8()
	default:
		return nil, fmt.Errorf("scenario: Figure 5 has cases 1..8, not %d", c)
	}
}

// finish assembles the result record.
func (sp gpcSpec) finish(c int, rep *machine.Report, faultAt int64) (*Fig5Result, error) {
	want, err := sp.expect()
	if err != nil {
		return nil, err
	}
	_, _, cS, _ := sp.gpcStamps()
	res := &Fig5Result{
		Case:       c,
		Desc:       fig5Descs[c],
		Completed:  rep.Completed && rep.Answer != nil && rep.Answer.Equal(want),
		PlacesC:    countEvents(rep.Log, trace.KPlace, cS),
		CompletesC: countEvents(rep.Log, trace.KComplete, cS),
		Twins:      rep.Metrics.Twins,
		Prefills:   rep.Metrics.Prefills,
		Dups:       rep.Metrics.DupResults,
		Orphans:    rep.Metrics.OrphanResults,
		Relays:     rep.Metrics.Relayed,
		Lates:      rep.Metrics.LateResults,
		FaultAt:    faultAt,
		Metrics:    rep.Metrics,
	}
	if rep.Answer != nil {
		res.Answer = rep.Answer.String()
	}
	return res, nil
}

// Case 1: P dies during its first pass, before C was ever demanded. The
// twin P′ is the only task that ever spawns C.
func fig5Case1() (*Fig5Result, error) {
	sp := gpcSpec{pPre: 2000, pPost: 100, cCost: 300}
	t, err := sp.dryTimes("splice")
	if err != nil {
		return nil, err
	}
	faultAt := (t.startP + t.spawnC) / 2
	rep, err := sp.runWithFault("splice", true, 0, gpcProcP, faultAt, true)
	if err != nil {
		return nil, err
	}
	return sp.finish(1, rep, faultAt)
}

// Case 2: C is lost together with P (pinned to the same processor) while
// running; neither the original P nor the original C ever completes.
func fig5Case2() (*Fig5Result, error) {
	sp := gpcSpec{pPre: 200, pPost: 100, cCost: 2000, cOnP: true}
	t, err := sp.dryTimes("splice")
	if err != nil {
		return nil, err
	}
	faultAt := (t.startC + t.completeC) / 2
	rep, err := sp.runWithFault("splice", true, 0, gpcProcP, faultAt, true)
	if err != nil {
		return nil, err
	}
	return sp.finish(2, rep, faultAt)
}

// Case 3: C completes and returns to P; P dies afterwards, during its
// second pass. The result of C was stored inside P and is lost with it:
// "The recovery task P' must recalculate C by activating task C'."
func fig5Case3() (*Fig5Result, error) {
	sp := gpcSpec{pPre: 200, pPost: 4000, cCost: 300}
	t, err := sp.dryTimes("splice")
	if err != nil {
		return nil, err
	}
	faultAt := (t.startP2 + t.completeP) / 2
	rep, err := sp.runWithFault("splice", true, 0, gpcProcP, faultAt, true)
	if err != nil {
		return nil, err
	}
	return sp.finish(3, rep, faultAt)
}

// Case 4: P dies silently while C runs; C's undeliverable result reaches
// grandparent G before any failure announcement, so G creates the
// step-parent in response to the grandchild result ("the grandparent has to
// reproduce P' first") and the inherited answer pre-fills P′'s demand —
// C′ is never spawned.
func fig5Case4() (*Fig5Result, error) {
	sp := gpcSpec{pPre: 12000, pPost: 100, cCost: 2000}
	t, err := sp.dryTimes("splice")
	if err != nil {
		return nil, err
	}
	faultAt := (t.startC + t.completeC) / 2
	// Heartbeats off: only C's result timeout discovers the failure, and
	// the grandchild result overtakes the announcement.
	rep, err := sp.runWithFault("splice", false, 1, gpcProcP, faultAt, false)
	if err != nil {
		return nil, err
	}
	return sp.finish(4, rep, faultAt)
}

// Case 5: P's death is announced while C runs, so P′ exists before C
// completes; C's orphan result still arrives before P′ finishes its long
// first pass, so the answer is inherited and C′ never spawned.
func fig5Case5() (*Fig5Result, error) {
	sp := gpcSpec{pPre: 12000, pPost: 100, cCost: 2000}
	t, err := sp.dryTimes("splice")
	if err != nil {
		return nil, err
	}
	faultAt := (t.startC + t.completeC) / 2
	rep, err := sp.runWithFault("splice", true, 0, gpcProcP, faultAt, true)
	if err != nil {
		return nil, err
	}
	return sp.finish(5, rep, faultAt)
}

// Case 6: P′ progresses quickly and spawns C′ while the original C still
// runs; the original's result arrives first and the twin child's duplicate
// is ignored ("the second copy is simply ignored").
func fig5Case6() (*Fig5Result, error) {
	// The twin P′ and its child C′ land on idle spares; the original C has
	// a head start, so its result arrives first while P′'s long second pass
	// keeps it resident for the duplicate to be observed.
	sp := gpcSpec{
		pPre: 10, pPost: 30000, cCost: 6000,
		pSeq: []proto.ProcID{gpcProcP, gpcSpare1},
		cSeq: []proto.ProcID{gpcProcC, gpcSpare2},
	}
	t, err := sp.dryTimes("splice")
	if err != nil {
		return nil, err
	}
	faultAt := (t.startC + t.completeC) / 2
	rep, err := sp.runWithFault("splice", true, 0, gpcProcP, faultAt, true)
	if err != nil {
		return nil, err
	}
	return sp.finish(6, rep, faultAt)
}

// Case 7: the reciprocal of case 6 — the late incarnation C′ finishes
// before the original C, which is stuck behind a filler task on its
// processor ("late invocation of an identical task may yield a result
// faster than the earlier invocation").
func fig5Case7() (*Fig5Result, error) {
	sp := gpcSpec{
		pPre: 10, pPost: 30000, cCost: 600,
		filler: 20000, fillerFirst: true, fillerOnC: true,
		cSeq: []proto.ProcID{gpcProcC, gpcSpare2},
		pSeq: []proto.ProcID{gpcProcP, gpcSpare1},
	}
	t, err := sp.dryTimes("splice")
	if err != nil {
		return nil, err
	}
	// The dry run's C start is delayed by the filler; kill P while C waits
	// in the queue but after C was spawned and placed.
	faultAt := t.placeC + 40
	rep, err := sp.runWithFault("splice", true, 0, gpcProcP, faultAt, true)
	if err != nil {
		return nil, err
	}
	return sp.finish(7, rep, faultAt)
}

// Case 8: the original C completes only after P′ has already completed and
// G's hole is filled; the old result arrives with nobody to use it and is
// discarded ("The result is discarded.").
func fig5Case8() (*Fig5Result, error) {
	sp := gpcSpec{
		pPre: 10, pPost: 50, cCost: 600, gPost: 8000,
		filler: 30000, fillerFirst: true, fillerOnC: true,
		cSeq: []proto.ProcID{gpcProcC, gpcSpare2},
		pSeq: []proto.ProcID{gpcProcP, gpcSpare1},
	}
	t, err := sp.dryTimes("splice")
	if err != nil {
		return nil, err
	}
	faultAt := t.placeC + 40
	rep, err := sp.runWithFault("splice", true, 0, gpcProcP, faultAt, true)
	if err != nil {
		return nil, err
	}
	return sp.finish(8, rep, faultAt)
}
