package scenario

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/stamp"
	"repro/internal/trace"
)

// Processor letters of Figure 1.
const (
	ProcA proto.ProcID = 0
	ProcB proto.ProcID = 1
	ProcC proto.ProcID = 2
	ProcD proto.ProcID = 3
)

// Fig1Tree reconstructs the call tree of Figure 1. The paper prescribes:
//
//   - task Ai runs on processor A, Bi on B, etc. (§3);
//   - "Processor A contains the functional checkpoint for B1, processor C
//     contains checkpoints for B2, B3 and B5, and processor D contains
//     checkpoints for B7" — so B1's parent is on A, B2/B3/B5's parents on C,
//     B7's parent on D;
//   - B5's checkpoint is held by task C4 and B5 is a genealogical dependent
//     of B2 through antecedent A2 (§3: "antecedent task A2 cannot report its
//     result to B2");
//   - the grandparent pointer of B3 points to A1 and that of D4 to C1
//     (Figure 2), so B3's parent is a child of A1 on C, and D4's parent is
//     B2 whose parent is C1;
//   - B2's offspring that survive are D4 and A2 (Figure 3);
//   - failing B fragments the tree into {A1,C1,C2,C3,D3}, {A2,D1,D2,C4} and
//     {D4,D5,A5}.
func Fig1Tree() (*Tree, error) {
	procs := map[string]proto.ProcID{
		"A1": ProcA, "A2": ProcA, "A5": ProcA,
		"B1": ProcB, "B2": ProcB, "B3": ProcB, "B5": ProcB, "B7": ProcB,
		"C1": ProcC, "C2": ProcC, "C3": ProcC, "C4": ProcC,
		"D1": ProcD, "D2": ProcD, "D3": ProcD, "D4": ProcD, "D5": ProcD,
	}
	rows := [][3]string{
		{"A1", "", ""},
		{"B1", "A1", ""},
		{"C1", "A1", ""},
		{"C2", "A1", ""},
		{"B2", "C1", ""},
		{"D4", "B2", ""},
		{"A2", "B2", ""},
		{"D5", "D4", ""},
		{"A5", "D5", ""},
		{"D1", "A2", ""},
		{"D2", "A2", ""},
		{"C4", "D2", ""},
		{"B5", "C4", ""},
		{"B3", "C2", ""},
		{"C3", "C2", ""},
		{"D3", "C3", ""},
		{"B7", "D3", ""},
	}
	return NewTree(rows, procs)
}

// Fig1Result captures everything the Figure 1 rollback scenario observed.
type Fig1Result struct {
	// Completed and correct answer despite the failure of B.
	Completed bool
	Answer    string
	// CheckpointHolders maps each B-task to the processor that held its
	// functional checkpoint when B failed (§2.2's distribution).
	CheckpointHolders map[string]proto.ProcID
	// Reissued maps reissued task names to the reissuing processor.
	Reissued map[string]proto.ProcID
	// Suppressed lists checkpointed tasks NOT reissued (the B5 case).
	Suppressed []string
	// Fragments are the statically computed broken pieces.
	Fragments [][]string
	// FaultTime is the injected failure time.
	FaultTime int64
	// Metrics echoes the run counters.
	Metrics trace.Metrics
}

// leafCostFig1 keeps leaves computing long enough that every task of the
// figure is simultaneously resident when B fails.
const leafCostFig1 = 3000

// RunFig1Rollback executes the Figure 1 scenario under rollback recovery
// (§3): build the tree, wait until the full tree is resident, fail B, and
// observe the checkpoint distribution, the topmost reissues, and the B5
// suppression.
func RunFig1Rollback() (*Fig1Result, error) {
	tree, err := Fig1Tree()
	if err != nil {
		return nil, err
	}
	prog, err := tree.Program(leafCostFig1)
	if err != nil {
		return nil, err
	}
	names := tree.NameOf()

	// Dry run: find when the whole tree is placed and when the first leaf
	// completes; the fault goes between the two.
	dryCfg, err := baseConfig(tree, 4, "rollback")
	if err != nil {
		return nil, err
	}
	dry, err := run(dryCfg, prog, "tA1", nil)
	if err != nil {
		return nil, err
	}
	lastPlace, firstComplete := int64(-1), int64(1<<62)
	for _, e := range dry.Log.Events {
		switch e.Kind {
		case trace.KPlace:
			if e.Time > lastPlace {
				lastPlace = e.Time
			}
		case trace.KComplete:
			if e.Time < firstComplete {
				firstComplete = e.Time
			}
		}
	}
	if lastPlace < 0 || lastPlace >= firstComplete {
		return nil, fmt.Errorf("scenario: no fault window (lastPlace=%d firstComplete=%d)", lastPlace, firstComplete)
	}
	faultAt := (lastPlace + firstComplete) / 2

	// Real run: announced crash of processor B.
	cfg, err := baseConfig(tree, 4, "rollback")
	if err != nil {
		return nil, err
	}
	rep, err := run(cfg, prog, "tA1", faults.Crash(ProcB, faultAt, true))
	if err != nil {
		return nil, err
	}
	want, err := lang.RefEval(prog, "tA1", nil)
	if err != nil {
		return nil, err
	}

	res := &Fig1Result{
		Completed:         rep.Completed && rep.Answer != nil && rep.Answer.Equal(want),
		CheckpointHolders: map[string]proto.ProcID{},
		Reissued:          map[string]proto.ProcID{},
		Fragments:         tree.Fragments(ProcB),
		FaultTime:         faultAt,
		Metrics:           rep.Metrics,
	}
	if rep.Answer != nil {
		res.Answer = rep.Answer.String()
	}
	// Checkpoint holders at fault time: for each task pinned on B, the
	// processor of its parent (who retains the packet).
	for name, n := range tree.Nodes {
		if n.Proc == ProcB && n.Parent != "" {
			res.CheckpointHolders[name] = tree.Nodes[n.Parent].Proc
		}
	}
	for _, e := range rep.Log.Events {
		switch e.Kind {
		case trace.KReissue:
			if s, err2 := stamp.Parse(e.Task); err2 == nil {
				if name, ok := names[s]; ok {
					res.Reissued[name] = proto.ProcID(e.Proc)
				}
			}
		case trace.KSuppress:
			if s, err2 := stamp.Parse(e.Task); err2 == nil {
				if name, ok := names[s]; ok {
					res.Suppressed = append(res.Suppressed, name)
				}
			}
		}
	}
	sort.Strings(res.Suppressed)
	return res, nil
}

// Fig23Result captures the splice walk-through of Figures 2–3.
type Fig23Result struct {
	Completed bool
	Answer    string
	// Twinned maps twinned task names to the processor that created the
	// step-parent (the parent task's processor).
	Twinned map[string]proto.ProcID
	// OrphanResults counts orphan results escalated to ancestors, Relayed
	// the ones forwarded to twins, Prefills the inherited answers consumed
	// without respawning, Dups the duplicate answers ignored.
	OrphanResults, Relayed, Prefills, Dups int64
	FaultTime                              int64
	Metrics                                trace.Metrics
}

// RunFig23Splice executes Figures 2–3: the same tree and fault under splice
// recovery. C1 must create twin B2′; the orphan results of B2's offspring
// (D4, A2) must be relayed through their grandparent pointers and spliced
// into the recovered structure.
func RunFig23Splice() (*Fig23Result, error) {
	tree, err := Fig1Tree()
	if err != nil {
		return nil, err
	}
	prog, err := tree.Program(leafCostFig1)
	if err != nil {
		return nil, err
	}
	names := tree.NameOf()

	dryCfg, err := baseConfig(tree, 4, "splice")
	if err != nil {
		return nil, err
	}
	dry, err := run(dryCfg, prog, "tA1", nil)
	if err != nil {
		return nil, err
	}
	lastPlace, firstComplete := int64(-1), int64(1<<62)
	for _, e := range dry.Log.Events {
		switch e.Kind {
		case trace.KPlace:
			if e.Time > lastPlace {
				lastPlace = e.Time
			}
		case trace.KComplete:
			if e.Time < firstComplete {
				firstComplete = e.Time
			}
		}
	}
	if lastPlace < 0 || lastPlace >= firstComplete {
		return nil, fmt.Errorf("scenario: no fault window")
	}
	faultAt := (lastPlace + firstComplete) / 2

	cfg, err := baseConfig(tree, 4, "splice")
	if err != nil {
		return nil, err
	}
	rep, err := run(cfg, prog, "tA1", faults.Crash(ProcB, faultAt, true))
	if err != nil {
		return nil, err
	}
	want, err := lang.RefEval(prog, "tA1", nil)
	if err != nil {
		return nil, err
	}
	res := &Fig23Result{
		Completed:     rep.Completed && rep.Answer != nil && rep.Answer.Equal(want),
		Twinned:       map[string]proto.ProcID{},
		OrphanResults: rep.Metrics.OrphanResults,
		Relayed:       rep.Metrics.Relayed,
		Prefills:      rep.Metrics.Prefills,
		Dups:          rep.Metrics.DupResults,
		FaultTime:     faultAt,
		Metrics:       rep.Metrics,
	}
	if rep.Answer != nil {
		res.Answer = rep.Answer.String()
	}
	for _, e := range rep.Log.Events {
		if e.Kind == trace.KTwin {
			if s, err2 := stamp.Parse(e.Task); err2 == nil {
				if name, ok := names[s]; ok {
					res.Twinned[name] = proto.ProcID(e.Proc)
				}
			}
		}
	}
	return res, nil
}
