package registry

import "testing"

// The three production registries (core backends, recovery schemes, lang
// evaluators) all surface this package's error text verbatim in CLI errors
// and config validation, so the formats are pinned exactly: changing them
// here is changing user-visible output at every call site at once.

func TestRegisterSortsAndLists(t *testing.T) {
	r := New[int]("demo", "widget")
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := r.Register(name, len(name)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "mid", "zeta"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	// Names returns a copy: mutating it must not corrupt the registry.
	got[0] = "corrupted"
	if r.Names()[0] != "alpha" {
		t.Fatal("Names() exposed internal storage")
	}
	if r.FlagHelp() != "alpha|mid|zeta" {
		t.Fatalf("FlagHelp() = %q", r.FlagHelp())
	}
}

func TestGetAndKnown(t *testing.T) {
	r := New[string]("demo", "widget")
	if err := r.Register("a", "va"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("b", "vb"); err != nil {
		t.Fatal(err)
	}
	v, err := r.Get("a")
	if err != nil || v != "va" {
		t.Fatalf("Get(a) = %q, %v", v, err)
	}
	if !r.Known("b") || r.Known("c") {
		t.Fatal("Known() wrong")
	}
	_, err = r.Get("nosuch")
	if err == nil {
		t.Fatal("unknown name resolved")
	}
	if want := `demo: unknown widget "nosuch" (known: a, b)`; err.Error() != want {
		t.Fatalf("Get error = %q, want %q", err, want)
	}
}

func TestRegisterErrors(t *testing.T) {
	r := New[int]("demo", "widget")
	if err := r.Register("", 0); err == nil || err.Error() != "demo: widget name required" {
		t.Fatalf("empty-name error = %v", err)
	}
	if err := r.Register("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("x", 2); err == nil || err.Error() != `demo: duplicate widget "x"` {
		t.Fatalf("duplicate error = %v", err)
	}
}

// Unknown is the shared formatter external validators (machine.Config,
// the live/net backend prepare paths) use so their error text cannot drift
// from the registries'.
func TestUnknownFormatter(t *testing.T) {
	err := Unknown("machine", "evaluator", "nope", []string{"compiled", "interp"})
	if want := `machine: unknown evaluator "nope" (known: compiled, interp)`; err.Error() != want {
		t.Fatalf("Unknown() = %q, want %q", err, want)
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	r := New[int]("demo", "widget")
	r.MustRegister("x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister did not panic on duplicate")
		}
	}()
	r.MustRegister("x", 2)
}
