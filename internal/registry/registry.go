// Package registry provides the one name→value table idiom the
// repository's pluggable components share: core backends, recovery schemes,
// and language evaluators all expose a sorted name list, a by-name lookup
// whose error text enumerates exactly the registered set, and a flag-help
// string derived from the same list — so CLI help, validation errors, and
// the accepted vocabulary can never drift apart.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a concurrency-safe name→value table. The prefix and kind
// parameterize its error text: a Registry created with ("recovery",
// "scheme") reports `recovery: unknown scheme "x" (known: a, b)`.
type Registry[T any] struct {
	prefix string // error-text package prefix, e.g. "recovery"
	kind   string // what a name denotes, e.g. "scheme"

	mu     sync.RWMutex
	byName map[string]T
	names  []string // kept sorted; Names/FlagHelp/errors all read it
}

// New creates an empty registry whose errors read
// "<prefix>: unknown <kind> %q (known: ...)".
func New[T any](prefix, kind string) *Registry[T] {
	return &Registry[T]{prefix: prefix, kind: kind, byName: map[string]T{}}
}

// Register adds a named value. Empty and duplicate names are errors.
func (r *Registry[T]) Register(name string, v T) error {
	if name == "" {
		return fmt.Errorf("%s: %s name required", r.prefix, r.kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("%s: duplicate %s %q", r.prefix, r.kind, name)
	}
	r.byName[name] = v
	i := sort.SearchStrings(r.names, name)
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = name
	return nil
}

// MustRegister is Register for init-time wiring.
func (r *Registry[T]) MustRegister(name string, v T) {
	if err := r.Register(name, v); err != nil {
		panic(err)
	}
}

// Names lists the registered names in sorted order — the exact strings Get
// accepts, in the one documented order every help string and error uses.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// Known reports whether name is registered.
func (r *Registry[T]) Known(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.byName[name]
	return ok
}

// Get resolves a registered name. The error text lists the registered names
// so callers can surface it verbatim.
func (r *Registry[T]) Get(name string) (T, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if v, ok := r.byName[name]; ok {
		return v, nil
	}
	var zero T
	return zero, Unknown(r.prefix, r.kind, name, r.names)
}

// FlagHelp renders the registered names as a "a|b|c" vocabulary for CLI
// flag help strings.
func (r *Registry[T]) FlagHelp() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return strings.Join(r.names, "|")
}

// Unknown is the shared unknown-name error: call sites that validate a name
// against someone else's registry (machine.Config validating a recovery
// scheme it holds by interface) format through it so their error text stays
// in lockstep with the registry's own.
func Unknown(prefix, kind, name string, known []string) error {
	return fmt.Errorf("%s: unknown %s %q (known: %s)",
		prefix, kind, name, strings.Join(known, ", "))
}
