package sim

import (
	"fmt"
	"strings"
	"testing"
)

// hopMsg is the test payload: deliver to `to`, then bounce back with one
// fewer hop until the budget runs out.
type hopMsg struct {
	to   int32
	hops int
}

const testHorizon = Time(5)

// crossTraffic runs two interleaved ping-pong chains between owners 0 and 1
// on an ensemble with the given shard count and returns a rendering of every
// delivery plus the final clocks. Owner i's log is only ever appended from
// owner i's home shard, so the multi-shard runs are write-disjoint; the
// barrier publishes both logs back to the driver.
func crossTraffic(t *testing.T, shards int, deadline Time) string {
	t.Helper()
	homes := []int32{0, int32(shards - 1)}
	s := NewSharded(1, shards, homes, testHorizon)
	defer s.Close()
	logs := make([][]string, 2)
	var pacerLines []string
	s.SetSink(func(v any) {
		m := v.(hopMsg)
		k := s.Shard(s.HomeOf(m.to))
		logs[m.to] = append(logs[m.to], fmt.Sprintf("t=%d owner=%d hops=%d", k.Now(), m.to, m.hops))
		if m.hops > 0 {
			other := 1 - m.to
			k.AtMsgTo(k.Now()+testHorizon, other, hopMsg{to: other, hops: m.hops - 1})
		}
	})
	s.SetPacer(7, 10, func(at Time) {
		pacerLines = append(pacerLines, fmt.Sprintf("pacer t=%d processed=%d", at, s.Processed()))
	})
	s.AtOn(0, 0, func() {
		k := s.Shard(s.HomeOf(0))
		k.AtMsgTo(testHorizon, 1, hopMsg{to: 1, hops: 6})
	})
	s.AtOn(0, 1, func() {
		k := s.Shard(s.HomeOf(1))
		k.AtMsgTo(testHorizon, 0, hopMsg{to: 0, hops: 5})
	})
	res := s.RunUntil(deadline, 0)
	var b strings.Builder
	fmt.Fprintf(&b, "result=%v now=%d processed=%d\n", res, s.Now(), s.Processed())
	for owner, lines := range logs {
		fmt.Fprintf(&b, "owner %d: %s\n", owner, strings.Join(lines, "; "))
	}
	fmt.Fprintf(&b, "%s\n", strings.Join(pacerLines, "; "))
	return b.String()
}

// TestShardedMatchesSingleShard is the package-level determinism pin: the
// two-shard ensemble (concurrent windows, per-pair outbox merges, worker
// goroutines) renders byte-identically to the single-shard ensemble, which
// runs the same windowed loop inline and is the executable specification.
func TestShardedMatchesSingleShard(t *testing.T) {
	ref := crossTraffic(t, 1, 60)
	if !strings.Contains(ref, "owner 0") || strings.Contains(ref, "owner 0: \n") {
		t.Fatalf("reference run produced no deliveries:\n%s", ref)
	}
	for run := 0; run < 3; run++ {
		if got := crossTraffic(t, 2, 60); got != ref {
			t.Fatalf("2-shard run %d diverged:\n--- 1 shard ---\n%s--- 2 shards ---\n%s", run, ref, got)
		}
	}
}

// TestShardedHorizonViolationPanics pins the conservative-synchronization
// guard: a handler scheduling a cross-shard delivery inside the current
// lookahead window is a simulator bug and must panic rather than silently
// break the lockstep invariant.
func TestShardedHorizonViolationPanics(t *testing.T) {
	s := NewSharded(1, 2, []int32{0, 1}, testHorizon)
	defer s.Close()
	s.SetSink(func(any) {})
	s.AtOn(0, 0, func() {
		k := s.Shard(0)
		defer func() {
			if recover() == nil {
				t.Error("cross-shard send inside the window did not panic")
			}
			k.Stop()
		}()
		k.AtMsgTo(k.Now()+1, 1, hopMsg{to: 1})
	})
	s.RunUntil(100, 0)
}

// TestShardedDriverPrecedence checks the driver source sorts ahead of owned
// traffic at equal times on a sharded ensemble, exactly as on a standalone
// kernel: fault injections must beat same-tick protocol events.
func TestShardedDriverPrecedence(t *testing.T) {
	s := NewSharded(1, 2, []int32{0, 1}, testHorizon)
	defer s.Close()
	var order []string
	s.AtOn(5, 1, func() {
		k := s.Shard(1)
		k.At(20, func() { order = append(order, "owned") })
	})
	s.AtOn(20, 1, func() { order = append(order, "driver") })
	s.Run(0)
	want := "driver,owned"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("t=20 dispatch order = %q, want %q", got, want)
	}
}

// TestShardedStopAtWindowBoundary pins the Stop semantics the coordinator
// documents: a stop requested mid-window takes effect at the window's end —
// same-window events still dispatch, later windows do not — at every shard
// count, so stopping cannot introduce shard-count-dependent behavior.
func TestShardedStopAtWindowBoundary(t *testing.T) {
	for _, shards := range []int{1, 2} {
		s := NewSharded(1, shards, []int32{0, int32(shards - 1)}, testHorizon)
		var fired []Time
		s.AtOn(10, 0, func() {
			fired = append(fired, 10)
			s.Shard(s.HomeOf(0)).Stop()
		})
		s.AtOn(12, 0, func() { fired = append(fired, 12) }) // same window [10,15)
		s.AtOn(30, 0, func() { fired = append(fired, 30) }) // next window
		res := s.RunUntil(100, 0)
		if res != RunStopped {
			t.Fatalf("shards=%d: result = %v, want stopped", shards, res)
		}
		if len(fired) != 2 || fired[0] != 10 || fired[1] != 12 {
			t.Fatalf("shards=%d: fired = %v, want [10 12]", shards, fired)
		}
		if s.Pending() != 1 {
			t.Fatalf("shards=%d: %d events pending after stop, want 1", shards, s.Pending())
		}
		s.Close()
	}
}

// TestShardedBudgetAtWindowGranularity checks maxEvents is enforced at
// window boundaries: the budget can only be observed exhausted between
// windows, so the dispatched count is identical at every shard count even
// when it overshoots the nominal budget inside a window.
func TestShardedBudgetAtWindowGranularity(t *testing.T) {
	counts := make(map[int]uint64)
	for _, shards := range []int{1, 2} {
		s := NewSharded(1, shards, []int32{0, int32(shards - 1)}, testHorizon)
		for i := Time(0); i < 4; i++ {
			s.AtOn(10, 0, func() {})
			s.AtOn(10, 1, func() {})
		}
		if res := s.RunUntil(100, 3); res != RunBudgetExhausted {
			t.Fatalf("shards=%d: result = %v, want budget-exhausted", shards, res)
		}
		counts[shards] = s.Processed()
		s.Close()
	}
	if counts[1] != counts[2] {
		t.Fatalf("budget cut at different points: 1 shard dispatched %d, 2 shards %d", counts[1], counts[2])
	}
}
