// Conservatively-synchronized sharded kernel. A Sharded ensemble runs one
// shard-local Kernel per topology region in lockstep windows [M, M+H),
// where M is the earliest pending event anywhere and H is the lookahead
// horizon — the minimum latency of any cross-shard message. Within a window
// no information can flow between shards (a cross-shard delivery lands at
// or beyond the window end by construction, enforced by AtMsgTo), so every
// shard may dispatch its window concurrently; events exchanged through the
// per-pair outboxes merge at the barrier on the total Key order.
//
// Determinism does not depend on the partition or the shard count: each
// source allocates its sequence numbers from the one kernel it schedules
// on, sequences are only compared within a source, and window boundaries
// are a function of (pending event times, horizon, deadline, pacer ticks)
// — all shard-count-invariant. The single-shard ensemble runs the same
// windowed loop inline, so it is the executable specification that the
// parallel runs are checked against (the shard-sweep tests assert
// byte-identical traces for 1, 2, 4 and 8 shards).
package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Sharded coordinates a set of shard-local kernels. All driver-facing
// methods (scheduling, running, the pacer) must be called from a single
// goroutine; shard handlers run concurrently only inside windows.
type Sharded struct {
	shards    []*Kernel
	homes     []int32 // owner -> shard index; the driver schedules onto the owner's shard
	horizon   Time
	now       Time
	driverSeq uint64
	processed uint64
	stopped   bool // driver-requested stop

	// pacer runs a coordinator-level callback every pacerEvery ticks at a
	// window boundary: it observes the state after every event before its
	// tick and none at or after it, at any shard count.
	pacer      func(Time)
	pacerEvery Time
	pacerNext  Time

	// Worker machinery (nil until the first multi-shard window).
	wake      []chan Time
	counts    []uint64
	remaining atomic.Int32
	closed    bool
	// sequential runs every window inline on the driver goroutine. Chosen at
	// construction when the process has a single scheduling core: window
	// results are interleaving-independent, so this changes nothing but the
	// wall clock — it just skips worker wakes and barrier spins that a lone
	// core would pay for without any overlap to win.
	sequential bool
}

// NewSharded builds an ensemble of n shard kernels over the given owner →
// shard assignment (len(homes) owners; driver-owned events live on shard
// 0). horizon is the lookahead H in ticks; n > 1 requires horizon >= 1.
func NewSharded(seed int64, n int, homes []int32, horizon Time) *Sharded {
	if n < 1 {
		panic(fmt.Sprintf("sim: shard count %d < 1", n))
	}
	if n > 1 && horizon < 1 {
		panic(fmt.Sprintf("sim: %d shards need a lookahead horizon >= 1, got %d", n, horizon))
	}
	s := &Sharded{horizon: horizon, homes: homes, sequential: runtime.GOMAXPROCS(0) == 1}
	s.shards = make([]*Kernel, n)
	for i := range s.shards {
		k := NewKernel(seed + int64(i))
		k.ens = s
		k.id = i
		k.out = make([][]*event, n)
		s.shards[i] = k
	}
	for _, h := range homes {
		if int(h) < 0 || int(h) >= n {
			panic(fmt.Sprintf("sim: owner shard %d out of range [0,%d)", h, n))
		}
	}
	return s
}

// home maps an owner to its shard; driver-owned events live on shard 0.
func (s *Sharded) home(owner int32) int {
	if owner < 0 {
		return 0
	}
	return int(s.homes[owner])
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i's kernel. Handlers owned by shard i may use it
// freely during dispatch; the driver may touch it only between runs.
func (s *Sharded) Shard(i int) *Kernel { return s.shards[i] }

// HomeOf returns the shard index owning owner's events.
func (s *Sharded) HomeOf(owner int32) int { return s.home(owner) }

// Horizon returns the lookahead window width in ticks.
func (s *Sharded) Horizon() Time { return s.horizon }

// Now returns the coordinator's virtual time: the last barrier or run
// boundary. Inside a handler, use the shard kernel's Now.
func (s *Sharded) Now() Time { return s.now }

// Processed returns the number of events dispatched so far across all
// shards, including pacer fires.
func (s *Sharded) Processed() uint64 { return s.processed }

// SetSink installs the payload consumer on every shard.
func (s *Sharded) SetSink(fn func(any)) {
	for _, k := range s.shards {
		k.SetSink(fn)
	}
}

// Stop makes the current run return at the next window boundary.
func (s *Sharded) Stop() { s.stopped = true }

// Pending reports the number of live queued events across all shards.
func (s *Sharded) Pending() int {
	n := 0
	for _, k := range s.shards {
		n += k.Pending()
	}
	return n
}

// SetPacer installs fn to run every `every` ticks, first at tick `first`.
// Pacer fires count as dispatched events (they occupy the slot the probe
// event used to) and keep the ensemble non-quiescent, exactly like a
// self-rescheduling probe timer.
func (s *Sharded) SetPacer(first, every Time, fn func(Time)) {
	s.pacer = fn
	s.pacerEvery = every
	s.pacerNext = first
}

// AtOn schedules fn at absolute time t on owner's shard, attributed to the
// driver source. It must be called from the driver goroutine between runs.
func (s *Sharded) AtOn(t Time, owner int32, fn func()) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, s.now))
	}
	k := s.shards[s.home(owner)]
	ev := k.alloc(t)
	ev.src = DriverSrc
	ev.seq = s.driverSeq
	s.driverSeq++
	ev.owner = owner
	ev.fn = fn
	k.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// nextTime returns the earliest pending event time across shards.
func (s *Sharded) nextTime() (Time, bool) {
	var m Time
	ok := false
	for _, k := range s.shards {
		if t, live := k.peek(); live && (!ok || t < m) {
			m, ok = t, true
		}
	}
	return m, ok
}

// shardStopped reports whether any shard (or the driver) flagged a stop.
func (s *Sharded) shardStopped() bool {
	if s.stopped {
		return true
	}
	for _, k := range s.shards {
		if k.stopped {
			return true
		}
	}
	return false
}

// settle records the post-run time on the coordinator and every shard so
// later driver scheduling and reports see a consistent clock.
func (s *Sharded) settle(t Time) {
	if t > s.now {
		s.now = t
	}
	for _, k := range s.shards {
		if s.now > k.now {
			k.now = s.now
		}
	}
}

// maxShardNow returns the latest dispatched-event time across shards.
func (s *Sharded) maxShardNow() Time {
	m := s.now
	for _, k := range s.shards {
		if k.now > m {
			m = k.now
		}
	}
	return m
}

// drainOutboxes merges every per-pair queue into the destination heaps.
// Insertion order cannot affect dispatch order (the heap dispatches in Key
// order), but iterating shard-major keeps runs bit-reproducible anyway.
func (s *Sharded) drainOutboxes() {
	for _, src := range s.shards {
		for dst, evs := range src.out {
			if len(evs) == 0 {
				continue
			}
			dk := s.shards[dst]
			for i, ev := range evs {
				dk.push(ev)
				evs[i] = nil
			}
			src.out[dst] = evs[:0]
		}
	}
}

// RunUntil dispatches events with timestamps <= deadline in lockstep
// windows, then returns. Semantics mirror Kernel.RunUntil with two
// shard-count-invariant differences: Stop takes effect at the end of the
// window that requested it, and maxEvents is enforced at window
// granularity (both boundaries are identical at every shard count).
func (s *Sharded) RunUntil(deadline Time, maxEvents uint64) RunResult {
	s.stopped = false
	for _, k := range s.shards {
		k.stopped = false
	}
	dispatched := uint64(0)
	for {
		if s.shardStopped() {
			s.settle(s.maxShardNow())
			return RunStopped
		}
		if maxEvents > 0 && dispatched >= maxEvents {
			s.settle(s.maxShardNow())
			return RunBudgetExhausted
		}
		m, ok := s.nextTime()
		if !ok {
			if s.pacer != nil {
				if s.pacerNext <= deadline {
					s.firePacer()
					dispatched++
					continue
				}
				s.settle(deadline)
				return RunDeadline
			}
			s.settle(deadline)
			return RunQuiescent
		}
		if s.pacer != nil && s.pacerNext <= m {
			if s.pacerNext > deadline {
				s.settle(deadline)
				return RunDeadline
			}
			s.firePacer()
			dispatched++
			continue
		}
		if m > deadline {
			s.settle(deadline)
			return RunDeadline
		}
		w := m + s.horizon
		if s.pacer != nil && s.pacerNext < w {
			w = s.pacerNext
		}
		if w > deadline+1 {
			w = deadline + 1
		}
		dispatched += s.runWindow(w)
		s.drainOutboxes()
	}
}

// Run dispatches until quiescent, stopped, or maxEvents dispatched. With a
// pacer installed, use RunUntil: the pacer never lets the ensemble drain.
func (s *Sharded) Run(maxEvents uint64) RunResult {
	const farFuture = Time(1) << 60
	res := s.RunUntil(farFuture, maxEvents)
	if res == RunDeadline {
		res = RunQuiescent
	}
	return res
}

// firePacer advances the clock to the pacer tick and runs the callback.
func (s *Sharded) firePacer() {
	t := s.pacerNext
	s.settle(t)
	s.processed++
	s.pacerNext += s.pacerEvery
	s.pacer(t)
}

// runWindow dispatches every event before w on every shard that has one,
// in parallel when more than one shard is active.
func (s *Sharded) runWindow(w Time) uint64 {
	lead := -1
	extra := 0
	for i, k := range s.shards {
		if t, ok := k.peek(); ok && t < w {
			if lead < 0 {
				lead = i
			} else {
				extra++
			}
		}
	}
	if lead < 0 {
		return 0
	}
	if extra == 0 || s.sequential {
		var n uint64
		for _, k := range s.shards[lead:] {
			if t, ok := k.peek(); ok && t < w {
				n += k.runWindow(w)
			}
		}
		s.processed += n
		return n
	}
	if s.wake == nil {
		s.startWorkers()
	}
	s.remaining.Store(int32(extra))
	for i := lead + 1; i < len(s.shards); i++ {
		k := s.shards[i]
		if t, ok := k.peek(); ok && t < w {
			s.wake[i] <- w
		}
	}
	n := s.shards[lead].runWindow(w)
	for spins := 0; s.remaining.Load() != 0; spins++ {
		if spins&63 == 63 {
			runtime.Gosched()
		}
	}
	for i := lead + 1; i < len(s.shards); i++ {
		n += s.counts[i]
		s.counts[i] = 0
	}
	s.processed += n
	return n
}

// startWorkers launches one parked goroutine per shard beyond the first.
// Workers block on their wake channel between windows; Close releases them.
func (s *Sharded) startWorkers() {
	s.wake = make([]chan Time, len(s.shards))
	s.counts = make([]uint64, len(s.shards))
	for i := 1; i < len(s.shards); i++ {
		i := i
		s.wake[i] = make(chan Time, 1)
		go func() {
			k := s.shards[i]
			for w := range s.wake[i] {
				s.counts[i] = k.runWindow(w)
				s.remaining.Add(-1)
			}
		}()
	}
}

// Close releases the shard workers. The ensemble must not run again.
func (s *Sharded) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for i := 1; i < len(s.wake); i++ {
		if s.wake[i] != nil {
			close(s.wake[i])
		}
	}
	s.wake = nil
}
