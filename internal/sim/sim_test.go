package sim

import (
	"testing"
)

func TestRunOrderAndFIFOTieBreak(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(10, func() { order = append(order, 3) })
	k.At(5, func() { order = append(order, 1) })
	k.At(5, func() { order = append(order, 2) }) // same time: FIFO by schedule order
	res := k.Run(0)
	if res != RunQuiescent {
		t.Fatalf("Run = %v", res)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 10 {
		t.Fatalf("Now = %d, want 10", k.Now())
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	var times []Time
	k.After(3, func() {
		times = append(times, k.Now())
		k.After(4, func() { times = append(times, k.Now()) })
	})
	k.Run(0)
	if len(times) != 2 || times[0] != 3 || times[1] != 7 {
		t.Fatalf("times = %v", times)
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.After(5, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer not active after scheduling")
	}
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Active() {
		t.Fatal("timer active after Stop")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	k.Run(0)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	var zeroTimer Timer
	if zeroTimer.Stop() {
		t.Fatal("zero timer Stop returned true")
	}
}

func TestStopEndsRun(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.At(1, func() { count++; k.Stop() })
	k.At(2, func() { count++ })
	if res := k.Run(0); res != RunStopped {
		t.Fatalf("Run = %v, want stopped", res)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}
	// Run can resume afterwards.
	if res := k.Run(0); res != RunQuiescent {
		t.Fatalf("resumed Run = %v", res)
	}
	if count != 2 {
		t.Fatalf("count after resume = %d", count)
	}
}

func TestRunBudget(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var reschedule func()
	reschedule = func() { count++; k.After(1, reschedule) }
	k.After(1, reschedule)
	if res := k.Run(100); res != RunBudgetExhausted {
		t.Fatalf("Run = %v", res)
	}
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, at := range []Time{2, 4, 6, 8} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	if res := k.RunUntil(5, 0); res != RunDeadline {
		t.Fatalf("RunUntil = %v", res)
	}
	if len(fired) != 2 || k.Now() != 5 {
		t.Fatalf("fired=%v now=%d", fired, k.Now())
	}
	if res := k.RunUntil(100, 0); res != RunQuiescent {
		t.Fatalf("second RunUntil = %v", res)
	}
	if len(fired) != 4 || k.Now() != 100 {
		t.Fatalf("fired=%v now=%d", fired, k.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run(0)
}

func TestNegativeDelayPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestDeterministicRNG(t *testing.T) {
	a, b := NewKernel(7), NewKernel(7)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewKernel(8)
	same := true
	a2 := NewKernel(7)
	for i := 0; i < 10; i++ {
		if a2.Rand().Int63() != c.Rand().Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		k := NewKernel(3)
		var log []Time
		var tick func()
		n := 0
		tick = func() {
			log = append(log, k.Now())
			n++
			if n < 50 {
				k.After(Time(1+k.Rand().Intn(5)), tick)
			}
		}
		k.After(0, tick)
		k.Run(0)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		for j := 0; j < 100; j++ {
			k.After(Time(j%17), func() {})
		}
		k.Run(0)
	}
}
