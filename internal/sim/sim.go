// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event heap with stable tie-breaking, and cancellable
// timers. Every behaviour of the simulated multiprocessor is a function of
// (configuration, seed), which is what makes the recovery protocols testable
// — the paper's eight completion orderings (Figure 5) and seven spawn states
// (Figure 6) are reproduced by steering event timing, not by racing real
// goroutines.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in abstract ticks.
type Time int64

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // FIFO tie-break for equal times
	fn   func()
	dead bool // cancelled
	idx  int  // heap index
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && t.ev != nil && !t.ev.dead }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is the event loop. It is not safe for concurrent use; the entire
// simulation is single-threaded and deterministic.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool
	// processed counts dispatched events, as a runaway guard and a
	// determinism fingerprint for tests.
	processed uint64
}

// NewKernel creates a kernel with the given RNG seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic RNG.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Processed returns the number of events dispatched so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// At schedules fn at absolute time t (>= Now) and returns a cancellable
// handle. Scheduling in the past panics: it is always a simulator bug.
func (k *Kernel) At(t Time, fn func()) *Timer {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, k.now))
	}
	ev := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn d ticks from now.
func (k *Kernel) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return k.At(k.now+d, fn)
}

// Stop makes Run return after the current event completes. Pending events
// remain queued (they are simply never dispatched).
func (k *Kernel) Stop() { k.stopped = true }

// Pending reports the number of live (non-cancelled) queued events.
func (k *Kernel) Pending() int {
	n := 0
	for _, ev := range k.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Run dispatches events in (time, seq) order until the queue is empty,
// Stop is called, or maxEvents events have been processed (0 = unlimited).
// It returns the reason the loop ended.
func (k *Kernel) Run(maxEvents uint64) RunResult {
	k.stopped = false
	dispatched := uint64(0)
	for len(k.events) > 0 {
		if k.stopped {
			return RunStopped
		}
		if maxEvents > 0 && dispatched >= maxEvents {
			return RunBudgetExhausted
		}
		ev := heap.Pop(&k.events).(*event)
		if ev.dead {
			continue
		}
		if ev.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = ev.at
		fn := ev.fn
		ev.fn = nil
		k.processed++
		dispatched++
		fn()
	}
	if k.stopped {
		return RunStopped
	}
	return RunQuiescent
}

// RunUntil dispatches events with timestamps <= deadline, then returns.
// Events beyond the deadline stay queued; Now advances to at most deadline.
// maxEvents bounds the number of dispatched events (0 = unlimited).
func (k *Kernel) RunUntil(deadline Time, maxEvents uint64) RunResult {
	k.stopped = false
	dispatched := uint64(0)
	for len(k.events) > 0 {
		if k.stopped {
			return RunStopped
		}
		if maxEvents > 0 && dispatched >= maxEvents {
			return RunBudgetExhausted
		}
		next := k.events[0]
		if next.dead {
			heap.Pop(&k.events)
			continue
		}
		if next.at > deadline {
			if k.now < deadline {
				k.now = deadline
			}
			return RunDeadline
		}
		ev := heap.Pop(&k.events).(*event)
		k.now = ev.at
		fn := ev.fn
		ev.fn = nil
		k.processed++
		dispatched++
		fn()
	}
	if k.now < deadline {
		k.now = deadline
	}
	if k.stopped {
		return RunStopped
	}
	return RunQuiescent
}

// RunResult says why a Run call returned.
type RunResult int

// Run termination reasons.
const (
	// RunQuiescent: the event queue drained completely.
	RunQuiescent RunResult = iota
	// RunStopped: Stop was called from inside an event.
	RunStopped
	// RunBudgetExhausted: maxEvents events were dispatched.
	RunBudgetExhausted
	// RunDeadline: RunUntil reached its deadline with events pending.
	RunDeadline
)

func (r RunResult) String() string {
	switch r {
	case RunQuiescent:
		return "quiescent"
	case RunStopped:
		return "stopped"
	case RunBudgetExhausted:
		return "budget-exhausted"
	case RunDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("RunResult(%d)", int(r))
	}
}
