// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event heap with stable tie-breaking, and cancellable
// timers. Every behaviour of the simulated multiprocessor is a function of
// (configuration, seed), which is what makes the recovery protocols testable
// — the paper's eight completion orderings (Figure 5) and seven spawn states
// (Figure 6) are reproduced by steering event timing, not by racing real
// goroutines.
//
// The kernel is built for the hot path: dispatch order is the total order
// Key = (time, source, sequence), so the heap implementation, event
// recycling, and the payload fast path below are pure representation
// choices — they cannot change which event runs when.
//
// The source component is what makes the order shard-stable (sharded.go):
// sequence numbers are compared only between events scheduled by the same
// source, and every source schedules from exactly one shard, so the total
// order is identical at every shard count. A standalone kernel schedules
// everything from the driver source, which collapses the key to the classic
// (time, FIFO-sequence) order.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is virtual time in abstract ticks.
type Time int64

// DriverSrc is the scheduling source of everything scheduled from outside
// event dispatch (the test driver, the session layer between runs). It
// sorts before every owned source at equal times, so externally injected
// events (fault plans) dispatch ahead of same-tick protocol traffic.
const DriverSrc int32 = -1

// Key is the total dispatch order of the kernel: time first, then the
// scheduling source, then that source's own FIFO sequence. Sequence numbers
// are only ever compared between keys with equal sources, so per-shard
// sequence counters (sharded.go) still yield one global order.
type Key struct {
	At  Time
	Src int32
	Seq uint64
}

// Less reports whether a dispatches before b.
func (a Key) Less(b Key) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// event is a scheduled occurrence: either a callback (fn) or a payload
// handed to the kernel's sink. Events are pooled; gen distinguishes
// incarnations so a Timer held across recycling can never cancel the
// event's successor.
type event struct {
	at    Time
	src   int32  // scheduling source (Key.Src)
	seq   uint64 // FIFO tie-break within one source
	owner int32  // whose handler runs; determines the dispatching shard
	fn    func()
	msg   any // delivered to the sink when fn is nil
	gen   uint64
	dead  bool // cancelled
	// foreign marks an event allocated for a cross-shard send. Such events
	// live their whole life as uncancellable payloads — no Timer ever points
	// at one — so they recycle through the shard-migrating xfree pool instead
	// of the handle-guarded local pool.
	foreign bool
	k       *Kernel
	idx     int // heap position; -1 once popped or removed
}

func (ev *event) key() Key { return Key{At: ev.at, Src: ev.src, Seq: ev.seq} }

// Timer is a handle to a scheduled event that can be cancelled. The zero
// Timer is valid and inert, so callers can keep timers by value.
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the timer if its event has not fired. It reports whether the
// call prevented the event from firing. A stopped event is removed from the
// heap immediately — cancelled timers are the common case (placement and
// result acks usually arrive long before their timeouts), and evicting them
// keeps the heap small; removing a dead event cannot affect the dispatch
// order of the live ones.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.dead {
		return false
	}
	ev.dead = true
	ev.fn = nil
	ev.msg = nil
	if ev.idx >= 0 {
		ev.k.removeAt(ev.idx)
	}
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.dead
}

// Kernel is the event loop. It is not safe for concurrent use by itself: a
// standalone kernel is the single-threaded reference implementation, and a
// sharded ensemble (sharded.go) runs one kernel per shard with all
// cross-shard exchange confined to coordinator barriers.
type Kernel struct {
	now     Time
	seq     uint64
	cur     int32 // current scheduling source; DriverSrc outside dispatch
	curKey  Key   // key of the event being dispatched (trace-merge tag)
	events  []*event
	free    []*event // recycled events (local-only; may carry stale Timer handles)
	xfree   []*event // recycled cross-shard payload events (never any handles)
	sink    func(any)
	rng     *rand.Rand
	stopped bool
	// processed counts dispatched events, as a runaway guard and a
	// determinism fingerprint for tests.
	processed uint64

	// Sharded-ensemble wiring; zero/nil for a standalone kernel.
	ens    *Sharded
	id     int        // this kernel's shard index in ens
	winEnd Time       // exclusive end of the current lockstep window
	out    [][]*event // cross-shard events buffered per destination shard
}

// NewKernel creates a kernel with the given RNG seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed)), cur: DriverSrc}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic RNG.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Processed returns the number of events dispatched so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// CurrentKey returns the dispatch key of the event currently being
// dispatched. Shard-local trace buffers tag entries with it so the
// coordinator can merge them into the global dispatch order.
func (k *Kernel) CurrentKey() Key { return k.curKey }

// SetSink installs the payload consumer used by AtMsg/AfterMsg. A kernel
// serving payload events must have exactly one sink (the simulated machine's
// message-delivery entry point); installing it once avoids a closure
// allocation per scheduled message.
func (k *Kernel) SetSink(fn func(any)) { k.sink = fn }

// alloc takes an event from the free list (or the heap's garbage) and
// stamps it with the current source and that source's next sequence number.
// The sequence counter is per-kernel, which is per-source enough: every
// source schedules from exactly one kernel, so numbers stay monotone within
// a source, and the dispatch order never compares sequences across sources.
func (k *Kernel) alloc(t Time) *event {
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.src = k.cur
	ev.seq = k.seq
	ev.owner = k.cur
	ev.dead = false
	ev.k = k
	k.seq++
	return ev
}

// recycle returns a popped event to the free list. Bumping gen invalidates
// every Timer still pointing at this incarnation. Foreign (cross-shard)
// events go to the dispatching shard's xfree pool instead: nothing ever held
// a handle to them, so they may keep migrating between shards, whereas a
// local event must never leave the shard whose Timers may still point at it.
func (k *Kernel) recycle(ev *event) {
	if ev.foreign {
		ev.msg = nil
		k.xfree = append(k.xfree, ev)
		return
	}
	ev.gen++
	ev.fn = nil
	ev.msg = nil
	k.free = append(k.free, ev)
}

// At schedules fn at absolute time t (>= Now) and returns a cancellable
// handle. The event is owned by the current source, so from inside a
// handler it always lands on the caller's own shard. Scheduling in the past
// panics: it is always a simulator bug.
func (k *Kernel) At(t Time, fn func()) Timer {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, k.now))
	}
	ev := k.alloc(t)
	ev.fn = fn
	k.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn d ticks from now.
func (k *Kernel) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return k.At(k.now+d, fn)
}

// AtMsg schedules payload delivery to the sink at absolute time t, owned by
// the current source. Payload events cannot be cancelled (message transit
// is irrevocable in the machine model), which spares the Timer bookkeeping
// on the hottest schedule path.
func (k *Kernel) AtMsg(t Time, msg any) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, k.now))
	}
	ev := k.alloc(t)
	ev.msg = msg
	k.push(ev)
}

// AfterMsg schedules payload delivery d ticks from now.
func (k *Kernel) AfterMsg(d Time, msg any) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	k.AtMsg(k.now+d, msg)
}

// AtMsgTo schedules payload delivery at absolute time t owned by owner —
// the one scheduling call that may cross shards. A same-shard owner pushes
// straight onto this kernel's heap; a foreign owner's event is buffered on
// the per-pair queue and merged at the next coordinator barrier, which is
// only sound when the delivery lies at or beyond the lookahead horizon
// (the window end): violating that is a simulator bug and panics.
func (k *Kernel) AtMsgTo(t Time, owner int32, msg any) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, k.now))
	}
	if k.ens != nil {
		if dst := k.ens.home(owner); dst != k.id {
			if t < k.winEnd {
				panic(fmt.Sprintf("sim: cross-shard event at %d inside lookahead window ending %d", t, k.winEnd))
			}
			// Cross-shard events never come from the local free pool: a
			// pooled event may still be referenced by a stale Timer on this
			// shard, and handing it to another shard would make that Timer's
			// generation check race with the destination's recycling. They
			// draw from the handle-free xfree pool instead (fresh allocation
			// when it is empty), whose events migrate shard to shard with
			// every touch sequenced by a window barrier.
			var ev *event
			if n := len(k.xfree); n > 0 {
				ev = k.xfree[n-1]
				k.xfree[n-1] = nil
				k.xfree = k.xfree[:n-1]
			} else {
				ev = &event{foreign: true}
			}
			ev.at = t
			ev.src = k.cur
			ev.seq = k.seq
			ev.owner = owner
			ev.msg = msg
			ev.k = k
			ev.idx = -1
			k.seq++
			k.out[dst] = append(k.out[dst], ev)
			return
		}
	}
	ev := k.alloc(t)
	ev.owner = owner
	ev.msg = msg
	k.push(ev)
}

// Stop makes Run return after the current event completes. Pending events
// remain queued (they are simply never dispatched). Under a sharded
// ensemble the flag is honoured at the end of the lockstep window — the
// same boundary at every shard count, including one.
func (k *Kernel) Stop() { k.stopped = true }

// Pending reports the number of live (non-cancelled) queued events.
func (k *Kernel) Pending() int {
	n := 0
	for _, ev := range k.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// peek returns the earliest live event time, discarding dead heap tops.
func (k *Kernel) peek() (Time, bool) {
	for len(k.events) > 0 {
		next := k.events[0]
		if next.dead {
			k.recycle(k.pop())
			continue
		}
		return next.at, true
	}
	return 0, false
}

// less orders events by Key — a total order, since sequence numbers are
// unique within a source, so dispatch order is independent of heap shape.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// push inserts an event into the heap.
func (k *Kernel) push(ev *event) {
	ev.k = k
	k.events = append(k.events, ev)
	ev.idx = len(k.events) - 1
	k.siftUp(ev.idx)
}

// pop removes and returns the earliest event.
func (k *Kernel) pop() *event {
	h := k.events
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[0].idx = 0
	h[n] = nil
	k.events = h[:n]
	k.siftDown(0)
	ev.idx = -1
	return ev
}

// removeAt evicts the event at heap position i and recycles it.
func (k *Kernel) removeAt(i int) {
	h := k.events
	ev := h[i]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	k.events = h[:n]
	if i < n {
		h[i] = last
		last.idx = i
		k.siftDown(i)
		k.siftUp(i)
	}
	ev.idx = -1
	k.recycle(ev)
}

// The heap is 4-ary: pop-heavy workloads (every dispatched event is one
// push and one pop) spend their time in siftDown, and a wider node halves
// the tree depth — fewer cache-missing levels per sift at the price of
// more comparisons per level, which the flat event structs absorb. Because
// dispatch order is the total order Key (sequence numbers are unique within
// a source), the arity is a pure representation choice: any heap dispatches
// the same events in the same order.
const heapArity = 4

// siftUp restores the heap property upward from position i.
func (k *Kernel) siftUp(i int) {
	h := k.events
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !less(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].idx = i
		i = parent
	}
	h[i] = ev
	ev.idx = i
}

// siftDown restores the heap property downward from position i.
func (k *Kernel) siftDown(i int) {
	h := k.events
	n := len(h)
	if i >= n {
		return
	}
	ev := h[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		small := first
		for c := first + 1; c < last; c++ {
			if less(h[c], h[small]) {
				small = c
			}
		}
		if !less(h[small], ev) {
			break
		}
		h[i] = h[small]
		h[i].idx = i
		i = small
	}
	h[i] = ev
	ev.idx = i
}

// dispatch runs one popped event and recycles it. The dispatching source
// becomes the event's owner, so everything the handler schedules is
// attributed to (and stays on the shard of) the code that is running.
func (k *Kernel) dispatch(ev *event) {
	k.now = ev.at
	k.cur = ev.owner
	k.curKey = ev.key()
	fn, msg := ev.fn, ev.msg
	k.processed++
	if fn != nil {
		k.recycle(ev)
		fn()
		return
	}
	k.recycle(ev)
	k.sink(msg)
}

// Run dispatches events in Key order until the queue is empty, Stop is
// called, or maxEvents events have been processed (0 = unlimited).
// It returns the reason the loop ended.
func (k *Kernel) Run(maxEvents uint64) RunResult {
	defer func() { k.cur = DriverSrc }()
	k.stopped = false
	dispatched := uint64(0)
	for len(k.events) > 0 {
		if k.stopped {
			return RunStopped
		}
		if maxEvents > 0 && dispatched >= maxEvents {
			return RunBudgetExhausted
		}
		ev := k.pop()
		if ev.dead {
			k.recycle(ev)
			continue
		}
		if ev.at < k.now {
			panic("sim: time went backwards")
		}
		dispatched++
		k.dispatch(ev)
	}
	if k.stopped {
		return RunStopped
	}
	return RunQuiescent
}

// RunUntil dispatches events with timestamps <= deadline, then returns.
// Events beyond the deadline stay queued; Now advances to at most deadline.
// maxEvents bounds the number of dispatched events (0 = unlimited).
func (k *Kernel) RunUntil(deadline Time, maxEvents uint64) RunResult {
	defer func() { k.cur = DriverSrc }()
	k.stopped = false
	dispatched := uint64(0)
	for len(k.events) > 0 {
		if k.stopped {
			return RunStopped
		}
		if maxEvents > 0 && dispatched >= maxEvents {
			return RunBudgetExhausted
		}
		next := k.events[0]
		if next.dead {
			k.recycle(k.pop())
			continue
		}
		if next.at > deadline {
			if k.now < deadline {
				k.now = deadline
			}
			return RunDeadline
		}
		dispatched++
		k.dispatch(k.pop())
	}
	if k.now < deadline {
		k.now = deadline
	}
	if k.stopped {
		return RunStopped
	}
	return RunQuiescent
}

// runWindow dispatches every live event with at < winEnd, ignoring the stop
// flag (a lockstep window always completes; the coordinator honours stops
// at the barrier). It returns the number of events dispatched. Now is left
// at the last dispatched event; the coordinator owns inter-window time.
func (k *Kernel) runWindow(winEnd Time) uint64 {
	k.winEnd = winEnd
	dispatched := uint64(0)
	for len(k.events) > 0 {
		next := k.events[0]
		if next.dead {
			k.recycle(k.pop())
			continue
		}
		if next.at >= winEnd {
			break
		}
		dispatched++
		k.dispatch(k.pop())
	}
	k.cur = DriverSrc
	return dispatched
}

// RunResult says why a Run call returned.
type RunResult int

// Run termination reasons.
const (
	// RunQuiescent: the event queue drained completely.
	RunQuiescent RunResult = iota
	// RunStopped: Stop was called from inside an event.
	RunStopped
	// RunBudgetExhausted: maxEvents events were dispatched.
	RunBudgetExhausted
	// RunDeadline: RunUntil reached its deadline with events pending.
	RunDeadline
)

func (r RunResult) String() string {
	switch r {
	case RunQuiescent:
		return "quiescent"
	case RunStopped:
		return "stopped"
	case RunBudgetExhausted:
		return "budget-exhausted"
	case RunDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("RunResult(%d)", int(r))
	}
}
