// Package baseline implements the comparison schemes the paper positions
// functional checkpointing against:
//
//   - Periodic global checkpointing (§2, refs [3,5,15]): "virtually stop all
//     computational operations while periodic global checkpointing takes
//     place" — modeled as a coordinated stop-the-world protocol whose costs
//     (barrier synchronization, state copying, restore, lost work) are
//     derived from honestly measured machine runs. The paper argues this is
//     "potentially inefficient" for large machines; the model makes the
//     argument quantitative.
//
//   - TMR-style full replication (§5.4, Misunas): every task executed three
//     times with majority voting. This baseline runs for real on the machine
//     via §5.3 replicated task packets.
//
// The PGC baseline is a *model*, not a packet-level simulation: the paper
// itself never simulates it, and a faithful packet-level implementation
// would pin down arbitrary details the comparison does not depend on. All
// model inputs (fault-free makespan, state-size samples, detection latency)
// are measured from real runs of the same machine and workload.
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/machine"
)

// PGCParams parameterizes the periodic-global-checkpointing model.
type PGCParams struct {
	// Interval is the virtual time between global checkpoints.
	Interval int64
	// BarrierPerProc is the freeze/ack/resume coordination cost per
	// processor per checkpoint (the global synchronization the paper calls
	// "potentially inefficient" — §2). Each checkpoint stops the world for
	// BarrierPerProc × N plus the state-copy time.
	BarrierPerProc int64
	// BytePause is the stop-the-world time per 64 bytes of copied state.
	BytePause int64
	// RestoreFixed and RestorePerProc model the recovery restore phase.
	RestoreFixed, RestorePerProc int64
	// DetectLatency is the failure-detection delay before a restore can
	// begin (measure it from machine runs, or use the heartbeat bound).
	DetectLatency int64
}

// DefaultPGCParams mirror the machine's default cost scale.
func DefaultPGCParams(interval int64) PGCParams {
	return PGCParams{
		Interval:       interval,
		BarrierPerProc: 2 * (machine.DefaultMsgOverhead + machine.DefaultHopCost),
		BytePause:      1,
		RestoreFixed:   200,
		RestorePerProc: machine.DefaultMsgOverhead + machine.DefaultHopCost,
		DetectLatency:  machine.DefaultHeartbeatEvery * (machine.DefaultHeartbeatMisses + 1),
	}
}

// PGCOutcome is the modeled behaviour of PGC for one workload.
type PGCOutcome struct {
	// Checkpoints actually taken before the base run finished.
	Checkpoints int
	// PauseTotal is the accumulated stop-the-world time.
	PauseTotal int64
	// SnapshotBytes is the total state copied.
	SnapshotBytes int64
	// ControlMessages is the freeze/ack/resume traffic.
	ControlMessages int64
	// Makespan is the fault-free completion time including pauses.
	Makespan int64
	// BaseMakespan is the unmodified machine makespan (no fault tolerance).
	BaseMakespan int64
}

// Model applies the PGC protocol to a measured fault-free run. The run must
// have been executed with Config.StateProbeEvery set so state sizes are
// known over time.
func Model(params PGCParams, rep *machine.Report) (*PGCOutcome, error) {
	if params.Interval <= 0 {
		return nil, errors.New("baseline: PGC interval must be positive")
	}
	if !rep.Completed {
		return nil, errors.New("baseline: base run did not complete")
	}
	if len(rep.StateSamples) == 0 {
		return nil, errors.New("baseline: base run has no state samples; set Config.StateProbeEvery")
	}
	out := &PGCOutcome{BaseMakespan: int64(rep.Makespan)}
	n := int64(rep.Procs)
	// Walk virtual time; at each interval boundary of *base* time, charge a
	// pause proportional to the machine state at that instant.
	for t := params.Interval; t < int64(rep.Makespan); t += params.Interval {
		bytes := stateAt(rep, t)
		pause := params.BarrierPerProc*n + params.BytePause*(bytes/64)
		out.Checkpoints++
		out.PauseTotal += pause
		out.SnapshotBytes += bytes
		out.ControlMessages += 3 * n // freeze, freeze-ack, resume
	}
	out.Makespan = int64(rep.Makespan) + out.PauseTotal
	return out, nil
}

// FaultRecovery models a single crash at base-time faultAt: the machine
// halts, detects, restores the last global checkpoint, and re-executes the
// lost interval. Completion time and lost work are returned in virtual
// ticks. The model charges the re-execution at base speed (optimistically
// for PGC: no slow-down for running one processor short).
func (o *PGCOutcome) FaultRecovery(params PGCParams, faultAt int64) (completion, lostWork int64, err error) {
	if faultAt <= 0 || faultAt >= o.BaseMakespan {
		return 0, 0, fmt.Errorf("baseline: fault time %d outside run (0, %d)", faultAt, o.BaseMakespan)
	}
	lastCkpt := (faultAt / params.Interval) * params.Interval
	lostWork = faultAt - lastCkpt
	restore := params.RestoreFixed + params.RestorePerProc*int64(o.Checkpoints) // state redistribution
	// Timeline: run to faultAt (with pauses accrued so far), detect,
	// restore, then re-execute from lastCkpt to the end (with the remaining
	// pauses).
	pausesBefore := (faultAt / params.Interval) * avg(o.PauseTotal, int64(o.Checkpoints))
	completion = faultAt + pausesBefore + params.DetectLatency + restore +
		(o.BaseMakespan - lastCkpt) + (o.PauseTotal - pausesBefore)
	return completion, lostWork, nil
}

func avg(total, n int64) int64 {
	if n == 0 {
		return 0
	}
	return total / n
}

// stateAt interpolates the snapshot size at base time t from the probes.
func stateAt(rep *machine.Report, t int64) int64 {
	best := int64(0)
	for _, s := range rep.StateSamples {
		if int64(s.Time) <= t {
			best = s.Bytes
		} else {
			break
		}
	}
	return best
}

// ReplicateAll builds the §5.4 TMR configuration: every function of the
// program runs with the given replication degree (3 for classic TMR).
func ReplicateAll(fns []string, degree int) map[string]int {
	out := make(map[string]int, len(fns))
	for _, fn := range fns {
		out[fn] = degree
	}
	return out
}
