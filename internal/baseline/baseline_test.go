package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

// fakeReport builds a synthetic completed report with a linear state ramp.
func fakeReport(makespan int64, procs int) *machine.Report {
	rep := &machine.Report{Completed: true, Makespan: sim.Time(makespan), Procs: procs}
	for t := int64(100); t < makespan; t += 100 {
		rep.StateSamples = append(rep.StateSamples, machine.StateSample{
			Time: sim.Time(t), Tasks: int(t / 10), Bytes: t * 8,
		})
	}
	return rep
}

func TestModelValidation(t *testing.T) {
	rep := fakeReport(10_000, 8)
	if _, err := Model(PGCParams{Interval: 0}, rep); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := Model(DefaultPGCParams(1000), &machine.Report{}); err == nil {
		t.Error("incomplete run accepted")
	}
	noSamples := &machine.Report{Completed: true, Makespan: 1000, Procs: 4}
	if _, err := Model(DefaultPGCParams(100), noSamples); err == nil {
		t.Error("run without samples accepted")
	}
}

func TestModelCheckpointCount(t *testing.T) {
	rep := fakeReport(10_000, 8)
	out, err := Model(DefaultPGCParams(1000), rep)
	if err != nil {
		t.Fatal(err)
	}
	if out.Checkpoints != 9 { // at 1000, 2000, ... 9000
		t.Fatalf("checkpoints = %d, want 9", out.Checkpoints)
	}
	if out.PauseTotal <= 0 || out.SnapshotBytes <= 0 {
		t.Fatalf("pause=%d bytes=%d", out.PauseTotal, out.SnapshotBytes)
	}
	if out.Makespan != out.BaseMakespan+out.PauseTotal {
		t.Fatalf("makespan accounting wrong: %d vs %d+%d", out.Makespan, out.BaseMakespan, out.PauseTotal)
	}
	if out.ControlMessages != int64(9*3*8) {
		t.Fatalf("control messages = %d", out.ControlMessages)
	}
}

func TestModelIntervalTradeoff(t *testing.T) {
	// Short intervals mean more pause overhead; long intervals mean more
	// lost work on a fault. Both directions must hold in the model.
	rep := fakeReport(50_000, 16)
	short, err := Model(DefaultPGCParams(1_000), rep)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Model(DefaultPGCParams(10_000), rep)
	if err != nil {
		t.Fatal(err)
	}
	if short.PauseTotal <= long.PauseTotal {
		t.Errorf("short-interval pause %d should exceed long-interval pause %d",
			short.PauseTotal, long.PauseTotal)
	}
	p := DefaultPGCParams(1_000)
	_, lostShort, err := short.FaultRecovery(p, 25_500)
	if err != nil {
		t.Fatal(err)
	}
	pl := DefaultPGCParams(10_000)
	_, lostLong, err := long.FaultRecovery(pl, 25_500)
	if err != nil {
		t.Fatal(err)
	}
	if lostShort >= lostLong {
		t.Errorf("lost work: short interval %d should be below long interval %d", lostShort, lostLong)
	}
}

func TestFaultRecoveryBounds(t *testing.T) {
	rep := fakeReport(10_000, 8)
	p := DefaultPGCParams(1000)
	out, err := Model(p, rep)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := out.FaultRecovery(p, -1); err == nil {
		t.Error("negative fault time accepted")
	}
	if _, _, err := out.FaultRecovery(p, 20_000); err == nil {
		t.Error("fault after completion accepted")
	}
	completion, lost, err := out.FaultRecovery(p, 5_500)
	if err != nil {
		t.Fatal(err)
	}
	if lost != 500 {
		t.Errorf("lost work = %d, want 500 (fault at 5500, ckpt at 5000)", lost)
	}
	if completion <= out.BaseMakespan {
		t.Errorf("completion %d not beyond base %d", completion, out.BaseMakespan)
	}
}

func TestModelOnRealRun(t *testing.T) {
	// End-to-end: run the real machine with state probes, model PGC on it.
	w, err := core.StandardWorkload("fib:12")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Procs: 8, Recovery: "none", Seed: 3,
		Raw: &machine.Config{StateProbeEvery: 50},
	}
	rep, err := cfg.Verify(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sim.StateSamples) == 0 {
		t.Fatal("no state samples collected")
	}
	out, err := Model(DefaultPGCParams(int64(rep.Makespan)/10), rep.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if out.Checkpoints < 5 || out.Checkpoints > 15 {
		t.Errorf("checkpoints = %d, want ~9", out.Checkpoints)
	}
	if out.Makespan <= out.BaseMakespan {
		t.Error("PGC pauses did not extend the makespan")
	}
}

func TestReplicateAll(t *testing.T) {
	m := ReplicateAll([]string{"f", "g"}, 3)
	if len(m) != 2 || m["f"] != 3 || m["g"] != 3 {
		t.Fatalf("ReplicateAll = %v", m)
	}
}
