package trace

import (
	"strings"
	"testing"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(Event{Kind: KSpawn}) // must not panic
	if got := l.Filter(KSpawn); got != nil {
		t.Fatalf("nil log Filter = %v", got)
	}
	if l.Count(KSpawn) != 0 {
		t.Fatal("nil log Count != 0")
	}
	if l.String() != "" {
		t.Fatal("nil log String != empty")
	}
}

func TestLogAddFilterCount(t *testing.T) {
	l := NewLog(0)
	l.Add(Event{Time: 1, Kind: KSpawn, Task: "1"})
	l.Add(Event{Time: 2, Kind: KFail, Proc: 3})
	l.Add(Event{Time: 3, Kind: KSpawn, Task: "1.0"})
	if l.Count(KSpawn) != 2 || l.Count(KFail) != 1 || l.Count(KAbort) != 0 {
		t.Fatalf("counts wrong: %v", l.Events)
	}
	sp := l.Filter(KSpawn)
	if len(sp) != 2 || sp[0].Task != "1" || sp[1].Task != "1.0" {
		t.Fatalf("Filter = %v", sp)
	}
}

func TestLogLimit(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Add(Event{Time: int64(i), Kind: KStart})
	}
	if len(l.Events) != 2 {
		t.Fatalf("limited log has %d events", len(l.Events))
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 42, Proc: 2, Kind: KTwin, Task: "1.0", Note: "for B2"}
	s := e.String()
	for _, want := range []string{"42", "twin", "1.0", "for B2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q missing %q", s, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := KSpawn; k <= KRootDone; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if !strings.HasPrefix(Kind(999).String(), "Kind(") {
		t.Error("unknown kind should use fallback rendering")
	}
}

func TestMetricsAddAndTotal(t *testing.T) {
	a := &Metrics{MsgTask: 2, MsgResult: 3, TasksSpawned: 5, BytesOnWire: 100}
	b := &Metrics{MsgTask: 1, MsgHeartbeat: 7, Checkpoints: 4}
	a.Add(b)
	if a.MsgTask != 3 || a.MsgHeartbeat != 7 || a.Checkpoints != 4 || a.TasksSpawned != 5 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if got := a.TotalMessages(); got != 3+3+7 {
		t.Fatalf("TotalMessages = %d", got)
	}
}

func TestMetricsRowsOmitZeros(t *testing.T) {
	m := &Metrics{MsgTask: 1, Twins: 2}
	rows := m.Rows()
	if len(rows) != 2 {
		t.Fatalf("Rows = %v", rows)
	}
	s := m.String()
	if !strings.Contains(s, "msg.task") || !strings.Contains(s, "recover.twins") {
		t.Fatalf("String = %q", s)
	}
	if strings.Contains(s, "vote.count") {
		t.Fatal("zero counter rendered")
	}
}

func TestMetricsAddCoversEveryField(t *testing.T) {
	// Fill every field with 1 and verify Add doubles all of them; this
	// catches forgotten fields when the struct grows.
	ones := func() *Metrics {
		return &Metrics{
			MsgTask: 1, MsgTaskAck: 1, MsgResult: 1, MsgResultAck: 1,
			MsgGrand: 1, MsgAbort: 1, MsgFault: 1, MsgHeartbeat: 1,
			MsgLoad: 1, MsgControl: 1, BytesOnWire: 1, HopsOnWire: 1,
			TasksSpawned: 1, TasksCompleted: 1, TasksAborted: 1,
			TasksLost: 1, TasksLeaked: 1, StepsExecuted: 1, StepsWasted: 1,
			Checkpoints: 1, CheckpointBytes: 1, Reissues: 1, Suppressed: 1,
			Twins: 1, OrphanResults: 1, Relayed: 1, Prefills: 1, Stranded: 1,
			DupResults: 1, LateResults: 1, Votes: 1, VoteMismatches: 1,
			Snapshots: 1, SnapshotBytes: 1, Restores: 1, Failures: 1,
			Detections: 1, DetectLatencySum: 1, FirstDetections: 1,
		}
	}
	m := ones()
	m.Add(ones())
	if m.MsgTask != 2 || m.FirstDetections != 2 || m.DetectLatencySum != 2 ||
		m.Restores != 2 || m.Stranded != 2 || m.HopsOnWire != 2 {
		t.Fatalf("Add missed fields: %+v", m)
	}
}
