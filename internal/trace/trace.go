// Package trace records what the simulated machine does: a structured event
// log for scenario tests (which must observe, e.g., that task B5 was *not*
// reissued — §3's "not fruitful" case) and aggregate metrics for the
// benchmark harness (message counts and bytes, task accounting, checkpoint
// storage, recovery latencies).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies events.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	KSpawn        Kind = iota // parent created a task packet (DEMAND_IT)
	KPlace                    // task settled on a processor
	KStart                    // processor began executing a task pass
	KBlock                    // task suspended waiting for child results
	KComplete                 // task reduced to a value
	KResult                   // result delivered to parent
	KDupResult                // duplicate result ignored (Figure 5 cases 6/7)
	KLateResult               // result for an unknown task discarded (case 8)
	KCheckpoint               // functional checkpoint recorded
	KCkptRelease              // checkpoint released after child completion
	KFail                     // processor failed
	KDetect                   // a processor learned of a failure
	KReissue                  // rollback: topmost checkpoint reissued
	KSuppress                 // rollback: shadowed checkpoint not reissued
	KAbort                    // task aborted (orphan / doomed subtree)
	KTwin                     // splice: twin (step-parent) task created
	KOrphanResult             // splice: orphan result forwarded to ancestor
	KRelay                    // splice: ancestor relayed orphan result to twin
	KPrefill                  // splice: twin consumed an inherited result without spawning
	KStrand                   // splice: orphan had no live ancestor (stranded)
	KVote                     // redundancy: majority vote decided
	KVoteMismatch             // redundancy: corrupt value outvoted
	KSnapshot                 // baseline: global checkpoint taken
	KRestore                  // baseline: global state restored
	KRootDone                 // the program's answer reached the super-root
	KDemandQueue              // incremental: lost checkpoint queued for paced reissue
)

var kindNames = map[Kind]string{
	KSpawn: "spawn", KPlace: "place", KStart: "start", KBlock: "block",
	KComplete: "complete", KResult: "result", KDupResult: "dup-result",
	KLateResult: "late-result", KCheckpoint: "checkpoint",
	KCkptRelease: "ckpt-release", KFail: "fail", KDetect: "detect",
	KReissue: "reissue", KSuppress: "suppress", KAbort: "abort",
	KTwin: "twin", KOrphanResult: "orphan-result", KRelay: "relay",
	KPrefill: "prefill", KStrand: "strand", KVote: "vote",
	KVoteMismatch: "vote-mismatch", KSnapshot: "snapshot",
	KRestore: "restore", KRootDone: "root-done",
	KDemandQueue: "demand-queue",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded occurrence.
type Event struct {
	Time int64  // virtual time
	Proc int32  // processor where it happened (-1 = super-root/host)
	Kind Kind   //
	Task string // stamp text of the task concerned, if any
	Note string // free-form detail
}

func (e Event) String() string {
	return fmt.Sprintf("t=%-8d p=%-3d %-13s %-14s %s", e.Time, e.Proc, e.Kind, e.Task, e.Note)
}

// Log collects events. A nil *Log is valid and records nothing, so the
// machine can run with tracing disabled at zero cost.
type Log struct {
	Events []Event
	limit  int
}

// NewLog creates a log capped at limit events (0 = unlimited).
func NewLog(limit int) *Log { return &Log{limit: limit} }

// Add appends an event if the log is non-nil and under its cap.
func (l *Log) Add(e Event) {
	if l == nil {
		return
	}
	if l.limit > 0 && len(l.Events) >= l.limit {
		return
	}
	l.Events = append(l.Events, e)
}

// Filter returns the events of the given kind, in order.
func (l *Log) Filter(k Kind) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.Events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of events of kind k.
func (l *Log) Count(k Kind) int { return len(l.Filter(k)) }

// String renders the whole log, one event per line.
func (l *Log) String() string {
	if l == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range l.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Metrics aggregates counters across a run. All fields are plain integers
// so Merge and diffing stay trivial.
type Metrics struct {
	// Messages by category.
	MsgTask      int64 // task packets sent (incl. migration hops)
	MsgTaskAck   int64 // placement acknowledgements
	MsgResult    int64 // result packets parent-ward
	MsgResultAck int64 // result acknowledgements
	MsgGrand     int64 // orphan results sent to ancestors (splice)
	MsgAbort     int64 // abort/kill packets
	MsgFault     int64 // failure announcements
	MsgHeartbeat int64 // heartbeats + probes
	MsgLoad      int64 // gradient-model load exchanges
	MsgControl   int64 // baseline freeze/resume/snapshot control
	BytesOnWire  int64 // payload bytes of all of the above
	HopsOnWire   int64 // Σ hop counts of all messages

	// Task lifecycle.
	TasksSpawned   int64 // packets created, incl. reissues/twins/replicas
	TasksCompleted int64 // reduced to a value
	TasksAborted   int64 // orphaned or killed
	TasksLost      int64 // resident on a processor when it failed
	TasksLeaked    int64 // still resident at end of run
	StepsExecuted  int64 // reduction steps performed
	StepsWasted    int64 // steps by tasks that later aborted or were lost

	// Checkpointing.
	Checkpoints     int64 // functional checkpoints recorded
	CheckpointBytes int64 // peak retained checkpoint storage, bytes
	Reissues        int64 // rollback reissues
	PacedReissues   int64 // incremental: reissues that went through the paced queue
	Suppressed      int64 // shadowed checkpoints skipped (topmost rule)
	Twins           int64 // splice twins created
	OrphanResults   int64 // orphan results forwarded to ancestors
	Relayed         int64 // orphan results relayed to twins
	Prefills        int64 // twin demands satisfied from inherited results
	Stranded        int64 // orphans with no live ancestor
	DupResults      int64 // duplicate results ignored
	LateResults     int64 // results for unknown tasks discarded

	// Redundancy.
	Votes          int64 // majority votes decided
	VoteMismatches int64 // corrupt values outvoted

	// Baseline global checkpointing.
	Snapshots     int64 // global snapshots taken
	SnapshotBytes int64 // Σ bytes of snapshots
	Restores      int64 // global restores performed

	// Failure handling.
	Failures         int64 // processor failures injected
	Detections       int64 // distinct (observer, failed) detections
	DetectLatencySum int64 // Σ (detect time − fail time) over first detections
	FirstDetections  int64 // number of first detections (for the average)
}

// Add accumulates counters from another Metrics.
func (m *Metrics) Add(o *Metrics) {
	m.MsgTask += o.MsgTask
	m.MsgTaskAck += o.MsgTaskAck
	m.MsgResult += o.MsgResult
	m.MsgResultAck += o.MsgResultAck
	m.MsgGrand += o.MsgGrand
	m.MsgAbort += o.MsgAbort
	m.MsgFault += o.MsgFault
	m.MsgHeartbeat += o.MsgHeartbeat
	m.MsgLoad += o.MsgLoad
	m.MsgControl += o.MsgControl
	m.BytesOnWire += o.BytesOnWire
	m.HopsOnWire += o.HopsOnWire
	m.TasksSpawned += o.TasksSpawned
	m.TasksCompleted += o.TasksCompleted
	m.TasksAborted += o.TasksAborted
	m.TasksLost += o.TasksLost
	m.TasksLeaked += o.TasksLeaked
	m.StepsExecuted += o.StepsExecuted
	m.StepsWasted += o.StepsWasted
	m.Checkpoints += o.Checkpoints
	m.CheckpointBytes += o.CheckpointBytes
	m.Reissues += o.Reissues
	m.PacedReissues += o.PacedReissues
	m.Suppressed += o.Suppressed
	m.Twins += o.Twins
	m.OrphanResults += o.OrphanResults
	m.Relayed += o.Relayed
	m.Prefills += o.Prefills
	m.Stranded += o.Stranded
	m.DupResults += o.DupResults
	m.LateResults += o.LateResults
	m.Votes += o.Votes
	m.VoteMismatches += o.VoteMismatches
	m.Snapshots += o.Snapshots
	m.SnapshotBytes += o.SnapshotBytes
	m.Restores += o.Restores
	m.Failures += o.Failures
	m.Detections += o.Detections
	m.DetectLatencySum += o.DetectLatencySum
	m.FirstDetections += o.FirstDetections
}

// TotalMessages sums every message counter.
func (m *Metrics) TotalMessages() int64 {
	return m.MsgTask + m.MsgTaskAck + m.MsgResult + m.MsgResultAck +
		m.MsgGrand + m.MsgAbort + m.MsgFault + m.MsgHeartbeat +
		m.MsgLoad + m.MsgControl
}

// Rows renders the metrics as sorted "name value" rows for reports,
// omitting zero counters to keep tables focused.
func (m *Metrics) Rows() []string {
	items := []struct {
		name string
		v    int64
	}{
		{"msg.task", m.MsgTask}, {"msg.task-ack", m.MsgTaskAck},
		{"msg.result", m.MsgResult}, {"msg.result-ack", m.MsgResultAck},
		{"msg.grand", m.MsgGrand}, {"msg.abort", m.MsgAbort},
		{"msg.fault", m.MsgFault}, {"msg.heartbeat", m.MsgHeartbeat},
		{"msg.load", m.MsgLoad}, {"msg.control", m.MsgControl},
		{"bytes.wire", m.BytesOnWire}, {"hops.wire", m.HopsOnWire},
		{"tasks.spawned", m.TasksSpawned}, {"tasks.completed", m.TasksCompleted},
		{"tasks.aborted", m.TasksAborted}, {"tasks.lost", m.TasksLost},
		{"tasks.leaked", m.TasksLeaked},
		{"steps.executed", m.StepsExecuted}, {"steps.wasted", m.StepsWasted},
		{"ckpt.count", m.Checkpoints}, {"ckpt.bytes", m.CheckpointBytes},
		{"recover.reissues", m.Reissues}, {"recover.paced", m.PacedReissues},
		{"recover.suppressed", m.Suppressed},
		{"recover.twins", m.Twins}, {"recover.orphan-results", m.OrphanResults},
		{"recover.relayed", m.Relayed}, {"recover.prefills", m.Prefills},
		{"recover.stranded", m.Stranded},
		{"results.dup", m.DupResults}, {"results.late", m.LateResults},
		{"vote.count", m.Votes}, {"vote.mismatch", m.VoteMismatches},
		{"global.snapshots", m.Snapshots}, {"global.snapshot-bytes", m.SnapshotBytes},
		{"global.restores", m.Restores},
		{"fault.failures", m.Failures}, {"fault.detections", m.Detections},
	}
	var out []string
	for _, it := range items {
		if it.v != 0 {
			out = append(out, fmt.Sprintf("%-24s %d", it.name, it.v))
		}
	}
	sort.Strings(out)
	return out
}

// String renders the non-zero counters, one per line.
func (m *Metrics) String() string { return strings.Join(m.Rows(), "\n") }
