package runner

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// twoBackendRegistry holds one sim-only and one live-only artifact.
func twoBackendRegistry() *Registry {
	tbl := func(id string) func(int64) (*experiments.Table, error) {
		return func(seed int64) (*experiments.Table, error) {
			return &experiments.Table{ID: id, Columns: []string{"m"},
				Rows: [][]experiments.Cell{{experiments.Int(seed)}}}, nil
		}
	}
	reg := NewRegistry()
	reg.MustRegister(Experiment{ID: "SIMONLY", Kind: KindTable, Table: tbl("SIMONLY")})
	reg.MustRegister(Experiment{ID: "LIVEONLY", Kind: KindTable, Table: tbl("LIVEONLY"),
		Backends: []string{"live"}})
	return reg
}

func TestExperimentSupports(t *testing.T) {
	e := Experiment{ID: "X"}
	if !e.Supports("") || !e.Supports("sim") || e.Supports("live") {
		t.Fatal("nil Backends must mean sim-only")
	}
	e.Backends = []string{"live", "sim"}
	if !e.Supports("live") || !e.Supports("sim") {
		t.Fatal("declared backends not honored")
	}
}

func TestEngineSkipsUnsupportedBackend(t *testing.T) {
	reg := twoBackendRegistry()
	// Default (sim) backend: the live-only artifact renders a skip note.
	results, err := reg.RunIDs("all", Options{Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Skipped != "" || len(results[0].Tables) != 1 {
		t.Fatalf("sim artifact should run: %+v", results[0])
	}
	if results[1].Skipped == "" || results[1].Tables != nil || results[1].Err != nil {
		t.Fatalf("live artifact should be skipped: %+v", results[1])
	}
	if md := results[1].Markdown(); !strings.Contains(md, "backend") || !strings.Contains(md, "LIVEONLY") {
		t.Fatalf("skip markdown = %q", md)
	}
	// Live backend: roles reverse.
	results, err = reg.RunIDs("all", Options{Seeds: []int64{1}, Backend: "live"})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Skipped == "" {
		t.Fatalf("sim artifact should be skipped on live: %+v", results[0])
	}
	if results[1].Skipped != "" || len(results[1].Tables) != 1 {
		t.Fatalf("live artifact should run on live: %+v", results[1])
	}
	// Multi-seed runs must not try to aggregate skipped artifacts.
	results, err = reg.RunIDs("all", Options{Seeds: SeedRange(1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Summary != nil || results[1].Err != nil {
		t.Fatalf("skipped artifact aggregated: %+v", results[1])
	}
	if results[0].Summary == nil {
		t.Fatal("running artifact lost its aggregate")
	}
}

// pairTables builds per-seed tables shaped like a sweep (plan, scheme,
// metric) where comparing against row 0 misstates the A-vs-B question.
func pairTables(seeds []int64) []*experiments.Table {
	var out []*experiments.Table
	for range seeds {
		tb := &experiments.Table{
			ID: "P", Columns: []string{"plan", "scheme", "metric"},
			Rows: [][]experiments.Cell{
				{experiments.Str("plan-a"), experiments.Str("rollback"), experiments.Int(100)},
				{experiments.Str("plan-a"), experiments.Str("splice"), experiments.Int(50)},
				{experiments.Str("plan-b"), experiments.Str("rollback"), experiments.Int(1000)},
				{experiments.Str("plan-b"), experiments.Str("splice"), experiments.Int(400)},
			},
		}
		tb.Pair(0, 1).Pair(2, 3)
		out = append(out, tb)
	}
	return out
}

func TestPairedEffects(t *testing.T) {
	seeds := []int64{1, 2, 3}
	sum, err := Aggregate(seeds, pairTables(seeds))
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Paired {
		t.Fatal("summary not marked paired")
	}
	if len(sum.Effects) != 2 {
		t.Fatalf("effects = %d, want 2 (one per pair)", len(sum.Effects))
	}
	// Pair 1: splice 50 vs rollback 100 at plan-a → −50%, significant.
	e := sum.Effects[0]
	if e.Context != "plan-a" || e.Label != "splice" || e.Baseline != "rollback" {
		t.Fatalf("pair labels = %q/%q/%q", e.Context, e.Label, e.Baseline)
	}
	if e.Class != EffectSignificant || e.Mean > -0.49 || e.Mean < -0.51 {
		t.Fatalf("pair 1 effect = %+v", e)
	}
	// Pair 2: splice 400 vs rollback 1000 at plan-b → −60%. A row-0 baseline
	// would have called row 3 a +300% regression — the misstatement explicit
	// pairing exists to fix.
	if e2 := sum.Effects[1]; e2.Context != "plan-b" || e2.Mean > -0.59 || e2.Mean < -0.61 {
		t.Fatalf("pair 2 effect = %+v", e2)
	}
	md := sum.Markdown()
	if !strings.Contains(md, "Paired effects") || !strings.Contains(md, "plan-a: splice vs rollback") {
		t.Fatalf("paired markdown missing labels:\n%s", md)
	}
	// Bad pair indices must fail the aggregate, not panic.
	bad := pairTables(seeds)
	bad[0].Pairs = [][2]int{{0, 9}}
	if _, err := Aggregate(seeds, bad); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad pairing error = %v", err)
	}
}

// TestNoEffectsSuppressesClassification covers tables whose rows are
// independent measurements (L1's per-workload parity rows): no baseline
// exists, so no effect lines may be fabricated.
func TestNoEffectsSuppressesClassification(t *testing.T) {
	seeds := []int64{1, 2}
	tables := pairTables(seeds)
	for _, tb := range tables {
		tb.Pairs = nil
		tb.NoEffects = true
	}
	sum, err := Aggregate(seeds, tables)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Effects) != 0 || sum.Paired {
		t.Fatalf("NoEffects table still classified: %+v", sum.Effects)
	}
	if md := sum.Markdown(); strings.Contains(md, "Effects") {
		t.Fatalf("NoEffects markdown renders an effects block:\n%s", md)
	}
}

// TestUnpairedEffectsUnchanged pins the default row-0 baseline path: tables
// without explicit pairings classify exactly as before the pairing feature.
func TestUnpairedEffectsUnchanged(t *testing.T) {
	seeds := []int64{1, 2}
	tables := pairTables(seeds)
	for _, tb := range tables {
		tb.Pairs = nil
	}
	sum, err := Aggregate(seeds, tables)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Paired {
		t.Fatal("unpaired summary marked paired")
	}
	if len(sum.Effects) != 3 {
		t.Fatalf("effects = %d, want 3 (rows 1..3 vs row 0)", len(sum.Effects))
	}
	for i, e := range sum.Effects {
		if e.Baseline != "plan-a rollback" || e.Row != i+1 || e.Context != "" {
			t.Fatalf("effect %d = %+v, want row-0 baseline", i, e)
		}
	}
	if md := sum.Markdown(); strings.Contains(md, "Paired effects") {
		t.Fatal("unpaired markdown used the paired header")
	}
}
