package runner

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/experiments"
)

// EffectClass buckets a per-seed effect size per the experiment standards:
// confirmed only when the direction and magnitude hold in every seed.
type EffectClass string

const (
	// EffectSignificant: >20% in the same direction in every seed.
	EffectSignificant EffectClass = "significant"
	// EffectSuggestive: consistent direction, ≥10% everywhere, but not
	// clearing the 20% bar in every seed.
	EffectSuggestive EffectClass = "suggestive"
	// EffectInconclusive: <10% in some seed or direction flips.
	EffectInconclusive EffectClass = "inconclusive"
	// EffectEquivalent: within 5% in every seed.
	EffectEquivalent EffectClass = "equivalent"
)

// Classify applies the effect-size thresholds to per-seed relative deltas
// ((candidate−baseline)/baseline): within 5% everywhere is equivalent; >20%
// everywhere in one direction is significant; <10% in any seed or a
// direction flip is inconclusive; the rest is suggestive.
func Classify(deltas []float64) EffectClass {
	if len(deltas) == 0 {
		return EffectInconclusive
	}
	equivalent, significant, inconclusive := true, true, false
	pos, neg := false, false
	for _, d := range deltas {
		a := math.Abs(d)
		if a > 0.05 {
			equivalent = false
		}
		if a <= 0.20 {
			significant = false
		}
		if a < 0.10 {
			inconclusive = true
		}
		if d > 0 {
			pos = true
		}
		if d < 0 {
			neg = true
		}
	}
	switch {
	case equivalent:
		return EffectEquivalent
	case pos && neg, inconclusive:
		return EffectInconclusive
	case significant:
		return EffectSignificant
	default:
		return EffectSuggestive
	}
}

// AggCell summarizes one table cell across seeds: labels keep their text,
// measurements get mean/min/max plus the per-seed values for transparency.
type AggCell struct {
	Text    string
	IsNum   bool
	Mean    float64
	Min     float64
	Max     float64
	PerSeed []float64
	// Fmt is the source cells' format hint, so the aggregate renders in
	// the same unit as the per-seed tables (percents stay percents).
	Fmt string
}

// MarshalJSON emits the full statistics for measurements (zero means and
// minima included — omitting them would misreport all-zero columns) and
// just the text for labels.
func (c AggCell) MarshalJSON() ([]byte, error) {
	if c.IsNum {
		return json.Marshal(struct {
			IsNum   bool      `json:"is_num"`
			Mean    float64   `json:"mean"`
			Min     float64   `json:"min"`
			Max     float64   `json:"max"`
			PerSeed []float64 `json:"per_seed"`
			Fmt     string    `json:"fmt,omitempty"`
		}{true, c.Mean, c.Min, c.Max, c.PerSeed, c.Fmt})
	}
	return json.Marshal(struct {
		IsNum bool   `json:"is_num"`
		Text  string `json:"text"`
	}{false, c.Text})
}

// Fold summarizes raw per-seed values into an AggCell, for callers (like
// the examples) that aggregate measurements outside a Table. Set Fmt on
// the result to render in a specific unit.
func Fold(xs []float64) AggCell {
	agg := AggCell{IsNum: true, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		agg.PerSeed = append(agg.PerSeed, x)
		sum += x
		agg.Min = math.Min(agg.Min, x)
		agg.Max = math.Max(agg.Max, x)
	}
	if len(xs) > 0 {
		agg.Mean = sum / float64(len(xs))
	} else {
		agg.Min, agg.Max = 0, 0
	}
	return agg
}

// String renders a measurement as "mean [min–max]" (collapsing to the bare
// mean when all seeds agree) and a label as its text. Values render through
// the source cells' own format, so a "+6.1%" column aggregates as
// "+6.3% [+5.9%–+6.8%]", not as raw fractions.
func (c AggCell) String() string {
	if !c.IsNum {
		return c.Text
	}
	render := experiments.Cell{Fmt: c.Fmt}.RenderNum
	if c.Min == c.Max {
		return render(c.Mean)
	}
	return fmt.Sprintf("%s [%s–%s]", render(c.Mean), render(c.Min), render(c.Max))
}

// Effect is one baseline-relative comparison: the row's metric against the
// baseline row's, per seed, with its classification.
type Effect struct {
	Column   string `json:"column"`
	Row      int    `json:"row"`
	Label    string `json:"label"`    // the candidate row's label
	Baseline string `json:"baseline"` // the baseline row's label
	// Context, for paired effects, is the shared sweep point both rows
	// describe (e.g. the fault plan), so Label/Baseline can name just the
	// cells that differ (e.g. "splice" vs "rollback").
	Context string      `json:"context,omitempty"`
	Deltas  []float64   `json:"deltas"` // per seed, (row−baseline)/baseline
	Mean    float64     `json:"mean"`
	Class   EffectClass `json:"class"`
}

// Summary aggregates one experiment's tables across seeds.
type Summary struct {
	ID      string      `json:"id"`
	Title   string      `json:"title"`
	Claim   string      `json:"claim"`
	Seeds   []int64     `json:"seeds"`
	Columns []string    `json:"columns"`
	Rows    [][]AggCell `json:"rows"`
	Effects []Effect    `json:"effects,omitempty"`
	// Paired is true when the table declared explicit A-vs-B row pairings,
	// so Effects compare true counterparts instead of row 0.
	Paired  bool   `json:"paired,omitempty"`
	Finding string `json:"finding,omitempty"`
}

// Aggregate folds the per-seed tables of one experiment (tables[i] ran at
// seeds[i]) into a Summary. Tables must agree on shape; numeric cells must
// stay numeric in every seed. Label cells whose text varies by seed (e.g. a
// derived interval in a row name) render as a "/"-joined list.
func Aggregate(seeds []int64, tables []*experiments.Table) (*Summary, error) {
	if len(tables) == 0 || len(seeds) != len(tables) {
		return nil, fmt.Errorf("runner: aggregate needs one table per seed (%d tables, %d seeds)",
			len(tables), len(seeds))
	}
	first := tables[0]
	for i, tb := range tables {
		if tb.ID != first.ID || len(tb.Columns) != len(first.Columns) || len(tb.Rows) != len(first.Rows) {
			return nil, fmt.Errorf("runner: %s: seed %d table shape differs", first.ID, seeds[i])
		}
	}
	s := &Summary{
		ID: first.ID, Title: first.Title, Claim: first.Claim, Finding: first.Finding,
		Seeds:   append([]int64(nil), seeds...),
		Columns: append([]string(nil), first.Columns...),
	}
	for ri := range first.Rows {
		row := make([]AggCell, len(first.Rows[ri]))
		for ci := range first.Rows[ri] {
			agg, err := aggregateCell(seeds, tables, ri, ci)
			if err != nil {
				return nil, err
			}
			row[ci] = agg
		}
		s.Rows = append(s.Rows, row)
	}
	if first.NoEffects {
		return s, nil
	}
	if len(first.Pairs) > 0 {
		for _, p := range first.Pairs {
			if p[0] < 0 || p[0] >= len(s.Rows) || p[1] < 0 || p[1] >= len(s.Rows) {
				return nil, fmt.Errorf("runner: %s: pairing %v out of range (rows %d)",
					first.ID, p, len(s.Rows))
			}
		}
		s.Paired = true
		s.Effects = pairedEffects(s, first.Pairs)
	} else {
		s.Effects = baselineEffects(s)
	}
	return s, nil
}

// aggregateCell folds position (ri, ci) across every seed's table. A cell
// numeric in every seed aggregates; anything else — labels, or a cell that
// is a measurement at one seed and a Dash at another (e.g. a slowdown
// column when completion varies by seed) — degrades to the distinct
// per-seed texts instead of failing the whole artifact.
func aggregateCell(seeds []int64, tables []*experiments.Table, ri, ci int) (AggCell, error) {
	first := tables[0]
	allNum := true
	for ti, tb := range tables {
		if len(tb.Rows[ri]) != len(first.Rows[ri]) {
			return AggCell{}, fmt.Errorf("runner: %s: ragged row %d at seed %d", first.ID, ri, seeds[ti])
		}
		if !tb.Rows[ri][ci].IsNum {
			allNum = false
		}
	}
	if allNum {
		agg := AggCell{IsNum: true, Fmt: first.Rows[ri][ci].Fmt, Min: math.Inf(1), Max: math.Inf(-1)}
		var sum float64
		for _, tb := range tables {
			c := tb.Rows[ri][ci]
			if c.Fmt != agg.Fmt { // mixed units fall back to bare numbers
				agg.Fmt = ""
			}
			agg.PerSeed = append(agg.PerSeed, c.Num)
			sum += c.Num
			agg.Min = math.Min(agg.Min, c.Num)
			agg.Max = math.Max(agg.Max, c.Num)
		}
		agg.Mean = sum / float64(len(tables))
		return agg, nil
	}
	// Label (or mixed) cell: collect the distinct texts in seed order.
	var texts []string
	seen := map[string]bool{}
	for _, tb := range tables {
		c := tb.Rows[ri][ci]
		if !seen[c.Text] {
			seen[c.Text] = true
			texts = append(texts, c.Text)
		}
	}
	return AggCell{Text: strings.Join(texts, " / ")}, nil
}

// baselineEffects classifies every numeric column of every non-first row
// against row 0 — the conventional baseline position in the report tables.
func baselineEffects(s *Summary) []Effect {
	if len(s.Rows) < 2 {
		return nil
	}
	var out []Effect
	for ri := 1; ri < len(s.Rows); ri++ {
		out = append(out, rowEffects(s, 0, ri)...)
	}
	return out
}

// pairedEffects classifies each declared candidate row against its declared
// baseline row — the A-vs-B comparison sweep tables encode (e.g. splice vs
// rollback at the same fault plan), which a fixed row-0 baseline misstates.
// Effect labels name the cells where the pair differs (the A and the B),
// with the shared sweep point as context.
func pairedEffects(s *Summary, pairs [][2]int) []Effect {
	var out []Effect
	for _, p := range pairs {
		context, baseLabel, candLabel := pairLabels(s.Rows[p[0]], s.Rows[p[1]])
		for _, e := range rowEffects(s, p[0], p[1]) {
			e.Context, e.Baseline, e.Label = context, baseLabel, candLabel
			out = append(out, e)
		}
	}
	return out
}

// pairLabels splits a pair of rows into the shared context (equal text cells
// before the first difference) and the per-side labels (the text cells that
// differ). Rows that differ in no text cell fall back to their positions.
func pairLabels(base, row []AggCell) (context, baseLabel, candLabel string) {
	var ctx, bl, cl []string
	for i := range row {
		if row[i].IsNum {
			continue
		}
		bt := ""
		if i < len(base) && !base[i].IsNum {
			bt = base[i].Text
		}
		if row[i].Text == bt {
			if len(cl) == 0 {
				ctx = append(ctx, row[i].Text)
			}
			continue
		}
		cl = append(cl, row[i].Text)
		if bt != "" {
			bl = append(bl, bt)
		}
	}
	context = strings.Join(ctx, " ")
	baseLabel, candLabel = strings.Join(bl, " "), strings.Join(cl, " ")
	if baseLabel == "" {
		baseLabel = rowLabel(base)
	}
	if candLabel == "" {
		candLabel = rowLabel(row)
	}
	return context, baseLabel, candLabel
}

// rowEffects classifies every numeric column of row candRI against row
// baseRI, per seed. Columns that are non-numeric in either row, or whose
// baseline hits zero in any seed, are skipped.
func rowEffects(s *Summary, baseRI, candRI int) []Effect {
	base, row := s.Rows[baseRI], s.Rows[candRI]
	var out []Effect
	for ci := range row {
		if ci >= len(base) || !row[ci].IsNum || !base[ci].IsNum {
			continue
		}
		deltas := make([]float64, 0, len(row[ci].PerSeed))
		ok := true
		for si := range row[ci].PerSeed {
			b := base[ci].PerSeed[si]
			if b == 0 {
				ok = false
				break
			}
			deltas = append(deltas, (row[ci].PerSeed[si]-b)/b)
		}
		if !ok {
			continue
		}
		var mean float64
		for _, d := range deltas {
			mean += d
		}
		mean /= float64(len(deltas))
		out = append(out, Effect{
			Column:   s.Columns[ci],
			Row:      candRI,
			Label:    rowLabel(row),
			Baseline: rowLabel(base),
			Deltas:   deltas,
			Mean:     mean,
			Class:    Classify(deltas),
		})
	}
	return out
}

// rowLabel is the text of the row's leading label cells, or its position
// when the row starts with data.
func rowLabel(row []AggCell) string {
	var parts []string
	for _, c := range row {
		if c.IsNum {
			break
		}
		parts = append(parts, c.Text)
	}
	if len(parts) == 0 {
		return "row"
	}
	return strings.Join(parts, " ")
}

// Markdown renders the aggregate table plus the confirmed effects.
func (s *Summary) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s (%d seeds: %s)\n\n", s.ID, s.Title, len(s.Seeds), seedList(s.Seeds))
	fmt.Fprintf(&b, "**Paper claim.** %s\n\n", s.Claim)
	b.WriteString("| " + strings.Join(s.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(s.Columns)) + "\n")
	for _, row := range s.Rows {
		texts := make([]string, len(row))
		for i, c := range row {
			texts[i] = c.String()
		}
		b.WriteString("| " + strings.Join(texts, " | ") + " |\n")
	}
	if decided := decidedEffects(s.Effects); len(decided) > 0 {
		if s.Paired {
			b.WriteString("\n**Paired effects** (each candidate vs its declared baseline row; significant >20% in every seed, equivalent within 5%):\n")
			for _, e := range decided {
				at := ""
				if e.Context != "" {
					at = e.Context + ": "
				}
				fmt.Fprintf(&b, "- %s%s vs %s, %s: %+.1f%% mean — %s\n", at, e.Label, e.Baseline, e.Column, e.Mean*100, e.Class)
			}
		} else {
			fmt.Fprintf(&b, "\n**Effects vs %q** (significant >20%% in every seed, equivalent within 5%%):\n", decided[0].Baseline)
			for _, e := range decided {
				fmt.Fprintf(&b, "- %s, %s: %+.1f%% mean — %s\n", e.Label, e.Column, e.Mean*100, e.Class)
			}
		}
	}
	if s.Finding != "" {
		fmt.Fprintf(&b, "\n**Measured.** %s\n", s.Finding)
	}
	return b.String()
}

// decidedEffects keeps the classifications worth reporting (significant or
// equivalent), in table order.
func decidedEffects(effects []Effect) []Effect {
	var out []Effect
	for _, e := range effects {
		if e.Class == EffectSignificant || e.Class == EffectEquivalent {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Row < out[j].Row })
	return out
}

// seedList renders "1, 2, 3".
func seedList(seeds []int64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, ", ")
}
