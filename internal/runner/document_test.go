package runner

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// fakeResults builds a small mixed result set without running the machine.
func fakeResults() []*Result {
	tb := &experiments.Table{
		ID: "T9", Title: "demo", Claim: "c", Columns: []string{"x"},
		Rows: [][]experiments.Cell{{experiments.Int(3)}},
	}
	return []*Result{
		{ID: "F1", Title: "a figure", Kind: KindFigure, Figure: "### F1 — a figure\n\nbody\n"},
		{ID: "T9", Title: "a table", Kind: KindTable, Seeds: []int64{1}, Tables: []*experiments.Table{tb}},
	}
}

func TestRenderDocumentStructure(t *testing.T) {
	doc := RenderDocument(fakeResults(), DocumentOptions{
		Command: "go run ./cmd/experiments -markdown -seeds 5 > EXPERIMENTS.md",
		Seeds:   []int64{1, 2, 3, 4, 5},
	})
	for _, want := range []string{
		"# EXPERIMENTS — Distributed Recovery in Applicative Systems",
		"Generated file, do not edit",
		"go run ./cmd/experiments -markdown -seeds 5 > EXPERIMENTS.md",
		"## Contents",
		"| F1 | figure | a figure |",
		"| T9 | table | a table |",
		"### F1 — a figure",
		"### T9 — demo",
		"swept across 5 seeds (1, 2, 3, 4, 5)",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q", want)
		}
	}
	// Determinism: same inputs, same bytes.
	if doc != RenderDocument(fakeResults(), DocumentOptions{
		Command: "go run ./cmd/experiments -markdown -seeds 5 > EXPERIMENTS.md",
		Seeds:   []int64{1, 2, 3, 4, 5},
	}) {
		t.Error("RenderDocument not deterministic")
	}
}

func TestRenderDocumentSingleSeedOmitsSweepNote(t *testing.T) {
	doc := RenderDocument(fakeResults(), DocumentOptions{Seeds: []int64{1}})
	if strings.Contains(doc, "swept across") {
		t.Error("single-seed document mentions a sweep")
	}
	if strings.Contains(doc, "Generated file") {
		t.Error("empty command still rendered a provenance comment")
	}
}

func TestDocumentCommand(t *testing.T) {
	cases := []struct {
		request string
		backend string
		seed    int64
		seeds   int
		want    string
	}{
		{"all", "sim", 1, 5, "go run ./cmd/experiments -markdown -seeds 5 > EXPERIMENTS.md"},
		{"", "", 1, 1, "go run ./cmd/experiments -markdown > EXPERIMENTS.md"},
		// Partial runs must not tell readers to overwrite the committed
		// full document, so no redirect target is suggested.
		{"S1,S3", "sim", 7, 3, "go run ./cmd/experiments -markdown -exp S1,S3 -seed 7 -seeds 3"},
		// Non-sim documents carry the -backend flag (the printed command
		// must reproduce the document) and never name EXPERIMENTS.md.
		{"L1,L2", "live", 1, 2, "go run ./cmd/experiments -markdown -backend live -exp L1,L2 -seeds 2"},
		{"all", "live", 1, 1, "go run ./cmd/experiments -markdown -backend live"},
	}
	for _, tc := range cases {
		if got := DocumentCommand(tc.request, tc.backend, tc.seed, tc.seeds); got != tc.want {
			t.Errorf("DocumentCommand(%q,%q,%d,%d) = %q, want %q", tc.request, tc.backend, tc.seed, tc.seeds, got, tc.want)
		}
	}
}
