package runner

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestClassifyThresholds(t *testing.T) {
	cases := []struct {
		name   string
		deltas []float64
		want   EffectClass
	}{
		{"all within 5%", []float64{0.04, -0.02, 0.05}, EffectEquivalent},
		{"exactly zero", []float64{0, 0, 0}, EffectEquivalent},
		{"big and consistent", []float64{0.35, 0.21, 0.9}, EffectSignificant},
		{"big negative", []float64{-0.35, -0.21, -0.9}, EffectSignificant},
		{"direction flip", []float64{0.4, -0.4, 0.4}, EffectInconclusive},
		{"one tiny seed", []float64{0.4, 0.05, 0.4}, EffectInconclusive},
		{"sub-10% seed", []float64{0.25, 0.09, 0.3}, EffectInconclusive},
		{"consistent but modest", []float64{0.15, 0.12, 0.18}, EffectSuggestive},
		{"mixed above/below 20%", []float64{0.25, 0.15, 0.3}, EffectSuggestive},
		{"empty", nil, EffectInconclusive},
	}
	for _, c := range cases {
		if got := Classify(c.deltas); got != c.want {
			t.Errorf("%s: Classify(%v) = %s, want %s", c.name, c.deltas, got, c.want)
		}
	}
}

// table builds a 2-row test table for one seed: a baseline row at `base`
// and a candidate row at `cand`, plus a label that may embed the seed.
func table(seedLabel bool, seed int64, base, cand int64) *experiments.Table {
	label := "interval"
	if seedLabel {
		label = "interval " + string(rune('0'+seed))
	}
	return &experiments.Table{
		ID: "TX", Title: "test", Claim: "claim", Finding: "finding",
		Columns: []string{"config", "metric"},
		Rows: [][]experiments.Cell{
			{experiments.Str("base"), experiments.Int(base)},
			{experiments.Str(label), experiments.Int(cand)},
		},
	}
}

func TestAggregateMeanMinMaxAndEffects(t *testing.T) {
	seeds := []int64{1, 2, 3}
	tables := []*experiments.Table{
		table(false, 1, 100, 150),
		table(false, 2, 110, 160),
		table(false, 3, 90, 140),
	}
	s, err := Aggregate(seeds, tables)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Rows[0][1]
	if !m.IsNum || m.Mean != 100 || m.Min != 90 || m.Max != 110 {
		t.Fatalf("baseline agg = %+v", m)
	}
	if len(m.PerSeed) != 3 || m.PerSeed[1] != 110 {
		t.Fatalf("per-seed values = %v", m.PerSeed)
	}
	if s.Rows[0][0].Text != "base" {
		t.Fatalf("label cell = %+v", s.Rows[0][0])
	}
	if len(s.Effects) != 1 {
		t.Fatalf("effects = %+v", s.Effects)
	}
	e := s.Effects[0]
	// Deltas: 50/100, 50/110, 50/90 — all >20% and positive.
	if e.Class != EffectSignificant || e.Column != "metric" {
		t.Fatalf("effect = %+v", e)
	}
	md := s.Markdown()
	for _, want := range []string{"3 seeds: 1, 2, 3", "100 [90–110]", "significant", "finding"} {
		if !strings.Contains(md, want) {
			t.Errorf("summary markdown missing %q:\n%s", want, md)
		}
	}
}

func TestAggregateVaryingLabels(t *testing.T) {
	seeds := []int64{1, 2}
	s, err := Aggregate(seeds, []*experiments.Table{
		table(true, 1, 100, 100),
		table(true, 2, 100, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Rows[1][0].Text; got != "interval 1 / interval 2" {
		t.Fatalf("varying label = %q", got)
	}
}

func TestAggregateShapeErrors(t *testing.T) {
	if _, err := Aggregate([]int64{1}, nil); err == nil {
		t.Fatal("empty input should fail")
	}
	a := table(false, 1, 100, 150)
	b := table(false, 2, 100, 150)
	b.Rows = b.Rows[:1]
	if _, err := Aggregate([]int64{1, 2}, []*experiments.Table{a, b}); err == nil {
		t.Fatal("row-count mismatch should fail")
	}
}

// A cell that is numeric at one seed and a Dash at another (divergent
// completion) degrades to its per-seed texts rather than failing the
// artifact.
func TestAggregateMixedNumericDashDegrades(t *testing.T) {
	a := table(false, 1, 100, 150)
	c := table(false, 2, 100, 150)
	c.Rows[0][1] = experiments.Dash()
	s, err := Aggregate([]int64{1, 2}, []*experiments.Table{a, c})
	if err != nil {
		t.Fatal(err)
	}
	got := s.Rows[0][1]
	if got.IsNum || got.Text != "100 / —" {
		t.Fatalf("mixed cell = %+v", got)
	}
	// The candidate row's metric column is still fully numeric and must
	// aggregate normally.
	if m := s.Rows[1][1]; !m.IsNum || m.Mean != 150 {
		t.Fatalf("numeric cell = %+v", m)
	}
}

func TestCellConstructors(t *testing.T) {
	if c := experiments.Pct(0.123); c.Text != "+12.3%" || !c.IsNum || c.Num != 0.123 {
		t.Fatalf("Pct = %+v", c)
	}
	if c := experiments.Dash(); c.IsNum || c.Text != "—" {
		t.Fatalf("Dash = %+v", c)
	}
	if c := experiments.Float("%.2f", 1.005); c.Text != "1.00" && c.Text != "1.01" {
		t.Fatalf("Float = %+v", c)
	}
}

// Regression: aggregated cells must render in the source cells' unit — a
// percent column stays percents, a ratio column keeps its "x" suffix.
func TestAggregateKeepsCellUnits(t *testing.T) {
	mk := func(p, r float64) *experiments.Table {
		return &experiments.Table{
			ID: "TU", Columns: []string{"config", "overhead", "stretch"},
			Rows: [][]experiments.Cell{
				{experiments.Str("base"), experiments.Pct(p), experiments.Float("%.2fx", r)},
			},
		}
	}
	s, err := Aggregate([]int64{1, 2}, []*experiments.Table{mk(0.033, 1.20), mk(0.090, 1.33)})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Rows[0][1].String(); got != "+6.2% [+3.3%–+9.0%]" {
		t.Errorf("percent aggregate = %q", got)
	}
	if got := s.Rows[0][2].String(); got != "1.27x [1.20x–1.33x]" {
		t.Errorf("ratio aggregate = %q", got)
	}
}

// Regression: a per-seed row that is shorter than the first seed's must
// return the shape error from both the numeric and the label branch, not
// panic with an index error.
func TestAggregateRaggedLabelRow(t *testing.T) {
	a := &experiments.Table{ID: "TR", Columns: []string{"a", "b"},
		Rows: [][]experiments.Cell{{experiments.Str("x"), experiments.Str("y")}}}
	b := &experiments.Table{ID: "TR", Columns: []string{"a", "b"},
		Rows: [][]experiments.Cell{{experiments.Str("x")}}}
	if _, err := Aggregate([]int64{1, 2}, []*experiments.Table{a, b}); err == nil {
		t.Fatal("ragged label row should fail, not panic")
	}
}
