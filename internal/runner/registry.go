// Package runner is the experiment engine: a registry of reproduction
// artifacts (figures F1–F7, tables T1–T7, ablations A1–A4, stress scenarios
// S1–S6, service/live artifacts L1–L5), a worker pool that fans
// (experiment × seed) cells out across
// goroutines, and a stats aggregator that folds per-seed tables into
// mean/min/max summaries with effect-size classification. cmd/experiments,
// the top-level benchmarks and the examples all resolve drivers here, so
// there is exactly one statement of what each artifact runs. RenderDocument
// turns a full run into the committed EXPERIMENTS.md (self-contained
// markdown with a provenance header and contents table); CI regenerates
// that file and fails on drift, so the docs cannot desynchronize from the
// drivers.
//
// Parallel scheduling is safe because every cell builds its own
// machine.Machine, and each machine owns a private sim.Kernel RNG seeded
// from the cell's seed — no shared mutable state crosses cells.
package runner

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/experiments"
)

// Kind distinguishes figure reproductions (seed-independent narratives with
// fixed fault scripts) from quantitative tables (seed-swept measurements).
type Kind int

const (
	// KindFigure artifacts render a fixed scenario; they run once per
	// request regardless of the seed list.
	KindFigure Kind = iota
	// KindTable artifacts measure; they run once per requested seed.
	KindTable
)

// String names the kind for reports and JSON.
func (k Kind) String() string {
	if k == KindFigure {
		return "figure"
	}
	return "table"
}

// MarshalJSON emits the kind name.
func (k Kind) MarshalJSON() ([]byte, error) { return []byte(`"` + k.String() + `"`), nil }

// Experiment is one registered artifact driver. Figure artifacts set
// Figure; table artifacts set exactly one of Table or TableOn.
type Experiment struct {
	// ID is the artifact name (canonically upper-case: "F1", "T3", "A2").
	ID string
	// Title is a short human label used in listings.
	Title string
	// Kind selects which driver field is populated.
	Kind Kind
	// Figure renders the scenario narrative as markdown.
	Figure func() (string, error)
	// Table runs the measurement at one seed.
	Table func(seed int64) (*experiments.Table, error)
	// TableOn runs a backend-aware measurement: the engine passes the
	// selected backend, so one artifact can measure different substrates
	// under one id (L3 measures the sim stream in committed documents and
	// the live stream under -backend live). Declare every supported
	// substrate in Backends.
	TableOn func(backend string, seed int64) (*experiments.Table, error)
	// Backends declares which core backends the driver needs (nil ⇒
	// {"sim"}). An artifact only runs when the engine's selected backend is
	// listed; otherwise it renders a deterministic skip note, so sim-only
	// documents stay reproducible while live artifacts (whose wall-clock
	// measurements are machine-dependent) run on request.
	Backends []string
}

// SimBackend is the default substrate drivers run on.
const SimBackend = "sim"

// BackendList is the declared backend set with the nil-default applied.
func (e Experiment) BackendList() []string {
	if len(e.Backends) == 0 {
		return []string{SimBackend}
	}
	return e.Backends
}

// Supports reports whether the driver runs under the given backend
// selection ("" means sim).
func (e Experiment) Supports(backend string) bool {
	if backend == "" {
		backend = SimBackend
	}
	for _, b := range e.BackendList() {
		if b == backend {
			return true
		}
	}
	return false
}

// Registry maps artifact ids to drivers, preserving registration order so
// "run everything" reproduces the report in its indexed order.
type Registry struct {
	mu    sync.RWMutex
	order []string
	byID  map[string]Experiment
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byID: map[string]Experiment{}} }

// Register adds a driver. Ids are case-insensitive; duplicates and
// kind/driver mismatches are errors.
func (r *Registry) Register(e Experiment) error {
	id := strings.ToUpper(strings.TrimSpace(e.ID))
	if id == "" {
		return fmt.Errorf("runner: experiment id required")
	}
	if e.Kind == KindFigure && (e.Figure == nil || e.Table != nil || e.TableOn != nil) {
		return fmt.Errorf("runner: %s: figure experiments need exactly the Figure driver", id)
	}
	if e.Kind == KindTable && ((e.Table == nil) == (e.TableOn == nil) || e.Figure != nil) {
		return fmt.Errorf("runner: %s: table experiments need exactly one of the Table or TableOn drivers", id)
	}
	e.ID = id
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[id]; dup {
		return fmt.Errorf("runner: duplicate experiment %q", id)
	}
	r.byID[id] = e
	r.order = append(r.order, id)
	return nil
}

// MustRegister is Register for init-time wiring.
func (r *Registry) MustRegister(e Experiment) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Lookup resolves an id case-insensitively.
func (r *Registry) Lookup(id string) (Experiment, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byID[strings.ToUpper(strings.TrimSpace(id))]
	return e, ok
}

// IDs lists the registered artifacts in registration order.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Resolve expands a request — "all", a single id, or a comma-separated list
// in any case — into registered experiments in report order.
func (r *Registry) Resolve(request string) ([]Experiment, error) {
	request = strings.TrimSpace(request)
	if request == "" || strings.EqualFold(request, "all") {
		ids := r.IDs()
		out := make([]Experiment, 0, len(ids))
		for _, id := range ids {
			e, _ := r.Lookup(id)
			out = append(out, e)
		}
		return out, nil
	}
	want := map[string]bool{}
	for _, part := range strings.Split(request, ",") {
		part = strings.ToUpper(strings.TrimSpace(part))
		if part == "" {
			continue
		}
		if _, ok := r.Lookup(part); !ok {
			return nil, fmt.Errorf("runner: unknown artifact %q (known: %s)",
				part, strings.Join(r.IDs(), ", "))
		}
		want[part] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("runner: empty artifact request")
	}
	var out []Experiment
	for _, id := range r.IDs() {
		if want[id] {
			e, _ := r.Lookup(id)
			out = append(out, e)
			delete(want, id)
		}
	}
	if len(want) != 0 { // unreachable given the Lookup check, kept for safety
		missing := make([]string, 0, len(want))
		for id := range want {
			missing = append(missing, id)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("runner: unknown artifacts %s", strings.Join(missing, ", "))
	}
	return out, nil
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the registry of every artifact indexed in DESIGN.md plus
// the stress scenarios S1–S6 and the live/service artifacts L1–L5, with
// the canonical parameters the report uses.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry()
		for _, e := range []Experiment{
			{ID: "F1", Title: "Figure 1: rollback recovery on processors A–D", Kind: KindFigure, Figure: Fig1Markdown},
			{ID: "F2", Title: "Figures 2–3: grandparent pointers and twin inheritance", Kind: KindFigure, Figure: Fig23Markdown},
			{ID: "F5", Title: "Figure 5: the eight orderings of C's completion", Kind: KindFigure, Figure: Fig5Markdown},
			{ID: "F6", Title: "Figures 6–7: spawn states a–g and residue freedom", Kind: KindFigure, Figure: Fig67Markdown},
			{ID: "F7", Title: "§5.2: simultaneous ancestor failure vs depth K", Kind: KindFigure, Figure: MultiFaultMarkdown},
			{ID: "T1", Title: "Fault-free overhead", Kind: KindTable,
				Table: func(seed int64) (*experiments.Table, error) { return experiments.T1Overhead("fib:13", 8, seed) }},
			{ID: "T2", Title: "Recovery cost vs fault time", Kind: KindTable,
				Table: func(seed int64) (*experiments.Table, error) { return experiments.T2FaultSweep("tree:3,6", 9, seed) }},
			{ID: "T3", Title: "Scaling processors", Kind: KindTable,
				Table: func(seed int64) (*experiments.Table, error) {
					return experiments.T3Scale("tree:3,6", []int{4, 9, 16, 36, 64}, seed)
				}},
			{ID: "T4", Title: "Multiple faults under splice", Kind: KindTable, Table: experiments.T4MultiFault},
			{ID: "T5", Title: "Replicated critical sections vs corruption", Kind: KindTable, Table: experiments.T5Replication},
			{ID: "T6", Title: "Allocation strategy and recovery", Kind: KindTable, Table: experiments.T6Placement},
			{ID: "T7", Title: "TMR vs functional checkpointing", Kind: KindTable, Table: experiments.T7TMR},
			{ID: "A1", Title: "Ablation: eager vs lazy orphan abortion", Kind: KindTable, Table: experiments.A1EagerVsLazyAbort},
			{ID: "A2", Title: "Ablation: checkpoint storage by workload", Kind: KindTable, Table: experiments.A2CheckpointStorage},
			{ID: "A3", Title: "Ablation: heartbeat period vs recovery", Kind: KindTable, Table: experiments.A3DetectionLatency},
			{ID: "A4", Title: "Ablation: topmost suppression on/off", Kind: KindTable, Table: experiments.A4TopmostSuppression},
			{ID: "S1", Title: "Stress: topology sweep at 64 processors", Kind: KindTable,
				Table: func(seed int64) (*experiments.Table, error) { return experiments.S1TopologySweep("fib:13", seed) }},
			{ID: "S2", Title: "Stress: rollback vs splice under cascading faults", Kind: KindTable, Table: experiments.S2CascadeRecovery},
			{ID: "S3", Title: "Stress: fault density to the breaking point", Kind: KindTable, Table: experiments.S3FaultDensity},
			{ID: "S4", Title: "Stress: skewed/random shapes, mesh vs torus under region+burst faults", Kind: KindTable,
				Table: experiments.S4ShapeDiversity},
			{ID: "S5", Title: "Stress: open-loop saturation sweep vs bounded admission", Kind: KindTable,
				Table: experiments.S5Saturation},
			{ID: "S6", Title: "Stress: online incremental recovery vs rollback and splice", Kind: KindTable,
				Table: experiments.S6IncrementalRecovery},
			{ID: "L1", Title: "Live backend: sim-vs-live parity on the standard workloads", Kind: KindTable,
				Backends: []string{"live"}, Table: experiments.L1Parity},
			{ID: "L2", Title: "Live backend: burst-kill fault sweep on the goroutine cluster", Kind: KindTable,
				Backends: []string{"live"}, Table: experiments.L2LiveFaultSweep},
			{ID: "L3", Title: "Service mode: request-stream throughput with faults injected mid-stream", Kind: KindTable,
				Backends: []string{"sim", "live"}, TableOn: experiments.L3StreamThroughput},
			{ID: "L4", Title: "Live backend: open-loop saturation under bounded admission", Kind: KindTable,
				Backends: []string{"live"}, Table: experiments.L4LiveSaturation},
			{ID: "L5", Title: "Net backend: process-cluster parity and SIGKILL burst mid-stream", Kind: KindTable,
				Backends: []string{"net"}, Table: experiments.L5NetParity},
		} {
			defaultReg.MustRegister(e)
		}
	})
	return defaultReg
}
