package runner

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// cliIDs is every artifact cmd/experiments accepts; the registry must
// resolve each one, in either case.
var cliIDs = []string{
	"F1", "F2", "F5", "F6", "F7",
	"T1", "T2", "T3", "T4", "T5", "T6", "T7",
	"A1", "A2", "A3", "A4",
	"S1", "S2", "S3", "S4", "S5", "S6",
	"L1", "L2", "L3", "L4", "L5",
}

func TestDefaultRegistryResolvesEveryCLIID(t *testing.T) {
	reg := Default()
	for _, id := range cliIDs {
		for _, variant := range []string{id, strings.ToLower(id), " " + id + " "} {
			e, ok := reg.Lookup(variant)
			if !ok {
				t.Fatalf("Lookup(%q) failed", variant)
			}
			if e.ID != id {
				t.Fatalf("Lookup(%q) = %q", variant, e.ID)
			}
			switch e.Kind {
			case KindFigure:
				if e.Figure == nil {
					t.Fatalf("%s: figure driver missing", id)
				}
			case KindTable:
				if e.Table == nil && e.TableOn == nil {
					t.Fatalf("%s: table driver missing", id)
				}
			}
		}
	}
	if got := reg.IDs(); len(got) != len(cliIDs) {
		t.Fatalf("registry has %d artifacts, CLI documents %d: %v", len(got), len(cliIDs), got)
	}
	all, err := reg.Resolve("all")
	if err != nil || len(all) != len(cliIDs) {
		t.Fatalf("Resolve(all) = %d experiments, err %v", len(all), err)
	}
	subset, err := reg.Resolve("t6, f1 ,A2")
	if err != nil {
		t.Fatal(err)
	}
	gotIDs := make([]string, len(subset))
	for i, e := range subset {
		gotIDs[i] = e.ID
	}
	// Report order, not request order.
	if strings.Join(gotIDs, ",") != "F1,T6,A2" {
		t.Fatalf("Resolve subset order = %v", gotIDs)
	}
	if _, err := reg.Resolve("T9"); err == nil {
		t.Fatal("Resolve(T9) should fail")
	}
}

func TestRegisterValidation(t *testing.T) {
	reg := NewRegistry()
	tbl := func(seed int64) (*experiments.Table, error) { return &experiments.Table{ID: "X"}, nil }
	fig := func() (string, error) { return "fig", nil }
	if err := reg.Register(Experiment{ID: "x1", Kind: KindTable, Table: tbl}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Experiment{ID: "X1", Kind: KindTable, Table: tbl}); err == nil {
		t.Fatal("duplicate id (case-insensitive) should fail")
	}
	if err := reg.Register(Experiment{ID: "", Kind: KindTable, Table: tbl}); err == nil {
		t.Fatal("empty id should fail")
	}
	if err := reg.Register(Experiment{ID: "x2", Kind: KindFigure, Table: tbl}); err == nil {
		t.Fatal("figure without Figure driver should fail")
	}
	if err := reg.Register(Experiment{ID: "x3", Kind: KindTable, Table: tbl, Figure: fig}); err == nil {
		t.Fatal("table with both drivers should fail")
	}
}

// syntheticRegistry builds table drivers whose output depends only on the
// seed but whose wall-clock duration varies, so a parallel schedule really
// interleaves completions out of order.
func syntheticRegistry(t *testing.T, n int) *Registry {
	t.Helper()
	reg := NewRegistry()
	for i := 0; i < n; i++ {
		i := i
		reg.MustRegister(Experiment{
			ID: fmt.Sprintf("S%d", i), Title: "synthetic", Kind: KindTable,
			Table: func(seed int64) (*experiments.Table, error) {
				// Sleep 0–3ms depending on (exp, seed) to scramble the pool.
				time.Sleep(time.Duration((int64(i)*7+seed*13)%4) * time.Millisecond)
				return &experiments.Table{
					ID:      fmt.Sprintf("S%d", i),
					Title:   "synthetic",
					Columns: []string{"config", "metric"},
					Rows: [][]experiments.Cell{
						{experiments.Str("base"), experiments.Int(100 + seed)},
						{experiments.Str("cand"), experiments.Int((100 + seed) * 2)},
					},
				}, nil
			},
		})
	}
	return reg
}

// TestParallelOutputIsByteIdentical is the engine's core guarantee: a
// -parallel 8 run renders byte-for-byte the same markdown and JSON as the
// sequential schedule for the same seed list.
func TestParallelOutputIsByteIdentical(t *testing.T) {
	reg := syntheticRegistry(t, 6)
	opt := func(par int) Options { return Options{Seeds: SeedRange(1, 8), Parallel: par} }
	seqRes, err := reg.RunIDs("all", opt(1))
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := reg.RunIDs("all", opt(8))
	if err != nil {
		t.Fatal(err)
	}
	seqMD, parMD := RenderMarkdown(seqRes), RenderMarkdown(parRes)
	if seqMD != parMD {
		t.Fatalf("markdown differs between sequential and parallel runs:\n--- seq ---\n%s\n--- par ---\n%s", seqMD, parMD)
	}
	seqJSON, err := RenderJSON(seqRes)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := RenderJSON(parRes)
	if err != nil {
		t.Fatal(err)
	}
	if seqJSON != parJSON {
		t.Fatal("JSON differs between sequential and parallel runs")
	}
}

// TestRealArtifactsDeterministicUnderParallelism runs a real figure and a
// real table through both schedules.
func TestRealArtifactsDeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	reg := Default()
	opt := func(par int) Options { return Options{Seeds: SeedRange(1, 3), Parallel: par} }
	seq, err := reg.RunIDs("F1,T7", opt(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := reg.RunIDs("F1,T7", opt(8))
	if err != nil {
		t.Fatal(err)
	}
	if RenderMarkdown(seq) != RenderMarkdown(par) {
		t.Fatal("real artifacts render differently under parallel schedule")
	}
	if par[1].Summary == nil {
		t.Fatal("multi-seed table missing aggregate summary")
	}
	if got := len(par[1].Tables); got != 3 {
		t.Fatalf("per-seed tables = %d, want 3", got)
	}
}

func TestEngineErrorPropagation(t *testing.T) {
	reg := NewRegistry()
	boom := errors.New("boom")
	reg.MustRegister(Experiment{ID: "OK", Kind: KindTable,
		Table: func(seed int64) (*experiments.Table, error) {
			return &experiments.Table{ID: "OK", Columns: []string{"m"},
				Rows: [][]experiments.Cell{{experiments.Int(seed)}}}, nil
		}})
	reg.MustRegister(Experiment{ID: "BAD", Kind: KindTable,
		Table: func(seed int64) (*experiments.Table, error) {
			if seed == 2 {
				return nil, boom
			}
			return &experiments.Table{ID: "BAD", Columns: []string{"m"},
				Rows: [][]experiments.Cell{{experiments.Int(seed)}}}, nil
		}})
	results, err := reg.RunIDs("all", Options{Seeds: SeedRange(1, 3), Parallel: 4})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("engine error = %v, want boom", err)
	}
	if results[0].Err != nil || results[0].Summary == nil {
		t.Fatalf("healthy experiment should still aggregate: err=%v summary=%v",
			results[0].Err, results[0].Summary)
	}
	if results[1].Err == nil {
		t.Fatal("failing experiment should carry its error")
	}
	if md := results[1].Markdown(); !strings.Contains(md, "failed") {
		t.Fatalf("failed artifact markdown = %q", md)
	}
}
