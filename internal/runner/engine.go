package runner

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/experiments"
)

// Options configure one engine run.
type Options struct {
	// Seeds are the table seeds, in output order. Default {1}.
	Seeds []int64
	// Parallel is the worker-pool width. Default GOMAXPROCS; 1 forces the
	// strictly sequential schedule (output is identical either way).
	Parallel int
	// Backend selects the execution substrate ("" ⇒ "sim"). Artifacts whose
	// drivers do not declare the backend are skipped with a deterministic
	// note instead of run, so one request can span a mixed registry.
	Backend string
}

// SeedRange returns n consecutive seeds starting at base — the CLI's
// `-seed S -seeds N` convention.
func SeedRange(base int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// Result is one artifact's outcome across every requested seed.
type Result struct {
	ID    string `json:"id"`
	Title string `json:"title,omitempty"`
	Kind  Kind   `json:"kind"`
	// Figure holds the rendered markdown for figure artifacts.
	Figure string `json:"figure,omitempty"`
	// Seeds and Tables hold the per-seed measurements (table artifacts);
	// Tables[i] ran at Seeds[i].
	Seeds  []int64              `json:"seeds,omitempty"`
	Tables []*experiments.Table `json:"tables,omitempty"`
	// Summary is the cross-seed aggregate (present when ≥2 seeds succeeded).
	Summary *Summary `json:"summary,omitempty"`
	// Skipped, when non-empty, explains why the artifact did not run (its
	// driver does not support the selected backend). Skipped results carry
	// no tables and no error.
	Skipped string `json:"skipped,omitempty"`
	// Err is the first failure among the artifact's cells, if any.
	Err error `json:"-"`
}

// MarshalJSON includes the error text alongside the exported fields.
func (r *Result) MarshalJSON() ([]byte, error) {
	type alias Result // drop methods to avoid recursion
	out := struct {
		*alias
		Error string `json:"error,omitempty"`
	}{alias: (*alias)(r)}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return json.Marshal(out)
}

// Markdown renders the artifact for EXPERIMENTS.md: figures as-is, tables
// as the single-seed table or the multi-seed aggregate.
func (r *Result) Markdown() string {
	switch {
	case r.Skipped != "":
		return fmt.Sprintf("### %s — %s\n\n*%s*\n", r.ID, r.Title, r.Skipped)
	case r.Err != nil:
		return fmt.Sprintf("### %s — failed: %v\n", r.ID, r.Err)
	case r.Kind == KindFigure:
		return r.Figure
	case r.Summary != nil:
		return r.Summary.Markdown()
	case len(r.Tables) > 0:
		return r.Tables[0].Markdown()
	default:
		return fmt.Sprintf("### %s — no output\n", r.ID)
	}
}

// RenderMarkdown concatenates the artifacts' markdown in order.
func RenderMarkdown(results []*Result) string {
	parts := make([]string, len(results))
	for i, r := range results {
		parts[i] = strings.TrimRight(r.Markdown(), "\n")
	}
	return strings.Join(parts, "\n\n") + "\n"
}

// RenderJSON emits the full per-seed + aggregate structure.
func RenderJSON(results []*Result) (string, error) {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data) + "\n", nil
}

// cell is one schedulable unit: a figure, or (table experiment × seed).
type cell struct {
	exp  int // index into the Result slice
	seed int // index into Options.Seeds; -1 for figures
}

// Run executes the experiments across opt.Seeds on a pool of opt.Parallel
// workers. Each (experiment × seed) cell builds its own simulated machine
// with its own RNG, so cells are independent; results land in preassigned
// slots, making the output deterministic for a given seed list no matter
// how the pool interleaves. The returned slice always has one entry per
// experiment, in the given order; the error is the first cell failure (the
// per-artifact detail stays on Result.Err).
func (r *Registry) Run(exps []Experiment, opt Options) ([]*Result, error) {
	seeds := opt.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	backend := opt.Backend
	if backend == "" {
		backend = SimBackend
	}
	if backend != SimBackend {
		// Non-sim cells measure the wall clock; running several goroutine
		// clusters at once would measure pool contention instead of the
		// workload, so live runs are always scheduled sequentially.
		workers = 1
	}

	results := make([]*Result, len(exps))
	errs := make([][]error, len(exps))
	var cells []cell
	for i, e := range exps {
		res := &Result{ID: e.ID, Title: e.Title, Kind: e.Kind}
		if !e.Supports(backend) {
			res.Skipped = fmt.Sprintf("Skipped on backend %q: this artifact needs backend %s — run `go run ./cmd/experiments -backend %s -exp %s`.",
				backend, strings.Join(e.BackendList(), "|"), e.BackendList()[0], e.ID)
			if !e.Supports(SimBackend) {
				// Only live-backend measurements are wall-clock; sim-only
				// artifacts skipped under -backend live are deterministic
				// and live in the committed report.
				res.Skipped += " Its measurements are machine-dependent wall-clock values and are not committed."
			}
			results[i] = res
			continue
		}
		if e.Kind == KindFigure {
			cells = append(cells, cell{exp: i, seed: -1})
			errs[i] = make([]error, 1)
		} else {
			res.Seeds = append([]int64(nil), seeds...)
			res.Tables = make([]*experiments.Table, len(seeds))
			errs[i] = make([]error, len(seeds))
			for si := range seeds {
				cells = append(cells, cell{exp: i, seed: si})
			}
		}
		results[i] = res
	}

	jobs := make(chan cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				e := exps[c.exp]
				if c.seed < 0 {
					md, err := e.Figure()
					results[c.exp].Figure = md
					errs[c.exp][0] = err
					continue
				}
				var tb *experiments.Table
				var err error
				if e.TableOn != nil {
					tb, err = e.TableOn(backend, seeds[c.seed])
				} else {
					tb, err = e.Table(seeds[c.seed])
				}
				results[c.exp].Tables[c.seed] = tb
				errs[c.exp][c.seed] = err
			}
		}()
	}
	for _, c := range cells {
		jobs <- c
	}
	close(jobs)
	wg.Wait()

	var firstErr error
	for i, res := range results {
		if res.Skipped != "" {
			continue
		}
		for _, err := range errs[i] {
			if err != nil && res.Err == nil {
				res.Err = fmt.Errorf("%s: %w", res.ID, err)
			}
		}
		if res.Err != nil {
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		if res.Kind == KindTable && len(seeds) > 1 {
			sum, err := Aggregate(res.Seeds, res.Tables)
			if err != nil {
				res.Err = err
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			res.Summary = sum
		}
	}
	return results, firstErr
}

// RunIDs resolves a request string (see Registry.Resolve) and runs it.
func (r *Registry) RunIDs(request string, opt Options) ([]*Result, error) {
	exps, err := r.Resolve(request)
	if err != nil {
		return nil, err
	}
	return r.Run(exps, opt)
}
