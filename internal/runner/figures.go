package runner

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/proto"
	"repro/internal/scenario"
)

// The figure drivers render the fixed fault scenarios of the paper as
// markdown. They were previously inlined in cmd/experiments; living here,
// the CLI, the benchmarks and the tests all regenerate the same text.

// Fig1Markdown renders F1 — Figure 1's call tree and rollback recovery.
func Fig1Markdown() (string, error) {
	res, err := scenario.RunFig1Rollback()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("### F1 — Figure 1: call tree on processors A–D, rollback recovery\n\n")
	b.WriteString("**Paper claim (§2.2, §3).** Checkpoints live with the spawning parents:\n")
	b.WriteString("A holds B1; C holds B2, B3, B5; D holds B7. Failing B fragments the tree\n")
	b.WriteString("into three pieces; recovery reissues only the topmost checkpoints and\n")
	b.WriteString("suppresses B5 (\"Reactivation of B5 only increases the system overhead\").\n\n")
	fmt.Fprintf(&b, "- fault: announced crash of processor B at t=%d\n", res.FaultTime)
	fmt.Fprintf(&b, "- completed with correct answer: %v (answer %s)\n", res.Completed, res.Answer)
	fmt.Fprintf(&b, "- checkpoint holders: %s\n", holderString(res.CheckpointHolders))
	fmt.Fprintf(&b, "- fragments: %v\n", res.Fragments)
	fmt.Fprintf(&b, "- reissued: %s\n", holderString(res.Reissued))
	fmt.Fprintf(&b, "- suppressed: %v\n", res.Suppressed)
	fmt.Fprintf(&b, "- tasks lost with B: %d; reissues: %d; suppressed: %d\n",
		res.Metrics.TasksLost, res.Metrics.Reissues, res.Metrics.Suppressed)
	b.WriteString("\n")
	return b.String(), nil
}

// Fig23Markdown renders F2 — Figures 2–3's twin inheritance under splice.
func Fig23Markdown() (string, error) {
	res, err := scenario.RunFig23Splice()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("### F2 — Figures 2–3: grandparent pointers and twin inheritance, splice recovery\n\n")
	b.WriteString("**Paper claim (§4.1).** \"A twin task of B2, say B2', is created by the\n")
	b.WriteString("parent C1 to inherit tasks D4 and A2\"; orphan results flow through the\n")
	b.WriteString("grandparent relay to the step-parent.\n\n")
	fmt.Fprintf(&b, "- fault: announced crash of processor B at t=%d\n", res.FaultTime)
	fmt.Fprintf(&b, "- completed with correct answer: %v (answer %s)\n", res.Completed, res.Answer)
	fmt.Fprintf(&b, "- twins created: %s\n", holderString(res.Twinned))
	fmt.Fprintf(&b, "- orphan results escalated: %d; relayed to twins: %d; inherited without respawn: %d; duplicates ignored: %d\n",
		res.OrphanResults, res.Relayed, res.Prefills, res.Dups)
	b.WriteString("\n")
	return b.String(), nil
}

// Fig5Markdown renders F5 — the eight orderings of C's completion.
func Fig5Markdown() (string, error) {
	var b strings.Builder
	b.WriteString("### F5 — Figure 5: the eight orderings of C's completion\n\n")
	b.WriteString("**Paper claim (§4.1).** Every ordering of C's completion relative to the\n")
	b.WriteString("failure of P and the twin's progress resolves to the correct answer with\n")
	b.WriteString("duplicates ignored and late results discarded.\n\n")
	b.WriteString("| case | ordering | correct | C placements | prefills | dups | lates |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for c := 1; c <= 8; c++ {
		res, err := scenario.RunFig5Case(c)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "| %d | %s | %v | %d | %d | %d | %d |\n",
			c, res.Desc, res.Completed, res.PlacesC, res.Prefills, res.Dups, res.Lates)
	}
	b.WriteString("\n")
	return b.String(), nil
}

// Fig67Markdown renders F6 — the spawn-state sweep of Figures 6–7.
func Fig67Markdown() (string, error) {
	var b strings.Builder
	b.WriteString("### F6 — Figures 6–7: spawn states a–g and residue freedom\n\n")
	b.WriteString("**Paper claim (§4.3.2).** \"A residue-free fault tolerant measure must\n")
	b.WriteString("assure that tasks G and C are not affected by the failure of P from state\n")
	b.WriteString("a through state g.\"\n\n")
	b.WriteString("| state | situation | scheme | correct | recoveries | P places | C places |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, scheme := range []string{"rollback", "splice"} {
		for st := byte('a'); st <= 'g'; st++ {
			res, err := scenario.RunFig67State(st, scheme)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "| %c | %s | %s | %v | %d | %d | %d |\n",
				st, res.Desc, scheme, res.Completed, res.Recovered, res.PlacesP, res.PlacesC)
		}
	}
	b.WriteString("\n")
	return b.String(), nil
}

// MultiFaultMarkdown renders F7 — §5.2's ancestor-depth sweep.
func MultiFaultMarkdown() (string, error) {
	var b strings.Builder
	b.WriteString("### F7 — §5.2: simultaneous parent + grandparent failure vs ancestor depth K\n\n")
	b.WriteString("**Paper claim (§5.2).** \"if both the parent and grandparent processors of\n")
	b.WriteString("a task fail simultaneously, the orphan task would be stranded. It is noted\n")
	b.WriteString("that the resilient structure concept can be further extended to include\n")
	b.WriteString("pointers to the great grandparent and beyond.\"\n\n")
	b.WriteString("| ancestor depth K | correct | stranded results | relayed results | C placements |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, k := range []int{2, 3, 4} {
		res, err := scenario.RunMultiFaultBranch(k)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "| %d | %v | %d | %d | %d |\n",
			k, res.Completed, res.Stranded, res.Relayed, res.PlacesC)
	}
	b.WriteString("\n")
	b.WriteString("**Measured.** K=2 strands the orphan's result (both named ancestors are\n")
	b.WriteString("dead) and the twins recompute the subtree; K≥3 escalates past the dead pair\n")
	b.WriteString("and splices the partial result in. The answer is correct at every K.\n\n")
	return b.String(), nil
}

// holderString renders a checkpoint/twin holder map as "B2→C, B7→D".
func holderString(m map[string]proto.ProcID) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s→%s", k, m[k].Letter()))
	}
	return strings.Join(parts, ", ")
}
