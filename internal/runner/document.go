package runner

import (
	"fmt"
	"strings"
)

// DocumentOptions parameterize RenderDocument's provenance header.
type DocumentOptions struct {
	// Command is the exact shell command that regenerates the document; it
	// is recorded in the header so readers (and CI) can reproduce the file.
	Command string
	// Seeds are the table seeds the run used.
	Seeds []int64
}

// RenderDocument renders a full artifact run as a self-contained
// EXPERIMENTS.md: a provenance header naming the regeneration command, a
// contents table, and every artifact's markdown in report order. The output
// is a pure function of the results (no timestamps, no environment), so CI
// can regenerate the document and fail on any byte of drift.
func RenderDocument(results []*Result, opt DocumentOptions) string {
	var b strings.Builder
	b.WriteString("# EXPERIMENTS — Distributed Recovery in Applicative Systems\n\n")
	if opt.Command != "" {
		fmt.Fprintf(&b, "<!-- Generated file, do not edit. Regenerate with:\n  %s\nCI re-runs that command and fails on drift. -->\n\n", opt.Command)
	}
	b.WriteString("Reproduction artifacts for *Distributed Recovery in Applicative Systems*\n" +
		"(ICPP 1986), regenerated from the drivers in `internal/experiments` and\n" +
		"`internal/scenario` through the registry in `internal/runner` — the same\n" +
		"code paths the tests and benchmarks execute. Figures (F) replay the\n" +
		"paper's narrative scenarios; tables (T) measure its quantitative claims;\n" +
		"ablations (A) isolate individual mechanisms; stress scenarios (S) push\n" +
		"beyond the paper's grids into 64-processor irregular topologies,\n" +
		"cascading faults, and fault densities past the recovery breaking point.\n")
	if len(opt.Seeds) > 1 {
		fmt.Fprintf(&b, "\nTables are swept across %d seeds (%s); measurement cells render as\n"+
			"`mean [min–max]`, and effect lines classify each row against the table's\n"+
			"baseline row (significant: >20%% in the same direction in every seed;\n"+
			"equivalent: within 5%% in every seed).\n", len(opt.Seeds), seedList(opt.Seeds))
	}
	b.WriteString("\n## Contents\n\n")
	b.WriteString("| artifact | kind | title |\n|---|---|---|\n")
	for _, r := range results {
		title := r.Title
		if title == "" {
			title = r.ID
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", r.ID, r.Kind, title)
	}
	b.WriteString("\n")
	b.WriteString(RenderMarkdown(results))
	return b.String()
}

// DocumentCommand reconstructs the canonical regeneration command line from
// the run parameters, omitting flags at their defaults and the -parallel
// width (which never changes the output). cmd/experiments records it in the
// header; keeping the derivation here makes header and CLI agree by
// construction. Only a full ("all") run on the default sim backend names
// EXPERIMENTS.md as the redirect target — a partial or non-sim document
// must not instruct readers to overwrite the committed full report.
func DocumentCommand(request, backend string, baseSeed int64, seeds int) string {
	parts := []string{"go run ./cmd/experiments -markdown"}
	if backend != "" && backend != SimBackend {
		parts = append(parts, "-backend "+backend)
	}
	full := request == "" || strings.EqualFold(strings.TrimSpace(request), "all")
	if !full {
		parts = append(parts, "-exp "+strings.TrimSpace(request))
	}
	if baseSeed != 1 {
		parts = append(parts, fmt.Sprintf("-seed %d", baseSeed))
	}
	if seeds > 1 {
		parts = append(parts, fmt.Sprintf("-seeds %d", seeds))
	}
	cmd := strings.Join(parts, " ")
	if full && (backend == "" || backend == SimBackend) {
		cmd += " > EXPERIMENTS.md"
	}
	return cmd
}
