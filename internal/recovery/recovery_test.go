package recovery

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/expr"
	"repro/internal/proto"
	"repro/internal/stamp"
	"repro/internal/trace"
)

// mockOps records every operation a policy performs.
type mockOps struct {
	self    proto.ProcID
	store   *checkpoint.Store
	keys    []proto.TaskKey
	waiting map[string]bool // "stamp/hole" → unfilled
	faulty  map[proto.ProcID]bool

	unfilled map[proto.TaskKey]int // explicit UnfilledHoles answers

	respawned []*proto.TaskPacket
	deferred  []deferredCall
	aborted   []string // "key scope reason"
	escalated []*proto.Result
	relayed   []*proto.Result
	declared  []proto.ProcID
	dropped   []bool // stranded flags
	metrics   trace.Metrics

	// policy receives OnFailureDetected when DeclareFaulty runs, mirroring
	// the machine's behaviour.
	policy Policy
}

type deferredCall struct {
	delay int64
	fn    func()
}

func newMockOps() *mockOps {
	return &mockOps{
		self:     0,
		store:    checkpoint.NewStore(),
		waiting:  map[string]bool{},
		unfilled: map[proto.TaskKey]int{},
		faulty:   map[proto.ProcID]bool{},
	}
}

func (m *mockOps) Self() proto.ProcID                { return m.self }
func (m *mockOps) Store() *checkpoint.Store          { return m.store }
func (m *mockOps) ResidentTaskKeys() []proto.TaskKey { return m.keys }
func (m *mockOps) TaskWaitingOnHole(k proto.TaskKey, h int) bool {
	return m.waiting[fmt.Sprintf("%v/%d", k, h)]
}
func (m *mockOps) Respawn(pkt *proto.TaskPacket) {
	m.respawned = append(m.respawned, pkt)
	// Mirror the machine: the respawned packet is re-retained, which resets
	// its destination to pending until the new placement is acknowledged.
	m.store.Retain(pkt)
}
func (m *mockOps) Abort(k proto.TaskKey, scope stamp.Stamp, reason string) {
	m.aborted = append(m.aborted, fmt.Sprintf("%v %v %s", k, scope, reason))
}
func (m *mockOps) EscalateResult(r *proto.Result) { m.escalated = append(m.escalated, r) }
func (m *mockOps) RelayToTwin(r *proto.Result)    { m.relayed = append(m.relayed, r) }
func (m *mockOps) DeclareFaulty(p proto.ProcID) {
	m.declared = append(m.declared, p)
	m.faulty[p] = true
	if m.policy != nil {
		m.policy.OnFailureDetected(p)
	}
}
func (m *mockOps) IsKnownFaulty(p proto.ProcID) bool { return m.faulty[p] }
func (m *mockOps) Defer(delay int64, fn func()) {
	m.deferred = append(m.deferred, deferredCall{delay, fn})
}
func (m *mockOps) UnfilledHoles(k proto.TaskKey) int {
	if v, ok := m.unfilled[k]; ok {
		return v
	}
	// Fall back to the waiting map: one unfilled hole per waiting entry.
	n := 0
	for key, w := range m.waiting {
		if w && strings.HasPrefix(key, k.String()+"/") {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return n
}

// fireDeferred runs the oldest pending deferred callback, mirroring one
// timer expiry on the machine.
func (m *mockOps) fireDeferred(t *testing.T) {
	t.Helper()
	if len(m.deferred) == 0 {
		t.Fatal("no deferred drain armed")
	}
	d := m.deferred[0]
	m.deferred = m.deferred[1:]
	d.fn()
}
func (m *mockOps) DropResult(r *proto.Result, s bool)   { m.dropped = append(m.dropped, s) }
func (m *mockOps) Log(trace.Kind, fmt.Stringer, string) {}
func (m *mockOps) Metrics() *trace.Metrics              { return &m.metrics }

// seed installs a checkpoint entry settled on dest with the given parent.
func (m *mockOps) seed(child stamp.Stamp, parentStamp stamp.Stamp, hole int, dest proto.ProcID, parentWaiting bool) *proto.TaskPacket {
	pkt := &proto.TaskPacket{
		Key:    proto.TaskKey{Stamp: child},
		Fn:     "f",
		Args:   []expr.Value{expr.VInt(1)},
		Parent: proto.Addr{Proc: m.self, Task: proto.TaskKey{Stamp: parentStamp}},
		HoleID: hole,
	}
	m.store.Retain(pkt)
	m.store.Settle(pkt.Key, dest)
	m.waiting[fmt.Sprintf("%v/%d", pkt.Parent.Task, hole)] = parentWaiting
	return pkt
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("scheme name %q != %q", s.Name(), name)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// The registry is the single source of the scheme list: the names users see
// in error text must be exactly the names ByName accepts, and the schemes
// this PR series added must actually be registered.
func TestUnknownSchemeErrorListsRegistry(t *testing.T) {
	for _, want := range []string{"incremental", "none", "rollback", "rollback-lazy", "rollback-nosuppress", "splice"} {
		if !Known(want) {
			t.Errorf("Known(%q) = false", want)
		}
	}
	_, err := ByName("nosuch")
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if want := strings.Join(Names(), ", "); !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not list the registry %q", err, want)
	}
}

func TestNonePolicyDoesNothing(t *testing.T) {
	ops := newMockOps()
	p := None().New(ops)
	ops.seed(stamp.FromPath(1), stamp.FromPath(), 0, 3, true)
	p.OnFailureDetected(3)
	p.OnResultUndeliverable(&proto.Result{})
	p.OnResultRejected(&proto.Result{})
	p.OnGrandResult(&proto.Result{})
	if len(ops.respawned) != 0 || len(ops.aborted) != 0 || len(ops.escalated) != 0 {
		t.Fatal("none scheme performed recovery actions")
	}
	if len(ops.dropped) != 3 {
		t.Fatalf("dropped = %d, want 3", len(ops.dropped))
	}
}

func TestRollbackReissuesTopmostOnly(t *testing.T) {
	ops := newMockOps()
	p := Rollback().New(ops)
	// Two independent checkpoints on proc 3 plus one shadowed descendant.
	top1 := ops.seed(stamp.FromPath(0, 1), stamp.FromPath(0), 1, 3, true)
	top2 := ops.seed(stamp.FromPath(0, 2), stamp.FromPath(0), 2, 3, true)
	shadowed := ops.seed(stamp.FromPath(0, 1, 0, 0), stamp.FromPath(0, 1, 0), 0, 3, true)
	// A checkpoint on a different processor must not be touched.
	other := ops.seed(stamp.FromPath(0, 3), stamp.FromPath(0), 3, 4, true)

	p.OnFailureDetected(3)

	if len(ops.respawned) != 2 {
		t.Fatalf("respawned %d packets, want 2", len(ops.respawned))
	}
	for _, pkt := range ops.respawned {
		if !pkt.Reissue || pkt.Twin {
			t.Errorf("respawned packet flags wrong: %+v", pkt)
		}
		if pkt.Key != top1.Key && pkt.Key != top2.Key {
			t.Errorf("unexpected reissue %v", pkt.Key)
		}
		if pkt.Key == shadowed.Key || pkt.Key == other.Key {
			t.Errorf("reissued wrong packet %v", pkt.Key)
		}
	}
	if ops.metrics.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", ops.metrics.Suppressed)
	}
}

func TestRollbackAbortsDependents(t *testing.T) {
	ops := newMockOps()
	p := Rollback().New(ops)
	top := ops.seed(stamp.FromPath(0, 1), stamp.FromPath(0), 1, 3, true)
	// Resident tasks: one genealogical dependent of the reissue point, one
	// unrelated.
	dep := proto.TaskKey{Stamp: stamp.FromPath(0, 1, 2)}
	unrelated := proto.TaskKey{Stamp: stamp.FromPath(0, 7)}
	ops.keys = []proto.TaskKey{dep, unrelated}

	p.OnFailureDetected(3)

	if len(ops.aborted) != 1 || !strings.Contains(ops.aborted[0], dep.String()) {
		t.Fatalf("aborted = %v, want only %v", ops.aborted, dep)
	}
	if !strings.Contains(ops.aborted[0], top.Key.Stamp.String()) {
		t.Errorf("abort scope missing: %v", ops.aborted[0])
	}
}

func TestRollbackLazySkipsAborts(t *testing.T) {
	ops := newMockOps()
	p := RollbackLazy().New(ops)
	ops.seed(stamp.FromPath(0, 1), stamp.FromPath(0), 1, 3, true)
	ops.keys = []proto.TaskKey{{Stamp: stamp.FromPath(0, 1, 2)}}
	p.OnFailureDetected(3)
	if len(ops.aborted) != 0 {
		t.Fatalf("lazy rollback aborted %v", ops.aborted)
	}
	if len(ops.respawned) != 1 {
		t.Fatalf("lazy rollback reissued %d", len(ops.respawned))
	}
}

func TestRollbackOrphanHandling(t *testing.T) {
	ops := newMockOps()
	p := Rollback().New(ops)
	res := &proto.Result{Child: proto.TaskKey{Stamp: stamp.FromPath(0, 5)}}
	p.OnResultUndeliverable(res)
	if len(ops.aborted) != 1 {
		t.Fatalf("orphan not aborted: %v", ops.aborted)
	}
	p.OnResultRejected(res)
	if len(ops.aborted) != 2 {
		t.Fatal("rejected orphan not aborted")
	}
	p.OnGrandResult(res)
	if len(ops.relayed) != 0 {
		t.Fatal("rollback relayed a grand result")
	}
}

func TestSpliceTwinsDeadChildren(t *testing.T) {
	ops := newMockOps()
	p := Splice().New(ops)
	// Parent waiting: twin expected. Parent already has the value: no twin.
	waiting := ops.seed(stamp.FromPath(0, 1), stamp.FromPath(0), 1, 3, true)
	ops.seed(stamp.FromPath(0, 2), stamp.FromPath(0), 2, 3, false)
	// Different destination: untouched.
	ops.seed(stamp.FromPath(0, 3), stamp.FromPath(0), 3, 5, true)

	p.OnFailureDetected(3)

	if len(ops.respawned) != 1 {
		t.Fatalf("twins = %d, want 1", len(ops.respawned))
	}
	twin := ops.respawned[0]
	if !twin.Twin || twin.Reissue {
		t.Errorf("twin flags wrong: %+v", twin)
	}
	if twin.Key != waiting.Key {
		t.Errorf("twinned %v, want %v", twin.Key, waiting.Key)
	}
	if len(ops.aborted) != 0 {
		t.Error("splice aborted tasks")
	}
}

func TestSpliceEscalatesOrphans(t *testing.T) {
	ops := newMockOps()
	p := Splice().New(ops)
	res := &proto.Result{
		Child:      proto.TaskKey{Stamp: stamp.FromPath(0, 1, 0)},
		DeadParent: proto.Addr{Proc: 3, Task: proto.TaskKey{Stamp: stamp.FromPath(0, 1)}},
		Remaining:  []proto.Addr{{Proc: 0, Task: proto.TaskKey{Stamp: stamp.FromPath(0)}}},
	}
	p.OnResultUndeliverable(res)
	if len(ops.escalated) != 1 {
		t.Fatalf("escalated = %d, want 1", len(ops.escalated))
	}
	if ops.metrics.OrphanResults != 1 {
		t.Errorf("orphan results = %d", ops.metrics.OrphanResults)
	}
}

func TestSpliceGrandResultCreatesTwinAndRelays(t *testing.T) {
	ops := newMockOps()
	p := Splice().New(ops)
	ops.policy = p
	dead := ops.seed(stamp.FromPath(0, 1), stamp.FromPath(0), 1, 3, true)
	res := &proto.Result{
		Child:      proto.TaskKey{Stamp: stamp.FromPath(0, 1, 0)},
		ParentTask: proto.TaskKey{Stamp: stamp.FromPath(0)},
		DeadParent: proto.Addr{Proc: 3, Task: dead.Key},
	}
	// The failure is not yet known here: the grand result must declare it
	// (which triggers OnFailureDetected → twin) and then relay.
	p.OnGrandResult(res)
	if len(ops.declared) != 1 || ops.declared[0] != 3 {
		t.Fatalf("declared = %v, want [3]", ops.declared)
	}
	if len(ops.respawned) != 1 || !ops.respawned[0].Twin {
		t.Fatalf("twin not created: %v", ops.respawned)
	}
	if len(ops.relayed) != 1 {
		t.Fatalf("relayed = %d, want 1", len(ops.relayed))
	}
	if ops.metrics.Relayed != 1 {
		t.Errorf("relay metric = %d", ops.metrics.Relayed)
	}
}

func TestSpliceGrandResultWithoutCheckpointDropsLate(t *testing.T) {
	ops := newMockOps()
	p := Splice().New(ops)
	res := &proto.Result{
		Child:      proto.TaskKey{Stamp: stamp.FromPath(0, 1, 0)},
		DeadParent: proto.Addr{Proc: 3, Task: proto.TaskKey{Stamp: stamp.FromPath(0, 1)}},
	}
	p.OnGrandResult(res)
	if len(ops.respawned) != 0 || len(ops.relayed) != 0 {
		t.Fatal("acted on a grand result with no retained checkpoint")
	}
	if len(ops.dropped) != 1 {
		t.Fatalf("dropped = %d, want 1", len(ops.dropped))
	}
}

func TestSpliceGrandResultExtinctValue(t *testing.T) {
	// Checkpoint exists but still settled on the (known) dead processor and
	// the parent hole is already filled — OnFailureDetected declines to
	// twin, so the value is extinct.
	ops := newMockOps()
	p := Splice().New(ops)
	dead := ops.seed(stamp.FromPath(0, 1), stamp.FromPath(0), 1, 3, false)
	ops.faulty[3] = true
	res := &proto.Result{
		Child:      proto.TaskKey{Stamp: stamp.FromPath(0, 1, 0)},
		DeadParent: proto.Addr{Proc: 3, Task: dead.Key},
	}
	p.OnGrandResult(res)
	if len(ops.respawned) != 0 {
		t.Fatal("twinned although parent hole was filled")
	}
	if len(ops.relayed) != 0 {
		t.Fatal("relayed an extinct value")
	}
	if len(ops.dropped) != 1 {
		t.Fatalf("dropped = %d, want 1", len(ops.dropped))
	}
}

func TestSpliceRejectedResultDropped(t *testing.T) {
	ops := newMockOps()
	p := Splice().New(ops)
	p.OnResultRejected(&proto.Result{Child: proto.TaskKey{Stamp: stamp.FromPath(9)}})
	if len(ops.escalated) != 0 {
		t.Fatal("splice escalated a rejected (case 8) result")
	}
	if len(ops.dropped) != 1 {
		t.Fatal("rejected result not dropped")
	}
}
