package recovery

import (
	"testing"

	"repro/internal/proto"
	"repro/internal/stamp"
)

func TestIncrementalDrainsHotBeforeWarm(t *testing.T) {
	ops := newMockOps()
	p := (&IncrementalScheme{Budget: 1, Period: 8}).New(ops)

	// Three topmost checkpoints lost on proc 3. The parents of warmA/warmB
	// wait on several holes; hot's parent is blocked on that hole alone.
	warmA := ops.seed(stamp.FromPath(0, 1), stamp.FromPath(0), 1, 3, true)
	warmB := ops.seed(stamp.FromPath(0, 2), stamp.FromPath(0), 2, 3, true)
	hot := ops.seed(stamp.FromPath(1, 0), stamp.FromPath(1), 0, 3, true)
	ops.unfilled[warmA.Parent.Task] = 2
	ops.unfilled[warmB.Parent.Task] = 2
	ops.unfilled[hot.Parent.Task] = 1

	p.OnFailureDetected(3)

	// First drain runs at detection: the critical-path entry goes first even
	// though both warm stamps sort before it.
	if len(ops.respawned) != 1 || ops.respawned[0].Key != hot.Key {
		t.Fatalf("first drain respawned %v, want %v", ops.respawned, hot.Key)
	}
	if !ops.respawned[0].Reissue || ops.respawned[0].Twin {
		t.Errorf("reissue flags wrong: %+v", ops.respawned[0])
	}
	if len(ops.deferred) != 1 || ops.deferred[0].delay != 8 {
		t.Fatalf("deferred = %+v, want one drain 8 ticks out", ops.deferred)
	}

	// Remaining drains pace out one per period, in stamp order.
	ops.fireDeferred(t)
	ops.fireDeferred(t)
	if len(ops.respawned) != 3 {
		t.Fatalf("respawned %d, want 3", len(ops.respawned))
	}
	if ops.respawned[1].Key != warmA.Key || ops.respawned[2].Key != warmB.Key {
		t.Errorf("warm order %v, %v; want %v, %v",
			ops.respawned[1].Key, ops.respawned[2].Key, warmA.Key, warmB.Key)
	}
	if len(ops.deferred) != 0 {
		t.Errorf("queue empty but a drain is still armed: %+v", ops.deferred)
	}
	if ops.metrics.PacedReissues != 3 {
		t.Errorf("PacedReissues = %d, want 3", ops.metrics.PacedReissues)
	}
}

func TestIncrementalSuppressesShadowed(t *testing.T) {
	ops := newMockOps()
	p := (&IncrementalScheme{Budget: 4, Period: 8}).New(ops)
	top := ops.seed(stamp.FromPath(0, 1), stamp.FromPath(0), 1, 3, true)
	ops.seed(stamp.FromPath(0, 1, 0, 0), stamp.FromPath(0, 1, 0), 0, 3, true)

	p.OnFailureDetected(3)

	if len(ops.respawned) != 1 || ops.respawned[0].Key != top.Key {
		t.Fatalf("respawned %v, want only topmost %v", ops.respawned, top.Key)
	}
	if ops.metrics.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", ops.metrics.Suppressed)
	}
}

func TestIncrementalDropsMootEntriesWithoutBudget(t *testing.T) {
	ops := newMockOps()
	p := (&IncrementalScheme{Budget: 1, Period: 5}).New(ops)
	gone := ops.seed(stamp.FromPath(0, 1), stamp.FromPath(0), 1, 3, true)
	keep := ops.seed(stamp.FromPath(0, 2), stamp.FromPath(0), 2, 3, true)
	ops.unfilled[gone.Parent.Task] = 1 // would be hot — but it dies first
	ops.unfilled[keep.Parent.Task] = 2

	// The hole fills (a late result arrived) before detection: the entry is
	// moot and must not consume the drain budget, so keep goes out in the
	// very first drain.
	ops.store.Release(gone.Key)
	p.OnFailureDetected(3)

	if len(ops.respawned) != 1 || ops.respawned[0].Key != keep.Key {
		t.Fatalf("respawned %v, want %v", ops.respawned, keep.Key)
	}
	if len(ops.deferred) != 0 {
		t.Errorf("moot-only residue kept a drain armed: %+v", ops.deferred)
	}
}

func TestIncrementalRevalidatesBetweenDrains(t *testing.T) {
	ops := newMockOps()
	p := (&IncrementalScheme{Budget: 1, Period: 5}).New(ops)
	first := ops.seed(stamp.FromPath(0, 1), stamp.FromPath(0), 1, 3, true)
	second := ops.seed(stamp.FromPath(0, 2), stamp.FromPath(0), 2, 3, true)

	p.OnFailureDetected(3)
	if len(ops.respawned) != 1 || ops.respawned[0].Key != first.Key {
		t.Fatalf("first drain respawned %v, want %v", ops.respawned, first.Key)
	}

	// Between drains the second parent's hole fills: the queued entry must
	// be discarded at the next drain, not reissued.
	ops.store.Release(second.Key)
	ops.fireDeferred(t)
	if len(ops.respawned) != 1 {
		t.Fatalf("reissued a released checkpoint: %v", ops.respawned[1:])
	}
	if len(ops.deferred) != 0 {
		t.Errorf("drain still armed after queue emptied: %+v", ops.deferred)
	}
}

func TestIncrementalAbortsDependentsAtReissueTime(t *testing.T) {
	ops := newMockOps()
	p := (&IncrementalScheme{Budget: 1, Period: 5}).New(ops)
	top := ops.seed(stamp.FromPath(0, 1), stamp.FromPath(0), 1, 3, true)
	dep := proto.TaskKey{Stamp: stamp.FromPath(0, 1, 2)}
	unrelated := proto.TaskKey{Stamp: stamp.FromPath(0, 7)}
	ops.keys = []proto.TaskKey{dep, unrelated}

	p.OnFailureDetected(3)

	if len(ops.aborted) != 1 {
		t.Fatalf("aborted = %v, want only the dependent of %v", ops.aborted, top.Key)
	}
}

func TestIncrementalMergesOverlappingFailures(t *testing.T) {
	ops := newMockOps()
	p := (&IncrementalScheme{Budget: 1, Period: 5}).New(ops)
	threeA := ops.seed(stamp.FromPath(0, 1), stamp.FromPath(0), 1, 3, true)
	threeB := ops.seed(stamp.FromPath(0, 3), stamp.FromPath(0), 3, 3, true)
	onFour := ops.seed(stamp.FromPath(0, 2), stamp.FromPath(0), 2, 4, true)

	p.OnFailureDetected(3)
	// Second failure lands while the first recovery is still draining: its
	// work joins the existing cadence instead of starting a parallel one.
	p.OnFailureDetected(4)

	if len(ops.respawned) != 1 || ops.respawned[0].Key != threeA.Key {
		t.Fatalf("respawned %v, want %v first", ops.respawned, threeA.Key)
	}
	if len(ops.deferred) != 1 {
		t.Fatalf("deferred = %+v, want exactly one armed drain", ops.deferred)
	}
	// The merged queue drains in stamp order regardless of which failure
	// contributed the entry.
	ops.fireDeferred(t)
	ops.fireDeferred(t)
	if len(ops.respawned) != 3 ||
		ops.respawned[1].Key != onFour.Key || ops.respawned[2].Key != threeB.Key {
		t.Fatalf("merged drain order %v, want %v then %v",
			ops.respawned[1:], onFour.Key, threeB.Key)
	}
}
