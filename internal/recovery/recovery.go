// Package recovery implements the paper's two fault-recovery schemes on top
// of functional checkpointing, plus an online incremental third:
//
//   - Rollback (§3): on failure of processor B, every processor reissues the
//     topmost checkpointed tasks it had settled on B and abandons (aborts)
//     the genealogical dependents of those reissue points. Intermediate
//     results computed by orphans are discarded.
//
//   - Splice (§4): every parent of a task lost on B regenerates a twin of
//     the dead task; orphan results that cannot reach their dead parent are
//     forwarded to the grandparent (or deeper ancestors, §5.2), which relays
//     them to the twin. Partial results are salvaged instead of discarded.
//
//   - Incremental (incremental.go): rollback's reissues, re-dispersed one
//     at a time under a paced budget, ordered by live demand — critical-path
//     holes first — so repair interleaves with useful work and unaffected
//     requests keep flowing during recovery.
//
// Policies are per-processor objects invoked by the machine at three hook
// points: a failure becomes known, a locally computed result proves
// undeliverable, and an orphan ("grandchild") result arrives for relay.
// The machine stays scheme-neutral; everything scheme-specific lives here.
package recovery

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/proto"
	"repro/internal/registry"
	"repro/internal/stamp"
	"repro/internal/trace"
)

// Ops is the view a policy has of its processor. It is implemented by the
// machine's processor type.
type Ops interface {
	// Self is this processor's id.
	Self() proto.ProcID
	// Store is the processor's functional-checkpoint table (§3.2).
	Store() *checkpoint.Store
	// ResidentTaskKeys lists live resident tasks in deterministic
	// (stamp-preorder) order.
	ResidentTaskKeys() []proto.TaskKey
	// TaskWaitingOnHole reports whether task is resident with the given
	// demand slot still unfilled.
	TaskWaitingOnHole(task proto.TaskKey, holeID int) bool
	// Respawn re-injects a retained task packet: the packet is checkpointed
	// again, re-placed by the load balancer, and its parent's hole record is
	// re-armed. The packet must carry Reissue or Twin as appropriate.
	Respawn(pkt *proto.TaskPacket)
	// Abort kills a resident task and garbage-collects its abandoned
	// relatives (§3.2). scope, when not the root stamp, bounds the upward
	// propagation: relatives are aborted only while their stamps remain
	// genealogical dependents of scope (the reissued checkpoint). Pass the
	// root stamp for a downward-only abort.
	Abort(task proto.TaskKey, scope stamp.Stamp, reason string)
	// EscalateResult forwards an undeliverable result toward the first
	// live ancestor in res.Remaining as a grandchild result (§4.2); if no
	// live ancestor remains the result is stranded (§5.2) and dropped.
	EscalateResult(res *proto.Result)
	// RelayToTwin forwards an orphan result from this (ancestor) processor
	// to the current location of the dead task's twin, buffering while the
	// twin's placement is still unacknowledged.
	RelayToTwin(res *proto.Result)
	// DeclareFaulty marks p failed (idempotent), floods the announcement,
	// and triggers OnFailureDetected locally.
	DeclareFaulty(p proto.ProcID)
	// IsKnownFaulty reports whether p is already believed failed.
	IsKnownFaulty(p proto.ProcID) bool
	// DropResult records an abandoned result (late duplicate or stranded).
	DropResult(res *proto.Result, stranded bool)
	// Log appends a trace event attributed to this processor.
	Log(kind trace.Kind, task fmt.Stringer, note string)
	// Metrics is the machine-wide counter sink.
	Metrics() *trace.Metrics
	// Defer schedules fn on this processor's own (shard-local) event kernel
	// after delay virtual ticks; the callback is dropped if the processor
	// dies first. Pacing through Defer keeps paced decisions on the owning
	// shard, which is what makes incremental recovery shard-invariant.
	Defer(delay int64, fn func())
	// UnfilledHoles is the number of demand slots the resident task still
	// waits on, or -1 when the task is gone or aborted. A parent with
	// exactly one unfilled hole is blocked on that hole alone — the
	// critical-path signal the incremental scheme drains first.
	UnfilledHoles(task proto.TaskKey) int
}

// Policy is the per-processor recovery behaviour.
type Policy interface {
	// OnFailureDetected runs once per (this processor, failed processor)
	// pair, when the failure first becomes known here.
	OnFailureDetected(failed proto.ProcID)
	// OnResultUndeliverable runs when a locally completed task's result
	// cannot reach its parent because the parent's processor failed.
	OnResultUndeliverable(res *proto.Result)
	// OnResultRejected runs when the parent's processor is alive but no
	// longer knows the addressee task (completed-and-retired, or aborted):
	// Figure 5 case 8 territory.
	OnResultRejected(res *proto.Result)
	// OnGrandResult runs when an orphan result arrives addressed to an
	// ancestor task resident here.
	OnGrandResult(res *proto.Result)
}

// Scheme constructs per-processor policies and names the scheme.
type Scheme interface {
	Name() string
	New(ops Ops) Policy
}

// --- None ---

// NoneScheme is the no-fault-tolerance baseline: checkpoints may still be
// retained (for overhead measurement) but nothing is ever recovered.
type NoneScheme struct{}

// None returns the no-recovery scheme.
func None() Scheme { return NoneScheme{} }

// Name implements Scheme.
func (NoneScheme) Name() string { return "none" }

// New implements Scheme.
func (NoneScheme) New(ops Ops) Policy { return nonePolicy{ops} }

type nonePolicy struct{ ops Ops }

func (nonePolicy) OnFailureDetected(proto.ProcID) {}

func (p nonePolicy) OnResultUndeliverable(res *proto.Result) {
	p.ops.DropResult(res, false)
}

func (p nonePolicy) OnResultRejected(res *proto.Result) {
	p.ops.DropResult(res, false)
}

func (p nonePolicy) OnGrandResult(res *proto.Result) {
	p.ops.DropResult(res, false)
}

// --- Rollback (§3) ---

// RollbackScheme implements §3: reissue topmost checkpoints, discard
// everything below them.
type RollbackScheme struct {
	// EagerAbort controls whether genealogical dependents of reissued
	// checkpoints are aborted immediately at failure-detection time
	// (the default) or left to die lazily when their results prove
	// undeliverable. The lazy mode is the A1 ablation.
	EagerAbort bool
	// ReissueShadowed disables the §3.2 topmost rule: every checkpoint on
	// the failed processor is reissued, including genealogical dependents
	// of other reissues (the paper's "not fruitful" B5 case). This is the
	// A4 ablation quantifying what the suppression saves.
	ReissueShadowed bool
}

// Rollback returns the §3 scheme with eager orphan abortion.
func Rollback() Scheme { return &RollbackScheme{EagerAbort: true} }

// RollbackLazy returns the §3 scheme without eager abortion (ablation A1).
func RollbackLazy() Scheme { return &RollbackScheme{EagerAbort: false} }

// RollbackNoSuppress returns the §3 scheme without the topmost rule
// (ablation A4): shadowed checkpoints are reissued too.
func RollbackNoSuppress() Scheme {
	return &RollbackScheme{EagerAbort: true, ReissueShadowed: true}
}

// Name implements Scheme.
func (s *RollbackScheme) Name() string {
	switch {
	case s.ReissueShadowed:
		return "rollback-nosuppress"
	case s.EagerAbort:
		return "rollback"
	default:
		return "rollback-lazy"
	}
}

// New implements Scheme.
func (s *RollbackScheme) New(ops Ops) Policy {
	return &rollbackPolicy{ops: ops, eager: s.EagerAbort, reissueShadowed: s.ReissueShadowed}
}

type rollbackPolicy struct {
	ops             Ops
	eager           bool
	reissueShadowed bool
}

// OnFailureDetected implements §3.2: "When processor C identifies the
// failure of processor B, C simply reissues all the checkpointed tasks found
// in entry B of the table" — where "the table" holds only topmost
// checkpoints, so shadowed descendants are suppressed (the B5 case), and the
// abandoned dependents are aborted for garbage collection.
func (p *rollbackPolicy) OnFailureDetected(failed proto.ProcID) {
	st := p.ops.Store()
	top, shadowed := st.TopmostFor(failed)
	if p.reissueShadowed {
		// A4 ablation: no suppression — treat every checkpoint as topmost.
		top = append(top, shadowed...)
		shadowed = nil
	}
	for _, e := range shadowed {
		p.ops.Metrics().Suppressed++
		p.ops.Log(trace.KSuppress, e.Packet.Key, fmt.Sprintf("shadowed on %d", failed))
	}
	topStamps := make([]stamp.Stamp, 0, len(top))
	for _, e := range top {
		topStamps = append(topStamps, e.Packet.Key.Stamp)
	}
	for _, e := range top {
		pkt := e.Packet.Clone()
		pkt.Reissue = true
		pkt.Twin = false
		p.ops.Log(trace.KReissue, pkt.Key, fmt.Sprintf("lost on %d", failed))
		p.ops.Respawn(pkt)
	}
	if !p.eager {
		return
	}
	// Abort resident tasks that are genealogical dependents of a reissue
	// point: their whole subtree will be regenerated by the reissue, so
	// their partial results are abandoned (§3's stated cost).
	for _, key := range p.ops.ResidentTaskKeys() {
		for _, ts := range topStamps {
			if ts.IsAncestorOf(key.Stamp) {
				p.ops.Abort(key, ts, fmt.Sprintf("dependent of reissued %v", ts))
				break
			}
		}
	}
}

// OnResultUndeliverable implements §3.2's abort rule: "A task is also
// aborted if the result of the task cannot be forwarded to the parent task."
func (p *rollbackPolicy) OnResultUndeliverable(res *proto.Result) {
	p.ops.DropResult(res, false)
	p.ops.Abort(res.Child, stamp.Root(), "orphan: parent processor failed")
}

// OnResultRejected handles the parent-task-unknown case the same way.
func (p *rollbackPolicy) OnResultRejected(res *proto.Result) {
	p.ops.DropResult(res, false)
	p.ops.Abort(res.Child, stamp.Root(), "orphan: parent task gone")
}

// OnGrandResult: rollback has no grandparent linkage; per the §4.2 rule of
// thumb, unhandled packets are ignored.
func (p *rollbackPolicy) OnGrandResult(res *proto.Result) {
	p.ops.DropResult(res, false)
}

// --- Splice (§4) ---

// SpliceScheme implements §4: twins inherit the offspring of dead tasks via
// grandparent relays, salvaging partial results.
type SpliceScheme struct{}

// Splice returns the §4 scheme.
func Splice() Scheme { return SpliceScheme{} }

// Name implements Scheme.
func (SpliceScheme) Name() string { return "splice" }

// New implements Scheme.
func (SpliceScheme) New(ops Ops) Policy { return &splicePolicy{ops: ops} }

type splicePolicy struct{ ops Ops }

// OnFailureDetected implements the eager half of §4.1: "processor C may
// start recouping the loss of B2 as soon as C realizes that node B is dead"
// — every resident parent with an unfilled hole whose child settled on the
// failed processor regenerates a twin of that child.
func (p *splicePolicy) OnFailureDetected(failed proto.ProcID) {
	st := p.ops.Store()
	for _, e := range st.For(failed) {
		pkt := e.Packet
		if !p.ops.TaskWaitingOnHole(pkt.Parent.Task, pkt.HoleID) {
			// Parent already has the value (case 3 never needs a twin) or
			// the parent is gone; nothing to recoup from here.
			continue
		}
		twin := pkt.Clone()
		twin.Twin = true
		twin.Reissue = false
		p.ops.Log(trace.KTwin, twin.Key, fmt.Sprintf("step-parent for task lost on %d", failed))
		p.ops.Respawn(twin)
	}
}

// OnResultUndeliverable implements the orphan path of §4.1: "The algorithm
// commands D4 to forward the result to grandparent C1."
func (p *splicePolicy) OnResultUndeliverable(res *proto.Result) {
	p.ops.Metrics().OrphanResults++
	p.ops.Log(trace.KOrphanResult, res.Child, fmt.Sprintf("parent %v dead, escalating", res.DeadParent))
	p.ops.EscalateResult(res)
}

// OnResultRejected: the parent task is gone from a live processor, meaning
// its own result already propagated (or it was killed). The orphan value is
// extinct — case 8: "The result is discarded."
func (p *splicePolicy) OnResultRejected(res *proto.Result) {
	p.ops.DropResult(res, false)
}

// OnGrandResult implements the ancestor side of §4.2: "grandchild: Create a
// step-parent for the grandchild if there isn't one already. Transfer the
// result to its step-parent."
func (p *splicePolicy) OnGrandResult(res *proto.Result) {
	deadKey := res.DeadParent.Task
	st := p.ops.Store()
	if _, ok := st.Get(deadKey); !ok {
		// No retained checkpoint: the dead task's value already reached us
		// (and the checkpoint was released) or the relay point itself has
		// retired. Either way the orphan value is redundant.
		p.ops.DropResult(res, false)
		return
	}
	// Learning of the failure through an orphan result may precede the
	// fault announcement; declaring it triggers OnFailureDetected (which
	// creates the twin) before we relay.
	if !p.ops.IsKnownFaulty(res.DeadParent.Proc) {
		p.ops.DeclareFaulty(res.DeadParent.Proc)
	}
	if dest, ok := st.Dest(deadKey); ok && p.ops.IsKnownFaulty(dest) {
		// Still settled on a dead processor and OnFailureDetected chose not
		// to twin (parent hole already filled): the value is extinct.
		p.ops.DropResult(res, false)
		return
	}
	p.ops.Metrics().Relayed++
	p.ops.Log(trace.KRelay, res.Child, fmt.Sprintf("to step-parent %v", deadKey))
	p.ops.RelayToTwin(res)
}

// schemes is the single statement of which schemes exist. Config
// validation, CLI help/error text and ByName all derive from it, so a new
// scheme registered here is automatically discoverable everywhere.
var schemes = registry.New[func() Scheme]("recovery", "scheme")

func init() {
	schemes.MustRegister("incremental", Incremental)
	schemes.MustRegister("none", None)
	schemes.MustRegister("rollback", Rollback)
	schemes.MustRegister("rollback-lazy", RollbackLazy)
	schemes.MustRegister("rollback-nosuppress", RollbackNoSuppress)
	schemes.MustRegister("splice", Splice)
}

// Names lists every registered scheme name in sorted order — the exact
// strings ByName accepts.
func Names() []string { return schemes.Names() }

// Known reports whether name is a registered scheme name.
func Known(name string) bool { return schemes.Known(name) }

// ByName returns a scheme from its CLI name. The error text lists the
// registered names, so callers can surface it verbatim.
func ByName(name string) (Scheme, error) {
	ctor, err := schemes.Get(name)
	if err != nil {
		return nil, err
	}
	return ctor(), nil
}
