// Online incremental recovery: a third scheme alongside rollback (§3) and
// splice (§4). Rollback repairs a dead processor's subtree all at once — the
// detection tick reissues every topmost checkpoint and aborts every
// genealogical dependent, a stop-the-world burst for the affected subtree.
// The incremental scheme re-disperses the same checkpoints one at a time,
// prioritised by demand, so repair work is interleaved with useful work and
// unaffected requests keep flowing through the stream while the holes close.
//
// Mechanically each processor keeps a per-recovery work queue of the
// checkpoints it had settled on failed processors. The queue drains under a
// reissue budget: Budget checkpoints per drain tick, drains Period virtual
// ticks apart, the first drain running at detection time so the critical
// path never waits a full period. At every drain each queued entry is
// re-ranked against the *live* hole state — the demand tracker is the
// existing hole/abort protocol: results filling holes (MsgResult→fillHole)
// and scoped aborts retire or reprioritise entries between drains, so the
// queue reacts to everything that happened since the failure was detected.
//
// Drain order is deterministic: demand priority first, then checkpoint key
// (stamp preorder, then replica). Priorities:
//
//	hot  (0) — the live parent is blocked on this hole and it is the
//	           parent's LAST unfilled demand: filling it makes the parent
//	           runnable immediately. The critical path of an outstanding
//	           request.
//	warm (1) — the parent still waits on this hole but on other children
//	           too; the subtree is demanded but not rate-limiting yet.
//	moot (–) — the checkpoint was released (hole filled elsewhere), the
//	           task re-settled off the failed processor (another protocol
//	           path already recovered it), or the parent is gone (orphan
//	           subtree). Dropped without consuming budget — exactly the
//	           entries rollback's Respawn would have skipped.
//
// Each reissue carries rollback's correctness obligations, just paced: the
// respawned packet is marked Reissue and the genealogical dependents of the
// reissue point are aborted at that entry's drain tick (scoped, as in §3.2),
// so partial results under a reissued checkpoint are discarded exactly as
// rollback discards them — only later. Orphan results are handled with
// rollback's rules. Answers therefore stay observationally equivalent to
// rollback's; only the repair schedule differs.
//
// Shard invariance: the queue, its timers and every reissue decision live on
// the processor that owns the checkpoints, and pacing uses Ops.Defer, which
// schedules on that processor's own (shard-local) kernel. No cross-shard
// state is consulted, so streams are byte-identical at any shard count.
package recovery

import (
	"fmt"
	"sort"

	"repro/internal/proto"
	"repro/internal/stamp"
	"repro/internal/trace"
)

// Defaults for the pacing knobs: one reissue per drain, drains eight virtual
// ticks apart. With typical checkpoint counts per processor in the single
// digits this spreads a recovery over a few tens of ticks — long enough to
// interleave with stream work, short enough to beat ack/result timeouts by
// orders of magnitude.
const (
	DefaultIncrementalBudget = 1
	DefaultIncrementalPeriod = 8
)

// IncrementalScheme is the online incremental recovery scheme.
type IncrementalScheme struct {
	// Budget is the maximum number of checkpoints reissued per drain tick
	// (<=0 means DefaultIncrementalBudget). Moot entries are discarded
	// without consuming budget.
	Budget int
	// Period is the number of virtual ticks between drain ticks once a
	// queue is non-empty (<=0 means DefaultIncrementalPeriod). The first
	// drain always runs at detection time.
	Period int64
}

// Incremental returns the online incremental recovery scheme with the
// default pacing.
func Incremental() Scheme { return &IncrementalScheme{} }

// Name implements Scheme.
func (*IncrementalScheme) Name() string { return "incremental" }

// New implements Scheme.
func (s *IncrementalScheme) New(ops Ops) Policy {
	budget, period := s.Budget, s.Period
	if budget <= 0 {
		budget = DefaultIncrementalBudget
	}
	if period <= 0 {
		period = DefaultIncrementalPeriod
	}
	p := &incrementalPolicy{ops: ops, budget: budget, period: period}
	p.drainFn = p.drain
	return p
}

// incrWork is one queued repair: a checkpoint that was settled on a
// processor now known faulty. Entries are snapshotted at detection time and
// re-validated against live state at every drain.
type incrWork struct {
	key    proto.TaskKey
	failed proto.ProcID
}

type incrementalPolicy struct {
	ops    Ops
	budget int
	period int64

	// pending is the per-recovery work queue; entries from overlapping
	// failures merge into one queue so the budget bounds total repair
	// traffic, not per-failure traffic.
	pending []incrWork
	// draining is true while a drain timer is armed (or a drain is running),
	// so overlapping failure detections feed the existing cadence instead of
	// starting a second one.
	draining bool
	drainFn  func()
}

// OnFailureDetected snapshots the topmost checkpoints settled on the failed
// processor into the work queue and starts (or feeds) the paced drain.
// Shadowed checkpoints are suppressed exactly as in rollback §3.2: their
// subtrees are regenerated by the topmost reissue.
func (p *incrementalPolicy) OnFailureDetected(failed proto.ProcID) {
	st := p.ops.Store()
	top, shadowed := st.TopmostFor(failed)
	for _, e := range shadowed {
		p.ops.Metrics().Suppressed++
		p.ops.Log(trace.KSuppress, e.Packet.Key, fmt.Sprintf("shadowed on %d", failed))
	}
	for _, e := range top {
		p.ops.Log(trace.KDemandQueue, e.Packet.Key, fmt.Sprintf("queued: lost on %d", failed))
		p.pending = append(p.pending, incrWork{key: e.Packet.Key, failed: failed})
	}
	if len(p.pending) == 0 || p.draining {
		return
	}
	p.draining = true
	p.drain()
}

// classify ranks one queued entry against the live hole state: hot (0) when
// the parent's blocked hole is its last unfilled demand, warm (1) while the
// parent waits on other children too, moot (-1, nil packet) when nothing
// needs reissuing anymore.
func (p *incrementalPolicy) classify(w incrWork) (int, *proto.TaskPacket) {
	st := p.ops.Store()
	pkt, ok := st.Get(w.key)
	if !ok {
		return -1, nil // released: the hole was filled some other way
	}
	if dest, settled := st.Dest(w.key); !settled || dest != w.failed {
		return -1, nil // re-dispersed already by another protocol path
	}
	if !p.ops.TaskWaitingOnHole(pkt.Parent.Task, pkt.HoleID) {
		return -1, nil // parent gone: an orphan subtree, nothing demands it
	}
	if p.ops.UnfilledHoles(pkt.Parent.Task) == 1 {
		return 0, pkt
	}
	return 1, pkt
}

// drain runs one paced repair tick: re-rank every queued entry against live
// demand, discard moot entries, reissue the Budget most-demanded ones (with
// rollback's scoped dependent abort), and re-arm the timer while work
// remains.
func (p *incrementalPolicy) drain() {
	type rankedWork struct {
		w   incrWork
		pri int
		pkt *proto.TaskPacket
	}
	live := make([]rankedWork, 0, len(p.pending))
	for _, w := range p.pending {
		pri, pkt := p.classify(w)
		if pri < 0 {
			continue
		}
		live = append(live, rankedWork{w: w, pri: pri, pkt: pkt})
	}
	sort.Slice(live, func(i, j int) bool {
		a, b := live[i], live[j]
		if a.pri != b.pri {
			return a.pri < b.pri
		}
		if c := a.w.key.Stamp.Compare(b.w.key.Stamp); c != 0 {
			return c < 0
		}
		return a.w.key.Rep < b.w.key.Rep
	})
	n := p.budget
	if n > len(live) {
		n = len(live)
	}
	for _, r := range live[:n] {
		pkt := r.pkt.Clone()
		pkt.Reissue = true
		pkt.Twin = false
		p.ops.Metrics().PacedReissues++
		p.ops.Log(trace.KReissue, pkt.Key,
			fmt.Sprintf("lost on %d (paced, demand %s)", r.w.failed, demandName(r.pri)))
		p.ops.Respawn(pkt)
		// The scoped abort rollback performs at detection time happens here
		// instead, per reissue point at its drain tick: dependents of the
		// reissue are regenerated by it, so their partial results are
		// abandoned (§3.2), just later.
		ts := r.w.key.Stamp
		for _, key := range p.ops.ResidentTaskKeys() {
			if ts.IsAncestorOf(key.Stamp) {
				p.ops.Abort(key, ts, fmt.Sprintf("dependent of reissued %v", ts))
			}
		}
	}
	p.pending = p.pending[:0]
	for _, r := range live[n:] {
		p.pending = append(p.pending, r.w)
	}
	if len(p.pending) == 0 {
		p.draining = false
		return
	}
	p.ops.Defer(p.period, p.drainFn)
}

func demandName(pri int) string {
	if pri == 0 {
		return "hot"
	}
	return "warm"
}

// OnResultUndeliverable follows rollback §3.2: the orphan's subtree is
// regenerated by a (paced) reissue, so its partial result is discarded.
func (p *incrementalPolicy) OnResultUndeliverable(res *proto.Result) {
	p.ops.DropResult(res, false)
	p.ops.Abort(res.Child, stamp.Root(), "orphan: parent processor failed")
}

// OnResultRejected handles the parent-task-unknown case the same way.
func (p *incrementalPolicy) OnResultRejected(res *proto.Result) {
	p.ops.DropResult(res, false)
	p.ops.Abort(res.Child, stamp.Root(), "orphan: parent task gone")
}

// OnGrandResult: like rollback, incremental has no grandparent linkage.
func (p *incrementalPolicy) OnGrandResult(res *proto.Result) {
	p.ops.DropResult(res, false)
}
