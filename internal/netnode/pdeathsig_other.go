//go:build !linux

package netnode

import "os/exec"

// setPdeathsig is a no-op off linux; children still exit when the parent's
// socket breaks (the portable orphan watchdog in runChild).
func setPdeathsig(cmd *exec.Cmd) {}
