package netnode

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/registry"
)

// This file adapts the process-per-node cluster to core.Backend as the
// third registered substrate, "net". The contract is livenet's, one level
// further from the simulator: real OS processes instead of goroutines, real
// sockets instead of channels, SIGKILL instead of cooperative teardown —
// and the same Config/Workload/fault-plan vocabulary, the same admission
// policies, and the same ServiceReport fields, so every artifact driver
// runs unchanged and core.VerifyOn("net", …) asserts the §2.1 determinacy
// guarantee across the process boundary.

// DefaultTimescale maps fault-plan virtual ticks to wall time, matching
// livenet so Burst/Cascade plans keep their shape across the two wall-clock
// backends.
const DefaultTimescale = 2 * time.Microsecond

// DefaultDeadline bounds Wait when the config sets no virtual-time budget.
// Process spawn and socket hops make the net backend slower than the
// goroutine network; the default stays generous rather than clever.
const DefaultDeadline = 30 * time.Second

// Backend runs workloads on process-per-node clusters. Default is the
// registered instance; mutate it (CLI flags do) before Open/Run.
type Backend struct {
	// Timescale is the wall duration of one virtual tick (0 ⇒ DefaultTimescale).
	Timescale time.Duration
	// Deadline bounds Wait when Config.Deadline is zero (0 ⇒ DefaultDeadline).
	Deadline time.Duration
	// TCP switches the interconnect from unix sockets to loopback TCP.
	TCP bool
}

// Default is the registered "net" backend instance; cmd wiring mutates its
// fields (e.g. -net-tcp) before use.
var Default = &Backend{}

func init() { core.MustRegisterBackend(Default) }

// Name implements core.Backend.
func (*Backend) Name() string { return "net" }

// netParams is the validated shape of a core.Config on the net backend.
type netParams struct {
	procs       int
	seed        int64
	scheme      string
	eval        string
	timescale   time.Duration
	deadline    time.Duration
	maxInFlight int
	shedPolicy  bool
	queueBound  int
}

// prepare validates the config — the same capability surface as livenet
// (rollback or none, random placement, no sim-only knobs), shared by the
// one-shot and session paths.
func (b *Backend) prepare(cfg core.Config) (netParams, error) {
	p := netParams{procs: cfg.Procs, seed: cfg.Seed, scheme: cfg.Recovery}
	if p.procs == 0 {
		p.procs = 8
	}
	if p.seed == 0 {
		p.seed = 1
	}
	if p.scheme == "" {
		p.scheme = "rollback"
	}
	if p.scheme != "rollback" && p.scheme != "none" {
		return p, fmt.Errorf("netnode: recovery %q not supported on the net backend (rollback per-parent reissue, or none)", cfg.Recovery)
	}
	p.eval = cfg.Eval
	if p.eval == "" {
		p.eval = core.DefaultEval
	}
	if !lang.KnownEvaluator(p.eval) {
		return p, registry.Unknown("netnode", "evaluator", p.eval, lang.Evaluators())
	}
	if cfg.Placement != "" && cfg.Placement != "random" {
		return p, fmt.Errorf("netnode: placement %q not supported on the net backend (random only)", cfg.Placement)
	}
	p.maxInFlight = cfg.MaxInFlight
	switch cfg.Admission {
	case "", "queue":
	case "shed":
		p.shedPolicy = true
	default:
		var n int
		if cnt, err := fmt.Sscanf(cfg.Admission, "queue:%d", &n); cnt == 1 && err == nil &&
			fmt.Sprintf("queue:%d", n) == cfg.Admission && n > 0 {
			p.queueBound = n
			break
		}
		return p, fmt.Errorf("netnode: unknown admission policy %q (queue, queue:N, shed)", cfg.Admission)
	}
	switch {
	case cfg.RecoveryBudget != 0 || cfg.RecoveryPeriod != 0:
		return p, errors.New("netnode: recovery budget/period pace the incremental scheme, which only the simulator implements")
	case len(cfg.Replication) > 0:
		return p, errors.New("netnode: §5.3 task replication is not implemented on the net backend")
	case cfg.DisableCheckpoints:
		return p, errors.New("netnode: checkpoints cannot be disabled on the net backend (parents always retain child packets)")
	case cfg.Raw != nil:
		return p, errors.New("netnode: Config.Raw holds simulator machine knobs; the net backend takes none of them")
	}
	p.timescale = b.Timescale
	if p.timescale <= 0 {
		p.timescale = DefaultTimescale
	}
	p.deadline = b.Deadline
	if p.deadline <= 0 {
		p.deadline = DefaultDeadline
	}
	if cfg.Deadline > 0 {
		p.deadline = time.Duration(cfg.Deadline) * p.timescale
	}
	return p, nil
}

// Run implements core.Backend as the degenerate service stream, exactly
// like the other two backends.
func (b *Backend) Run(cfg core.Config, w core.Workload, plan *faults.Plan) (*core.Report, error) {
	if w.Program == nil {
		return nil, errors.New("netnode: program required")
	}
	sess, err := b.Open(cfg)
	if err != nil {
		return nil, err
	}
	req, err := sess.Submit(w)
	if err != nil {
		_, _ = sess.Close()
		return nil, err
	}
	if _, err := sess.Inject(plan); err != nil {
		_, _ = sess.Close()
		return nil, err
	}
	rep0, err := req.Wait()
	if err != nil {
		_, _ = sess.Close()
		return nil, err
	}
	totals, err := sess.Close()
	if err != nil {
		return nil, err
	}
	totals.Answer = rep0.Answer
	totals.Completed = rep0.Completed
	totals.Makespan = rep0.Makespan
	return totals, nil
}

// Open implements core.SessionBackend: fork the node processes and keep the
// cluster serving until Close.
func (b *Backend) Open(cfg core.Config) (core.Session, error) {
	p, err := b.prepare(cfg)
	if err != nil {
		return nil, err
	}
	c, err := New(p.procs, p.seed, Options{TCP: b.TCP, NoRecovery: p.scheme == "none", Eval: p.eval})
	if err != nil {
		return nil, err
	}
	s := &session{
		p:      p,
		c:      c,
		start:  time.Now(),
		stop:   make(chan struct{}),
		killed: map[proto.ProcID]bool{},
	}
	c.SetRequestDoneHook(s.onRequestDone)
	return s, nil
}

// session is one open net service stream — the admission, fault-replay and
// reporting logic is livenet's, against the process cluster.
type session struct {
	p     netParams
	c     *Cluster
	start time.Time

	mu       sync.Mutex
	stop     chan struct{}
	wg       sync.WaitGroup
	killed   map[proto.ProcID]bool
	closed   bool
	closeRep *core.Report

	inflight int
	queue    []*netRequest
	queueMax int
	shed     int
}

// Unit implements core.Session.
func (s *session) Unit() core.TimeUnit { return core.WallMicros }

// Submit implements core.Session: admission control decides at the offer,
// in Submit order, with the queue/queue:N/shed vocabulary shared across
// backends.
func (s *session) Submit(w core.Workload) (core.SessionRequest, error) {
	if w.Program == nil {
		return nil, errors.New("netnode: program required")
	}
	if _, ok := w.Program.Func(w.Fn); !ok {
		return nil, fmt.Errorf("netnode: unknown function %q", w.Fn)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("netnode: session closed")
	}
	now := time.Now()
	if s.p.maxInFlight > 0 && s.inflight >= s.p.maxInFlight {
		if s.p.shedPolicy || (s.p.queueBound > 0 && len(s.queue) >= s.p.queueBound) {
			s.shed++
			return &netRequest{s: s, shed: true, offered: now}, nil
		}
		nr := &netRequest{s: s, w: w, offered: now, admitCh: make(chan struct{})}
		s.queue = append(s.queue, nr)
		if len(s.queue) > s.queueMax {
			s.queueMax = len(s.queue)
		}
		return nr, nil
	}
	r, err := s.c.Submit(w.Program, w.Fn, w.Args)
	if err != nil {
		return nil, err
	}
	s.inflight++
	return &netRequest{s: s, r: r, offered: now, arrived: now}, nil
}

// onRequestDone frees the completed request's admission slot and installs
// the queue head, if any.
func (s *session) onRequestDone() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if s.closed || len(s.queue) == 0 ||
		(s.p.maxInFlight > 0 && s.inflight >= s.p.maxInFlight) {
		return
	}
	nr := s.queue[0]
	s.queue = s.queue[1:]
	r, err := s.c.Submit(nr.w.Program, nr.w.Fn, nr.w.Args)
	if err == nil {
		s.inflight++
	}
	nr.r, nr.admitErr = r, err
	nr.arrived = time.Now()
	close(nr.admitCh)
}

// Inject implements core.Session: validate the plan and replay it on the
// wall clock from the stream's start — each fault a SIGKILL of the target
// node's PID.
func (s *session) Inject(plan *faults.Plan) ([]int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("netnode: session closed")
	}
	if plan == nil {
		plan = faults.None()
	}
	if err := plan.Validate(s.p.procs); err != nil {
		return nil, err
	}
	for _, f := range plan.Faults {
		if f.Kind == faults.Corrupt {
			return nil, fmt.Errorf("netnode: fault %v: value corruption needs §5.3 voting, which only the simulator implements", f)
		}
	}
	union := map[proto.ProcID]bool{}
	for q := range s.killed {
		union[q] = true
	}
	for _, q := range plan.Procs() {
		union[q] = true
	}
	if len(union) >= s.p.procs {
		return nil, fmt.Errorf("netnode: plan kills %d of %d nodes; at least one must survive", len(union), s.p.procs)
	}
	s.killed = union
	sorted := plan.Sorted()
	stamps := make([]int64, 0, len(sorted))
	for _, f := range sorted {
		stamps = append(stamps, int64(time.Duration(f.At)*s.p.timescale/time.Microsecond))
	}
	s.wg.Add(1)
	go func(sorted []faults.Fault) {
		defer s.wg.Done()
		for _, f := range sorted {
			if d := time.Duration(f.At)*s.p.timescale - time.Since(s.start); d > 0 {
				select {
				case <-time.After(d):
				case <-s.stop:
					return
				}
			}
			select {
			case <-s.stop:
				return
			default:
			}
			_ = s.c.Kill(int(f.Proc))
		}
	}(sorted)
	return stamps, nil
}

// Close implements core.Session: stop the fault schedulers, tear every node
// process down (graceful drain, then SIGKILL stragglers), and report the
// stream totals.
func (s *session) Close() (*core.Report, error) {
	s.mu.Lock()
	if s.closed {
		rep := s.closeRep
		s.mu.Unlock()
		return rep, nil
	}
	s.closed = true
	close(s.stop)
	queueMax := s.queueMax
	s.mu.Unlock()
	s.wg.Wait()
	s.c.Shutdown()
	spawned, reissued, drained := s.c.Stats()
	rep := &core.Report{
		Backend:        "net",
		Makespan:       time.Since(s.start).Microseconds(),
		Unit:           core.WallMicros,
		Messages:       s.c.Messages(),
		MsgBytes:       s.c.MsgBytes(),
		Spawned:        spawned,
		Reissued:       reissued,
		Drained:        drained,
		Recoveries:     reissued,
		Procs:          s.p.procs,
		Scheme:         s.p.scheme,
		Placement:      "random",
		QueueDepthMax:  queueMax,
		ReissuesByNode: s.c.ReissuesByNode(),
	}
	s.mu.Lock()
	s.closeRep = rep
	s.mu.Unlock()
	return rep, nil
}

// netRequest implements core.SessionRequest, with livenet's offer/admit/
// budget semantics.
type netRequest struct {
	s       *session
	r       *Request
	w       core.Workload
	offered time.Time
	arrived time.Time

	shed     bool
	admitCh  chan struct{}
	admitErr error

	once sync.Once
	rep  *core.Report
	err  error
}

func (nr *netRequest) baseReport() *core.Report {
	s := nr.s
	return &core.Report{
		Backend:   "net",
		Unit:      core.WallMicros,
		Procs:     s.p.procs,
		Scheme:    s.p.scheme,
		Placement: "random",
	}
}

// Wait implements core.SessionRequest: block for the answer up to the
// per-request deadline counted from admission; a timeout is not an error.
func (nr *netRequest) Wait() (*core.Report, error) {
	nr.once.Do(func() {
		s := nr.s
		if nr.shed {
			rep := nr.baseReport()
			rep.Request = -1
			rep.Shed = true
			rep.ArrivedAt = nr.offered.Sub(s.start).Microseconds()
			nr.rep, nr.err = rep, core.ErrShed
			return
		}
		if nr.admitCh != nil {
			admitBudget := s.p.deadline - time.Since(nr.offered)
			if admitBudget < 0 {
				admitBudget = 0
			}
			select {
			case <-nr.admitCh:
				if nr.admitErr != nil {
					nr.err = nr.admitErr
					return
				}
			case <-time.After(admitBudget):
				rep := nr.baseReport()
				rep.Request = -1
				rep.ArrivedAt = nr.offered.Sub(s.start).Microseconds()
				rep.Makespan = time.Since(s.start).Microseconds() - rep.ArrivedAt
				nr.rep = rep
				return
			case <-s.stop:
				rep := nr.baseReport()
				rep.Request = -1
				rep.ArrivedAt = nr.offered.Sub(s.start).Microseconds()
				rep.Makespan = time.Since(s.start).Microseconds() - rep.ArrivedAt
				nr.rep = rep
				return
			}
		}
		var v expr.Value
		var waitErr error
		if remaining := s.p.deadline - time.Since(nr.arrived); remaining > 0 {
			v, waitErr = s.c.WaitRequest(nr.r, remaining)
		} else {
			select {
			case v = <-nr.r.resultCh:
			default:
				waitErr = errors.New("netnode: request budget already spent")
			}
		}
		done := time.Now()
		rep := nr.baseReport()
		rep.Request = nr.r.ID()
		rep.ArrivedAt = nr.arrived.Sub(s.start).Microseconds()
		rep.QueuedFor = nr.arrived.Sub(nr.offered).Microseconds()
		if waitErr == nil {
			rep.Completed = true
			rep.Answer = v
			rep.DoneAt = done.Sub(s.start).Microseconds()
			rep.Makespan = rep.DoneAt - rep.ArrivedAt
		} else {
			rep.Makespan = done.Sub(s.start).Microseconds() - rep.ArrivedAt
		}
		nr.rep = rep
	})
	return nr.rep, nr.err
}
