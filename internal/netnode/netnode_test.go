package netnode

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/proto"
)

// testParentEnv marks a re-exec of the test binary as the disposable parent
// for TestNoOrphansAfterParentSIGKILL: bring up a cluster, print the node
// pids, and hang until killed.
const testParentEnv = "APSIM_NETNODE_TEST_PARENT"

// TestMain is the re-exec hook: a spawned node process enters ChildMain and
// never reaches the test runner — exactly the wiring cmd/apsim uses.
func TestMain(m *testing.M) {
	ChildMain()
	if os.Getenv(testParentEnv) == "1" {
		testParentMain()
	}
	os.Exit(m.Run())
}

func testParentMain() {
	c, err := New(3, 1, Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	parts := make([]string, 0, 3)
	for _, pid := range c.Pids() {
		parts = append(parts, strconv.Itoa(pid))
	}
	fmt.Println(strings.Join(parts, " "))
	select {} // wait for the SIGKILL; teardown must come from the kernel
}

// procAlive reports whether pid names a running (non-zombie) process, via
// /proc so a zombie a slow init has not yet reaped still counts as dead.
func procAlive(pid int) bool {
	b, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
	if err != nil {
		return false
	}
	i := bytes.LastIndexByte(b, ')')
	if i < 0 || i+2 >= len(b) {
		return false
	}
	return b[i+2] != 'Z'
}

// requireAllDead polls until every pid is gone — the no-orphans acceptance
// assertion.
func requireAllDead(t *testing.T, pids []int) {
	t.Helper()
	if runtime.GOOS != "linux" {
		t.Skip("orphan check reads /proc")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		alive := 0
		for _, pid := range pids {
			if procAlive(pid) {
				alive++
			}
		}
		if alive == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d node processes still alive after teardown (pids %v)", alive, pids)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestNetBackendRegistered(t *testing.T) {
	b, err := core.ByName("net")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "net" {
		t.Fatalf("name = %q", b.Name())
	}
}

func TestClusterFaultFree(t *testing.T) {
	prog := lang.Fib()
	c, err := New(4, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pids := c.Pids()
	defer requireAllDead(t, pids)
	defer c.Shutdown()
	r, err := c.Submit(prog, "fib", []expr.Value{expr.VInt(12)})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.WaitRequest(r, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lang.RefEval(prog, "fib", []expr.Value{expr.VInt(12)})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(want) {
		t.Fatalf("fib(12) = %v over processes, want %v", v, want)
	}
	spawned, reissued, _ := c.Stats()
	if spawned == 0 {
		t.Error("no tasks spawned")
	}
	if reissued != 0 {
		t.Errorf("fault-free run reissued %d packets", reissued)
	}
	if c.Messages() == 0 || c.MsgBytes() <= c.Messages()*proto.FrameHeaderSize/2 {
		t.Errorf("byte accounting implausible: %d msgs, %d bytes", c.Messages(), c.MsgBytes())
	}
}

func TestClusterTCPTransport(t *testing.T) {
	prog := lang.Fib()
	c, err := New(3, 2, Options{TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	r, err := c.Submit(prog, "fib", []expr.Value{expr.VInt(10)})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.WaitRequest(r, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(expr.VInt(55)) {
		t.Fatalf("fib(10) = %v over tcp, want 55", v)
	}
}

// TestClusterSurvivesTwoSIGKILLs crashes two node processes with SIGKILL
// while the task tree is mid-flight; the answer must still match the
// sequential reference — §2.1 determinacy across real process deaths.
func TestClusterSurvivesTwoSIGKILLs(t *testing.T) {
	prog := lang.Fib()
	c, err := New(6, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pids := c.Pids()
	defer requireAllDead(t, pids)
	defer c.Shutdown()
	r, err := c.Submit(prog, "fib", []expr.Value{expr.VInt(16)})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := c.Kill(4); err != nil {
		t.Fatal(err)
	}
	v, err := c.WaitRequest(r, 60*time.Second)
	if err != nil {
		spawned, reissued, drained := c.Stats()
		t.Fatalf("no answer after SIGKILLs: %v (spawned=%d reissued=%d drained=%d)",
			err, spawned, reissued, drained)
	}
	if !v.Equal(expr.VInt(987)) {
		t.Fatalf("fib(16) = %v after two SIGKILLs, want 987", v)
	}
	// The killed pids must already be gone — SIGKILL plus the eager reaper.
	if runtime.GOOS == "linux" {
		for _, id := range []int{1, 4} {
			if procAlive(pids[id]) {
				t.Errorf("SIGKILLed node %d (pid %d) still alive", id, pids[id])
			}
		}
	}
}

// TestClusterRootReissue kills nodes hosting request roots: the supervisor
// is every root's parent and must reissue from its retained packets.
func TestClusterRootReissue(t *testing.T) {
	prog := lang.Fib()
	c, err := New(4, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	var reqs []*Request
	for i := 0; i < 4; i++ {
		r, err := c.Submit(prog, "fib", []expr.Value{expr.VInt(11)})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	// Roots spread round-robin over 4 nodes: killing 1 and 2 hits some.
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	want, err := lang.RefEval(prog, "fib", []expr.Value{expr.VInt(11)})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		v, err := c.WaitRequest(r, 60*time.Second)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !v.Equal(want) {
			t.Fatalf("request %d answer %v, want %v", i, v, want)
		}
	}
}

func TestKillValidation(t *testing.T) {
	c, err := New(2, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Kill(9); err == nil {
		t.Error("out-of-range kill accepted")
	}
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	// Death detection is the broken socket; give the router a moment.
	deadline := time.Now().Add(5 * time.Second)
	for c.Kill(1) == nil {
		if time.Now().After(deadline) {
			t.Fatal("double kill still accepted after 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNoOrphansAfterClose opens a net session through the public backend,
// runs a request, closes — and requires every node process gone.
func TestNoOrphansAfterClose(t *testing.T) {
	b := &Backend{Deadline: 20 * time.Second}
	sess, err := b.Open(core.Config{Procs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pids := sess.(*session).c.Pids()
	w, err := core.StandardWorkload("fib:10")
	if err != nil {
		t.Fatal(err)
	}
	req, err := sess.Submit(w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := req.Wait()
	if err != nil || !rep.Completed {
		t.Fatalf("request failed: %v %+v", err, rep)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	requireAllDead(t, pids)
}

// TestNoOrphansAfterParentSIGKILL crashes the *parent* with SIGKILL — the
// case where no Go cleanup runs — and requires the kernel's pdeathsig to
// take the node processes down with it.
func TestNoOrphansAfterParentSIGKILL(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("pdeathsig is linux-only; elsewhere the socket watchdog covers parent *exit* only")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), testParentEnv+"=1")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()
	line, err := bufio.NewReader(out).ReadString('\n')
	if err != nil {
		t.Fatalf("parent never reported pids: %v", err)
	}
	var pids []int
	for _, f := range strings.Fields(strings.TrimSpace(line)) {
		pid, err := strconv.Atoi(f)
		if err != nil {
			t.Fatalf("bad pid line %q", line)
		}
		pids = append(pids, pid)
	}
	if len(pids) != 3 {
		t.Fatalf("pid line %q, want 3 pids", line)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	requireAllDead(t, pids)
}

// TestNetServiceStream drives the full core session surface — SubmitSpec
// tickets, a mid-stream two-node SIGKILL burst, reference verification, and
// the ServiceReport — through the process backend.
func TestNetServiceStream(t *testing.T) {
	const procs, requests = 6, 8
	cl, err := core.OpenOn("net", core.Config{Procs: procs, Seed: 11, Recovery: "rollback"})
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{"fib:10", "fib:11", "tree:2,4", "tak:7,4,2"}
	var wg sync.WaitGroup
	tkCh := make(chan *core.Ticket, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(spec string) {
			defer wg.Done()
			tk, err := cl.SubmitSpec(spec)
			if err != nil {
				t.Error(err)
				return
			}
			tkCh <- tk
		}(specs[i%len(specs)])
	}
	if err := cl.Inject(faults.Burst(procs, 2, 2000, faults.CrashAnnounced, 7)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(tkCh)
	for tk := range tkCh {
		if _, err := tk.Verify(); err != nil {
			t.Fatalf("request %q: %v", tk.Workload().Spec, err)
		}
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != requests || sr.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0\n%s", sr.Completed, sr.Failed, requests, sr.Render())
	}
	if sr.Backend != "net" || sr.Unit != core.WallMicros {
		t.Fatalf("backend/unit = %s/%s", sr.Backend, sr.Unit)
	}
	if len(sr.FaultStamps) != 2 {
		t.Fatalf("fault stamps = %v, want 2 kills", sr.FaultStamps)
	}
	if sr.Messages == 0 || sr.MsgBytes == 0 {
		t.Fatalf("message accounting empty: %d msgs, %d bytes", sr.Messages, sr.MsgBytes)
	}
}

// TestNetAdmissionQueue bounds concurrency at one slot: queued requests are
// admitted in order as slots free and all complete.
func TestNetAdmissionQueue(t *testing.T) {
	b := &Backend{Deadline: 20 * time.Second}
	sess, err := b.Open(core.Config{Procs: 3, Seed: 2, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	w, err := core.StandardWorkload("fib:9")
	if err != nil {
		t.Fatal(err)
	}
	var reqs []core.SessionRequest
	for i := 0; i < 3; i++ {
		req, err := sess.Submit(w)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, req)
	}
	for i, req := range reqs {
		rep, err := req.Wait()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !rep.Completed {
			t.Fatalf("request %d not completed: %+v", i, rep)
		}
	}
	rep, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.QueueDepthMax < 1 {
		t.Fatalf("queue depth max = %d, want >= 1", rep.QueueDepthMax)
	}
}

// TestNetAdmissionShed drops overload instead of queueing it.
func TestNetAdmissionShed(t *testing.T) {
	b := &Backend{Deadline: 20 * time.Second}
	sess, err := b.Open(core.Config{Procs: 3, Seed: 2, MaxInFlight: 1, Admission: "shed"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	w, err := core.StandardWorkload("fib:12")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Submit(w); err != nil {
		t.Fatal(err)
	}
	req2, err := sess.Submit(w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := req2.Wait()
	if err != core.ErrShed {
		t.Fatalf("overload wait = %v, want core.ErrShed", err)
	}
	if !rep.Shed || rep.Completed {
		t.Fatalf("shed report wrong: %+v", rep)
	}
}

func TestNetRejectsUnsupportedConfigs(t *testing.T) {
	w, err := core.StandardWorkload("fib:8")
	if err != nil {
		t.Fatal(err)
	}
	short := &Backend{Deadline: 20 * time.Second}
	cases := []struct {
		cfg  core.Config
		plan *faults.Plan
		want string
	}{
		{core.Config{Recovery: "splice"}, nil, "recovery"},
		{core.Config{Placement: "gradient"}, nil, "placement"},
		{core.Config{Replication: map[string]int{"work": 3}}, nil, "replication"},
		{core.Config{DisableCheckpoints: true}, nil, "checkpoints"},
		{core.Config{Raw: &machine.Config{}}, nil, "Raw"},
		{core.Config{RecoveryBudget: 2}, nil, "budget"},
		{core.Config{RecoveryPeriod: 4}, nil, "budget"},
		{core.Config{Admission: "lifo"}, nil, "admission"},
		{core.Config{}, &faults.Plan{Faults: []faults.Fault{{At: 1, Proc: 0, Kind: faults.Corrupt}}}, "corruption"},
		{core.Config{Procs: 2}, faults.Burst(2, 2, 1, faults.CrashAnnounced, 1), "survive"},
		{core.Config{}, faults.Crash(proto.ProcID(99), 1, true), "out of range"},
	}
	for _, tc := range cases {
		_, err := short.Run(tc.cfg, w, tc.plan)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("cfg %+v: err = %v, want containing %q", tc.cfg, err, tc.want)
		}
	}
}

// TestNetMatchesSimAnswer runs the same workload on the simulator and the
// process cluster and requires identical answers — the cross-substrate
// determinacy claim the L5 artifact generalizes.
func TestNetMatchesSimAnswer(t *testing.T) {
	w, err := core.StandardWorkload("tak:8,5,2")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.ByName("sim")
	if err != nil {
		t.Fatal(err)
	}
	simRep, err := sim.Run(core.Config{Procs: 4, Seed: 3}, w, nil)
	if err != nil || !simRep.Completed {
		t.Fatalf("sim run failed: %v %+v", err, simRep)
	}
	netRep, err := (&Backend{Deadline: 20 * time.Second}).Run(core.Config{Procs: 4, Seed: 3}, w, nil)
	if err != nil || !netRep.Completed {
		t.Fatalf("net run failed: %v %+v", err, netRep)
	}
	if !netRep.Answer.Equal(simRep.Answer) {
		t.Fatalf("answers diverge: sim %v, net %v", simRep.Answer, netRep.Answer)
	}
	if simRep.MsgBytes == 0 || netRep.MsgBytes == 0 {
		t.Fatalf("byte accounting missing: sim %d, net %d", simRep.MsgBytes, netRep.MsgBytes)
	}
	if len(netRep.ReissuesByNode) != 4 {
		t.Fatalf("per-node stats = %v, want 4 entries", netRep.ReissuesByNode)
	}
}
