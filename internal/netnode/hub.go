package netnode

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/registry"
	"repro/internal/stamp"
)

// Request is one submitted root application: the cluster retains its root
// packet (the super-root pre-evaluation checkpoint of §4.3.1) and routes
// its answer to a private channel.
type Request struct {
	id       uint32
	resultCh chan expr.Value
	rootPkt  *proto.TaskPacket
	rootProg uint16
	rootDest proto.ProcID
	done     bool
}

// ID is the request's stream index.
func (r *Request) ID() int { return int(r.id) }

// sendq is an unbounded FIFO of outbound frames for one child. The router
// goroutines enqueue without ever blocking: if writes to children were
// synchronous, two mutually-full socket buffers would deadlock the whole
// mesh (parent blocked writing to a child that is itself blocked writing to
// the parent). Unbounded is safe here — the queue is bounded in practice by
// the task tree in flight, and a dead child's queue is dropped wholesale.
type sendq struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*proto.Frame
	closed bool
}

func newSendq() *sendq {
	s := &sendq{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push enqueues a frame; false means the queue is closed (child dead).
func (s *sendq) push(f *proto.Frame) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.q = append(s.q, f)
	s.cond.Signal()
	return true
}

// pop blocks for the next frame; false means closed and drained.
func (s *sendq) pop() (*proto.Frame, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.q) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.q) == 0 {
		return nil, false
	}
	f := s.q[0]
	s.q = s.q[1:]
	return f, true
}

func (s *sendq) close() {
	s.mu.Lock()
	s.closed = true
	s.q = nil
	s.cond.Broadcast()
	s.mu.Unlock()
}

// child is the supervisor's handle on one node process.
type child struct {
	id    int
	pid   int
	cmd   *managedProc
	conn  net.Conn
	alive atomic.Bool
	out   *sendq // outbound frames, drained by a dedicated writer goroutine

	// lastBeat is the wall stamp (UnixNano) of the last frame seen from the
	// child — heartbeat bookkeeping; death detection itself is the broken
	// connection.
	lastBeat atomic.Int64
	// reissues is the per-node recovery-load statistic, counted by the
	// router from FlagReissue spawn frames (attribution survives a later
	// SIGKILL of the node, unlike child-local counters).
	reissues atomic.Int64
}

// Cluster is a process-per-node machine: N child processes dialed into the
// parent's socket, the parent routing frames between them and acting as the
// super-root.
type Cluster struct {
	n       int
	seed    int64
	recov   bool
	eval    string
	network string
	addr    string
	dir     string // unix-socket temp dir ("" for tcp)
	ln      net.Listener

	children []*child

	// progMu guards the program table; programs ship once, by index.
	progMu  sync.Mutex
	progs   []*lang.Program
	progIdx map[*lang.Program]uint16

	// reqMu guards the request table and each request's rootDest/done;
	// deliverRoot and the death handler both take it, so a root reissue can
	// never race its own completion.
	reqMu     sync.Mutex
	reqs      map[uint32]*Request
	nextReq   uint32
	onReqDone func()

	// Stream counters. msgs/msgBytes count protocol frames (spawn, result,
	// node-down) the router carried, in real frame wire sizes — program
	// broadcasts and supervision traffic (hello, heartbeat, stats, shutdown)
	// are not interconnect load, matching the resident-code model of the
	// other backends. Spawned counts non-reissue spawn frames; reissued the
	// FlagReissue ones. Drained counts frames black-holed at dead nodes plus
	// the child-local drains the stats frames report at graceful shutdown
	// (a SIGKILLed node's local drains die with it — honest accounting:
	// nothing a dead processor counted can be read back).
	msgs      atomic.Int64
	msgBytes  atomic.Int64
	spawned   atomic.Int64
	reissued  atomic.Int64
	drained   atomic.Int64
	killsSeen atomic.Int64

	closing atomic.Bool
	quit    chan struct{}
	wg      sync.WaitGroup
}

// Options configure New beyond the required arguments.
type Options struct {
	// TCP switches the interconnect from a unix socket in a temp directory
	// to a loopback TCP listener.
	TCP bool
	// NoRecovery disables rollback reissue (the "none" scheme): deaths are
	// still announced, survivors just don't reissue, and lost work stays
	// lost.
	NoRecovery bool
	// Eval names the evaluator the node processes run reduction passes
	// with ("" = lang.DefaultEvaluator); it travels to children in the
	// environment contract.
	Eval string
}

// New brings up a cluster of n node processes. Every child must complete
// the dial-and-hello handshake before New returns; a child that fails to
// appear within the setup timeout fails the whole Open, with the already-
// started processes reaped.
func New(n int, seed int64, opts Options) (*Cluster, error) {
	if n < 2 {
		return nil, errors.New("netnode: need at least 2 nodes")
	}
	eval := opts.Eval
	if eval == "" {
		eval = lang.DefaultEvaluator
	}
	if !lang.KnownEvaluator(eval) {
		return nil, registry.Unknown("netnode", "evaluator", eval, lang.Evaluators())
	}
	c := &Cluster{
		n:       n,
		seed:    seed,
		recov:   !opts.NoRecovery,
		eval:    eval,
		reqs:    map[uint32]*Request{},
		progIdx: map[*lang.Program]uint16{},
		quit:    make(chan struct{}),
	}
	if opts.TCP {
		c.network = "tcp"
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		c.ln, c.addr = ln, ln.Addr().String()
	} else {
		dir, err := os.MkdirTemp("", SocketPattern)
		if err != nil {
			return nil, err
		}
		c.network, c.dir, c.addr = "unix", dir, dir+"/hub.sock"
		ln, err := net.Listen("unix", c.addr)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		c.ln = ln
	}
	if err := c.startChildren(); err != nil {
		c.teardown()
		return nil, err
	}
	for _, ch := range c.children {
		c.wg.Add(2)
		go c.route(ch)
		go c.writer(ch)
	}
	return c, nil
}

// writer drains one child's outbox onto its socket. Write errors are the
// same failure signal as read errors: the child is gone.
func (c *Cluster) writer(ch *child) {
	defer c.wg.Done()
	for {
		f, ok := ch.out.pop()
		if !ok {
			return
		}
		if _, err := proto.WriteFrame(ch.conn, f); err != nil {
			if !c.closing.Load() {
				c.nodeDied(ch)
			}
			return
		}
	}
}

// startChildren spawns the n processes and completes the hello handshake.
func (c *Cluster) startChildren() error {
	byID := make([]*child, c.n)
	for i := 0; i < c.n; i++ {
		proc, err := startNodeProc(i, c.n, c.seed, c.network, c.addr, c.recov, c.eval)
		if err != nil {
			return fmt.Errorf("netnode: start node %d: %w", i, err)
		}
		byID[i] = &child{id: i, cmd: proc, out: newSendq()}
	}
	deadline := time.Now().Add(15 * time.Second)
	for connected := 0; connected < c.n; connected++ {
		if d, ok := c.ln.(interface{ SetDeadline(time.Time) error }); ok {
			_ = d.SetDeadline(deadline)
		}
		conn, err := c.ln.Accept()
		if err != nil {
			c.children = compactChildren(byID)
			return fmt.Errorf("netnode: waiting for node handshakes (%d/%d): %w", connected, c.n, err)
		}
		_ = conn.SetReadDeadline(deadline)
		f, err := proto.ReadFrame(conn)
		if err != nil || f.Type != proto.FrameHello {
			conn.Close()
			c.children = compactChildren(byID)
			return fmt.Errorf("netnode: bad handshake: %v (frame %v)", err, f)
		}
		id, pid, err := parseHello(f.Payload)
		if err != nil || id < 0 || id >= c.n || byID[id].conn != nil {
			conn.Close()
			c.children = compactChildren(byID)
			return fmt.Errorf("netnode: bad hello (id %d): %v", id, err)
		}
		_ = conn.SetReadDeadline(time.Time{})
		byID[id].conn = conn
		byID[id].pid = pid
		byID[id].alive.Store(true)
		byID[id].lastBeat.Store(time.Now().UnixNano())
	}
	c.children = byID
	return nil
}

// compactChildren keeps the partially-started set reapable on a failed New.
func compactChildren(byID []*child) []*child {
	out := byID[:0:0]
	for _, ch := range byID {
		if ch != nil {
			out = append(out, ch)
		}
	}
	return out
}

// Pids lists the node process ids, for tests asserting no orphans survive.
func (c *Cluster) Pids() []int {
	out := make([]int, len(c.children))
	for i, ch := range c.children {
		out[i] = ch.cmd.Pid()
	}
	return out
}

// SetRequestDoneHook runs fn after a request's *first* root delivery,
// outside reqMu (it may re-enter Submit) — the bounded-admission contract
// shared with livenet.
func (c *Cluster) SetRequestDoneHook(fn func()) {
	c.reqMu.Lock()
	c.onReqDone = fn
	c.reqMu.Unlock()
}

// shipProgram assigns the program an index and broadcasts its source to
// every live node, once. Children that die later simply lose the code with
// everything else.
func (c *Cluster) shipProgram(prog *lang.Program) (uint16, error) {
	c.progMu.Lock()
	defer c.progMu.Unlock()
	if idx, ok := c.progIdx[prog]; ok {
		return idx, nil
	}
	if len(c.progs) > 0xffff {
		return 0, errors.New("netnode: program table full")
	}
	idx := uint16(len(c.progs))
	payload := programPayload(idx, lang.Format(prog))
	for _, ch := range c.children {
		if !ch.alive.Load() {
			continue
		}
		// A closed outbox means the child died racing this broadcast; the
		// node that needed the code is gone either way, so the program
		// still registers.
		ch.out.push(&proto.Frame{
			Type: proto.FrameProgram, From: proto.HostID, To: proto.ProcID(ch.id),
			Payload: payload,
		})
	}
	c.progs = append(c.progs, prog)
	c.progIdx[prog] = idx
	return idx, nil
}

// Submit enqueues one root application: ship the program if new, retain the
// root packet as the super-root checkpoint, and spawn it on a live node
// (round-robin by stream index, like livenet).
func (c *Cluster) Submit(prog *lang.Program, fn string, args []expr.Value) (*Request, error) {
	if prog == nil {
		return nil, errors.New("netnode: program required")
	}
	if _, ok := prog.Func(fn); !ok {
		return nil, fmt.Errorf("netnode: unknown function %q", fn)
	}
	idx, err := c.shipProgram(prog)
	if err != nil {
		return nil, err
	}
	c.reqMu.Lock()
	id := c.nextReq
	c.nextReq++
	root := &proto.TaskPacket{
		Key:    proto.TaskKey{Stamp: stamp.FromPath(id)},
		Fn:     fn,
		Args:   args,
		Parent: proto.Addr{Proc: proto.HostID},
	}
	r := &Request{id: id, resultCh: make(chan expr.Value, 1), rootPkt: root, rootProg: idx}
	r.rootDest = c.pickLiveFrom(int(id) % c.n)
	c.reqs[id] = r
	dest := r.rootDest
	c.reqMu.Unlock()
	c.spawned.Add(1)
	c.countFrame(proto.FrameSpawn, len(spawnPayload(idx, root)))
	c.sendSpawn(dest, idx, root, 0)
	return r, nil
}

// sendSpawn writes a spawn frame to a child; a dead destination black-holes
// it (the dead processor of §3 — the parent's checkpoint is what recovers
// the work, not the interconnect).
func (c *Cluster) sendSpawn(dest proto.ProcID, idx uint16, pkt *proto.TaskPacket, flags byte) {
	ch := c.children[dest]
	if !ch.alive.Load() || !ch.out.push(&proto.Frame{
		Type: proto.FrameSpawn, Flags: flags, From: proto.HostID, To: dest,
		Payload: spawnPayload(idx, pkt),
	}) {
		c.drained.Add(1)
	}
}

// countFrame charges one protocol message at its real frame wire size.
func (c *Cluster) countFrame(t proto.FrameType, payloadLen int) {
	c.msgs.Add(1)
	c.msgBytes.Add(int64(proto.FrameHeaderSize + payloadLen))
}

// route is the per-child reader: count and forward protocol frames, absorb
// supervision frames, and turn a broken connection into a death. One
// goroutine per child, so a busy node never stalls another's traffic.
func (c *Cluster) route(ch *child) {
	defer c.wg.Done()
	for {
		f, err := proto.ReadFrame(ch.conn)
		if err != nil {
			// SIGKILL, crash, or shutdown: the connection is the failure
			// detector. During Close the EOF is the expected goodbye.
			if !c.closing.Load() {
				c.nodeDied(ch)
			}
			return
		}
		ch.lastBeat.Store(time.Now().UnixNano())
		switch f.Type {
		case proto.FrameHeartbeat:
			// lastBeat above is the whole point.
		case proto.FrameStats:
			if drained, _, err := parseStats(f.Payload); err == nil {
				// Reissues are already counted from FlagReissue frames;
				// only the child-local drain count is news.
				c.drained.Add(drained)
			}
		case proto.FrameResult:
			c.countFrame(f.Type, len(f.Payload))
			if f.To == proto.HostID {
				c.onRootResult(f.Payload)
				continue
			}
			c.forward(f)
		case proto.FrameSpawn:
			c.countFrame(f.Type, len(f.Payload))
			if f.Flags&proto.FlagReissue != 0 {
				c.reissued.Add(1)
				ch.reissues.Add(1)
			} else {
				c.spawned.Add(1)
			}
			c.forward(f)
		default:
			// A child never originates other frame types; drop quietly
			// rather than wedge the stream on a protocol slip.
		}
	}
}

// forward relays a child-to-child frame; dead destinations black-hole it.
func (c *Cluster) forward(f *proto.Frame) {
	if f.To < 0 || int(f.To) >= c.n {
		c.drained.Add(1)
		return
	}
	dest := c.children[f.To]
	if !dest.alive.Load() || !dest.out.push(f) {
		c.drained.Add(1)
	}
}

// onRootResult delivers a root answer to its request and frees the
// admission slot on the first delivery (a reissued root may answer twice;
// determinacy says the answers match).
func (c *Cluster) onRootResult(payload []byte) {
	res, err := proto.DecodeResult(payload)
	if err != nil {
		c.drained.Add(1)
		return
	}
	id := res.Child.Stamp.Component(0)
	c.reqMu.Lock()
	r := c.reqs[id]
	first := r != nil && !r.done
	if r != nil {
		r.done = true
	}
	hook := c.onReqDone
	c.reqMu.Unlock()
	if r == nil {
		c.drained.Add(1)
		return
	}
	select {
	case r.resultCh <- res.Value:
	default:
	}
	if first && hook != nil {
		hook()
	}
}

// nodeDied is the supervisor's failure handler — idempotent via the alive
// CAS. It closes the conn, gossips the death to survivors, and reissues the
// super-root checkpoints that were resident on the dead node (§4.3.1).
// Kill SIGKILLs and lets the broken connection land here, so injected
// faults and spontaneous crashes take the identical path.
func (c *Cluster) nodeDied(ch *child) {
	if !ch.alive.CompareAndSwap(true, false) {
		return
	}
	ch.conn.Close()
	ch.out.close()
	if !c.recov {
		return // "none": no announcement, lost work stays lost
	}
	payload := nodeDownPayload(ch.id)
	for _, other := range c.children {
		if other == ch || !other.alive.Load() {
			continue
		}
		c.countFrame(proto.FrameNodeDown, len(payload))
		other.out.push(&proto.Frame{
			Type: proto.FrameNodeDown, From: proto.HostID, To: proto.ProcID(other.id),
			Payload: payload,
		})
	}
	// The cluster is every root's parent: reissue each outstanding
	// request's root that was placed on the dead node.
	c.reqMu.Lock()
	type rootReissue struct {
		dest proto.ProcID
		idx  uint16
		pkt  *proto.TaskPacket
	}
	var reissues []rootReissue
	for _, r := range c.reqs {
		if r.done || r.rootDest != proto.ProcID(ch.id) {
			continue
		}
		r.rootDest = c.pickLiveAvoid(ch.id)
		reissues = append(reissues, rootReissue{r.rootDest, r.rootProg, r.rootPkt})
	}
	c.reqMu.Unlock()
	for _, ri := range reissues {
		c.reissued.Add(1)
		c.countFrame(proto.FrameSpawn, len(spawnPayload(ri.idx, ri.pkt)))
		c.sendSpawn(ri.dest, ri.idx, ri.pkt, proto.FlagReissue)
	}
}

// Kill crashes node id with SIGKILL — no cooperative path. Death detection
// and recovery ride on the broken connection, like any real crash.
func (c *Cluster) Kill(id int) error {
	if id < 0 || id >= c.n {
		return fmt.Errorf("netnode: no node %d", id)
	}
	ch := c.children[id]
	if !ch.alive.Load() {
		return fmt.Errorf("netnode: node %d already dead", id)
	}
	c.killsSeen.Add(1)
	return ch.cmd.Kill()
}

// pickLiveFrom scans round-robin from start for a live node.
func (c *Cluster) pickLiveFrom(start int) proto.ProcID {
	for i := 0; i < c.n; i++ {
		if d := (start + i) % c.n; c.children[d].alive.Load() {
			return proto.ProcID(d)
		}
	}
	return proto.ProcID(start)
}

// pickLiveAvoid chooses any live node other than avoid (falls back to 0).
func (c *Cluster) pickLiveAvoid(avoid int) proto.ProcID {
	for i, ch := range c.children {
		if i != avoid && ch.alive.Load() {
			return proto.ProcID(i)
		}
	}
	return 0
}

// WaitRequest blocks until the request's answer arrives or the timeout
// elapses.
func (c *Cluster) WaitRequest(r *Request, timeout time.Duration) (expr.Value, error) {
	select {
	case v := <-r.resultCh:
		return v, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("netnode: request %d: no answer after %v", r.id, timeout)
	case <-c.quit:
		return nil, errors.New("netnode: cluster shut down")
	}
}

// Shutdown tears the cluster down: graceful stats+exit for live children,
// SIGKILL for stragglers, and a reap of every process — after Shutdown no
// node process exists, whatever state the stream was in. Call exactly once.
func (c *Cluster) Shutdown() {
	c.closing.Store(true)
	for _, ch := range c.children {
		if ch.conn == nil || !ch.alive.Load() {
			continue
		}
		// FIFO behind any pending protocol frames, so the goodbye arrives
		// after the work already queued for this child.
		ch.out.push(&proto.Frame{
			Type: proto.FrameShutdown, From: proto.HostID, To: proto.ProcID(ch.id),
		})
	}
	// Graceful children send stats and exit on their own; the router
	// goroutines fold the stats in and return on EOF. Stragglers (wedged or
	// never-connected) are killed after a short grace.
	for _, ch := range c.children {
		if !ch.cmd.WaitTimeout(2 * time.Second) {
			_ = ch.cmd.Kill()
			ch.cmd.WaitTimeout(2 * time.Second)
		}
	}
	c.teardown()
	close(c.quit)
	c.wg.Wait()
}

// teardown closes the listener and sockets and reaps every child process
// unconditionally — also the failure path of a half-built New.
func (c *Cluster) teardown() {
	if c.ln != nil {
		c.ln.Close()
	}
	for _, ch := range c.children {
		if ch.conn != nil {
			ch.conn.Close()
		}
		ch.out.close()
		_ = ch.cmd.Kill()
		ch.cmd.WaitTimeout(2 * time.Second)
	}
	if c.dir != "" {
		os.RemoveAll(c.dir)
	}
}

// Stats reports the stream counters.
func (c *Cluster) Stats() (spawned, reissued, drained int64) {
	return c.spawned.Load(), c.reissued.Load(), c.drained.Load()
}

// Messages is the number of protocol frames the router carried.
func (c *Cluster) Messages() int64 { return c.msgs.Load() }

// MsgBytes is the frame wire bytes of Messages.
func (c *Cluster) MsgBytes() int64 { return c.msgBytes.Load() }

// ReissuesByNode reports how many retained child packets each node re-sent
// as a parent after peer deaths (router-attributed, so it survives the
// reporter's own later death). Root reissues belong to the super-root, not
// to a node.
func (c *Cluster) ReissuesByNode() []int64 {
	out := make([]int64, len(c.children))
	for i, ch := range c.children {
		out[i] = ch.reissues.Load()
	}
	return out
}
