//go:build linux

package netnode

import (
	"os/exec"
	"syscall"
)

// setPdeathsig asks the kernel to SIGKILL the child the instant its parent
// thread dies — the orphan-prevention layer that works even when the parent
// is itself SIGKILLed and no Go code runs.
func setPdeathsig(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
}
