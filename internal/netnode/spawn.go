package netnode

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"
)

// managedProc wraps one node process with eager reaping: a goroutine Waits
// on the process from the moment it starts, so a SIGKILLed node can never
// linger as a zombie mid-run, and Shutdown only has to wait on a channel.
type managedProc struct {
	cmd    *exec.Cmd
	waited chan struct{}
	once   sync.Once
}

// startNodeProc re-execs the current binary as node i. Configuration
// travels in the environment (the APSIM_NETNODE_* contract ChildMain
// reads); argv carries only the cosmetic marker so `ps` reads honestly and
// `pkill -f apsim-netnode` catches strays.
func startNodeProc(i, procs int, seed int64, network, addr string, recov bool, eval string) (*managedProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, ArgvMarker, fmt.Sprintf("apsim-netnode-%d", i))
	recovFlag := "1"
	if !recov {
		recovFlag = "0"
	}
	cmd.Env = append(os.Environ(),
		NodeEnvID+"="+strconv.Itoa(i),
		NodeEnvProcs+"="+strconv.Itoa(procs),
		NodeEnvSeed+"="+strconv.FormatInt(seed, 10),
		NodeEnvAddr+"="+network+":"+addr,
		NodeEnvRecover+"="+recovFlag,
		NodeEnvEval+"="+eval,
	)
	// Children must not write the parent's stdout — artifact output is
	// byte-compared — but their panics should reach the operator.
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	setPdeathsig(cmd)
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &managedProc{cmd: cmd, waited: make(chan struct{})}
	go func() {
		_ = cmd.Wait()
		close(p.waited)
	}()
	return p, nil
}

// Pid is the node's OS process id.
func (p *managedProc) Pid() int { return p.cmd.Process.Pid }

// Kill SIGKILLs the process — abrupt disappearance, no cooperative path.
// Idempotent; killing an already-reaped process is a no-op.
func (p *managedProc) Kill() error {
	var err error
	p.once.Do(func() { err = p.cmd.Process.Kill() })
	return err
}

// WaitTimeout waits for the process to be reaped, up to d; false means it
// is still running.
func (p *managedProc) WaitTimeout(d time.Duration) bool {
	select {
	case <-p.waited:
		return true
	case <-time.After(d):
		return false
	}
}
