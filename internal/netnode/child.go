package netnode

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/proto"
)

// ChildMain is the hidden node-process entry point. Call it first thing in
// main() (before flag parsing) and in TestMain: when the APSIM_NETNODE_*
// environment is present the process is a re-exec'd node — ChildMain runs
// the node loop and never returns. In a normal invocation it is a no-op.
func ChildMain() {
	id, procs, seed, network, addr, recov, eval, ok, err := childEnv()
	if !ok {
		return
	}
	if err == nil {
		err = runChild(id, procs, seed, network, addr, recov, eval)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "apsim node %d: %v\n", id, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// heartbeatEvery is the child's liveness-probe cadence. Death detection is
// the broken connection (SIGKILL closes the socket immediately); heartbeats
// are the slow-path safety net for a wedged-but-connected child and keep the
// supervisor's per-node last-seen stamps honest.
const heartbeatEvery = 100 * time.Millisecond

// ctask is a resident task in a node process — the cross-process analogue
// of livenet's ltask, keyed by stamp with a list per stamp so recovered
// incarnations can coexist (determinacy makes any result valid for all).
type ctask struct {
	pkt      *proto.TaskPacket
	progIdx  uint16
	residual lang.TaskState
	nextID   int
	fills    map[int]expr.Value
	unfilled int
	// children maps hole id → retained child packet + destination node:
	// the functional checkpoint (§2.1), held across the process boundary.
	children map[int]*cckpt
}

type cckpt struct {
	pkt     *proto.TaskPacket
	progIdx uint16
	dest    proto.ProcID
	filled  bool
}

// childNode is the per-process node state. The main loop is single-threaded
// (one frame at a time, like §4.2's "LOOP CASE received packet OF ...");
// only the heartbeat ticker shares the connection, serialized by wmu.
type childNode struct {
	id    proto.ProcID
	conn  net.Conn
	wmu   sync.Mutex
	eval  lang.Evaluator
	progs map[uint16]*lang.Program
	// evals holds each program compiled by eval, built at FrameProgram
	// receipt so the per-task path never compiles.
	evals map[uint16]lang.EvalProgram
	tasks map[proto.TaskKey][]*ctask
	rng   *rand.Rand
	live  []bool
	recov bool

	drained  int64
	reissues int64
}

func runChild(id, procs int, seed int64, network, addr string, recov bool, eval string) error {
	conn, err := net.DialTimeout(network, addr, 10*time.Second)
	if err != nil {
		return err
	}
	ev, err := lang.EvaluatorByName(eval)
	if err != nil {
		return err // unreachable: childEnv validated the name
	}
	n := &childNode{
		id:    proto.ProcID(id),
		conn:  conn,
		eval:  ev,
		progs: map[uint16]*lang.Program{},
		evals: map[uint16]lang.EvalProgram{},
		tasks: map[proto.TaskKey][]*ctask{},
		rng:   rand.New(rand.NewSource(seed + int64(id)*7919)),
		live:  make([]bool, procs),
		recov: recov,
	}
	for i := range n.live {
		n.live[i] = true
	}
	if err := n.write(&proto.Frame{
		Type: proto.FrameHello, From: n.id, To: proto.HostID,
		Payload: helloPayload(id, os.Getpid()),
	}); err != nil {
		return err
	}
	stopBeat := make(chan struct{})
	defer close(stopBeat)
	go n.heartbeat(stopBeat)
	for {
		f, err := proto.ReadFrame(conn)
		if err != nil {
			// The parent is gone (EOF/reset) — the orphan watchdog every
			// OS gets. Exit silently on a clean break, loudly on garbage.
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil
			}
			return err
		}
		if err := n.handle(f); err != nil {
			return err
		}
		if f.Type == proto.FrameShutdown {
			return nil
		}
	}
}

// write sends one frame; wmu serializes the main loop and the heartbeat.
func (n *childNode) write(f *proto.Frame) error {
	n.wmu.Lock()
	defer n.wmu.Unlock()
	_, err := proto.WriteFrame(n.conn, f)
	return err
}

func (n *childNode) heartbeat(stop <-chan struct{}) {
	t := time.NewTicker(heartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n.write(&proto.Frame{Type: proto.FrameHeartbeat, From: n.id, To: proto.HostID}) != nil {
				return // parent gone; the reader will exit the process
			}
		case <-stop:
			return
		}
	}
}

func (n *childNode) handle(f *proto.Frame) error {
	switch f.Type {
	case proto.FrameProgram:
		idx, src, err := parseProgram(f.Payload)
		if err != nil {
			return err
		}
		prog, err := lang.Parse(src)
		if err != nil {
			return fmt.Errorf("netnode: program %d does not parse: %v", idx, err)
		}
		ep, err := n.eval.Compile(prog)
		if err != nil {
			return fmt.Errorf("netnode: program %d does not compile: %v", idx, err)
		}
		n.progs[idx] = prog
		n.evals[idx] = ep
	case proto.FrameSpawn:
		idx, pkt, err := parseSpawn(f.Payload)
		if err != nil {
			return err
		}
		return n.onSpawn(idx, pkt)
	case proto.FrameResult:
		res, err := proto.DecodeResult(f.Payload)
		if err != nil {
			return err
		}
		n.onResult(res)
	case proto.FrameNodeDown:
		dead, err := parseNodeDown(f.Payload)
		if err != nil {
			return err
		}
		return n.onNodeDown(dead)
	case proto.FrameShutdown:
		return n.write(&proto.Frame{
			Type: proto.FrameStats, From: n.id, To: proto.HostID,
			Payload: statsPayload(n.drained, n.reissues),
		})
	default:
		return fmt.Errorf("netnode: unexpected %v frame at node %d", f.Type, n.id)
	}
	return nil
}

// onSpawn installs a task and runs its first pass — livenet's duplicate
// rule verbatim: an equivalent incarnation (same parent address and hole)
// keeps the incumbent, a different parent address runs alongside.
func (n *childNode) onSpawn(progIdx uint16, pkt *proto.TaskPacket) error {
	for _, old := range n.tasks[pkt.Key] {
		if old.pkt.Parent == pkt.Parent && old.pkt.HoleID == pkt.HoleID {
			return nil
		}
	}
	prog := n.progs[progIdx]
	if prog == nil {
		return fmt.Errorf("netnode: node %d has no program %d", n.id, progIdx)
	}
	t := &ctask{
		pkt:      pkt,
		progIdx:  progIdx,
		fills:    map[int]expr.Value{},
		children: map[int]*cckpt{},
	}
	n.tasks[pkt.Key] = append(n.tasks[pkt.Key], t)
	out, st, err := n.evals[progIdx].Flatten(pkt.Fn, pkt.Args, &t.nextID)
	if err != nil {
		return fmt.Errorf("netnode: %v", err) // validated programs cannot fail
	}
	return n.apply(t, out, st)
}

// apply handles a pass outcome: finish, or checkpoint-and-spawn the demands.
func (n *childNode) apply(t *ctask, out lang.Outcome, st lang.TaskState) error {
	if out.Done {
		return n.finish(t, out.Value)
	}
	t.residual = st
	for _, d := range out.Demands {
		child := &proto.TaskPacket{
			Key:    proto.TaskKey{Stamp: t.pkt.Key.Stamp.Child(uint32(d.ID))},
			Fn:     d.Fn,
			Args:   d.Args,
			Parent: proto.Addr{Proc: n.id, Task: t.pkt.Key},
			HoleID: d.ID,
		}
		dest := n.pickDest()
		// Functional checkpoint: retain the packet and remember where it
		// went (§2.1); this is everything recovery needs.
		t.children[d.ID] = &cckpt{pkt: child, progIdx: t.progIdx, dest: dest}
		t.unfilled++
		if err := n.write(&proto.Frame{
			Type: proto.FrameSpawn, From: n.id, To: dest,
			Payload: spawnPayload(t.progIdx, child),
		}); err != nil {
			return err
		}
	}
	return nil
}

// finish sends the task's value to its parent — the supervisor for roots —
// and retires that incarnation.
func (n *childNode) finish(t *ctask, v expr.Value) error {
	list := n.tasks[t.pkt.Key]
	for i, cand := range list {
		if cand == t {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(n.tasks, t.pkt.Key)
	} else {
		n.tasks[t.pkt.Key] = list
	}
	res := &proto.Result{
		Child:      t.pkt.Key,
		ParentTask: t.pkt.Parent.Task,
		HoleID:     t.pkt.HoleID,
		Value:      v,
	}
	return n.write(&proto.Frame{
		Type: proto.FrameResult, From: n.id, To: t.pkt.Parent.Proc,
		Payload: proto.EncodeResult(res),
	})
}

// onResult fills the matching hole of every incarnation of the addressee
// task; duplicates and orphans drain harmlessly (§3.4).
func (n *childNode) onResult(r *proto.Result) {
	list := n.tasks[r.ParentTask]
	if len(list) == 0 {
		n.drained++ // late/orphan result: ignored (§4.2 rule of thumb)
		return
	}
	consumed := false
	// finish() mutates the list; iterate over a snapshot.
	for _, t := range append([]*ctask(nil), list...) {
		ck := t.children[r.HoleID]
		if ck == nil || ck.filled {
			continue
		}
		consumed = true
		ck.filled = true
		t.fills[r.HoleID] = r.Value
		t.unfilled--
		if t.unfilled > 0 {
			continue
		}
		fills := t.fills
		t.fills = map[int]expr.Value{}
		out, st, err := n.evals[t.progIdx].Resume(t.residual, fills, &t.nextID)
		if err != nil {
			panic(fmt.Sprintf("netnode: %v", err))
		}
		if err := n.apply(t, out, st); err != nil {
			panic(fmt.Sprintf("netnode: %v", err))
		}
	}
	if !consumed {
		n.drained++ // duplicate: "the second copy is simply ignored"
	}
}

// onNodeDown reissues the retained packets of unfilled children that were
// placed on the dead node — §3's rollback, per parent incarnation. Reissue
// frames carry FlagReissue so the supervisor can count recovery traffic
// without decoding payloads.
func (n *childNode) onNodeDown(dead int) error {
	if dead < 0 || dead >= len(n.live) {
		return fmt.Errorf("netnode: node-down for unknown node %d", dead)
	}
	n.live[dead] = false
	if !n.recov {
		return nil // "none": lost work stays lost
	}
	for _, list := range n.tasks {
		for _, t := range list {
			for _, ck := range t.children {
				if ck.filled || ck.dest != proto.ProcID(dead) {
					continue
				}
				ck.dest = n.pickDest()
				n.reissues++
				if err := n.write(&proto.Frame{
					Type: proto.FrameSpawn, Flags: proto.FlagReissue,
					From: n.id, To: ck.dest,
					Payload: spawnPayload(ck.progIdx, ck.pkt),
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// pickDest chooses a uniformly random live node (possibly itself) from the
// local liveness view, mirroring livenet's placement exactly.
func (n *childNode) pickDest() proto.ProcID {
	for tries := 0; tries < 64; tries++ {
		d := n.rng.Intn(len(n.live))
		if n.live[d] {
			return proto.ProcID(d)
		}
	}
	return n.id
}
