// Package netnode runs the applicative machine as separate OS processes:
// one child process per node, real sockets as the interconnect, and the
// internal/proto codec as the actual wire format. It is the third backend
// ("net") behind the same core.Backend contract as the simulator and the
// goroutine live network — the paper's claim that functional checkpointing
// (§2) needs nothing from a particular substrate, now demonstrated across a
// process boundary where a crash is a SIGKILL, not a cooperative teardown.
//
// Topology is hub-and-spoke: the parent process is the supervisor, the
// frame router, and the super-root (§4.3.1). Children dial the parent's
// socket (a unix socket by default, TCP by option), introduce themselves
// with a hello frame, and then speak the protocol: task packets travel as
// spawn frames, results as result frames, death announcements as node-down
// gossip from the supervisor, plus heartbeats and a final stats report on
// graceful shutdown. Fault injection SIGKILLs the child's PID — the
// supervisor learns of the death the way a real cluster does, by the
// connection breaking — and recovery is the per-parent rollback reissue of
// §3, exactly as on the live goroutine backend: every parent retains the
// packets of the children it placed (the functional checkpoints) and
// re-disperses the ones that were resident on the dead node.
//
// Program code is resident, not shipped per packet: the parent broadcasts
// each program's lang.Format source once (a program frame carrying an
// index), children lang.Parse it, and every spawn payload names its
// program by index — the same code-segment model the simulator and livenet
// use in-process.
//
// Child processes are re-execs of the current binary: the parent runs
// os.Executable() with the hidden "-node" argv marker and the APSIM_NETNODE_*
// environment carrying the real configuration; ChildMain, called first thing
// in main (and in TestMain), detects the environment and never returns.
// Three layers prevent orphans: PDEATHSIG delivers SIGKILL to children when
// the parent dies (linux), children exit when their connection to the parent
// breaks (any OS — the kernel closes the socket when the parent exits, even
// on a panic), and Close reaps every child, SIGKILLing stragglers.
package netnode

import (
	"encoding/binary"
	"fmt"
	"os"
	"strconv"

	"repro/internal/lang"
	"repro/internal/proto"
)

// Environment contract between the parent and its re-exec'd children.
// NodeEnvID doubles as the detection flag: ChildMain is a no-op unless it
// is set.
const (
	// NodeEnvID is the child's node id (0-based).
	NodeEnvID = "APSIM_NETNODE_ID"
	// NodeEnvAddr is the parent's listen address, "unix:PATH" or "tcp:HOSTPORT".
	NodeEnvAddr = "APSIM_NETNODE_ADDR"
	// NodeEnvProcs is the node count.
	NodeEnvProcs = "APSIM_NETNODE_PROCS"
	// NodeEnvSeed is the cluster seed; node i draws placement from
	// seed + i*7919, mirroring the live goroutine backend.
	NodeEnvSeed = "APSIM_NETNODE_SEED"
	// NodeEnvRecover is "1" for rollback reissue, "0" for the "none" scheme
	// (deaths are still announced; survivors just don't reissue).
	NodeEnvRecover = "APSIM_NETNODE_RECOVER"
	// NodeEnvEval is the evaluator name the child runs reduction passes
	// with ("" = lang.DefaultEvaluator). Children compile each program at
	// FrameProgram receipt, so tasks never pay compilation.
	NodeEnvEval = "APSIM_NETNODE_EVAL"
)

// ArgvMarker is the cosmetic argv tag children run under. Configuration
// travels in the environment; the marker exists so process listings read
// honestly and cleanup can `pkill -f apsim-netnode`.
const ArgvMarker = "-node"

// SocketPattern is the temp-directory pattern for unix sockets; it shares
// the "apsim-netnode" stem with ArgvMarker's help text so one pkill pattern
// covers both.
const SocketPattern = "apsim-netnode-*"

// childEnv reads the environment contract; ok is false when NodeEnvID is
// absent (a normal, non-child invocation).
func childEnv() (id, procs int, seed int64, network, addr string, recover_ bool, eval string, ok bool, err error) {
	idStr := os.Getenv(NodeEnvID)
	if idStr == "" {
		return 0, 0, 0, "", "", false, "", false, nil
	}
	fail := func(e error) (int, int, int64, string, string, bool, string, bool, error) {
		return 0, 0, 0, "", "", false, "", true, e
	}
	if id, err = strconv.Atoi(idStr); err != nil {
		return fail(fmt.Errorf("netnode: bad %s: %v", NodeEnvID, err))
	}
	if procs, err = strconv.Atoi(os.Getenv(NodeEnvProcs)); err != nil || procs < 2 {
		return fail(fmt.Errorf("netnode: bad %s %q", NodeEnvProcs, os.Getenv(NodeEnvProcs)))
	}
	if seed, err = strconv.ParseInt(os.Getenv(NodeEnvSeed), 10, 64); err != nil {
		return fail(fmt.Errorf("netnode: bad %s %q", NodeEnvSeed, os.Getenv(NodeEnvSeed)))
	}
	network, addr, err = splitAddr(os.Getenv(NodeEnvAddr))
	if err != nil {
		return fail(err)
	}
	recover_ = os.Getenv(NodeEnvRecover) != "0"
	eval = os.Getenv(NodeEnvEval)
	if eval == "" {
		eval = lang.DefaultEvaluator
	}
	if !lang.KnownEvaluator(eval) {
		return fail(fmt.Errorf("netnode: bad %s %q", NodeEnvEval, os.Getenv(NodeEnvEval)))
	}
	return id, procs, seed, network, addr, recover_, eval, true, nil
}

// splitAddr parses "unix:PATH" / "tcp:HOSTPORT".
func splitAddr(s string) (network, addr string, err error) {
	for _, n := range []string{"unix", "tcp"} {
		if len(s) > len(n)+1 && s[:len(n)] == n && s[len(n)] == ':' {
			return n, s[len(n)+1:], nil
		}
	}
	return "", "", fmt.Errorf("netnode: bad %s %q (want unix:PATH or tcp:HOSTPORT)", NodeEnvAddr, s)
}

// Payload layouts. Every frame payload is one of:
//
//	hello:     uint32 node id, uint32 pid
//	program:   uint16 program index, then lang.Format source bytes
//	spawn:     uint16 program index, then proto.EncodePacket bytes
//	result:    proto.EncodeResult bytes
//	node-down: uint32 dead node id
//	stats:     uint64 drained, uint64 reissues (child-local counters)
//	heartbeat, shutdown: empty

func helloPayload(id, pid int) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(id))
	return binary.BigEndian.AppendUint32(buf, uint32(pid))
}

func parseHello(p []byte) (id, pid int, err error) {
	if len(p) != 8 {
		return 0, 0, fmt.Errorf("netnode: hello payload %d bytes", len(p))
	}
	return int(binary.BigEndian.Uint32(p)), int(binary.BigEndian.Uint32(p[4:])), nil
}

func programPayload(idx uint16, src string) []byte {
	buf := binary.BigEndian.AppendUint16(nil, idx)
	return append(buf, src...)
}

func parseProgram(p []byte) (idx uint16, src string, err error) {
	if len(p) < 2 {
		return 0, "", fmt.Errorf("netnode: program payload %d bytes", len(p))
	}
	return binary.BigEndian.Uint16(p), string(p[2:]), nil
}

func spawnPayload(idx uint16, pkt *proto.TaskPacket) []byte {
	buf := binary.BigEndian.AppendUint16(nil, idx)
	return append(buf, proto.EncodePacket(pkt)...)
}

func parseSpawn(p []byte) (idx uint16, pkt *proto.TaskPacket, err error) {
	if len(p) < 2 {
		return 0, nil, fmt.Errorf("netnode: spawn payload %d bytes", len(p))
	}
	pkt, err = proto.DecodePacket(p[2:])
	return binary.BigEndian.Uint16(p), pkt, err
}

func nodeDownPayload(dead int) []byte {
	return binary.BigEndian.AppendUint32(nil, uint32(dead))
}

func parseNodeDown(p []byte) (int, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("netnode: node-down payload %d bytes", len(p))
	}
	return int(binary.BigEndian.Uint32(p)), nil
}

func statsPayload(drained, reissues int64) []byte {
	buf := binary.BigEndian.AppendUint64(nil, uint64(drained))
	return binary.BigEndian.AppendUint64(buf, uint64(reissues))
}

func parseStats(p []byte) (drained, reissues int64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("netnode: stats payload %d bytes", len(p))
	}
	return int64(binary.BigEndian.Uint64(p)), int64(binary.BigEndian.Uint64(p[8:])), nil
}
