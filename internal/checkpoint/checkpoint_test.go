package checkpoint

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/proto"
	"repro/internal/stamp"
)

func pkt(path ...uint32) *proto.TaskPacket {
	return &proto.TaskPacket{
		Key:  proto.TaskKey{Stamp: stamp.FromPath(path...)},
		Fn:   "f",
		Args: []expr.Value{expr.VInt(1)},
	}
}

func TestRetainSettleRelease(t *testing.T) {
	s := NewStore()
	p := pkt(1)
	s.Retain(p)
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if d, ok := s.Dest(p.Key); !ok || d != PendingDest {
		t.Fatalf("Dest = %v,%v want pending", d, ok)
	}
	if !s.Settle(p.Key, 3) {
		t.Fatal("Settle failed")
	}
	if d, _ := s.Dest(p.Key); d != 3 {
		t.Fatalf("Dest after settle = %d", d)
	}
	got, ok := s.Get(p.Key)
	if !ok || got != p {
		t.Fatal("Get did not return the retained packet")
	}
	if !s.Release(p.Key) {
		t.Fatal("Release failed")
	}
	if s.Release(p.Key) {
		t.Fatal("double Release succeeded")
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("after release: len=%d bytes=%d", s.Len(), s.Bytes())
	}
	if s.PeakBytes() <= 0 {
		t.Fatal("peak bytes not tracked")
	}
}

func TestSettleUnknownKey(t *testing.T) {
	s := NewStore()
	if s.Settle(proto.TaskKey{Stamp: stamp.FromPath(9)}, 1) {
		t.Fatal("Settle on unknown key succeeded")
	}
}

func TestByteAccounting(t *testing.T) {
	s := NewStore()
	p1, p2 := pkt(1), pkt(2, 3)
	s.Retain(p1)
	s.Retain(p2)
	want := int64(p1.EncodedSize() + p2.EncodedSize())
	if s.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", s.Bytes(), want)
	}
	s.Release(p1.Key)
	if s.Bytes() != int64(p2.EncodedSize()) {
		t.Fatalf("Bytes after release = %d", s.Bytes())
	}
	if s.PeakBytes() != want {
		t.Fatalf("PeakBytes = %d, want %d", s.PeakBytes(), want)
	}
	// Re-retaining the same key replaces, not doubles.
	s.Retain(p2)
	if s.Bytes() != int64(p2.EncodedSize()) {
		t.Fatalf("Bytes after re-retain = %d", s.Bytes())
	}
}

func TestForReturnsOnlySettledOnDest(t *testing.T) {
	s := NewStore()
	a, b, c := pkt(1), pkt(2), pkt(3)
	s.Retain(a)
	s.Retain(b)
	s.Retain(c)
	s.Settle(a.Key, 5)
	s.Settle(b.Key, 6)
	// c stays pending
	got := s.For(5)
	if len(got) != 1 || got[0].Packet != a {
		t.Fatalf("For(5) = %v", got)
	}
	if len(s.For(7)) != 0 {
		t.Fatal("For(7) nonempty")
	}
	if len(s.For(PendingDest)) != 1 {
		t.Fatal("pending entry not visible under PendingDest")
	}
}

// TestTopmostForPaperFigure1 recreates the checkpoint layout of Figure 1 as
// described in §3.2: processor C holds checkpoints for B2, B3 and B5 in its
// entry for processor B, where B5 is a descendant of B2. Recovery must
// reissue B2 and B3 only, suppressing B5 ("Reactivation of B5 only
// increases the system overhead").
func TestTopmostForPaperFigure1(t *testing.T) {
	s := NewStore()
	b2 := pkt(0, 1)
	b3 := pkt(0, 2)
	b5 := pkt(0, 1, 0, 2, 0) // genealogical descendant of B2
	const procB = 1
	for _, p := range []*proto.TaskPacket{b2, b3, b5} {
		s.Retain(p)
		s.Settle(p.Key, procB)
	}
	top, shadowed := s.TopmostFor(procB)
	if len(top) != 2 {
		t.Fatalf("topmost = %d entries, want 2", len(top))
	}
	if top[0].Packet != b2 || top[1].Packet != b3 {
		t.Fatalf("topmost packets wrong: %v %v", top[0].Packet.Key, top[1].Packet.Key)
	}
	if len(shadowed) != 1 || shadowed[0].Packet != b5 {
		t.Fatalf("shadowed = %v", shadowed)
	}
}

func TestTopmostForEmptyDest(t *testing.T) {
	s := NewStore()
	top, shadowed := s.TopmostFor(3)
	if top != nil || shadowed != nil {
		t.Fatal("TopmostFor on empty store returned entries")
	}
}

func TestReleasePromotesShadowedEntry(t *testing.T) {
	// After the topmost ancestor's result arrives and its checkpoint is
	// released, a previously shadowed descendant becomes topmost — the
	// staleness case that justifies computing the antichain on demand.
	s := NewStore()
	anc := pkt(1)
	desc := pkt(1, 0, 2)
	s.Retain(anc)
	s.Retain(desc)
	s.Settle(anc.Key, 4)
	s.Settle(desc.Key, 4)
	top, _ := s.TopmostFor(4)
	if len(top) != 1 || top[0].Packet != anc {
		t.Fatalf("initial topmost = %v", top)
	}
	s.Release(anc.Key)
	top, shadowed := s.TopmostFor(4)
	if len(top) != 1 || top[0].Packet != desc || len(shadowed) != 0 {
		t.Fatalf("after release: top=%v shadowed=%v", top, shadowed)
	}
}

func TestReplicasAreIndependentlyTopmost(t *testing.T) {
	s := NewStore()
	r0 := &proto.TaskPacket{Key: proto.TaskKey{Stamp: stamp.FromPath(2), Rep: 10}, Fn: "f"}
	r1 := &proto.TaskPacket{Key: proto.TaskKey{Stamp: stamp.FromPath(2), Rep: 11}, Fn: "f"}
	s.Retain(r0)
	s.Retain(r1)
	s.Settle(r0.Key, 2)
	s.Settle(r1.Key, 2)
	top, shadowed := s.TopmostFor(2)
	if len(top) != 2 || len(shadowed) != 0 {
		t.Fatalf("replica topmost: top=%d shadowed=%d", len(top), len(shadowed))
	}
}

func TestKeysDeterministicOrder(t *testing.T) {
	s := NewStore()
	for _, p := range []*proto.TaskPacket{pkt(3), pkt(1), pkt(2, 0), pkt(2)} {
		s.Retain(p)
	}
	keys := s.Keys()
	want := []stamp.Stamp{
		stamp.FromPath(1), stamp.FromPath(2), stamp.FromPath(2, 0), stamp.FromPath(3),
	}
	if len(keys) != len(want) {
		t.Fatalf("Keys len = %d", len(keys))
	}
	for i := range want {
		if keys[i].Stamp != want[i] {
			t.Fatalf("Keys[%d] = %v, want %v", i, keys[i].Stamp, want[i])
		}
	}
}
