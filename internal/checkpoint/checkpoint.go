// Package checkpoint implements the functional checkpoint store of §2–3:
// each processor retains a copy of every task packet it spawned, keyed by
// the destination processor the task settled on — "Each processor maintains
// a table of linked lists. The Nth entry of the table contains all topmost
// checkpoints from the host processor to processor N" (§3.2).
//
// The store keeps *all* pending checkpoints (not just topmost ones) because
// entries are released as children complete, which can promote a previously
// shadowed checkpoint to topmost; the topmost antichain is computed on
// demand at recovery time. The paper's incremental "do nothing if descendant"
// rule is an optimization of exactly this computation and is validated
// against it in tests.
package checkpoint

import (
	"sort"

	"repro/internal/proto"
	"repro/internal/stamp"
)

// Entry is one retained checkpoint.
type Entry struct {
	Packet *proto.TaskPacket
	// Dest is the processor the task settled on, or -2 while placement is
	// unacknowledged (in-flight, Figure 6 states b/d).
	Dest proto.ProcID
}

// PendingDest marks checkpoints whose placement is not yet acknowledged.
const PendingDest proto.ProcID = -2

// Store is one processor's checkpoint table. It is not safe for concurrent
// use; in the discrete-event machine each processor is single-threaded.
type Store struct {
	entries map[proto.TaskKey]*Entry
	// bytes tracks current retained storage; peak is the high-water mark
	// reported to metrics.
	bytes int64
	peak  int64
}

// NewStore creates an empty checkpoint store.
func NewStore() *Store {
	return &Store{entries: make(map[proto.TaskKey]*Entry)}
}

// Retain records the functional checkpoint of a freshly spawned packet.
// Placement is initially pending; Settle moves it to a destination entry.
// Retaining an already-present key replaces the entry (a reissued packet
// supersedes the original).
func (s *Store) Retain(pkt *proto.TaskPacket) {
	if old, ok := s.entries[pkt.Key]; ok {
		s.bytes -= int64(old.Packet.EncodedSize())
	}
	s.entries[pkt.Key] = &Entry{Packet: pkt, Dest: PendingDest}
	s.bytes += int64(pkt.EncodedSize())
	if s.bytes > s.peak {
		s.peak = s.bytes
	}
}

// Settle records that the checkpointed task settled on dest (placement ack
// received; Figure 6 state c/e).
func (s *Store) Settle(key proto.TaskKey, dest proto.ProcID) bool {
	e, ok := s.entries[key]
	if !ok {
		return false
	}
	e.Dest = dest
	return true
}

// Release drops the checkpoint after the child's result arrived ("Return
// packets from a child task normally eliminate the children that are no
// longer needed" — §4). It reports whether the key was present.
func (s *Store) Release(key proto.TaskKey) bool {
	e, ok := s.entries[key]
	if !ok {
		return false
	}
	s.bytes -= int64(e.Packet.EncodedSize())
	delete(s.entries, key)
	return true
}

// Get returns the retained packet for key, if present.
func (s *Store) Get(key proto.TaskKey) (*proto.TaskPacket, bool) {
	e, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	return e.Packet, true
}

// Dest returns the settled destination for key (PendingDest if in flight).
func (s *Store) Dest(key proto.TaskKey) (proto.ProcID, bool) {
	e, ok := s.entries[key]
	if !ok {
		return 0, false
	}
	return e.Dest, true
}

// Len returns the number of retained checkpoints.
func (s *Store) Len() int { return len(s.entries) }

// Bytes returns the current retained storage in bytes.
func (s *Store) Bytes() int64 { return s.bytes }

// PeakBytes returns the high-water retained storage in bytes.
func (s *Store) PeakBytes() int64 { return s.peak }

// For returns all retained checkpoints settled on dest, sorted in stamp
// preorder (deterministic recovery order).
func (s *Store) For(dest proto.ProcID) []*Entry {
	var out []*Entry
	for _, e := range s.entries {
		if e.Dest == dest {
			out = append(out, e)
		}
	}
	sortEntries(out)
	return out
}

// TopmostFor computes the §3.2 recovery set for a failed destination: the
// entries settled on dest whose stamps form the minimal covering antichain.
// Shadowed (descendant) entries are returned separately so recovery can
// count the paper's "not fruitful" suppressions (the B5 case).
func (s *Store) TopmostFor(dest proto.ProcID) (topmost, shadowed []*Entry) {
	all := s.For(dest)
	if len(all) == 0 {
		return nil, nil
	}
	stamps := make([]stamp.Stamp, len(all))
	for i, e := range all {
		stamps[i] = e.Packet.Key.Stamp
	}
	top := stamp.Topmost(stamps)
	topSet := make(map[stamp.Stamp]bool, len(top))
	for _, t := range top {
		topSet[t] = true
	}
	for _, e := range all {
		// A replica of a topmost stamp is itself topmost: replicas are
		// independent lineages and each must be reissued.
		if topSet[e.Packet.Key.Stamp] {
			topmost = append(topmost, e)
		} else {
			shadowed = append(shadowed, e)
		}
	}
	return topmost, shadowed
}

// Keys returns all retained keys in preorder, for deterministic iteration.
func (s *Store) Keys() []proto.TaskKey {
	out := make([]proto.TaskKey, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Stamp.Compare(out[j].Stamp); c != 0 {
			return c < 0
		}
		return out[i].Rep < out[j].Rep
	})
	return out
}

func sortEntries(es []*Entry) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i].Packet.Key, es[j].Packet.Key
		if c := a.Stamp.Compare(b.Stamp); c != 0 {
			return c < 0
		}
		return a.Rep < b.Rep
	})
}
