package expr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestExprString(t *testing.T) {
	e := Cond(
		Op("<", V("n"), Int(2)),
		V("n"),
		Op("+", Call("fib", Op("-", V("n"), Int(1))), Call("fib", Op("-", V("n"), Int(2)))),
	)
	s := e.String()
	for _, want := range []string{"if", "then", "else", "fib(", "<(n, 2)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if got := (Hole{ID: 4}).String(); got != "⟨4⟩" {
		t.Errorf("Hole.String = %q", got)
	}
	if got := LetIn("x", Int(1), V("x")).String(); got != "let x = 1 in x" {
		t.Errorf("Let.String = %q", got)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{VInt(-7), "-7"},
		{VBool(true), "true"},
		{VStr("a\"b"), `"a\"b"`},
		{VUnit{}, "unit"},
		{IntList(1, 2, 3), "[1, 2, 3]"},
		{VList{}, "[]"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%T String = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{VInt(1), VInt(1), true},
		{VInt(1), VInt(2), false},
		{VInt(1), VBool(true), false},
		{VBool(true), VBool(true), true},
		{VStr("x"), VStr("x"), true},
		{VUnit{}, VUnit{}, true},
		{IntList(1, 2), IntList(1, 2), true},
		{IntList(1, 2), IntList(1), false},
		{IntList(1), IntList(2), false},
		{VList{}, VList{}, true},
		{VList{}, VInt(0), false},
	}
	for _, tc := range cases {
		if got := tc.a.Equal(tc.b); got != tc.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestListOps(t *testing.T) {
	l := IntList(10, 20, 30)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.IsEmpty() {
		t.Fatal("IsEmpty on non-empty list")
	}
	el := l.Elems()
	if len(el) != 3 || !el[0].Equal(VInt(10)) || !el[2].Equal(VInt(30)) {
		t.Fatalf("Elems = %v", el)
	}
	l2 := l.Cons(VInt(5))
	if l2.Len() != 4 || !l2.Cell.Head.Equal(VInt(5)) {
		t.Fatalf("Cons broken: %v", l2)
	}
	// Persistence: l unchanged by Cons.
	if l.Len() != 3 {
		t.Fatal("Cons mutated the source list")
	}
}

func TestSubstShadowing(t *testing.T) {
	// let x = x+1 in x*x — substituting x affects the bind but not the body.
	e := LetIn("x", Op("+", V("x"), Int(1)), Op("*", V("x"), V("x")))
	got := Subst(e, "x", VInt(10))
	l, ok := got.(Let)
	if !ok {
		t.Fatalf("Subst changed node kind: %T", got)
	}
	if fv := FreeVars(l.Bind); len(fv) != 0 {
		t.Errorf("bind still has free vars %v", fv)
	}
	// The body's x is bound by the let, so it isn't free in the Let, but it
	// must remain a Var, not become a literal.
	if _, isVar := l.Body.(Prim); !isVar {
		t.Fatalf("body rewritten unexpectedly: %v", l.Body)
	}
	if l.Body.(Prim).Args[0].String() != "x" {
		t.Errorf("shadowed body var was substituted: %v", l.Body)
	}
}

func TestSubstInnerLetDifferentName(t *testing.T) {
	e := LetIn("y", V("x"), Op("+", V("x"), V("y")))
	got := Subst(e, "x", VInt(3))
	if fv := FreeVars(got); len(fv) != 0 {
		t.Fatalf("free vars remain after substitution: %v (expr %v)", fv, got)
	}
}

func TestFillHoles(t *testing.T) {
	e := Op("+", Hole{1}, Op("*", Hole{2}, Int(3)))
	got := FillHoles(e, map[int]Value{1: VInt(10), 2: VInt(20)})
	if ids := HoleIDs(got); len(ids) != 0 {
		t.Fatalf("holes remain: %v", ids)
	}
	partial := FillHoles(e, map[int]Value{2: VInt(20)})
	if ids := HoleIDs(partial); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("partial fill holes = %v", ids)
	}
	// No fills: identical structure returned.
	if ids := HoleIDs(FillHoles(e, nil)); len(ids) != 2 {
		t.Fatal("no-op fill changed holes")
	}
}

func TestHoleIDsOrderAndDedup(t *testing.T) {
	e := Op("+", Hole{3}, Op("*", Hole{1}, Hole{3}))
	ids := HoleIDs(e)
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 1 {
		t.Fatalf("HoleIDs = %v, want [3 1]", ids)
	}
}

func TestFreeVars(t *testing.T) {
	e := LetIn("x", V("a"), Op("+", V("x"), Op("*", V("b"), V("a"))))
	fv := FreeVars(e)
	if len(fv) != 2 || fv[0] != "a" || fv[1] != "b" {
		t.Fatalf("FreeVars = %v, want [a b]", fv)
	}
	if fv := FreeVars(Cond(V("c"), V("t"), V("e"))); len(fv) != 3 {
		t.Fatalf("FreeVars(if) = %v", fv)
	}
}

func TestCountNodes(t *testing.T) {
	if n := CountNodes(Int(1)); n != 1 {
		t.Fatalf("CountNodes(lit) = %d", n)
	}
	e := Cond(Op("<", V("n"), Int(2)), V("n"), Call("f", V("n")))
	// if(1) + <(1)+n(1)+2(1) + n(1) + f(1)+n(1) = 7
	if n := CountNodes(e); n != 7 {
		t.Fatalf("CountNodes = %d, want 7", n)
	}
}

func randomValue(r *rand.Rand, depth int) Value {
	switch k := r.Intn(5); {
	case k == 0:
		return VInt(r.Int63n(1000) - 500)
	case k == 1:
		return VBool(r.Intn(2) == 0)
	case k == 2:
		return VStr(strings.Repeat("a", r.Intn(5)))
	case k == 3:
		return VUnit{}
	default:
		if depth <= 0 {
			return VInt(int64(r.Intn(9)))
		}
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return ListOf(elems...)
	}
}

func randomExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return Lit{randomValue(r, 1)}
		case 1:
			return V("v" + string(rune('a'+r.Intn(3))))
		default:
			return Hole{ID: r.Intn(8)}
		}
	}
	switch r.Intn(5) {
	case 0:
		return Op("+", randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 1:
		return Cond(randomExpr(r, depth-1), randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 2:
		return LetIn("x", randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 3:
		return Call("f", randomExpr(r, depth-1))
	default:
		return Lit{randomValue(r, 2)}
	}
}

func TestQuickValueCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		v := randomValue(r, 3)
		buf := EncodeValue(v)
		if len(buf) != v.EncodedSize() {
			return false
		}
		back, rest, err := DecodeValue(buf)
		return err == nil && len(rest) == 0 && back.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExprCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	f := func() bool {
		e := randomExpr(r, 4)
		buf := EncodeExpr(e)
		back, rest, err := DecodeExpr(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		// Structural identity via re-encoding (String may be ambiguous).
		buf2 := EncodeExpr(back)
		return string(buf) == string(buf2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubstRemovesName(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func() bool {
		e := randomExpr(r, 4)
		got := Subst(e, "va", VInt(1))
		// After substituting va, it may only remain free if shadowed — and
		// our generator only binds "x", so va must be gone entirely.
		for _, name := range FreeVars(got) {
			if name == "va" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestValuesSliceCodec(t *testing.T) {
	vals := []Value{VInt(1), VStr("hi"), IntList(3, 4)}
	buf := EncodeValues(vals)
	if len(buf) != ValuesEncodedSize(vals) {
		t.Fatalf("ValuesEncodedSize = %d, want %d", ValuesEncodedSize(vals), len(buf))
	}
	back, rest, err := DecodeValues(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("DecodeValues: %v rest=%d", err, len(rest))
	}
	if len(back) != 3 || !back[0].Equal(vals[0]) || !back[1].Equal(vals[1]) || !back[2].Equal(vals[2]) {
		t.Fatalf("DecodeValues = %v", back)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("DecodeValue(nil) succeeded")
	}
	if _, _, err := DecodeValue([]byte{250}); err == nil {
		t.Error("DecodeValue(bad tag) succeeded")
	}
	if _, _, err := DecodeExpr([]byte{250}); err == nil {
		t.Error("DecodeExpr(bad tag) succeeded")
	}
	if _, _, err := DecodeValue([]byte{tagInt, 1}); err == nil {
		t.Error("DecodeValue(short int) succeeded")
	}
	if _, _, err := DecodeExpr(nil); err == nil {
		t.Error("DecodeExpr(nil) succeeded")
	}
}

func TestTypeName(t *testing.T) {
	cases := map[string]Value{
		"int": VInt(0), "bool": VBool(false), "str": VStr(""),
		"unit": VUnit{}, "list": VList{},
	}
	for want, v := range cases {
		if got := TypeName(v); got != want {
			t.Errorf("TypeName(%T) = %q, want %q", v, got, want)
		}
	}
}

func BenchmarkEncodeValueList(b *testing.B) {
	v := IntList(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeValue(v)
	}
}

func BenchmarkSubstFibBody(b *testing.B) {
	body := Cond(
		Op("<", V("n"), Int(2)),
		V("n"),
		Op("+", Call("fib", Op("-", V("n"), Int(1))), Call("fib", Op("-", V("n"), Int(2)))),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Subst(body, "n", VInt(int64(i)))
	}
}
