// Package expr defines the abstract syntax and value domain of the strict,
// first-order applicative language executed by the simulated multiprocessor.
//
// The language is deliberately side-effect free: programs are determinate
// (referentially transparent), which is the property §2.1 of the paper
// relies on — any invocation of a function application with the same
// arguments yields the same result, so a retained task packet is a complete
// checkpoint.
//
// Expressions are immutable once built; evaluation never mutates an Expr, it
// produces new residual expressions. Values are likewise immutable and may
// be freely shared between simulated processors (the simulation models a
// partitioned-memory machine, so sharing is a simulation convenience, not a
// semantic channel).
package expr

import (
	"fmt"
	"strings"
)

// Expr is an expression of the applicative language.
type Expr interface {
	isExpr()
	// String renders source-like text, used in traces and error messages.
	String() string
}

// Lit is a literal value.
type Lit struct{ V Value }

// Var is a reference to a let- or parameter-bound name.
type Var struct{ Name string }

// Prim applies a strict primitive operator (arithmetic, comparison, list
// construction and access...) to argument expressions.
type Prim struct {
	Op   string
	Args []Expr
}

// If is the conditional special form: only the condition is strict.
type If struct{ Cond, Then, Else Expr }

// Let binds Name to the value of Bind within Body. Bind is strict.
type Let struct {
	Name string
	Bind Expr
	Body Expr
}

// Apply is the application of a named, program-defined function to argument
// expressions. Applications are the task-spawn points of the machine: §2.1
// identifies "when a parent task spawns a child function" as the functional
// checkpoint moment.
type Apply struct {
	Fn   string
	Args []Expr
}

// Hole is a placeholder for the not-yet-available result of a spawned child
// task. Holes never appear in source programs; the interpreter introduces
// them when it suspends an evaluation (the residual expression of a blocked
// task), and fills them when result packets arrive.
type Hole struct{ ID int }

func (Lit) isExpr()   {}
func (Var) isExpr()   {}
func (Prim) isExpr()  {}
func (If) isExpr()    {}
func (Let) isExpr()   {}
func (Apply) isExpr() {}
func (Hole) isExpr()  {}

func (e Lit) String() string { return e.V.String() }
func (e Var) String() string { return e.Name }

func (e Prim) String() string {
	var b strings.Builder
	b.WriteString(e.Op)
	b.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (e If) String() string {
	return fmt.Sprintf("if %s then %s else %s", e.Cond, e.Then, e.Else)
}

func (e Let) String() string {
	return fmt.Sprintf("let %s = %s in %s", e.Name, e.Bind, e.Body)
}

func (e Apply) String() string {
	var b strings.Builder
	b.WriteString(e.Fn)
	b.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (e Hole) String() string { return fmt.Sprintf("⟨%d⟩", e.ID) }

// Convenience constructors keep program definitions readable.

// Int builds an integer literal expression.
func Int(v int64) Expr { return Lit{VInt(v)} }

// Bool builds a boolean literal expression.
func Bool(v bool) Expr { return Lit{VBool(v)} }

// Str builds a string literal expression.
func Str(v string) Expr { return Lit{VStr(v)} }

// Nil builds an empty-list literal expression.
func Nil() Expr { return Lit{VList{}} }

// V builds a variable reference.
func V(name string) Expr { return Var{name} }

// Op builds a primitive application.
func Op(op string, args ...Expr) Expr { return Prim{Op: op, Args: args} }

// Call builds a function application.
func Call(fn string, args ...Expr) Expr { return Apply{Fn: fn, Args: args} }

// Cond builds a conditional.
func Cond(c, t, e Expr) Expr { return If{Cond: c, Then: t, Else: e} }

// LetIn builds a let binding.
func LetIn(name string, bind, body Expr) Expr { return Let{Name: name, Bind: bind, Body: body} }

// CountNodes reports the number of AST nodes in e. It is used by tests and
// by the cost model sanity checks.
func CountNodes(e Expr) int {
	switch n := e.(type) {
	case Lit, Var, Hole:
		return 1
	case Prim:
		c := 1
		for _, a := range n.Args {
			c += CountNodes(a)
		}
		return c
	case If:
		return 1 + CountNodes(n.Cond) + CountNodes(n.Then) + CountNodes(n.Else)
	case Let:
		return 1 + CountNodes(n.Bind) + CountNodes(n.Body)
	case Apply:
		c := 1
		for _, a := range n.Args {
			c += CountNodes(a)
		}
		return c
	default:
		panic(fmt.Sprintf("expr: unknown node %T", e))
	}
}

// HoleIDs returns the IDs of all holes in e, in left-to-right order,
// without duplicates.
func HoleIDs(e Expr) []int {
	var out []int
	seen := map[int]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case Hole:
			if !seen[n.ID] {
				seen[n.ID] = true
				out = append(out, n.ID)
			}
		case Prim:
			for _, a := range n.Args {
				walk(a)
			}
		case If:
			walk(n.Cond)
			walk(n.Then)
			walk(n.Else)
		case Let:
			walk(n.Bind)
			walk(n.Body)
		case Apply:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// FreeVars returns the free variable names of e in first-occurrence order.
func FreeVars(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr, map[string]bool)
	walk = func(e Expr, bound map[string]bool) {
		switch n := e.(type) {
		case Var:
			if !bound[n.Name] && !seen[n.Name] {
				seen[n.Name] = true
				out = append(out, n.Name)
			}
		case Prim:
			for _, a := range n.Args {
				walk(a, bound)
			}
		case If:
			walk(n.Cond, bound)
			walk(n.Then, bound)
			walk(n.Else, bound)
		case Let:
			walk(n.Bind, bound)
			if bound[n.Name] {
				walk(n.Body, bound)
			} else {
				bound[n.Name] = true
				walk(n.Body, bound)
				delete(bound, n.Name)
			}
		case Apply:
			for _, a := range n.Args {
				walk(a, bound)
			}
		}
	}
	walk(e, map[string]bool{})
	return out
}
