package expr

// Subst replaces free occurrences of name with the literal value v.
// Let bindings of the same name shadow the substitution in their body (but
// not in their bind expression), which is the only capture case in this
// first-order language: function bodies are closed except for parameters,
// and parameters are substituted before a body ever mixes with caller
// expressions.
//
// Expressions are immutable, so unchanged subtrees are returned as-is
// rather than rebuilt; the changed flag threaded through the helpers below
// is what makes that sharing exact (a node is copied iff some descendant
// actually changed).
func Subst(e Expr, name string, v Value) Expr {
	out, _ := subst(e, name, v)
	return out
}

func subst(e Expr, name string, v Value) (Expr, bool) {
	switch n := e.(type) {
	case Lit, Hole:
		return e, false
	case Var:
		if n.Name == name {
			return Lit{v}, true
		}
		return e, false
	case Prim:
		args, changed := substSlice(n.Args, name, v)
		if !changed {
			return e, false
		}
		return Prim{Op: n.Op, Args: args}, true
	case If:
		c, cc := subst(n.Cond, name, v)
		t, tc := subst(n.Then, name, v)
		f, fc := subst(n.Else, name, v)
		if !cc && !tc && !fc {
			return e, false
		}
		return If{Cond: c, Then: t, Else: f}, true
	case Let:
		bind, bc := subst(n.Bind, name, v)
		body, yc := n.Body, false
		if n.Name != name { // shadowed otherwise
			body, yc = subst(n.Body, name, v)
		}
		if !bc && !yc {
			return e, false
		}
		return Let{Name: n.Name, Bind: bind, Body: body}, true
	case Apply:
		args, changed := substSlice(n.Args, name, v)
		if !changed {
			return e, false
		}
		return Apply{Fn: n.Fn, Args: args}, true
	default:
		panic("expr: unknown node in Subst")
	}
}

// SubstAll applies every binding in env to e. Bindings are independent
// (values are closed), so application order does not matter.
func SubstAll(e Expr, env map[string]Value) Expr {
	for name, v := range env {
		e = Subst(e, name, v)
	}
	return e
}

// SubstMany replaces free occurrences of names[i] with vals[i] in one tree
// walk. Because substituted values are closed literals, the result is
// identical to applying Subst once per name in any order — this is the
// instantiation fast path (one walk per application instead of one per
// parameter). At most 64 names are supported (shadowing is tracked in a
// bitmask); longer lists fall back to sequential Subst.
func SubstMany(e Expr, names []string, vals []Value) Expr {
	if len(names) == 0 {
		return e
	}
	if len(names) == 1 {
		return Subst(e, names[0], vals[0])
	}
	if len(names) > 64 {
		for i, name := range names {
			e = Subst(e, name, vals[i])
		}
		return e
	}
	out, _ := substMany(e, names, vals, 0)
	return out
}

// substMany is the recursive worker; shadow has bit i set when names[i] is
// let-bound in the current scope and must not be substituted.
func substMany(e Expr, names []string, vals []Value, shadow uint64) (Expr, bool) {
	switch n := e.(type) {
	case Lit, Hole:
		return e, false
	case Var:
		for i, name := range names {
			if shadow&(1<<uint(i)) == 0 && n.Name == name {
				return Lit{vals[i]}, true
			}
		}
		return e, false
	case Prim:
		args, changed := substManySlice(n.Args, names, vals, shadow)
		if !changed {
			return e, false
		}
		return Prim{Op: n.Op, Args: args}, true
	case If:
		c, cc := substMany(n.Cond, names, vals, shadow)
		t, tc := substMany(n.Then, names, vals, shadow)
		f, fc := substMany(n.Else, names, vals, shadow)
		if !cc && !tc && !fc {
			return e, false
		}
		return If{Cond: c, Then: t, Else: f}, true
	case Let:
		bind, bc := substMany(n.Bind, names, vals, shadow)
		bodyShadow := shadow
		for i, name := range names {
			if n.Name == name {
				bodyShadow |= 1 << uint(i)
			}
		}
		body, yc := substMany(n.Body, names, vals, bodyShadow)
		if !bc && !yc {
			return e, false
		}
		return Let{Name: n.Name, Bind: bind, Body: body}, true
	case Apply:
		args, changed := substManySlice(n.Args, names, vals, shadow)
		if !changed {
			return e, false
		}
		return Apply{Fn: n.Fn, Args: args}, true
	default:
		panic("expr: unknown node in SubstMany")
	}
}

func substManySlice(in []Expr, names []string, vals []Value, shadow uint64) ([]Expr, bool) {
	var out []Expr
	for i, a := range in {
		b, changed := substMany(a, names, vals, shadow)
		if changed && out == nil {
			out = make([]Expr, len(in))
			copy(out, in[:i])
		}
		if out != nil {
			out[i] = b
		}
	}
	if out == nil {
		return in, false
	}
	return out, true
}

// FillHoles replaces each Hole whose ID appears in fills with the
// corresponding literal value. Holes without a binding remain. Like Subst,
// untouched subtrees are shared, not copied.
func FillHoles(e Expr, fills map[int]Value) Expr {
	if len(fills) == 0 {
		return e
	}
	out, _ := fillHoles(e, fills)
	return out
}

func fillHoles(e Expr, fills map[int]Value) (Expr, bool) {
	switch n := e.(type) {
	case Lit, Var:
		return e, false
	case Hole:
		if v, ok := fills[n.ID]; ok {
			return Lit{v}, true
		}
		return e, false
	case Prim:
		args, changed := fillSlice(n.Args, fills)
		if !changed {
			return e, false
		}
		return Prim{Op: n.Op, Args: args}, true
	case If:
		c, cc := fillHoles(n.Cond, fills)
		t, tc := fillHoles(n.Then, fills)
		f, fc := fillHoles(n.Else, fills)
		if !cc && !tc && !fc {
			return e, false
		}
		return If{Cond: c, Then: t, Else: f}, true
	case Let:
		bind, bc := fillHoles(n.Bind, fills)
		body, yc := fillHoles(n.Body, fills)
		if !bc && !yc {
			return e, false
		}
		return Let{Name: n.Name, Bind: bind, Body: body}, true
	case Apply:
		args, changed := fillSlice(n.Args, fills)
		if !changed {
			return e, false
		}
		return Apply{Fn: n.Fn, Args: args}, true
	default:
		panic("expr: unknown node in FillHoles")
	}
}

func substSlice(in []Expr, name string, v Value) ([]Expr, bool) {
	var out []Expr
	for i, a := range in {
		b, changed := subst(a, name, v)
		if changed && out == nil {
			out = make([]Expr, len(in))
			copy(out, in[:i])
		}
		if out != nil {
			out[i] = b
		}
	}
	if out == nil {
		return in, false
	}
	return out, true
}

func fillSlice(in []Expr, fills map[int]Value) ([]Expr, bool) {
	var out []Expr
	for i, a := range in {
		b, changed := fillHoles(a, fills)
		if changed && out == nil {
			out = make([]Expr, len(in))
			copy(out, in[:i])
		}
		if out != nil {
			out[i] = b
		}
	}
	if out == nil {
		return in, false
	}
	return out, true
}
