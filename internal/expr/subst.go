package expr

// Subst replaces free occurrences of name with the literal value v.
// Let bindings of the same name shadow the substitution in their body (but
// not in their bind expression), which is the only capture case in this
// first-order language: function bodies are closed except for parameters,
// and parameters are substituted before a body ever mixes with caller
// expressions.
func Subst(e Expr, name string, v Value) Expr {
	switch n := e.(type) {
	case Lit, Hole:
		return e
	case Var:
		if n.Name == name {
			return Lit{v}
		}
		return e
	case Prim:
		args, changed := substSlice(n.Args, name, v)
		if !changed {
			return e
		}
		return Prim{Op: n.Op, Args: args}
	case If:
		c := Subst(n.Cond, name, v)
		t := Subst(n.Then, name, v)
		f := Subst(n.Else, name, v)
		if same(c, n.Cond) && same(t, n.Then) && same(f, n.Else) {
			return e
		}
		return If{Cond: c, Then: t, Else: f}
	case Let:
		bind := Subst(n.Bind, name, v)
		body := n.Body
		if n.Name != name { // shadowed otherwise
			body = Subst(n.Body, name, v)
		}
		if same(bind, n.Bind) && same(body, n.Body) {
			return e
		}
		return Let{Name: n.Name, Bind: bind, Body: body}
	case Apply:
		args, changed := substSlice(n.Args, name, v)
		if !changed {
			return e
		}
		return Apply{Fn: n.Fn, Args: args}
	default:
		panic("expr: unknown node in Subst")
	}
}

// SubstAll applies every binding in env to e. Bindings are independent
// (values are closed), so application order does not matter.
func SubstAll(e Expr, env map[string]Value) Expr {
	for name, v := range env {
		e = Subst(e, name, v)
	}
	return e
}

// FillHoles replaces each Hole whose ID appears in fills with the
// corresponding literal value. Holes without a binding remain.
func FillHoles(e Expr, fills map[int]Value) Expr {
	if len(fills) == 0 {
		return e
	}
	switch n := e.(type) {
	case Lit, Var:
		return e
	case Hole:
		if v, ok := fills[n.ID]; ok {
			return Lit{v}
		}
		return e
	case Prim:
		args, changed := fillSlice(n.Args, fills)
		if !changed {
			return e
		}
		return Prim{Op: n.Op, Args: args}
	case If:
		c := FillHoles(n.Cond, fills)
		t := FillHoles(n.Then, fills)
		f := FillHoles(n.Else, fills)
		if same(c, n.Cond) && same(t, n.Then) && same(f, n.Else) {
			return e
		}
		return If{Cond: c, Then: t, Else: f}
	case Let:
		bind := FillHoles(n.Bind, fills)
		body := FillHoles(n.Body, fills)
		if same(bind, n.Bind) && same(body, n.Body) {
			return e
		}
		return Let{Name: n.Name, Bind: bind, Body: body}
	case Apply:
		args, changed := fillSlice(n.Args, fills)
		if !changed {
			return e
		}
		return Apply{Fn: n.Fn, Args: args}
	default:
		panic("expr: unknown node in FillHoles")
	}
}

func substSlice(in []Expr, name string, v Value) ([]Expr, bool) {
	var out []Expr
	for i, a := range in {
		b := Subst(a, name, v)
		if !same(a, b) && out == nil {
			out = make([]Expr, len(in))
			copy(out, in[:i])
		}
		if out != nil {
			out[i] = b
		}
	}
	if out == nil {
		return in, false
	}
	return out, true
}

func fillSlice(in []Expr, fills map[int]Value) ([]Expr, bool) {
	var out []Expr
	for i, a := range in {
		b := FillHoles(a, fills)
		if !same(a, b) && out == nil {
			out = make([]Expr, len(in))
			copy(out, in[:i])
		}
		if out != nil {
			out[i] = b
		}
	}
	if out == nil {
		return in, false
	}
	return out, true
}

// same reports whether two Exprs are the identical node. Comparing
// interfaces with == would panic on non-comparable underlying types (Prim
// holds a slice), so compare only when both sides are comparable leaf nodes;
// otherwise rely on the substitution functions returning the original
// interface value unchanged, which we detect with a cheap shape check.
func same(a, b Expr) bool {
	switch a.(type) {
	case Lit, Var, Hole:
		switch b.(type) {
		case Lit, Var, Hole:
			return a == b
		}
		return false
	}
	// For composite nodes the rewriters return the original value when
	// nothing changed; detect that via pointer-free structural identity of
	// the cheap kind: only trust the changed flags computed by callers.
	return false
}
