package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a fully evaluated, immutable value of the applicative language.
// Values are the payloads of result packets and the arguments captured in
// task packets (functional checkpoints).
type Value interface {
	isValue()
	// String renders the value for traces.
	String() string
	// EncodedSize is the number of bytes the value occupies in the wire
	// codec (see codec.go); the simulator charges message and checkpoint
	// storage costs from it.
	EncodedSize() int
	// Equal reports deep structural equality; it is the comparison the
	// §5.3 majority voter uses.
	Equal(Value) bool
}

// VInt is a 64-bit integer value.
type VInt int64

// VBool is a boolean value.
type VBool bool

// VStr is an immutable string value.
type VStr string

// VUnit is the unit (no-information) value.
type VUnit struct{}

// VList is an immutable singly linked list. The zero value is the empty
// list. Cells are shared, never mutated.
type VList struct{ Cell *Cell }

// Cell is one cons cell of a VList.
type Cell struct {
	Head Value
	Tail VList
}

func (VInt) isValue()  {}
func (VBool) isValue() {}
func (VStr) isValue()  {}
func (VUnit) isValue() {}
func (VList) isValue() {}

func (v VInt) String() string  { return strconv.FormatInt(int64(v), 10) }
func (v VBool) String() string { return strconv.FormatBool(bool(v)) }
func (v VStr) String() string  { return strconv.Quote(string(v)) }
func (VUnit) String() string   { return "unit" }

func (v VList) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for c, first := v.Cell, true; c != nil; c, first = c.Tail.Cell, false {
		if !first {
			b.WriteString(", ")
		}
		b.WriteString(c.Head.String())
	}
	b.WriteByte(']')
	return b.String()
}

func (v VInt) EncodedSize() int  { return 1 + 8 }
func (v VBool) EncodedSize() int { return 1 + 1 }
func (v VStr) EncodedSize() int  { return 1 + 4 + len(v) }
func (VUnit) EncodedSize() int   { return 1 }

func (v VList) EncodedSize() int {
	n := 1 + 4 // tag + length
	for c := v.Cell; c != nil; c = c.Tail.Cell {
		n += c.Head.EncodedSize()
	}
	return n
}

func (v VInt) Equal(o Value) bool  { w, ok := o.(VInt); return ok && v == w }
func (v VBool) Equal(o Value) bool { w, ok := o.(VBool); return ok && v == w }
func (v VStr) Equal(o Value) bool  { w, ok := o.(VStr); return ok && v == w }
func (VUnit) Equal(o Value) bool   { _, ok := o.(VUnit); return ok }

func (v VList) Equal(o Value) bool {
	w, ok := o.(VList)
	if !ok {
		return false
	}
	a, b := v.Cell, w.Cell
	for a != nil && b != nil {
		if !a.Head.Equal(b.Head) {
			return false
		}
		a, b = a.Tail.Cell, b.Tail.Cell
	}
	return a == nil && b == nil
}

// IsEmpty reports whether the list has no cells.
func (v VList) IsEmpty() bool { return v.Cell == nil }

// Cons returns a new list with head prepended to v.
func (v VList) Cons(head Value) VList { return VList{&Cell{Head: head, Tail: v}} }

// Len returns the number of elements of the list.
func (v VList) Len() int {
	n := 0
	for c := v.Cell; c != nil; c = c.Tail.Cell {
		n++
	}
	return n
}

// Elems returns the list elements as a Go slice (front first).
func (v VList) Elems() []Value {
	var out []Value
	for c := v.Cell; c != nil; c = c.Tail.Cell {
		out = append(out, c.Head)
	}
	return out
}

// ListOf builds a VList from the given elements, front first.
func ListOf(elems ...Value) VList {
	var l VList
	for i := len(elems) - 1; i >= 0; i-- {
		l = l.Cons(elems[i])
	}
	return l
}

// IntList builds a VList of integers, front first.
func IntList(xs ...int64) VList {
	vals := make([]Value, len(xs))
	for i, x := range xs {
		vals[i] = VInt(x)
	}
	return ListOf(vals...)
}

// TypeName returns a short name of the value's dynamic type for error
// messages ("int", "bool", "str", "unit", "list").
func TypeName(v Value) string {
	switch v.(type) {
	case VInt:
		return "int"
	case VBool:
		return "bool"
	case VStr:
		return "str"
	case VUnit:
		return "unit"
	case VList:
		return "list"
	default:
		return fmt.Sprintf("%T", v)
	}
}
