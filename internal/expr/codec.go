package expr

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The wire codec serializes values and expressions into a compact binary
// form. The simulated machine never actually moves bytes between address
// spaces — values are immutable and shared — but the codec gives honest
// per-message and per-checkpoint byte counts for the cost model, and it is
// exercised round-trip in tests to prove task packets really are
// self-contained (a requirement for functional checkpoints: §2.1 "The packet
// contains all necessary information ... to activate the child task").

// Value tags.
const (
	tagInt byte = iota + 1
	tagBool
	tagStr
	tagUnit
	tagList
)

// Expression tags (disjoint from value tags for defensive decoding).
const (
	tagLit byte = iota + 32
	tagVar
	tagPrim
	tagIf
	tagLet
	tagApply
	tagHole
)

// ErrCodec is wrapped by all decoding errors.
var ErrCodec = errors.New("expr: codec")

// AppendValue appends the wire form of v to buf and returns the extended
// buffer.
func AppendValue(buf []byte, v Value) []byte {
	switch x := v.(type) {
	case VInt:
		buf = append(buf, tagInt)
		return binary.BigEndian.AppendUint64(buf, uint64(x))
	case VBool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(buf, tagBool, b)
	case VStr:
		buf = append(buf, tagStr)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(x)))
		return append(buf, x...)
	case VUnit:
		return append(buf, tagUnit)
	case VList:
		buf = append(buf, tagList)
		buf = binary.BigEndian.AppendUint32(buf, uint32(x.Len()))
		for c := x.Cell; c != nil; c = c.Tail.Cell {
			buf = AppendValue(buf, c.Head)
		}
		return buf
	default:
		panic(fmt.Sprintf("expr: cannot encode value %T", v))
	}
}

// EncodeValue returns the wire form of v.
func EncodeValue(v Value) []byte { return AppendValue(nil, v) }

// DecodeValue decodes one value from buf, returning it and the remaining
// bytes.
func DecodeValue(buf []byte) (Value, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, fmt.Errorf("%w: empty buffer", ErrCodec)
	}
	tag, rest := buf[0], buf[1:]
	switch tag {
	case tagInt:
		if len(rest) < 8 {
			return nil, nil, fmt.Errorf("%w: short int", ErrCodec)
		}
		return VInt(binary.BigEndian.Uint64(rest)), rest[8:], nil
	case tagBool:
		if len(rest) < 1 {
			return nil, nil, fmt.Errorf("%w: short bool", ErrCodec)
		}
		return VBool(rest[0] != 0), rest[1:], nil
	case tagStr:
		if len(rest) < 4 {
			return nil, nil, fmt.Errorf("%w: short str header", ErrCodec)
		}
		n := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) < n {
			return nil, nil, fmt.Errorf("%w: short str body", ErrCodec)
		}
		return VStr(rest[:n]), rest[n:], nil
	case tagUnit:
		return VUnit{}, rest, nil
	case tagList:
		if len(rest) < 4 {
			return nil, nil, fmt.Errorf("%w: short list header", ErrCodec)
		}
		n := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		elems := make([]Value, 0, n)
		for i := 0; i < n; i++ {
			var v Value
			var err error
			v, rest, err = DecodeValue(rest)
			if err != nil {
				return nil, nil, err
			}
			elems = append(elems, v)
		}
		return ListOf(elems...), rest, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown value tag %d", ErrCodec, tag)
	}
}

// AppendExpr appends the wire form of e to buf.
func AppendExpr(buf []byte, e Expr) []byte {
	switch n := e.(type) {
	case Lit:
		buf = append(buf, tagLit)
		return AppendValue(buf, n.V)
	case Var:
		buf = append(buf, tagVar)
		return appendString(buf, n.Name)
	case Prim:
		buf = append(buf, tagPrim)
		buf = appendString(buf, n.Op)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(n.Args)))
		for _, a := range n.Args {
			buf = AppendExpr(buf, a)
		}
		return buf
	case If:
		buf = append(buf, tagIf)
		buf = AppendExpr(buf, n.Cond)
		buf = AppendExpr(buf, n.Then)
		return AppendExpr(buf, n.Else)
	case Let:
		buf = append(buf, tagLet)
		buf = appendString(buf, n.Name)
		buf = AppendExpr(buf, n.Bind)
		return AppendExpr(buf, n.Body)
	case Apply:
		buf = append(buf, tagApply)
		buf = appendString(buf, n.Fn)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(n.Args)))
		for _, a := range n.Args {
			buf = AppendExpr(buf, a)
		}
		return buf
	case Hole:
		buf = append(buf, tagHole)
		return binary.BigEndian.AppendUint32(buf, uint32(n.ID))
	default:
		panic(fmt.Sprintf("expr: cannot encode expression %T", e))
	}
}

// EncodeExpr returns the wire form of e.
func EncodeExpr(e Expr) []byte { return AppendExpr(nil, e) }

// DecodeExpr decodes one expression from buf, returning it and the
// remaining bytes.
func DecodeExpr(buf []byte) (Expr, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, fmt.Errorf("%w: empty buffer", ErrCodec)
	}
	tag, rest := buf[0], buf[1:]
	switch tag {
	case tagLit:
		v, rest, err := DecodeValue(rest)
		if err != nil {
			return nil, nil, err
		}
		return Lit{v}, rest, nil
	case tagVar:
		s, rest, err := decodeString(rest)
		if err != nil {
			return nil, nil, err
		}
		return Var{s}, rest, nil
	case tagPrim:
		op, rest, err := decodeString(rest)
		if err != nil {
			return nil, nil, err
		}
		args, rest, err := decodeExprSlice(rest)
		if err != nil {
			return nil, nil, err
		}
		return Prim{Op: op, Args: args}, rest, nil
	case tagIf:
		c, rest, err := DecodeExpr(rest)
		if err != nil {
			return nil, nil, err
		}
		t, rest, err := DecodeExpr(rest)
		if err != nil {
			return nil, nil, err
		}
		f, rest, err := DecodeExpr(rest)
		if err != nil {
			return nil, nil, err
		}
		return If{Cond: c, Then: t, Else: f}, rest, nil
	case tagLet:
		name, rest, err := decodeString(rest)
		if err != nil {
			return nil, nil, err
		}
		bind, rest, err := DecodeExpr(rest)
		if err != nil {
			return nil, nil, err
		}
		body, rest, err := DecodeExpr(rest)
		if err != nil {
			return nil, nil, err
		}
		return Let{Name: name, Bind: bind, Body: body}, rest, nil
	case tagApply:
		fn, rest, err := decodeString(rest)
		if err != nil {
			return nil, nil, err
		}
		args, rest, err := decodeExprSlice(rest)
		if err != nil {
			return nil, nil, err
		}
		return Apply{Fn: fn, Args: args}, rest, nil
	case tagHole:
		if len(rest) < 4 {
			return nil, nil, fmt.Errorf("%w: short hole", ErrCodec)
		}
		return Hole{ID: int(binary.BigEndian.Uint32(rest))}, rest[4:], nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown expr tag %d", ErrCodec, tag)
	}
}

// EncodeValues encodes a value slice with a count prefix.
func EncodeValues(vals []Value) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(vals)))
	for _, v := range vals {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeValues inverts EncodeValues.
func DecodeValues(buf []byte) ([]Value, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("%w: short values header", ErrCodec)
	}
	n := int(binary.BigEndian.Uint32(buf))
	rest := buf[4:]
	out := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		var v Value
		var err error
		v, rest, err = DecodeValue(rest)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, v)
	}
	return out, rest, nil
}

// ValuesEncodedSize returns the wire size of a value slice without
// materializing the encoding.
func ValuesEncodedSize(vals []Value) int {
	n := 4
	for _, v := range vals {
		n += v.EncodedSize()
	}
	return n
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func decodeString(buf []byte) (string, []byte, error) {
	if len(buf) < 4 {
		return "", nil, fmt.Errorf("%w: short string header", ErrCodec)
	}
	n := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < n {
		return "", nil, fmt.Errorf("%w: short string body", ErrCodec)
	}
	return string(buf[:n]), buf[n:], nil
}

func decodeExprSlice(buf []byte) ([]Expr, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("%w: short expr slice header", ErrCodec)
	}
	n := int(binary.BigEndian.Uint32(buf))
	rest := buf[4:]
	out := make([]Expr, 0, n)
	for i := 0; i < n; i++ {
		var e Expr
		var err error
		e, rest, err = DecodeExpr(rest)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, e)
	}
	return out, rest, nil
}
