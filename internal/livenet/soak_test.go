package livenet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/lang"
)

// dump prints each live node's resident tasks with their unfilled holes.
// It is called only after Wait timed out, when the cluster is quiescent-ish;
// the data race risk on internal maps is acceptable for a diagnostic.
func dump(t *testing.T, c *Cluster) {
	for _, nd := range c.nodes {
		if !nd.alive.Load() {
			t.Logf("node %d: DEAD", nd.id)
			continue
		}
		t.Logf("node %d: %d stamps, inbox %d", nd.id, len(nd.tasks), len(nd.inbox))
		shown := 0
	outer:
		for _, list := range nd.tasks {
			for _, task := range list {
				if task.unfilled == 0 {
					continue
				}
				desc := ""
				for id, ck := range task.children {
					if !ck.filled {
						desc += fmt.Sprintf(" hole%d->node%d", id, ck.dest)
					}
				}
				t.Logf("  task %v parent=(%d,%v) unfilled=%d%s",
					task.pkt.stamp, task.pkt.parentNode, task.pkt.parentTask, task.unfilled, desc)
				shown++
				if shown > 12 {
					t.Logf("  ...")
					break outer
				}
			}
		}
	}
}

// TestLiveKillSoak drives the kill/recover cycle across many seeds and kill
// instants; it exists because the livenet wedge class (orphan-lineage
// reissues colliding with main-lineage incarnations) only shows under
// scheduling variety. The dump() diagnostic prints the stuck frontier on
// failure.
func TestLiveKillSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is slow")
	}
	for iter := 0; iter < 12; iter++ {
		prog := lang.Fib()
		c, err := New(prog, 6, int64(iter)*31+2)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Start("fib", []expr.Value{expr.VInt(15)}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(iter%7) * time.Millisecond)
		if err := c.Kill(2); err != nil {
			t.Fatal(err)
		}
		v, err := c.Wait(10 * time.Second)
		if err != nil {
			t.Logf("iter %d HUNG", iter)
			dump(t, c)
			c.Shutdown()
			t.FailNow()
		}
		if !v.Equal(expr.VInt(610)) {
			t.Fatalf("iter %d: wrong answer %v", iter, v)
		}
		c.Shutdown()
	}
}
