package livenet

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

// admissionDecisions runs the same bounded-admission stream — six identical
// slow requests against two in-flight slots under the shed policy — on the
// named backend and returns the per-ticket decision vector in submission
// order ("admit" / "shed"), after verifying every admitted answer and that
// the close ledger reconciles.
//
// Identical workloads make the vector backend-comparable: the sim admits a
// same-tick batch in canonical order (ties broken by submission order), and
// the live backend decides at Submit time, where a sub-millisecond
// submission loop is far faster than fib:13 completes on real goroutines.
// Either way, the first MaxInFlight submissions are admitted and the rest
// are shed.
func admissionDecisions(t *testing.T, backend string) []string {
	t.Helper()
	const requests, slots = 6, 2
	cl, err := core.OpenOn(backend, core.Config{Procs: 8, Seed: 7, Recovery: "rollback",
		MaxInFlight: slots, Admission: "shed"})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*core.Ticket
	for i := 0; i < requests; i++ {
		tk, err := cl.SubmitSpec("fib:13")
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	decisions := make([]string, 0, requests)
	for i, tk := range tickets {
		rep, err := tk.Wait()
		switch {
		case errors.Is(err, core.ErrShed):
			if rep == nil || !rep.Shed {
				t.Fatalf("%s ticket %d: shed error without shed report: %+v", backend, i, rep)
			}
			decisions = append(decisions, "shed")
		case err != nil:
			t.Fatalf("%s ticket %d: %v", backend, i, err)
		default:
			if _, err := tk.Verify(); err != nil {
				t.Fatalf("%s ticket %d: %v", backend, i, err)
			}
			decisions = append(decisions, "admit")
		}
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Offered != requests || sr.Admitted != slots || sr.Shed != requests-slots ||
		sr.Completed != slots || sr.Failed != 0 {
		t.Fatalf("%s ledger offered/admitted/shed/completed/failed = %d/%d/%d/%d/%d\n%s",
			backend, sr.Offered, sr.Admitted, sr.Shed, sr.Completed, sr.Failed, sr.Render())
	}
	return decisions
}

// TestAdmissionParitySimLive: an identical MaxInFlight configuration yields
// identical admitted/shed decisions on the request stream's order on both
// backends — the admission contract is backend-independent even though the
// sim decides on the virtual clock and the live cluster on the wall clock.
func TestAdmissionParitySimLive(t *testing.T) {
	sim := admissionDecisions(t, "sim")
	live := admissionDecisions(t, "live")
	if strings.Join(sim, ",") != strings.Join(live, ",") {
		t.Fatalf("decision vectors diverge:\nsim : %v\nlive: %v", sim, live)
	}
	want := "admit,admit,shed,shed,shed,shed"
	if got := strings.Join(sim, ","); got != want {
		t.Fatalf("decision vector = %s, want %s", got, want)
	}
}

// TestLiveAdmissionQueue: the live queue policy holds overflow submissions
// until a slot frees, so every request in an over-capacity burst still
// completes with a verified answer and the queue's high-water mark lands on
// the close report.
func TestLiveAdmissionQueue(t *testing.T) {
	cl, err := core.OpenOn("live", core.Config{Procs: 8, Seed: 9, Recovery: "rollback",
		MaxInFlight: 1, Admission: "queue"})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*core.Ticket
	for i := 0; i < 4; i++ {
		tk, err := cl.SubmitSpec("fib:12")
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		if _, err := tk.Verify(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != 4 || sr.Shed != 0 || sr.Failed != 0 {
		t.Fatalf("completed/shed/failed = %d/%d/%d\n%s", sr.Completed, sr.Shed, sr.Failed, sr.Render())
	}
	if sr.QueueDepthMax == 0 {
		t.Fatalf("queue depth max = 0 for a 4-deep burst behind one slot\n%s", sr.Render())
	}
}

// TestLiveSpecValidation: the live backend rejects the same malformed
// service specs at Open, with the sim's vocabulary — including the
// malformed forms of the bounded queue:N policy.
func TestLiveSpecValidation(t *testing.T) {
	for _, spec := range []string{"drop", "queue:0", "queue:-1", "queue:abc", "queue:08"} {
		if _, err := core.OpenOn("live", core.Config{Admission: spec}); err == nil ||
			!strings.Contains(err.Error(), "unknown admission policy") {
			t.Fatalf("live Open accepted admission %q: %v", spec, err)
		}
	}
}

// TestLiveBoundedQueue: the live queue:N policy queues up to N submissions
// behind the in-flight bound and sheds the rest at Submit time. One slot
// plus a depth-2 queue admits three of five; the two queued completions
// report a positive time in queue, separate from their service latency.
func TestLiveBoundedQueue(t *testing.T) {
	cl, err := core.OpenOn("live", core.Config{Procs: 8, Seed: 9, Recovery: "rollback",
		MaxInFlight: 1, Admission: "queue:2"})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*core.Ticket
	for i := 0; i < 5; i++ {
		tk, err := cl.SubmitSpec("fib:12")
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	shed, queued := 0, 0
	for i, tk := range tickets {
		rep, err := tk.Wait()
		if errors.Is(err, core.ErrShed) {
			shed++
			continue
		}
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if _, err := tk.Verify(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if rep.QueuedFor > 0 {
			queued++
		}
	}
	if shed != 2 {
		t.Fatalf("shed = %d, want 2 (five offers, one slot, depth-2 queue)", shed)
	}
	if queued != 2 {
		t.Fatalf("queued completions with positive wait = %d, want 2", queued)
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != 3 || sr.Shed != 2 || sr.Failed != 0 {
		t.Fatalf("completed/shed/failed = %d/%d/%d\n%s", sr.Completed, sr.Shed, sr.Failed, sr.Render())
	}
	if sr.QueueWaitP99 <= 0 {
		t.Fatalf("queue-wait p99 = %d, want > 0\n%s", sr.QueueWaitP99, sr.Render())
	}
}
