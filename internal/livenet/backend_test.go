package livenet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/proto"
	"repro/internal/topology"
)

// short bounds every test run well under the CI timeout: a wedged recovery
// must fail the test in seconds, not hang the job.
var short = Backend{Deadline: 20 * time.Second}

func TestBackendRegisteredAsLive(t *testing.T) {
	b, err := core.ByName("live")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "live" {
		t.Fatalf("name = %q", b.Name())
	}
}

func TestBackendFaultFreeRun(t *testing.T) {
	w, err := core.StandardWorkload("fib:12")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := short.Run(core.Config{Procs: 4, Seed: 1}, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil || !rep.Completed {
		t.Fatalf("fault-free run failed: completed=%v err=%v", rep.Completed, rep.Err)
	}
	if rep.Backend != "live" || rep.Unit != core.WallMicros || rep.Sim != nil {
		t.Fatalf("report shape wrong: backend=%q unit=%q sim=%v", rep.Backend, rep.Unit, rep.Sim)
	}
	if rep.Makespan <= 0 || rep.Messages == 0 || rep.Spawned == 0 {
		t.Fatalf("counters empty: %+v", rep)
	}
	if rep.Reissued != 0 {
		t.Fatalf("fault-free run reissued %d", rep.Reissued)
	}
	if len(rep.ReissuesByNode) != 4 {
		t.Fatalf("per-node stats = %v, want 4 entries", rep.ReissuesByNode)
	}
}

// TestBackendKillDuringCascade replays a topology-generated cascade plan on
// the live cluster: the origin dies, then its mesh neighbors a wave later,
// all scheduled on the wall clock mid-run. The answer must still equal the
// sequential reference — determinacy (§2.1) under real, racing crashes.
func TestBackendKillDuringCascade(t *testing.T) {
	w, err := core.StandardWorkload("fib:14")
	if err != nil {
		t.Fatal(err)
	}
	want, err := lang.RefEval(w.Program, w.Fn, w.Args)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.ByName("mesh", 9)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		// Origin 4 (mesh center) at ~1ms, neighbors one wave and ~0.6ms
		// later: 5 of 9 nodes die while the tree is mid-flight.
		plan := faults.Cascade(topo, 4, 500, 300, 1, 1.0, faults.CrashSilent, seed)
		if got := len(plan.Procs()); got != 5 {
			t.Fatalf("cascade plan kills %d nodes, want 5", got)
		}
		rep, err := short.Run(core.Config{Procs: 9, Seed: seed}, w, plan)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Err != nil {
			t.Fatalf("seed %d: %v", seed, rep.Err)
		}
		if !rep.Completed {
			t.Fatalf("seed %d: cascade recovery did not complete within the deadline "+
				"(spawned=%d reissued=%d drained=%d)", seed, rep.Spawned, rep.Reissued, rep.Drained)
		}
		if !rep.Answer.Equal(want) {
			t.Fatalf("seed %d: answer %v != reference %v", seed, rep.Answer, want)
		}
		var perNode int64
		for _, r := range rep.ReissuesByNode {
			perNode += r
		}
		if perNode > rep.Reissued {
			t.Fatalf("per-node reissues %d exceed total %d", perNode, rep.Reissued)
		}
	}
}

// TestBackendDeadlineFailsFast proves a too-tight deadline reports
// non-completion promptly instead of hanging: the satellite requirement
// that a wedged recovery fails CI fast.
func TestBackendDeadlineFailsFast(t *testing.T) {
	w, err := core.StandardWorkload("fib:16")
	if err != nil {
		t.Fatal(err)
	}
	startAt := time.Now()
	// Deadline is in virtual ticks: 500 ticks × 2µs = 1ms of wall clock.
	rep, err := Backend{}.Run(core.Config{Procs: 4, Seed: 1, Deadline: 500}, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Skip("machine finished fib:16 within 1ms; deadline not exercised")
	}
	if elapsed := time.Since(startAt); elapsed > 5*time.Second {
		t.Fatalf("deadline run took %v, want prompt return", elapsed)
	}
}

// TestBackendNoneScheme mirrors the simulator's "none": fault-free runs
// complete, but a kill loses work for good and the run reports
// non-completion at the (tight) deadline instead of hanging.
func TestBackendNoneScheme(t *testing.T) {
	w, err := core.StandardWorkload("fib:12")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := short.Run(core.Config{Procs: 4, Seed: 1, Recovery: "none"}, w, nil)
	if err != nil || rep.Err != nil || !rep.Completed {
		t.Fatalf("fault-free none run failed: %v %v %+v", err, rep.Err, rep)
	}
	if rep.Scheme != "none" {
		t.Fatalf("scheme = %q", rep.Scheme)
	}
	// Deadline 50k ticks × 2µs = 100ms of wall clock; the kill at ~2ms
	// strands the subtree and nothing may be reissued.
	rep, err = Backend{}.Run(core.Config{Procs: 4, Seed: 1, Recovery: "none", Deadline: 50_000},
		w, faults.Crash(1, 1000, true))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Skip("fib:12 finished before the kill landed; nothing to strand")
	}
	if rep.Reissued != 0 {
		t.Fatalf("none scheme reissued %d packets", rep.Reissued)
	}
}

func TestBackendRejectsUnsupportedConfigs(t *testing.T) {
	w, err := core.StandardWorkload("fib:8")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		cfg  core.Config
		plan *faults.Plan
		want string
	}{
		{core.Config{Recovery: "splice"}, nil, "recovery"},
		{core.Config{Placement: "gradient"}, nil, "placement"},
		{core.Config{Replication: map[string]int{"work": 3}}, nil, "replication"},
		{core.Config{DisableCheckpoints: true}, nil, "checkpoints"},
		{core.Config{Raw: &machine.Config{}}, nil, "Raw"},
		{core.Config{}, &faults.Plan{Faults: []faults.Fault{{At: 1, Proc: 0, Kind: faults.Corrupt}}}, "corruption"},
		{core.Config{Procs: 2}, faults.Burst(2, 2, 1, faults.CrashAnnounced, 1), "survive"},
		{core.Config{}, faults.Crash(proto.ProcID(99), 1, true), "out of range"},
	}
	for _, tc := range cases {
		_, err := short.Run(tc.cfg, w, tc.plan)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("cfg %+v: err = %v, want containing %q", tc.cfg, err, tc.want)
		}
	}
}
