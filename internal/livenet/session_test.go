package livenet

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
)

// TestLiveServiceStream serves a batch of mixed workloads through one open
// cluster with a burst of kills landing mid-stream, and requires every
// request to complete with the reference answer — online recovery: repair
// proceeding concurrently with request service.
func TestLiveServiceStream(t *testing.T) {
	const procs, requests = 8, 16
	cl, err := core.OpenOn("live", core.Config{Procs: procs, Seed: 11, Recovery: "rollback"})
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{"fib:10", "fib:11", "tree:2,4", "tak:7,4,2"}
	var tickets []*core.Ticket
	var wg sync.WaitGroup
	tkCh := make(chan *core.Ticket, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(spec string) {
			defer wg.Done()
			tk, err := cl.SubmitSpec(spec)
			if err != nil {
				t.Error(err)
				return
			}
			tkCh <- tk
		}(specs[i%len(specs)])
	}
	// Kill two nodes while the stream is in flight.
	if err := cl.Inject(faults.Burst(procs, 2, 200, faults.CrashAnnounced, 7)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(tkCh)
	for tk := range tkCh {
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if _, err := tk.Verify(); err != nil {
			t.Fatalf("request %q: %v", tk.Workload().Spec, err)
		}
	}
	sr, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != requests || sr.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0\n%s", sr.Completed, sr.Failed, requests, sr.Render())
	}
	if sr.Backend != "live" || sr.Unit != core.WallMicros {
		t.Fatalf("backend/unit = %s/%s", sr.Backend, sr.Unit)
	}
	if len(sr.FaultStamps) != 2 {
		t.Fatalf("fault stamps = %v, want 2 kills", sr.FaultStamps)
	}
	if sr.LatencyP99 < sr.LatencyP50 || sr.LatencyP50 <= 0 {
		t.Fatalf("latency aggregates inconsistent: mean %d p50 %d p99 %d",
			sr.LatencyMean, sr.LatencyP50, sr.LatencyP99)
	}
	if sr.Throughput <= 0 {
		t.Fatalf("throughput = %v", sr.Throughput)
	}
}

// TestLiveSessionRootReissue kills the node hosting a request's root: the
// cluster (the root's parent) must reissue it and still answer.
func TestLiveSessionRootReissue(t *testing.T) {
	prog := lang.Fib()
	c, err := New(prog, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	var reqs []*Request
	for i := 0; i < 4; i++ {
		r, err := c.Submit(prog, "fib", fibArgs(12))
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	// Roots spread round-robin: killing nodes 1 and 2 hits some roots.
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	want, err := lang.RefEval(prog, "fib", fibArgs(12))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		v, err := c.WaitRequest(r, DefaultDeadline)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !v.Equal(want) {
			t.Fatalf("request %d answer %v, want %v", i, v, want)
		}
	}
}

// TestLiveSessionRejectsCumulativeKillAll: two plans that together would
// kill every node are rejected at the second Inject.
func TestLiveSessionRejectsCumulativeKillAll(t *testing.T) {
	cl, err := core.OpenOn("live", core.Config{Procs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	plan1 := core.CrashPlan(0, 100, true)
	plan1.Add(faults.Fault{At: 100, Proc: 1, Kind: faults.CrashAnnounced})
	if err := cl.Inject(plan1); err != nil {
		t.Fatal(err)
	}
	plan2 := core.CrashPlan(2, 100000, true)
	plan2.Add(faults.Fault{At: 100000, Proc: 3, Kind: faults.CrashAnnounced})
	if err := cl.Inject(plan2); err == nil {
		t.Fatal("cumulative kill-all plan accepted")
	}
}

func fibArgs(n int64) []expr.Value {
	return []expr.Value{expr.VInt(n)}
}
