package livenet

import (
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/lang"
)

func TestFaultFreeLiveRun(t *testing.T) {
	prog := lang.Fib()
	c, err := New(prog, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Start("fib", []expr.Value{expr.VInt(14)}); err != nil {
		t.Fatal(err)
	}
	v, err := c.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(expr.VInt(377)) {
		t.Fatalf("fib(14) = %v, want 377", v)
	}
	spawned, reissued, _ := c.Stats()
	if spawned == 0 {
		t.Error("no tasks spawned")
	}
	if reissued != 0 {
		t.Errorf("fault-free run reissued %d packets", reissued)
	}
}

func TestLiveRunSurvivesKill(t *testing.T) {
	prog := lang.Fib()
	c, err := New(prog, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Start("fib", []expr.Value{expr.VInt(17)}); err != nil {
		t.Fatal(err)
	}
	// Let the tree unfold a little, then crash a node under real load.
	time.Sleep(5 * time.Millisecond)
	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	v, err := c.Wait(60 * time.Second)
	if err != nil {
		spawned, reissued, drained := c.Stats()
		t.Fatalf("no answer after kill: %v (spawned=%d reissued=%d drained=%d)",
			err, spawned, reissued, drained)
	}
	if !v.Equal(expr.VInt(1597)) {
		t.Fatalf("fib(17) = %v, want 1597", v)
	}
}

func TestLiveRunSurvivesRootNodeKill(t *testing.T) {
	prog := lang.Fib()
	c, err := New(prog, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Start("fib", []expr.Value{expr.VInt(15)}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	// Node 0 hosts the root: the cluster (super-root) must reissue it.
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	v, err := c.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(expr.VInt(610)) {
		t.Fatalf("fib(15) = %v, want 610", v)
	}
}

func TestLiveRunSurvivesTwoKills(t *testing.T) {
	prog := lang.TreeSum(3)
	c, err := New(prog, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Start("tree", []expr.Value{expr.VInt(7)}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * time.Millisecond)
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * time.Millisecond)
	if err := c.Kill(4); err != nil {
		t.Fatal(err)
	}
	v, err := c.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(expr.VInt(2187)) { // 3^7
		t.Fatalf("tree(7) = %v, want 2187", v)
	}
}

func TestKillValidation(t *testing.T) {
	c, err := New(lang.Fib(), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Kill(9); err == nil {
		t.Error("out-of-range kill accepted")
	}
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(1); err == nil {
		t.Error("double kill accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(lang.Fib(), 1, 1); err == nil {
		t.Error("single-node cluster accepted")
	}
	c, err := New(lang.Fib(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Start("nosuch", nil); err == nil {
		t.Error("unknown function accepted")
	}
}
