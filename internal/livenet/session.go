package livenet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/registry"
)

// This file implements the core.SessionBackend capability on the live
// backend: Open keeps the goroutine node network up across requests, Submit
// enqueues root applications that the persistent nodes serve concurrently,
// and Inject replays fault plans on the wall clock against the stream's
// start — so kills land between and inside requests, the online-recovery
// regime HEAL-style evaluations measure. The stream clock is wall
// microseconds since Open; fault stamps, admission and completion stamps
// all live on it.

// liveParams is the validated shape of a core.Config on the live backend.
type liveParams struct {
	procs       int
	seed        int64
	scheme      string
	eval        string
	timescale   time.Duration
	deadline    time.Duration
	maxInFlight int
	shedPolicy  bool // true = "shed", false = "queue"
	queueBound  int  // "queue:N" FIFO cap; 0 = unbounded
}

// prepare validates the config for the live substrate and fills defaults —
// the checks Run has always applied, shared by the one-shot and session
// paths so the two can never diverge.
func (b Backend) prepare(cfg core.Config) (liveParams, error) {
	p := liveParams{procs: cfg.Procs, seed: cfg.Seed, scheme: cfg.Recovery}
	if p.procs == 0 {
		p.procs = 8
	}
	if p.seed == 0 {
		p.seed = 1
	}
	if p.scheme == "" {
		p.scheme = "rollback"
	}
	if p.scheme != "rollback" && p.scheme != "none" {
		return p, fmt.Errorf("livenet: recovery %q not supported on the live backend (rollback per-parent reissue, or none)", cfg.Recovery)
	}
	p.eval = cfg.Eval
	if p.eval == "" {
		p.eval = core.DefaultEval
	}
	if !lang.KnownEvaluator(p.eval) {
		return p, registry.Unknown("livenet", "evaluator", p.eval, lang.Evaluators())
	}
	if cfg.Placement != "" && cfg.Placement != "random" {
		return p, fmt.Errorf("livenet: placement %q not supported on the live backend (random only)", cfg.Placement)
	}
	// Bounded admission runs on both backends; the policy vocabulary is the
	// same as the simulator's.
	p.maxInFlight = cfg.MaxInFlight
	switch cfg.Admission {
	case "", "queue":
	case "shed":
		p.shedPolicy = true
	default:
		var n int
		if cnt, err := fmt.Sscanf(cfg.Admission, "queue:%d", &n); cnt == 1 && err == nil &&
			fmt.Sprintf("queue:%d", n) == cfg.Admission && n > 0 {
			p.queueBound = n
			break
		}
		return p, fmt.Errorf("livenet: unknown admission policy %q (queue, queue:N, shed)", cfg.Admission)
	}
	// Reject the sim-only knobs that would change what a run measures if
	// silently dropped. (Topology, AncestorDepth, Trace, ArrivalEvery and
	// Arrival are inert here — the channel interconnect is complete,
	// per-parent reissue has no ancestor escalation to tune, there is no
	// event log, and real time needs no synthetic arrival spacing: live load
	// drivers pace their own Submit calls from the workload.Arrival schedule
	// — so they are documented as ignored rather than rejected.)
	switch {
	case cfg.RecoveryBudget != 0 || cfg.RecoveryPeriod != 0:
		return p, errors.New("livenet: recovery budget/period pace the incremental scheme, which only the simulator implements")
	case len(cfg.Replication) > 0:
		return p, errors.New("livenet: §5.3 task replication is not implemented on the live backend")
	case cfg.DisableCheckpoints:
		return p, errors.New("livenet: checkpoints cannot be disabled on the live backend (parents always retain child packets)")
	case cfg.Raw != nil:
		return p, errors.New("livenet: Config.Raw holds simulator machine knobs; the live backend takes none of them")
	}
	p.timescale = b.Timescale
	if p.timescale <= 0 {
		p.timescale = DefaultTimescale
	}
	p.deadline = b.Deadline
	if p.deadline <= 0 {
		p.deadline = DefaultDeadline
	}
	if cfg.Deadline > 0 {
		p.deadline = time.Duration(cfg.Deadline) * p.timescale
	}
	return p, nil
}

// Open implements core.SessionBackend: bring the node network up and keep
// it serving until Close.
func (b Backend) Open(cfg core.Config) (core.Session, error) {
	p, err := b.prepare(cfg)
	if err != nil {
		return nil, err
	}
	c, err := New(nil, p.procs, p.seed)
	if err != nil {
		return nil, err
	}
	if p.scheme == "none" {
		c.DisableRecovery()
	}
	if err := c.SetEvaluator(p.eval); err != nil {
		return nil, err // unreachable: prepare validated the name
	}
	s := &session{
		p:      p,
		c:      c,
		start:  time.Now(),
		stop:   make(chan struct{}),
		killed: map[proto.ProcID]bool{},
	}
	c.SetRequestDoneHook(s.onRequestDone)
	return s, nil
}

// session is one open live service stream.
type session struct {
	p     liveParams
	c     *Cluster
	start time.Time

	mu       sync.Mutex
	stop     chan struct{}
	wg       sync.WaitGroup
	killed   map[proto.ProcID]bool
	closed   bool
	closeRep *core.Report

	// Bounded-admission state, guarded by mu. A slot is taken at admission
	// (the Cluster.Submit) and freed at the request's first root delivery —
	// symmetric with the simulator's accounting, so the two backends make
	// identical admit/shed decisions on the same stream order.
	inflight int
	queue    []*liveRequest
	queueMax int
	shed     int
}

// Unit implements core.Session.
func (s *session) Unit() core.TimeUnit { return core.WallMicros }

// Submit implements core.Session: the request is offered immediately —
// real time is the live stream's arrival discipline — and admission control
// decides at the offer, in Submit order: a free slot (or an unbounded
// stream) admits to the node network now; a full cluster sheds or queues
// per the policy. The mutex is held across the closed check and the cluster
// submit so a concurrent Close can never shut the node network down between
// the two (a spawn into a shut-down cluster would silently never complete).
func (s *session) Submit(w core.Workload) (core.SessionRequest, error) {
	if w.Program == nil {
		return nil, errors.New("livenet: program required")
	}
	if _, ok := w.Program.Func(w.Fn); !ok {
		// Validated at the offer so a queued request cannot fail admission
		// later, long after the submitter's error path has gone.
		return nil, fmt.Errorf("livenet: unknown function %q", w.Fn)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("livenet: session closed")
	}
	now := time.Now()
	if s.p.maxInFlight > 0 && s.inflight >= s.p.maxInFlight {
		if s.p.shedPolicy || (s.p.queueBound > 0 && len(s.queue) >= s.p.queueBound) {
			s.shed++
			return &liveRequest{s: s, shed: true, offered: now}, nil
		}
		lr := &liveRequest{s: s, w: w, offered: now, admitCh: make(chan struct{})}
		s.queue = append(s.queue, lr)
		if len(s.queue) > s.queueMax {
			s.queueMax = len(s.queue)
		}
		return lr, nil
	}
	r, err := s.c.Submit(w.Program, w.Fn, w.Args)
	if err != nil {
		return nil, err
	}
	s.inflight++
	return &liveRequest{s: s, r: r, offered: now, arrived: now}, nil
}

// onRequestDone frees the completed request's admission slot and installs
// the queue head, if any. It runs outside the cluster's request lock (the
// hook contract), so taking mu and re-entering Cluster.Submit is safe.
func (s *session) onRequestDone() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if s.closed || len(s.queue) == 0 ||
		(s.p.maxInFlight > 0 && s.inflight >= s.p.maxInFlight) {
		return
	}
	lr := s.queue[0]
	s.queue = s.queue[1:]
	r, err := s.c.Submit(lr.w.Program, lr.w.Fn, lr.w.Args)
	if err == nil {
		s.inflight++
	}
	lr.r, lr.admitErr = r, err
	lr.arrived = time.Now()
	close(lr.admitCh)
}

// Inject implements core.Session: validate the plan (the live backend's
// historical restrictions, plus a cumulative at-least-one-survivor check
// across every injected plan) and replay it on the wall clock from the
// stream's start. Returned stamps are the planned wall offsets in µs;
// faults whose offset already passed fire immediately.
func (s *session) Inject(plan *faults.Plan) ([]int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("livenet: session closed")
	}
	if plan == nil {
		plan = faults.None()
	}
	if err := plan.Validate(s.p.procs); err != nil {
		return nil, err
	}
	for _, f := range plan.Faults {
		if f.Kind == faults.Corrupt {
			return nil, fmt.Errorf("livenet: fault %v: value corruption needs §5.3 voting, which only the simulator implements", f)
		}
	}
	union := map[proto.ProcID]bool{}
	for q := range s.killed {
		union[q] = true
	}
	for _, q := range plan.Procs() {
		union[q] = true
	}
	if len(union) >= s.p.procs {
		return nil, fmt.Errorf("livenet: plan kills %d of %d nodes; at least one must survive", len(union), s.p.procs)
	}
	s.killed = union
	sorted := plan.Sorted()
	stamps := make([]int64, 0, len(sorted))
	for _, f := range sorted {
		stamps = append(stamps, int64(time.Duration(f.At)*s.p.timescale/time.Microsecond))
	}
	// One scheduler goroutine per plan walks the time-sorted faults and
	// kills each node at its wall-scaled instant relative to the stream
	// start. Kills of already-dead nodes (overlapping merged plans) are
	// ignored, like the simulator's post-death injections.
	s.wg.Add(1)
	go func(sorted []faults.Fault) {
		defer s.wg.Done()
		for _, f := range sorted {
			if d := time.Duration(f.At)*s.p.timescale - time.Since(s.start); d > 0 {
				select {
				case <-time.After(d):
				case <-s.stop:
					return
				}
			}
			select {
			case <-s.stop:
				return
			default:
			}
			_ = s.c.Kill(int(f.Proc))
		}
	}(sorted)
	return stamps, nil
}

// Close implements core.Session: stop the fault schedulers, shut the node
// network down, and report the stream totals. The mutex is released before
// Shutdown — node goroutines finishing their last deliveries fire the
// admission hook, which takes the mutex; holding it across the shutdown
// barrier would deadlock the teardown.
func (s *session) Close() (*core.Report, error) {
	s.mu.Lock()
	if s.closed {
		rep := s.closeRep
		s.mu.Unlock()
		return rep, nil
	}
	s.closed = true
	close(s.stop)
	queueMax := s.queueMax
	s.mu.Unlock()
	s.wg.Wait()
	spawned, reissued, drained := s.c.Stats()
	rep := &core.Report{
		Backend:        "live",
		Makespan:       time.Since(s.start).Microseconds(),
		Unit:           core.WallMicros,
		Messages:       s.c.Messages(),
		MsgBytes:       s.c.MsgBytes(),
		Spawned:        spawned,
		Reissued:       reissued,
		Drained:        drained,
		Recoveries:     reissued,
		Procs:          s.p.procs,
		Scheme:         s.p.scheme,
		Placement:      "random",
		QueueDepthMax:  queueMax,
		ReissuesByNode: s.c.ReissuesByNode(),
	}
	s.c.Shutdown()
	s.mu.Lock()
	s.closeRep = rep
	s.mu.Unlock()
	return rep, nil
}

// liveRequest implements core.SessionRequest. The offer stamp is set at
// Submit; a request the admission queue held gets its r and arrived fields
// when onRequestDone installs it (the admitCh close publishes them), a shed
// request never gets either.
type liveRequest struct {
	s       *session
	r       *Request
	w       core.Workload
	offered time.Time
	arrived time.Time

	shed     bool
	admitCh  chan struct{} // non-nil iff the request was queued
	admitErr error

	once sync.Once
	rep  *core.Report
	err  error
}

// baseReport is the per-request report skeleton.
func (lr *liveRequest) baseReport() *core.Report {
	s := lr.s
	return &core.Report{
		Backend:   "live",
		Unit:      core.WallMicros,
		Procs:     s.p.procs,
		Scheme:    s.p.scheme,
		Placement: "random",
	}
}

// Wait implements core.SessionRequest: block for the answer up to the
// per-request deadline, counted from the request's admission (the
// documented Config.Deadline contract — so draining a wedged stream of N
// requests costs one budget, not N; a queued request's budget starts when
// it gets its slot, and its wait for that slot is bounded by the budget
// from its offer). An answer already delivered is accepted even after the
// budget; a timeout is not an error — the report says Completed false and
// the stream keeps serving. A shed request reports immediately with the
// typed core.ErrShed.
func (lr *liveRequest) Wait() (*core.Report, error) {
	lr.once.Do(func() {
		s := lr.s
		if lr.shed {
			rep := lr.baseReport()
			rep.Request = -1 // never admitted; no stream index exists
			rep.Shed = true
			rep.ArrivedAt = lr.offered.Sub(s.start).Microseconds()
			lr.rep, lr.err = rep, core.ErrShed
			return
		}
		if lr.admitCh != nil {
			admitBudget := s.p.deadline - time.Since(lr.offered)
			if admitBudget < 0 {
				admitBudget = 0
			}
			select {
			case <-lr.admitCh:
				if lr.admitErr != nil {
					lr.err = lr.admitErr
					return
				}
			case <-time.After(admitBudget):
				// Still queued at the budget: a timeout, like any admitted
				// request that never answered.
				rep := lr.baseReport()
				rep.Request = -1
				rep.ArrivedAt = lr.offered.Sub(s.start).Microseconds()
				rep.Makespan = time.Since(s.start).Microseconds() - rep.ArrivedAt
				lr.rep = rep
				return
			case <-s.stop:
				rep := lr.baseReport()
				rep.Request = -1
				rep.ArrivedAt = lr.offered.Sub(s.start).Microseconds()
				rep.Makespan = time.Since(s.start).Microseconds() - rep.ArrivedAt
				lr.rep = rep
				return
			}
		}
		var v expr.Value
		var waitErr error
		if remaining := s.p.deadline - time.Since(lr.arrived); remaining > 0 {
			v, waitErr = s.c.WaitRequest(lr.r, remaining)
		} else {
			select {
			case v = <-lr.r.resultCh:
			default:
				waitErr = errors.New("livenet: request budget already spent")
			}
		}
		done := time.Now()
		rep := lr.baseReport()
		rep.Request = lr.r.ID()
		rep.ArrivedAt = lr.arrived.Sub(s.start).Microseconds()
		rep.QueuedFor = lr.arrived.Sub(lr.offered).Microseconds()
		if waitErr == nil {
			rep.Completed = true
			rep.Answer = v
			rep.DoneAt = done.Sub(s.start).Microseconds()
			rep.Makespan = rep.DoneAt - rep.ArrivedAt
		} else {
			rep.Makespan = done.Sub(s.start).Microseconds() - rep.ArrivedAt
		}
		lr.rep = rep
	})
	return lr.rep, lr.err
}
