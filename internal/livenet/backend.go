package livenet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// This file adapts the goroutine cluster to core.Backend, so the same
// Config/Workload/Plan that drives the discrete-event simulator drives real
// concurrency. The mapping:
//
//   - Config.Procs and Config.Seed carry over directly (seeded placement:
//     every node draws destinations from an rng derived from the seed).
//   - Fault plans are scheduled on the wall clock: a fault at virtual tick t
//     fires t×Timescale after the root is submitted, so Burst/Cascade/
//     Correlated plans keep their shape as real durations. Both crash kinds
//     map to Kill — the live network announces deaths to survivors; silent-
//     crash timeout detection is a simulator-only mechanism. Corrupt faults
//     are rejected (no voting on the live path).
//   - Config.Deadline (a virtual-time budget) maps through Timescale to a
//     wall deadline bounding Wait, so a hung recovery fails fast instead of
//     timing out CI.
//   - Config.Topology is ignored for connectivity: the channel interconnect
//     is a complete graph. Placement must be "random" (the only live policy)
//     and Recovery "rollback" (per-parent reissue, §3; the default) or
//     "none" (kills go unannounced and lost work stays lost, so a faulted
//     run reports non-completion at the deadline, like the simulator's).
//
// The returned core.Report is backend-neutral: makespan in wall
// microseconds, message/spawn/reissue/drain counters from the cluster, and
// per-node reissue stats. Run itself verifies nothing — exactly like the
// simulator backend — so the two substrates share one contract; the
// determinacy check (§2.1, answer == lang.RefEval) is one call away via
// core.VerifyOn("live", …), which the L-series artifacts, the backend
// tests, and examples/live all use.

// DefaultTimescale is the wall-clock duration of one virtual tick when
// mapping fault plans and deadlines: 2µs keeps the paper's fault times
// (thousands of ticks) landing mid-run for the bundled workloads.
const DefaultTimescale = 2 * time.Microsecond

// DefaultDeadline bounds Wait when the config sets no virtual-time budget.
const DefaultDeadline = 30 * time.Second

// Backend runs workloads on the live goroutine cluster. The zero value is
// the registered "live" backend; construct one directly to override the
// tick-to-wall Timescale or the Wait Deadline.
type Backend struct {
	// Timescale is the wall duration of one virtual tick (0 ⇒ DefaultTimescale).
	Timescale time.Duration
	// Deadline bounds Wait when Config.Deadline is zero (0 ⇒ DefaultDeadline).
	Deadline time.Duration
}

func init() { core.MustRegisterBackend(Backend{}) }

// Name implements core.Backend.
func (Backend) Name() string { return "live" }

// Run implements core.Backend: build the cluster, submit the root, replay
// the fault plan on the wall clock, and wait (bounded) for the answer.
func (b Backend) Run(cfg core.Config, w core.Workload, plan *faults.Plan) (*core.Report, error) {
	if w.Program == nil {
		return nil, errors.New("livenet: program required")
	}
	procs := cfg.Procs
	if procs == 0 {
		procs = 8
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	scheme := cfg.Recovery
	if scheme == "" {
		scheme = "rollback"
	}
	if scheme != "rollback" && scheme != "none" {
		return nil, fmt.Errorf("livenet: recovery %q not supported on the live backend (rollback per-parent reissue, or none)", cfg.Recovery)
	}
	if cfg.Placement != "" && cfg.Placement != "random" {
		return nil, fmt.Errorf("livenet: placement %q not supported on the live backend (random only)", cfg.Placement)
	}
	// Reject the sim-only knobs that would change what a run measures if
	// silently dropped. (Topology, AncestorDepth and Trace are inert here —
	// the channel interconnect is complete, per-parent reissue has no
	// ancestor escalation to tune, and there is no event log — so they are
	// documented as ignored rather than rejected; the CLIs set defaults for
	// them unconditionally.)
	switch {
	case len(cfg.Replication) > 0:
		return nil, errors.New("livenet: §5.3 task replication is not implemented on the live backend")
	case cfg.DisableCheckpoints:
		return nil, errors.New("livenet: checkpoints cannot be disabled on the live backend (parents always retain child packets)")
	case cfg.Raw != nil:
		return nil, errors.New("livenet: Config.Raw holds simulator machine knobs; the live backend takes none of them")
	}
	if plan == nil {
		plan = faults.None()
	}
	if err := plan.Validate(procs); err != nil {
		return nil, err
	}
	for _, f := range plan.Faults {
		if f.Kind == faults.Corrupt {
			return nil, fmt.Errorf("livenet: fault %v: value corruption needs §5.3 voting, which only the simulator implements", f)
		}
	}
	if k := len(plan.Procs()); k >= procs {
		return nil, fmt.Errorf("livenet: plan kills %d of %d nodes; at least one must survive", k, procs)
	}

	timescale := b.Timescale
	if timescale <= 0 {
		timescale = DefaultTimescale
	}
	deadline := b.Deadline
	if deadline <= 0 {
		deadline = DefaultDeadline
	}
	if cfg.Deadline > 0 {
		deadline = time.Duration(cfg.Deadline) * timescale
	}

	c, err := New(w.Program, procs, seed)
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	if scheme == "none" {
		c.DisableRecovery()
	}
	start := time.Now()
	if err := c.Start(w.Fn, w.Args); err != nil {
		return nil, err
	}

	// Replay the plan: one scheduler goroutine walks the time-sorted faults
	// and kills each processor at its wall-scaled instant. Kills of already-
	// dead nodes (overlapping merged plans) are ignored, like the simulator's
	// post-death injections. The scheduler is stopped and joined before
	// Shutdown so no Kill races the cluster teardown.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, f := range plan.Sorted() {
			if d := time.Duration(f.At)*timescale - time.Since(start); d > 0 {
				select {
				case <-time.After(d):
				case <-stop:
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
			_ = c.Kill(int(f.Proc))
		}
	}()

	answer, waitErr := c.Wait(deadline)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	spawned, reissued, drained := c.Stats()
	rep := &core.Report{
		Backend:        "live",
		Answer:         answer,
		Completed:      waitErr == nil,
		Makespan:       elapsed.Microseconds(),
		Unit:           core.WallMicros,
		Messages:       c.Messages(),
		Spawned:        spawned,
		Reissued:       reissued,
		Drained:        drained,
		Recoveries:     reissued,
		Procs:          procs,
		Scheme:         scheme,
		Placement:      "random",
		ReissuesByNode: c.ReissuesByNode(),
	}
	return rep, nil
}
