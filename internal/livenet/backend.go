package livenet

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// This file adapts the goroutine cluster to core.Backend, so the same
// Config/Workload/Plan that drives the discrete-event simulator drives real
// concurrency. The mapping:
//
//   - Config.Procs and Config.Seed carry over directly (seeded placement:
//     every node draws destinations from an rng derived from the seed).
//   - Fault plans are scheduled on the wall clock: a fault at virtual tick t
//     fires t×Timescale after the root is submitted, so Burst/Cascade/
//     Correlated plans keep their shape as real durations. Both crash kinds
//     map to Kill — the live network announces deaths to survivors; silent-
//     crash timeout detection is a simulator-only mechanism. Corrupt faults
//     are rejected (no voting on the live path).
//   - Config.Deadline (a virtual-time budget) maps through Timescale to a
//     wall deadline bounding Wait, so a hung recovery fails fast instead of
//     timing out CI.
//   - Config.Topology is ignored for connectivity: the channel interconnect
//     is a complete graph. Placement must be "random" (the only live policy)
//     and Recovery "rollback" (per-parent reissue, §3; the default) or
//     "none" (kills go unannounced and lost work stays lost, so a faulted
//     run reports non-completion at the deadline, like the simulator's).
//
// The returned core.Report is backend-neutral: makespan in wall
// microseconds, message/spawn/reissue/drain counters from the cluster, and
// per-node reissue stats. Run itself verifies nothing — exactly like the
// simulator backend — so the two substrates share one contract; the
// determinacy check (§2.1, answer == lang.RefEval) is one call away via
// core.VerifyOn("live", …), which the L-series artifacts, the backend
// tests, and examples/live all use.

// DefaultTimescale is the wall-clock duration of one virtual tick when
// mapping fault plans and deadlines: 2µs keeps the paper's fault times
// (thousands of ticks) landing mid-run for the bundled workloads.
const DefaultTimescale = 2 * time.Microsecond

// DefaultDeadline bounds Wait when the config sets no virtual-time budget.
const DefaultDeadline = 30 * time.Second

// Backend runs workloads on the live goroutine cluster. The zero value is
// the registered "live" backend; construct one directly to override the
// tick-to-wall Timescale or the Wait Deadline.
type Backend struct {
	// Timescale is the wall duration of one virtual tick (0 ⇒ DefaultTimescale).
	Timescale time.Duration
	// Deadline bounds Wait when Config.Deadline is zero (0 ⇒ DefaultDeadline).
	Deadline time.Duration
}

func init() { core.MustRegisterBackend(Backend{}) }

// Name implements core.Backend.
func (Backend) Name() string { return "live" }

// Run implements core.Backend as the degenerate service stream: Open the
// persistent node network, Submit the one root, Inject the plan on the wall
// clock, wait (bounded) for the answer, and Close. The report keeps its
// historical shape — makespan is submission-to-answer wall µs, counters and
// per-node reissue stats are the stream totals.
func (b Backend) Run(cfg core.Config, w core.Workload, plan *faults.Plan) (*core.Report, error) {
	if w.Program == nil {
		return nil, errors.New("livenet: program required")
	}
	sess, err := b.Open(cfg)
	if err != nil {
		return nil, err
	}
	req, err := sess.Submit(w)
	if err != nil {
		_, _ = sess.Close()
		return nil, err
	}
	if _, err := sess.Inject(plan); err != nil {
		_, _ = sess.Close()
		return nil, err
	}
	rep0, err := req.Wait()
	if err != nil {
		_, _ = sess.Close()
		return nil, err
	}
	totals, err := sess.Close()
	if err != nil {
		return nil, err
	}
	totals.Answer = rep0.Answer
	totals.Completed = rep0.Completed
	totals.Makespan = rep0.Makespan
	return totals, nil
}
