// Package livenet runs the applicative machine on real concurrency: one
// goroutine per node, channels as the interconnect, actual asynchrony
// instead of the discrete-event kernel's virtual time. It demonstrates that
// functional checkpointing (§2) needs nothing from the simulator: a parent
// that retains its children's task packets can regenerate them on any node
// after a crash, and determinacy (§2.1) makes the regenerated run converge
// to the same answer despite wildly nondeterministic interleavings.
//
// The recovery style is the paper's rollback (§3) in its simplest form:
// every parent reissues its own lost children (per-parent reissue; the
// topmost-table optimization of §3.2 is exercised by the deterministic
// machine in internal/machine and deliberately omitted here). Orphaned
// work keeps running and its results are drained harmlessly — "Returns from
// orphan tasks are theoretically harmless" (§3.4).
package livenet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/proto"
	"repro/internal/stamp"
)

// msg is anything a node can receive.
type msg struct {
	// spawn: install and run this packet.
	spawn *packet
	// result: child's answer for the addressee task's hole.
	result *resultMsg
	// nodeDown: the named node died; reissue lost children.
	nodeDown int
}

// packet is the live task packet — the functional checkpoint payload.
type packet struct {
	stamp      stamp.Stamp
	fn         string
	args       []expr.Value
	parentNode int // -1 = the cluster itself (super-root, §4.3.1)
	parentTask stamp.Stamp
	holeID     int
	// prog is the program the packet's fn resolves in. Requests of one
	// service stream may carry different programs (with clashing function
	// names), so every packet names its own; children inherit their
	// parent's. Code is resident in-process — this is a pointer, not wire
	// payload. nil falls back to the cluster's build program.
	prog *lang.Program
	// ep is prog compiled by the cluster's evaluator, resolved once at
	// Submit time and inherited by children — like prog, a resident
	// in-process pointer, never wire payload.
	ep lang.EvalProgram
	// wireSize is the packet's proto codec size, sealed by encodedSize at
	// construction (before the pointer is shared) so reissues — which resend
	// the same retained pointer, possibly from another goroutine — only read.
	wireSize int
}

// encodedSize memoizes the packet's proto wire size — the same
// proto.TaskPacket.EncodedSize figure the simulator charges per hop, so the
// two backends' byte totals are comparable. Construction sites call it once
// before the packet is shared.
func (p *packet) encodedSize() int {
	if p.wireSize == 0 {
		view := proto.TaskPacket{
			Key:    proto.TaskKey{Stamp: p.stamp},
			Fn:     p.fn,
			Args:   p.args,
			Parent: proto.Addr{Proc: proto.ProcID(p.parentNode), Task: proto.TaskKey{Stamp: p.parentTask}},
			HoleID: p.holeID,
		}
		p.wireSize = view.EncodedSize()
	}
	return p.wireSize
}

// msgWireSize mirrors proto.Msg.EncodedSize for the live message shapes:
// a fixed header plus the payload's codec size (16 for the small fixed
// payloads, here nodeDown).
func msgWireSize(m msg) int {
	const header = 12
	switch {
	case m.spawn != nil:
		return header + m.spawn.encodedSize()
	case m.result != nil:
		view := proto.Result{
			Child:      proto.TaskKey{Stamp: m.result.child},
			ParentTask: proto.TaskKey{Stamp: m.result.parent},
			HoleID:     m.result.holeID,
			Value:      m.result.value,
		}
		return header + view.EncodedSize()
	default:
		return header + 16
	}
}

type resultMsg struct {
	child  stamp.Stamp
	parent stamp.Stamp
	holeID int
	value  expr.Value
}

// ltask is a resident live task.
type ltask struct {
	pkt      *packet
	residual lang.TaskState
	nextID   int
	fills    map[int]expr.Value
	unfilled int
	// children maps hole id → retained child packet + destination node:
	// the functional checkpoint (§2.1).
	children map[int]*childCkpt
}

type childCkpt struct {
	pkt    *packet
	dest   int
	filled bool
}

// node is one goroutine-backed processor. Tasks are keyed by stamp, with a
// list per stamp: after recovery several incarnations of the same logical
// task (spawned by different parent incarnations) can legitimately coexist,
// and determinacy makes any result valid for all of them.
type node struct {
	id    int
	c     *Cluster
	inbox chan msg
	alive atomic.Bool
	tasks map[stamp.Stamp][]*ltask
	rng   *rand.Rand
	live  []bool // local view of node liveness
	// reissues counts the retained packets this node re-sent as a parent
	// after peer deaths — the per-node recovery-load statistic.
	reissues atomic.Int64
}

// Request is one submitted root application: the cluster retains its root
// packet (the super-root pre-evaluation checkpoint of §4.3.1) and routes
// its answer to a private channel, so many requests can be in flight on the
// persistent node network at once.
type Request struct {
	id       uint32
	resultCh chan expr.Value
	rootPkt  *packet
	rootDest int
	done     bool
}

// ID is the request's stream index.
func (r *Request) ID() int { return int(r.id) }

// Cluster is a live machine.
type Cluster struct {
	prog  *lang.Program
	nodes []*node

	// eval is the evaluator that runs reduction passes; evalCache memoizes
	// compilation per program (Submit-time, never the per-task hot path).
	eval      lang.Evaluator
	evalMu    sync.Mutex
	evalCache map[*lang.Program]lang.EvalProgram

	// reqMu guards the request table and each request's rootDest/done;
	// deliverRoot and Kill both take it, so a root reissue can never race
	// its own completion.
	reqMu   sync.Mutex
	reqs    map[uint32]*Request
	nextReq uint32
	defReq  *Request // the Start/Wait single-request compatibility handle
	// onReqDone, when set, runs after a request's *first* root delivery,
	// outside reqMu (it may re-enter Submit). The service session's bounded
	// admission uses it to free an in-flight slot and install the queue head.
	onReqDone func()

	spawned   atomic.Int64
	reissued  atomic.Int64
	drained   atomic.Int64
	killsSeen atomic.Int64
	msgs      atomic.Int64
	msgBytes  atomic.Int64

	// noRecovery disables reissue after kills (the "none" scheme): survivors
	// are not told about deaths and the super-root does not reissue the
	// root, so lost work stays lost — like the simulator's "none", a
	// faulted run simply never finishes.
	noRecovery bool

	// quit, when closed, stops every node goroutine, drainer, and pending
	// overflow send. Inbox channels are never closed (closing a channel
	// with concurrent senders is a race).
	quit chan struct{}
	wg   sync.WaitGroup
}

// DisableRecovery switches the cluster to the "none" scheme: kills are not
// announced and nothing is reissued. Call before Start.
func (c *Cluster) DisableRecovery() { c.noRecovery = true }

// SetEvaluator switches the evaluator that runs reduction passes. Call
// before the first Submit; programs already compiled keep their form.
func (c *Cluster) SetEvaluator(name string) error {
	ev, err := lang.EvaluatorByName(name)
	if err != nil {
		return err
	}
	c.evalMu.Lock()
	c.eval = ev
	c.evalMu.Unlock()
	return nil
}

// epOf compiles prog with the cluster's evaluator, memoized per program.
func (c *Cluster) epOf(prog *lang.Program) (lang.EvalProgram, error) {
	c.evalMu.Lock()
	defer c.evalMu.Unlock()
	if ep, ok := c.evalCache[prog]; ok {
		return ep, nil
	}
	ep, err := c.eval.Compile(prog)
	if err != nil {
		return nil, fmt.Errorf("livenet: compile: %w", err)
	}
	c.evalCache[prog] = ep
	return ep, nil
}

// New builds a cluster of n goroutine nodes. prog is the default program
// for Start; it may be nil when every workload arrives through Submit with
// its own program (the service stream).
func New(prog *lang.Program, n int, seed int64) (*Cluster, error) {
	if n < 2 {
		return nil, errors.New("livenet: need at least 2 nodes")
	}
	defEval, err := lang.EvaluatorByName(lang.DefaultEvaluator)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		prog:      prog,
		eval:      defEval,
		evalCache: map[*lang.Program]lang.EvalProgram{},
		reqs:      map[uint32]*Request{},
		quit:      make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		nd := &node{
			id:    i,
			c:     c,
			inbox: make(chan msg, 4096),
			tasks: map[stamp.Stamp][]*ltask{},
			rng:   rand.New(rand.NewSource(seed + int64(i)*7919)),
			live:  make([]bool, n),
		}
		for j := range nd.live {
			nd.live[j] = true
		}
		nd.alive.Store(true)
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		c.wg.Add(1)
		go nd.run()
	}
	return c, nil
}

// Submit enqueues one root application on the persistent network and
// returns its request handle. The root packet is stamped with the request's
// stream index, so every request's task tree is disjoint from every
// other's; roots are spread across live nodes round-robin (request 0 lands
// on node 0, the one-shot path).
func (c *Cluster) Submit(prog *lang.Program, fn string, args []expr.Value) (*Request, error) {
	if prog == nil {
		prog = c.prog
	}
	if prog == nil {
		return nil, errors.New("livenet: program required")
	}
	if _, ok := prog.Func(fn); !ok {
		return nil, fmt.Errorf("livenet: unknown function %q", fn)
	}
	ep, err := c.epOf(prog)
	if err != nil {
		return nil, err
	}
	c.reqMu.Lock()
	id := c.nextReq
	c.nextReq++
	root := &packet{
		stamp:      stamp.FromPath(id),
		fn:         fn,
		args:       args,
		parentNode: -1,
		prog:       prog,
		ep:         ep,
	}
	root.encodedSize() // seal the wire size before the packet is shared
	r := &Request{id: id, resultCh: make(chan expr.Value, 1), rootPkt: root}
	r.rootDest = c.pickLiveFrom(int(id) % len(c.nodes))
	c.reqs[id] = r
	dest := r.rootDest
	c.reqMu.Unlock()
	c.spawned.Add(1)
	c.send(dest, msg{spawn: root})
	return r, nil
}

// Start submits the root application of the build program; the single-
// request compatibility entry point (Wait answers it).
func (c *Cluster) Start(fn string, args []expr.Value) error {
	r, err := c.Submit(c.prog, fn, args)
	if err != nil {
		return err
	}
	c.defReq = r
	return nil
}

// Kill crashes a node: its goroutine stops processing, resident tasks are
// lost, and every live node (and the cluster, for the root) reissues the
// retained packets of children it had placed there.
func (c *Cluster) Kill(id int) error {
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("livenet: no node %d", id)
	}
	nd := c.nodes[id]
	if !nd.alive.CompareAndSwap(true, false) {
		return fmt.Errorf("livenet: node %d already dead", id)
	}
	c.killsSeen.Add(1)
	// Drain the dead inbox so senders never block; messages into the void
	// model the paper's fail-silent node.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			select {
			case <-nd.inbox:
				c.drained.Add(1)
			case <-c.quit:
				return
			}
		}
	}()
	if c.noRecovery {
		return nil // lost work stays lost (§3's motivation, negated)
	}
	// Tell the survivors.
	for _, other := range c.nodes {
		if other.alive.Load() {
			c.send(other.id, msg{nodeDown: id + 1})
		}
	}
	// The cluster is every root's parent: reissue each outstanding
	// request's root that was placed on the dead node (§4.3.1).
	c.reqMu.Lock()
	for _, r := range c.reqs {
		if r.done || r.rootDest != id {
			continue
		}
		r.rootDest = c.pickLive(id)
		c.reissued.Add(1)
		c.send(r.rootDest, msg{spawn: r.rootPkt})
	}
	c.reqMu.Unlock()
	return nil
}

// WaitRequest blocks until the request's answer arrives or the timeout
// elapses.
func (c *Cluster) WaitRequest(r *Request, timeout time.Duration) (expr.Value, error) {
	select {
	case v := <-r.resultCh:
		return v, nil
	case <-time.After(timeout):
		return nil, errors.New("livenet: timed out waiting for the answer")
	}
}

// Wait blocks until Start's answer arrives or the timeout elapses.
func (c *Cluster) Wait(timeout time.Duration) (expr.Value, error) {
	if c.defReq == nil {
		return nil, errors.New("livenet: Start was never called")
	}
	return c.WaitRequest(c.defReq, timeout)
}

// SetRequestDoneHook installs fn to run after each request's first root
// delivery, outside the request lock. Install before submitting traffic.
func (c *Cluster) SetRequestDoneHook(fn func()) {
	c.reqMu.Lock()
	c.onReqDone = fn
	c.reqMu.Unlock()
}

// deliverRoot hands a super-root result to its request; answers for
// already-answered (twin) or unknown roots drain harmlessly. Only the
// first delivery fires the completion hook — a twin's duplicate answer
// must not free a second admission slot.
func (c *Cluster) deliverRoot(root stamp.Stamp, v expr.Value) {
	id := root.Component(0)
	c.reqMu.Lock()
	r := c.reqs[id]
	first := r != nil && !r.done
	if r != nil {
		r.done = true
	}
	hook := c.onReqDone
	c.reqMu.Unlock()
	if r == nil {
		c.drained.Add(1)
		return
	}
	select {
	case r.resultCh <- v:
	default: // a twin already answered; determinacy says it matches
	}
	if first && hook != nil {
		hook()
	}
}

// Shutdown stops every node goroutine and drainer. Call it exactly once;
// the cluster is unusable afterwards.
func (c *Cluster) Shutdown() {
	close(c.quit)
	c.wg.Wait()
}

// Stats reports counters for tests and examples.
func (c *Cluster) Stats() (spawned, reissued, drained int64) {
	return c.spawned.Load(), c.reissued.Load(), c.drained.Load()
}

// Messages is the total number of messages handed to the interconnect.
func (c *Cluster) Messages() int64 { return c.msgs.Load() }

// MsgBytes is the encoded payload byte total of Messages, in proto codec
// wire sizes.
func (c *Cluster) MsgBytes() int64 { return c.msgBytes.Load() }

// ReissuesByNode reports how many retained child packets each node re-sent
// as a parent after peer deaths. The super-root's reissue of the root packet
// (cluster-level, §4.3.1) is counted in Stats but belongs to no node.
func (c *Cluster) ReissuesByNode() []int64 {
	out := make([]int64, len(c.nodes))
	for i, nd := range c.nodes {
		out[i] = nd.reissues.Load()
	}
	return out
}

// send delivers to a node's inbox (dead nodes drain it). The send never
// blocks the caller: a node that blocked on a full peer inbox — or its own —
// could deadlock the cluster, so overflow is handed to a goroutine that
// gives up at shutdown. Causal order is preserved (a result can only be
// produced after its spawn was processed); order between independent
// messages is already arbitrary on a real interconnect.
func (c *Cluster) send(dest int, m msg) {
	c.msgs.Add(1)
	c.msgBytes.Add(int64(msgWireSize(m)))
	select {
	case c.nodes[dest].inbox <- m:
	default:
		go func() {
			select {
			case c.nodes[dest].inbox <- m:
			case <-c.quit:
			}
		}()
	}
}

// pickLive chooses any live node other than avoid (falls back to 0).
func (c *Cluster) pickLive(avoid int) int {
	for i, nd := range c.nodes {
		if i != avoid && nd.alive.Load() {
			return i
		}
	}
	return 0
}

// pickLiveFrom scans from start for a live node (falls back to start).
func (c *Cluster) pickLiveFrom(start int) int {
	n := len(c.nodes)
	for i := 0; i < n; i++ {
		if d := (start + i) % n; c.nodes[d].alive.Load() {
			return d
		}
	}
	return start
}

// run is the node's goroutine loop: the live analogue of §4.2's protocol
// loop ("LOOP CASE received packet OF ...").
func (n *node) run() {
	defer n.c.wg.Done()
	for {
		select {
		case m := <-n.inbox:
			if !n.alive.Load() {
				// Crashed mid-queue: stop processing; the drainer takes
				// over this inbox.
				return
			}
			switch {
			case m.spawn != nil:
				n.onSpawn(m.spawn)
			case m.result != nil:
				n.onResult(m.result)
			case m.nodeDown != 0:
				n.onNodeDown(m.nodeDown - 1)
			}
		case <-n.c.quit:
			return
		}
	}
}

// onSpawn installs a task and runs its first pass. A duplicate with the
// same parent address is a harmless re-delivery and keeps the incumbent; a
// duplicate with a *different* parent address is another incarnation
// (spawned by a recovered — or orphaned — parent incarnation) and runs
// alongside: killing either would wedge whichever lineage needed it, and
// determinacy keeps coexistence harmless.
func (n *node) onSpawn(pkt *packet) {
	for _, old := range n.tasks[pkt.stamp] {
		if old.pkt.parentNode == pkt.parentNode &&
			old.pkt.parentTask == pkt.parentTask &&
			old.pkt.holeID == pkt.holeID {
			return // equivalent incarnation; keep the incumbent
		}
	}
	t := &ltask{
		pkt:      pkt,
		fills:    map[int]expr.Value{},
		children: map[int]*childCkpt{},
	}
	n.tasks[pkt.stamp] = append(n.tasks[pkt.stamp], t)
	out, st, err := n.epOf(t).Flatten(pkt.fn, pkt.args, &t.nextID)
	if err != nil {
		panic(fmt.Sprintf("livenet: %v", err)) // validated programs cannot fail
	}
	n.apply(t, out, st)
}

// epOf resolves the compiled program a task's packets run in. Packets carry
// their compiled form from Submit; the fallback compiles the cluster's
// build program on first use.
func (n *node) epOf(t *ltask) lang.EvalProgram {
	if t.pkt.ep != nil {
		return t.pkt.ep
	}
	prog := t.pkt.prog
	if prog == nil {
		prog = n.c.prog
	}
	// Do not cache on the packet here: retained packets are shared with
	// reissue paths on other goroutines, so only Submit (before sharing)
	// may write ep.
	ep, err := n.c.epOf(prog)
	if err != nil {
		panic(fmt.Sprintf("livenet: %v", err)) // validated programs cannot fail
	}
	return ep
}

// apply handles a pass outcome: finish, or spawn the demands.
func (n *node) apply(t *ltask, out lang.Outcome, st lang.TaskState) {
	if out.Done {
		n.finish(t, out.Value)
		return
	}
	t.residual = st
	for _, d := range out.Demands {
		child := &packet{
			stamp:      t.pkt.stamp.Child(uint32(d.ID)),
			fn:         d.Fn,
			args:       d.Args,
			parentNode: n.id,
			parentTask: t.pkt.stamp,
			holeID:     d.ID,
			prog:       t.pkt.prog,
			ep:         t.pkt.ep,
		}
		child.encodedSize() // seal the wire size before the packet is shared
		dest := n.pickDest()
		// Functional checkpoint: retain the packet and remember where it
		// went (§2.1); this is everything recovery needs.
		t.children[d.ID] = &childCkpt{pkt: child, dest: dest}
		t.unfilled++
		n.c.spawned.Add(1)
		n.c.send(dest, msg{spawn: child})
	}
}

// finish sends the task's value to its parent and retires that incarnation.
func (n *node) finish(t *ltask, v expr.Value) {
	list := n.tasks[t.pkt.stamp]
	for i, cand := range list {
		if cand == t {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(n.tasks, t.pkt.stamp)
	} else {
		n.tasks[t.pkt.stamp] = list
	}
	if t.pkt.parentNode < 0 {
		n.c.deliverRoot(t.pkt.stamp, v)
		return
	}
	n.c.send(t.pkt.parentNode, msg{result: &resultMsg{
		child:  t.pkt.stamp,
		parent: t.pkt.parentTask,
		holeID: t.pkt.holeID,
		value:  v,
	}})
}

// onResult fills the matching hole of every incarnation of the addressee
// stamp — results are determinate, so one child's answer serves them all —
// and resumes whichever incarnations become complete.
func (n *node) onResult(r *resultMsg) {
	list := n.tasks[r.parent]
	if len(list) == 0 {
		n.c.drained.Add(1) // late/orphan result: ignored (§4.2 rule of thumb)
		return
	}
	consumed := false
	// finish() mutates the list; iterate over a snapshot.
	for _, t := range append([]*ltask(nil), list...) {
		ck := t.children[r.holeID]
		if ck == nil || ck.filled {
			continue
		}
		consumed = true
		ck.filled = true
		t.fills[r.holeID] = r.value
		t.unfilled--
		if t.unfilled > 0 {
			continue
		}
		fills := t.fills
		t.fills = map[int]expr.Value{}
		out, st, err := n.epOf(t).Resume(t.residual, fills, &t.nextID)
		if err != nil {
			panic(fmt.Sprintf("livenet: %v", err))
		}
		n.apply(t, out, st)
	}
	if !consumed {
		n.c.drained.Add(1) // duplicate: "the second copy is simply ignored"
	}
}

// onNodeDown reissues the retained packets of unfilled children that were
// placed on the dead node — the rollback reissue of §3, one parent
// incarnation at a time.
func (n *node) onNodeDown(dead int) {
	n.live[dead] = false
	for _, list := range n.tasks {
		for _, t := range list {
			for _, ck := range t.children {
				if ck.filled || ck.dest != dead {
					continue
				}
				dest := n.pickDest()
				ck.dest = dest
				n.reissues.Add(1)
				n.c.reissued.Add(1)
				n.c.spawned.Add(1)
				n.c.send(dest, msg{spawn: ck.pkt})
			}
		}
	}
}

// pickDest chooses a uniformly random live node (possibly itself).
func (n *node) pickDest() int {
	for tries := 0; tries < 64; tries++ {
		d := n.rng.Intn(len(n.live))
		if n.live[d] && n.c.nodes[d].alive.Load() {
			return d
		}
	}
	return n.id
}
