package lang

import "repro/internal/expr"

// Standard programs. These are the workloads the paper's introduction
// motivates: divide-and-conquer applicative programs whose evaluation
// unfolds an implicit call tree across the machine (§1). Each builder
// returns a validated program plus the conventional entry function name.

// Fib returns the doubly recursive Fibonacci program — the canonical
// binary call tree.
//
//	fib(n) = if n < 2 then n else fib(n-1) + fib(n-2)
func Fib() *Program {
	return MustProgram(FuncDef{
		Name:   "fib",
		Params: []string{"n"},
		Body: expr.Cond(
			expr.Op("<", expr.V("n"), expr.Int(2)),
			expr.V("n"),
			expr.Op("+",
				expr.Call("fib", expr.Op("-", expr.V("n"), expr.Int(1))),
				expr.Call("fib", expr.Op("-", expr.V("n"), expr.Int(2))),
			),
		),
	})
}

// Tak returns the Takeuchi function, a deeper and more irregular call tree
// with nested applications as arguments (exercising multi-wave flattening).
//
//	tak(x,y,z) = if y < x then tak(tak(x-1,y,z), tak(y-1,z,x), tak(z-1,x,y)) else z
func Tak() *Program {
	return MustProgram(FuncDef{
		Name:   "tak",
		Params: []string{"x", "y", "z"},
		Body: expr.Cond(
			expr.Op("<", expr.V("y"), expr.V("x")),
			expr.Call("tak",
				expr.Call("tak", expr.Op("-", expr.V("x"), expr.Int(1)), expr.V("y"), expr.V("z")),
				expr.Call("tak", expr.Op("-", expr.V("y"), expr.Int(1)), expr.V("z"), expr.V("x")),
				expr.Call("tak", expr.Op("-", expr.V("z"), expr.Int(1)), expr.V("x"), expr.V("y")),
			),
			expr.V("z"),
		),
	})
}

// SumRange returns a balanced divide-and-conquer range sum: sum of i for
// lo <= i < hi. Its call tree is a clean balanced binary tree, useful when
// a predictable shape is wanted.
//
//	sumrange(lo,hi) = if hi-lo <= g then serial-sum else
//	                  sumrange(lo,mid) + sumrange(mid,hi)
func SumRange(grain int64) *Program {
	return MustProgram(
		FuncDef{
			Name:   "sumrange",
			Params: []string{"lo", "hi"},
			Body: expr.Cond(
				expr.Op("<=", expr.Op("-", expr.V("hi"), expr.V("lo")), expr.Int(grain)),
				expr.Call("serial", expr.V("lo"), expr.V("hi")),
				expr.LetIn("mid",
					expr.Op("/", expr.Op("+", expr.V("lo"), expr.V("hi")), expr.Int(2)),
					expr.Op("+",
						expr.Call("sumrange", expr.V("lo"), expr.V("mid")),
						expr.Call("sumrange", expr.V("mid"), expr.V("hi")),
					),
				),
			),
		},
		FuncDef{
			Name:   "serial",
			Params: []string{"lo", "hi"},
			Body: expr.Cond(
				expr.Op(">=", expr.V("lo"), expr.V("hi")),
				expr.Int(0),
				expr.Op("+", expr.V("lo"),
					expr.Call("serial", expr.Op("+", expr.V("lo"), expr.Int(1)), expr.V("hi"))),
			),
		},
	)
}

// Binomial returns the Pascal-triangle binomial coefficient, a DAG-shaped
// recursion evaluated as a tree (shared subproblems are recomputed, which
// inflates the call tree and stresses checkpoint tables).
//
//	binom(n,k) = if k==0 or k==n then 1 else binom(n-1,k-1)+binom(n-1,k)
func Binomial() *Program {
	return MustProgram(FuncDef{
		Name:   "binom",
		Params: []string{"n", "k"},
		Body: expr.Cond(
			expr.Op("or",
				expr.Op("==", expr.V("k"), expr.Int(0)),
				expr.Op("==", expr.V("k"), expr.V("n"))),
			expr.Int(1),
			expr.Op("+",
				expr.Call("binom", expr.Op("-", expr.V("n"), expr.Int(1)), expr.Op("-", expr.V("k"), expr.Int(1))),
				expr.Call("binom", expr.Op("-", expr.V("n"), expr.Int(1)), expr.V("k")),
			),
		),
	})
}

// NQueens returns the N-queens counting program, a skewed, data-dependent
// call tree. Boards are lists of column numbers, newest row first.
//
// Entry point: nqueens(n) — the number of solutions on an n×n board.
func NQueens() *Program {
	return MustProgram(
		FuncDef{
			Name:   "nqueens",
			Params: []string{"n"},
			Body:   expr.Call("place", expr.V("n"), expr.Int(0), expr.Nil()),
		},
		// place(n, row, board): solutions extending board from row.
		FuncDef{
			Name:   "place",
			Params: []string{"n", "row", "board"},
			Body: expr.Cond(
				expr.Op("==", expr.V("row"), expr.V("n")),
				expr.Int(1),
				expr.Call("trycols", expr.V("n"), expr.V("row"), expr.Int(0), expr.V("board")),
			),
		},
		// trycols(n, row, col, board): sum over columns col..n-1 of the
		// solutions obtained by putting a queen at (row, col).
		FuncDef{
			Name:   "trycols",
			Params: []string{"n", "row", "col", "board"},
			Body: expr.Cond(
				expr.Op("==", expr.V("col"), expr.V("n")),
				expr.Int(0),
				expr.Op("+",
					expr.Cond(
						expr.Call("safe", expr.V("col"), expr.Int(1), expr.V("board")),
						expr.Call("place", expr.V("n"),
							expr.Op("+", expr.V("row"), expr.Int(1)),
							expr.Op("cons", expr.V("col"), expr.V("board"))),
						expr.Int(0),
					),
					expr.Call("trycols", expr.V("n"), expr.V("row"),
						expr.Op("+", expr.V("col"), expr.Int(1)), expr.V("board")),
				),
			),
		},
		// safe(col, dist, board): no queen on board attacks (row, col),
		// where dist is the row distance to the head of board.
		FuncDef{
			Name:   "safe",
			Params: []string{"col", "dist", "board"},
			Body: expr.Cond(
				expr.Op("isnil", expr.V("board")),
				expr.Bool(true),
				expr.LetIn("q", expr.Op("head", expr.V("board")),
					expr.Cond(
						expr.Op("or",
							expr.Op("==", expr.V("q"), expr.V("col")),
							expr.Op("==",
								expr.Op("abs", expr.Op("-", expr.V("q"), expr.V("col"))),
								expr.V("dist"))),
						expr.Bool(false),
						expr.Call("safe", expr.V("col"),
							expr.Op("+", expr.V("dist"), expr.Int(1)),
							expr.Op("tail", expr.V("board"))),
					),
				),
			),
		},
	)
}

// MergeSort returns a list merge sort. Entry point: msort(xs).
func MergeSort() *Program {
	return MustProgram(
		FuncDef{
			Name:   "msort",
			Params: []string{"xs"},
			Body: expr.Cond(
				expr.Op("<=", expr.Op("len", expr.V("xs")), expr.Int(1)),
				expr.V("xs"),
				expr.LetIn("n", expr.Op("/", expr.Op("len", expr.V("xs")), expr.Int(2)),
					expr.Call("merge",
						expr.Call("msort", expr.Call("take", expr.V("n"), expr.V("xs"))),
						expr.Call("msort", expr.Call("drop", expr.V("n"), expr.V("xs"))),
					),
				),
			),
		},
		FuncDef{
			Name:   "take",
			Params: []string{"n", "xs"},
			Body: expr.Cond(
				expr.Op("or", expr.Op("<=", expr.V("n"), expr.Int(0)), expr.Op("isnil", expr.V("xs"))),
				expr.Nil(),
				expr.Op("cons", expr.Op("head", expr.V("xs")),
					expr.Call("take", expr.Op("-", expr.V("n"), expr.Int(1)), expr.Op("tail", expr.V("xs")))),
			),
		},
		FuncDef{
			Name:   "drop",
			Params: []string{"n", "xs"},
			Body: expr.Cond(
				expr.Op("or", expr.Op("<=", expr.V("n"), expr.Int(0)), expr.Op("isnil", expr.V("xs"))),
				expr.V("xs"),
				expr.Call("drop", expr.Op("-", expr.V("n"), expr.Int(1)), expr.Op("tail", expr.V("xs"))),
			),
		},
		FuncDef{
			Name:   "merge",
			Params: []string{"a", "b"},
			Body: expr.Cond(
				expr.Op("isnil", expr.V("a")),
				expr.V("b"),
				expr.Cond(
					expr.Op("isnil", expr.V("b")),
					expr.V("a"),
					expr.Cond(
						expr.Op("<=", expr.Op("head", expr.V("a")), expr.Op("head", expr.V("b"))),
						expr.Op("cons", expr.Op("head", expr.V("a")),
							expr.Call("merge", expr.Op("tail", expr.V("a")), expr.V("b"))),
						expr.Op("cons", expr.Op("head", expr.V("b")),
							expr.Call("merge", expr.V("a"), expr.Op("tail", expr.V("b")))),
					),
				),
			),
		},
	)
}

// TreeSum returns a synthetic uniform call tree: every internal node spawns
// `fanout` children down to the given depth and sums the leaves. With its
// perfectly regular shape it is the workhorse of the benchmark sweeps.
//
//	tree(depth) = if depth == 0 then 1 else Σ tree(depth-1)   (fanout times)
func TreeSum(fanout int) *Program {
	children := make([]expr.Expr, fanout)
	for i := range children {
		children[i] = expr.Call("tree", expr.Op("-", expr.V("d"), expr.Int(1)))
	}
	return MustProgram(FuncDef{
		Name:   "tree",
		Params: []string{"d"},
		Body: expr.Cond(
			expr.Op("<=", expr.V("d"), expr.Int(0)),
			expr.Int(1),
			expr.Op("+", children...),
		),
	})
}

// CriticalSections returns the §5.3 workload: a single coordinator fans out
// k "critical" work calls in one wave; each work call performs a pure
// computation of roughly 2×cost reduction steps and returns i+1. Marking
// "work" with a replication degree makes the machine spawn R copies of each
// call and majority-vote their answers — the paper's "user may specify
// certain critical sections of a program for such a highly reliable
// operation".
//
// Entry point: main() = Σ_{i=1..k} work(i).
func CriticalSections(k, cost int) *Program {
	pad := func(e expr.Expr) expr.Expr {
		for i := 0; i < cost; i++ {
			e = expr.Op("+", expr.Int(0), e)
		}
		return e
	}
	calls := make([]expr.Expr, k)
	for i := range calls {
		calls[i] = expr.Call("work", expr.Int(int64(i+1)))
	}
	var body expr.Expr
	if k == 1 {
		body = expr.Op("+", expr.Int(0), calls[0])
	} else {
		body = expr.Op("+", calls...)
	}
	return MustProgram(
		FuncDef{Name: "main", Body: body},
		FuncDef{Name: "work", Params: []string{"i"},
			Body: pad(expr.Op("+", expr.V("i"), expr.Int(1)))},
	)
}
