package lang

import (
	"fmt"

	"repro/internal/expr"
)

// Demand is a function application that must be evaluated as a child task
// before the blocked parent can continue. It corresponds one-to-one with a
// task packet: §2.1 — "A task packet is formed for the new function and then
// waits for execution."
type Demand struct {
	// ID is the hole the child's result fills; it doubles as the level-stamp
	// component appended for the child (§3.1).
	ID   int
	Fn   string
	Args []expr.Value
}

// Outcome is the result of one Flatten pass over a task's expression.
type Outcome struct {
	// Done is true when the expression reduced to a value.
	Done bool
	// Value holds the result when Done.
	Value expr.Value
	// Residual is the blocked expression containing holes when !Done.
	Residual expr.Expr
	// Demands lists the child applications to spawn, in hole order.
	Demands []Demand
	// Steps counts reduction steps performed; the machine charges
	// Steps × StepCost of virtual compute time for the pass.
	Steps int
}

// flattener carries the mutable pass state.
type flattener struct {
	prog    *Program
	nextID  *int
	demands []Demand
	steps   int
}

// Flatten reduces e as far as possible without the values of outstanding
// holes. nextID is the task's demand counter; it persists across passes so
// hole IDs are unique within the task and — because the language is
// determinate — identical across re-executions of the same packet.
//
// The returned Outcome either carries a final value or a residual expression
// plus the new demands discovered in this pass. Holes already present in e
// (from earlier passes, still unfilled) remain in the residual without
// generating new demands.
func Flatten(prog *Program, e expr.Expr, nextID *int) (Outcome, error) {
	f := &flattener{prog: prog, nextID: nextID}
	red, _, err := f.reduce(e)
	if err != nil {
		return Outcome{}, err
	}
	if lit, ok := red.(expr.Lit); ok {
		return Outcome{Done: true, Value: lit.V, Steps: f.steps}, nil
	}
	return Outcome{Residual: red, Demands: f.demands, Steps: f.steps}, nil
}

// reduce returns a reduced expression: either a Lit or a blocked expression
// containing holes. Every invocation accounts one step. Expressions are
// immutable, so reduce shares unchanged subtrees instead of rebuilding them
// (the hot resume passes re-walk residuals in which most nodes are already
// irreducible); the changed flag reports whether the result differs from e,
// so parents can share too. Allocation happens only where reduction makes
// progress.
func (f *flattener) reduce(e expr.Expr) (expr.Expr, bool, error) {
	f.steps++
	switch n := e.(type) {
	case expr.Lit:
		return n, false, nil
	case expr.Hole:
		return n, false, nil
	case expr.Var:
		// Instantiate substitutes parameters and Let substitutes bindings
		// before their bodies are reduced, so a Var here is a bug in the
		// program or the interpreter.
		return nil, false, fmt.Errorf("%w: unbound variable %q at reduction time", ErrEval, n.Name)
	case expr.Prim:
		args, argsChanged, blocked, err := f.reduceArgs(n.Args)
		if err != nil {
			return nil, false, err
		}
		if blocked {
			if !argsChanged {
				return e, false, nil // nothing reduced: share the node
			}
			return expr.Prim{Op: n.Op, Args: args}, true, nil
		}
		vals := make([]expr.Value, len(args))
		for i, a := range args {
			vals[i] = a.(expr.Lit).V
		}
		v, err := applyPrim(n.Op, vals)
		if err != nil {
			return nil, false, err
		}
		return expr.Lit{V: v}, true, nil
	case expr.If:
		c, cc, err := f.reduce(n.Cond)
		if err != nil {
			return nil, false, err
		}
		lit, ok := c.(expr.Lit)
		if !ok {
			// Condition blocked: branches stay unreduced (non-strict) until
			// the condition value arrives.
			if !cc {
				return e, false, nil
			}
			return expr.If{Cond: c, Then: n.Then, Else: n.Else}, true, nil
		}
		b, ok := lit.V.(expr.VBool)
		if !ok {
			return nil, false, fmt.Errorf("%w: if condition is %s, not bool", ErrEval, expr.TypeName(lit.V))
		}
		// Committing to a branch always changes the node.
		var r expr.Expr
		if b {
			r, _, err = f.reduce(n.Then)
		} else {
			r, _, err = f.reduce(n.Else)
		}
		return r, true, err
	case expr.Let:
		bind, bc, err := f.reduce(n.Bind)
		if err != nil {
			return nil, false, err
		}
		if lit, ok := bind.(expr.Lit); ok {
			r, _, err := f.reduce(expr.Subst(n.Body, n.Name, lit.V))
			return r, true, err
		}
		// Bind blocked: keep the body unreduced behind the binder.
		if !bc {
			return e, false, nil
		}
		return expr.Let{Name: n.Name, Bind: bind, Body: n.Body}, true, nil
	case expr.Apply:
		args, argsChanged, blocked, err := f.reduceArgs(n.Args)
		if err != nil {
			return nil, false, err
		}
		if blocked {
			// Arguments themselves contain demands or unfilled holes; the
			// application waits for them before becoming a demand itself.
			if !argsChanged {
				return e, false, nil
			}
			return expr.Apply{Fn: n.Fn, Args: args}, true, nil
		}
		// All arguments are values: this application becomes a child task.
		// DEMAND_IT (§4.2): create a task packet, level-stamp it, checkpoint
		// it — the machine does the last three; we record the demand.
		vals := make([]expr.Value, len(args))
		for i, a := range args {
			vals[i] = a.(expr.Lit).V
		}
		id := *f.nextID
		*f.nextID = id + 1
		f.demands = append(f.demands, Demand{ID: id, Fn: n.Fn, Args: vals})
		return expr.Hole{ID: id}, true, nil
	default:
		return nil, false, fmt.Errorf("%w: unknown node %T", ErrEval, e)
	}
}

// reduceArgs reduces an argument list copy-on-write: the input slice is
// returned untouched (changed=false) when no argument made progress, and
// blocked reports whether any reduced argument is still not a literal.
func (f *flattener) reduceArgs(in []expr.Expr) (out []expr.Expr, changed, blocked bool, err error) {
	out = in
	for i, a := range in {
		r, rc, err := f.reduce(a)
		if err != nil {
			return nil, false, false, err
		}
		if rc && !changed {
			fresh := make([]expr.Expr, len(in))
			copy(fresh, in[:i])
			out, changed = fresh, true
		}
		if changed {
			out[i] = r
		}
		if _, ok := r.(expr.Lit); !ok {
			blocked = true
		}
	}
	return out, changed, blocked, nil
}

// Resume fills holes in a residual expression and flattens again. It is the
// processing a waiting task performs when the last outstanding result
// arrives ("Place data at the location indicated by the level stamp. If a
// task can be continued, resume the task." — §4.2).
func Resume(prog *Program, residual expr.Expr, fills map[int]expr.Value, nextID *int) (Outcome, error) {
	return Flatten(prog, expr.FillHoles(residual, fills), nextID)
}
