package lang

import (
	"fmt"

	"repro/internal/expr"
)

// RefEval is the reference sequential evaluator: a direct recursive
// interpreter with an environment. It defines the meaning of programs and
// serves as the oracle for the distributed machine — determinacy (§2.1)
// demands the machine produce exactly this value under every schedule,
// placement, and fault plan.
func RefEval(prog *Program, fn string, args []expr.Value) (expr.Value, error) {
	return refRun(prog, fn, args, nil)
}

// refRun drives one reference evaluation of fn(args), invoking onApply (when
// non-nil) at every function application including the root.
func refRun(prog *Program, fn string, args []expr.Value, onApply func(fn string)) (expr.Value, error) {
	d, ok := prog.Func(fn)
	if !ok {
		return nil, fmt.Errorf("%w: undefined function %q", ErrEval, fn)
	}
	if len(args) != len(d.Params) {
		return nil, fmt.Errorf("%w: %q expects %d args, got %d", ErrEval, fn, len(d.Params), len(args))
	}
	env := make(map[string]expr.Value, len(d.Params))
	for i, p := range d.Params {
		env[p] = args[i]
	}
	if onApply != nil {
		onApply(fn) // the root application itself
	}
	r := &refEvaluator{prog: prog, onApply: onApply}
	return r.eval(d.Body, env, 0)
}

// maxRefDepth bounds recursion so a buggy program fails loudly instead of
// overflowing the goroutine stack.
const maxRefDepth = 1 << 17

// refEvaluator carries the per-run hooks so RefEval and CountCalls share one
// interpreter instead of two divergent copies.
type refEvaluator struct {
	prog    *Program
	onApply func(fn string) // nil when nobody is counting
}

func (r *refEvaluator) eval(e expr.Expr, env map[string]expr.Value, depth int) (expr.Value, error) {
	if depth > maxRefDepth {
		return nil, fmt.Errorf("%w: reference evaluator exceeded depth %d", ErrEval, maxRefDepth)
	}
	switch n := e.(type) {
	case expr.Lit:
		return n.V, nil
	case expr.Var:
		v, ok := env[n.Name]
		if !ok {
			return nil, fmt.Errorf("%w: unbound variable %q", ErrEval, n.Name)
		}
		return v, nil
	case expr.Hole:
		return nil, fmt.Errorf("%w: hole in source program", ErrEval)
	case expr.Prim:
		vals := make([]expr.Value, len(n.Args))
		for i, a := range n.Args {
			v, err := r.eval(a, env, depth+1)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return applyPrim(n.Op, vals)
	case expr.If:
		c, err := r.eval(n.Cond, env, depth+1)
		if err != nil {
			return nil, err
		}
		b, ok := c.(expr.VBool)
		if !ok {
			return nil, fmt.Errorf("%w: if condition is %s, not bool", ErrEval, expr.TypeName(c))
		}
		if b {
			return r.eval(n.Then, env, depth+1)
		}
		return r.eval(n.Else, env, depth+1)
	case expr.Let:
		v, err := r.eval(n.Bind, env, depth+1)
		if err != nil {
			return nil, err
		}
		shadowed, had := env[n.Name]
		env[n.Name] = v
		out, err := r.eval(n.Body, env, depth+1)
		if had {
			env[n.Name] = shadowed
		} else {
			delete(env, n.Name)
		}
		return out, err
	case expr.Apply:
		vals := make([]expr.Value, len(n.Args))
		for i, a := range n.Args {
			v, err := r.eval(a, env, depth+1)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if r.onApply != nil {
			r.onApply(n.Fn)
		}
		d, ok := r.prog.Func(n.Fn)
		if !ok {
			return nil, fmt.Errorf("%w: undefined function %q", ErrEval, n.Fn)
		}
		callEnv := make(map[string]expr.Value, len(d.Params))
		for i, p := range d.Params {
			callEnv[p] = vals[i]
		}
		return r.eval(d.Body, callEnv, depth+1)
	default:
		return nil, fmt.Errorf("%w: unknown node %T", ErrEval, e)
	}
}

// CountCalls returns the number of function applications the reference
// evaluation of fn(args) performs, including the root call. It sizes the
// call tree that the distributed machine will unfold, which tests and
// benchmarks use to reason about expected task counts.
func CountCalls(prog *Program, fn string, args []expr.Value) (int64, error) {
	var calls int64
	_, err := refRun(prog, fn, args, func(string) { calls++ })
	return calls, err
}
